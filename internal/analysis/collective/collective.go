// Package collective enforces PR 6's deadlock-freedom discipline: every
// rank executes every collective, every frame. A collective
// (AllReduce*/Gather/Bcast/Barrier/Group on a comm.Comm) reached under a
// rank-local condition, or skippable by a rank-local or error-path early
// exit, desynchronizes the group — the surviving ranks block forever in
// a collective their peers never enter. The enforced shape is the
// two-phase error barrier: local failures set a flag, the flag is
// AllReduce'd, and the whole group takes the same exit together.
package collective

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"insitu/internal/analysis"
)

// Analyzer flags collectives whose execution can differ across ranks.
var Analyzer = &analysis.Analyzer{
	Name: "collective",
	Doc: "flag collective calls (AllReduce*/Gather/Bcast/Barrier/Group) under " +
		"rank-local conditions, and rank-local or error-path early exits that skip " +
		"a later collective; use the two-phase error barrier instead",
	Run: run,
}

// collectiveNames are the comm.Comm methods every group member must call
// the same number of times in the same order.
var collectiveNames = map[string]bool{
	"AllReduce":    true,
	"AllReduceMax": true,
	"AllReduceMin": true,
	"AllReduceSum": true,
	"Gather":       true,
	"Bcast":        true,
	"Barrier":      true,
	"Group":        true,
}

// rankNames taint identifiers (and struct fields) that denote a rank or
// a rank-derived role by name alone.
var rankNames = map[string]bool{
	"rank":     true,
	"leader":   true,
	"isleader": true,
	"isroot":   true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function body; nested function literals are
// analyzed as their own units (a closure runs on whatever rank calls it).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := taintRankLocals(pass, body)
	w := &walker{pass: pass, tainted: tainted}
	w.stmts(body.List, nil)

	// Analyze nested closures independently, without the enclosing
	// function's conditional context.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		return true
	})
}

type walker struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
	// rankCond is the innermost enclosing rank-local condition, nil when
	// the current statement executes on every rank.
	rankCond ast.Expr
}

// stmts walks one statement list. rest is the stack of continuation
// statement lists of the enclosing blocks, innermost last, used to
// answer "does any collective still run after this point?".
func (w *walker) stmts(list []ast.Stmt, rest [][]ast.Stmt) {
	for i, s := range list {
		cont := append(rest[:len(rest):len(rest)], list[i+1:])
		w.stmt(s, cont)
	}
}

func (w *walker) stmt(s ast.Stmt, cont [][]ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.exprs(s.Init)
		}
		w.exprs(&ast.ExprStmt{X: s.Cond})
		rankLocal := w.exprTainted(s.Cond)
		errGuard := w.isErrGuard(s.Cond)
		if (rankLocal || errGuard) && branchTerminates(s) {
			if coll := collectiveInContinuation(w.pass, cont); coll != "" {
				if rankLocal {
					w.pass.Reportf(s.Pos(), "rank-local early exit may skip later collective %s; every rank must execute every collective", coll)
				} else {
					w.pass.Reportf(s.Pos(), "error-path early exit skips later collective %s; exchange errors with a two-phase barrier (AllReduce an error flag) instead", coll)
				}
			}
		}
		inner := *w
		if rankLocal {
			inner.rankCond = s.Cond
		}
		inner.stmts(s.Body.List, cont)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			inner.stmts(e.List, cont)
		case *ast.IfStmt:
			inner.stmt(e, cont)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.exprs(s.Init)
		}
		inner := *w
		if s.Cond != nil {
			w.exprs(&ast.ExprStmt{X: s.Cond})
			if w.exprTainted(s.Cond) {
				inner.rankCond = s.Cond
			}
		}
		inner.stmts(s.Body.List, cont)
	case *ast.RangeStmt:
		inner := *w
		if s.X != nil && w.exprTainted(s.X) {
			inner.rankCond = s.X
		}
		inner.stmts(s.Body.List, cont)
	case *ast.SwitchStmt:
		inner := *w
		if s.Tag != nil && w.exprTainted(s.Tag) {
			inner.rankCond = s.Tag
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseW := inner
			for _, e := range cc.List {
				if w.exprTainted(e) {
					caseW.rankCond = e
				}
			}
			caseW.stmts(cc.Body, cont)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, cont)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CommClause).Body, cont)
		}
	case *ast.BlockStmt:
		w.stmts(s.List, cont)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, cont)
	default:
		w.exprs(s)
	}
}

// exprs scans a non-control statement for collective calls executed
// under the current rank-local condition.
func (w *walker) exprs(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed as its own unit
		}
		if call, ok := n.(*ast.CallExpr); ok && w.rankCond != nil {
			if name := collectiveCall(w.pass, call); name != "" {
				w.pass.Reportf(call.Pos(), "collective %s executed under rank-local condition; every rank must execute every collective", name)
			}
		}
		return true
	})
}

func (w *walker) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if rankNames[strings.ToLower(n.Name)] || w.tainted[w.pass.TypesInfo.Uses[n]] {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Rank" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isErrGuard reports whether cond compares an error-typed value against
// nil (the `if err != nil` shape).
func (w *walker) isErrGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
			return !found
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			if t := w.pass.TypesInfo.Types[side].Type; t != nil && isErrorType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// taintRankLocals computes the variables holding rank-derived values:
// seeded by Rank() call results and rank-named identifiers, propagated
// through assignments (two lexical passes reach the fixpoint for the
// straight-line seeding code this targets).
func taintRankLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	// rankValue walks value expressions without descending into call
	// arguments: `shard := c.Rank()` and `leader := shard == 0` taint,
	// but `sm, err := sim.New(..., c.Rank())` does not — the callee
	// consumed the rank; its results (and errors) are ordinary values.
	var rankValue func(e ast.Expr) bool
	rankValue = func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.ParenExpr:
			return rankValue(e.X)
		case *ast.BinaryExpr:
			return rankValue(e.X) || rankValue(e.Y)
		case *ast.UnaryExpr:
			return rankValue(e.X)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			return ok && sel.Sel.Name == "Rank"
		case *ast.Ident:
			return rankNames[strings.ToLower(e.Name)] || tainted[pass.TypesInfo.Uses[e]]
		}
		return false
	}
	exprTainted := rankValue
	markIdent := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			tainted[obj] = true
		} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
			tainted[obj] = true
		}
	}
	for round := 0; round < 2; round++ {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if exprTainted(rhs) {
						markIdent(id)
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if exprTainted(v) {
						for _, id := range n.Names {
							markIdent(id)
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}

// collectiveInContinuation reports the first collective that still runs
// after the current statement: scanning each continuation level in order
// and stopping at an unconditional terminator.
func collectiveInContinuation(pass *analysis.Pass, cont [][]ast.Stmt) string {
	for level := len(cont) - 1; level >= 0; level-- {
		for _, s := range cont[level] {
			if name := firstCollective(pass, s); name != "" {
				return name
			}
			if terminates(s) {
				return ""
			}
		}
	}
	return ""
}

func firstCollective(pass *analysis.Pass, n ast.Node) string {
	name := ""
	ast.Inspect(n, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if c := collectiveCall(pass, call); c != "" {
				name = c
				return false
			}
		}
		return true
	})
	return name
}

// collectiveCall returns the collective's name when call is a collective
// method on a comm.Comm (a type named Comm), or "".
func collectiveCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !collectiveNames[sel.Sel.Name] {
		return ""
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "" // package-qualified function, not a method
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Comm" {
		return ""
	}
	return sel.Sel.Name
}

// branchTerminates reports whether an if statement has a branch that
// exits early (return, break, continue, goto, panic).
func branchTerminates(s *ast.IfStmt) bool {
	if blockTerminates(s.Body) {
		return true
	}
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		return blockTerminates(e)
	case *ast.IfStmt:
		return branchTerminates(e)
	}
	return false
}

func blockTerminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return terminates(b.List[len(b.List)-1])
}

// terminates reports whether s unconditionally leaves the enclosing
// statement sequence.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		term := blockTerminates(s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			return term && blockTerminates(e)
		case *ast.IfStmt:
			return term && terminates(e)
		}
	case *ast.BlockStmt:
		return blockTerminates(s)
	}
	return false
}

// isErrorType reports whether t is the error interface (or implements it
// as a named error type).
func isErrorType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj() == types.Universe.Lookup("error") {
		return true
	}
	errType, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errType != nil && types.Implements(t, errType)
}
