// Package fixture exercises the collective analyzer. Comm is a local
// stand-in: the analyzer matches collectives by method name on any type
// named Comm, so the fixture needs no import of the real comm package.
// The rank-gated cases prove that desynchronizing a collective breaks
// the lint gate.
package fixture

import "errors"

type Comm struct{ rank, size int }

func (c *Comm) Rank() int                      { return c.rank }
func (c *Comm) Size() int                      { return c.size }
func (c *Comm) Barrier()                       {}
func (c *Comm) AllReduceMax(v float64) float64 { return v }
func (c *Comm) Bcast(root int, b []byte) error { return nil }

func work() error { return errors.New("boom") }

// rankGated runs a collective only on rank 0: the other ranks never
// enter the barrier and rank 0 blocks forever.
func rankGated(c *Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want `collective Barrier executed under rank-local condition`
	}
}

// taintedGate reaches the same bug through a rank-derived local.
func taintedGate(c *Comm) {
	leader := c.Rank() == 0
	if leader {
		c.Barrier() // want `collective Barrier executed under rank-local condition`
	}
}

// earlyExit skips the barrier on every rank but 0.
func earlyExit(c *Comm) {
	if c.Rank() != 0 { // want `rank-local early exit may skip later collective Barrier`
		return
	}
	c.Barrier()
}

// errEarlyExit returns on a rank-local error before a collective: ranks
// that succeeded wait in AllReduceMax for peers that already left.
func errEarlyExit(c *Comm) error {
	err := work()
	if err != nil { // want `error-path early exit skips later collective AllReduceMax`
		return err
	}
	_ = c.AllReduceMax(1)
	return nil
}

// twoPhase is the enforced shape: agree on the failure first, then take
// the same exit on every rank. Clean.
func twoPhase(c *Comm) error {
	err := work()
	flag := 0.0
	if err != nil {
		flag = 1
	}
	if c.AllReduceMax(flag) > 0 {
		return errors.New("peer failure")
	}
	c.Barrier()
	return nil
}

// uniformGate branches on data every rank computed identically; the
// analyzer only taints rank-derived conditions. Clean.
func uniformGate(c *Comm, frames int) {
	if frames > 0 {
		c.Barrier()
	}
}

// suppressedGate documents a genuinely safe gate with the escape hatch.
func suppressedGate(c *Comm) {
	if c.Rank() == 0 {
		//insitu:collective-ok the group is size 1 in this configuration
		c.Barrier()
	}
}
