package collective

import (
	"testing"

	"insitu/internal/analysis/analysistest"
)

func TestCollective(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer)
}
