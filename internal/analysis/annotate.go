package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation marks understood by the suite. The grammar is:
//
//	//insitu:noalloc              on a func/method (or interface method)
//	//insitu:arena                on a func/method (or interface method)
//	//insitu:noalloc-package      in a package doc comment: every function
//	//insitu:<analyzer>-ok <why>  on (or directly above) a flagged line
const (
	MarkNoalloc = "noalloc"
	MarkArena   = "arena"
)

const directivePrefix = "//insitu:"

// Annotations is the per-package index of `//insitu:` directives: which
// functions carry which marks, package-wide marks, and line-level
// suppressions. One Annotations is shared by all analyzers of a package.
type Annotations struct {
	funcMarks map[types.Object]map[string]bool
	pkgMarks  map[string]bool
	// suppress maps filename -> line -> analyzer name -> present. A
	// suppression on line L covers diagnostics on L and L+1, so the
	// comment can trail the flagged line or sit on its own line above.
	suppress map[string]map[int]map[string]bool

	fset *token.FileSet
}

// BuildAnnotations scans the package syntax for `//insitu:` directives.
// info may be nil when only suppressions are needed.
func BuildAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	ann := &Annotations{
		funcMarks: map[types.Object]map[string]bool{},
		pkgMarks:  map[string]bool{},
		suppress:  map[string]map[int]map[string]bool{},
		fset:      fset,
	}
	for _, f := range files {
		ann.scanSuppressions(fset, f)
		ann.scanPackageMarks(f)
		if info == nil {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				for _, mark := range directiveMarks(d.Doc) {
					ann.addFuncMark(info.Defs[d.Name], mark)
				}
			case *ast.InterfaceType:
				if d.Methods == nil {
					return true
				}
				for _, m := range d.Methods.List {
					marks := directiveMarks(m.Doc)
					marks = append(marks, directiveMarks(m.Comment)...)
					for _, name := range m.Names {
						for _, mark := range marks {
							ann.addFuncMark(info.Defs[name], mark)
						}
					}
				}
			}
			return true
		})
	}
	return ann
}

func (a *Annotations) addFuncMark(obj types.Object, mark string) {
	if obj == nil {
		return
	}
	set := a.funcMarks[obj]
	if set == nil {
		set = map[string]bool{}
		a.funcMarks[obj] = set
	}
	set[mark] = true
}

// Has reports whether fn is annotated with mark in this package (either
// directly or via a package-level `//insitu:<mark>-package`).
func (a *Annotations) Has(fn *types.Func, mark string) bool {
	if a.pkgMarks[mark] && !a.inTestFile(fn) {
		return true
	}
	return a.funcMarks[fn][mark]
}

// HasObj is Has for the raw defining object of a FuncDecl name.
func (a *Annotations) HasObj(obj types.Object, mark string) bool {
	if a.pkgMarks[mark] && !a.inTestFile(obj) {
		return true
	}
	return a.funcMarks[obj][mark]
}

// inTestFile reports whether obj is declared in a _test.go file. Package
// marks cover production code only: `go vet` analyzes the test variant
// of a package, and holding Test functions to //insitu:noalloc-package
// would flag every t.Errorf.
func (a *Annotations) inTestFile(obj types.Object) bool {
	if obj == nil || a.fset == nil || !obj.Pos().IsValid() {
		return false
	}
	return strings.HasSuffix(a.fset.Position(obj.Pos()).Filename, "_test.go")
}

// PkgMark reports a package-wide `//insitu:<mark>-package` directive.
func (a *Annotations) PkgMark(mark string) bool { return a.pkgMarks[mark] }

// Suppressed reports whether an `//insitu:<analyzer>-ok` comment covers
// the given position.
func (a *Annotations) Suppressed(analyzer string, pos token.Position) bool {
	lines := a.suppress[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

// ExportedFacts converts this package's annotations into Facts for
// dependent packages, keyed by FuncKey.
func (a *Annotations) ExportedFacts(pkgPath string) *Facts {
	f := NewFacts()
	for obj, marks := range a.funcMarks {
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if marks[MarkNoalloc] {
			f.Noalloc[FuncKey(fn)] = true
		}
		if marks[MarkArena] {
			f.Arena[FuncKey(fn)] = true
		}
	}
	if a.pkgMarks[MarkNoalloc] {
		f.Noalloc["pkg:"+pkgPath] = true
	}
	if a.pkgMarks[MarkArena] {
		f.Arena["pkg:"+pkgPath] = true
	}
	return f
}

func (a *Annotations) scanSuppressions(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, found := cutSuffixWord(text, "-ok")
			if !found {
				continue
			}
			pos := fset.Position(c.Pos())
			lines := a.suppress[pos.Filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				a.suppress[pos.Filename] = lines
			}
			set := lines[pos.Line]
			if set == nil {
				set = map[string]bool{}
				lines[pos.Line] = set
			}
			set[name] = true
		}
	}
}

func (a *Annotations) scanPackageMarks(f *ast.File) {
	if f.Doc == nil {
		return
	}
	for _, c := range f.Doc.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		if mark, found := cutSuffixWord(text, "-package"); found {
			a.pkgMarks[mark] = true
		}
	}
}

// directiveMarks extracts the bare marks (`//insitu:noalloc`,
// `//insitu:arena`) from a comment group. `-ok` and `-package` forms are
// handled elsewhere and excluded here.
func directiveMarks(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var marks []string
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, directivePrefix)
		if !ok {
			continue
		}
		word := firstWord(text)
		if word == "" || strings.HasSuffix(word, "-ok") || strings.HasSuffix(word, "-package") {
			continue
		}
		marks = append(marks, word)
	}
	return marks
}

// cutSuffixWord returns text's first word with suffix removed, and
// whether the first word ended in suffix (`noalloc-ok reason` -> "noalloc").
func cutSuffixWord(text, suffix string) (string, bool) {
	return strings.CutSuffix(firstWord(text), suffix)
}

func firstWord(text string) string {
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		return text[:i]
	}
	return text
}
