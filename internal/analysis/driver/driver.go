// Package driver runs the insitulint analyzers in the two modes the
// repo needs: standalone (`insitulint ./...`), which loads the module
// from source via `go list -export -deps -json` and threads facts in
// memory, and unitchecker (`go vet -vettool=insitulint`), which speaks
// cmd/go's vet.cfg protocol one compilation unit at a time and threads
// facts through the vetx files cmd/go manages.
package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"insitu/internal/analysis"
)

// modulePrefix identifies this module's packages; only they are
// analyzed (dependencies contribute facts, the stdlib contributes none).
const modulePrefix = "insitu"

func inModule(importPath string) bool {
	return importPath == modulePrefix || strings.HasPrefix(importPath, modulePrefix+"/")
}

// --- standalone mode ---------------------------------------------------

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Deps       []string
	Standard   bool
}

// Standalone loads the packages matching patterns (plus their in-module
// deps) and runs analyzers over each in dependency order. Diagnostics
// go to w; the return value is the process exit code (0 clean, 1
// operational error, 2 diagnostics reported).
func Standalone(analyzers []*analysis.Analyzer, patterns []string, w io.Writer) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(w, "insitulint: %v\n", err)
		return 1
	}

	exports := map[string]string{} // import path -> export data file
	module := map[string]*listPackage{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if inModule(p.ImportPath) {
			module[p.ImportPath] = p
		}
	}

	order := topoOrder(module)

	fset := token.NewFileSet()
	typed := map[string]*types.Package{}
	facts := map[string]*analysis.Facts{}
	gcImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	found := false
	for _, path := range order {
		p := module[path]
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			fmt.Fprintf(w, "insitulint: %v\n", err)
			return 1
		}
		info := analysis.NewTypesInfo()
		conf := types.Config{Importer: importerFunc(func(imp string) (*types.Package, error) {
			if tp, ok := typed[imp]; ok {
				return tp, nil
			}
			return gcImp.Import(imp)
		})}
		pkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			fmt.Fprintf(w, "insitulint: typecheck %s: %v\n", path, err)
			return 1
		}
		typed[path] = pkg

		ann := analysis.BuildAnnotations(fset, files, info)
		imported := analysis.NewFacts()
		for _, dep := range p.Deps {
			imported.Merge(facts[dep])
		}
		facts[path] = exportAll(ann, imported, path)

		diags, err := analysis.RunAnalyzers(analyzers, fset, files, pkg, info, ann, imported)
		if err != nil {
			fmt.Fprintf(w, "insitulint: %s: %v\n", path, err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if found {
		return 2
	}
	return 0
}

// exportAll is this package's outgoing facts: its own annotations plus
// everything inherited, so dependents see transitive marks.
func exportAll(ann *analysis.Annotations, imported *analysis.Facts, path string) *analysis.Facts {
	f := ann.ExportedFacts(path)
	f.Merge(imported)
	return f
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,Deps,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// topoOrder sorts the in-module packages so dependencies precede
// dependents (Deps is transitive, so counting in-module deps sorts it).
func topoOrder(module map[string]*listPackage) []string {
	paths := make([]string, 0, len(module))
	for p := range module {
		paths = append(paths, p)
	}
	depCount := func(p string) int {
		n := 0
		for _, d := range module[p].Deps {
			if inModule(d) {
				n++
			}
		}
		return n
	}
	sort.Slice(paths, func(i, j int) bool {
		di, dj := depCount(paths[i]), depCount(paths[j])
		if di != dj {
			return di < dj
		}
		return paths[i] < paths[j]
	})
	return paths
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// --- unitchecker mode (vet.cfg) ----------------------------------------

// vetConfig mirrors the JSON cmd/go writes for -vettool invocations.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit processes one vet.cfg compilation unit: typecheck, run
// analyzers (unless VetxOnly), and always write the facts vetx file so
// dependent units can read it. Exit codes follow vet convention: 0
// clean, 2 diagnostics.
func RunUnit(analyzers []*analysis.Analyzer, cfgPath string, w io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(w, "insitulint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "insitulint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Non-module units (stdlib and, hypothetically, vendored deps) carry
	// no //insitu: annotations: write empty facts and move on without
	// typechecking them.
	if !inModule(strings.TrimSuffix(cfg.ImportPath, ".test")) {
		return writeFacts(cfg.VetxOutput, analysis.NewFacts(), w)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(w, "insitulint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return gcImp.Import(path)
	})}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeFacts(cfg.VetxOutput, analysis.NewFacts(), w)
		}
		fmt.Fprintf(w, "insitulint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	ann := analysis.BuildAnnotations(fset, files, info)
	imported := analysis.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		imported.Merge(readFacts(vetx))
	}
	out := exportAll(ann, imported, cfg.ImportPath)
	if code := writeFacts(cfg.VetxOutput, out, w); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}

	diags, err := analysis.RunAnalyzers(analyzers, fset, files, pkg, info, ann, imported)
	if err != nil {
		fmt.Fprintf(w, "insitulint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func writeFacts(path string, f *analysis.Facts, w io.Writer) int {
	if path == "" {
		return 0
	}
	data, err := json.Marshal(f)
	if err != nil {
		fmt.Fprintf(w, "insitulint: %v\n", err)
		return 1
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintf(w, "insitulint: %v\n", err)
		return 1
	}
	return 0
}

// readFacts tolerates missing or malformed vetx files (a dep whose
// facts we skipped still yields an empty, usable set).
func readFacts(path string) *analysis.Facts {
	f := analysis.NewFacts()
	data, err := os.ReadFile(path)
	if err != nil {
		return f
	}
	var parsed analysis.Facts
	if json.Unmarshal(data, &parsed) == nil {
		f.Merge(&parsed)
	}
	return f
}
