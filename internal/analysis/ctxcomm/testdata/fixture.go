// Package fixture exercises the ctxcomm analyzer over a local transport
// type offering both blocking and context-aware method variants.
package fixture

import "context"

type conn struct{}

func (c *conn) Send(to int, b []byte) error { return nil }
func (c *conn) SendCtx(ctx context.Context, to int, b []byte) error {
	return nil
}
func (c *conn) Recv(from int, b []byte) error { return nil }
func (c *conn) RecvCtx(ctx context.Context, from int, b []byte) error {
	return nil
}

func process(ctx context.Context, b []byte) {}

// bare blocks forever if the caller cancels: the ctx-aware variant
// exists and must be used inside a ctx-param function.
func bare(ctx context.Context, c *conn) error {
	return c.Send(0, nil) // want `bare Send detaches from cancellation in a ctx-aware function; use SendCtx`
}

// bareRecv covers the receive side.
func bareRecv(ctx context.Context, c *conn) error {
	return c.Recv(0, nil) // want `bare Recv detaches from cancellation in a ctx-aware function; use RecvCtx`
}

// dropped severs the cancellation chain mid-call-tree.
func dropped(ctx context.Context, b []byte) {
	process(context.Background(), b) // want `context.Background drops the caller's ctx`
}

// todoDropped is the same bug spelled TODO.
func todoDropped(ctx context.Context, b []byte) {
	process(context.TODO(), b) // want `context.TODO drops the caller's ctx`
}

// good passes the ctx through. Clean.
func good(ctx context.Context, c *conn) error {
	return c.SendCtx(ctx, 0, nil)
}

// noCtx takes no context, so the blocking variant is its only option.
// Clean.
func noCtx(c *conn) error {
	return c.Send(0, nil)
}

type client struct {
	ctx context.Context
	c   *conn
}

// storedCtx passes a deliberately stored context, which is allowed —
// only the literal Background()/TODO() constructors are flagged.
func storedCtx(ctx context.Context, cl *client) error {
	return cl.c.SendCtx(cl.ctx, 0, nil)
}

// drain documents an intentionally non-cancelable final send with the
// escape hatch.
func drain(ctx context.Context, c *conn) error {
	//insitu:ctxcomm-ok the shutdown drain must complete even after cancel
	return c.Send(0, nil)
}
