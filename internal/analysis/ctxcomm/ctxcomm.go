// Package ctxcomm keeps cancellation plumbed through the transport. A
// function that receives a context.Context is part of a cancelable call
// chain; inside it, calling the bare blocking variant of a transport
// method (Send where SendCtx exists) detaches the operation from
// cancellation, and passing context.Background()/context.TODO() down a
// callee severs the chain for everything below. Both defeat the
// deadline scheduler: a canceled frame must release its rank fleet
// promptly, not after a blocking Recv drains.
package ctxcomm

import (
	"go/ast"
	"go/types"

	"insitu/internal/analysis"
)

// Analyzer flags bare transport calls and dropped contexts in
// context-aware call chains.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcomm",
	Doc: "in functions that take a context.Context, flag bare Send/Recv/RecvAny " +
		"where a SendCtx/RecvCtx/RecvAnyCtx variant exists, and flag " +
		"context.Background()/context.TODO() passed to callees",
	Run: run,
}

// ctxVariants maps a bare blocking method name to its context-aware
// variant; the bare form is flagged only when the receiver's method set
// actually offers the variant.
var ctxVariants = map[string]string{
	"Send":    "SendCtx",
	"Recv":    "RecvCtx",
	"RecvAny": "RecvAnyCtx",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Body != nil && hasCtxParam(pass, fd.Type) {
				// Nested closures inherit the ctx from scope, so the whole
				// body — closures included — is context-aware.
				checkBody(pass, fd.Body)
			} else if fd.Body != nil {
				// Only closures that themselves take a ctx are checked.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok && hasCtxParam(pass, lit.Type) {
						checkBody(pass, lit.Body)
						return false
					}
					return true
				})
			}
			return false
		})
	}
	return nil
}

func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypesInfo.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkBareTransport(pass, call)
		for _, arg := range call.Args {
			if isBackgroundOrTODO(info, arg) {
				pass.Reportf(arg.Pos(), "context.%s drops the caller's ctx; pass the ctx parameter through", calleeName(arg))
			}
		}
		return true
	})
}

// checkBareTransport flags x.Send(...) when x also has SendCtx.
func checkBareTransport(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	variant, ok := ctxVariants[sel.Sel.Name]
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return // package-qualified call, not a method
	}
	recv := selection.Recv()
	if !methodSetHas(recv, variant) {
		return
	}
	pass.Reportf(call.Pos(), "bare %s detaches from cancellation in a ctx-aware function; use %s", sel.Sel.Name, variant)
}

func methodSetHas(t types.Type, name string) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// isBackgroundOrTODO matches the literal calls context.Background() and
// context.TODO() (stored fields like cl.ctx are deliberate and allowed).
func isBackgroundOrTODO(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

func calleeName(e ast.Expr) string {
	call := ast.Unparen(e).(*ast.CallExpr)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Background"
}
