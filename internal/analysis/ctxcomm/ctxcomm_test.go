package ctxcomm

import (
	"testing"

	"insitu/internal/analysis/analysistest"
)

func TestCtxcomm(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer)
}
