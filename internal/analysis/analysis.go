package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis: a name (which is also its
// suppression tag — `//insitu:<name>-ok` silences one diagnostic), docs,
// and a Run function executed once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported problem, anchored to a position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Facts carry `//insitu:` annotations across package boundaries: the set
// of functions (by qualified key, see FuncKey) annotated noalloc or
// arena, plus packages annotated wholesale. In the standalone driver
// they flow in memory in dependency order; under `go vet -vettool` they
// are serialized to the vetx files cmd/go threads between units.
type Facts struct {
	// Noalloc holds FuncKeys of functions whose steady state must not
	// allocate, and "pkg:<path>" markers for //insitu:noalloc-package.
	Noalloc map[string]bool `json:"noalloc,omitempty"`
	// Arena holds FuncKeys of functions whose results are frame-arena
	// owned (valid only until the next call on the same receiver).
	Arena map[string]bool `json:"arena,omitempty"`
}

// NewFacts returns empty, non-nil fact sets.
func NewFacts() *Facts {
	return &Facts{Noalloc: map[string]bool{}, Arena: map[string]bool{}}
}

// Merge adds other's entries into f.
func (f *Facts) Merge(other *Facts) {
	if other == nil {
		return
	}
	for k := range other.Noalloc {
		f.Noalloc[k] = true
	}
	for k := range other.Arena {
		f.Arena[k] = true
	}
}

// A Pass provides one analyzer's view of one package: syntax, types,
// annotations, imported facts, and the Report sink. Suppression
// (`//insitu:<name>-ok`) is applied centrally in Report so every
// analyzer honors the same escape-hatch grammar.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Ann       *Annotations
	Imported  *Facts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless an `//insitu:<name>-ok`
// suppression covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Ann != nil && p.Ann.Suppressed(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// FuncHasMark reports whether fn carries the `//insitu:<mark>` annotation,
// either in this package's syntax or in the imported facts, or via a
// package-level `//insitu:<mark>-package` directive.
func (p *Pass) FuncHasMark(fn *types.Func, mark string) bool {
	if fn == nil {
		return false
	}
	if p.Ann != nil && fn.Pkg() == p.Pkg && p.Ann.Has(fn, mark) {
		return true
	}
	set := p.factSet(mark)
	if set == nil {
		return false
	}
	if set[FuncKey(fn)] {
		return true
	}
	if fn.Pkg() != nil && set["pkg:"+fn.Pkg().Path()] {
		return true
	}
	return false
}

func (p *Pass) factSet(mark string) map[string]bool {
	if p.Imported == nil {
		return nil
	}
	switch mark {
	case MarkNoalloc:
		return p.Imported.Noalloc
	case MarkArena:
		return p.Imported.Arena
	}
	return nil
}

// FuncKey is the cross-package identity of a function: the
// types.Func.FullName with pointer stars and generic instantiations
// normalized away, so `(*lru.Cache[K,V]).Get` and `(lru.Cache).Get`
// agree between the annotation site and the call site.
func FuncKey(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, "*", "")
	for {
		i := strings.IndexByte(name, '[')
		if i < 0 {
			break
		}
		depth, j := 0, i
		for ; j < len(name); j++ {
			switch name[j] {
			case '[':
				depth++
			case ']':
				depth--
			}
			if depth == 0 {
				break
			}
		}
		if j >= len(name) {
			break
		}
		name = name[:i] + name[j+1:]
	}
	return name
}

// Callee resolves the *types.Func statically called by call, or nil for
// calls through function values, built-ins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// RunAnalyzers executes analyzers over one loaded package and returns
// the surviving (unsuppressed) diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, ann *Annotations, imported *Facts) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Ann:       ann,
			Imported:  imported,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers read.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
