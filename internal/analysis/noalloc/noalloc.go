// Package noalloc enforces the zero-allocation steady-state contract
// introduced by PR 4: a function annotated `//insitu:noalloc` — and
// every same-package function it statically calls — must not contain
// heap-allocating constructs. Allocation that is genuinely amortized
// (arena growth guarded by a capacity check, cold error paths) is
// suppressed site-by-site with `//insitu:noalloc-ok <why>`, keeping the
// justification next to the code it excuses.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"insitu/internal/analysis"
)

// Analyzer flags heap-escaping constructs in //insitu:noalloc functions.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "flag allocating constructs (make/new/append, slice & map literals, " +
		"escaping composites, closures, string building, interface boxing, map " +
		"iteration, calls to unannotated functions) in //insitu:noalloc functions " +
		"and their same-package callees",
	Run: run,
}

// safePkgs are packages whose functions are assumed allocation-free in
// steady state without annotation: pure math, atomics, and the
// lock/pool/timer primitives the dispatch path is built from.
// (sync.Pool.Get amortizes its New allocation exactly like an arena.)
var safePkgs = map[string]bool{
	"container/list": true, // element moves relink in place
	"math":           true,
	"math/bits":      true,
	"sync":           true,
	"sync/atomic":    true,
	"time":           true,
	"unsafe":         true,
}

func run(pass *analysis.Pass) error {
	decls := map[types.Object]*ast.FuncDecl{}
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if pass.Ann.HasObj(obj, analysis.MarkNoalloc) {
				roots = append(roots, fd)
			}
		}
	}

	visited := map[*ast.FuncDecl]bool{}
	work := append([]*ast.FuncDecl(nil), roots...)
	for len(work) > 0 {
		fd := work[0]
		work = work[1:]
		if visited[fd] {
			continue
		}
		visited[fd] = true
		work = append(work, checkFunc(pass, fd, decls)...)
	}
	return nil
}

// checkFunc walks one function body, reporting allocating constructs and
// returning the same-package callees the noalloc obligation propagates to.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, decls map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	info := pass.TypesInfo
	var callees []*ast.FuncDecl
	handled := map[ast.Node]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates at creation in //insitu:noalloc function %s; prebuild it in the arena", fd.Name.Name)
			return false // the closure body is not part of this frame's path
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in //insitu:noalloc function %s", fd.Name.Name)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					handled[cl] = true
					pass.Reportf(n.Pos(), "heap-escaping composite literal (&%s) in //insitu:noalloc function %s", typeString(info, cl), fd.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if handled[n] {
				return true
			}
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in //insitu:noalloc function %s", fd.Name.Name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in //insitu:noalloc function %s", fd.Name.Name)
			}
		case *ast.RangeStmt:
			if n.X != nil {
				if _, ok := info.Types[n.X].Type.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map iteration in //insitu:noalloc function %s (hash-order walk defeats the predictable hot path)", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info, n) && info.Types[n].Value == nil {
				pass.Reportf(n.Pos(), "string concatenation allocates in //insitu:noalloc function %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation allocates in //insitu:noalloc function %s", fd.Name.Name)
			}
		case *ast.CallExpr:
			callees = append(callees, checkCall(pass, fd, n, decls)...)
		}
		return true
	})
	return callees
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, decls map[types.Object]*ast.FuncDecl) []*ast.FuncDecl {
	info := pass.TypesInfo
	tv := info.Types[ast.Unparen(call.Fun)]

	// Type conversions: only the ones that copy memory matter.
	if tv.IsType() {
		checkConversion(pass, fd, call, tv.Type)
		return nil
	}

	if tv.IsBuiltin() {
		switch builtinName(call) {
		case "make":
			pass.Reportf(call.Pos(), "make allocates in //insitu:noalloc function %s", fd.Name.Name)
		case "new":
			pass.Reportf(call.Pos(), "new allocates in //insitu:noalloc function %s", fd.Name.Name)
		case "append":
			pass.Reportf(call.Pos(), "append may grow and allocate in //insitu:noalloc function %s", fd.Name.Name)
		}
		return nil
	}

	callee := analysis.Callee(info, call)
	if callee == nil {
		// Calls through function values (the prebuilt kernel closures)
		// are the definition site's responsibility, not the caller's.
		checkBoxedArgs(pass, fd, call)
		return nil
	}
	if callee.Pkg() == nil { // error.Error and other universe methods
		return nil
	}
	if callee.Pkg() == pass.Pkg {
		// Same-package call: the noalloc obligation propagates — unless
		// this call site is explicitly excused as a cold path.
		if pass.Ann.Suppressed(pass.Analyzer.Name, pass.Fset.Position(call.Pos())) {
			return nil
		}
		checkBoxedArgs(pass, fd, call)
		if fdCallee, ok := decls[callee.Origin()]; ok {
			return []*ast.FuncDecl{fdCallee}
		}
		return nil
	}
	if safePkgs[callee.Pkg().Path()] || pass.FuncHasMark(callee.Origin(), analysis.MarkNoalloc) {
		checkBoxedArgs(pass, fd, call)
		return nil
	}
	pass.Reportf(call.Pos(), "call to %s, which is not //insitu:noalloc, in //insitu:noalloc function %s", callee.FullName(), fd.Name.Name)
	return nil
}

func checkConversion(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := pass.TypesInfo.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	switch target.Underlying().(type) {
	case *types.Basic:
		if isStringType(target) && !isStringType(src) {
			pass.Reportf(call.Pos(), "conversion to string allocates in //insitu:noalloc function %s", fd.Name.Name)
		}
	case *types.Slice:
		if isStringType(src) {
			pass.Reportf(call.Pos(), "conversion from string allocates in //insitu:noalloc function %s", fd.Name.Name)
		}
	case *types.Interface:
		if _, ok := src.Underlying().(*types.Interface); !ok && !isUntypedNil(src) {
			pass.Reportf(call.Pos(), "interface conversion allocates in //insitu:noalloc function %s", fd.Name.Name)
		}
	}
}

// checkBoxedArgs flags concrete values passed to interface-typed
// parameters: the conversion boxes on the heap unless the compiler can
// prove otherwise, which a hot path must not rely on.
func checkBoxedArgs(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	sigType := info.Types[call.Fun].Type
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || isUntypedNil(at) {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if pointerShaped(at) {
			continue // pointers live in the iface data word, no box
		}
		pass.Reportf(arg.Pos(), "argument boxed into interface parameter in //insitu:noalloc function %s", fd.Name.Name)
	}
}

func builtinName(call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func typeString(info *types.Info, cl *ast.CompositeLit) string {
	if t := info.Types[cl].Type; t != nil {
		s := t.String()
		if i := strings.LastIndexByte(s, '/'); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	return "composite"
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && isStringType(t)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports types the runtime stores directly in an
// interface's data word without allocating: pointers, channels, maps,
// funcs, and unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
