// Package fixture exercises the noalloc analyzer: every `// want`
// comment asserts a diagnostic on its line; lines without one must stay
// clean. This file never reaches the build (testdata is invisible to go
// list); it exists to prove that allocating inside a noalloc kernel
// breaks the lint gate.
package fixture

import (
	"errors"
	"math"
)

type vec struct{ x, y, z float64 }

// add is a clean kernel: pure arithmetic and value composites stay on
// the stack.
//
//insitu:noalloc
func add(a, b vec) vec {
	return vec{a.x + b.x, a.y + b.y, a.z + b.z}
}

// norm may call safe-listed packages without annotation.
//
//insitu:noalloc
func norm(v vec) float64 {
	return math.Sqrt(v.x*v.x + v.y*v.y + v.z*v.z)
}

//insitu:noalloc
func allocates(n int) {
	s := make([]float64, n) // want `make allocates in //insitu:noalloc function allocates`
	s = append(s, 1)        // want `append may grow and allocate`
	_ = s
	p := new(vec) // want `new allocates`
	_ = p
	m := map[int]int{} // want `map literal allocates`
	for range m {      // want `map iteration`
	}
	v := &vec{} // want `heap-escaping composite literal`
	_ = v
	f := func() {} // want `closure allocates at creation`
	f()
	go add(vec{}, vec{}) // want `go statement allocates a goroutine`
}

//insitu:noalloc
func builds(a, b string, bs []byte) string {
	s := a + b     // want `string concatenation allocates`
	s += a         // want `string concatenation allocates`
	_ = string(bs) // want `conversion to string allocates`
	_ = []byte(a)  // want `conversion from string allocates`
	return s
}

//insitu:noalloc
func converts(v vec) any {
	return any(v) // want `interface conversion allocates`
}

//insitu:noalloc
func coldCall() error {
	return errors.New("cold") // want `call to errors.New, which is not //insitu:noalloc`
}

// root's obligation propagates to its unannotated same-package callee.
//
//insitu:noalloc
func root() { helper() }

func helper() {
	_ = make([]int, 4) // want `make allocates in //insitu:noalloc function helper`
}

func eat(v interface{}) { _ = v }

//insitu:noalloc
func boxes(v vec, p *vec) {
	eat(v) // want `argument boxed into interface parameter`
	eat(p) // pointer-shaped: rides in the iface data word, no box
}

// grow shows the escape hatch: capacity-guarded arena growth is the
// sanctioned amortized-allocation idiom.
//
//insitu:noalloc
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		//insitu:noalloc-ok capacity-guarded arena growth, amortized across frames
		buf = make([]int, n)
	}
	return buf[:n]
}

// unconstrained carries no annotation and is not reachable from one, so
// it may allocate freely.
func unconstrained() []int {
	return make([]int, 8)
}
