package noalloc

import (
	"testing"

	"insitu/internal/analysis/analysistest"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer)
}
