// Package leaselife enforces the repo's two lifetime invariants.
//
// Lease release: a RunnerCache lease (any Acquire whose result has a
// Release method) pins a prepared runner and its device pool; a path
// that exits the acquiring function without Release leaks the pin and
// eventually starves the cache. Every exit path after an acquire must
// release (directly, via defer, or behind an `if lease != nil` guard).
//
// Arena escape: a value returned by an `//insitu:arena` function (frame
// images, compositor output, compactor index lists) is only valid until
// the next call on the same receiver. Storing it in a field, global,
// channel, or composite literal, or returning it from a function not
// itself annotated arena, lets a stale frame escape; deep-copy first
// (the copy is a fresh value, so copies don't propagate the taint).
package leaselife

import (
	"go/ast"
	"go/token"
	"go/types"

	"insitu/internal/analysis"
)

// Analyzer flags unreleased leases and arena-owned values that outlive
// their frame.
var Analyzer = &analysis.Analyzer{
	Name: "leaselife",
	Doc: "flag RunnerCache-style leases not released on every path, and " +
		"//insitu:arena results stored or returned beyond their frame",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLeases(pass, fn.Body)
					checkArena(pass, fn.Body, pass.TypesInfo.Defs[fn.Name])
				}
				return false
			}
			return true
		})
	}
	return nil
}

// --- lease release -----------------------------------------------------

// checkLeases finds Acquire calls in the unit (including nested
// closures, each treated as its own unit) and verifies a Release on
// every subsequent exit path.
func checkLeases(pass *analysis.Pass, body *ast.BlockStmt) {
	type acquire struct {
		stmt ast.Stmt
		obj  types.Object
		err  types.Object // the error result, when assigned to an ident
	}
	var acquires []acquire
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkLeases(pass, lit.Body)
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isLeaseAcquire(pass, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "lease discarded at acquire; it can never be released")
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return true
		}
		a := acquire{stmt: as, obj: obj}
		if len(as.Lhs) == 2 {
			if errID, ok := as.Lhs[1].(*ast.Ident); ok {
				if eo := pass.TypesInfo.Defs[errID]; eo != nil {
					a.err = eo
				} else {
					a.err = pass.TypesInfo.Uses[errID]
				}
			}
		}
		acquires = append(acquires, a)
		return true
	})
	for _, a := range acquires {
		w := &leaseWalker{pass: pass, acquireStmt: a.stmt, lease: a.obj, acquireErr: a.err}
		out, terminated := w.block(body.List, leaseState{})
		if !terminated && out.acquired && !out.released {
			pass.Reportf(body.Rbrace, "lease %s is not released before the function returns", a.obj.Name())
		}
	}
}

// isLeaseAcquire reports whether call is a method named Acquire whose
// first result (dereferenced) has a Release method.
func isLeaseAcquire(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Acquire" {
		return false
	}
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return hasRelease(sig.Results().At(0).Type())
}

func hasRelease(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "Release" {
				return true
			}
		}
	}
	return false
}

type leaseState struct {
	acquired, released bool
}

type leaseWalker struct {
	pass        *analysis.Pass
	acquireStmt ast.Stmt
	lease       types.Object
	acquireErr  types.Object
}

// block walks a statement list, returning the out-state and whether the
// list unconditionally terminates (so following statements are dead).
func (w *leaseWalker) block(stmts []ast.Stmt, s leaseState) (leaseState, bool) {
	for _, stmt := range stmts {
		var term bool
		s, term = w.stmt(stmt, s)
		if term {
			return s, true
		}
	}
	return s, false
}

func (w *leaseWalker) stmt(stmt ast.Stmt, s leaseState) (leaseState, bool) {
	if stmt == w.acquireStmt {
		s.acquired = true
		return s, false
	}
	// Once the acquire's error variable is reassigned (err reused by a
	// later call), `if err != nil` no longer means "the acquire failed":
	// stop treating it as the lease-free branch.
	if w.acquireErr != nil && w.reassignsAcquireErr(stmt) {
		w.acquireErr = nil
	}
	switch st := stmt.(type) {
	case *ast.ReturnStmt:
		// Returning the lease itself transfers ownership to the caller.
		for _, r := range st.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && w.identIsLease(id) {
				return s, true
			}
		}
		if s.acquired && !s.released {
			w.pass.Reportf(st.Pos(), "lease %s may not be released on this return path", w.lease.Name())
		}
		return s, true
	case *ast.BranchStmt:
		return s, true
	case *ast.IfStmt:
		return w.ifStmt(st, s)
	case *ast.ForStmt:
		return w.loop(st.Body, s)
	case *ast.RangeStmt:
		return w.loop(st.Body, s)
	case *ast.SwitchStmt:
		return w.cases(caseBodies(st.Body), hasDefaultCase(st.Body), s)
	case *ast.TypeSwitchStmt:
		return w.cases(caseBodies(st.Body), hasDefaultCase(st.Body), s)
	case *ast.SelectStmt:
		return w.cases(commBodies(st.Body), false, s)
	case *ast.BlockStmt:
		return w.block(st.List, s)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, s)
	default:
		if w.containsRelease(stmt) {
			s.released = true
		}
		if w.containsAcquire(stmt) {
			s.acquired = true
		}
		return s, false
	}
}

func (w *leaseWalker) ifStmt(st *ast.IfStmt, s leaseState) (leaseState, bool) {
	// `if lease != nil { lease.Release() }` releases on every path that
	// has anything to release.
	nilGuardRelease := w.isNilGuard(st.Cond) && w.containsRelease(st.Body)

	// `lease, err := Acquire(...); if err != nil { ... }`: the error
	// branch holds no lease, so returns inside it are clean.
	bIn := s
	if w.isAcquireErrGuard(st.Cond) {
		bIn.acquired = false
	}
	bOut, bTerm := w.block(st.Body.List, bIn)
	eOut, eTerm := s, false
	switch e := st.Else.(type) {
	case *ast.BlockStmt:
		eOut, eTerm = w.block(e.List, s)
	case *ast.IfStmt:
		eOut, eTerm = w.stmt(e, s)
	}
	out, term := merge(s, bOut, bTerm, eOut, eTerm, st.Else != nil)
	if nilGuardRelease {
		out.released = true
	}
	return out, term
}

func (w *leaseWalker) loop(body *ast.BlockStmt, s leaseState) (leaseState, bool) {
	bOut, _ := w.block(body.List, s)
	// A loop body may run zero times; only an unbalanced acquire inside
	// it (acquired without release) persists past the loop.
	if bOut.acquired && !bOut.released {
		s.acquired = true
	}
	return s, false
}

func (w *leaseWalker) cases(bodies [][]ast.Stmt, hasDefault bool, s leaseState) (leaseState, bool) {
	outs := make([]leaseState, 0, len(bodies)+1)
	allTerm := hasDefault
	for _, b := range bodies {
		o, t := w.block(b, s)
		if !t {
			outs = append(outs, o)
			allTerm = false
		}
	}
	if !hasDefault {
		outs = append(outs, s) // the no-case-taken path
		allTerm = false
	}
	if allTerm && len(outs) == 0 {
		return s, true
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out.acquired = out.acquired || o.acquired
		out.released = out.released && o.released
	}
	return out, false
}

// merge combines if/else branch out-states over the fall-through paths.
func merge(before, bOut leaseState, bTerm bool, eOut leaseState, eTerm bool, hasElse bool) (leaseState, bool) {
	if !hasElse {
		eOut, eTerm = before, false
	}
	switch {
	case bTerm && eTerm:
		return before, true
	case bTerm:
		return eOut, false
	case eTerm:
		return bOut, false
	}
	return leaseState{
		acquired: bOut.acquired || eOut.acquired,
		released: bOut.released && eOut.released,
	}, false
}

// reassignsAcquireErr reports whether stmt (or anything nested in it)
// assigns a new value to the acquire's error variable.
func (w *leaseWalker) reassignsAcquireErr(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.pass.TypesInfo.Uses[id]
			if obj == nil {
				obj = w.pass.TypesInfo.Defs[id]
			}
			if obj == w.acquireErr {
				found = true
			}
		}
		return !found
	})
	return found
}

// isAcquireErrGuard matches `if <acquire-err> != nil`.
func (w *leaseWalker) isAcquireErrGuard(cond ast.Expr) bool {
	if w.acquireErr == nil {
		return false
	}
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return false
	}
	for _, pair := range [][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[id]
		}
		if obj != w.acquireErr {
			continue
		}
		if nid, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && nid.Name == "nil" {
			return true
		}
	}
	return false
}

func (w *leaseWalker) isNilGuard(cond ast.Expr) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.NEQ {
		return false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	for _, pair := range [][2]ast.Expr{{x, y}, {y, x}} {
		if id, ok := pair[0].(*ast.Ident); ok && w.identIsLease(id) {
			if nid, ok := pair[1].(*ast.Ident); ok && nid.Name == "nil" {
				return true
			}
		}
	}
	return false
}

func (w *leaseWalker) containsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Release" {
			return !found
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && w.identIsLease(id) {
			found = true
		}
		return !found
	})
	return found
}

func (w *leaseWalker) containsAcquire(n ast.Node) bool {
	return n == w.acquireStmt
}

func (w *leaseWalker) identIsLease(id *ast.Ident) bool {
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = w.pass.TypesInfo.Defs[id]
	}
	return obj == w.lease
}

func caseBodies(b *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range b.List {
		out = append(out, c.(*ast.CaseClause).Body)
	}
	return out
}

func hasDefaultCase(b *ast.BlockStmt) bool {
	for _, c := range b.List {
		if c.(*ast.CaseClause).List == nil {
			return true
		}
	}
	return false
}

func commBodies(b *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range b.List {
		out = append(out, c.(*ast.CommClause).Body)
	}
	return out
}

// --- arena escape ------------------------------------------------------

// checkArena flags arena-owned values (results of //insitu:arena calls)
// that escape the frame: stored into fields/globals/indexes/channels,
// captured in composite literals, or returned from a function that is
// not itself //insitu:arena.
func checkArena(pass *analysis.Pass, body *ast.BlockStmt, fnObj types.Object) {
	info := pass.TypesInfo
	tainted := map[types.Object]bool{}

	isArenaCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		callee := analysis.Callee(info, call)
		return callee != nil && pass.FuncHasMark(callee.Origin(), analysis.MarkArena)
	}
	taintedExpr := func(e ast.Expr) bool {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			obj := info.Uses[id]
			return obj != nil && tainted[obj]
		}
		return isArenaCall(e)
	}
	// pointerLike: only pointer/slice/map results can alias the arena.
	pointerLike := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		switch obj.Type().Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
			return true
		}
		return false
	}

	// Two lexical rounds of taint propagation through assignments.
	for round := 0; round < 2; round++ {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			anyTaintedRHS := false
			for _, r := range as.Rhs {
				if taintedExpr(r) {
					anyTaintedRHS = true
				}
			}
			if !anyTaintedRHS {
				return true
			}
			for i, l := range as.Lhs {
				if len(as.Rhs) == len(as.Lhs) && !taintedExpr(as.Rhs[i]) {
					continue
				}
				id, ok := l.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if pointerLike(obj) {
					tainted[obj] = true
				}
			}
			return true
		})
	}

	fnIsArena := false
	if fn, ok := fnObj.(*types.Func); ok {
		fnIsArena = pass.FuncHasMark(fn, analysis.MarkArena)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if fnIsArena {
				return true
			}
			for _, r := range n.Results {
				if taintedExpr(r) {
					pass.Reportf(r.Pos(), "arena-owned value returned from %s, which is not //insitu:arena; deep-copy it or annotate the function", nameOf(fnObj))
				}
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !taintedExpr(rhs) {
					continue
				}
				if escapingLHS(info, l) {
					pass.Reportf(n.Pos(), "arena-owned value stored beyond the frame; deep-copy it first (it is only valid until the next frame)")
				}
			}
		case *ast.SendStmt:
			if taintedExpr(n.Value) {
				pass.Reportf(n.Pos(), "arena-owned value sent on a channel; deep-copy it first (it is only valid until the next frame)")
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if taintedExpr(v) {
					pass.Reportf(v.Pos(), "arena-owned value captured in composite literal; deep-copy it first (it is only valid until the next frame)")
				}
			}
		}
		return true
	})
}

// escapingLHS reports whether assigning to l lets the value outlive the
// function: a field, an element of something, a dereference, or a
// package-level variable.
func escapingLHS(info *types.Info, l ast.Expr) bool {
	switch l := l.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := info.Uses[l]
		if obj == nil {
			obj = info.Defs[l]
		}
		return obj != nil && obj.Parent() == obj.Pkg().Scope()
	}
	return false
}

func nameOf(obj types.Object) string {
	if obj == nil {
		return "this function"
	}
	return obj.Name()
}
