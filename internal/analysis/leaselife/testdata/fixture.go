// Package fixture exercises the leaselife analyzer: lease-release
// completeness over a local Acquire/Release pair (any Acquire whose
// first result has a Release method counts), and arena-escape tracking
// over a local //insitu:arena function. The leak cases prove that
// deleting a Release breaks the lint gate.
package fixture

import "errors"

type lease struct{}

func (l *lease) Release() {}

type cache struct{}

func (c *cache) Acquire(key string) (*lease, error) { return &lease{}, nil }

func work() error { return nil }

// leaked drops the lease on the failure path.
func leaked(c *cache, fail bool) error {
	l, err := c.Acquire("k")
	if err != nil {
		return err
	}
	if fail {
		return errors.New("lost the lease") // want `lease l may not be released on this return path`
	}
	l.Release()
	return nil
}

// missingAtEnd never releases at all.
func missingAtEnd(c *cache) {
	l, _ := c.Acquire("k")
	_ = l
} // want `lease l is not released before the function returns`

// discarded can never be released.
func discarded(c *cache) {
	_, _ = c.Acquire("k") // want `lease discarded at acquire; it can never be released`
}

// reassigned overwrites the acquire error with a later call's: from
// then on `if err != nil` paths hold the lease and must release it.
func reassigned(c *cache) error {
	l, err := c.Acquire("k")
	if err != nil {
		return err
	}
	err = work()
	if err != nil {
		return err // want `lease l may not be released on this return path`
	}
	l.Release()
	return nil
}

// deferred releases on every path.
func deferred(c *cache) error {
	l, err := c.Acquire("k")
	if err != nil {
		return err
	}
	defer l.Release()
	return work()
}

// transferred hands the lease to the caller, who owns it now.
func transferred(c *cache) (*lease, error) {
	l, err := c.Acquire("k")
	if err != nil {
		return nil, err
	}
	return l, nil
}

// nilGuarded releases behind the standard nil check.
func nilGuarded(c *cache) {
	l, _ := c.Acquire("k")
	if l != nil {
		l.Release()
	}
}

// expectedFailure documents a test-style acquire that is asserted to
// fail: the nil path carries nothing to release, excused with the
// escape hatch.
func expectedFailure(c *cache) {
	l, _ := c.Acquire("missing")
	if l == nil {
		//insitu:leaselife-ok expected failure: a nil lease carries nothing to release
		return
	}
	l.Release()
}

// --- arena escape ------------------------------------------------------

type renderer struct{ px []float64 }

var last []float64

// render returns its frame arena; the slice is valid until the next
// render call on the same receiver.
//
//insitu:arena
func (r *renderer) render() []float64 { return r.px }

// stores keeps the arena value in a global that outlives the frame.
func stores(r *renderer) {
	px := r.render()
	last = px // want `arena-owned value stored beyond the frame`
}

// returnsArena hands the arena value out of a non-arena function.
func returnsArena(r *renderer) []float64 {
	px := r.render()
	return px // want `arena-owned value returned from returnsArena`
}

// sends lets another goroutine hold the frame.
func sends(r *renderer, ch chan []float64) {
	px := r.render()
	ch <- px // want `arena-owned value sent on a channel`
}

// copies deep-copies first: the copy is a fresh value. Clean.
func copies(r *renderer) []float64 {
	px := r.render()
	out := make([]float64, len(px))
	copy(out, px)
	return out
}

// forwards is itself //insitu:arena, so returning the frame is its
// documented contract. Clean.
//
//insitu:arena
func forwards(r *renderer) []float64 {
	return r.render()
}

// consumed uses the frame before the next render and documents it.
func consumed(r *renderer) {
	px := r.render()
	//insitu:leaselife-ok drained synchronously below before any further render
	last = px
	last = nil
}
