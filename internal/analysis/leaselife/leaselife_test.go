package leaselife

import (
	"testing"

	"insitu/internal/analysis/analysistest"
)

func TestLeaselife(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer)
}
