// Package analysis is the repo's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface the insitulint analyzers are written against. The environment
// this repo builds in has no module proxy access, so the framework is
// grown from the standard library (go/ast, go/types, go/parser) instead
// of vendoring x/tools; the Analyzer/Pass/Diagnostic/Facts shapes are
// kept close enough that the analyzers would port to the real framework
// by changing one import line.
//
// # Why these invariants are worth a compiler
//
// The subsystems built in PRs 4-6 (see CHANGES.md) each rest on a
// contract that the Go compiler does not check and that one bad edit
// silently breaks:
//
//   - Zero-allocation steady state (PR 4). The renderers own frame
//     arenas — reused buffers, prebuilt kernel closures, images valid
//     until the next Render — so steady-state frames perform no heap
//     allocation. A stray fmt.Sprintf or closure in a kernel reverts
//     months of arena work and only shows up as a benchmark regression.
//     The noalloc analyzer makes the contract syntactic: functions
//     marked `//insitu:noalloc` (and every same-package function they
//     statically call) must not contain allocating constructs, and
//     cross-package callees must be annotated or safe-listed.
//
//   - Collective discipline (PR 6). The cluster runs collective
//     reductions (bounds, field ranges, error barriers) every frame;
//     every rank must execute every collective or the fleet deadlocks.
//     The collective analyzer flags collectives under rank-local
//     conditions and rank-local or error-path early exits that skip a
//     later collective, steering code toward the two-phase error
//     barrier (AllReduce an error flag, then take the same exit
//     together).
//
//   - Lease and arena lifetimes (PR 5/PR 6). RunnerCache leases pin
//     prepared runners and their device pools; a path that exits
//     without Release starves the cache. Arena-owned values (frame
//     images, compactor index lists, compositor output) are valid only
//     until the next frame; storing one in a field, global, or channel
//     is a use-after-overwrite waiting for load. The leaselife analyzer
//     checks release-on-every-path and arena escape.
//
//   - Cancelable transport (PR 6). comm gained ctx-aware
//     SendCtx/RecvCtx/RecvAnyCtx so cluster shutdown can interrupt
//     blocked ranks. The ctxcomm analyzer flags bare Send/Recv inside
//     ctx-param functions when the Ctx variant exists, and
//     context.Background()/TODO() passed down while a caller's ctx is
//     in scope.
//
// # Annotation grammar
//
//	//insitu:noalloc            (func doc) zero-allocation obligation
//	//insitu:arena              (func doc) results are frame-owned
//	//insitu:<mark>-package     (package doc) mark every non-test function
//	//insitu:<analyzer>-ok why  (line) suppress one diagnostic, with the
//	                            justification kept next to the code
//
// Suppressions are applied centrally in Pass.Reportf: a comment on line
// L covers diagnostics on L and L+1, so the comment trails the flagged
// line or sits on its own line above.
//
// # Running
//
// tools/insitulint is both a standalone multichecker
// (`./bin/insitulint ./...`, exit 2 on findings) and a `go vet`
// vettool (`make lint`), speaking vet's unitchecker .cfg/.vetx
// protocol so annotations flow across packages as serialized Facts.
// Fixture-driven tests live under each analyzer's testdata/, run by
// internal/analysis/analysistest.
package analysis
