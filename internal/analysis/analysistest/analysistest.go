// Package analysistest runs an analyzer over a fixture directory and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest with no dependency beyond
// the standard library. Fixtures live under testdata/ (which go list
// ignores, so deliberately-bad code never reaches the build) and must be
// a single self-contained package importing only the standard library.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"insitu/internal/analysis"
)

// want is one expected-diagnostic pattern attached to a fixture line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads every .go file in dir as one package, runs the analyzers,
// and fails the test for any diagnostic without a matching `// want` on
// its line or any `// want` left unmatched.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags, fset, files := load(t, dir, analyzers)

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// load parses, typechecks, and analyzes the fixture package.
func load(t *testing.T, dir string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (err=%v)", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{
		// The source importer typechecks stdlib dependencies from GOROOT
		// source, so fixtures can import context etc. without export data.
		Importer: importer.ForCompiler(fset, "source", nil),
	}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("fixture does not typecheck: %v", err)
	}
	ann := analysis.BuildAnnotations(fset, files, info)
	diags, err := analysis.RunAnalyzers(analyzers, fset, files, pkg, info, ann, nil)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return diags, fset, files
}

// collectWants scans fixture comments for `// want "re" ["re" ...]`.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(t, pos, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{
						file: pos.Filename, line: pos.Line, re: re, raw: raw,
					})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings or backquoted raw
// strings: `"a b" "c"` -> ["a b", "c"].
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s: want patterns must be quoted strings, got %q", pos, s)
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern: %q", pos, s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// claim marks the first unmatched want covering pos that matches msg.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
