package obs

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// TestBucketLayout proves the bucket map is exhaustive and monotone:
// every value lands in exactly the bucket whose bounds contain it.
func TestBucketLayout(t *testing.T) {
	probes := []int64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 1 << 20,
		1<<40 + 12345, math.MaxInt64 - 1, math.MaxInt64, -5}
	for _, v := range probes {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := BucketBounds(i)
		want := v
		if want < 0 {
			want = 0
		}
		// The final bucket's hi of MaxInt64 stands in for +Inf, so it
		// is closed on the right.
		if want < lo || (want >= hi && i != NumBuckets-1) {
			t.Errorf("value %d in bucket %d but bounds [%d,%d)", v, i, lo, hi)
		}
	}
	// Monotone and gap-free across the whole layout.
	prevHi := int64(0)
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty: [%d,%d)", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != math.MaxInt64 {
		t.Fatalf("layout ends at %d, want MaxInt64", prevHi)
	}
}

// TestHistogramQuantiles checks interpolated quantiles stay within one
// bucket's relative width of the true values.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10000; i++ {
		h.Observe(int64(i) * 1000) // 1µs .. 10ms, uniform
	}
	s := h.Snapshot()
	if s.Count != 10000 {
		t.Fatalf("count = %d, want 10000", s.Count)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 5000e3}, {0.95, 9500e3}, {0.99, 9900e3},
	} {
		got := s.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 1.0/subCount {
			t.Errorf("q%.2f = %.0f, want %.0f (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
	if mean := s.Mean(); math.Abs(mean-5000500)/5000500 > 1e-9 {
		t.Errorf("mean = %f, want 5000500", mean)
	}
}

// TestHistogramQuantileSmallCount: high quantiles over few observations
// must land in the bucket of the larger observations — a service that
// rendered one slow frame and one cache hit has a p95 near the slow
// frame, not the hit.
func TestHistogramQuantileSmallCount(t *testing.T) {
	var h Histogram
	h.Observe(6_000)      // a ~6µs cache hit
	h.Observe(67_000_000) // a ~67ms render
	s := h.Snapshot()
	for _, q := range []float64{0.95, 0.99} {
		if got := s.Quantile(q); got < 30e6 {
			t.Errorf("q%.2f = %.0fns, want in the slow frame's bucket (>=30ms)", q, got)
		}
	}
	if p50 := s.Quantile(0.50); p50 > 10_000 {
		t.Errorf("p50 = %.0fns, want in the fast observation's bucket", p50)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(1000)
		b.Observe(1000000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if p50 := sa.Quantile(0.5); p50 < 1000 || p50 > 1000000 {
		t.Errorf("merged p50 = %f, want between the two modes", p50)
	}
	j := sa.JSON()
	if j.Count != 200 || len(j.Buckets) != 2 {
		t.Errorf("JSON count=%d buckets=%d, want 200/2", j.Count, len(j.Buckets))
	}
}

func TestDriftHistogram(t *testing.T) {
	var d DriftHistogram
	d.ObservePair(1.1, 1.0) // +10%
	d.ObservePair(0.9, 1.0) // -10%
	d.ObservePair(1.0, 0)   // ignored: measured <= 0
	d.ObservePair(5.0, 1.0) // +400%
	s := d.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if me := s.MeanError(); math.Abs(me-4.0/3) > 1e-3 {
		t.Errorf("mean error = %f, want %.3f", me, 4.0/3)
	}
	if ma := s.MeanAbsError(); math.Abs(ma-4.2/3) > 1e-3 {
		t.Errorf("mean abs error = %f, want %.3f", ma, 4.2/3)
	}
	// Bounds cover the whole real line monotonically.
	prevHi := -1e18
	for i := 0; i < NumDriftBuckets; i++ {
		lo, hi := DriftBucketBounds(i)
		if lo != prevHi {
			t.Fatalf("drift bucket %d starts at %g, previous ended at %g", i, lo, prevHi)
		}
		prevHi = hi
	}
}

func TestResidualsRegistry(t *testing.T) {
	r := NewResiduals([]ResidualKey{
		{Backend: "raytrace", Term: "render"},
		{Backend: "raytrace", Term: "composite"},
	})
	r.Observe("raytrace", "render", 1.2, 1.0)
	r.Observe("volume", "render", 1.2, 1.0) // unknown key: dropped
	out := r.JSON()
	if len(out) != 1 {
		t.Fatalf("JSON series = %d, want 1", len(out))
	}
	if out[0].Backend != "raytrace" || out[0].Term != "render" || out[0].Count != 1 {
		t.Errorf("series = %+v", out[0])
	}
	var nilR *Residuals
	nilR.Observe("x", "y", 1, 1) // nil registry must be a no-op
}

func TestFrameTraceSpans(t *testing.T) {
	epoch := time.Unix(100, 0)
	var tr FrameTrace
	tr.Backend = "raytrace"
	tr.Begin(epoch)
	tr.Span(StageAdmit, epoch, 2*time.Millisecond)
	tr.Span(StageRender, epoch.Add(5*time.Millisecond), 40*time.Millisecond)
	tr.SpanNanos(StageRankRender, int64(6*time.Millisecond), int64(30*time.Millisecond))
	tr.Finish(epoch.Add(50 * time.Millisecond))

	if !tr.Has(StageAdmit) || !tr.Has(StageRender) || !tr.Has(StageRankRender) {
		t.Fatal("recorded stages not reported by Has")
	}
	if tr.Has(StageEncode) {
		t.Fatal("unrecorded stage reported present")
	}
	if d := tr.Dur(StageRender); d != 40*time.Millisecond {
		t.Errorf("render dur = %s", d)
	}
	if off := tr.StartOffset(StageRender); off != 5*time.Millisecond {
		t.Errorf("render offset = %s", off)
	}
	if tr.Wall() != 50*time.Millisecond {
		t.Errorf("wall = %s", tr.Wall())
	}
	j := tr.JSON()
	if len(j.Spans) != 3 || j.WallSeconds != 0.05 || j.Backend != "raytrace" {
		t.Errorf("JSON = %+v", j)
	}
}

func TestTracerRingAndLast(t *testing.T) {
	tr := NewTracer(2, 4) // 8 slots total
	epoch := time.Unix(0, 0)
	for i := 0; i < 20; i++ {
		var ft FrameTrace
		ft.Seq = tr.NextSeq()
		ft.Begin(epoch.Add(time.Duration(i) * time.Second))
		ft.Span(StageRender, epoch, time.Millisecond)
		ft.Finish(epoch.Add(time.Duration(i)*time.Second + time.Millisecond))
		tr.Commit(&ft)
	}
	last := tr.Last(5)
	if len(last) != 5 {
		t.Fatalf("Last(5) = %d traces", len(last))
	}
	for i := 1; i < len(last); i++ {
		if last[i].Seq <= last[i-1].Seq {
			t.Fatalf("Last not ordered by seq: %d then %d", last[i-1].Seq, last[i].Seq)
		}
	}
	if last[len(last)-1].Seq != 20 {
		t.Errorf("newest seq = %d, want 20", last[len(last)-1].Seq)
	}
	// Asking for more than retained returns what the rings hold.
	if got := len(tr.Last(1000)); got != 8 {
		t.Errorf("Last(1000) = %d, want ring capacity 8", got)
	}
	var nilTr *Tracer
	nilTr.Commit(&FrameTrace{}) // nil tracer must be a no-op
	if nilTr.Last(3) != nil {
		t.Error("nil tracer Last != nil")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(1, 4)
	epoch := time.Unix(1, 0)
	var ft FrameTrace
	ft.Seq = tr.NextSeq()
	ft.Backend = "volume"
	ft.Begin(epoch)
	ft.Span(StageRender, epoch, 3*time.Millisecond)
	ft.Span(StageEncode, epoch.Add(3*time.Millisecond), time.Millisecond)
	ft.Finish(epoch.Add(4 * time.Millisecond))
	tr.Commit(&ft)

	var sb strings.Builder
	if err := WriteChromeTrace(&sb, tr.Last(10)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"ph":"X"`, `"name":"render"`, `"name":"encode"`, `"backend":"volume"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s in:\n%s", want, out)
		}
	}
}

func TestStageLatency(t *testing.T) {
	var l StageLatency
	epoch := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		var ft FrameTrace
		ft.Begin(epoch)
		ft.Span(StageRender, epoch, 2*time.Millisecond)
		ft.Span(StageEncode, epoch.Add(2*time.Millisecond), time.Millisecond)
		ft.Finish(epoch.Add(3 * time.Millisecond))
		l.ObserveTrace(&ft)
	}
	if got := l.Stage(StageRender).Count(); got != 10 {
		t.Errorf("render count = %d", got)
	}
	if got := l.Total().Count(); got != 10 {
		t.Errorf("total count = %d", got)
	}
	j := l.JSON()
	if len(j.Stages) != 2 || j.Total.Count != 10 {
		t.Errorf("JSON stages=%d total=%d", len(j.Stages), j.Total.Count)
	}
}

func TestValidatePromText(t *testing.T) {
	if err := ValidatePromText("good_metric{a=\"b\"} 1\n# comment\nplain 2.5\n"); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	for _, bad := range []string{"", "9starts_with_digit 1\n", "name{a=b} 1\n", "name one\n"} {
		if err := ValidatePromText(bad); err == nil {
			t.Errorf("invalid exposition %q accepted", bad)
		}
	}
}

func TestWriteProm(t *testing.T) {
	type inner struct {
		Hits   int64   `json:"hits"`
		Rate   float64 `json:"rate"`
		State  string  `json:"state"`
		hidden int
	}
	type op struct {
		Backend string  `json:"backend"`
		Seconds float64 `json:"seconds"`
	}
	type top struct {
		Uptime  float64          `json:"uptime_seconds"`
		Live    bool             `json:"live"`
		Cache   inner            `json:"cache"`
		Ops     []op             `json:"ops"`
		ByRank  map[string]int64 `json:"by_rank"`
		Lat     HistogramJSON    `json:"latency_seconds"`
		Drift   []DriftJSON      `json:"model_drift"`
		Skipped *inner           `json:"skipped"`
	}
	var h Histogram
	h.Observe(1500)
	h.Observe(2500)
	var d DriftHistogram
	d.Observe(0.07)
	dsnap := d.Snapshot()
	hsnap := h.Snapshot()
	hj := hsnap.JSON()
	v := top{
		Uptime: 12.5, Live: true,
		Cache:  inner{Hits: 3, Rate: 0.75, State: "warm", hidden: 9},
		Ops:    []op{{Backend: "raytrace", Seconds: 0.01}, {Backend: "volume", Seconds: 0.02}},
		ByRank: map[string]int64{"1": 5, "2": 7},
		Lat:    hj,
		Drift:  []DriftJSON{dsnap.JSON("raytrace", "render")},
	}
	var sb strings.Builder
	if err := WriteProm(&sb, "renderd", v); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"renderd_uptime_seconds 12.5",
		"renderd_live 1",
		"renderd_cache_hits 3",
		`renderd_cache_state{value="warm"} 1`,
		`renderd_ops_seconds{backend="raytrace"} 0.01`,
		`renderd_ops_seconds{backend="volume"} 0.02`,
		`renderd_by_rank{key="1"} 5`,
		`renderd_latency_seconds_bucket{le="+Inf"} 2`,
		"renderd_latency_seconds_count 2",
		`renderd_model_drift_bucket{backend="raytrace",term="render",le="0.1"} 1`,
		`renderd_model_drift_count{backend="raytrace",term="render"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "skipped") {
		t.Error("nil pointer field should be skipped")
	}
	if strings.Contains(out, "hidden") {
		t.Error("unexported field should be skipped")
	}
	// Histogram buckets must be cumulative.
	var cum []uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "renderd_latency_seconds_bucket{le=") && !strings.Contains(line, "+Inf") {
			var v uint64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v)
			cum = append(cum, v)
		}
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Errorf("buckets not cumulative: %v", cum)
		}
	}
	if err := ValidatePromText(out); err != nil {
		t.Errorf("exposition fails validator: %v", err)
	}
}
