package obs

import (
	"testing"
	"time"
)

// BenchmarkHistogramObserve must stay 0 allocs/op — it runs on every
// frame's hot path and is guarded by the bench-json 0-alloc baseline.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*37 + 1000)
	}
}

// BenchmarkTraceSpan measures a full trace lifecycle — begin, spans,
// finish, commit into the ring, fold into the stage histograms — and
// must stay 0 allocs/op under the same baseline guard.
func BenchmarkTraceSpan(b *testing.B) {
	tr := NewTracer(4, 256)
	var lat StageLatency
	epoch := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ft FrameTrace
		ft.Seq = tr.NextSeq()
		ft.Backend = "raytrace"
		ft.Begin(epoch)
		ft.Span(StageAdmit, epoch, 10*time.Microsecond)
		ft.Span(StageQueueWait, epoch.Add(10*time.Microsecond), 5*time.Microsecond)
		ft.Span(StageRender, epoch.Add(15*time.Microsecond), 2*time.Millisecond)
		ft.Span(StageEncode, epoch.Add(2015*time.Microsecond), 100*time.Microsecond)
		ft.Finish(epoch.Add(2200 * time.Microsecond))
		tr.Commit(&ft)
		lat.ObserveTrace(&ft)
	}
}

// BenchmarkDriftObserve keeps the residual path honest too.
func BenchmarkDriftObserve(b *testing.B) {
	r := NewResiduals([]ResidualKey{{Backend: "raytrace", Term: "render"}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe("raytrace", "render", 1.05, 1.0)
	}
}
