package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

// WriteProm renders a JSON-tagged snapshot struct as Prometheus text
// exposition (version 0.0.4). One snapshot type feeds both /v1/metrics
// (JSON) and /metrics (Prometheus), so the two surfaces cannot drift:
//
//   - numeric and bool fields become `prefix_path_to_field value`
//   - nested structs extend the metric name with their tag path
//   - string fields inside slice elements become labels on that
//     element's numeric fields (e.g. Ops []OpStats → op{backend="..."})
//   - map[string]T entries get a {key="..."} label
//   - HistogramJSON and DriftJSON render as native Prometheus
//     histograms: cumulative `_bucket{le="..."}` plus `_sum`/`_count`
//
// Export path: reflection and allocation are fine here; only the
// Observe side of the package is noalloc.
func WriteProm(w io.Writer, prefix string, v any) error {
	p := promWriter{w: w}
	p.emit(prefix, nil, reflect.ValueOf(v))
	return p.err
}

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// line writes one sample: name{labels} value.
func (p *promWriter) line(name string, labels []string, value float64) {
	if math.IsNaN(value) {
		return
	}
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatFloat(value))
		return
	}
	p.printf("%s{%s} %s\n", name, strings.Join(labels, ","), formatFloat(value))
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sanitizeName maps a JSON tag path to a legal Prometheus metric name.
func sanitizeName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func label(k, v string) string { return fmt.Sprintf("%s=%q", sanitizeName(k), v) }

var (
	histJSONType  = reflect.TypeOf(HistogramJSON{})
	driftJSONType = reflect.TypeOf(DriftJSON{})
)

func jsonTag(f reflect.StructField) (name string, skip bool) {
	tag := f.Tag.Get("json")
	if tag == "-" || !f.IsExported() {
		return "", true
	}
	name = strings.Split(tag, ",")[0]
	if name == "" {
		name = strings.ToLower(f.Name)
	}
	return name, false
}

func (p *promWriter) emit(name string, labels []string, rv reflect.Value) {
	if p.err != nil {
		return
	}
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return
		}
		p.emit(name, labels, rv.Elem())
	case reflect.Bool:
		v := 0.0
		if rv.Bool() {
			v = 1
		}
		p.line(name, labels, v)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		p.line(name, labels, float64(rv.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		p.line(name, labels, float64(rv.Uint()))
	case reflect.Float32, reflect.Float64:
		p.line(name, labels, rv.Float())
	case reflect.String:
		// A bare string becomes an info-style gauge: the value rides as
		// a label so enum states (e.g. breaker "open") stay queryable.
		if s := rv.String(); s != "" {
			p.line(name, append(append([]string(nil), labels...), label("value", s)), 1)
		}
	case reflect.Struct:
		switch rv.Type() {
		case histJSONType:
			p.histogram(name, labels, rv.Interface().(HistogramJSON))
		case driftJSONType:
			p.drift(name, labels, rv.Interface().(DriftJSON))
		default:
			p.structFields(name, labels, rv)
		}
	case reflect.Slice, reflect.Array:
		if rv.Kind() == reflect.Slice && rv.IsNil() {
			return
		}
		p.slice(name, labels, rv)
	case reflect.Map:
		p.mapEntries(name, labels, rv)
	}
}

func (p *promWriter) structFields(name string, labels []string, rv reflect.Value) {
	t := rv.Type()
	// String fields of this struct become labels for its sibling
	// numeric fields when the struct is a slice element (handled in
	// slice); at top level they render as info gauges instead.
	for i := 0; i < t.NumField(); i++ {
		tag, skip := jsonTag(t.Field(i))
		if skip {
			continue
		}
		child := name
		if tag != "" {
			if child != "" {
				child += "_"
			}
			child += sanitizeName(tag)
		}
		p.emit(child, labels, rv.Field(i))
	}
}

// slice renders a slice: struct elements turn their string fields into
// labels; scalar elements get an index label.
func (p *promWriter) slice(name string, labels []string, rv reflect.Value) {
	for i := 0; i < rv.Len(); i++ {
		el := rv.Index(i)
		for el.Kind() == reflect.Pointer || el.Kind() == reflect.Interface {
			if el.IsNil() {
				break
			}
			el = el.Elem()
		}
		if el.Kind() == reflect.Struct && el.Type() == driftJSONType {
			// Drift series carry their own backend/term labels; an index
			// label would split the series across scrapes.
			p.drift(name, labels, el.Interface().(DriftJSON))
			continue
		}
		if el.Kind() == reflect.Struct && el.Type() != histJSONType {
			elLabels := append([]string(nil), labels...)
			t := el.Type()
			for j := 0; j < t.NumField(); j++ {
				tag, skip := jsonTag(t.Field(j))
				if skip || el.Field(j).Kind() != reflect.String {
					continue
				}
				if s := el.Field(j).String(); s != "" {
					elLabels = append(elLabels, label(tag, s))
				}
			}
			if len(elLabels) == len(labels) {
				elLabels = append(elLabels, label("index", fmt.Sprintf("%d", i)))
			}
			// Emit only the non-string fields; strings were consumed as labels.
			for j := 0; j < t.NumField(); j++ {
				tag, skip := jsonTag(t.Field(j))
				if skip || el.Field(j).Kind() == reflect.String {
					continue
				}
				child := name
				if tag != "" {
					if child != "" {
						child += "_"
					}
					child += sanitizeName(tag)
				}
				p.emit(child, elLabels, el.Field(j))
			}
			continue
		}
		p.emit(name, append(append([]string(nil), labels...), label("index", fmt.Sprintf("%d", i))), el)
	}
}

func (p *promWriter) mapEntries(name string, labels []string, rv reflect.Value) {
	if rv.IsNil() || rv.Type().Key().Kind() != reflect.String {
		return
	}
	keys := make([]string, 0, rv.Len())
	for _, k := range rv.MapKeys() {
		keys = append(keys, k.String())
	}
	sort.Strings(keys)
	for _, k := range keys {
		p.emit(name, append(append([]string(nil), labels...), label("key", k)),
			rv.MapIndex(reflect.ValueOf(k)))
	}
}

// histogram renders HistogramJSON as a native Prometheus histogram:
// cumulative buckets in seconds, then sum and count.
func (p *promWriter) histogram(name string, labels []string, h HistogramJSON) {
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		le := append(append([]string(nil), labels...),
			fmt.Sprintf("le=%q", formatFloat(b.LeSeconds)))
		p.line(name+"_bucket", le, float64(cum))
	}
	inf := append(append([]string(nil), labels...), `le="+Inf"`)
	p.line(name+"_bucket", inf, float64(h.Count))
	p.line(name+"_sum", labels, h.SumSeconds)
	p.line(name+"_count", labels, float64(h.Count))
}

// promLine matches one sample of the text exposition format (0.0.4):
// metric name, optional label set, one float value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(-?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|[+-]?Inf|NaN)$`)

// ValidatePromText is a minimal Prometheus text-format validator: every
// non-comment line must be a well-formed sample and the exposition must
// contain at least one. Tests in cmd/renderd and cmd/advisord use it to
// keep /metrics scrapeable.
func ValidatePromText(text string) error {
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n++
		if !promLine.MatchString(line) {
			return fmt.Errorf("invalid prometheus exposition line %d: %q", n, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("prometheus exposition contained no samples")
	}
	return nil
}

// drift renders DriftJSON as a Prometheus histogram over the signed
// relative error, labeled by backend and term.
func (p *promWriter) drift(name string, labels []string, d DriftJSON) {
	base := append(append([]string(nil), labels...),
		label("backend", d.Backend), label("term", d.Term))
	var cum uint64
	for _, b := range d.Buckets {
		cum += b.Count
		le := append(append([]string(nil), base...),
			fmt.Sprintf("le=%q", formatFloat(b.Lt)))
		p.line(name+"_bucket", le, float64(cum))
	}
	inf := append(append([]string(nil), base...), `le="+Inf"`)
	p.line(name+"_bucket", inf, float64(d.Count))
	p.line(name+"_sum", base, d.MeanError*float64(d.Count))
	p.line(name+"_count", base, float64(d.Count))
	p.line(name+"_mean_abs_error", base, d.MeanAbs)
}
