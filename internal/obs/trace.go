package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one step of the frame lifecycle. The enum order is the
// order a frame moves through the service; a given frame records only
// the stages its path actually took (a cache hit has no render span, a
// single-node render no shard stages).
type Stage uint8

const (
	StageAdmit         Stage = iota // admission-control decision
	StageQueueWait                  // waiting in the scheduler queue
	StageRunnerLease                // leasing/warming a simulation runner
	StageRender                     // local render (serial path)
	StageShardDispatch              // dispatching shards to the fleet
	StageRankRender                 // slowest rank's render (inside dispatch)
	StageComposite                  // image compositing (inside dispatch)
	StageEncode                     // PNG encode
	StageCacheStore                 // storing the frame in the cache
	NumStages
)

// stageNames doubles as the JSON/Prometheus label vocabulary — an API.
var stageNames = [NumStages]string{
	"admit", "queue_wait", "runner_lease", "render",
	"shard_dispatch", "rank_render", "composite", "encode", "cache_store",
}

// Name returns the stage's wire name.
func (s Stage) Name() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// FrameTrace is one frame's lifecycle record: fixed-size, no slices, so
// a trace lives on the caller's stack while the frame is in flight and
// commits into the ring by value — zero steady-state allocation.
type FrameTrace struct {
	Seq          uint64
	Backend      string
	Width        int
	Height       int
	N            int
	Shards       int
	CacheHit     bool
	Degraded     bool
	DeadlineMiss bool

	begin     time.Time
	beginUnix int64
	wall      int64
	starts    [NumStages]int64 // offset ns from begin
	durs      [NumStages]int64
	mask      uint16
}

// Begin stamps the trace's epoch; stage offsets are relative to it.
//
//insitu:noalloc
func (t *FrameTrace) Begin(now time.Time) {
	t.begin = now
	t.beginUnix = now.UnixNano()
}

// Span records one stage that started at start and took d.
//
//insitu:noalloc
func (t *FrameTrace) Span(s Stage, start time.Time, d time.Duration) {
	if s >= NumStages {
		return
	}
	t.starts[s] = int64(start.Sub(t.begin))
	t.durs[s] = int64(d)
	t.mask |= 1 << s
}

// SpanNanos records a stage from raw offsets — for durations measured
// remotely (per-rank fleet spans) where no local time.Time exists.
//
//insitu:noalloc
func (t *FrameTrace) SpanNanos(s Stage, startOffsetNanos, durNanos int64) {
	if s >= NumStages {
		return
	}
	t.starts[s] = startOffsetNanos
	t.durs[s] = durNanos
	t.mask |= 1 << s
}

// Finish stamps the frame's total wall time.
//
//insitu:noalloc
func (t *FrameTrace) Finish(now time.Time) { t.wall = int64(now.Sub(t.begin)) }

// Has reports whether stage s was recorded.
func (t *FrameTrace) Has(s Stage) bool { return s < NumStages && t.mask&(1<<s) != 0 }

// Dur returns stage s's duration (0 if absent).
func (t *FrameTrace) Dur(s Stage) time.Duration {
	if !t.Has(s) {
		return 0
	}
	return time.Duration(t.durs[s])
}

// StartOffset returns stage s's start offset from Begin (0 if absent).
func (t *FrameTrace) StartOffset(s Stage) time.Duration {
	if !t.Has(s) {
		return 0
	}
	return time.Duration(t.starts[s])
}

// Wall returns the frame's total wall time.
func (t *FrameTrace) Wall() time.Duration { return time.Duration(t.wall) }

// SpanJSON is one stage span in a trace timeline.
type SpanJSON struct {
	Stage           string  `json:"stage"`
	StartSeconds    float64 `json:"start_seconds"` // offset from frame start
	DurationSeconds float64 `json:"duration_seconds"`
}

// TraceJSON is one frame's timeline on the wire (GET /v1/trace).
type TraceJSON struct {
	Seq            uint64     `json:"seq"`
	StartUnixNanos int64      `json:"start_unix_nanos"`
	WallSeconds    float64    `json:"wall_seconds"`
	Backend        string     `json:"backend"`
	Width          int        `json:"width"`
	Height         int        `json:"height"`
	N              int        `json:"n"`
	Shards         int        `json:"shards,omitempty"`
	CacheHit       bool       `json:"cache_hit,omitempty"`
	Degraded       bool       `json:"degraded,omitempty"`
	DeadlineMiss   bool       `json:"deadline_miss,omitempty"`
	Spans          []SpanJSON `json:"spans"`
}

// JSON renders the trace's wire form.
func (t *FrameTrace) JSON() TraceJSON {
	out := TraceJSON{
		Seq:            t.Seq,
		StartUnixNanos: t.beginUnix,
		WallSeconds:    float64(t.wall) / 1e9,
		Backend:        t.Backend,
		Width:          t.Width,
		Height:         t.Height,
		N:              t.N,
		Shards:         t.Shards,
		CacheHit:       t.CacheHit,
		Degraded:       t.Degraded,
		DeadlineMiss:   t.DeadlineMiss,
	}
	for s := Stage(0); s < NumStages; s++ {
		if !t.Has(s) {
			continue
		}
		out.Spans = append(out.Spans, SpanJSON{
			Stage:           s.Name(),
			StartSeconds:    float64(t.starts[s]) / 1e9,
			DurationSeconds: float64(t.durs[s]) / 1e9,
		})
	}
	return out
}

// traceShard is one ring of committed traces. Shards cut commit
// contention; the ring is preallocated at construction so Commit only
// copies a value under a short lock.
type traceShard struct {
	mu   sync.Mutex
	buf  []FrameTrace
	next int
	n    int
	_    [64]byte // keep shards off each other's cache lines
}

// Tracer holds the sharded ring buffers committed frame traces land in.
type Tracer struct {
	shards []traceShard
	seq    atomic.Uint64
}

// NewTracer preallocates shards rings of perShard traces each.
func NewTracer(shards, perShard int) *Tracer {
	if shards < 1 {
		shards = 1
	}
	if perShard < 1 {
		perShard = 1
	}
	tr := &Tracer{shards: make([]traceShard, shards)}
	for i := range tr.shards {
		tr.shards[i].buf = make([]FrameTrace, perShard)
	}
	return tr
}

// NextSeq issues the next frame sequence number.
//
//insitu:noalloc
func (tr *Tracer) NextSeq() uint64 {
	if tr == nil {
		return 0
	}
	return tr.seq.Add(1)
}

// Commit copies the finished trace into its ring. Nil tracers (tracing
// disabled) drop the trace — callers never branch.
//
//insitu:noalloc
func (tr *Tracer) Commit(t *FrameTrace) {
	if tr == nil {
		return
	}
	sh := &tr.shards[int(t.Seq)%len(tr.shards)]
	sh.mu.Lock()
	sh.buf[sh.next] = *t
	sh.next = (sh.next + 1) % len(sh.buf)
	if sh.n < len(sh.buf) {
		sh.n++
	}
	sh.mu.Unlock()
}

// Last returns the most recent n committed traces, oldest first. Export
// path: allocates freely.
func (tr *Tracer) Last(n int) []FrameTrace {
	if tr == nil || n <= 0 {
		return nil
	}
	var all []FrameTrace
	for i := range tr.shards {
		sh := &tr.shards[i]
		sh.mu.Lock()
		for j := 0; j < sh.n; j++ {
			// Oldest slot first: the ring wraps at next.
			idx := sh.next - sh.n + j
			if idx < 0 {
				idx += len(sh.buf)
			}
			all = append(all, sh.buf[idx])
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// WriteChromeTrace renders traces as a Chrome trace_event dump
// (chrome://tracing, Perfetto): one "X" complete event per span, one
// row (tid) per frame, timestamps in microseconds.
func WriteChromeTrace(w io.Writer, traces []FrameTrace) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	for i := range traces {
		t := &traces[i]
		for s := Stage(0); s < NumStages; s++ {
			if !t.Has(s) {
				continue
			}
			if !first {
				if _, err := io.WriteString(w, ",\n"); err != nil {
					return err
				}
			}
			first = false
			ts := float64(t.beginUnix+t.starts[s]) / 1e3
			dur := float64(t.durs[s]) / 1e3
			if _, err := fmt.Fprintf(w,
				`{"name":%q,"cat":"frame","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"backend":%q,"seq":%d}}`,
				s.Name(), ts, dur, t.Seq, t.Backend, t.Seq); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// StageLatency aggregates per-stage and end-to-end latency histograms —
// the distributions behind /v1/metrics' stage table.
type StageLatency struct {
	stages [NumStages]Histogram
	total  Histogram
}

// ObserveTrace folds one finished trace into the per-stage histograms.
//
//insitu:noalloc
func (l *StageLatency) ObserveTrace(t *FrameTrace) {
	if l == nil {
		return
	}
	for s := Stage(0); s < NumStages; s++ {
		if t.mask&(1<<s) != 0 {
			l.stages[s].Observe(t.durs[s])
		}
	}
	l.total.Observe(t.wall)
}

// Stage returns the histogram for one stage (for tests and merging).
func (l *StageLatency) Stage(s Stage) *Histogram { return &l.stages[s] }

// Total returns the end-to-end wall-time histogram.
func (l *StageLatency) Total() *Histogram { return &l.total }

// StageHistogramJSON is one stage's latency distribution on the wire.
type StageHistogramJSON struct {
	Stage string `json:"stage"`
	HistogramJSON
}

// StageLatencyJSON is the full stage table: total plus every stage that
// recorded at least one span.
type StageLatencyJSON struct {
	Total  HistogramJSON        `json:"total"`
	Stages []StageHistogramJSON `json:"stages,omitempty"`
}

// JSON renders the stage table's wire form.
func (l *StageLatency) JSON() StageLatencyJSON {
	if l == nil {
		return StageLatencyJSON{}
	}
	total := l.total.Snapshot()
	out := StageLatencyJSON{Total: total.JSON()}
	for s := Stage(0); s < NumStages; s++ {
		snap := l.stages[s].Snapshot()
		if snap.Count == 0 {
			continue
		}
		out.Stages = append(out.Stages, StageHistogramJSON{Stage: s.Name(), HistogramJSON: snap.JSON()})
	}
	return out
}
