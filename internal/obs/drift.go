package obs

import "sync/atomic"

// driftBounds are the fixed signed relative-error bucket boundaries for
// (predicted − measured) / measured. Bucket i counts residuals r with
// driftBounds[i-1] <= r < driftBounds[i]; bucket 0 is the underflow
// bucket (r < driftBounds[0]) and the last bucket the overflow. A
// well-fitted model piles everything into the ±2–5% center; a stale one
// slides toward an edge long before deadline misses climb.
var driftBounds = [...]float64{
	-1, -0.5, -0.3, -0.2, -0.1, -0.05, -0.02,
	0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1, 2, 5,
}

// NumDriftBuckets is the number of drift buckets (len(driftBounds)+1,
// for the under- and overflow edges).
const NumDriftBuckets = len(driftBounds) + 1

// driftIndex maps a signed relative error to its bucket.
//
//insitu:noalloc
func driftIndex(r float64) int {
	// Linear scan: 16 comparisons, branch-predictable, no allocation —
	// cheaper in practice than binary search at this size.
	for i, b := range driftBounds {
		if r < b {
			return i
		}
	}
	return NumDriftBuckets - 1
}

// DriftBucketBounds returns bucket i's residual range [lo, hi). The
// underflow bucket reports lo = -inf as -1e18; overflow hi likewise.
func DriftBucketBounds(i int) (lo, hi float64) {
	const inf = 1e18
	if i <= 0 {
		return -inf, driftBounds[0]
	}
	if i >= NumDriftBuckets-1 {
		return driftBounds[len(driftBounds)-1], inf
	}
	return driftBounds[i-1], driftBounds[i]
}

// DriftHistogram buckets signed relative prediction errors. The zero
// value is ready; Observe is lock-free and allocation-free.
type DriftHistogram struct {
	counts [NumDriftBuckets]atomic.Uint64
	count  atomic.Uint64
	// sum and sumAbs are residual totals scaled by 1e6 (fixed-point),
	// so the mean and mean-absolute error survive atomic accumulation.
	sum    atomic.Int64
	sumAbs atomic.Int64
}

// Observe records one residual (predicted − measured) / measured.
//
//insitu:noalloc
func (d *DriftHistogram) Observe(r float64) {
	d.counts[driftIndex(r)].Add(1)
	d.count.Add(1)
	s := int64(r * 1e6)
	d.sum.Add(s)
	if s < 0 {
		s = -s
	}
	d.sumAbs.Add(s)
}

// ObservePair computes and records the residual for one
// predicted/measured pair, ignoring non-positive measurements.
//
//insitu:noalloc
func (d *DriftHistogram) ObservePair(predicted, measured float64) {
	if measured <= 0 {
		return
	}
	d.Observe((predicted - measured) / measured)
}

// Count returns the number of recorded residuals.
func (d *DriftHistogram) Count() uint64 { return d.count.Load() }

// Snapshot copies the current counts (same tearing caveat as
// Histogram.Snapshot).
func (d *DriftHistogram) Snapshot() DriftSnapshot {
	var s DriftSnapshot
	for i := range d.counts {
		s.Counts[i] = d.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = float64(d.sum.Load()) / 1e6
	s.SumAbs = float64(d.sumAbs.Load()) / 1e6
	return s
}

// DriftSnapshot is one point-in-time copy of a DriftHistogram.
type DriftSnapshot struct {
	Counts [NumDriftBuckets]uint64
	Count  uint64
	Sum    float64
	SumAbs float64
}

// Merge adds o's counts into s.
func (s *DriftSnapshot) Merge(o *DriftSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	s.SumAbs += o.SumAbs
}

// MeanError returns the mean signed residual — the model's bias.
func (s *DriftSnapshot) MeanError() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// MeanAbsError returns the mean |residual| — the model's spread.
func (s *DriftSnapshot) MeanAbsError() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumAbs / float64(s.Count)
}

// DriftJSON is the wire form of a drift distribution. Field names are
// an API (golden-tested by cmd/renderd).
type DriftJSON struct {
	Backend   string            `json:"backend"`
	Term      string            `json:"term"`
	Count     uint64            `json:"count"`
	MeanError float64           `json:"mean_error"`
	MeanAbs   float64           `json:"mean_abs_error"`
	Buckets   []DriftBucketJSON `json:"buckets,omitempty"`
}

// DriftBucketJSON is one non-empty drift bucket: residuals r with
// r < Lt (and >= the previous bucket's Lt).
type DriftBucketJSON struct {
	Lt    float64 `json:"lt"`
	Count uint64  `json:"count"`
}

// JSON renders the snapshot's wire form for one backend × term.
func (s *DriftSnapshot) JSON(backend, term string) DriftJSON {
	out := DriftJSON{
		Backend:   backend,
		Term:      term,
		Count:     s.Count,
		MeanError: s.MeanError(),
		MeanAbs:   s.MeanAbsError(),
	}
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		_, hi := DriftBucketBounds(i)
		out.Buckets = append(out.Buckets, DriftBucketJSON{Lt: hi, Count: c})
	}
	return out
}

// ResidualKey identifies one drift series: which backend's model, and
// which model term (e.g. "render", "composite") the prediction was for.
type ResidualKey struct {
	Backend string
	Term    string
}

// Residuals is a fixed registry of drift histograms, one per
// backend × term, built once at construction so steady-state Observe
// calls are read-only map lookups — no lock, no allocation, noalloc-safe.
type Residuals struct {
	m    map[ResidualKey]*DriftHistogram
	keys []ResidualKey // construction order, for stable export
}

// NewResiduals builds the registry for the given keys. Keys not listed
// here are silently dropped by Observe — the set of modeled terms is
// known at server construction, and a fixed registry is what keeps the
// hot path allocation-free.
func NewResiduals(keys []ResidualKey) *Residuals {
	r := &Residuals{m: make(map[ResidualKey]*DriftHistogram, len(keys))}
	for _, k := range keys {
		if _, dup := r.m[k]; dup {
			continue
		}
		r.m[k] = &DriftHistogram{}
		r.keys = append(r.keys, k)
	}
	return r
}

// Observe records one predicted/measured pair for a backend × term.
// Unknown keys and non-positive measurements are ignored.
//
//insitu:noalloc
func (r *Residuals) Observe(backend, term string, predicted, measured float64) {
	if r == nil {
		return
	}
	d := r.m[ResidualKey{Backend: backend, Term: term}]
	if d == nil {
		return
	}
	d.ObservePair(predicted, measured)
}

// JSON renders every non-empty series in construction order.
func (r *Residuals) JSON() []DriftJSON {
	if r == nil {
		return nil
	}
	var out []DriftJSON
	for _, k := range r.keys {
		s := r.m[k].Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, s.JSON(k.Backend, k.Term))
	}
	return out
}
