package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: log-spaced with subCount sub-buckets per power of two.
// Values 0..subCount-1 get their own exact buckets (index == value); a
// larger value v with exponent e = floor(log2 v) lands in bucket
// subCount + (e-subBits)*subCount + m, where m is the top subBits
// mantissa bits after the leading one. The layout is exhaustive and
// monotone over all of int64, so Observe is a few integer ops and one
// atomic add — no bounds search, no lock, no allocation.
const (
	subBits  = 2
	subCount = 1 << subBits // sub-buckets per octave

	// NumBuckets covers nanosecond values up to 2^63-1 (exponents
	// subBits..62 above the subCount exact low buckets).
	NumBuckets = subCount + (63-subBits)*subCount
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
//
//insitu:noalloc
func bucketIndex(v int64) int {
	if v < subCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1
	m := int(v>>(uint(e)-subBits)) & (subCount - 1)
	return subCount + (e-subBits)*subCount + m
}

// BucketBounds returns bucket i's value range [lo, hi): the bucket
// counts observations with lo <= v < hi.
func BucketBounds(i int) (lo, hi int64) {
	if i < subCount {
		return int64(i), int64(i) + 1
	}
	e := uint(i-subCount)/subCount + subBits
	m := int64(i-subCount) % subCount
	width := int64(1) << (e - subBits)
	lo = int64(1)<<e + m*width
	if e >= 62 && m == subCount-1 {
		return lo, math.MaxInt64
	}
	return lo, lo + width
}

// Histogram is a lock-free fixed-bucket latency histogram over
// nanoseconds. The zero value is ready to use; all methods are safe for
// concurrent use, and Observe performs no heap allocation.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // total nanoseconds
}

// Observe records one nanosecond measurement (negative values clamp to
// the zero bucket).
//
//insitu:noalloc
func (h *Histogram) Observe(ns int64) {
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	if ns > 0 {
		h.sum.Add(ns)
	}
}

// ObserveDuration records one duration.
//
//insitu:noalloc
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot copies the current counts. Buckets are read without a global
// lock, so a snapshot taken concurrently with Observe may be torn by a
// handful of in-flight observations — fine for telemetry, by design.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.SumNanos = h.sum.Load()
	return s
}

// HistogramSnapshot is one point-in-time copy of a Histogram, mergeable
// with snapshots of other histograms sharing the layout.
type HistogramSnapshot struct {
	Counts   [NumBuckets]uint64
	Count    uint64
	SumNanos int64
}

// Merge adds o's counts into s.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNanos += o.SumNanos
}

// Quantile returns the q-quantile (0 <= q <= 1) in nanoseconds, linearly
// interpolated inside the covering bucket — exact at bucket boundaries,
// within the bucket's relative width (<= 1/subCount) elsewhere.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Prometheus histogram_quantile convention: the q-quantile is the
	// value whose cumulative count first reaches rank = q*N, so high
	// quantiles over few observations land in the bucket of the larger
	// observations rather than snapping down (p95 of {6µs, 67ms} must
	// read ~67ms, not 6µs).
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo, hi := BucketBounds(i)
			within := (rank - float64(cum)) / float64(c)
			return float64(lo) + within*float64(hi-lo)
		}
		cum += c
	}
	lo, _ := BucketBounds(NumBuckets - 1)
	return float64(lo)
}

// Mean returns the mean observation in nanoseconds.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNanos) / float64(s.Count)
}

// HistogramJSON is the wire form of a latency histogram: summary
// quantiles in seconds plus the non-empty buckets. Field names are an
// API (golden-tested by cmd/renderd); renames break dashboards.
type HistogramJSON struct {
	Count      uint64       `json:"count"`
	SumSeconds float64      `json:"sum_seconds"`
	P50Seconds float64      `json:"p50_seconds"`
	P95Seconds float64      `json:"p95_seconds"`
	P99Seconds float64      `json:"p99_seconds"`
	Buckets    []BucketJSON `json:"buckets,omitempty"`
}

// BucketJSON is one non-empty histogram bucket: the count of
// observations with value <= LeSeconds (upper bound, non-cumulative).
type BucketJSON struct {
	LeSeconds float64 `json:"le_seconds"`
	Count     uint64  `json:"count"`
}

// JSON renders the snapshot's wire form.
func (s *HistogramSnapshot) JSON() HistogramJSON {
	out := HistogramJSON{
		Count:      s.Count,
		SumSeconds: float64(s.SumNanos) / 1e9,
		P50Seconds: s.Quantile(0.50) / 1e9,
		P95Seconds: s.Quantile(0.95) / 1e9,
		P99Seconds: s.Quantile(0.99) / 1e9,
	}
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		_, hi := BucketBounds(i)
		out.Buckets = append(out.Buckets, BucketJSON{LeSeconds: float64(hi) / 1e9, Count: c})
	}
	return out
}
