// Package obs is the serving stack's observability substrate: the
// allocation-free measurement primitives every hot path records into,
// and the snapshot/export forms the HTTP layers serve.
//
// Three primitives, matched to the three questions a model-gated render
// service must answer about itself:
//
//   - Histogram: where does latency actually land? Lock-free fixed-bucket
//     latency histograms — log-spaced nanosecond buckets (four sub-buckets
//     per power of two), atomic counters, zero allocation per Observe —
//     with mergeable Snapshots and interpolated p50/p95/p99. The two
//     global totals the service used to expose (sum, count) hide exactly
//     the tail a deadline scheduler is judged on.
//
//   - FrameTrace / Tracer: where did a slow frame spend its time? A span
//     per lifecycle stage (admit, queue-wait, runner-lease, render,
//     shard-dispatch, rank-render, composite, encode, cache-store),
//     recorded into a stack-allocated FrameTrace and committed by copy
//     into sharded, preallocated ring buffers — zero steady-state
//     allocation, enforced by insitulint's noalloc pass. Snapshots export
//     as a JSON timeline or a Chrome trace_event dump.
//
//   - DriftHistogram / Residuals: are the models still right? Every served
//     frame records its signed relative prediction error,
//     (predicted − measured) / measured, bucketed per backend × model
//     term, so model drift is a distribution per term — visible long
//     before it accumulates into deadline misses.
//
// WriteProm renders any JSON-tagged snapshot struct (including the
// histogram forms above) as Prometheus text exposition, so /v1/metrics
// (JSON) and /metrics (Prometheus) are two views of one snapshot.
package obs
