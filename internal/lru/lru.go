// Package lru is the one LRU cache shared by every serving-path layer:
// the model registry memoizes predictions in it, and the render-serving
// subsystem keys admission decisions and encoded frames with it. Keeping
// one implementation means one eviction policy, one concurrency
// discipline (a single mutex — every use site is a lookup measured in
// nanoseconds), and one place to audit for allocation behaviour: Get on
// a present key performs no heap allocation, which the zero-allocation
// frame path depends on.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a mutex-guarded LRU cache from comparable keys to values.
// The zero value is unusable; construct with New. A capacity <= 0
// disables the cache entirely (every Get misses, Add is a no-op), which
// lets callers expose "0 disables caching" knobs without branching.
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List
	items   map[K]*list.Element
	onEvict func(K, V)
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache holding up to cap entries.
func New[K comparable, V any](cap int) *Cache[K, V] {
	return &Cache[K, V]{cap: cap, ll: list.New(), items: map[K]*list.Element{}}
}

// OnEvict installs a callback invoked (outside any future Get/Add, but
// under the cache lock) when capacity eviction or Purge drops an entry —
// the hook resource-owning values (cached frame buffers, prepared
// renderers) use to account for or release what they hold. Call before
// the cache is shared; it is not synchronized against concurrent use.
func (c *Cache[K, V]) OnEvict(f func(K, V)) { c.onEvict = f }

// Get returns the value for k, marking it most recently used.
//
//insitu:noalloc
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c.cap <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Add inserts or refreshes k, evicting the least recently used entry
// when the cache is full.
func (c *Cache[K, V]) Add(k K, v V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&entry[K, V]{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*entry[K, V])
		delete(c.items, e.key)
		if c.onEvict != nil {
			c.onEvict(e.key, e.val)
		}
	}
}

// Purge drops every entry, invoking the eviction hook for each.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.onEvict != nil {
		for el := c.ll.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry[K, V])
			c.onEvict(e.key, e.val)
		}
	}
	c.ll.Init()
	c.items = map[K]*list.Element{}
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
