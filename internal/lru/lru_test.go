package lru

import "testing"

func TestEvictionOrderAndHook(t *testing.T) {
	var evicted []int
	c := New[int, string](2)
	c.OnEvict(func(k int, v string) { evicted = append(evicted, k) })
	c.Add(1, "a")
	c.Add(2, "b")
	c.Get(1) // touch 1: 2 becomes the victim
	c.Add(3, "c")
	if _, ok := c.Get(2); ok {
		t.Error("LRU entry survived eviction")
	}
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Error("recently used entry evicted")
	}
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Errorf("eviction hook saw %v, want [2]", evicted)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	// Purge fires the hook for every entry.
	evicted = nil
	c.Purge()
	if len(evicted) != 2 || c.Len() != 0 {
		t.Errorf("purge: evicted %v, len %d", evicted, c.Len())
	}
}

func TestDisabledCache(t *testing.T) {
	c := New[int, int](0)
	c.Add(1, 1)
	if _, ok := c.Get(1); ok || c.Len() != 0 {
		t.Error("disabled cache cached")
	}
}

func TestAddRefreshesValue(t *testing.T) {
	c := New[string, int](2)
	c.Add("k", 1)
	c.Add("k", 2)
	if v, _ := c.Get("k"); v != 2 {
		t.Errorf("refreshed value = %d", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}
