package serve

import "math"

// Pose is one camera position on a session's path, in the orbit
// parameterization every serving endpoint speaks: azimuth degrees and
// zoom factor.
type Pose struct {
	Azimuth float64
	Zoom    float64
}

// PathPredictor extrapolates where a session's camera goes next. Predict
// reads the recent path (oldest first, most recent last) and fills dst
// with up to len(dst) future poses in arrival order, returning how many
// it filled. Implementations must not allocate — Predict runs on the
// zero-allocation session frame path with caller-owned buffers — and
// must return 0 rather than guess when the history is too short or too
// erratic to extrapolate.
type PathPredictor interface {
	Predict(history []Pose, dst []Pose) int
}

// OrbitPredictor is the default constant-velocity extrapolator: the next
// poses continue the last observed per-frame azimuth and zoom deltas.
// Azimuth arithmetic is modular — the velocity is the shortest angular
// step between the last two poses and predictions wrap into [0, 360) —
// so a client orbiting 0°, 30°, …, 330°, 0° predicts seamlessly across
// the wrap (frame-cache keys quantize raw azimuth, so the predictor and
// an orbiting client must agree on the wrapped representative).
// Prediction stops early if zoom would leave (0, maxZoom].
type OrbitPredictor struct{}

// Predict implements PathPredictor.
//
//insitu:noalloc
func (OrbitPredictor) Predict(history []Pose, dst []Pose) int {
	n := len(history)
	if n < 2 {
		return 0
	}
	last, prev := history[n-1], history[n-2]
	dAz := wrapDelta(last.Azimuth - prev.Azimuth)
	dZoom := last.Zoom - prev.Zoom
	if dAz == 0 && dZoom == 0 {
		return 0 // a parked camera has nothing to prefetch
	}
	az, zoom := last.Azimuth, last.Zoom
	for i := range dst {
		az = wrap360(az + dAz)
		zoom += dZoom
		if zoom <= 0 || zoom > maxZoom {
			return i
		}
		dst[i] = Pose{Azimuth: az, Zoom: zoom}
	}
	return len(dst)
}

// wrap360 maps an angle in degrees onto [0, 360).
func wrap360(deg float64) float64 {
	m := math.Mod(deg, 360)
	if m < 0 {
		m += 360
	}
	return m
}

// wrapDelta maps an angular difference onto [-180, 180), the shortest
// signed step between two orbit positions.
func wrapDelta(deg float64) float64 {
	m := math.Mod(deg+180, 360)
	if m < 0 {
		m += 360
	}
	return m - 180
}
