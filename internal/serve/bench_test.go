package serve

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/core"
)

// benchServer builds a serving stack without testing.T cleanup.
func benchServer(b *testing.B) *Server {
	b.Helper()
	s := New(advisor.New(testRegistry(b)), Config{Arch: "serial", Logf: func(string, ...any) {}})
	b.Cleanup(s.Close)
	return s
}

// BenchmarkRenderdFrameCacheHit is the acceptance benchmark for the
// steady-state frame path: admission memo + frame cache hit, end to
// end through Server.Render. It must report 0 allocs/op — PR 4's
// zero-allocation discipline surviving the serving layer — and the
// frames/s metric shows the cache-hit ceiling (far beyond the 100
// frames/s bar for small frames).
func BenchmarkRenderdFrameCacheHit(b *testing.B) {
	s := benchServer(b)
	req := FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, DeadlineMillis: 1000}
	if _, err := s.Render(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Render(req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("steady state missed the cache")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRenderdFrameRender measures sustained small-frame render
// throughput with the frame cache disabled (a negative capacity
// disables the LRU), so every Render schedules a real frame on the
// warm cached runner — the render-farm steady state.
func BenchmarkRenderdFrameRender(b *testing.B) {
	s := New(advisor.New(testRegistry(b)), Config{
		Arch: "serial", FrameCacheEntries: -1, Logf: func(string, ...any) {},
	})
	b.Cleanup(s.Close)
	req := FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64}
	if _, err := s.Render(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Render(req)
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheHit {
			b.Fatal("cache-disabled server served a hit")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRenderdThroughput is the mixed-traffic figure for
// BENCH_5.json: a request mix over several backends, sizes, and
// cameras, mostly cache hits with a steady miss rate, measured end to
// end through the serving path.
func BenchmarkRenderdThroughput(b *testing.B) {
	s := benchServer(b)
	var reqs []FrameRequest
	for i := 0; i < 16; i++ {
		backend := core.RayTrace
		if i%2 == 1 {
			backend = core.Volume
		}
		reqs = append(reqs, FrameRequest{
			Backend: backend, Sim: "kripke",
			N: 8 + 2*(i%2), Width: 48 + 16*(i%2),
			Azimuth:        float64(30 * (i % 4)),
			DeadlineMillis: 1000,
		})
	}
	for _, req := range reqs {
		if _, err := s.Render(req); err != nil {
			b.Fatal(fmt.Errorf("warming %+v: %w", req, err))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Render(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRenderdSessionPrefetchHit is the acceptance benchmark for
// the session hot path: an orbiting session in steady state, every
// predicted frame already cached, measured end to end through
// Session.Frame (pose record, path prediction, verified-window probe,
// cache hit). It must report 0 allocs/op, and its ns/op is required to
// stay within 2x of BenchmarkRenderdFrameCacheHit — the session layer
// may not double the cost of the frame it collapses to.
func BenchmarkRenderdSessionPrefetchHit(b *testing.B) {
	s := benchServer(b)
	sess, err := s.OpenSession(FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, DeadlineMillis: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	// Warm: one full 24-angle lap renders (or speculates) every orbit
	// frame into the cache; wait out in-flight speculation after each
	// step so the steady state starts quiet.
	const step = 15.0
	az := 0.0
	for i := 0; i < 26; i++ {
		az += step
		if az >= 360 {
			az -= 360
		}
		if _, err := sess.Frame(az, 1); err != nil {
			b.Fatal(err)
		}
		for sess.inflight.Load() > 0 || s.sched.bgDepth() > 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		az += step
		if az >= 360 {
			az -= 360
		}
		res, err := sess.Frame(az, 1)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("steady-state session frame missed the cache")
		}
		if res.PrefetchHit {
			hits++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(100*float64(hits)/float64(b.N), "prefetch-hit-%")
}

// benchOrbitTTP drives one orbiting session with think time between
// frames — the interactive workload — against a frame cache smaller
// than the orbit (8 entries vs 24 angles), so without prefetch every
// revisited angle has been evicted and must re-render, while prefetch
// keeps renders 1-3 frames ahead of the client. Reports the
// time-to-photon distribution.
func benchOrbitTTP(b *testing.B, depth int) (lats []time.Duration, prefetchHits int) {
	b.Helper()
	s := New(advisor.New(testRegistry(b)), Config{
		Arch: "serial", Workers: 2,
		FrameCacheEntries: 8,
		PrefetchDepth:     depth,
		Logf:              func(string, ...any) {},
	})
	b.Cleanup(s.Close)
	sess, err := s.OpenSession(FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, DeadlineMillis: 1000,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	const step, think = 15.0, 10 * time.Millisecond
	az := 0.0
	lats = make([]time.Duration, 0, b.N)
	for i := 0; i < b.N; i++ {
		az += step
		if az >= 360 {
			az -= 360
		}
		start := time.Now()
		res, err := sess.Frame(az, 1)
		if err != nil {
			b.Fatal(err)
		}
		lats = append(lats, time.Since(start))
		if res.PrefetchHit {
			prefetchHits++
		}
		time.Sleep(think) // client think time: the headroom speculation renders into
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, prefetchHits
}

func reportTTP(b *testing.B, lats []time.Duration, prefetchHits int) {
	b.Helper()
	if len(lats) == 0 {
		return
	}
	pct := func(p float64) float64 {
		return float64(lats[int(p*float64(len(lats)-1))].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-ttp-ns")
	b.ReportMetric(pct(0.99), "p99-ttp-ns")
	b.ReportMetric(100*float64(prefetchHits)/float64(len(lats)), "prefetch-hit-%")
}

// BenchmarkRenderdSessionOrbitPrefetch and ...OrbitNoPrefetch are the
// PR 8 contrast pair: the same orbiting interactive client with
// speculation on vs off. ns/op includes the client's think time
// (identical in both) — the figure of merit is p99-ttp-ns, which must
// be at least 5x lower with prefetch: correct predictions collapse the
// tail from a full render to a cache hit.
func BenchmarkRenderdSessionOrbitPrefetch(b *testing.B) {
	lats, hits := benchOrbitTTP(b, 3)
	reportTTP(b, lats, hits)
}

func BenchmarkRenderdSessionOrbitNoPrefetch(b *testing.B) {
	lats, hits := benchOrbitTTP(b, -1)
	reportTTP(b, lats, hits)
}
