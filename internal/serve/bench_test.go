package serve

import (
	"fmt"
	"testing"

	"insitu/internal/advisor"
	"insitu/internal/core"
)

// benchServer builds a serving stack without testing.T cleanup.
func benchServer(b *testing.B) *Server {
	b.Helper()
	s := New(advisor.New(testRegistry(b)), Config{Arch: "serial", Logf: func(string, ...any) {}})
	b.Cleanup(s.Close)
	return s
}

// BenchmarkRenderdFrameCacheHit is the acceptance benchmark for the
// steady-state frame path: admission memo + frame cache hit, end to
// end through Server.Render. It must report 0 allocs/op — PR 4's
// zero-allocation discipline surviving the serving layer — and the
// frames/s metric shows the cache-hit ceiling (far beyond the 100
// frames/s bar for small frames).
func BenchmarkRenderdFrameCacheHit(b *testing.B) {
	s := benchServer(b)
	req := FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, DeadlineMillis: 1000}
	if _, err := s.Render(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Render(req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheHit {
			b.Fatal("steady state missed the cache")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRenderdFrameRender measures sustained small-frame render
// throughput with the frame cache disabled (a negative capacity
// disables the LRU), so every Render schedules a real frame on the
// warm cached runner — the render-farm steady state.
func BenchmarkRenderdFrameRender(b *testing.B) {
	s := New(advisor.New(testRegistry(b)), Config{
		Arch: "serial", FrameCacheEntries: -1, Logf: func(string, ...any) {},
	})
	b.Cleanup(s.Close)
	req := FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64}
	if _, err := s.Render(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Render(req)
		if err != nil {
			b.Fatal(err)
		}
		if res.CacheHit {
			b.Fatal("cache-disabled server served a hit")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkRenderdThroughput is the mixed-traffic figure for
// BENCH_5.json: a request mix over several backends, sizes, and
// cameras, mostly cache hits with a steady miss rate, measured end to
// end through the serving path.
func BenchmarkRenderdThroughput(b *testing.B) {
	s := benchServer(b)
	var reqs []FrameRequest
	for i := 0; i < 16; i++ {
		backend := core.RayTrace
		if i%2 == 1 {
			backend = core.Volume
		}
		reqs = append(reqs, FrameRequest{
			Backend: backend, Sim: "kripke",
			N: 8 + 2*(i%2), Width: 48 + 16*(i%2),
			Azimuth:        float64(30 * (i % 4)),
			DeadlineMillis: 1000,
		})
	}
	for _, req := range reqs {
		if _, err := s.Render(req); err != nil {
			b.Fatal(fmt.Errorf("warming %+v: %w", req, err))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Render(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
}
