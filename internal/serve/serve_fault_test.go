package serve

import (
	"bytes"
	"testing"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/cluster"
	"insitu/internal/comm"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/registry"
)

// faultClusterServer is clusterServer with explicit fleet fault-tolerance
// tuning and an injected fault plan.
func faultClusterServer(t testing.TB, workers int, copts cluster.Options, cfg Config) (*Server, *cluster.Cluster) {
	t.Helper()
	reg := registry.New(1024)
	if err := reg.Load(clusterSnapshot()); err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.NewWithOptions(reg, workers, copts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arch = "serial"
	cfg.Cluster = cl
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := New(advisor.New(reg), cfg)
	t.Cleanup(cl.Close)
	t.Cleanup(s.Close)
	return s, cl
}

// fastFaultOpts converges detection and recovery in well under a second
// so serve-level fault scenarios resolve quickly.
func fastFaultOpts(plan *comm.FaultPlan) cluster.Options {
	return cluster.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		AttemptTimeout:    time.Second,
		DrainGrace:        250 * time.Millisecond,
		RetryBackoff:      5 * time.Millisecond,
		MaxAttempts:       2,
		Faults:            plan,
	}
}

// standalonePNG renders the reference image for a served sharded frame:
// the same job through the standalone path, PNG-encoded the same way.
func standalonePNG(t *testing.T, req FrameRequest, shards int) []byte {
	t.Helper()
	want, err := cluster.RenderStandalone(cluster.Job{
		Backend: string(req.Backend), Sim: req.Sim, Arch: "serial",
		N: req.N, Width: req.Width, Height: req.Width,
		Shards: shards, Azimuth: req.Azimuth, Zoom: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var enc framebuffer.PNGEncoder
	var buf bytes.Buffer
	if err := enc.Encode(&buf, want.Image); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServedFrameSurvivesRankKill walks the full degradation ladder a
// rank death triggers at the serving layer. Frame 1 is healthy. The kill
// lands mid-frame-2: the fleet's retry finds too few survivors, so the
// frame is served by the standalone fallback — byte-identical, flagged
// FleetDegraded. Frame 3 is admitted after eviction: the shard count is
// clamped to the survivors and the fleet serves it again, byte-identical
// to the standalone reference at the surviving shard count.
func TestServedFrameSurvivesRankKill(t *testing.T) {
	plan := comm.NewFaultPlan(21)
	s, cl := faultClusterServer(t, 3, fastFaultOpts(plan), Config{})
	req := FrameRequest{Backend: core.Raster, Sim: "lulesh", N: 8, Width: 40, Azimuth: 30, Shards: 3}

	res1, err := s.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Shards != 3 || res1.FleetDegraded || res1.Retries != 0 {
		t.Fatalf("healthy frame served %+v, want an unretried 3-shard frame", res1)
	}
	if !bytes.Equal(res1.PNG, standalonePNG(t, req, 3)) {
		t.Fatal("healthy cluster frame differs from standalone reference")
	}

	// Kill worker 2 a few sends into the next frame (with 3 shards on 3
	// workers, every worker is a member). The attempt aborts, the retry
	// finds 2 survivors for 3 shards — a typed rank failure — and the
	// serving layer falls back to standalone at the admitted quality.
	plan.KillRankAfterSends(2, 3)
	req2 := req
	req2.Azimuth = 75
	res2, err := s.Render(req2)
	if err != nil {
		t.Fatalf("frame during rank kill: %v", err)
	}
	if !res2.FleetDegraded {
		t.Errorf("frame served across a rank kill not flagged FleetDegraded: %+v", res2)
	}
	if !bytes.Equal(res2.PNG, standalonePNG(t, req2, res2.Shards)) {
		t.Fatal("frame served across a rank kill differs from the standalone reference")
	}
	if st := s.Stats(); st.ClusterFailures < 1 || st.ClusterFallbacks < 1 {
		t.Errorf("fallback not accounted: failures=%d fallbacks=%d", st.ClusterFailures, st.ClusterFallbacks)
	}

	// After eviction, admission re-plans at the surviving shard count and
	// the fleet itself serves again.
	deadline := time.Now().Add(10 * time.Second)
	for cl.AliveWorkers() != 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := cl.AliveWorkers(); got != 2 {
		t.Fatalf("alive workers %d after kill, want 2", got)
	}
	req3 := req
	req3.Azimuth = 135
	res3, err := s.Render(req3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Shards != 2 || !res3.FleetDegraded {
		t.Fatalf("post-eviction frame served %+v, want a 2-shard FleetDegraded frame", res3)
	}
	if !bytes.Equal(res3.PNG, standalonePNG(t, req3, 2)) {
		t.Fatal("post-eviction frame differs from the standalone reference at the surviving shard count")
	}
	if st := s.Stats(); st.FleetClamped < 1 {
		t.Errorf("shard clamp not accounted: %+v", st)
	}
}

// TestBreakerOpensShortCircuitsAndRecovers wedges the fleet without
// killing it (a stalled link, blame disabled), so every sharded render
// burns its retry budget and falls back. The breaker must open at the
// threshold, short-circuit the next frame straight to standalone (no
// fleet dispatch), and close again via a half-open probe once the fault
// is lifted and the cooldown elapses.
func TestBreakerOpensShortCircuitsAndRecovers(t *testing.T) {
	plan := comm.NewFaultPlan(31)
	// Both directions: whichever worker leads the 2-shard group, its
	// peer's traffic vanishes.
	plan.StallAfter(1, 2, 1)
	plan.StallAfter(2, 1, 1)
	copts := fastFaultOpts(plan)
	copts.AttemptTimeout = 400 * time.Millisecond
	copts.DrainGrace = 200 * time.Millisecond
	// A stalled rank still beacons; keep blame out of reach so failure
	// comes from the retry budget, not eviction — the breaker, not the
	// placement clamp, must carry this scenario.
	copts.BlameThreshold = 100
	s, cl := faultClusterServer(t, 2, copts, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  1500 * time.Millisecond,
	})
	req := FrameRequest{Backend: core.Raster, Sim: "lulesh", N: 8, Width: 40, Shards: 2}

	// Two failures trip the breaker; both frames are still served, byte-
	// exact, by the fallback.
	for i, az := range []float64{10, 20} {
		r := req
		r.Azimuth = az
		res, err := s.Render(r)
		if err != nil {
			t.Fatalf("frame %d on wedged fleet: %v", i, err)
		}
		if !res.FleetDegraded {
			t.Fatalf("frame %d on wedged fleet not flagged FleetDegraded", i)
		}
		if !bytes.Equal(res.PNG, standalonePNG(t, r, 2)) {
			t.Fatalf("fallback frame %d differs from standalone reference", i)
		}
	}
	st := s.Stats()
	if st.BreakerOpens != 1 || st.BreakerState != "open" {
		t.Fatalf("breaker after %d failures: opens=%d state=%q, want open", st.ClusterFailures, st.BreakerOpens, st.BreakerState)
	}

	// Open circuit: the next frame never touches the fleet.
	dispatchedBefore := cl.Stats().FramesDispatched
	r := req
	r.Azimuth = 30
	res, err := s.Render(r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FleetDegraded {
		t.Error("short-circuited frame not flagged FleetDegraded")
	}
	if got := cl.Stats().FramesDispatched; got != dispatchedBefore {
		t.Errorf("open breaker still dispatched to the fleet (%d -> %d)", dispatchedBefore, got)
	}
	if st := s.Stats(); st.BreakerShortCircuits < 1 {
		t.Errorf("short circuit not accounted: %+v", st)
	}

	// Heal the links, let the cooldown elapse: the half-open probe closes
	// the circuit and the fleet serves sharded frames again.
	plan.Reset()
	time.Sleep(1600 * time.Millisecond)
	r.Azimuth = 40
	res, err = s.Render(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.FleetDegraded || res.Shards != 2 {
		t.Fatalf("post-recovery frame served %+v, want a healthy 2-shard fleet frame", res)
	}
	if !bytes.Equal(res.PNG, standalonePNG(t, r, 2)) {
		t.Fatal("post-recovery frame differs from standalone reference")
	}
	if st := s.Stats(); st.BreakerState != "closed" {
		t.Errorf("breaker state %q after successful probe, want closed", st.BreakerState)
	}
}
