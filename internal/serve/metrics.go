package serve

import (
	"sync/atomic"

	"insitu/internal/cluster"
	"insitu/internal/obs"
	"insitu/internal/scenario"
)

// counters is the serving-path instrumentation; all atomics so the
// frame path never takes a lock (and never allocates) to account for
// itself.
type counters struct {
	admitted            atomic.Uint64
	degraded            atomic.Uint64
	rejected            atomic.Uint64
	badRequests         atomic.Uint64
	errors              atomic.Uint64
	cacheHits           atomic.Uint64
	cacheMisses         atomic.Uint64
	coalesced           atomic.Uint64
	framesRendered      atomic.Uint64
	renderNanos         atomic.Uint64
	deadlineMisses      atomic.Uint64
	queueFull           atomic.Uint64
	observationsQueued  atomic.Uint64
	observationsDropped atomic.Uint64
	observationsSkipped atomic.Uint64
	refits              atomic.Uint64

	clusterFrames                  atomic.Uint64
	clusterShards                  atomic.Uint64
	clusterCompositeNanos          atomic.Uint64
	clusterPredictedCompositeNanos atomic.Uint64
	clusterRetries                 atomic.Uint64
	clusterFailures                atomic.Uint64
	clusterFallbacks               atomic.Uint64
	breakerOpens                   atomic.Uint64
	breakerShortCircuits           atomic.Uint64
	fleetClamped                   atomic.Uint64

	sessionsOpened     atomic.Uint64
	sessionsClosed     atomic.Uint64
	sessionFrames      atomic.Uint64
	prefetchHits       atomic.Uint64
	prefetchScheduled  atomic.Uint64
	prefetchRendered   atomic.Uint64
	prefetchStale      atomic.Uint64
	prefetchShed       atomic.Uint64
	prefetchNoHeadroom atomic.Uint64
	prefetchErrors     atomic.Uint64
}

// Stats is one metrics snapshot, JSON-shaped for /v1/metrics.
type Stats struct {
	// Admission outcomes. Degraded counts admissions that changed
	// quality; Rejected infeasible-even-degraded refusals.
	Admitted    uint64 `json:"admitted"`
	Degraded    uint64 `json:"degraded"`
	Rejected    uint64 `json:"rejected"`
	BadRequests uint64 `json:"bad_requests"`
	Errors      uint64 `json:"errors"`

	// Frame cache effectiveness. Coalesced counts misses served from a
	// concurrent identical render instead of a duplicate job.
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CachedFrames int    `json:"cached_frames"`
	Coalesced    uint64 `json:"coalesced"`

	// Render throughput. DeadlineMisses counts served frames whose
	// measured time exceeded their deadline (the model's admission was
	// too optimistic — exactly what calibration feedback corrects).
	FramesRendered     uint64  `json:"frames_rendered"`
	RenderSecondsTotal float64 `json:"render_seconds_total"`
	DeadlineMisses     uint64  `json:"deadline_misses"`
	QueueFull          uint64  `json:"queue_full"`
	QueueDepth         int     `json:"queue_depth"`
	RunnersLive        int     `json:"runners_live"`

	// Calibration feedback.
	ObservationsQueued  uint64 `json:"observations_queued"`
	ObservationsDropped uint64 `json:"observations_dropped"`
	ObservationsSkipped uint64 `json:"observations_skipped"`
	Refits              uint64 `json:"refits"`

	// Cluster serving. ClusterShardsTotal sums served shard counts
	// (total partial renders); the composite totals pair the fitted Tc
	// model's admission-time predictions with the measured sort-last
	// times, so Tc drift is observable from /v1/metrics alone. Cluster
	// carries the fleet's transport and replication counters when this
	// server fronts one.
	ClusterFrames                         uint64         `json:"cluster_frames"`
	ClusterShardsTotal                    uint64         `json:"cluster_shards_total"`
	ClusterCompositeSecondsTotal          float64        `json:"cluster_composite_seconds_total"`
	ClusterPredictedCompositeSecondsTotal float64        `json:"cluster_predicted_composite_seconds_total"`
	Cluster                               *cluster.Stats `json:"cluster,omitempty"`

	// Fleet fault tolerance. ClusterRetries sums per-frame recovery
	// retries; ClusterFailures counts frames the fleet gave up on (each
	// served by the standalone fallback, with ClusterFallbacks also
	// counting breaker short-circuits); FleetClamped counts requests
	// whose shard count was re-planned to the surviving workers.
	// BreakerState is "closed", "open", or "half-open".
	ClusterRetries       uint64 `json:"cluster_retries"`
	ClusterFailures      uint64 `json:"cluster_failures"`
	ClusterFallbacks     uint64 `json:"cluster_fallbacks"`
	BreakerOpens         uint64 `json:"breaker_opens"`
	BreakerShortCircuits uint64 `json:"breaker_short_circuits"`
	BreakerState         string `json:"breaker_state,omitempty"`
	FleetClamped         uint64 `json:"fleet_clamped"`

	// Interactive sessions and speculative prefetch. PrefetchHits counts
	// frames served from a speculatively rendered cache entry (including
	// mid-render flight joins) — PrefetchHits/SessionFrames is the
	// predictor's hit rate. Scheduled/Rendered/Stale partition submitted
	// speculation by outcome (stale: the frame arrived or a flight
	// started before the job ran); Shed counts jobs dropped by queue
	// overflow or shutdown; NoHeadroom counts submissions refused because
	// foreground load or per-session caps left no idle capacity.
	SessionsOpened uint64 `json:"sessions_opened"`
	SessionsClosed uint64 `json:"sessions_closed"`
	SessionsOpen   int    `json:"sessions_open"`
	SessionFrames  uint64 `json:"session_frames"`

	PrefetchHits       uint64 `json:"prefetch_hits"`
	PrefetchScheduled  uint64 `json:"prefetch_scheduled"`
	PrefetchRendered   uint64 `json:"prefetch_rendered"`
	PrefetchStale      uint64 `json:"prefetch_stale"`
	PrefetchShed       uint64 `json:"prefetch_shed"`
	PrefetchNoHeadroom uint64 `json:"prefetch_no_headroom"`
	PrefetchErrors     uint64 `json:"prefetch_errors"`
	// PrefetchQueueDepth is the queued (not yet running) speculative
	// render count; ForegroundLoadSeconds the model-predicted cost of
	// queued plus running foreground work — the headroom signal
	// background admission gates on.
	PrefetchQueueDepth    int     `json:"prefetch_queue_depth"`
	ForegroundLoadSeconds float64 `json:"foreground_load_seconds"`

	// RunnerCache is the lease/eviction view of the warm-runner cache
	// sessions pin themselves into.
	RunnerCache scenario.RunnerCacheStats `json:"runner_cache"`

	// FrameStages is the per-stage latency breakdown of every committed
	// frame trace: one histogram per lifecycle stage plus end-to-end wall
	// time, with interpolated p50/p95/p99.
	FrameStages obs.StageLatencyJSON `json:"frame_stages"`

	// ModelDrift is the per-backend, per-term distribution of prediction
	// residuals (predicted − measured)/measured — the live view of how far
	// the fitted models have wandered from what the serving path measures.
	ModelDrift []obs.DriftJSON `json:"model_drift,omitempty"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	var fleet *cluster.Stats
	breakerState := ""
	if s.cfg.Cluster != nil {
		st := s.cfg.Cluster.Stats()
		fleet = &st
		breakerState = s.brk.snapshot().String()
	}
	return Stats{
		Admitted:            s.stats.admitted.Load(),
		Degraded:            s.stats.degraded.Load(),
		Rejected:            s.stats.rejected.Load(),
		BadRequests:         s.stats.badRequests.Load(),
		Errors:              s.stats.errors.Load(),
		CacheHits:           s.stats.cacheHits.Load(),
		CacheMisses:         s.stats.cacheMisses.Load(),
		CachedFrames:        s.frames.Len(),
		Coalesced:           s.stats.coalesced.Load(),
		FramesRendered:      s.stats.framesRendered.Load(),
		RenderSecondsTotal:  float64(s.stats.renderNanos.Load()) / 1e9,
		DeadlineMisses:      s.stats.deadlineMisses.Load(),
		QueueFull:           s.stats.queueFull.Load(),
		QueueDepth:          s.sched.depth(),
		RunnersLive:         s.runners.Len(),
		ObservationsQueued:  s.stats.observationsQueued.Load(),
		ObservationsDropped: s.stats.observationsDropped.Load(),
		ObservationsSkipped: s.stats.observationsSkipped.Load(),
		Refits:              s.stats.refits.Load(),

		ClusterFrames:                         s.stats.clusterFrames.Load(),
		ClusterShardsTotal:                    s.stats.clusterShards.Load(),
		ClusterCompositeSecondsTotal:          float64(s.stats.clusterCompositeNanos.Load()) / 1e9,
		ClusterPredictedCompositeSecondsTotal: float64(s.stats.clusterPredictedCompositeNanos.Load()) / 1e9,
		Cluster:                               fleet,

		ClusterRetries:       s.stats.clusterRetries.Load(),
		ClusterFailures:      s.stats.clusterFailures.Load(),
		ClusterFallbacks:     s.stats.clusterFallbacks.Load(),
		BreakerOpens:         s.stats.breakerOpens.Load(),
		BreakerShortCircuits: s.stats.breakerShortCircuits.Load(),
		BreakerState:         breakerState,
		FleetClamped:         s.stats.fleetClamped.Load(),

		SessionsOpened: s.stats.sessionsOpened.Load(),
		SessionsClosed: s.stats.sessionsClosed.Load(),
		SessionsOpen:   s.SessionsOpen(),
		SessionFrames:  s.stats.sessionFrames.Load(),

		PrefetchHits:          s.stats.prefetchHits.Load(),
		PrefetchScheduled:     s.stats.prefetchScheduled.Load(),
		PrefetchRendered:      s.stats.prefetchRendered.Load(),
		PrefetchStale:         s.stats.prefetchStale.Load(),
		PrefetchShed:          s.stats.prefetchShed.Load(),
		PrefetchNoHeadroom:    s.stats.prefetchNoHeadroom.Load(),
		PrefetchErrors:        s.stats.prefetchErrors.Load(),
		PrefetchQueueDepth:    s.sched.bgDepth(),
		ForegroundLoadSeconds: s.sched.foregroundLoad(),

		RunnerCache: s.runners.Stats(),

		FrameStages: s.stageLat.JSON(),
		ModelDrift:  s.residuals.JSON(),
	}
}
