package serve

import (
	"errors"
	"sync"
	"testing"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/study"
)

// TestConcurrentRendersSharedCacheAndCalibrator exercises the serving
// path's shared state under contention — one frame cache, one runner
// cache, one admission memo, and one calibrator republishing the
// registry mid-traffic — and is run under -race by `make race` (wired
// into `make ci`).
func TestConcurrentRendersSharedCacheAndCalibrator(t *testing.T) {
	reg := testRegistry(t)
	engine := advisor.New(reg)
	engine.SetObserver(&study.Calibrator{
		Source: "serve-race", RefitEvery: 2,
		Base: func() (*registry.Snapshot, uint64) {
			v, err := reg.View()
			if err != nil {
				return nil, reg.Generation()
			}
			return v.Snapshot(), v.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			err := reg.PublishIf(s, baseGen)
			if errors.Is(err, registry.ErrStale) {
				return err
			}
			return err
		},
	})
	s := New(engine, Config{Arch: "serial", Workers: 4, Logf: func(string, ...any) {}})
	defer s.Close()

	// A small key set so goroutines collide on cache entries and runner
	// leases; a rotating deadline mixes admitted, degraded, and rejected
	// outcomes through the shared admission memo.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				req := FrameRequest{
					Backend: core.Volume, Sim: "kripke",
					N: 8 + 2*((g+i)%2), Width: 48,
					Azimuth: float64(15 * (i % 3)),
				}
				if g%2 == 0 {
					req.Backend = core.RayTrace
				}
				if i%5 == 4 {
					req.DeadlineMillis = 1e-6 // forced rejection
				}
				_, err := s.Render(req)
				var rej *RejectionError
				if err != nil && !errors.As(err, &rej) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.FramesRendered == 0 || st.CacheHits == 0 {
		t.Errorf("race run did not exercise the cache: %+v", st)
	}
}
