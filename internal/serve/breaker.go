package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit over the cluster
// fleet's sharded render path.
type breakerState int32

const (
	breakerClosed   breakerState = iota // fleet healthy: sharded renders go to the cluster
	breakerOpen                         // fleet failing: sharded renders short-circuit to standalone
	breakerHalfOpen                     // cooldown elapsed: one probe render may try the cluster
)

func (b breakerState) String() string {
	switch b {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker guards the cluster render path: consecutive rank failures trip
// it open, after which sharded traffic is served by the standalone
// fallback — at the same admitted quality, so frames stay byte-identical
// and cache keys stable — instead of queueing on a dying fleet. After a
// cooldown one request probes the cluster; success closes the circuit,
// failure re-opens it. A fleet with zero live workers is treated as open
// regardless of counters (quorum loss needs no failure streak to prove).
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int       // consecutive cluster failures while closed
	openedAt  time.Time // when the circuit last tripped
	probing   bool      // a half-open probe is in flight
	threshold int
	cooldown  time.Duration
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether the next sharded render may try the cluster.
// In the open state it flips to half-open once the cooldown elapses and
// admits exactly one probe; concurrent requests keep short-circuiting
// until the probe reports back.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a cluster render that completed; it closes a half-open
// circuit and clears the failure streak.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	b.state = breakerClosed
}

// failure records a cluster render that failed after its retry budget.
// It reports whether this failure tripped the circuit open (for the
// trip counter) — a failed half-open probe re-opens without recounting.
func (b *breaker) failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
		return true
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			return true
		}
	}
	return false
}

// snapshot returns the current state for metrics.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
