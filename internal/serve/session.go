package serve

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/obs"
	"insitu/internal/scenario"
	"insitu/internal/sim"
)

// MaxPrefetchDepth caps how many predicted poses ahead a session may
// speculate; Session pose scratch and the verified-key window are sized
// by it.
const MaxPrefetchDepth = 8

// ErrSessionClosed reports a frame request on a closed session.
var ErrSessionClosed = errors.New("serve: session closed")

// ErrTooManySessions reports OpenSession at the session cap with no
// idle session to reap (HTTP layers map it to 503).
var ErrTooManySessions = errors.New("serve: too many open sessions")

// Session is one interactive client's persistent streaming state: the
// camera-free frame configuration it opened with, its recent camera
// path, and the speculative-prefetch machinery that renders predicted
// next frames into the shared frame cache during idle headroom. A
// session soft-pins its runner-cache entry so request churn cannot
// cold-start its warm renderer, and its per-frame admission stays
// memoized, so the steady-state Frame path — pose record, prediction,
// cache probes, cache hit — performs zero heap allocations.
//
// Sessions are safe for concurrent use, but one client's frames
// naturally serialize; fairness across thousands of sessions comes from
// per-session prefetch caps (at most PrefetchDepth speculative renders
// in flight per session), the shed-oldest background queue, and the
// runner cache's first-come-first-served lease handoff.
type Session struct {
	srv   *Server
	id    uint64
	token string
	// base is the normalized opening request; per-frame requests copy
	// it and overwrite the camera.
	base  FrameRequest
	depth int

	closed       atomic.Bool
	lastUsed     atomic.Int64 // unix nanos of the last Frame
	inflight     atomic.Int32 // outstanding speculative renders
	frames       atomic.Uint64
	prefetchHits atomic.Uint64

	// mu guards the path history, prediction scratch, and runner pin.
	mu      sync.Mutex
	hist    [4]Pose
	nhist   int
	lastT   time.Time
	emaGap  float64 // EMA of client inter-frame seconds (the think time)
	scratch [MaxPrefetchDepth]Pose
	cands   [MaxPrefetchDepth]prefetchCand
	// verified is the sliding window of predicted camera poses already
	// found cached or submitted on the previous Frame; re-probing them
	// every frame would double the steady-state cache traffic. Only the
	// quantized camera is stored — everything else in a session's frame
	// key is fixed per admitted quality, and the window resets when a
	// refit changes that quality — so the scan is integer compares, not
	// struct equality over strings.
	verified    [2 * MaxPrefetchDepth]cameraKey
	nVerified   int
	newVerified [MaxPrefetchDepth]cameraKey
	pinned      runnerKey
	hasPin      bool
	d           decision // latest admitted decision (quality, prediction)
	gen         uint64   // model generation sess.d was admitted under
}

// validate normalizes the request and checks that its backend/sim pair
// is servable — the request-shape half of serveFrame, shared with
// OpenSession.
func (s *Server) validate(req *FrameRequest) error {
	if err := s.normalize(req); err != nil {
		return err
	}
	backend, err := scenario.Lookup(req.Backend)
	if err != nil {
		return fmt.Errorf("%w: %s", ErrBadRequest, err)
	}
	if backend.NeedsStructured() && !sim.Structured(req.Sim) {
		return badRequestf("%s needs a structured block; sim %q publishes an unstructured one", req.Backend, req.Sim)
	}
	return nil
}

// prefetchCand is one predicted pose whose frame is not cached yet.
type prefetchCand struct {
	pose Pose
	fk   frameKey
}

// cameraKey is the camera half of a frameKey: the quantized pose. A
// session's verified-pose window stores these instead of full frame
// keys — within one admitted quality they identify a frame uniquely,
// and comparing two is a pair of integer compares.
type cameraKey struct {
	azMilli   int64
	zoomMilli int64
}

// cameraKeyFor quantizes a pose exactly like frameKeyFor does.
//
//insitu:noalloc
func cameraKeyFor(p Pose) cameraKey {
	return cameraKey{
		azMilli:   int64(math.Round(p.Azimuth * 1e3)),
		zoomMilli: int64(math.Round(p.Zoom * 1e3)),
	}
}

// SessionInfo is the client-visible identity and admitted quality of a
// session, JSON-shaped for the HTTP layer.
type SessionInfo struct {
	ID               string  `json:"session"`
	Width            int     `json:"width"`
	Height           int     `json:"height"`
	N                int     `json:"n"`
	RTWorkload       int     `json:"rt_workload"`
	Shards           int     `json:"shards"`
	PredictedSeconds float64 `json:"predicted_seconds"`
	Degraded         bool    `json:"degraded"`
	PrefetchDepth    int     `json:"prefetch_depth"`
	Frames           uint64  `json:"frames"`
	PrefetchHits     uint64  `json:"prefetch_hits"`
}

// OpenSession validates and admits the request once (camera fields are
// the opening pose), registers the session, and soft-pins its runner so
// the scene stays warm between frames. A deadline no quality fits is
// refused with the same RejectionError a one-shot Render would get. At
// MaxSessions, sessions idle longer than SessionIdleTimeout are reaped
// to make room; with none to reap, ErrTooManySessions.
func (s *Server) OpenSession(req FrameRequest) (*Session, error) {
	if err := s.validate(&req); err != nil {
		s.stats.badRequests.Add(1)
		return nil, err
	}
	d, err := s.admitRequest(&req)
	if err != nil {
		s.stats.errors.Add(1)
		return nil, err
	}
	if !d.ok {
		s.stats.rejected.Add(1)
		return nil, &RejectionError{
			DeadlineSeconds:       req.DeadlineMillis / 1e3,
			PredictedSeconds:      d.requestedPredicted,
			FloorPredictedSeconds: d.predicted,
			Steps:                 d.steps,
		}
	}

	s.sessMu.Lock()
	if s.sessClose {
		s.sessMu.Unlock()
		return nil, ErrClosed
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.reapIdleLocked()
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		return nil, ErrTooManySessions
	}
	s.nextSess++
	sess := &Session{
		srv:   s,
		id:    s.nextSess,
		token: strconv.FormatUint(s.nextSess, 16),
		base:  req,
		depth: s.cfg.PrefetchDepth,
	}
	now := time.Now()
	sess.lastUsed.Store(now.UnixNano())
	sess.lastT = now
	sess.hist[0] = Pose{Azimuth: req.Azimuth, Zoom: req.Zoom}
	sess.nhist = 1
	sess.d = d
	sess.gen = s.engine.Registry().Generation()
	if d.q.Shards <= 1 {
		sess.pinned = runnerKey{arch: req.Arch, backend: req.Backend, sim: req.Sim, q: d.q}
		sess.hasPin = true
		s.runners.Pin(sess.pinned)
	}
	s.sessions[sess.id] = sess
	s.sessMu.Unlock()
	s.stats.sessionsOpened.Add(1)
	return sess, nil
}

// reapIdleLocked closes sessions idle longer than the configured
// timeout. Caller holds sessMu.
func (s *Server) reapIdleLocked() {
	cutoff := time.Now().Add(-s.cfg.SessionIdleTimeout).UnixNano()
	for id, sess := range s.sessions {
		if sess.lastUsed.Load() < cutoff {
			delete(s.sessions, id)
			sess.finish()
		}
	}
}

// LookupSession resolves a session token from the HTTP layer.
func (s *Server) LookupSession(token string) (*Session, bool) {
	id, err := strconv.ParseUint(token, 16, 64)
	if err != nil {
		return nil, false
	}
	s.sessMu.Lock()
	sess, ok := s.sessions[id]
	s.sessMu.Unlock()
	return sess, ok
}

// SessionsOpen reports the number of live sessions.
func (s *Server) SessionsOpen() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// DrainSessions closes every open session and refuses new ones — the
// graceful-shutdown step HTTP layers run before Close, so streaming
// clients see their sessions end while the listener still answers.
func (s *Server) DrainSessions() { s.closeAllSessions() }

// closeAllSessions drains every session on server shutdown: marks them
// closed (in-flight speculative jobs see the flag and no-op) and
// releases their runner pins.
func (s *Server) closeAllSessions() {
	s.sessMu.Lock()
	s.sessClose = true
	drained := make([]*Session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		delete(s.sessions, id)
		drained = append(drained, sess)
	}
	s.sessMu.Unlock()
	for _, sess := range drained {
		sess.finish()
	}
}

// Token returns the session's client-visible identifier.
func (sess *Session) Token() string { return sess.token }

// Info snapshots the session's admitted quality and prefetch counters.
func (sess *Session) Info() SessionInfo {
	sess.mu.Lock()
	d := sess.d
	sess.mu.Unlock()
	return SessionInfo{
		ID:    sess.token,
		Width: d.q.W, Height: d.q.H, N: d.q.N,
		RTWorkload: d.q.RTWorkload, Shards: maxInt(d.q.Shards, 1),
		PredictedSeconds: d.predicted,
		Degraded:         d.degraded,
		PrefetchDepth:    maxInt(sess.depth, 0),
		Frames:           sess.frames.Load(),
		PrefetchHits:     sess.prefetchHits.Load(),
	}
}

// PrefetchHits reports how many of this session's frames were served
// from a speculatively rendered cache entry.
func (sess *Session) PrefetchHits() uint64 { return sess.prefetchHits.Load() }

// Frames reports how many frames this session has served.
func (sess *Session) Frames() uint64 { return sess.frames.Load() }

// LastPose returns the most recent camera pose the session served.
func (sess *Session) LastPose() Pose {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.nhist == 0 {
		return Pose{Azimuth: sess.base.Azimuth, Zoom: sess.base.Zoom}
	}
	return sess.hist[sess.nhist-1]
}

// Close unregisters the session and releases its runner pin. In-flight
// speculative renders for it become no-ops. Idempotent.
func (sess *Session) Close() {
	s := sess.srv
	s.sessMu.Lock()
	delete(s.sessions, sess.id)
	s.sessMu.Unlock()
	sess.finish()
}

// finish marks the session closed and releases its pin; callers have
// already unregistered it.
func (sess *Session) finish() {
	if sess.closed.Swap(true) {
		return
	}
	sess.mu.Lock()
	hasPin, pinned := sess.hasPin, sess.pinned
	sess.hasPin = false
	sess.mu.Unlock()
	if hasPin {
		sess.srv.runners.Unpin(pinned)
	}
	sess.srv.stats.sessionsClosed.Add(1)
}

// Frame serves the session's next camera pose (zoom <= 0 keeps the
// previous zoom): record the pose, serve through the shared admission /
// frame-cache / scheduler path, then extrapolate the next poses and
// speculatively render the uncached ones into idle headroom. When the
// prediction was right, this frame was already cached and the whole
// call is a sub-microsecond, zero-allocation cache hit.
//
//insitu:noalloc
func (sess *Session) Frame(azimuth, zoom float64) (FrameResult, error) {
	s := sess.srv
	if sess.closed.Load() {
		return FrameResult{}, ErrSessionClosed
	}
	now := time.Now()
	sess.lastUsed.Store(now.UnixNano())

	req := sess.base
	req.Azimuth = azimuth
	if zoom > 0 {
		req.Zoom = zoom
	}
	// Only the camera changes between a session's frames; bound it here
	// so the fast path can skip full normalization (everything else was
	// validated at open and copied from base).
	if math.IsNaN(azimuth) || math.Abs(azimuth) > maxAzimuthDegrees ||
		math.IsNaN(req.Zoom) || req.Zoom <= 0 || req.Zoom > maxZoom {
		s.stats.badRequests.Add(1)
		//insitu:noalloc-ok rejected camera — the refusal path may allocate its error
		return FrameResult{}, badRequestf("session camera out of range: azimuth %g zoom %g", azimuth, req.Zoom)
	}

	// Steady-state fast path: the session's admission is memoized per
	// model generation, so a correctly predicted (already cached) frame
	// costs one atomic generation read and one cache probe — no
	// normalization, no admission LRU.
	res, d, served := sess.fastFrame(&req)
	if !served {
		var err error
		//insitu:noalloc-ok the slow path (generation change or cache miss) re-admits or renders
		res, d, err = s.serveFrame(req, sess)
		if err != nil {
			return res, err
		}
		//insitu:noalloc-ok slow path: refresh the memoized decision and pin
		sess.refreshDecision(&req, d)
	}
	sess.frames.Add(1)
	s.stats.sessionFrames.Add(1)

	if n := sess.planPrefetch(now, &req, d); n > 0 {
		//insitu:noalloc-ok submission runs only for uncached predictions — the prefetch miss path
		sess.submitPrefetch(&req, d, n)
	}
	return res, nil
}

// fastFrame is the memoized session frame path: reuse the stored
// admission decision while the model generation it was made under
// still stands, and serve straight from the frame cache. Returns
// served=false (and an unusable result) on a generation change or a
// cache miss — the caller then takes the full serveFrame path.
//
//insitu:noalloc
func (sess *Session) fastFrame(req *FrameRequest) (FrameResult, decision, bool) {
	s := sess.srv
	start := time.Now()
	gen := s.engine.Registry().Generation()
	sess.mu.Lock()
	d, current := sess.d, sess.gen == gen
	sess.mu.Unlock()
	if !current {
		return FrameResult{}, decision{}, false
	}
	fk := frameKeyFor(req, d.q)
	cf, ok := s.frames.Get(fk)
	if !ok {
		return FrameResult{}, decision{}, false
	}
	s.stats.admitted.Add(1)
	if d.degraded {
		s.stats.degraded.Add(1)
	}
	s.stats.cacheHits.Add(1)
	if cf.speculative {
		s.stats.prefetchHits.Add(1)
		sess.prefetchHits.Add(1)
	}
	// Same stack-local discipline as serveFrame's hit path: the trace
	// commits by copy, so it never escapes and the fast path stays
	// allocation-free.
	var tr obs.FrameTrace
	tr.Seq = s.tracer.NextSeq()
	traceIdentity(&tr, req, d.q)
	tr.CacheHit, tr.Degraded = true, d.degraded
	tr.Begin(start)
	tr.Span(obs.StageAdmit, start, time.Since(start))
	s.commitTrace(&tr, time.Now())
	return FrameResult{
		PNG:   cf.png,
		Width: d.q.W, Height: d.q.H, N: d.q.N, RTWorkload: d.q.RTWorkload,
		PrefetchHit:      cf.speculative,
		PredictedSeconds: d.predicted, RenderSeconds: cf.renderSeconds,
		Shards:                    d.q.Shards,
		CompositeSeconds:          cf.compositeSeconds,
		PredictedCompositeSeconds: d.predictedComposite,
		RankRenderSeconds:         cf.rankRenderSeconds,
		RankCompositeSeconds:      cf.rankCompositeSeconds,
		CacheHit:                  true, Degraded: d.degraded, DegradeSteps: d.steps,
	}, d, true
}

// refreshDecision re-memoizes the slow path's admission outcome and
// moves the runner pin when a model refit changed the admitted quality.
func (sess *Session) refreshDecision(req *FrameRequest, d decision) {
	gen := sess.srv.engine.Registry().Generation()
	sess.mu.Lock()
	qChanged := d.q != sess.d.q
	sess.d, sess.gen = d, gen
	if qChanged {
		// Verified poses identified frames at the old quality; the new
		// quality's frames must be re-probed.
		sess.nVerified = 0
	}
	sess.mu.Unlock()
	if qChanged {
		sess.repin(req, d)
	}
}

// pushPoseLocked appends to the fixed-size path history, dropping the
// oldest pose. Caller holds sess.mu.
//
//insitu:noalloc
func (sess *Session) pushPoseLocked(p Pose) {
	if sess.nhist < len(sess.hist) {
		sess.hist[sess.nhist] = p
		sess.nhist++
		return
	}
	copy(sess.hist[:], sess.hist[1:])
	sess.hist[len(sess.hist)-1] = p
}

// repin moves the session's soft pin to the newly admitted quality
// (a continuous-calibration refit changed the degrade ladder's outcome).
func (sess *Session) repin(req *FrameRequest, d decision) {
	s := sess.srv
	sess.mu.Lock()
	old, hadPin := sess.pinned, sess.hasPin
	sess.d = d
	sess.hasPin = d.q.Shards <= 1
	if sess.hasPin {
		sess.pinned = runnerKey{arch: req.Arch, backend: req.Backend, sim: req.Sim, q: d.q}
		s.runners.Pin(sess.pinned)
	}
	sess.mu.Unlock()
	if hadPin {
		s.runners.Unpin(old)
	}
}

// planPrefetch extrapolates the next poses and fills sess.cands with
// the ones whose frames are not cached, verified recently, or already
// in flight. It is the zero-allocation half of prefetch: predictions
// that are already cached cost one LRU probe the first frame and a key
// comparison afterwards.
//
//insitu:noalloc
func (sess *Session) planPrefetch(now time.Time, req *FrameRequest, d decision) int {
	s := sess.srv
	sess.mu.Lock()
	// The inter-frame gap EMA is the measured think time — the idle
	// headroom budget speculative renders must fit into.
	if dt := now.Sub(sess.lastT).Seconds(); dt > 0 && sess.nhist > 0 {
		if sess.emaGap == 0 {
			sess.emaGap = dt
		} else {
			sess.emaGap = 0.8*sess.emaGap + 0.2*dt
		}
	}
	sess.lastT = now
	sess.pushPoseLocked(Pose{Azimuth: req.Azimuth, Zoom: req.Zoom})
	if sess.depth <= 0 {
		sess.mu.Unlock()
		return 0
	}
	n := s.cfg.Predictor.Predict(sess.hist[:sess.nhist], sess.scratch[:sess.depth])
	ncand, nverify := 0, 0
	for i := 0; i < n; i++ {
		pose := sess.scratch[i]
		ck := cameraKeyFor(pose)
		if sess.verifiedLocked(ck) {
			if nverify < len(sess.newVerified) {
				sess.newVerified[nverify] = ck
				nverify++
			}
			continue
		}
		// Only a pose outside the verified window — in steady state the
		// single newly entered horizon pose — pays for a full frame key
		// and a cache probe.
		req.Azimuth, req.Zoom = pose.Azimuth, pose.Zoom
		fk := frameKeyFor(req, d.q)
		if _, ok := s.frames.Get(fk); ok {
			if nverify < len(sess.newVerified) {
				sess.newVerified[nverify] = ck
				nverify++
			}
			continue
		}
		if ncand < len(sess.cands) {
			sess.cands[ncand] = prefetchCand{pose: pose, fk: fk}
			ncand++
		}
	}
	// The verified window carries over keys still inside the horizon so
	// steady state re-probes only the newly entered pose.
	copy(sess.verified[:], sess.newVerified[:nverify])
	sess.nVerified = nverify
	sess.mu.Unlock()
	return ncand
}

// verifiedLocked reports whether the pose was found cached (or
// submitted) on the previous Frame. Caller holds sess.mu.
//
//insitu:noalloc
func (sess *Session) verifiedLocked(ck cameraKey) bool {
	for i := 0; i < sess.nVerified; i++ {
		if sess.verified[i] == ck {
			return true
		}
	}
	return false
}

// submitPrefetch enqueues background renders for the planned
// candidates, gated three ways: per-session in-flight cap (fairness
// across sessions), the model-predicted think-time budget (speculation
// must fit the headroom the client's own cadence leaves), and the
// scheduler's idle-headroom admission (no queued foreground work, a
// free worker). Refusals are counted, never retried — the next Frame
// replans from fresher poses.
func (sess *Session) submitPrefetch(req *FrameRequest, d decision, n int) {
	s := sess.srv
	// Think-time budget: the client's inter-frame gap times the workers
	// left after the foreground reserve. Zero means "not measured yet"
	// — bootstrap speculatively.
	//
	// Snapshot the candidates in the same critical section: sess.cands is
	// prediction scratch that a concurrent Frame's planPrefetch rewrites
	// under sess.mu, so reading it lock-free here would tear.
	sess.mu.Lock()
	budget := sess.emaGap * float64(s.sched.bgSlots())
	var cands [MaxPrefetchDepth]prefetchCand
	copy(cands[:], sess.cands[:n])
	sess.mu.Unlock()
	spent := 0.0
	for i := 0; i < n; i++ {
		cand := cands[i]
		if int(sess.inflight.Load()) >= sess.depth {
			s.stats.prefetchNoHeadroom.Add(1)
			continue
		}
		if budget > 0 && spent+d.predicted > budget {
			s.stats.prefetchNoHeadroom.Add(1)
			continue
		}
		pr := *req
		pr.Azimuth, pr.Zoom = cand.pose.Azimuth, cand.pose.Zoom
		pr.DeadlineMillis = 0 // speculative work has no client deadline
		fk := cand.fk
		sess.inflight.Add(1)
		err := s.sched.submitBackground(
			func(ws *workerState) { s.runPrefetchJob(ws, sess, pr, d, fk) },
			func() {
				sess.inflight.Add(-1)
				s.stats.prefetchShed.Add(1)
			},
		)
		if err != nil {
			sess.inflight.Add(-1)
			if errors.Is(err, errNoHeadroom) {
				s.stats.prefetchNoHeadroom.Add(1)
			} else {
				s.stats.prefetchShed.Add(1)
			}
			return // no headroom now; further candidates fare no better
		}
		s.stats.prefetchScheduled.Add(1)
		spent += d.predicted
		// Submitted predictions join the verified window so the next
		// Frame does not re-candidate them while they render.
		sess.mu.Lock()
		if sess.nVerified < len(sess.verified) {
			sess.verified[sess.nVerified] = cameraKey{azMilli: fk.azMilli, zoomMilli: fk.zoomMilli}
			sess.nVerified++
		}
		sess.mu.Unlock()
	}
}

// runPrefetchJob is the background half of speculation, running on a
// scheduler worker during idle headroom: re-check that the frame is
// still wanted and uncached, lead a flight (so a foreground miss
// arriving mid-render waits instead of duplicating), render at the
// admitted quality, and publish the frame to the cache marked
// speculative. The rendered frame's measurement feeds calibration like
// any other — speculative frames are real frames.
func (s *Server) runPrefetchJob(ws *workerState, sess *Session, req FrameRequest, d decision, fk frameKey) {
	defer sess.inflight.Add(-1)
	if sess.closed.Load() {
		s.stats.prefetchStale.Add(1)
		return
	}
	if _, ok := s.frames.Get(fk); ok {
		s.stats.prefetchStale.Add(1)
		return
	}
	s.flightMu.Lock()
	if _, busy := s.flights[fk]; busy {
		s.flightMu.Unlock()
		s.stats.prefetchStale.Add(1)
		return
	}
	f := &flight{done: make(chan struct{}), speculative: true}
	s.flights[fk] = f
	s.flightMu.Unlock()

	// Speculative frames trace like any other render — they are real
	// frames — minus the admit/queue-wait stages a client request pays.
	tr := &obs.FrameTrace{Seq: s.tracer.NextSeq()}
	traceIdentity(tr, &req, d.q)
	tr.Degraded = d.degraded
	tr.Begin(time.Now())

	f.res, f.err = s.renderFrame(ws, &req, d, fk, time.Time{}, tr)
	if f.err == nil {
		s.stats.prefetchRendered.Add(1)
		storeStart := time.Now()
		s.frames.Add(fk, cachedFrame{
			png:                  f.res.PNG,
			renderSeconds:        f.res.RenderSeconds,
			compositeSeconds:     f.res.CompositeSeconds,
			rankRenderSeconds:    f.res.RankRenderSeconds,
			rankCompositeSeconds: f.res.RankCompositeSeconds,
			speculative:          true,
		})
		tr.Span(obs.StageCacheStore, storeStart, time.Since(storeStart))
		s.commitTrace(tr, time.Now())
	} else {
		s.stats.prefetchErrors.Add(1)
	}
	s.flightMu.Lock()
	delete(s.flights, fk)
	s.flightMu.Unlock()
	close(f.done)
}
