package serve

import (
	"container/heap"
	"errors"
	"sync"
	"time"

	"insitu/internal/framebuffer"
)

// ErrQueueFull reports a render queue at capacity; clients should retry
// later (HTTP layers map it to 503).
var ErrQueueFull = errors.New("serve: render queue full")

// ErrClosed reports a server that has stopped accepting work.
var ErrClosed = errors.New("serve: server closed")

// errNoHeadroom reports a background submission refused because the
// predicted foreground load leaves no idle capacity to speculate in.
var errNoHeadroom = errors.New("serve: no idle headroom for background work")

// workerState is the per-worker scratch that persists across jobs: the
// PNG encoder's staging image and compression buffers stay warm, so
// steady-state frame encoding allocates only the output bytes.
type workerState struct {
	enc framebuffer.PNGEncoder
}

// job is one queued foreground render with its absolute deadline (zero
// time means no deadline and sorts last), the admission-time predicted
// cost (for the foreground-load accounting background admission reads),
// and a FIFO tiebreaker.
type job struct {
	deadline  time.Time
	predNanos int64
	seq       uint64
	run       func(ws *workerState)
}

// jobHeap orders jobs earliest-deadline-first.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	di, dj := h[i].deadline, h[j].deadline
	switch {
	case di.IsZero() && dj.IsZero():
		return h[i].seq < h[j].seq
	case di.IsZero():
		return false
	case dj.IsZero():
		return true
	case di.Equal(dj):
		return h[i].seq < h[j].seq
	default:
		return di.Before(dj)
	}
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// bgJob is one queued background (speculative prefetch) render. cancel
// runs when the job is shed without executing, so the submitter can
// release whatever the job was accounted against.
type bgJob struct {
	run    func(ws *workerState)
	cancel func()
}

// scheduler is a bounded worker pool with two priority classes.
//
// Foreground jobs (client frames) execute earliest-deadline-first: under
// contention the frame closest to missing its deadline renders next,
// which is the schedule that minimizes deadline misses when the
// admission controller has already verified each job fits on its own.
//
// Background jobs (speculative prefetch) are strictly subordinate:
//   - admitted only when no foreground job is queued and an idle worker
//     exists (the predicted foreground load — the sum of admission-time
//     cost predictions for queued and running foreground jobs — is
//     tracked and exposed so callers can gate further);
//   - dequeued only when the foreground heap is empty, so a queued
//     foreground job is never delayed or reordered by prefetch;
//   - capped at workers-1 concurrent executions (one worker is always
//     reserved for foreground arrivals) unless the pool has a single
//     worker, which then speculates only while idle;
//   - shed first: oldest-first when the background queue overflows
//     (older predictions are the stalest) and wholesale on close.
//
// A background job that has already started cannot be preempted — Go has
// no goroutine preemption points we control — which is why the reserve
// worker and the idle-only admission exist: a foreground arrival finds
// capacity immediately instead of waiting out a speculative render.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	jobs     jobHeap
	bg       []bgJob
	queueCap int
	bgCap    int
	workers  int
	seq      uint64
	closed   bool
	wg       sync.WaitGroup

	fgActive    int
	bgActive    int
	fgLoadNanos int64 // predicted cost of queued + running foreground jobs
}

func newScheduler(workers, queueCap, bgCap int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if bgCap < 1 {
		bgCap = 1
	}
	s := &scheduler{queueCap: queueCap, bgCap: bgCap, workers: workers}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// submit enqueues a foreground job; a zero deadline means "whenever"
// (sorted after every deadlined job). predictedSeconds is the admission
// controller's cost estimate, charged against the foreground load until
// the job completes.
func (s *scheduler) submit(deadline time.Time, predictedSeconds float64, run func(ws *workerState)) error {
	predNanos := int64(predictedSeconds * 1e9)
	if predNanos < 0 {
		predNanos = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.jobs) >= s.queueCap {
		return ErrQueueFull
	}
	s.seq++
	heap.Push(&s.jobs, &job{deadline: deadline, predNanos: predNanos, seq: s.seq, run: run})
	s.fgLoadNanos += predNanos
	s.cond.Signal()
	return nil
}

// submitBackground enqueues a speculative job, admitted only into idle
// headroom: no queued foreground work and a worker free to take it.
// When the background queue is full the oldest queued job is shed (its
// cancel hook runs) to make room — the newest predictions extend
// furthest into the client's future and are worth the most.
func (s *scheduler) submitBackground(run func(ws *workerState), cancel func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.jobs) > 0 || s.fgActive+s.bgActive >= s.workers {
		s.mu.Unlock()
		return errNoHeadroom
	}
	var shed bgJob
	haveShed := false
	if len(s.bg) >= s.bgCap {
		shed, haveShed = s.bg[0], true
		copy(s.bg, s.bg[1:])
		s.bg = s.bg[:len(s.bg)-1]
	}
	s.bg = append(s.bg, bgJob{run: run, cancel: cancel})
	s.cond.Signal()
	s.mu.Unlock()
	if haveShed && shed.cancel != nil {
		shed.cancel()
	}
	return nil
}

// depth reports the queued (not yet running) foreground job count.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// bgDepth reports the queued (not yet running) background job count.
func (s *scheduler) bgDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bg)
}

// foregroundLoad returns the predicted seconds of queued plus running
// foreground work — the model's view of how busy the pool is.
func (s *scheduler) foregroundLoad() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return float64(s.fgLoadNanos) / 1e9
}

// bgSlots is the concurrent background execution cap: one worker stays
// reserved for foreground arrivals whenever there is more than one.
func (s *scheduler) bgSlots() int {
	if s.workers > 1 {
		return s.workers - 1
	}
	return 1
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	ws := &workerState{}
	for {
		s.mu.Lock()
		for !s.closed && len(s.jobs) == 0 && !s.canRunBackgroundLocked() {
			s.cond.Wait()
		}
		switch {
		case len(s.jobs) > 0:
			j := heap.Pop(&s.jobs).(*job)
			s.fgActive++
			s.mu.Unlock()
			j.run(ws)
			s.mu.Lock()
			s.fgActive--
			s.fgLoadNanos -= j.predNanos
			// A freed worker may unblock a queued background job.
			s.cond.Signal()
			s.mu.Unlock()
		case s.canRunBackgroundLocked():
			b := s.bg[0]
			copy(s.bg, s.bg[1:])
			s.bg = s.bg[:len(s.bg)-1]
			s.bgActive++
			s.mu.Unlock()
			b.run(ws)
			s.mu.Lock()
			s.bgActive--
			s.cond.Signal()
			s.mu.Unlock()
		default: // closed and drained
			s.mu.Unlock()
			return
		}
	}
}

// canRunBackgroundLocked: background work runs only when the foreground
// heap is empty and a background execution slot is free.
func (s *scheduler) canRunBackgroundLocked() bool {
	return len(s.bg) > 0 && len(s.jobs) == 0 && s.bgActive < s.bgSlots()
}

// close stops accepting jobs, sheds every queued background job (their
// cancel hooks run), drains the foreground queue, and waits for workers.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	shed := s.bg
	s.bg = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, b := range shed {
		if b.cancel != nil {
			b.cancel()
		}
	}
	s.wg.Wait()
}
