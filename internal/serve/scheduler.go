package serve

import (
	"container/heap"
	"errors"
	"sync"
	"time"

	"insitu/internal/framebuffer"
)

// ErrQueueFull reports a render queue at capacity; clients should retry
// later (HTTP layers map it to 503).
var ErrQueueFull = errors.New("serve: render queue full")

// ErrClosed reports a server that has stopped accepting work.
var ErrClosed = errors.New("serve: server closed")

// workerState is the per-worker scratch that persists across jobs: the
// PNG encoder's staging image and compression buffers stay warm, so
// steady-state frame encoding allocates only the output bytes.
type workerState struct {
	enc framebuffer.PNGEncoder
}

// job is one queued render with its absolute deadline (zero time means
// no deadline and sorts last) and a FIFO tiebreaker.
type job struct {
	deadline time.Time
	seq      uint64
	run      func(ws *workerState)
}

// jobHeap orders jobs earliest-deadline-first.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	di, dj := h[i].deadline, h[j].deadline
	switch {
	case di.IsZero() && dj.IsZero():
		return h[i].seq < h[j].seq
	case di.IsZero():
		return false
	case dj.IsZero():
		return true
	case di.Equal(dj):
		return h[i].seq < h[j].seq
	default:
		return di.Before(dj)
	}
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// scheduler is a bounded worker pool executing jobs in
// earliest-deadline-first order: under contention the frame closest to
// missing its deadline renders next, which is the schedule that
// minimizes deadline misses when the admission controller has already
// verified each job fits on its own.
type scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	jobs     jobHeap
	queueCap int
	seq      uint64
	closed   bool
	wg       sync.WaitGroup
}

func newScheduler(workers, queueCap int) *scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	s := &scheduler{queueCap: queueCap}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// submit enqueues a job; a zero deadline means "whenever" (sorted after
// every deadlined job).
func (s *scheduler) submit(deadline time.Time, run func(ws *workerState)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.jobs) >= s.queueCap {
		return ErrQueueFull
	}
	s.seq++
	heap.Push(&s.jobs, &job{deadline: deadline, seq: s.seq, run: run})
	s.cond.Signal()
	return nil
}

// depth reports the queued (not yet running) job count.
func (s *scheduler) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	ws := &workerState{}
	for {
		s.mu.Lock()
		for len(s.jobs) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.jobs) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.jobs).(*job)
		s.mu.Unlock()
		j.run(ws)
	}
}

// close stops accepting jobs, drains the queue, and waits for workers.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
