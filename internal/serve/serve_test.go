package serve

import (
	"bytes"
	"errors"
	"image/png"
	"strings"
	"testing"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/study"
)

// testSnapshot hand-builds a model snapshot with plausible positive
// coefficients. The serving layer is gated on predictions, not on fit
// quality, so a synthetic snapshot keeps these tests off the slow
// measurement path; the coefficients are sized so a 256^2 frame costs
// tens of model-milliseconds and a 64^2 frame a few.
func testSnapshot() *registry.Snapshot {
	fit := func(coef ...float64) registry.FitDoc {
		return registry.FitDoc{Coef: coef, R2: 0.99, N: 16, P: len(coef)}
	}
	build := fit(1e-8, 1e-5)
	return &registry.Snapshot{
		Version: registry.SnapshotVersion, Source: "serve-test", CreatedUnix: 1,
		Mapping: registry.MappingDoc{FillFraction: 0.55, SPRBase: 373},
		Models: []registry.ModelDoc{
			{Arch: "serial", Renderer: string(core.RayTrace), Fit: fit(1e-7, 5e-8, 1e-4), BuildFit: &build},
			{Arch: "serial", Renderer: string(core.Volume), Fit: fit(1e-8, 1e-9, 1e-4)},
		},
	}
}

func testRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	reg := registry.New(1024)
	if err := reg.Load(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	return reg
}

// testServer builds a serving stack over the synthetic registry on the
// serial device profile (deterministic, cheap).
func testServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	cfg.Arch = "serial"
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := New(advisor.New(testRegistry(t)), cfg)
	t.Cleanup(s.Close)
	return s
}

// TestDeadlineZeroAdmitsAtRequestedQuality: deadline 0 means "no
// deadline" — the frame is admitted exactly as asked, rendered, and the
// bytes decode as a PNG of the requested size.
func TestDeadlineZeroAdmitsAtRequestedQuality(t *testing.T) {
	s := testServer(t, Config{})
	res, err := s.Render(FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 72})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.DegradeSteps != 0 {
		t.Errorf("no-deadline request degraded: %+v", res)
	}
	if res.Width != 72 || res.Height != 72 || res.N != 8 {
		t.Errorf("served quality %dx%d n=%d, want 72x72 n=8", res.Width, res.Height, res.N)
	}
	img, err := png.Decode(bytes.NewReader(res.PNG))
	if err != nil {
		t.Fatalf("served bytes are not a PNG: %v", err)
	}
	if b := img.Bounds(); b.Dx() != 72 || b.Dy() != 72 {
		t.Errorf("PNG is %dx%d", b.Dx(), b.Dy())
	}
	if res.PredictedSeconds <= 0 || res.RenderSeconds <= 0 {
		t.Errorf("missing timings: %+v", res)
	}
}

// TestUnknownNamesAnswerBadRequest: unknown backends, sims, and archs
// are client errors that name the registered alternatives.
func TestUnknownNamesAnswerBadRequest(t *testing.T) {
	s := testServer(t, Config{})
	cases := []struct {
		req  FrameRequest
		want string
	}{
		{FrameRequest{Backend: "teapot", Sim: "kripke", N: 8, Width: 64}, string(core.RayTrace)},
		{FrameRequest{Backend: core.RayTrace, Sim: "spice", N: 8, Width: 64}, "kripke"},
		{FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, Arch: "abacus"}, "serial"},
		// The structured-only volume renderer cannot eat the Lagrangian
		// proxy's unstructured mesh.
		{FrameRequest{Backend: core.Volume, Sim: "lulesh", N: 8, Width: 64}, "structured"},
	}
	for _, tc := range cases {
		_, err := s.Render(tc.req)
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("%+v: err = %v, want ErrBadRequest", tc.req, err)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: error %q does not mention %q", tc.req, err, tc.want)
		}
	}
	// A registered backend with no model in the snapshot is a 404-class
	// error, not a 400.
	_, err := s.Render(FrameRequest{Backend: core.Raster, Sim: "kripke", N: 8, Width: 64})
	if !errors.Is(err, registry.ErrNoModel) {
		t.Errorf("model-less backend: err = %v, want ErrNoModel", err)
	}
}

// TestCacheHitReturnsIdenticalBytes: the second identical request is a
// cache hit serving byte-identical PNG data.
func TestCacheHitReturnsIdenticalBytes(t *testing.T) {
	s := testServer(t, Config{})
	req := FrameRequest{Backend: core.Volume, Sim: "kripke", N: 8, Width: 64}
	first, err := s.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first render was a cache hit")
	}
	second, err := s.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second render missed the cache")
	}
	if !bytes.Equal(first.PNG, second.PNG) {
		t.Fatal("cache hit served different bytes")
	}
	if second.RenderSeconds != first.RenderSeconds {
		t.Errorf("cache hit lost the original measurement: %v vs %v", second.RenderSeconds, first.RenderSeconds)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.FramesRendered != 1 {
		t.Errorf("stats: %+v", st)
	}
}

// TestTightDeadlineDegrades: a deadline between the floor-quality and
// requested-quality predictions is admitted only after degradation.
func TestTightDeadlineDegrades(t *testing.T) {
	s := testServer(t, Config{})
	req := FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 12, Width: 512}
	full, _, err := s.predictQuality("serial", core.RayTrace, quality{W: 512, H: 512, N: 12})
	if err != nil {
		t.Fatal(err)
	}
	floor, _, err := s.predictQuality("serial", core.RayTrace, quality{W: 64, H: 64, N: 8, RTWorkload: 1})
	if err != nil {
		t.Fatal(err)
	}
	if floor >= full {
		t.Fatalf("degradation does not reduce predicted cost: floor %v, full %v", floor, full)
	}
	req.DeadlineMillis = (floor + (full-floor)/4) * 1e3
	res, err := s.Render(req)
	if err != nil {
		t.Fatalf("degradable request rejected: %v", err)
	}
	if !res.Degraded || res.DegradeSteps == 0 {
		t.Errorf("tight deadline served undegraded: %+v", res)
	}
	if res.Width >= 512 {
		t.Errorf("resolution did not shrink: %d", res.Width)
	}
	if res.PredictedSeconds > req.DeadlineMillis/1e3 {
		t.Errorf("admitted prediction %v exceeds deadline %v", res.PredictedSeconds, req.DeadlineMillis/1e3)
	}
}

// TestImpossibleDeadlineRejectsWithPrediction: the degrade ladder
// terminates and the refusal carries the model's predicted times.
func TestImpossibleDeadlineRejectsWithPrediction(t *testing.T) {
	s := testServer(t, Config{})
	req := FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 24, Width: 1024,
		DeadlineMillis: 1e-6, // one nanosecond: nothing fits
	}
	done := make(chan struct{})
	var res FrameResult
	var err error
	go func() {
		res, err = s.Render(req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("degrade ladder did not terminate")
	}
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v (%+v), want RejectionError", err, res)
	}
	if rej.PredictedSeconds <= 0 || rej.FloorPredictedSeconds <= 0 {
		t.Errorf("rejection lacks predictions: %+v", rej)
	}
	if rej.FloorPredictedSeconds > rej.PredictedSeconds {
		t.Errorf("floor prediction %v above requested prediction %v", rej.FloorPredictedSeconds, rej.PredictedSeconds)
	}
	if rej.Steps == 0 {
		t.Errorf("ladder took no steps: %+v", rej)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("stats: %+v", s.Stats())
	}
}

// TestDegradedFramesSkipCalibration: frames rendered off the fitted ray
// tracing workload must not reach the observer (workload is not a model
// input), while baseline frames must.
func TestDegradedFramesSkipCalibration(t *testing.T) {
	reg := testRegistry(t)
	engine := advisor.New(reg)
	cal := &study.Calibrator{
		Source: "serve-test", RefitEvery: 1000, // accumulate only
		Publish: func(s *registry.Snapshot, _ uint64) error { return reg.Publish(s) },
	}
	engine.SetObserver(cal)
	s := New(engine, Config{Arch: "serial", Logf: t.Logf})
	defer s.Close()

	if _, err := s.Render(FrameRequest{Backend: core.Volume, Sim: "kripke", N: 8, Width: 64}); err != nil {
		t.Fatal(err)
	}
	// Force the workload-1 floor: minimum quality everywhere, deadline
	// between the derated and underated floor predictions.
	floorBase, _, err := s.predictQuality("serial", core.RayTrace, quality{W: 64, H: 64, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	req := FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64,
		DeadlineMillis: floorBase * workload1Derate * 1.5 * 1e3,
	}
	if req.DeadlineMillis/1e3 >= floorBase {
		t.Fatalf("test deadline %v does not force the workload floor (base %v)", req.DeadlineMillis/1e3, floorBase)
	}
	res, err := s.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.RTWorkload != 1 {
		t.Fatalf("expected the workload-1 floor, got %+v", res)
	}
	// Wait for the volume observation to drain; the raytrace frame must
	// have been skipped.
	deadline := time.Now().Add(5 * time.Second)
	for cal.CorpusSize() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := cal.CorpusSize(); got != 1 {
		t.Errorf("calibrator corpus = %d, want 1 (volume only)", got)
	}
	if st := s.Stats(); st.ObservationsSkipped != 1 {
		t.Errorf("observations skipped = %d, want 1", st.ObservationsSkipped)
	}
}

// TestServedFrameRefitsModels is the closed loop in one process: a
// served frame's measurement reaches the calibrator and bumps the
// registry generation, and the next admission is gated by the refitted
// models (the admission memo is generation-keyed).
func TestServedFrameRefitsModels(t *testing.T) {
	reg := testRegistry(t)
	engine := advisor.New(reg)
	engine.SetObserver(&study.Calibrator{
		Source: "serve-refit", RefitEvery: 1,
		Base: func() (*registry.Snapshot, uint64) {
			v, err := reg.View()
			if err != nil {
				return nil, reg.Generation()
			}
			return v.Snapshot(), v.Generation()
		},
		Publish: func(s *registry.Snapshot, baseGen uint64) error {
			return reg.PublishIf(s, baseGen)
		},
	})
	s := New(engine, Config{Arch: "serial", Logf: t.Logf})
	defer s.Close()

	gen0 := reg.Generation()
	// Distinct cameras force real renders (cache misses), and the
	// volume fit needs >= 4 samples before the calibrator publishes.
	for i := 0; i < 6; i++ {
		req := FrameRequest{
			Backend: core.Volume, Sim: "kripke",
			N: 8 + (i%3)*2, Width: 48 + 16*(i%2), Azimuth: float64(10 * i),
		}
		if _, err := s.Render(req); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Generation() == gen0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if reg.Generation() == gen0 {
		t.Fatalf("served frames never republished the models (stats: %+v)", s.Stats())
	}
	snap := reg.Snapshot()
	if snap.Source != "serve-refit" {
		t.Errorf("serving snapshot source %q", snap.Source)
	}
	if s.Stats().Refits == 0 {
		t.Errorf("refit counter not bumped: %+v", s.Stats())
	}
	// The refitted registry still serves the untouched raytracer model
	// (carried over by the calibrator's merge).
	if _, err := s.Render(FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 48}); err != nil {
		t.Errorf("carried-over model gone after refit: %v", err)
	}
}

// TestQueueFullAnswersBackpressure: a zero-capacity-ish queue with a
// blocked worker refuses overflow with ErrQueueFull instead of queueing
// unboundedly.
func TestQueueFullAnswersBackpressure(t *testing.T) {
	sched := newScheduler(1, 1, 1)
	defer sched.close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := sched.submit(time.Time{}, 0, func(*workerState) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := sched.submit(time.Time{}, 0, func(*workerState) {}); err != nil {
		t.Fatalf("first queued job refused: %v", err)
	}
	if err := sched.submit(time.Time{}, 0, func(*workerState) {}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	close(block)
}

// TestSchedulerEDFOrder: queued jobs run earliest-deadline-first with
// no-deadline jobs last, regardless of submission order.
func TestSchedulerEDFOrder(t *testing.T) {
	sched := newScheduler(1, 16, 1)
	defer sched.close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := sched.submit(time.Time{}, 0, func(*workerState) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started

	var mu struct {
		ch chan string
	}
	mu.ch = make(chan string, 8)
	now := time.Now()
	submit := func(name string, deadline time.Time) {
		if err := sched.submit(deadline, 0, func(*workerState) { mu.ch <- name }); err != nil {
			t.Fatal(err)
		}
	}
	submit("none", time.Time{})
	submit("late", now.Add(3*time.Second))
	submit("early", now.Add(1*time.Second))
	submit("mid", now.Add(2*time.Second))
	close(block)

	want := []string{"early", "mid", "late", "none"}
	for _, w := range want {
		select {
		case got := <-mu.ch:
			if got != w {
				t.Fatalf("ran %q, want %q", got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("job %q never ran", w)
		}
	}
}

// TestSubNanosecondDeadlineDoesNotAliasNoDeadline: the admission memo
// quantizes deadlines; a positive-but-tiny deadline must not share the
// deadline=0 ("no deadline") key, or the cached unbounded admission
// would answer an impossible request.
func TestSubNanosecondDeadlineDoesNotAliasNoDeadline(t *testing.T) {
	s := testServer(t, Config{})
	req := FrameRequest{Backend: core.Volume, Sim: "kripke", N: 8, Width: 64}
	if _, err := s.Render(req); err != nil {
		t.Fatal(err)
	}
	req.DeadlineMillis = 1e-9
	_, err := s.Render(req)
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("tiny deadline after cached no-deadline admission: err = %v, want rejection", err)
	}
}

// TestInvalidRequestsRejected covers the remaining validation edges.
func TestInvalidRequestsRejected(t *testing.T) {
	s := testServer(t, Config{})
	bad := []FrameRequest{
		{Sim: "kripke", N: 8, Width: 64},                              // no backend
		{Backend: core.RayTrace, N: 0, Width: 64},                     // n too small
		{Backend: core.RayTrace, N: 8, Width: 0},                      // no width
		{Backend: core.RayTrace, N: 8, Width: 64, DeadlineMillis: -5}, // negative deadline
		{Backend: core.RayTrace, N: 8, Width: 1 << 20},                // over the size cap
		{Backend: core.RayTrace, N: 1 << 20, Width: 64},               // over the n cap
		{Backend: core.RayTrace, N: 8, Width: 64, Zoom: -1},           // bad camera
	}
	for _, req := range bad {
		if _, err := s.Render(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%+v: err = %v, want ErrBadRequest", req, err)
		}
	}
	if st := s.Stats(); st.BadRequests != uint64(len(bad)) {
		t.Errorf("bad request counter = %d, want %d", st.BadRequests, len(bad))
	}
}
