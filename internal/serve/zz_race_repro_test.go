package serve

import (
	"sync"
	"testing"
)

// Repro: concurrent Frame calls on one session race on sess.cands
// (written under sess.mu in planPrefetch, read lock-free in submitPrefetch).
func TestSessionConcurrentFramesRace(t *testing.T) {
	s := testServer(t, Config{Workers: 4, PrefetchDepth: 8})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				az := float64((g*50 + i) * 15 % 360)
				if _, err := sess.Frame(az, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
