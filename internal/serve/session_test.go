package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"insitu/internal/core"
)

// --- predictor ---

// TestOrbitPredictorConstantVelocity: a steady orbit extrapolates at
// the observed angular velocity.
func TestOrbitPredictorConstantVelocity(t *testing.T) {
	var p OrbitPredictor
	hist := []Pose{{Azimuth: 0, Zoom: 1}, {Azimuth: 15, Zoom: 1}}
	var dst [3]Pose
	n := p.Predict(hist, dst[:])
	if n != 3 {
		t.Fatalf("Predict filled %d poses, want 3", n)
	}
	want := []float64{30, 45, 60}
	for i, w := range want {
		if dst[i].Azimuth != w || dst[i].Zoom != 1 {
			t.Errorf("dst[%d] = %+v, want azimuth %g zoom 1", i, dst[i], w)
		}
	}
}

// TestOrbitPredictorWrapsAround: predictions cross the 360° seam into
// [0, 360), matching the wrapped azimuths orbiting clients request (and
// therefore the frame keys they will hit).
func TestOrbitPredictorWrapsAround(t *testing.T) {
	var p OrbitPredictor
	hist := []Pose{{Azimuth: 330, Zoom: 1}, {Azimuth: 345, Zoom: 1}}
	var dst [3]Pose
	if n := p.Predict(hist, dst[:]); n != 3 {
		t.Fatalf("Predict filled %d poses, want 3", n)
	}
	want := []float64{0, 15, 30}
	for i, w := range want {
		if dst[i].Azimuth != w {
			t.Errorf("dst[%d].Azimuth = %g, want %g", i, dst[i].Azimuth, w)
		}
	}
	// And the velocity itself is modular: 350 -> 5 is +15, not -345.
	hist = []Pose{{Azimuth: 350, Zoom: 1}, {Azimuth: 5, Zoom: 1}}
	if n := p.Predict(hist, dst[:1]); n != 1 || dst[0].Azimuth != 20 {
		t.Errorf("wrap velocity: got n=%d az=%g, want 1 pose at 20", n, dst[0].Azimuth)
	}
}

// TestOrbitPredictorRefusesToGuess: too-short history and a parked
// camera predict nothing, and a zooming-out path stops at the zoom
// bound instead of predicting impossible poses.
func TestOrbitPredictorRefusesToGuess(t *testing.T) {
	var p OrbitPredictor
	var dst [4]Pose
	if n := p.Predict([]Pose{{Azimuth: 10, Zoom: 1}}, dst[:]); n != 0 {
		t.Errorf("single-pose history predicted %d poses, want 0", n)
	}
	parked := []Pose{{Azimuth: 90, Zoom: 2}, {Azimuth: 90, Zoom: 2}}
	if n := p.Predict(parked, dst[:]); n != 0 {
		t.Errorf("parked camera predicted %d poses, want 0", n)
	}
	zoomingOut := []Pose{{Azimuth: 0, Zoom: 0.8}, {Azimuth: 10, Zoom: 0.3}}
	if n := p.Predict(zoomingOut, dst[:]); n != 0 {
		t.Errorf("zoom about to cross 0 predicted %d poses, want 0", n)
	}
}

// --- sessions ---

func sessionRequest() FrameRequest {
	return FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64}
}

// waitForPrefetch polls until the server has rendered (or shed) all
// speculation it scheduled, so subsequent frames see a quiet cache.
func waitForPrefetch(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := s.Stats()
		if st.PrefetchScheduled == st.PrefetchRendered+st.PrefetchStale+st.PrefetchShed+st.PrefetchErrors &&
			st.PrefetchQueueDepth == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("prefetch never drained: %+v", s.Stats())
}

// TestSessionOrbitPrefetchHits: an orbiting session's steady camera
// velocity is predicted, the next frames are speculatively rendered,
// and subsequent frames arrive as prefetch hits.
func TestSessionOrbitPrefetchHits(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var hits int
	for i := 1; i <= 10; i++ {
		res, err := sess.Frame(float64(15*i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.PrefetchHit {
			hits++
		}
		waitForPrefetch(t, s)
	}
	if hits == 0 {
		t.Fatalf("no prefetch hits over a constant-velocity orbit; stats %+v", s.Stats())
	}
	if got := sess.PrefetchHits(); got != uint64(hits) {
		t.Errorf("session counted %d prefetch hits, result flags said %d", got, hits)
	}
	st := s.Stats()
	if st.PrefetchHits != uint64(hits) || st.PrefetchRendered == 0 {
		t.Errorf("server stats disagree: %+v", st)
	}
	if st.SessionFrames != 10 || st.SessionsOpened != 1 {
		t.Errorf("session accounting: %+v", st)
	}
}

// TestSessionPrefetchDisabled: PrefetchDepth < 0 turns speculation off —
// frames still serve, nothing is scheduled.
func TestSessionPrefetchDisabled(t *testing.T) {
	s := testServer(t, Config{PrefetchDepth: -1})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i := 1; i <= 5; i++ {
		if _, err := sess.Frame(float64(15*i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.PrefetchScheduled != 0 || st.PrefetchHits != 0 {
		t.Errorf("prefetch ran while disabled: %+v", st)
	}
}

// TestSessionReverseDirection: the predictor follows a direction
// change (negative angular velocity) instead of prefetching the old
// heading forever.
func TestSessionReverseDirection(t *testing.T) {
	s := testServer(t, Config{Workers: 2})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	// Two frames heading backwards from 0: 345, 330, ...
	var hits int
	for i := 1; i <= 8; i++ {
		az := 360 - float64(15*i)
		res, err := sess.Frame(az, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.PrefetchHit {
			hits++
		}
		waitForPrefetch(t, s)
	}
	if hits == 0 {
		t.Fatalf("no prefetch hits on a reverse orbit; stats %+v", s.Stats())
	}
}

// TestSessionLifecycle: open registers and pins, close unregisters and
// unpins, frames after close are refused, and lookup round-trips the
// token.
func TestSessionLifecycle(t *testing.T) {
	s := testServer(t, Config{})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s.LookupSession(sess.Token()); !ok || got != sess {
		t.Fatalf("LookupSession(%q) = %v, %v", sess.Token(), got, ok)
	}
	if s.SessionsOpen() != 1 {
		t.Fatalf("SessionsOpen = %d, want 1", s.SessionsOpen())
	}
	if st := s.Stats(); st.RunnerCache.Pinned != 1 {
		t.Errorf("open session pinned %d runner keys, want 1", st.RunnerCache.Pinned)
	}
	sess.Close()
	sess.Close() // idempotent
	if s.SessionsOpen() != 0 {
		t.Errorf("SessionsOpen after close = %d, want 0", s.SessionsOpen())
	}
	if st := s.Stats(); st.RunnerCache.Pinned != 0 {
		t.Errorf("closed session left %d pins", st.RunnerCache.Pinned)
	}
	if _, ok := s.LookupSession(sess.Token()); ok {
		t.Error("closed session still resolvable")
	}
	if _, err := sess.Frame(10, 1); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Frame after close: %v, want ErrSessionClosed", err)
	}
	if st := s.Stats(); st.SessionsOpened != 1 || st.SessionsClosed != 1 {
		t.Errorf("session counters: %+v", st)
	}
}

// TestSessionCapReapsIdle: at MaxSessions, opening reaps sessions idle
// past the timeout; with nothing idle it refuses with
// ErrTooManySessions.
func TestSessionCapReapsIdle(t *testing.T) {
	s := testServer(t, Config{MaxSessions: 1, SessionIdleTimeout: time.Minute})
	first, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenSession(sessionRequest()); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over-cap open: %v, want ErrTooManySessions", err)
	}
	// Backdate the first session past the idle timeout; the next open
	// reaps it.
	first.lastUsed.Store(time.Now().Add(-2 * time.Minute).UnixNano())
	second, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatalf("open after idle reap: %v", err)
	}
	defer second.Close()
	if _, err := first.Frame(10, 1); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("reaped session Frame: %v, want ErrSessionClosed", err)
	}
}

// TestSessionServerCloseDrains: Server.Close ends every session and
// releases pins; opening afterwards is refused.
func TestSessionServerCloseDrains(t *testing.T) {
	s := testServer(t, Config{})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Frame(15, 1); err != nil {
		t.Fatal(err)
	}
	s.Close() // Cleanup re-Close is harmless
	if _, err := sess.Frame(30, 1); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Frame after server close: %v, want ErrSessionClosed", err)
	}
	if _, err := s.OpenSession(sessionRequest()); !errors.Is(err, ErrClosed) {
		t.Errorf("open after server close: %v, want ErrClosed", err)
	}
}

// TestSessionFairnessSharedRunnerCache: many concurrent sessions with
// distinct scene configurations share a runner cache smaller than the
// session population. Soft pinning degrades to LRU instead of
// starving: every session's frames complete.
func TestSessionFairnessSharedRunnerCache(t *testing.T) {
	const sessions = 6
	s := testServer(t, Config{
		Workers:            2,
		RunnerCacheEntries: 2, // far fewer warm runners than sessions
		PrefetchDepth:      2,
	})
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for c := 0; c < sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := sessionRequest()
			req.N = 8 + 2*(c%3) // three distinct runner keys
			req.Azimuth = float64(10 * c)
			sess, err := s.OpenSession(req)
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			for i := 1; i <= 6; i++ {
				if _, err := sess.Frame(req.Azimuth+float64(15*i), 1); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("session starved or failed: %v", err)
	}
	st := s.Stats()
	if st.SessionFrames != sessions*6 {
		t.Errorf("served %d session frames, want %d", st.SessionFrames, sessions*6)
	}
	if st.RunnerCache.Live > sessions {
		t.Errorf("runner cache grew past the session population: %+v", st.RunnerCache)
	}
}

// --- scheduler priority isolation ---

// TestSchedulerBackgroundNeverDelaysForeground: with a worker busy and
// a foreground job queued, background submission is refused
// (errNoHeadroom), and a background job queued while idle is passed
// over the moment foreground work arrives.
func TestSchedulerBackgroundNeverDelaysForeground(t *testing.T) {
	sched := newScheduler(1, 16, 16)
	defer sched.close()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := sched.submit(time.Time{}, 0, func(*workerState) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started
	// Busy worker: no idle headroom for speculation.
	if err := sched.submitBackground(func(*workerState) {}, nil); !errors.Is(err, errNoHeadroom) {
		t.Fatalf("background into a busy pool: %v, want errNoHeadroom", err)
	}
	// Queue a foreground job; speculation is still refused.
	ran := make(chan string, 8)
	if err := sched.submit(time.Time{}, 0, func(*workerState) { ran <- "fg" }); err != nil {
		t.Fatal(err)
	}
	if err := sched.submitBackground(func(*workerState) { ran <- "bg" }, nil); !errors.Is(err, errNoHeadroom) {
		t.Fatalf("background behind queued foreground: %v, want errNoHeadroom", err)
	}
	close(block)
	if got := <-ran; got != "fg" {
		t.Fatalf("first completion %q, want fg", got)
	}
}

// TestSchedulerForegroundOvertakesQueuedBackground: a background job
// admitted while idle does not run ahead of foreground work that
// arrives before a worker picks it up.
func TestSchedulerForegroundOvertakesQueuedBackground(t *testing.T) {
	sched := newScheduler(1, 16, 16)
	defer sched.close()
	block := make(chan struct{})
	started := make(chan struct{})
	ran := make(chan string, 8)
	// Occupy the worker with a background job (admitted while idle).
	if err := sched.submitBackground(func(*workerState) { close(started); <-block }, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	// While it runs, one foreground job and — impossible now — another
	// background attempt.
	if err := sched.submit(time.Time{}, 0, func(*workerState) { ran <- "fg" }); err != nil {
		t.Fatal(err)
	}
	if err := sched.submitBackground(func(*workerState) { ran <- "bg" }, nil); !errors.Is(err, errNoHeadroom) {
		t.Fatalf("background while background runs: %v, want errNoHeadroom", err)
	}
	close(block)
	if got := <-ran; got != "fg" {
		t.Fatalf("after background completes, %q ran first, want fg", got)
	}
}

// TestSchedulerShedsOldestBackground: background queue overflow sheds
// the oldest prediction (its cancel hook runs) and close sheds the
// rest.
func TestSchedulerShedsOldestBackground(t *testing.T) {
	sched := newScheduler(2, 4, 2)
	// Fill both workers so queued background stays queued.
	block := make(chan struct{})
	var startedWG sync.WaitGroup
	startedWG.Add(2)
	for i := 0; i < 2; i++ {
		if err := sched.submit(time.Time{}, 0, func(*workerState) { startedWG.Done(); <-block }); err != nil {
			t.Fatal(err)
		}
	}
	startedWG.Wait()
	// Workers are busy with foreground, so background is refused — this
	// test drives the queue path directly through the internals instead.
	canceled := make(chan int, 4)
	sched.mu.Lock()
	for i := 0; i < 3; i++ {
		i := i
		if len(sched.bg) >= sched.bgCap {
			shed := sched.bg[0]
			copy(sched.bg, sched.bg[1:])
			sched.bg = sched.bg[:len(sched.bg)-1]
			shed.cancel()
		}
		sched.bg = append(sched.bg, bgJob{run: func(*workerState) {}, cancel: func() { canceled <- i }})
	}
	sched.mu.Unlock()
	select {
	case got := <-canceled:
		if got != 0 {
			t.Fatalf("shed job %d, want the oldest (0)", got)
		}
	default:
		t.Fatal("overflow shed nothing")
	}
	close(block)
	sched.close()
	// Close sheds the two still-queued jobs (1 and 2).
	if len(canceled) != 2 {
		t.Fatalf("close shed %d jobs, want 2", len(canceled))
	}
}

// TestSessionPrefetchUnderForegroundPressure: with every worker pinned
// by foreground load, session frames still serve and speculation is
// refused (counted) rather than queued ahead of clients. Run with
// -race this is also the concurrency check on the session/scheduler
// interaction.
func TestSessionPrefetchUnderForegroundPressure(t *testing.T) {
	s := testServer(t, Config{Workers: 1, PrefetchDepth: 3})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Foreground pressure: a client hammering distinct uncached frames.
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := sessionRequest()
		req.Sim = "lulesh" // distinct runner: contends for workers, not the lease
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req.Azimuth = float64(i%360) + 0.5
			if _, err := s.Render(req); err != nil {
				t.Errorf("foreground render: %v", err)
				return
			}
		}
	}()
	for i := 1; i <= 12; i++ {
		if _, err := sess.Frame(float64(15*i), 1); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.SessionFrames != 12 {
		t.Errorf("session frames %d, want 12", st.SessionFrames)
	}
	t.Logf("under pressure: scheduled=%d noHeadroom=%d shed=%d hits=%d",
		st.PrefetchScheduled, st.PrefetchNoHeadroom, st.PrefetchShed, st.PrefetchHits)
}

// TestSessionConcurrentFramesRace hammers one session from many
// goroutines: Sessions document themselves safe for concurrent use, and
// under -race this held a regression where prediction scratch
// (sess.cands, written under sess.mu in planPrefetch) was read lock-free
// by submitPrefetch, tearing between a concurrent Frame's replan.
func TestSessionConcurrentFramesRace(t *testing.T) {
	s := testServer(t, Config{Workers: 4, PrefetchDepth: 8})
	sess, err := s.OpenSession(sessionRequest())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				az := float64((g*50 + i) * 15 % 360)
				if _, err := sess.Frame(az, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
