package serve

import (
	"errors"
	"fmt"

	"insitu/internal/advisor"
	"insitu/internal/core"
)

// ErrBadRequest tags client-side request errors so HTTP layers can map
// them to 400 with errors.Is instead of matching text.
var ErrBadRequest = errors.New("serve: bad request")

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// RejectionError is the model-gated "no": even the most degraded quality
// the ladder reaches is predicted to blow the deadline. It carries the
// predictions so the refusal is actionable — the client learns what the
// frame would cost as asked and at the floor quality.
type RejectionError struct {
	// DeadlineSeconds is the requested per-frame budget.
	DeadlineSeconds float64 `json:"deadline_seconds"`
	// PredictedSeconds is the predicted cost at the requested quality.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// FloorPredictedSeconds is the predicted cost at the most degraded
	// quality the ladder reached (the best the service could offer).
	FloorPredictedSeconds float64 `json:"floor_predicted_seconds"`
	// Steps is how many degradation steps were tried before giving up.
	Steps int `json:"degrade_steps"`
}

func (e *RejectionError) Error() string {
	return fmt.Sprintf("serve: infeasible: predicted %.4gs (%.4gs after %d degrade steps) exceeds %.4gs deadline",
		e.PredictedSeconds, e.FloorPredictedSeconds, e.Steps, e.DeadlineSeconds)
}

// quality is the set of knobs the degradation ladder turns: image
// resolution, per-task data size, shard count, and (for the ray tracer)
// pipeline depth. It is the part of a frame's identity that admission
// may change.
type quality struct {
	W, H int
	N    int
	// RTWorkload is 0 for the backend's fitted baseline; 1 is the
	// primary-visibility-only floor the ladder degrades to.
	RTWorkload int
	// Shards is the cluster decomposition width (1 = the local
	// single-process path). Part of quality — and so of the admission
	// memo and frame-cache keys — because a sharded frame renders a
	// different dataset and pays the compositing term: a single-node
	// prediction or cached frame must never answer a cluster request, or
	// vice versa.
	Shards int
}

// admitKey memoizes admission decisions. Camera and simulation are
// absent on purpose — the cost model sees only data size and resolution
// — and the registry generation is included so decisions never outlive
// the models they were gated by.
type admitKey struct {
	arch          string
	backend       core.Renderer
	n, w, h       int
	shards        int
	deadlineNanos int64
	gen           uint64
}

// deadlineNanos quantizes a millisecond deadline for the admission
// memo. A positive deadline must never quantize to 0 — that is the
// "no deadline" key, and an absurdly tight request sharing it would be
// answered with the unbounded admission.
func deadlineNanos(deadlineMillis float64) int64 {
	if deadlineMillis <= 0 {
		return 0
	}
	n := int64(deadlineMillis * 1e6)
	if n < 1 {
		n = 1
	}
	return n
}

// decision is one memoized admission outcome.
type decision struct {
	ok bool
	q  quality
	// predicted is the modeled per-frame seconds at q (after any
	// workload derating); requestedPredicted is the cost as asked.
	predicted          float64
	requestedPredicted float64
	// predictedComposite is the fitted compositing model's share of
	// predicted (the paper's Tc); 0 for unsharded frames.
	predictedComposite float64
	steps              int
	degraded           bool
}

// workload1Derate scales the fitted shaded-workload prediction when the
// ladder drops the ray tracer to primary visibility only. Workload is
// not a model input (the models are fitted at the paper's Workload2),
// so the serving layer derates the prediction by this conservative
// constant instead of pretending the model knows; frames rendered off
// the fitted workload are likewise excluded from calibration feedback.
const workload1Derate = 0.5

// maxDegradeSteps bounds the ladder; every step strictly shrinks a
// floored quantity, so this is a backstop, not the terminator.
const maxDegradeSteps = 32

// decide runs model-gated admission for a normalized request: predict
// the frame's cost, and if it exceeds the deadline, walk the
// degradation ladder — halve the resolution toward the floor, cap the
// geometry via the advisor's max-triangles inversion (surface
// techniques) or halve N (volumes), and finally drop the ray tracing
// workload — until the prediction fits or every knob is at its floor.
func (s *Server) decide(req *FrameRequest, surface bool) (decision, error) {
	deadline := req.DeadlineMillis / 1e3
	requested := quality{W: req.Width, H: req.Height, N: req.N, Shards: maxInt(req.Shards, 1)}
	q := requested
	d := decision{q: q}
	p, comp, err := s.predictQuality(req.Arch, req.Backend, q)
	if err != nil {
		return decision{}, err
	}
	d.requestedPredicted = p
	for step := 0; ; step++ {
		if deadline <= 0 || p <= deadline {
			d.ok = true
			d.q = q
			d.predicted = p
			d.predictedComposite = comp
			d.steps = step
			d.degraded = q != requested
			return d, nil
		}
		if step >= maxDegradeSteps {
			break
		}
		next, changed := s.degradeOnce(req, q, surface, deadline)
		if !changed {
			break
		}
		q = next
		if p, comp, err = s.predictQuality(req.Arch, req.Backend, q); err != nil {
			return decision{}, err
		}
		d.steps = step + 1
	}
	d.ok = false
	d.q = q
	d.predicted = p
	d.predictedComposite = comp
	return d, nil
}

// degradeOnce turns the highest-value knob one notch: resolution first
// (quadratic cost relief, mildest visual change at a distance), then
// geometry, then ray tracing workload as the last resort. Returns the
// new quality and whether anything changed (false = ladder exhausted).
func (s *Server) degradeOnce(req *FrameRequest, q quality, surface bool, deadline float64) (quality, bool) {
	minW := minInt(s.cfg.MinImageSize, req.Width)
	minH := minInt(s.cfg.MinImageSize, req.Height)
	// Sharded frames first trade shard count against resolution by
	// predicted totals: halving shards sheds compositing cost and shrinks
	// the weak-scaled dataset, halving resolution sheds per-pixel cost —
	// the model decides which buys more. Geometry and workload rungs wait
	// until the frame is down to one shard.
	if q.Shards > 1 {
		byRes := q
		byRes.W = maxInt(q.W/2, minW)
		byRes.H = maxInt(q.H/2, minH)
		resPossible := byRes != q
		byShards := q
		byShards.Shards = maxInt(q.Shards/2, 1)
		switch {
		case !resPossible:
			return byShards, true
		default:
			pRes, _, errRes := s.predictQuality(req.Arch, req.Backend, byRes)
			pShards, _, errShards := s.predictQuality(req.Arch, req.Backend, byShards)
			if errRes != nil || errShards != nil || pRes <= pShards {
				return byRes, true
			}
			return byShards, true
		}
	}
	if q.W > minW || q.H > minH {
		q.W = maxInt(q.W/2, minW)
		q.H = maxInt(q.H/2, minH)
		return q, true
	}
	minN := minInt(s.cfg.MinN, req.N)
	if q.N > minN {
		if surface {
			// Invert the model: the largest geometry that fits the
			// remaining budget at this resolution, in one jump.
			budget := deadline
			if q.RTWorkload == 1 {
				budget /= workload1Derate
			}
			mt, err := s.engine.MaxTriangles(advisor.MaxTrianglesRequest{
				Arch: req.Arch, Renderer: string(req.Backend), Tasks: 1,
				ImageSize:             maxInt(q.W, q.H),
				PerImageBudgetSeconds: budget,
				Renderings:            s.cfg.RunnerReuse,
			})
			if err == nil && mt.N >= minN && mt.N < q.N {
				q.N = mt.N
				return q, true
			}
		}
		q.N = maxInt(q.N/2, minN)
		return q, true
	}
	if req.Backend == core.RayTrace && q.RTWorkload == 0 {
		q.RTWorkload = 1
		return q, true
	}
	return q, false
}

// predictQuality asks the advisor engine what a frame at quality q
// costs: per-image render plus compositing plus the build amortized
// over the configured runner reuse, with the serving-side workload
// derate applied. The second return is the compositing model's share
// (the paper's Tc) — charged whenever the frame is sharded, 0 otherwise.
func (s *Server) predictQuality(arch string, backend core.Renderer, q quality) (float64, float64, error) {
	resp, err := s.engine.Predict(advisor.PredictRequest{
		Arch: arch, Renderer: string(backend),
		N: q.N, Tasks: maxInt(q.Shards, 1), Width: q.W, Height: q.H,
		Renderings: s.cfg.RunnerReuse,
	})
	if err != nil {
		return 0, 0, err
	}
	p := resp.PerImageSeconds
	comp := resp.CompositeSeconds
	if q.RTWorkload == 1 {
		p *= workload1Derate
	}
	return p, comp, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
