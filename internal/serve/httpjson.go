package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// WriteJSON encodes v into a buffer before touching the ResponseWriter,
// so an encoding failure (which should be impossible now that serving
// responses sanitize non-finite floats, but defense in depth) surfaces
// as a clean 500 instead of a truncated 200. Shared by the serving
// binaries (advisord, renderd) so the two response paths cannot drift.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		body, _ := json.Marshal(map[string]string{"error": "response not encodable: " + err.Error()})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write(body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}
