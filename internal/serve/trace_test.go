package serve

import (
	"testing"
	"time"

	"insitu/internal/core"
	"insitu/internal/obs"
)

// latestTrace returns the most recently committed trace.
func latestTrace(t *testing.T, s *Server) obs.FrameTrace {
	t.Helper()
	traces := s.Traces(1)
	if len(traces) != 1 {
		t.Fatalf("Traces(1) returned %d traces", len(traces))
	}
	return traces[0]
}

// requireStages asserts the trace recorded exactly the expected stage
// set, each with a non-negative duration inside the frame's wall time.
func requireStages(t *testing.T, tr obs.FrameTrace, want ...obs.Stage) {
	t.Helper()
	wanted := map[obs.Stage]bool{}
	for _, s := range want {
		wanted[s] = true
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if tr.Has(s) != wanted[s] {
			t.Errorf("stage %s: recorded=%v want=%v", s.Name(), tr.Has(s), wanted[s])
		}
		if !tr.Has(s) {
			continue
		}
		if tr.Dur(s) < 0 {
			t.Errorf("stage %s: negative duration %v", s.Name(), tr.Dur(s))
		}
		if tr.StartOffset(s) < 0 {
			t.Errorf("stage %s: starts before the frame began (%v)", s.Name(), tr.StartOffset(s))
		}
	}
}

// TestFrameTraceCoversLifecycle proves a rendered frame's trace covers
// every stage its path took, and that the non-overlapping spans sum to
// approximately the frame's wall time — the trace accounts for where
// the time went, not just that it passed.
func TestFrameTraceCoversLifecycle(t *testing.T) {
	s := testServer(t, Config{})
	if _, err := s.Render(FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 72}); err != nil {
		t.Fatal(err)
	}
	tr := latestTrace(t, s)
	if tr.CacheHit {
		t.Fatal("rendered frame traced as a cache hit")
	}
	requireStages(t, tr,
		obs.StageAdmit, obs.StageQueueWait, obs.StageRunnerLease,
		obs.StageRender, obs.StageEncode, obs.StageCacheStore)
	if tr.Backend != string(core.RayTrace) || tr.Width != 72 || tr.N != 8 {
		t.Errorf("trace identity: %+v", tr)
	}

	wall := tr.Wall()
	if wall <= 0 {
		t.Fatalf("wall time %v", wall)
	}
	// These stages are sequential and non-overlapping on the local path,
	// so their sum must stay within wall time and account for nearly all
	// of it (the remainder is inter-stage bookkeeping: flight maps,
	// closure dispatch, channel handoff).
	var sum time.Duration
	for _, st := range []obs.Stage{
		obs.StageAdmit, obs.StageQueueWait, obs.StageRunnerLease,
		obs.StageRender, obs.StageEncode, obs.StageCacheStore,
	} {
		sum += tr.Dur(st)
	}
	if sum > wall+wall/10 {
		t.Errorf("span sum %v exceeds wall %v", sum, wall)
	}
	if sum < wall/2 {
		t.Errorf("span sum %v covers under half of wall %v — a stage is untraced", sum, wall)
	}

	// Every span must end inside the frame (small slack for clock reads
	// between the last span close and Finish).
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if tr.Has(st) && tr.StartOffset(st)+tr.Dur(st) > wall+time.Millisecond {
			t.Errorf("stage %s ends at %v, past wall %v", st.Name(), tr.StartOffset(st)+tr.Dur(st), wall)
		}
	}

	// The commit fed the stage histograms and the model residuals.
	st := s.Stats()
	if st.FrameStages.Total.Count != 1 {
		t.Errorf("frame_stages total count %d, want 1", st.FrameStages.Total.Count)
	}
	foundRender := false
	for _, d := range st.ModelDrift {
		if d.Backend == string(core.RayTrace) && d.Term == "render" {
			foundRender = true
			if d.Count == 0 {
				t.Error("render drift histogram empty after a render")
			}
		}
	}
	if !foundRender {
		t.Errorf("model_drift lacks the raytracer render series: %+v", st.ModelDrift)
	}
}

// TestFrameTraceCacheHit: a hit commits a minimal trace — admission
// only, flagged as a hit — so hit latency is observable without
// polluting the render-stage histograms.
func TestFrameTraceCacheHit(t *testing.T) {
	s := testServer(t, Config{})
	req := FrameRequest{Backend: core.Volume, Sim: "kripke", N: 8, Width: 64}
	if _, err := s.Render(req); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Render(req); err != nil {
		t.Fatal(err)
	}
	tr := latestTrace(t, s)
	if !tr.CacheHit {
		t.Fatalf("second render's trace not marked as a hit: %+v", tr)
	}
	requireStages(t, tr, obs.StageAdmit)
	if total := s.Stats().FrameStages.Total.Count; total != 2 {
		t.Errorf("frame_stages total count %d, want 2 (miss + hit)", total)
	}
}

// TestFrameTraceClusterStages: a sharded frame's trace swaps the local
// render stage for the fleet stages, with the slowest rank's render and
// the sort-last composite nested inside the dispatch span, and the
// per-rank composite seconds ride back to the client result.
func TestFrameTraceClusterStages(t *testing.T) {
	s, _, _ := clusterServer(t, 2, Config{})
	res, err := s.Render(FrameRequest{Backend: core.Volume, Sim: "kripke", N: 8, Width: 48, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RankCompositeSeconds) != 2 {
		t.Errorf("RankCompositeSeconds = %v, want 2 entries", res.RankCompositeSeconds)
	}
	tr := latestTrace(t, s)
	requireStages(t, tr,
		obs.StageAdmit, obs.StageQueueWait, obs.StageShardDispatch,
		obs.StageRankRender, obs.StageComposite, obs.StageEncode, obs.StageCacheStore)
	if tr.Shards != 2 {
		t.Errorf("trace shards %d, want 2", tr.Shards)
	}
	// The rank stages nest inside the dispatch span.
	dEnd := tr.StartOffset(obs.StageShardDispatch) + tr.Dur(obs.StageShardDispatch)
	for _, st := range []obs.Stage{obs.StageRankRender, obs.StageComposite} {
		if tr.StartOffset(st) < tr.StartOffset(obs.StageShardDispatch) {
			t.Errorf("stage %s starts before dispatch", st.Name())
		}
		if tr.StartOffset(st)+tr.Dur(st) > dEnd+time.Millisecond {
			t.Errorf("stage %s ends past the dispatch span", st.Name())
		}
	}
	// Both the render and composite residual series observed the frame.
	terms := map[string]uint64{}
	for _, d := range s.Stats().ModelDrift {
		if d.Backend == string(core.Volume) {
			terms[d.Term] += d.Count
		}
	}
	if terms["render"] == 0 || terms["composite"] == 0 {
		t.Errorf("cluster frame left drift series empty: %v", terms)
	}
}
