package serve

import (
	"fmt"
	"os"

	"insitu/internal/registry"
	"insitu/internal/study"
)

// OpenRegistry loads a model snapshot into a fresh registry, shared by
// the serving binaries (advisord, renderd). With bootstrap set and the
// file absent, it runs a short measurement study on this machine, fits
// the models, persists the snapshot when a path was given, and serves
// that — the single-command path from nothing to a live model-gated
// service.
func OpenRegistry(path string, bootstrap bool, cacheSize int, logf func(format string, args ...any)) (*registry.Registry, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg := registry.New(cacheSize)
	if path != "" {
		err := reg.LoadFile(path)
		if err == nil {
			return reg, nil
		}
		if !bootstrap || !os.IsNotExist(err) {
			return nil, fmt.Errorf("serve: loading registry: %w", err)
		}
	}
	if !bootstrap {
		return nil, fmt.Errorf("serve: a registry file is required (or pass bootstrap)")
	}
	logf("bootstrapping: running a short measurement study...")
	plan := study.Plan(true)
	rows, err := study.Run(plan, os.Stderr)
	if err != nil {
		return nil, fmt.Errorf("serve: bootstrap study: %w", err)
	}
	snap, err := study.FitSnapshot(rows, "bootstrap")
	if err != nil {
		return nil, fmt.Errorf("serve: bootstrap fit: %w", err)
	}
	if path != "" {
		if err := snap.WriteFile(path); err != nil {
			return nil, err
		}
		logf("bootstrap registry written to %s", path)
		if err := reg.LoadFile(path); err != nil {
			return nil, err
		}
		return reg, nil
	}
	if err := reg.Load(snap); err != nil {
		return nil, err
	}
	return reg, nil
}
