package serve

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/cluster"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/registry"
	"insitu/internal/scenario"
)

// clusterSnapshot extends the serving test snapshot with the compositing
// model (the paper's Tc) and the remaining backends, so sharded
// admissions have a fitted Tc to charge and every backend can serve.
func clusterSnapshot() *registry.Snapshot {
	fit := func(coef ...float64) registry.FitDoc {
		return registry.FitDoc{Coef: coef, R2: 0.99, N: 16, P: len(coef)}
	}
	build := fit(1e-8, 1e-5)
	return &registry.Snapshot{
		Version: registry.SnapshotVersion, Source: "serve-cluster-test", CreatedUnix: 1,
		Mapping: registry.MappingDoc{FillFraction: 0.55, SPRBase: 373},
		Models: []registry.ModelDoc{
			{Arch: "serial", Renderer: string(core.RayTrace), Fit: fit(1e-7, 5e-8, 1e-4), BuildFit: &build},
			{Arch: "serial", Renderer: string(core.Raster), Fit: fit(1e-9, 1e-8, 1e-4)},
			{Arch: "serial", Renderer: string(core.Volume), Fit: fit(1e-8, 1e-9, 1e-4)},
			{Arch: "serial", Renderer: string(scenario.VolumeUnstructured), Fit: fit(1e-9, 1e-9, 1e-4)},
		},
		Compositing: &registry.ModelDoc{
			Arch: "all", Renderer: string(core.Compositing), Fit: fit(1e-9, 1e-9, 1e-4),
		},
	}
}

// clusterServer builds a serving stack fronting an in-process worker
// fleet, sharing one registry between admission and replication — the
// -cluster renderd topology in miniature.
func clusterServer(t testing.TB, workers int, cfg Config) (*Server, *cluster.Cluster, *registry.Registry) {
	return clusterServerSnap(t, workers, cfg, clusterSnapshot())
}

func clusterServerSnap(t testing.TB, workers int, cfg Config, snap *registry.Snapshot) (*Server, *cluster.Cluster, *registry.Registry) {
	t.Helper()
	reg := registry.New(1024)
	if err := reg.Load(snap); err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(reg, workers)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arch = "serial"
	cfg.Cluster = cl
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	s := New(advisor.New(reg), cfg)
	// Server first, fleet after: the server may have frames in flight.
	t.Cleanup(cl.Close)
	t.Cleanup(s.Close)
	return s, cl, reg
}

// TestServedClusterFrameMatchesStandalone is the serve-level acceptance
// claim: a frame sharded across >= 3 workers through the full admission
// -> dispatch -> composite -> encode path is byte-identical to the same
// shard group rendered standalone and encoded directly.
func TestServedClusterFrameMatchesStandalone(t *testing.T) {
	s, _, _ := clusterServer(t, 4, Config{})
	req := FrameRequest{
		Backend: core.RayTrace, Sim: "kripke", N: 8,
		Width: 48, Azimuth: 30, Shards: 3,
	}
	res, err := s.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 3 || res.Degraded {
		t.Fatalf("served %+v, want an undegraded 3-shard frame", res)
	}
	if len(res.RankRenderSeconds) != 3 {
		t.Errorf("per-rank render times: %v", res.RankRenderSeconds)
	}
	if res.RenderSeconds <= 0 || res.CompositeSeconds < 0 {
		t.Errorf("timings: %+v", res)
	}

	want, err := cluster.RenderStandalone(cluster.Job{
		Backend: string(core.RayTrace), Sim: "kripke", Arch: "serial",
		N: 8, Width: 48, Height: 48, Shards: 3, Azimuth: 30, Zoom: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var enc framebuffer.PNGEncoder
	var buf bytes.Buffer
	if err := enc.Encode(&buf, want.Image); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.PNG, buf.Bytes()) {
		t.Fatal("served cluster PNG differs from the standalone shard-group render")
	}
}

// TestShardedAdmissionChargesCompositing: the admission prediction for a
// sharded request includes the fitted Tc — zero for the same frame
// admitted unsharded, positive and folded into the total when sharded.
func TestShardedAdmissionChargesCompositing(t *testing.T) {
	s, _, _ := clusterServer(t, 4, Config{})
	sharded, compSharded, err := s.predictQuality("serial", core.RayTrace, quality{W: 64, H: 64, N: 8, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, compLocal, err := s.predictQuality("serial", core.RayTrace, quality{W: 64, H: 64, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if compLocal != 0 {
		t.Errorf("unsharded prediction charges Tc = %v, want 0", compLocal)
	}
	if compSharded <= 0 {
		t.Errorf("sharded prediction's Tc = %v, want positive", compSharded)
	}
	if sharded <= compSharded {
		t.Errorf("sharded total %v does not fold in Tc %v on top of the render term", sharded, compSharded)
	}

	res, err := s.Render(FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 48, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedCompositeSeconds <= 0 {
		t.Errorf("sharded frame served without a predicted compositing term: %+v", res)
	}
	if res.PredictedSeconds <= 0 {
		t.Errorf("missing total prediction: %+v", res)
	}
}

// TestShardCountIsPartOfFrameIdentity guards the admission-memo and
// frame-cache aliasing fix: the same scene at shards=3 and shards=1 are
// different frames (different datasets, different pixels) and must never
// answer each other from the caches.
func TestShardCountIsPartOfFrameIdentity(t *testing.T) {
	s, _, _ := clusterServer(t, 4, Config{})
	req := FrameRequest{Backend: core.Volume, Sim: "kripke", N: 8, Width: 48}

	sharded := req
	sharded.Shards = 3
	first, err := s.Render(sharded)
	if err != nil {
		t.Fatal(err)
	}
	local, err := s.Render(req)
	if err != nil {
		t.Fatal(err)
	}
	if local.CacheHit {
		t.Fatal("local request served from the sharded frame's cache entry")
	}
	if local.Shards != 1 || first.Shards != 3 {
		t.Fatalf("shard counts: local %d sharded %d", local.Shards, first.Shards)
	}
	if bytes.Equal(first.PNG, local.PNG) {
		t.Fatal("sharded and local frames are byte-identical — decomposition had no effect?")
	}
	// The sharded entry is still cached under its own key.
	again, err := s.Render(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Shards != 3 {
		t.Errorf("repeat sharded request: %+v", again)
	}
	if !bytes.Equal(again.PNG, first.PNG) {
		t.Fatal("cached sharded frame served different bytes")
	}
	if again.CompositeSeconds != first.CompositeSeconds || len(again.RankRenderSeconds) != 3 {
		t.Errorf("cache hit lost compositing measurements: %+v", again)
	}
}

// TestServedFrameReplicatesModels is the replication acceptance: serving
// a cluster frame brings every worker's registry replica to the
// router-side generation, and a publish propagates with the next frame.
func TestServedFrameReplicatesModels(t *testing.T) {
	s, cl, reg := clusterServer(t, 3, Config{})
	waitGens := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			gens := cl.WorkerGenerations()
			ok := true
			for _, g := range gens {
				if g != want {
					ok = false
				}
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker generations %v never reached %d", gens, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	req := FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 48, Shards: 2}
	if _, err := s.Render(req); err != nil {
		t.Fatal(err)
	}
	waitGens(reg.Generation())

	if err := reg.Load(clusterSnapshot()); err != nil {
		t.Fatal(err)
	}
	req.Azimuth = 90 // miss the frame cache so a dispatch happens
	if _, err := s.Render(req); err != nil {
		t.Fatal(err)
	}
	waitGens(reg.Generation())

	st := s.Stats()
	if st.ClusterFrames != 2 || st.ClusterShardsTotal != 4 {
		t.Errorf("cluster counters: %+v", st)
	}
	if st.Cluster == nil || st.Cluster.SnapshotErrors != 0 {
		t.Errorf("fleet stats missing or erroring: %+v", st.Cluster)
	}
}

// TestDegradeTradesShardsForResolution: when the fitted Tc dominates
// (here a 50ms constant), the ladder's model-driven trade sheds shards
// while *keeping* the requested resolution — halving pixels would leave
// the compositing bill untouched, so the model picks the other knob.
func TestDegradeTradesShardsForResolution(t *testing.T) {
	snap := clusterSnapshot()
	snap.Compositing.Fit = registry.FitDoc{Coef: []float64{1e-9, 1e-9, 0.5}, R2: 0.99, N: 16, P: 3}
	s, _, _ := clusterServerSnap(t, 4, Config{}, snap)

	local, _, err := s.predictQuality("serial", core.Volume, quality{W: 512, H: 512, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	sharded, _, err := s.predictQuality("serial", core.Volume, quality{W: 512, H: 512, N: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every sharded quality carries the 0.5s Tc constant regardless of
	// resolution; the deadline must sit clear of all of them but above the
	// full-resolution local render.
	deadline := local * 1.5
	if sharded < 0.5 || deadline > 0.4 {
		t.Fatalf("test premise broken: sharded %v local %v", sharded, local)
	}

	res, err := s.Render(FrameRequest{
		Backend: core.Volume, Sim: "kripke", N: 8, Width: 512,
		Shards: 2, DeadlineMillis: deadline * 1e3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Shards != 1 {
		t.Fatalf("ladder served shards=%d degraded=%v, want the shard rung to reach 1", res.Shards, res.Degraded)
	}
	if res.Width != 512 || res.Height != 512 {
		t.Errorf("ladder halved resolution to %dx%d although shedding shards was the cheaper trade", res.Width, res.Height)
	}

	// Below even the fully-degraded floor the request is rejected, and
	// the rejection carries the floor prediction.
	_, err = s.Render(FrameRequest{
		Backend: core.Volume, Sim: "kripke", N: 8, Width: 512,
		Shards: 2, DeadlineMillis: 1e-6,
	})
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("infeasible sharded request not rejected: %v", err)
	}
	if rej.FloorPredictedSeconds <= 0 {
		t.Errorf("rejection lost the floor prediction: %+v", rej)
	}
}

// TestShardsWithoutClusterIsBadRequest: sharded requests against a
// fleet-less server (and overshard requests against a small fleet) are
// client errors, not panics.
func TestShardsWithoutClusterIsBadRequest(t *testing.T) {
	s := testServer(t, Config{})
	_, err := s.Render(FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, Shards: 2})
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("shards without a fleet: %v, want ErrBadRequest", err)
	}

	sc, _, _ := clusterServer(t, 2, Config{})
	_, err = sc.Render(FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, Shards: 3})
	if !errors.Is(err, ErrBadRequest) {
		t.Errorf("oversharded request: %v, want ErrBadRequest", err)
	}
	if _, err := sc.Render(FrameRequest{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 64, Shards: -1}); !errors.Is(err, ErrBadRequest) {
		t.Error("negative shards accepted")
	}
}

// TestConcurrentShardedServing hammers the full serving path — admission
// memo, flight coalescing, frame cache, cluster dispatch — from many
// goroutines mixing shard counts. Run under -race.
func TestConcurrentShardedServing(t *testing.T) {
	s, _, _ := clusterServer(t, 4, Config{Workers: 4})
	reqs := []FrameRequest{
		{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 40, Shards: 3},
		{Backend: core.Volume, Sim: "kripke", N: 8, Width: 40, Shards: 2},
		{Backend: core.Raster, Sim: "lulesh", N: 8, Width: 40, Shards: 4},
		{Backend: core.RayTrace, Sim: "kripke", N: 8, Width: 40}, // local
	}
	reference := make([][]byte, len(reqs))
	for i, req := range reqs {
		res, err := s.Render(req)
		if err != nil {
			t.Fatal(err)
		}
		reference[i] = res.PNG
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 3; round++ {
		for i, req := range reqs {
			wg.Add(1)
			go func(i int, req FrameRequest) {
				defer wg.Done()
				res, err := s.Render(req)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(res.PNG, reference[i]) {
					errs <- errors.New("concurrent serve diverged from reference for " + string(req.Backend))
				}
			}(i, req)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Stats(); st.ClusterFrames == 0 || st.ClusterShardsTotal < st.ClusterFrames {
		t.Errorf("cluster counters did not advance: %+v", st)
	}
}
