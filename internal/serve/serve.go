// Package serve is the render-serving subsystem: it operationalizes the
// fitted performance models as admission control for a real rendering
// service. Every frame request is costed by the advisor engine before
// any pixel is touched — rejected with the prediction when no quality
// fits the deadline, or degraded (resolution, geometry, ray tracing
// workload) until the prediction fits — then scheduled
// earliest-deadline-first on a bounded worker pool of persistent,
// cached scenario FrameRunners, and served as PNG from an LRU frame
// cache. Measured wall times feed back into the engine's observer, so
// the traffic the scheduler admits continuously refits the very models
// it admits with: the paper's predict → act → measure → refit loop in
// one process.
//
// Interactive clients open persistent Sessions (OpenSession): a session
// is admitted once, soft-pins its warm runner in the RunnerCache,
// memoizes its admission per model generation, and tracks the client's
// camera path. After each frame it extrapolates the next poses
// (Config.Predictor) and speculatively renders the uncached ones into
// the frame cache through a strictly-background scheduler class —
// admitted only into idle headroom, budgeted by the model's predicted
// cost against the measured client think time, shed first under
// pressure — so a predictable camera path sees cache-hit
// time-to-photon while foreground deadline traffic is never delayed.
package serve

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"insitu/internal/advisor"
	"insitu/internal/cluster"
	"insitu/internal/conduit"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/lru"
	"insitu/internal/obs"
	"insitu/internal/render"
	"insitu/internal/scenario"
	"insitu/internal/sim"
	"insitu/internal/vecmath"
)

// FrameRequest is one frame a client wants rendered. The zero values of
// optional fields pick documented defaults; DeadlineMillis <= 0 means
// "no deadline" (admitted at the requested quality).
type FrameRequest struct {
	// Backend names the scenario rendering backend ("raytracer",
	// "rasterizer", "volume", "volume-unstructured").
	Backend core.Renderer `json:"backend"`
	// Sim names the proxy simulation providing the data ("cloverleaf",
	// "kripke", "lulesh"; default "kripke").
	Sim string `json:"sim,omitempty"`
	// N is the per-task data size (an N^3 block).
	N int `json:"n"`
	// Width and Height are the requested resolution (Height defaults to
	// Width).
	Width  int `json:"width"`
	Height int `json:"height,omitempty"`
	// Azimuth (degrees) and Zoom set the orbit camera (defaults 0, 1).
	Azimuth float64 `json:"azimuth,omitempty"`
	Zoom    float64 `json:"zoom,omitempty"`
	// DeadlineMillis is the per-frame budget the prediction is gated
	// against.
	DeadlineMillis float64 `json:"deadline_ms,omitempty"`
	// Arch is the device profile to render on (default the server's).
	Arch string `json:"arch,omitempty"`
	// Shards > 1 partitions the frame across that many cluster worker
	// ranks (weak scaling: each renders an N^3 block) and composites
	// sort-last. Requires a Config.Cluster; 0 and 1 mean the local
	// single-process path.
	Shards int `json:"shards,omitempty"`
}

// FrameResult is one served frame. PNG aliases the cache entry; treat
// it as read-only.
type FrameResult struct {
	PNG []byte
	// Width, Height, N, RTWorkload are the served quality (equal to the
	// request unless Degraded).
	Width, Height, N int
	RTWorkload       int
	// PrefetchHit marks a cache hit on a frame that a session's
	// speculative prefetch rendered before any client asked — the
	// time-to-photon collapse interactive sessions exist for.
	PrefetchHit bool
	// PredictedSeconds is the admission-time prediction for the served
	// quality; RenderSeconds the measured wall time of the frame's
	// actual render (also set on cache hits, to the hit frame's
	// original measurement). For sharded frames RenderSeconds is the
	// slowest rank's local render — the paper's max(T_local).
	PredictedSeconds float64
	RenderSeconds    float64
	// Shards is the served decomposition width (1 = local render). When
	// above 1, CompositeSeconds is the measured sort-last compositing
	// time, PredictedCompositeSeconds the fitted model's Tc charged at
	// admission, and RankRenderSeconds each rank's local render time.
	Shards                    int
	CompositeSeconds          float64
	PredictedCompositeSeconds float64
	RankRenderSeconds         []float64
	CacheHit                  bool
	Degraded                  bool
	DegradeSteps              int
	// RankCompositeSeconds is each rank's measured share of the sort-last
	// exchange (sharded frames only) — the per-rank span behind a slow
	// composite.
	RankCompositeSeconds []float64
	// QueueSeconds is how long the frame waited in the scheduler queue
	// before a worker picked it up (0 for cache hits).
	QueueSeconds float64
	// DeadlineMiss marks a served frame whose measured time exceeded the
	// admitted deadline — surfaced per response so the client that
	// suffered the miss sees it, not just a global counter.
	DeadlineMiss bool
	// Retries is how many failed cluster attempts preceded this frame
	// (rank failures healed by re-placement; 0 on the healthy path).
	Retries int
	// FleetDegraded marks a frame the fleet could not serve as asked:
	// the shard count was clamped to the surviving workers, or the frame
	// fell back to the standalone renderer (cluster failure or open
	// circuit breaker). The pixels are still exact — recovery changes
	// where a frame renders, never what it shows.
	FleetDegraded bool
}

// Config tunes a Server. Zero values pick the documented defaults.
type Config struct {
	// Arch is the default device profile and model architecture.
	Arch string // default "cpu"
	// Workers bounds concurrent renders; QueueCap bounds waiting ones.
	Workers  int // default 2
	QueueCap int // default 64
	// FrameCacheEntries bounds the encoded-frame LRU; AdmitCacheEntries
	// the memoized admission decisions; RunnerCacheEntries the idle
	// prepared runners kept warm.
	FrameCacheEntries  int // default 256
	AdmitCacheEntries  int // default 4096
	RunnerCacheEntries int // default 8
	// RunnerReuse amortizes one-time build costs over this many frames
	// in predictions (runners are cached, so builds really are reused).
	RunnerReuse int // default 100
	// MinImageSize and MinN floor the degradation ladder; MaxImageSize
	// and MaxN bound what a request may ask for at all.
	MinImageSize int // default 64
	MinN         int // default 8
	MaxImageSize int // default 2048
	MaxN         int // default 64
	// ObserveQueue buffers measured samples for the engine's observer;
	// 0 disables calibration feedback.
	ObserveQueue int // default 256
	// PrefetchDepth is how many predicted poses ahead a streaming
	// session speculatively renders (capped at MaxPrefetchDepth);
	// negative disables prefetch, 0 picks the default 3.
	PrefetchDepth int
	// MaxSessions bounds concurrently open streaming sessions;
	// SessionIdleTimeout lets an at-capacity OpenSession reap sessions
	// idle longer than this instead of refusing.
	MaxSessions        int           // default 4096
	SessionIdleTimeout time.Duration // default 5m
	// PrefetchQueueCap bounds queued (not yet running) speculative
	// renders; overflow sheds the oldest prediction first.
	PrefetchQueueCap int // default 64
	// Predictor extrapolates session camera paths (default
	// OrbitPredictor: constant-velocity orbit continuation).
	Predictor PathPredictor
	// Cluster, when non-nil, enables sharded frames: requests with
	// Shards > 1 are partitioned across its worker fleet. The server
	// does not own the cluster; close it after the server.
	Cluster *cluster.Cluster
	// ClusterTimeout bounds one sharded frame end to end (dispatch,
	// render, composite, result transfer — including any failure-recovery
	// retries). A tighter request deadline overrides it per frame.
	ClusterTimeout time.Duration // default 60s
	// BreakerThreshold is how many consecutive cluster failures trip the
	// circuit breaker, flipping sharded traffic to the standalone
	// fallback; BreakerCooldown is how long it stays open before probing
	// the fleet again.
	BreakerThreshold int           // default 3
	BreakerCooldown  time.Duration // default 5s
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// maxAzimuthDegrees and maxZoom bound the camera parameters a request
// may carry: generous for any real orbit, small enough that the
// millidegree key quantization stays far from int64 overflow.
const (
	maxAzimuthDegrees = 1e6
	maxZoom           = 1e6
)

func (c *Config) setDefaults() {
	if c.Arch == "" {
		c.Arch = "cpu"
	}
	if c.Workers < 1 {
		c.Workers = 2
	}
	if c.QueueCap < 1 {
		c.QueueCap = 64
	}
	if c.FrameCacheEntries == 0 {
		c.FrameCacheEntries = 256
	}
	if c.AdmitCacheEntries == 0 {
		c.AdmitCacheEntries = 4096
	}
	if c.RunnerCacheEntries < 1 {
		c.RunnerCacheEntries = 8
	}
	if c.RunnerReuse < 1 {
		c.RunnerReuse = 100
	}
	if c.MinImageSize < 1 {
		c.MinImageSize = 64
	}
	if c.MinN < 4 {
		c.MinN = 8
	}
	if c.MaxImageSize < 1 {
		c.MaxImageSize = 2048
	}
	if c.MaxN < 4 {
		c.MaxN = 64
	}
	if c.ClusterTimeout <= 0 {
		c.ClusterTimeout = 60 * time.Second
	}
	if c.BreakerThreshold < 1 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = 3
	}
	if c.PrefetchDepth > MaxPrefetchDepth {
		c.PrefetchDepth = MaxPrefetchDepth
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 4096
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = 5 * time.Minute
	}
	if c.PrefetchQueueCap < 1 {
		c.PrefetchQueueCap = 64
	}
	if c.Predictor == nil {
		c.Predictor = OrbitPredictor{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// frameKey identifies a served frame: who renders what, from where, at
// which (possibly degraded) quality. Camera angles are quantized to
// millidegrees so float noise cannot fragment the cache (normalize
// bounds them, so the quantization cannot overflow).
type frameKey struct {
	arch      string
	backend   core.Renderer
	sim       string
	azMilli   int64
	zoomMilli int64
	q         quality
}

// runnerKey identifies a prepared runner: the frame key minus the
// camera. Geometry and acceleration structures are camera-independent
// (FrameRunner.SetCamera repoints per frame), so an orbiting client
// reuses one warm runner instead of re-preparing the scene per angle.
type runnerKey struct {
	arch    string
	backend core.Renderer
	sim     string
	q       quality
}

// preparedRunner couples a cached runner with the scene bounds the
// per-request orbit camera is derived from.
type preparedRunner struct {
	scenario.FrameRunner
	bounds vecmath.AABB
}

// cachedFrame is one encoded frame plus the measurements that produced
// it (composite fields zero for local single-process frames).
// speculative marks frames a session's prefetch rendered before any
// client asked; hits on them are the prefetch hit rate.
type cachedFrame struct {
	png                  []byte
	renderSeconds        float64
	compositeSeconds     float64
	rankRenderSeconds    []float64
	rankCompositeSeconds []float64
	speculative          bool
}

// flight coalesces concurrent misses on one frame key: followers wait
// for the leader's render instead of queueing a duplicate. A
// speculative flight's leader is a background prefetch job — a
// foreground miss that joins it still collapses to a wait instead of a
// duplicate render, the mid-render form of a prefetch hit.
type flight struct {
	done        chan struct{}
	speculative bool
	res         FrameResult
	err         error
}

// Server is the render-serving subsystem: admission, scheduling,
// caching, and calibration feedback behind one Render call.
type Server struct {
	engine *advisor.Engine
	cfg    Config

	sims     map[string]bool
	profiles map[string]bool

	admit   *lru.Cache[admitKey, decision]
	frames  *lru.Cache[frameKey, cachedFrame]
	runners *scenario.RunnerCache[runnerKey]
	sched   *scheduler
	brk     *breaker

	flightMu sync.Mutex
	flights  map[frameKey]*flight

	sessMu    sync.Mutex
	sessions  map[uint64]*Session
	nextSess  uint64
	sessClose bool

	obsCh     chan core.Sample
	obsWG     sync.WaitGroup
	obsMu     sync.Mutex
	obsClosed bool

	stats counters

	// Frame-lifecycle observability: every served frame commits a
	// FrameTrace into the tracer's rings and folds into the per-stage
	// latency histograms; every measured render/composite records its
	// model residual. All three are allocation-free on the hot path.
	tracer    *obs.Tracer
	stageLat  *obs.StageLatency
	residuals *obs.Residuals
}

// New builds a server over the engine. When the engine has an observer
// configured (advisor.Engine.SetObserver) and cfg.ObserveQueue is not
// negative, every served frame's measurement feeds the observer.
func New(engine *advisor.Engine, cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		engine:   engine,
		cfg:      cfg,
		sims:     map[string]bool{},
		profiles: map[string]bool{},
		admit:    lru.New[admitKey, decision](cfg.AdmitCacheEntries),
		frames:   lru.New[frameKey, cachedFrame](cfg.FrameCacheEntries),
		runners:  scenario.NewRunnerCache[runnerKey](cfg.RunnerCacheEntries),
		sched:    newScheduler(cfg.Workers, cfg.QueueCap, cfg.PrefetchQueueCap),
		brk:      newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		flights:  map[frameKey]*flight{},
		sessions: map[uint64]*Session{},
		tracer:   obs.NewTracer(4, 256),
		stageLat: &obs.StageLatency{},
	}
	var rkeys []obs.ResidualKey
	for _, name := range scenario.Names() {
		rkeys = append(rkeys,
			obs.ResidualKey{Backend: string(name), Term: "render"},
			obs.ResidualKey{Backend: string(name), Term: "composite"})
	}
	s.residuals = obs.NewResiduals(rkeys)
	for _, name := range sim.Names() {
		s.sims[name] = true
	}
	for _, name := range device.ProfileNames() {
		s.profiles[name] = true
	}
	if cfg.ObserveQueue >= 0 {
		q := cfg.ObserveQueue
		if q == 0 {
			q = 256
		}
		s.obsCh = make(chan core.Sample, q)
		s.obsWG.Add(1)
		go s.observeLoop()
	}
	return s
}

// Engine exposes the advisor engine gating admissions.
func (s *Server) Engine() *advisor.Engine { return s.engine }

// Traces returns the most recent n committed frame traces, oldest
// first — the data behind GET /v1/trace.
func (s *Server) Traces(n int) []obs.FrameTrace { return s.tracer.Last(n) }

// traceIdentity stamps a trace with the frame's served identity.
//
//insitu:noalloc
func traceIdentity(tr *obs.FrameTrace, req *FrameRequest, q quality) {
	tr.Backend = string(req.Backend)
	tr.Width, tr.Height, tr.N = q.W, q.H, q.N
	tr.Shards = q.Shards
}

// commitTrace finishes a trace and folds it into the stage histograms.
//
//insitu:noalloc
func (s *Server) commitTrace(tr *obs.FrameTrace, now time.Time) {
	tr.Finish(now)
	s.tracer.Commit(tr)
	s.stageLat.ObserveTrace(tr)
}

// Close drains active sessions (releasing their runner pins), sheds
// queued speculative work, drains the scheduler, stops the calibration
// feed, and releases cached runners (device worker pools).
func (s *Server) Close() {
	s.closeAllSessions()
	s.sched.close()
	s.obsMu.Lock()
	if s.obsCh != nil && !s.obsClosed {
		s.obsClosed = true
		close(s.obsCh)
	}
	s.obsMu.Unlock()
	s.obsWG.Wait()
	s.runners.Close()
}

// normalize validates the request and fills defaults in place. It
// performs no heap allocation for valid requests — the zero-allocation
// cache-hit path runs straight through it.
func (s *Server) normalize(req *FrameRequest) error {
	if req.Backend == "" {
		return badRequestf("missing backend (registered: %v)", scenario.Names())
	}
	if req.Sim == "" {
		req.Sim = "kripke"
	}
	if !s.sims[req.Sim] {
		return badRequestf("unknown sim %q (have %v)", req.Sim, sim.Names())
	}
	if req.Arch == "" {
		req.Arch = s.cfg.Arch
	}
	if !s.profiles[req.Arch] {
		return badRequestf("unknown arch %q (have %v)", req.Arch, device.ProfileNames())
	}
	if req.N < 4 {
		return badRequestf("n must be >= 4, got %d", req.N)
	}
	if req.N > s.cfg.MaxN {
		return badRequestf("n %d exceeds the serving cap %d", req.N, s.cfg.MaxN)
	}
	if req.Width <= 0 {
		return badRequestf("width must be positive, got %d", req.Width)
	}
	if req.Height <= 0 {
		req.Height = req.Width
	}
	if req.Width > s.cfg.MaxImageSize || req.Height > s.cfg.MaxImageSize {
		return badRequestf("image %dx%d exceeds the serving cap %d", req.Width, req.Height, s.cfg.MaxImageSize)
	}
	if req.Zoom == 0 {
		req.Zoom = 1
	}
	// The bounds also guarantee the cache keys' millidegree quantization
	// cannot overflow int64 (which would alias distinct cameras onto one
	// cached frame).
	if math.IsNaN(req.Azimuth) || math.Abs(req.Azimuth) > maxAzimuthDegrees {
		return badRequestf("azimuth must be finite and within ±%g degrees", float64(maxAzimuthDegrees))
	}
	if math.IsNaN(req.Zoom) || req.Zoom <= 0 || req.Zoom > maxZoom {
		return badRequestf("zoom must be in (0, %g]", float64(maxZoom))
	}
	if math.IsNaN(req.DeadlineMillis) || math.IsInf(req.DeadlineMillis, 0) {
		return badRequestf("deadline_ms must be finite")
	}
	if req.DeadlineMillis < 0 {
		return badRequestf("deadline_ms must be non-negative, got %v", req.DeadlineMillis)
	}
	if req.Shards < 0 {
		return badRequestf("shards must be non-negative, got %d", req.Shards)
	}
	if req.Shards == 0 {
		req.Shards = 1
	}
	if req.Shards > 1 {
		if s.cfg.Cluster == nil {
			return badRequestf("shards=%d needs cluster mode (this server has no worker fleet)", req.Shards)
		}
		if w := s.cfg.Cluster.Workers(); req.Shards > w {
			return badRequestf("shards %d exceeds the fleet's %d workers", req.Shards, w)
		}
	}
	return nil
}

// Render serves one frame: normalize, model-gated admission (memoized),
// frame cache, and — on a miss — a deadline-scheduled render on the
// worker pool. The cache-hit path performs zero heap allocations.
//
//insitu:noalloc
func (s *Server) Render(req FrameRequest) (FrameResult, error) {
	res, _, err := s.serveFrame(req, nil)
	return res, err
}

// admit runs the memoized model-gated admission for a normalized
// request: one LRU probe in steady state, one full model costing per
// (request shape, model generation) otherwise. The returned decision is
// not yet checked for rejection.
//
//insitu:noalloc
func (s *Server) admitRequest(req *FrameRequest) (decision, error) {
	// Admission: memoized per (arch, backend, n, resolution, deadline,
	// model generation) so the steady-state gate is one LRU probe.
	ak := admitKey{
		arch: req.Arch, backend: req.Backend,
		n: req.N, w: req.Width, h: req.Height,
		shards:        req.Shards,
		deadlineNanos: deadlineNanos(req.DeadlineMillis),
		gen:           s.engine.Registry().Generation(),
	}
	d, ok := s.admit.Get(ak)
	if !ok {
		// Admission miss: one full model costing, then memoized.
		//insitu:noalloc-ok admission miss is once per (request shape, model generation)
		spec, _ := core.LookupRenderer(req.Backend)
		var err error
		//insitu:noalloc-ok admission miss is once per (request shape, model generation)
		d, err = s.decide(req, spec.Surface)
		if err != nil {
			return decision{}, err
		}
		//insitu:noalloc-ok admission miss is once per (request shape, model generation)
		s.admit.Add(ak, d)
	}
	return d, nil
}

// serveFrame is the shared frame path behind Render and Session.Frame:
// validate, admit, probe the frame cache, and on a miss render through
// the scheduler. sess, when non-nil, receives prefetch-hit accounting.
// The cache-hit path performs zero heap allocations.
//
//insitu:noalloc
func (s *Server) serveFrame(req FrameRequest, sess *Session) (FrameResult, decision, error) {
	start := time.Now()
	//insitu:noalloc-ok normalize is read-only for accepted requests; only rejections build errors
	if err := s.normalize(&req); err != nil {
		s.stats.badRequests.Add(1)
		return FrameResult{}, decision{}, err
	}
	//insitu:noalloc-ok registry probe is a map read; its error path only runs on rejected requests
	backend, err := scenario.Lookup(req.Backend)
	if err != nil {
		s.stats.badRequests.Add(1)
		//insitu:noalloc-ok bad-request path, never taken by a cache hit
		return FrameResult{}, decision{}, fmt.Errorf("%w: %s", ErrBadRequest, err)
	}
	if backend.NeedsStructured() && !sim.Structured(req.Sim) {
		s.stats.badRequests.Add(1)
		//insitu:noalloc-ok bad-request path, never taken by a cache hit
		return FrameResult{}, decision{}, badRequestf("%s needs a structured block; sim %q publishes an unstructured one", req.Backend, req.Sim)
	}

	// Fleet-health clamp: a request sharded wider than the surviving
	// workers re-plans at the feasible width before admission, so the
	// degrade ladder (and the admission memo, keyed on the clamped
	// count) works against what the fleet can actually place. The static
	// Workers() cap in normalize stays a 400; losing ranks degrades.
	fleetClamped := false
	if req.Shards > 1 && s.cfg.Cluster != nil {
		if alive := s.cfg.Cluster.AliveWorkers(); req.Shards > alive {
			req.Shards = maxInt(alive, 1)
			fleetClamped = true
			s.stats.fleetClamped.Add(1)
		}
	}

	d, err := s.admitRequest(&req)
	if err != nil {
		s.stats.errors.Add(1)
		return FrameResult{}, decision{}, err
	}
	if !d.ok {
		s.stats.rejected.Add(1)
		//insitu:noalloc-ok rejection path, never taken by a cache hit
		return FrameResult{}, d, &RejectionError{
			DeadlineSeconds:       req.DeadlineMillis / 1e3,
			PredictedSeconds:      d.requestedPredicted,
			FloorPredictedSeconds: d.predicted,
			Steps:                 d.steps,
		}
	}
	s.stats.admitted.Add(1)
	if d.degraded {
		s.stats.degraded.Add(1)
	}

	admitDur := time.Since(start)
	fk := frameKeyFor(&req, d.q)
	if cf, ok := s.frames.Get(fk); ok {
		s.stats.cacheHits.Add(1)
		if cf.speculative {
			s.stats.prefetchHits.Add(1)
			if sess != nil {
				sess.prefetchHits.Add(1)
			}
		}
		// The hit path's trace lives on this stack frame and commits by
		// copy — sharing the miss path's trace would make it escape into
		// the scheduler closure and heap-allocate every hit.
		var tr obs.FrameTrace
		tr.Seq = s.tracer.NextSeq()
		traceIdentity(&tr, &req, d.q)
		tr.CacheHit, tr.Degraded = true, d.degraded
		tr.Begin(start)
		tr.Span(obs.StageAdmit, start, admitDur)
		s.commitTrace(&tr, time.Now())
		return FrameResult{
			PNG:   cf.png,
			Width: d.q.W, Height: d.q.H, N: d.q.N, RTWorkload: d.q.RTWorkload,
			PrefetchHit:      cf.speculative,
			PredictedSeconds: d.predicted, RenderSeconds: cf.renderSeconds,
			Shards:                    d.q.Shards,
			CompositeSeconds:          cf.compositeSeconds,
			PredictedCompositeSeconds: d.predictedComposite,
			RankRenderSeconds:         cf.rankRenderSeconds,
			RankCompositeSeconds:      cf.rankCompositeSeconds,
			CacheHit:                  true, Degraded: d.degraded, DegradeSteps: d.steps,
			FleetDegraded: fleetClamped,
		}, d, nil
	}
	s.stats.cacheMisses.Add(1)
	//insitu:noalloc-ok the miss path renders a frame; only the hit path above is allocation-free
	res, err := s.renderMiss(req, d, fk, sess, start, admitDur)
	res.FleetDegraded = res.FleetDegraded || fleetClamped
	return res, d, err
}

// frameKeyFor builds the cache identity of a normalized request at the
// admitted quality. Camera angles are quantized to millidegrees
// (normalize bounds them, so the quantization cannot overflow).
//
//insitu:noalloc
func frameKeyFor(req *FrameRequest, q quality) frameKey {
	return frameKey{
		arch: req.Arch, backend: req.Backend, sim: req.Sim,
		azMilli:   int64(math.Round(req.Azimuth * 1e3)),
		zoomMilli: int64(math.Round(req.Zoom * 1e3)),
		q:         q,
	}
}

// renderMiss coalesces concurrent identical misses and renders through
// the deadline scheduler. A miss that finds a speculative render
// already in flight waits for it instead of queueing a duplicate — the
// prefetch landed mid-render.
func (s *Server) renderMiss(req FrameRequest, d decision, fk frameKey, sess *Session, start time.Time, admitDur time.Duration) (FrameResult, error) {
	s.flightMu.Lock()
	if f, ok := s.flights[fk]; ok {
		s.flightMu.Unlock()
		<-f.done
		if f.err != nil {
			return FrameResult{}, f.err
		}
		res := f.res
		res.CacheHit = true // served from the leader's render
		s.stats.coalesced.Add(1)
		if f.speculative {
			res.PrefetchHit = true
			s.stats.prefetchHits.Add(1)
			if sess != nil {
				sess.prefetchHits.Add(1)
			}
		}
		// The leader's flight committed the render trace; the follower
		// traces as a hit (its wall time is the wait on the flight).
		var tr obs.FrameTrace
		tr.Seq = s.tracer.NextSeq()
		traceIdentity(&tr, &req, d.q)
		tr.CacheHit, tr.Degraded = true, d.degraded
		tr.Begin(start)
		tr.Span(obs.StageAdmit, start, admitDur)
		s.commitTrace(&tr, time.Now())
		return res, nil
	}
	f := &flight{done: make(chan struct{})}
	s.flights[fk] = f
	s.flightMu.Unlock()

	// The miss path's trace is heap-shared with the scheduler closure —
	// a render allocates regardless, so escape here is free.
	tr := &obs.FrameTrace{Seq: s.tracer.NextSeq()}
	traceIdentity(tr, &req, d.q)
	tr.Degraded = d.degraded
	tr.Begin(start)
	tr.Span(obs.StageAdmit, start, admitDur)

	f.res, f.err = s.renderScheduled(req, d, fk, tr)
	if f.err == nil {
		storeStart := time.Now()
		s.frames.Add(fk, cachedFrame{
			png:                  f.res.PNG,
			renderSeconds:        f.res.RenderSeconds,
			compositeSeconds:     f.res.CompositeSeconds,
			rankRenderSeconds:    f.res.RankRenderSeconds,
			rankCompositeSeconds: f.res.RankCompositeSeconds,
		})
		tr.Span(obs.StageCacheStore, storeStart, time.Since(storeStart))
		tr.DeadlineMiss = f.res.DeadlineMiss
		s.commitTrace(tr, time.Now())
	}
	s.flightMu.Lock()
	delete(s.flights, fk)
	s.flightMu.Unlock()
	close(f.done)
	return f.res, f.err
}

// renderScheduled queues the render with its absolute deadline and
// waits for a worker, charging the queue wait to the frame's trace.
func (s *Server) renderScheduled(req FrameRequest, d decision, fk frameKey, tr *obs.FrameTrace) (FrameResult, error) {
	var deadline time.Time
	if req.DeadlineMillis > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMillis * float64(time.Millisecond)))
	}
	type outcome struct {
		res FrameResult
		err error
	}
	ch := make(chan outcome, 1)
	submitT := time.Now()
	err := s.sched.submit(deadline, d.predicted, func(ws *workerState) {
		waited := time.Since(submitT)
		tr.Span(obs.StageQueueWait, submitT, waited)
		res, err := s.renderFrame(ws, &req, d, fk, deadline, tr)
		res.QueueSeconds = waited.Seconds()
		ch <- outcome{res, err}
	})
	if err != nil {
		s.stats.queueFull.Add(1)
		return FrameResult{}, err
	}
	out := <-ch
	if out.err != nil {
		s.stats.errors.Add(1)
	}
	return out.res, out.err
}

// renderFrame runs on a scheduler worker: lease the (cached) runner,
// point its camera at this request's orbit position, render, encode,
// and feed the measurement back to calibration. Sharded frames are
// routed to the cluster fleet instead of the local runner cache;
// deadline (zero = none) bounds a cluster frame's recovery retries.
func (s *Server) renderFrame(ws *workerState, req *FrameRequest, d decision, fk frameKey, deadline time.Time, tr *obs.FrameTrace) (FrameResult, error) {
	if d.q.Shards > 1 {
		return s.renderClusterFrame(ws, req, d, deadline, tr)
	}
	leaseStart := time.Now()
	rk := runnerKey{arch: req.Arch, backend: req.Backend, sim: req.Sim, q: d.q}
	lease, err := s.runners.Acquire(rk, func() (scenario.FrameRunner, func(), error) {
		return s.prepareRunner(req, d.q)
	})
	if err != nil {
		return FrameResult{}, err
	}
	tr.Span(obs.StageRunnerLease, leaseStart, time.Since(leaseStart))
	pr := lease.Runner().(*preparedRunner)
	pr.SetCamera(render.OrbitCamera(pr.bounds, req.Azimuth, 20, req.Zoom))
	in := core.Inputs{Pixels: float64(d.q.W * d.q.H), Tasks: 1}
	renderStart := time.Now()
	elapsed, img, err := pr.RenderFrame(&in)
	if err != nil {
		lease.Release()
		return FrameResult{}, fmt.Errorf("serve: rendering %s/%s: %w", req.Backend, req.Sim, err)
	}
	tr.Span(obs.StageRender, renderStart, elapsed)
	in.AvgAP = in.AP
	build := pr.BuildSeconds()

	encStart := time.Now()
	var buf bytes.Buffer
	encErr := ws.enc.Encode(&buf, img)
	lease.Release()
	if encErr != nil {
		return FrameResult{}, fmt.Errorf("serve: encoding frame: %w", encErr)
	}
	tr.Span(obs.StageEncode, encStart, time.Since(encStart))

	wall := elapsed.Seconds()
	s.stats.framesRendered.Add(1)
	s.stats.renderNanos.Add(uint64(elapsed.Nanoseconds()))
	miss := false
	if dl := req.DeadlineMillis / 1e3; dl > 0 && wall > dl {
		s.stats.deadlineMisses.Add(1)
		miss = true
		tr.DeadlineMiss = true
	}
	s.residuals.Observe(string(req.Backend), "render", d.predicted, wall)
	s.feedObservation(req, d.q, in, build, wall, 0)

	return FrameResult{
		PNG:   buf.Bytes(),
		Width: d.q.W, Height: d.q.H, N: d.q.N, RTWorkload: d.q.RTWorkload,
		PredictedSeconds: d.predicted, RenderSeconds: wall,
		Shards:   1,
		Degraded: d.degraded, DegradeSteps: d.steps,
		DeadlineMiss: miss,
	}, nil
}

// renderClusterFrame runs on a scheduler worker like any other frame,
// but delegates the pixels to the worker fleet: dispatch the admitted
// quality's shard group, wait for the composited image, encode it, and
// feed the reduced measurement — including the measured compositing
// time the Tc model refits on — back to calibration.
//
// Fault handling wraps the dispatch, not the steady state: the circuit
// breaker decides whether the fleet gets the frame at all, the render
// context carries the request deadline so recovery retries are charged
// against it, and a frame the fleet cannot deliver is re-rendered by the
// standalone path at the same admitted quality — byte-identical by
// construction, so the frame cache and clients see degraded placement,
// never degraded pixels.
func (s *Server) renderClusterFrame(ws *workerState, req *FrameRequest, d decision, deadline time.Time, tr *obs.FrameTrace) (FrameResult, error) {
	if !s.brk.allow() {
		s.stats.breakerShortCircuits.Add(1)
		return s.renderClusterFallback(ws, req, d, tr)
	}
	limit := time.Now().Add(s.cfg.ClusterTimeout)
	if !deadline.IsZero() && deadline.Before(limit) {
		limit = deadline
	}
	ctx, cancel := context.WithDeadline(context.Background(), limit)
	dispatchStart := time.Now()
	res, err := s.cfg.Cluster.Render(ctx, cluster.Job{
		Backend: string(req.Backend), Sim: req.Sim, Arch: req.Arch,
		N: d.q.N, Width: d.q.W, Height: d.q.H,
		Shards: d.q.Shards, RTWorkload: d.q.RTWorkload,
		Azimuth: req.Azimuth, Zoom: req.Zoom,
	})
	cancel()
	if err != nil {
		s.stats.clusterFailures.Add(1)
		if s.brk.failure() {
			s.stats.breakerOpens.Add(1)
			s.cfg.Logf("serve: circuit breaker opened after cluster failure: %v", err)
		}
		s.cfg.Logf("serve: cluster render %s/%s x%d failed, falling back to standalone: %v",
			req.Backend, req.Sim, d.q.Shards, err)
		return s.renderClusterFallback(ws, req, d, tr)
	}
	s.brk.success()
	if res.Retries > 0 {
		s.stats.clusterRetries.Add(uint64(res.Retries))
	}
	// The dispatch span is the fleet round trip; the slowest rank's
	// render and the sort-last exchange nest inside it, placed from the
	// remote measurements (the fleet's clocks are this process's clocks —
	// the workers are in-process ranks).
	tr.Span(obs.StageShardDispatch, dispatchStart, time.Since(dispatchStart))
	dispatchOff := tr.StartOffset(obs.StageShardDispatch)
	tr.SpanNanos(obs.StageRankRender, int64(dispatchOff), int64(res.RenderSeconds*1e9))
	tr.SpanNanos(obs.StageComposite, int64(dispatchOff)+int64(res.RenderSeconds*1e9), int64(res.CompositeSeconds*1e9))

	encStart := time.Now()
	var buf bytes.Buffer
	if err := ws.enc.Encode(&buf, res.Image); err != nil {
		return FrameResult{}, fmt.Errorf("serve: encoding cluster frame: %w", err)
	}
	tr.Span(obs.StageEncode, encStart, time.Since(encStart))

	wall := res.RenderSeconds
	s.stats.framesRendered.Add(1)
	s.stats.renderNanos.Add(uint64(wall * 1e9))
	s.stats.clusterFrames.Add(1)
	s.stats.clusterShards.Add(uint64(d.q.Shards))
	s.stats.clusterCompositeNanos.Add(uint64(res.CompositeSeconds * 1e9))
	s.stats.clusterPredictedCompositeNanos.Add(uint64(d.predictedComposite * 1e9))
	miss := false
	if dl := req.DeadlineMillis / 1e3; dl > 0 && wall+res.CompositeSeconds > dl {
		s.stats.deadlineMisses.Add(1)
		miss = true
		tr.DeadlineMiss = true
	}
	s.residuals.Observe(string(req.Backend), "render", d.predicted, wall)
	s.residuals.Observe(string(req.Backend), "composite", d.predictedComposite, res.CompositeSeconds)
	s.feedObservation(req, d.q, res.In, res.BuildSeconds, wall, res.CompositeSeconds)

	return FrameResult{
		PNG:   buf.Bytes(),
		Width: d.q.W, Height: d.q.H, N: d.q.N, RTWorkload: d.q.RTWorkload,
		PredictedSeconds: d.predicted, RenderSeconds: wall,
		Shards:                    d.q.Shards,
		CompositeSeconds:          res.CompositeSeconds,
		PredictedCompositeSeconds: d.predictedComposite,
		RankRenderSeconds:         res.RankRenderSeconds,
		RankCompositeSeconds:      res.RankCompositeSeconds,
		Degraded:                  d.degraded, DegradeSteps: d.steps,
		DeadlineMiss: miss,
		Retries:      res.Retries,
	}, nil
}

// renderClusterFallback serves a sharded frame the fleet could not: the
// standalone renderer runs the identical job — same decomposition, same
// collectives, same composite — in one process, so the frame is
// byte-identical to what the healthy cluster would have produced and the
// cache key does not churn. This is the graceful-degradation floor: a
// burning fleet costs latency, never availability or pixels.
func (s *Server) renderClusterFallback(ws *workerState, req *FrameRequest, d decision, tr *obs.FrameTrace) (FrameResult, error) {
	renderStart := time.Now()
	res, err := cluster.RenderStandalone(cluster.Job{
		Backend: string(req.Backend), Sim: req.Sim, Arch: req.Arch,
		N: d.q.N, Width: d.q.W, Height: d.q.H,
		Shards: d.q.Shards, RTWorkload: d.q.RTWorkload,
		Azimuth: req.Azimuth, Zoom: req.Zoom,
	})
	if err != nil {
		return FrameResult{}, fmt.Errorf("serve: standalone fallback %s/%s x%d: %w", req.Backend, req.Sim, d.q.Shards, err)
	}
	s.stats.clusterFallbacks.Add(1)
	tr.Span(obs.StageRender, renderStart, time.Since(renderStart))
	renderOff := tr.StartOffset(obs.StageRender)
	tr.SpanNanos(obs.StageComposite, int64(renderOff)+int64(res.RenderSeconds*1e9), int64(res.CompositeSeconds*1e9))

	encStart := time.Now()
	var buf bytes.Buffer
	if err := ws.enc.Encode(&buf, res.Image); err != nil {
		return FrameResult{}, fmt.Errorf("serve: encoding fallback frame: %w", err)
	}
	tr.Span(obs.StageEncode, encStart, time.Since(encStart))

	wall := res.RenderSeconds
	s.stats.framesRendered.Add(1)
	s.stats.renderNanos.Add(uint64(wall * 1e9))
	miss := false
	if dl := req.DeadlineMillis / 1e3; dl > 0 && wall+res.CompositeSeconds > dl {
		s.stats.deadlineMisses.Add(1)
		miss = true
		tr.DeadlineMiss = true
	}
	s.residuals.Observe(string(req.Backend), "render", d.predicted, wall)
	s.residuals.Observe(string(req.Backend), "composite", d.predictedComposite, res.CompositeSeconds)
	s.feedObservation(req, d.q, res.In, res.BuildSeconds, wall, res.CompositeSeconds)

	return FrameResult{
		PNG:   buf.Bytes(),
		Width: d.q.W, Height: d.q.H, N: d.q.N, RTWorkload: d.q.RTWorkload,
		PredictedSeconds: d.predicted, RenderSeconds: wall,
		Shards:                    d.q.Shards,
		CompositeSeconds:          res.CompositeSeconds,
		PredictedCompositeSeconds: d.predictedComposite,
		RankRenderSeconds:         res.RankRenderSeconds,
		RankCompositeSeconds:      res.RankCompositeSeconds,
		Degraded:                  d.degraded, DegradeSteps: d.steps,
		DeadlineMiss:  miss,
		FleetDegraded: true,
	}, nil
}

// prepareRunner builds the scene — step the proxy one cycle, publish,
// parse, orbit the camera — and hands it to the backend. The returned
// close hook releases the scene's device worker pool when the runner
// cache evicts the runner.
func (s *Server) prepareRunner(req *FrameRequest, q quality) (scenario.FrameRunner, func(), error) {
	backend, err := scenario.Lookup(req.Backend)
	if err != nil {
		return nil, nil, err
	}
	dev, err := device.Profile(req.Arch)
	if err != nil {
		return nil, nil, err
	}
	sm, err := sim.New(req.Sim, q.N, 1, 0)
	if err != nil {
		dev.Close()
		return nil, nil, err
	}
	sm.Step()
	node := conduit.NewNode()
	sm.Publish(node)
	pm, err := scenario.ParseMesh(node)
	if err != nil {
		dev.Close()
		return nil, nil, err
	}
	vals, err := pm.FieldValues(sm.PrimaryField())
	if err != nil {
		dev.Close()
		return nil, nil, err
	}
	bounds := pm.LocalBounds()
	cam := render.OrbitCamera(bounds, req.Azimuth, 20, req.Zoom)
	sc := scenario.NewScene(dev, pm, sm.PrimaryField(), vals, cam, q.W, q.H)
	sc.RTWorkload = q.RTWorkload
	runner, err := backend.Prepare(sc)
	if err != nil {
		dev.Close()
		return nil, nil, fmt.Errorf("serve: preparing %s for sim %q: %w", req.Backend, req.Sim, err)
	}
	return &preparedRunner{FrameRunner: runner, bounds: bounds}, dev.Close, nil
}

// feedObservation queues the served frame's measurement for the
// engine's observer. Frames rendered off the fitted ray tracing
// workload are excluded: workload is not a model input, and feeding
// derated frames would bias the refit. Sharded frames carry their
// measured compositing time and Tasks = shard count, so the calibrator
// refits the Tc model from serving traffic tagged by rank count.
func (s *Server) feedObservation(req *FrameRequest, q quality, in core.Inputs, build, wall, compositeSec float64) {
	if s.obsCh == nil || wall <= 0 {
		return
	}
	if req.Backend == core.RayTrace && q.RTWorkload != 0 {
		s.stats.observationsSkipped.Add(1)
		return
	}
	sample := core.Sample{
		Arch: req.Arch, Renderer: req.Backend,
		In: in, BuildTime: build, RenderTime: wall,
		CompositeTime: compositeSec,
	}
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if s.obsClosed {
		return
	}
	select {
	case s.obsCh <- sample:
		s.stats.observationsQueued.Add(1)
	default:
		s.stats.observationsDropped.Add(1)
	}
}

// observeLoop drains measured samples into the engine's observer in
// small batches, off the render path.
func (s *Server) observeLoop() {
	defer s.obsWG.Done()
	for sample := range s.obsCh {
		batch := append(make([]core.Sample, 0, 8), sample)
	drain:
		for len(batch) < cap(batch) {
			select {
			case more, ok := <-s.obsCh:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		resp, err := s.engine.Observe(batch)
		if err != nil {
			s.cfg.Logf("serve: observe: %d samples rejected: %v", len(batch), err)
			continue
		}
		if resp.Published {
			s.stats.refits.Add(1)
			s.cfg.Logf("serve: calibration published generation %d (corpus %d)", resp.Generation, resp.CorpusSize)
		}
	}
}
