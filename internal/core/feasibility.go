package core

import (
	"fmt"
	"math"
)

// BudgetPoint is one point on the images-per-budget curve (Figure 14).
type BudgetPoint struct {
	ImageSize int // square image side in pixels
	Images    float64
	PerImage  float64 // predicted seconds per image
}

// ImagesInBudget answers the paper's headline feasibility question for one
// model: how many images of each size fit in a fixed time budget? The
// acceleration-structure build is paid once and amortized, matching the
// image-database use case; compositing is included when Tasks > 1.
func (set *ModelSet) ImagesInBudget(arch string, r Renderer, mp Mapping, n, tasks int, budgetSeconds float64, sizes []int) ([]BudgetPoint, error) {
	m, ok := set.Models[Key(arch, r)]
	if !ok {
		return nil, fmt.Errorf("core: no model for %s", Key(arch, r))
	}
	out := make([]BudgetPoint, 0, len(sizes))
	for _, size := range sizes {
		cfg := Config{N: n, Tasks: tasks, Width: size, Height: size, Renderer: r}
		in := mp.Map(cfg)
		per := m.Predict(in)
		if tasks > 1 && set.Compositing != nil {
			per += set.Compositing.Predict(in)
		}
		budget := budgetSeconds - m.PredictBuild(in)
		images := 0.0
		if per > 0 && budget > 0 {
			images = budget / per
		}
		out = append(out, BudgetPoint{ImageSize: size, Images: images, PerImage: per})
	}
	return out, nil
}

// RatioCell is one cell of the ray-tracing vs rasterization map
// (Figure 15): the ratio of predicted rasterization throughput to
// ray-tracing throughput for a configuration. Values above 1 mean
// rasterization renders more images in the same time; below 1 means ray
// tracing wins.
type RatioCell struct {
	ImageSize int
	N         int
	Ratio     float64
	// Finite reports whether Ratio is a real number. Degenerate fits can
	// predict non-positive or NaN times; rather than emit ±Inf/NaN —
	// which encoding/json rejects, turning a whole response into an
	// opaque failure — the ratio is zeroed and flagged.
	Finite bool
}

// CompareRTvsRaster evaluates the ratio grid over image sizes and data
// sizes for a fixed task count and number of renderings (the BVH build is
// amortized over the renderings, as in the paper's 100-image scenario).
func (set *ModelSet) CompareRTvsRaster(arch string, mp Mapping, tasks, renderings int, imageSizes, dataSizes []int) ([]RatioCell, error) {
	rt, ok := set.Models[Key(arch, RayTrace)]
	if !ok {
		return nil, fmt.Errorf("core: no ray tracing model for %s", arch)
	}
	rast, ok := set.Models[Key(arch, Raster)]
	if !ok {
		return nil, fmt.Errorf("core: no rasterization model for %s", arch)
	}
	if renderings < 1 {
		renderings = 1
	}
	var out []RatioCell
	for _, n := range dataSizes {
		for _, size := range imageSizes {
			rtIn := mp.Map(Config{N: n, Tasks: tasks, Width: size, Height: size, Renderer: RayTrace})
			raIn := mp.Map(Config{N: n, Tasks: tasks, Width: size, Height: size, Renderer: Raster})
			rtTime := rt.Predict(rtIn) + rt.PredictBuild(rtIn)/float64(renderings)
			raTime := rast.Predict(raIn)
			cell := RatioCell{ImageSize: size, N: n}
			if raTime > 0 {
				cell.Ratio = rtTime / raTime
			}
			cell.Finite = !math.IsNaN(cell.Ratio) && !math.IsInf(cell.Ratio, 0) && raTime > 0
			if !cell.Finite {
				cell.Ratio = 0
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// MaxDataSizeInBudget inverts the volume model: the largest per-task N^3
// whose predicted per-image time still fits the per-image budget — an
// example of the "immediately rule out alternatives" use the paper
// motivates. Like ImagesInBudget, multi-task configurations charge the
// parallel compositing cost on every image, so the answer is consistent
// with the images-per-budget curve at the same configuration.
func (set *ModelSet) MaxDataSizeInBudget(arch string, mp Mapping, tasks, imageSize int, perImageBudget float64) (int, error) {
	m, ok := set.Models[Key(arch, Volume)]
	if !ok {
		return 0, fmt.Errorf("core: no volume model for %s", arch)
	}
	best := 0
	for n := 8; n <= 4096; n *= 2 {
		in := mp.Map(Config{N: n, Tasks: tasks, Width: imageSize, Height: imageSize, Renderer: Volume})
		per := m.Predict(in)
		if tasks > 1 && set.Compositing != nil {
			per += set.Compositing.Predict(in)
		}
		if per <= perImageBudget {
			best = n
		} else {
			break
		}
	}
	return best, nil
}
