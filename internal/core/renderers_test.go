package core

import (
	"strings"
	"testing"
)

func TestRendererRegistryErrorPaths(t *testing.T) {
	// The paper's four model forms are registered at init.
	for _, r := range []Renderer{RayTrace, Raster, Volume, Compositing} {
		if _, ok := LookupRenderer(r); !ok {
			t.Errorf("builtin renderer %q not registered", r)
		}
	}
	// Duplicate registration is ambiguous and must fail.
	err := RegisterRenderer(RendererSpec{Name: RayTrace, Terms: RTTraceTerms})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: %v", err)
	}
	if err := RegisterRenderer(RendererSpec{Terms: RTTraceTerms}); err == nil {
		t.Error("nameless spec accepted")
	}
	if err := RegisterRenderer(RendererSpec{Name: "terms-less"}); err == nil {
		t.Error("spec without terms accepted")
	}
	// Unknown renderers fail term dispatch with the alternatives named.
	if _, err := RenderTerms("teapot", Inputs{}); err == nil ||
		!strings.Contains(err.Error(), "teapot") || !strings.Contains(err.Error(), string(RayTrace)) {
		t.Errorf("unknown renderer terms error: %v", err)
	}
}

func TestModeledRenderersExcludesCompositing(t *testing.T) {
	for _, r := range ModeledRenderers() {
		if r == Compositing {
			t.Error("compositing listed as a modeled renderer")
		}
	}
	found := false
	for _, r := range Renderers() {
		if r == Compositing {
			found = true
		}
	}
	if !found {
		t.Error("compositing missing from the full registry listing")
	}
}

// TestMapUsesSpecObjects: a spec's Objects override feeds Map's O input,
// and non-surface specs take the volume mapping branch.
func TestMapUsesSpecObjects(t *testing.T) {
	spec := RendererSpec{
		Name:    "map-test-volume",
		Terms:   VRTerms,
		Objects: func(n float64) float64 { return 6 * n * n * n },
	}
	if err := RegisterRenderer(spec); err != nil {
		t.Fatal(err)
	}
	mp := DefaultMapping()
	in := mp.Map(Config{N: 10, Tasks: 1, Width: 100, Height: 100, Renderer: "map-test-volume"})
	if in.O != 6000 {
		t.Errorf("O = %v, want 6000 from the spec's Objects", in.O)
	}
	if in.SPR <= 0 {
		t.Errorf("non-surface spec should map SPR, got %v", in.SPR)
	}
	if in.VO != 0 || in.PPT != 0 {
		t.Errorf("non-surface spec mapped surface inputs: VO=%v PPT=%v", in.VO, in.PPT)
	}
	// Surface mapping unchanged for the builtins.
	sIn := mp.Map(Config{N: 10, Tasks: 1, Width: 100, Height: 100, Renderer: RayTrace})
	if sIn.O != 1200 {
		t.Errorf("surface O = %v, want 1200", sIn.O)
	}
	if sIn.VO <= 0 || sIn.PPT <= 0 {
		t.Errorf("surface inputs missing: VO=%v PPT=%v", sIn.VO, sIn.PPT)
	}
}
