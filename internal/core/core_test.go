package core

import (
	"math"
	"math/rand"
	"testing"
)

// syntheticSamples generates study-like samples from a known generating
// process so fitting can be validated exactly.
func syntheticSamples(arch string, n int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	for i := 0; i < n; i++ {
		tasks := []int{1, 2, 4}[rng.Intn(3)]
		pix := float64(10000 + rng.Intn(90000))
		ap := 0.5 * pix / math.Cbrt(float64(tasks))
		objects := float64(2000 + rng.Intn(50000))
		noise := func() float64 { return 1 + 0.01*rng.NormFloat64() }

		// Ray tracing: planted coefficients.
		rtIn := Inputs{O: objects, AP: ap, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
		rt := Sample{
			Arch: arch, Renderer: RayTrace, In: rtIn,
			BuildTime:  (3e-8*objects + 1e-4) * noise(),
			RenderTime: (2e-9*ap*math.Log2(objects) + 4e-8*ap + 2e-4) * noise(),
		}
		if tasks > 1 {
			rt.CompositeTime = (1.5e-8*rtIn.AvgAP + 5e-9*pix + 1e-4) * noise()
		}
		out = append(out, rt)

		// Rasterization.
		vo := math.Min(ap, objects)
		ppt := 4 * ap / vo
		raIn := Inputs{O: objects, AP: ap, VO: vo, PPT: ppt, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
		ra := Sample{
			Arch: arch, Renderer: Raster, In: raIn,
			RenderTime: (1e-8*objects + 2e-9*vo*ppt + 1e-4) * noise(),
		}
		if tasks > 1 {
			ra.CompositeTime = (1.5e-8*raIn.AvgAP + 5e-9*pix + 1e-4) * noise()
		}
		out = append(out, ra)

		// Volume.
		cs := float64(32 + rng.Intn(96))
		spr := 100 / math.Cbrt(float64(tasks))
		vIn := Inputs{O: cs * cs * cs, AP: ap, SPR: spr, CS: cs, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
		v := Sample{
			Arch: arch, Renderer: Volume, In: vIn,
			RenderTime: (5e-10*ap*cs + 4e-9*ap*spr + 2e-4) * noise(),
		}
		if tasks > 1 {
			v.CompositeTime = (1.5e-8*vIn.AvgAP + 5e-9*pix + 1e-4) * noise()
		}
		out = append(out, v)
	}
	return out
}

func TestFitModelsRecoversGeneratingProcess(t *testing.T) {
	samples := syntheticSamples("cpu", 80, 11)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Models) != 3 {
		t.Fatalf("models = %d", len(set.Models))
	}
	for k, m := range set.Models {
		if m.Fit.R2 < 0.98 {
			t.Errorf("%s: R2 = %v", k, m.Fit.R2)
		}
	}
	rt := set.Models[Key("cpu", RayTrace)]
	// Trace coefficients near the planted values.
	if math.Abs(rt.Fit.Coef[0]-2e-9) > 1e-9 {
		t.Errorf("rt c2 = %v", rt.Fit.Coef[0])
	}
	if rt.BuildFit == nil {
		t.Fatal("ray tracing should carry a build model")
	}
	if math.Abs(rt.BuildFit.Coef[0]-3e-8) > 1e-8 {
		t.Errorf("rt build c0 = %v", rt.BuildFit.Coef[0])
	}
	// Coefficients table layout: 5 for RT, 3 for others.
	if len(rt.Coefficients()) != 5 {
		t.Errorf("rt coefficients = %d", len(rt.Coefficients()))
	}
	if len(set.Models[Key("cpu", Raster)].Coefficients()) != 3 {
		t.Error("raster coefficients != 3")
	}
	if set.Compositing == nil {
		t.Fatal("compositing model missing")
	}
	if set.Compositing.Fit.R2 < 0.95 {
		t.Errorf("compositing R2 = %v", set.Compositing.Fit.R2)
	}
}

func TestPredictMatchesGeneratingProcess(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 13)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{O: 20000, AP: 30000, Pixels: 70000, AvgAP: 27000, Tasks: 2,
		VO: 20000, PPT: 6, SPR: 80, CS: 64}
	rt := set.Models[Key("cpu", RayTrace)]
	want := 2e-9*in.AP*math.Log2(in.O) + 4e-8*in.AP + 2e-4
	got := rt.Predict(in)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("rt predict = %v want ~%v", got, want)
	}
	buildWant := 3e-8*in.O + 1e-4
	if b := rt.PredictBuild(in); math.Abs(b-buildWant)/buildWant > 0.1 {
		t.Errorf("build predict = %v want ~%v", b, buildWant)
	}
	// Total model adds compositing for multi-task runs.
	tot, err := set.PredictTotal("cpu", RayTrace, in)
	if err != nil {
		t.Fatal(err)
	}
	if tot <= got {
		t.Errorf("total %v should exceed local %v", tot, got)
	}
	in1 := in
	in1.Tasks = 1
	tot1, err := set.PredictTotal("cpu", RayTrace, in1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tot1-rt.Predict(in1)) > 1e-12 {
		t.Error("single-task total should equal local prediction")
	}
}

func TestCrossValidationAccuracyOnSyntheticCorpus(t *testing.T) {
	samples := syntheticSamples("cpu", 80, 17)
	for _, r := range []Renderer{RayTrace, Raster, Volume} {
		cv, err := CrossValidate(samples, "cpu", r, 3)
		if err != nil {
			t.Fatal(err)
		}
		if cv.WithinPct(25) < 0.95 {
			t.Errorf("%s: within 25%% only %v", r, cv.WithinPct(25))
		}
	}
	cv, err := CrossValidateCompositing(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cv.WithinPct(50) < 0.9 {
		t.Errorf("compositing within 50%% only %v", cv.WithinPct(50))
	}
}

func TestCrossValidateMissingGroup(t *testing.T) {
	if _, err := CrossValidate(nil, "cpu", RayTrace, 3); err == nil {
		t.Error("expected no-samples error")
	}
}

func TestFitModelsTooFewSamples(t *testing.T) {
	samples := syntheticSamples("cpu", 1, 3)
	if _, err := FitModels(samples); err == nil {
		t.Error("expected too-few-samples error")
	}
}

func TestMappingFormulas(t *testing.T) {
	mp := DefaultMapping()
	cfg := Config{N: 200, Tasks: 8, Width: 1024, Height: 1024, Renderer: RayTrace}
	in := mp.Map(cfg)
	if in.O != 12*200*200 {
		t.Errorf("O = %v", in.O)
	}
	wantAP := 0.55 * 1024 * 1024 / 2 // tasks^(1/3) = 2
	if math.Abs(in.AP-wantAP) > 1 {
		t.Errorf("AP = %v want %v", in.AP, wantAP)
	}
	if in.VO != math.Min(in.AP, in.O) {
		t.Errorf("VO = %v", in.VO)
	}
	if math.Abs(in.VO*in.PPT-4*in.AP) > 1e-6 {
		t.Errorf("VO*PPT = %v want %v", in.VO*in.PPT, 4*in.AP)
	}
	vol := mp.Map(Config{N: 200, Tasks: 8, Width: 1024, Height: 1024, Renderer: Volume})
	if vol.O != 200*200*200 {
		t.Errorf("volume O = %v", vol.O)
	}
	if math.Abs(vol.SPR-373.0/2) > 1e-9 {
		t.Errorf("SPR = %v", vol.SPR)
	}
	if vol.CS != 200 {
		t.Errorf("CS = %v", vol.CS)
	}
}

func TestCalibrateMappingRecoversConstants(t *testing.T) {
	// Samples constructed with fill 0.5 and SPR base 100.
	samples := syntheticSamples("cpu", 50, 23)
	mp := CalibrateMapping(samples)
	if math.Abs(mp.FillFraction-0.5) > 0.02 {
		t.Errorf("fill = %v want ~0.5", mp.FillFraction)
	}
	if math.Abs(mp.SPRBase-100) > 2 {
		t.Errorf("spr base = %v want ~100", mp.SPRBase)
	}
}

func TestImagesInBudgetShrinksWithImageSize(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 29)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	mp := CalibrateMapping(samples)
	sizes := []int{256, 512, 1024, 2048}
	for _, r := range []Renderer{RayTrace, Raster, Volume} {
		pts, err := set.ImagesInBudget("cpu", r, mp, 128, 4, 60, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(sizes) {
			t.Fatalf("points = %d", len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Images > pts[i-1].Images {
				t.Errorf("%s: more images at larger size: %v then %v", r, pts[i-1], pts[i])
			}
		}
		if pts[0].Images <= 0 {
			t.Errorf("%s: no images fit the budget", r)
		}
	}
}

func TestCompareRTvsRasterCrossover(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 31)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	mp := CalibrateMapping(samples)
	cells, err := set.CompareRTvsRaster("cpu", mp, 4, 100,
		[]int{256, 1024, 2048}, []int{64, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, cell := range cells {
		if math.IsNaN(cell.Ratio) || cell.Ratio <= 0 {
			t.Errorf("bad ratio %v at %+v", cell.Ratio, cell)
		}
	}
}

func TestMaxDataSizeInBudget(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 37)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	mp := CalibrateMapping(samples)
	small, err := set.MaxDataSizeInBudget("cpu", mp, 4, 1024, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	big, err := set.MaxDataSizeInBudget("cpu", mp, 4, 1024, 10)
	if err != nil {
		t.Fatal(err)
	}
	if big < small {
		t.Errorf("bigger budget allows smaller data: %d vs %d", big, small)
	}
}

func TestRenderTermsUnknown(t *testing.T) {
	if _, err := RenderTerms("mystery", Inputs{}); err == nil {
		t.Error("expected unknown-renderer error")
	}
}
