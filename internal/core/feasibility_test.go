package core

import (
	"math"
	"testing"

	"insitu/internal/stats"
)

// TestImagesInBudgetEdgeCases pins the boundary behavior the advisor
// service depends on: hopeless budgets answer zero images (not negative,
// not NaN), a missing compositing model degrades to local-only cost, and
// an empty size list is a valid question with an empty answer.
func TestImagesInBudgetEdgeCases(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 41)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	mp := CalibrateMapping(samples)

	t.Run("zero budget", func(t *testing.T) {
		pts, err := set.ImagesInBudget("cpu", Volume, mp, 64, 4, 0, []int{256, 1024})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Images != 0 {
				t.Errorf("size %d: %v images from a zero budget", p.ImageSize, p.Images)
			}
			if p.PerImage <= 0 {
				t.Errorf("size %d: per-image %v should still be predicted", p.ImageSize, p.PerImage)
			}
		}
	})

	t.Run("negative budget", func(t *testing.T) {
		pts, err := set.ImagesInBudget("cpu", RayTrace, mp, 64, 4, -30, []int{512})
		if err != nil {
			t.Fatal(err)
		}
		if pts[0].Images != 0 {
			t.Errorf("images = %v from a negative budget", pts[0].Images)
		}
	})

	t.Run("budget consumed by build", func(t *testing.T) {
		// Ray tracing charges the BVH build against the budget; a budget
		// below the build cost leaves no time for images.
		in := mp.Map(Config{N: 64, Tasks: 4, Width: 512, Height: 512, Renderer: RayTrace})
		build := set.Models[Key("cpu", RayTrace)].PredictBuild(in)
		if build <= 0 {
			t.Skip("synthetic build model predicts nothing to amortize")
		}
		pts, err := set.ImagesInBudget("cpu", RayTrace, mp, 64, 4, build/2, []int{512})
		if err != nil {
			t.Fatal(err)
		}
		if pts[0].Images != 0 {
			t.Errorf("images = %v with the budget consumed by the build", pts[0].Images)
		}
	})

	t.Run("missing compositing model", func(t *testing.T) {
		// A set fitted from single-task samples has no compositing model;
		// multi-task questions still answer with local cost only.
		var single []Sample
		for _, s := range samples {
			if s.In.Tasks == 1 {
				single = append(single, s)
			}
		}
		noComp, err := FitModels(single)
		if err != nil {
			t.Fatal(err)
		}
		if noComp.Compositing != nil {
			t.Fatal("single-task corpus still produced a compositing model")
		}
		pts, err := noComp.ImagesInBudget("cpu", Volume, mp, 64, 4, 60, []int{512})
		if err != nil {
			t.Fatal(err)
		}
		in := mp.Map(Config{N: 64, Tasks: 4, Width: 512, Height: 512, Renderer: Volume})
		want := noComp.Models[Key("cpu", Volume)].Predict(in)
		if pts[0].PerImage != want {
			t.Errorf("per-image %v, want local-only %v", pts[0].PerImage, want)
		}
		if pts[0].Images <= 0 {
			t.Errorf("images = %v", pts[0].Images)
		}
	})

	t.Run("empty sizes", func(t *testing.T) {
		pts, err := set.ImagesInBudget("cpu", Raster, mp, 64, 2, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 0 {
			t.Errorf("points = %d from an empty size list", len(pts))
		}
		pts, err = set.ImagesInBudget("cpu", Raster, mp, 64, 2, 60, []int{})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 0 {
			t.Errorf("points = %d from an empty size slice", len(pts))
		}
	})

	t.Run("unknown model", func(t *testing.T) {
		if _, err := set.ImagesInBudget("gpu", Volume, mp, 64, 2, 60, []int{256}); err == nil {
			t.Error("unknown architecture accepted")
		}
	})
}

// TestMaxDataSizeInBudgetChargesCompositing is the regression test for
// the multi-task inversion ignoring compositing: the per-image cost it
// inverts must be render + composite, exactly what ImagesInBudget charges
// for the same configuration. The old code used the render-only cost and
// so overestimated the largest feasible N.
func TestMaxDataSizeInBudgetChargesCompositing(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 41)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	if set.Compositing == nil {
		t.Fatal("synthetic corpus produced no compositing model")
	}
	mp := CalibrateMapping(samples)
	const tasks, img = 8, 1024
	m := set.Models[Key("cpu", Volume)]

	// Choose a budget that sits between the composite-inclusive and the
	// render-only cost at some ladder step, so the two formulations give
	// different answers and the bug is observable.
	for n := 8; n <= 2048; n *= 2 {
		in := mp.Map(Config{N: n, Tasks: tasks, Width: img, Height: img, Renderer: Volume})
		renderOnly := m.Predict(in)
		full := renderOnly + set.Compositing.Predict(in)
		if full <= renderOnly {
			t.Fatalf("compositing adds nothing at n=%d (full=%v renderOnly=%v)", n, full, renderOnly)
		}
		budget := (renderOnly + full) / 2 // fits render-only, not the full cost
		got, err := set.MaxDataSizeInBudget("cpu", mp, tasks, img, budget)
		if err != nil {
			t.Fatal(err)
		}
		if got >= n {
			t.Fatalf("n=%d budget=%v: MaxDataSizeInBudget=%d ignores compositing (render-only fits, full does not)",
				n, budget, got)
		}
		// Consistency with ImagesInBudget at the reported best size: at
		// least one image of the budget must fit per budget-second.
		if got > 0 {
			gin := mp.Map(Config{N: got, Tasks: tasks, Width: img, Height: img, Renderer: Volume})
			per := m.Predict(gin) + set.Compositing.Predict(gin)
			if per > budget {
				t.Fatalf("reported best N=%d still exceeds the budget: per=%v budget=%v", got, per, budget)
			}
		}
		return // one ladder step is enough
	}
}

// TestMaxDataSizeInBudgetSingleTaskUnchanged pins the single-task path:
// no compositing model is consulted, so the answer equals the render-only
// inversion.
func TestMaxDataSizeInBudgetSingleTaskUnchanged(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 41)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	mp := CalibrateMapping(samples)
	m := set.Models[Key("cpu", Volume)]
	in := mp.Map(Config{N: 64, Tasks: 1, Width: 512, Height: 512, Renderer: Volume})
	budget := m.Predict(in) * 1.01
	got, err := set.MaxDataSizeInBudget("cpu", mp, 1, 512, budget)
	if err != nil {
		t.Fatal(err)
	}
	if got < 64 {
		t.Errorf("single-task best = %d, want >= 64 (budget covers N=64)", got)
	}
}

// TestCompareRTvsRasterFlagsNonFinite: a rasterization fit that predicts
// non-positive time must yield a flagged zero ratio, not ±Inf/NaN — the
// values encoding/json rejects.
func TestCompareRTvsRasterFlagsNonFinite(t *testing.T) {
	set := &ModelSet{Models: map[string]*Model{
		Key("cpu", RayTrace): {
			Arch: "cpu", Renderer: RayTrace,
			Fit:      &stats.Fit{Coef: []float64{1e-9, 1e-8, 1e-4}},
			BuildFit: &stats.Fit{Coef: []float64{1e-8, 1e-4}},
		},
		Key("cpu", Raster): {
			Arch: "cpu", Renderer: Raster,
			// All-zero coefficients: the degenerate fit predicts 0 s.
			Fit: &stats.Fit{Coef: []float64{0, 0, 0}},
		},
	}}
	cells, err := set.CompareRTvsRaster("cpu", DefaultMapping(), 4, 100, []int{512}, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	c := cells[0]
	if c.Finite {
		t.Errorf("zero raster prediction produced a finite ratio %v", c.Ratio)
	}
	if c.Ratio != 0 || math.IsNaN(c.Ratio) || math.IsInf(c.Ratio, 0) {
		t.Errorf("sanitized ratio = %v, want 0", c.Ratio)
	}

	// A healthy pair is finite and flagged as such.
	set.Models[Key("cpu", Raster)].Fit = &stats.Fit{Coef: []float64{1e-8, 1e-9, 1e-4}}
	cells, err = set.CompareRTvsRaster("cpu", DefaultMapping(), 4, 100, []int{512}, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	if !cells[0].Finite || cells[0].Ratio <= 0 {
		t.Errorf("healthy models: cell = %+v", cells[0])
	}
}

// TestFitAvailableSkipsThinGroups: the incremental-refit fitter keeps the
// fittable groups and reports the thin ones instead of failing the corpus.
func TestFitAvailableSkipsThinGroups(t *testing.T) {
	samples := syntheticSamples("cpu", 30, 7)
	// One lonely sample for a group that cannot possibly fit.
	lone := samples[0]
	lone.Arch = "gpu"
	samples = append(samples, lone)

	set, skipped, err := FitAvailable(samples)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.Models[Key("cpu", RayTrace)]; !ok {
		t.Error("healthy cpu/raytracer group missing")
	}
	if _, ok := set.Models[Key("gpu", lone.Renderer)]; ok {
		t.Error("one-sample group was fitted")
	}
	if reason, ok := skipped[Key("gpu", lone.Renderer)]; !ok || reason == "" {
		t.Errorf("thin group not reported: %v", skipped)
	}
	if set.Compositing == nil {
		t.Error("compositing model missing despite multi-task samples")
	}

	// An all-thin corpus is an error.
	if _, _, err := FitAvailable(samples[:1]); err == nil {
		t.Error("unfittable corpus accepted")
	}
}
