package core

import "testing"

// TestImagesInBudgetEdgeCases pins the boundary behavior the advisor
// service depends on: hopeless budgets answer zero images (not negative,
// not NaN), a missing compositing model degrades to local-only cost, and
// an empty size list is a valid question with an empty answer.
func TestImagesInBudgetEdgeCases(t *testing.T) {
	samples := syntheticSamples("cpu", 60, 41)
	set, err := FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	mp := CalibrateMapping(samples)

	t.Run("zero budget", func(t *testing.T) {
		pts, err := set.ImagesInBudget("cpu", Volume, mp, 64, 4, 0, []int{256, 1024})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Images != 0 {
				t.Errorf("size %d: %v images from a zero budget", p.ImageSize, p.Images)
			}
			if p.PerImage <= 0 {
				t.Errorf("size %d: per-image %v should still be predicted", p.ImageSize, p.PerImage)
			}
		}
	})

	t.Run("negative budget", func(t *testing.T) {
		pts, err := set.ImagesInBudget("cpu", RayTrace, mp, 64, 4, -30, []int{512})
		if err != nil {
			t.Fatal(err)
		}
		if pts[0].Images != 0 {
			t.Errorf("images = %v from a negative budget", pts[0].Images)
		}
	})

	t.Run("budget consumed by build", func(t *testing.T) {
		// Ray tracing charges the BVH build against the budget; a budget
		// below the build cost leaves no time for images.
		in := mp.Map(Config{N: 64, Tasks: 4, Width: 512, Height: 512, Renderer: RayTrace})
		build := set.Models[Key("cpu", RayTrace)].PredictBuild(in)
		if build <= 0 {
			t.Skip("synthetic build model predicts nothing to amortize")
		}
		pts, err := set.ImagesInBudget("cpu", RayTrace, mp, 64, 4, build/2, []int{512})
		if err != nil {
			t.Fatal(err)
		}
		if pts[0].Images != 0 {
			t.Errorf("images = %v with the budget consumed by the build", pts[0].Images)
		}
	})

	t.Run("missing compositing model", func(t *testing.T) {
		// A set fitted from single-task samples has no compositing model;
		// multi-task questions still answer with local cost only.
		var single []Sample
		for _, s := range samples {
			if s.In.Tasks == 1 {
				single = append(single, s)
			}
		}
		noComp, err := FitModels(single)
		if err != nil {
			t.Fatal(err)
		}
		if noComp.Compositing != nil {
			t.Fatal("single-task corpus still produced a compositing model")
		}
		pts, err := noComp.ImagesInBudget("cpu", Volume, mp, 64, 4, 60, []int{512})
		if err != nil {
			t.Fatal(err)
		}
		in := mp.Map(Config{N: 64, Tasks: 4, Width: 512, Height: 512, Renderer: Volume})
		want := noComp.Models[Key("cpu", Volume)].Predict(in)
		if pts[0].PerImage != want {
			t.Errorf("per-image %v, want local-only %v", pts[0].PerImage, want)
		}
		if pts[0].Images <= 0 {
			t.Errorf("images = %v", pts[0].Images)
		}
	})

	t.Run("empty sizes", func(t *testing.T) {
		pts, err := set.ImagesInBudget("cpu", Raster, mp, 64, 2, 60, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 0 {
			t.Errorf("points = %d from an empty size list", len(pts))
		}
		pts, err = set.ImagesInBudget("cpu", Raster, mp, 64, 2, 60, []int{})
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 0 {
			t.Errorf("points = %d from an empty size slice", len(pts))
		}
	})

	t.Run("unknown model", func(t *testing.T) {
		if _, err := set.ImagesInBudget("gpu", Volume, mp, 64, 2, 60, []int{256}); err == nil {
			t.Error("unknown architecture accepted")
		}
	})
}
