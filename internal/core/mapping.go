package core

import (
	"math"
)

// Config is a user-facing rendering configuration: the way a simulation
// scientist thinks about a rendering task (paper §5.8) — per-task data
// size, task count, image resolution, and technique.
type Config struct {
	// N is the per-task data size (an N^3 block of cells).
	N int
	// Tasks is the MPI task count (weak scaling: total cells = Tasks*N^3).
	Tasks int
	// Width and Height are the image resolution.
	Width, Height int
	// Renderer selects the technique.
	Renderer Renderer
}

// Mapping converts configurations to model inputs. The functional forms
// follow the paper; the two constants are calibrated once per study
// corpus rather than hard-coded (the paper's 55% screen fill and
// 373-sample baseline are properties of its camera setup).
type Mapping struct {
	// FillFraction is the fraction of image pixels covered by the data
	// for a single task (paper: 0.55).
	FillFraction float64
	// SPRBase is the single-task samples-per-ray baseline (paper: 373).
	SPRBase float64
}

// DefaultMapping mirrors the paper's constants.
func DefaultMapping() Mapping { return Mapping{FillFraction: 0.55, SPRBase: 373} }

// CalibrateMapping estimates the two constants from measured samples:
// FillFraction from surface renders, SPRBase from volume renders, each
// inverted through the paper's task-count scaling law.
func CalibrateMapping(samples []Sample) Mapping {
	mp := DefaultMapping()
	var fillSum, fillN, sprSum, sprN float64
	for _, s := range samples {
		scale := math.Cbrt(float64(maxInt(s.In.Tasks, 1)))
		if s.In.Pixels > 0 && s.In.AP > 0 && s.Renderer != Volume {
			fillSum += s.In.AP * scale / s.In.Pixels
			fillN++
		}
		if s.Renderer == Volume && s.In.SPR > 0 {
			sprSum += s.In.SPR * scale
			sprN++
		}
	}
	if fillN > 0 {
		mp.FillFraction = fillSum / fillN
	}
	if sprN > 0 {
		mp.SPRBase = sprSum / sprN
	}
	return mp
}

// Map converts a configuration to model inputs using the paper's
// formulas:
//
//	O  = 12*N^2 (external-face surfaces) or N^3 (volumes),
//	     unless the renderer's registered spec overrides Objects
//	AP = fill * Pixels / Tasks^(1/3)
//	VO = min(AP, O)            (surface techniques)
//	VO*PPT = 4*AP  =>  PPT = 4*AP/VO
//	SPR = SPRBase / Tasks^(1/3) (volume techniques)
//	CS  = N
//
// The surface-vs-volume branch follows the renderer's registered spec;
// an unregistered renderer maps as a surface technique (the prediction
// itself will fail at model lookup with a clear error). All coefficients
// are positive, so conservative (over-) estimates of the inputs yield
// conservative time predictions.
func (mp Mapping) Map(cfg Config) Inputs {
	tasks := maxInt(cfg.Tasks, 1)
	scale := math.Cbrt(float64(tasks))
	pixels := float64(cfg.Width * cfg.Height)
	n := float64(cfg.N)
	in := Inputs{
		Pixels: pixels,
		Tasks:  tasks,
		CS:     n,
	}
	in.AP = mp.FillFraction * pixels / scale
	in.AvgAP = in.AP
	spec, known := LookupRenderer(cfg.Renderer)
	surface := !known || spec.Surface
	if surface {
		in.O = 12 * n * n
	} else {
		in.O = n * n * n
	}
	if known && spec.Objects != nil {
		in.O = spec.Objects(n)
	}
	if !surface {
		in.SPR = mp.SPRBase / scale
		return in
	}
	in.VO = math.Min(in.AP, in.O)
	if in.VO > 0 {
		in.PPT = 4 * in.AP / in.VO
	}
	return in
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
