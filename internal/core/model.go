// Package core implements the paper's primary contribution (Chapter V):
// statistical performance models, based on algorithmic complexity, that
// predict the run-time cost of in situ rendering. It defines the model
// forms for ray tracing, rasterization, structured volume rendering, and
// image compositing; fits per-architecture coefficients from study
// samples by multiple linear regression; evaluates the fits with R²,
// residual deviation, and k-fold cross validation; maps user-facing
// rendering configurations to model inputs (§5.8); and answers the in
// situ viability questions (§5.9).
package core

import (
	"fmt"
	"math"
	"sort"

	"insitu/internal/stats"
)

// Renderer names the modeled rendering techniques.
type Renderer string

const (
	// RayTrace is modeled as T = (c0*O + c1) + (c2*AP*log2(O) + c3*AP + c4).
	RayTrace Renderer = "raytracer"
	// Raster is modeled as T = c0*O + c1*(VO*PPT) + c2.
	Raster Renderer = "rasterizer"
	// Volume is modeled as T = c0*(AP*CS) + c1*(AP*SPR) + c2.
	Volume Renderer = "volume"
	// Compositing is modeled as T = c0*avg(AP) + c1*Pixels + c2.
	Compositing Renderer = "compositing"
)

// Inputs are the model input variables of §5.3. The JSON tags define the
// wire form every advisor endpoint uses (predict responses, posted
// observations), matching the snake_case of the rest of the HTTP API.
type Inputs struct {
	O      float64 `json:"o"`      // objects (triangles or cells)
	AP     float64 `json:"ap"`     // active pixels on this task
	VO     float64 `json:"vo"`     // visible objects (rasterization)
	PPT    float64 `json:"ppt"`    // pixels considered per visible triangle
	SPR    float64 `json:"spr"`    // samples per ray (volume rendering)
	CS     float64 `json:"cs"`     // cells spanned (volume rendering)
	Pixels float64 `json:"pixels"` // full image resolution (compositing)
	AvgAP  float64 `json:"avg_ap"` // average active pixels over tasks (compositing)
	Tasks  int     `json:"tasks"`
}

// Sample is one measured study observation.
type Sample struct {
	Arch     string
	Renderer Renderer
	In       Inputs
	// BuildTime is acceleration-structure construction (ray tracing).
	BuildTime float64 // seconds
	// RenderTime is the local rendering time of the slowest task.
	RenderTime float64 // seconds
	// CompositeTime is the parallel compositing time (0 for 1 task).
	CompositeTime float64 // seconds
}

// Term vectors: each model is linear in these complexity-derived terms.

// RTBuildTerms: c0*O + c1.
func RTBuildTerms(in Inputs) []float64 { return []float64{in.O, 1} }

// RTTraceTerms: c2*(AP*log2(O)) + c3*AP + c4.
func RTTraceTerms(in Inputs) []float64 {
	logO := 0.0
	if in.O > 1 {
		logO = math.Log2(in.O)
	}
	return []float64{in.AP * logO, in.AP, 1}
}

// RastTerms: c0*O + c1*(VO*PPT) + c2.
func RastTerms(in Inputs) []float64 { return []float64{in.O, in.VO * in.PPT, 1} }

// VRTerms: c0*(AP*CS) + c1*(AP*SPR) + c2.
func VRTerms(in Inputs) []float64 { return []float64{in.AP * in.CS, in.AP * in.SPR, 1} }

// CompTerms: c0*avg(AP) + c1*Pixels + c2.
func CompTerms(in Inputs) []float64 { return []float64{in.AvgAP, in.Pixels, 1} }

// RenderTerms dispatches to the registered renderer's term vector.
func RenderTerms(r Renderer, in Inputs) ([]float64, error) {
	spec, ok := LookupRenderer(r)
	if !ok {
		return nil, fmt.Errorf("core: unknown renderer %q (registered: %v)", r, Renderers())
	}
	return spec.Terms(in), nil
}

// Model is one fitted architecture+renderer performance model.
type Model struct {
	Arch     string
	Renderer Renderer
	Fit      *stats.Fit
	// BuildFit is the separate c0*O + c1 acceleration-structure model
	// (ray tracing only), kept apart so repeated renderings amortize it.
	BuildFit *stats.Fit
}

// Predict returns the predicted per-image local render time in seconds.
func (m *Model) Predict(in Inputs) float64 {
	terms, err := RenderTerms(m.Renderer, in)
	if err != nil {
		return math.NaN()
	}
	return m.Fit.Predict(terms)
}

// PredictBuild returns the predicted acceleration build time (0 for
// renderers without one).
func (m *Model) PredictBuild(in Inputs) float64 {
	if m.BuildFit == nil {
		return 0
	}
	return m.BuildFit.Predict(RTBuildTerms(in))
}

// Coefficients returns the c_i in the paper's Table 17 layout: ray
// tracing lists build (c0, c1) then trace (c2, c3, c4); the others list
// their three coefficients.
func (m *Model) Coefficients() []float64 {
	if m.BuildFit != nil {
		return append(append([]float64(nil), m.BuildFit.Coef...), m.Fit.Coef...)
	}
	return append([]float64(nil), m.Fit.Coef...)
}

// Key identifies a model by architecture and renderer.
func Key(arch string, r Renderer) string { return arch + "/" + string(r) }

// ModelSet holds every fitted model from a study plus the shared
// compositing model.
type ModelSet struct {
	Models      map[string]*Model
	Compositing *Model
}

// FitModels groups samples by (arch, renderer) and fits each model, plus
// the compositing model over all multi-task samples.
func FitModels(samples []Sample) (*ModelSet, error) {
	groups := map[string][]Sample{}
	for _, s := range samples {
		k := Key(s.Arch, s.Renderer)
		groups[k] = append(groups[k], s)
	}
	set := &ModelSet{Models: map[string]*Model{}}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		m, err := fitGroup(g)
		if err != nil {
			return nil, fmt.Errorf("core: fitting %s: %w", k, err)
		}
		set.Models[k] = m
	}
	comp, err := FitCompositing(samples)
	if err == nil {
		set.Compositing = comp
	}
	return set, nil
}

// FitAvailable is the incremental-refit variant of FitModels: it fits
// every (arch, renderer) group that has accumulated enough samples and
// skips the rest, instead of failing the whole corpus on its thinnest
// group. The skipped map records why each group was left out so a
// continuous-calibration caller can report progress. An error is
// returned only when no group at all can be fitted.
func FitAvailable(samples []Sample) (*ModelSet, map[string]string, error) {
	groups := map[string][]Sample{}
	for _, s := range samples {
		k := Key(s.Arch, s.Renderer)
		groups[k] = append(groups[k], s)
	}
	set := &ModelSet{Models: map[string]*Model{}}
	skipped := map[string]string{}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m, err := fitGroup(groups[k])
		if err != nil {
			skipped[k] = err.Error()
			continue
		}
		set.Models[k] = m
	}
	if len(set.Models) == 0 {
		return nil, skipped, fmt.Errorf("core: no fittable model group among %d samples", len(samples))
	}
	if comp, err := FitCompositing(samples); err == nil {
		set.Compositing = comp
	} else {
		skipped[Key("all", Compositing)] = err.Error()
	}
	return set, skipped, nil
}

// fitGroup fits one (arch, renderer) group.
func fitGroup(g []Sample) (*Model, error) {
	if len(g) < 4 {
		return nil, fmt.Errorf("only %d samples", len(g))
	}
	r := g[0].Renderer
	X := make([][]float64, len(g))
	y := make([]float64, len(g))
	for i, s := range g {
		terms, err := RenderTerms(r, s.In)
		if err != nil {
			return nil, err
		}
		X[i] = terms
		y[i] = s.RenderTime
	}
	fit, err := stats.Regress(X, y)
	if err != nil {
		return nil, err
	}
	m := &Model{Arch: g[0].Arch, Renderer: r, Fit: fit}
	if spec, ok := LookupRenderer(r); ok && spec.HasBuild {
		bX := make([][]float64, len(g))
		bY := make([]float64, len(g))
		for i, s := range g {
			bX[i] = RTBuildTerms(s.In)
			bY[i] = s.BuildTime
		}
		bfit, err := stats.Regress(bX, bY)
		if err != nil {
			return nil, fmt.Errorf("build model: %w", err)
		}
		m.BuildFit = bfit
	}
	return m, nil
}

// FitCompositing fits T_comp = c0*avg(AP) + c1*Pixels + c2 over samples
// from multi-task runs.
func FitCompositing(samples []Sample) (*Model, error) {
	var X [][]float64
	var y []float64
	for _, s := range samples {
		if s.In.Tasks < 2 || s.CompositeTime <= 0 {
			continue
		}
		X = append(X, CompTerms(s.In))
		y = append(y, s.CompositeTime)
	}
	if len(X) < 4 {
		return nil, fmt.Errorf("core: only %d compositing samples", len(X))
	}
	fit, err := stats.Regress(X, y)
	if err != nil {
		return nil, err
	}
	return &Model{Arch: "all", Renderer: Compositing, Fit: fit}, nil
}

// CrossValidate runs k-fold cross validation of one (arch, renderer)
// group's render-time model, the paper's Figure 11 / Table 13 procedure.
func CrossValidate(samples []Sample, arch string, r Renderer, k int) (*stats.CVResult, error) {
	var X [][]float64
	var y []float64
	for _, s := range samples {
		if s.Arch != arch || s.Renderer != r {
			continue
		}
		terms, err := RenderTerms(r, s.In)
		if err != nil {
			return nil, err
		}
		X = append(X, terms)
		y = append(y, s.RenderTime)
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("core: no samples for %s", Key(arch, r))
	}
	return stats.KFoldCV(k, X, y, 42)
}

// CrossValidateCompositing cross-validates the compositing model.
func CrossValidateCompositing(samples []Sample, k int) (*stats.CVResult, error) {
	var X [][]float64
	var y []float64
	for _, s := range samples {
		if s.In.Tasks < 2 || s.CompositeTime <= 0 {
			continue
		}
		X = append(X, CompTerms(s.In))
		y = append(y, s.CompositeTime)
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("core: no compositing samples")
	}
	return stats.KFoldCV(k, X, y, 42)
}

// TotalModel (§5.6): T_total = max over tasks(T_local) + T_comp.
// PredictTotal evaluates it for a uniform configuration where every task
// sees the same inputs (the study's weak-scaled setup).
func (set *ModelSet) PredictTotal(arch string, r Renderer, in Inputs) (float64, error) {
	m, ok := set.Models[Key(arch, r)]
	if !ok {
		return 0, fmt.Errorf("core: no model for %s", Key(arch, r))
	}
	t := m.Predict(in)
	if in.Tasks > 1 && set.Compositing != nil {
		t += set.Compositing.Predict(in)
	}
	return t, nil
}
