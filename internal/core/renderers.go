package core

import (
	"fmt"
	"sort"
	"sync"
)

// RendererSpec describes one modeled rendering technique: the linear
// model form its measurements fit and the configuration-mapping facts the
// advisor needs to answer questions about it. Registering a spec is what
// makes a renderer name meaningful to the modeling layer — fitting,
// snapshot validation, prediction, and observation ingestion all consult
// the spec registry instead of a hardcoded renderer list, so a new
// scenario backend becomes fittable and servable by registering its spec
// once.
type RendererSpec struct {
	// Name is the renderer's wire name (model keys, snapshots, HTTP).
	Name Renderer
	// Terms maps model inputs to the linear term vector, intercept
	// included; its length fixes the coefficient arity snapshots are
	// validated against.
	Terms func(Inputs) []float64
	// HasBuild marks techniques with a separate one-time
	// acceleration-structure model (RTBuildTerms), fitted apart so
	// repeated renderings amortize it.
	HasBuild bool
	// Surface marks external-face surface techniques: they take the
	// surface branch of Mapping.Map and are eligible for the
	// max-triangles inversion.
	Surface bool
	// Objects maps the per-task data size N to the modeled object count
	// (the O input of §5.8). Nil uses the default for the technique
	// family: 12*N^2 for surfaces, N^3 for volumes.
	Objects func(n float64) float64
}

var (
	rendererMu    sync.RWMutex
	rendererSpecs = map[Renderer]RendererSpec{}
)

// RegisterRenderer adds a renderer spec to the registry. Registering a
// name twice is an error: two specs with different term forms would make
// fitted coefficients ambiguous.
func RegisterRenderer(spec RendererSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("core: renderer spec has no name")
	}
	if spec.Terms == nil {
		return fmt.Errorf("core: renderer %q has no term function", spec.Name)
	}
	rendererMu.Lock()
	defer rendererMu.Unlock()
	if _, dup := rendererSpecs[spec.Name]; dup {
		return fmt.Errorf("core: renderer %q already registered", spec.Name)
	}
	rendererSpecs[spec.Name] = spec
	return nil
}

// MustRegisterRenderer is RegisterRenderer for init-time registration.
func MustRegisterRenderer(spec RendererSpec) {
	if err := RegisterRenderer(spec); err != nil {
		panic(err)
	}
}

// LookupRenderer returns a registered spec.
func LookupRenderer(r Renderer) (RendererSpec, bool) {
	rendererMu.RLock()
	defer rendererMu.RUnlock()
	spec, ok := rendererSpecs[r]
	return spec, ok
}

// Renderers returns every registered renderer name, sorted, including
// the compositing pseudo-renderer.
func Renderers() []Renderer {
	rendererMu.RLock()
	defer rendererMu.RUnlock()
	out := make([]Renderer, 0, len(rendererSpecs))
	for r := range rendererSpecs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ModeledRenderers returns the renderers whose local render time is
// modeled per architecture — every registered spec except compositing,
// which is fitted across architectures from multi-task composite times.
func ModeledRenderers() []Renderer {
	all := Renderers()
	out := all[:0]
	for _, r := range all {
		if r != Compositing {
			out = append(out, r)
		}
	}
	return out
}

// The paper's four model forms (Chapter V) register at init so the core
// package is usable standalone; scenario backends register any further
// specs alongside their rendering code.
func init() {
	MustRegisterRenderer(RendererSpec{
		Name: RayTrace, Terms: RTTraceTerms, HasBuild: true, Surface: true,
	})
	MustRegisterRenderer(RendererSpec{
		Name: Raster, Terms: RastTerms, Surface: true,
	})
	MustRegisterRenderer(RendererSpec{
		Name: Volume, Terms: VRTerms,
	})
	MustRegisterRenderer(RendererSpec{
		Name: Compositing, Terms: CompTerms,
	})
}
