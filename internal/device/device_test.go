package device

import (
	"testing"
	"time"
)

func TestProfilesAreFreshCopies(t *testing.T) {
	a, err := Profile("cpu")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("Profile should return fresh copies")
	}
	a.Workers = 999
	if b.Workers == 999 {
		t.Error("profiles share state")
	}
}

func TestUnknownProfile(t *testing.T) {
	if _, err := Profile("cray-1"); err == nil {
		t.Error("expected unknown-profile error")
	}
}

func TestProfileNamesSortedAndComplete(t *testing.T) {
	names := ProfileNames()
	if len(names) != len(Profiles()) {
		t.Errorf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestNewClampsWorkers(t *testing.T) {
	d := New("x", 0)
	if d.Workers != 1 {
		t.Errorf("workers = %d", d.Workers)
	}
}

func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.AddBusy(100 * time.Millisecond)
	s.AddItems(500)
	s.AddLaunch()
	if s.Busy() != 100*time.Millisecond || s.Items() != 500 || s.Launches() != 1 {
		t.Error("counters wrong")
	}
	// Occupancy: 100ms busy over 100ms wall with 2 workers = 50%.
	if occ := s.Occupancy(100*time.Millisecond, 2); occ != 0.5 {
		t.Errorf("occupancy = %v", occ)
	}
	// Clipped to [0,1].
	if occ := s.Occupancy(10*time.Millisecond, 1); occ != 1 {
		t.Errorf("occupancy should clip to 1, got %v", occ)
	}
	if s.Occupancy(0, 2) != 0 {
		t.Error("zero wall should give 0")
	}
	// Throughput: 500 items / 100000 us busy.
	if th := s.Throughput(); th != 500.0/1e5 {
		t.Errorf("throughput = %v", th)
	}
	s.Reset()
	if s.Items() != 0 || s.Busy() != 0 || s.Launches() != 0 {
		t.Error("reset failed")
	}
	if s.Throughput() != 0 {
		t.Error("zero-busy throughput should be 0")
	}
}
