package device

import (
	"runtime"
	"sync"
)

// Runnable is one unit of pool work. The data-parallel layer hands the
// pool a launch object; every woken worker calls Run, which grabs chunks
// until the launch is exhausted.
type Runnable interface{ Run() }

// Pool is a persistent gang of parked worker goroutines — the device's
// standing compute resource. Workers block on an unbuffered dispatch
// channel, so waking one costs a channel handoff instead of a goroutine
// spawn, and an idle pool consumes no CPU. Launch-grained work is
// distributed by the Runnable itself (an atomic chunk counter), so the
// pool stays scheduling-agnostic.
type Pool struct {
	work      chan Runnable
	stop      chan struct{}
	closeOnce sync.Once
	workers   int
}

func newPool(workers int) *Pool {
	p := &Pool{
		work:    make(chan Runnable),
		stop:    make(chan struct{}),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case <-p.stop:
			return
		case r := <-p.work:
			r.Run()
		}
	}
}

// Workers returns the number of goroutines the pool was started with.
func (p *Pool) Workers() int { return p.workers }

// TryWake offers r to up to k parked workers without blocking and returns
// how many accepted. Only workers actually parked on the dispatch channel
// are woken — workers busy with another launch are skipped, so concurrent
// launches on a shared device degrade to fewer helpers instead of
// queueing behind each other. The caller must arrange (before calling)
// for every accepted worker's Run to be awaited.
//
//insitu:noalloc
func (p *Pool) TryWake(r Runnable, k int) int {
	select {
	case <-p.stop:
		// Closed pools wake nobody, deterministically — lingering workers
		// that have not observed stop yet must not accept new launches.
		return 0
	default:
	}
	woken := 0
	for i := 0; i < k; i++ {
		select {
		case p.work <- r:
			woken++
		default:
			return woken
		}
	}
	return woken
}

// Close parks the pool permanently: workers exit after finishing any
// launch they already accepted. Close is idempotent and safe to call
// concurrently with launches — wakes attempted after Close find no
// parked workers and the launcher runs the work itself.
func (p *Pool) Close() {
	p.closeOnce.Do(func() { close(p.stop) })
}

// Pool returns the device's persistent worker pool, starting it on first
// use. Devices with a single worker (or fewer) have no pool and return
// nil — launches run inline. The pool holds Workers-1 goroutines because
// the launching goroutine always participates in its own launch.
//
// A finalizer closes the pool when the device is garbage collected, so
// short-lived devices (the study creates one per measured configuration)
// do not leak parked goroutines; callers that churn through many devices
// should still call Close promptly.
//
//insitu:noalloc
func (d *Device) Pool() *Pool {
	//insitu:noalloc-ok once-per-device init; steady-state calls only read d.pool
	d.poolOnce.Do(func() {
		if d.Workers > 1 {
			d.pool = newPool(d.Workers - 1)
			runtime.SetFinalizer(d, (*Device).Close)
		}
	})
	return d.pool
}

// Close releases the device's worker pool, if one was started. The device
// remains usable afterwards: launches simply run on the calling
// goroutine. Close is idempotent.
func (d *Device) Close() {
	if d.pool != nil {
		d.pool.Close()
	}
}
