// Package device models the execution targets the paper calls
// "architectures". The paper's premise is that one data-parallel
// implementation runs on CPUs, GPUs, and many-core co-processors, with the
// architectural differences absorbed by per-architecture model
// coefficients. This sandbox has no GPU, so each architecture is simulated
// by a device profile: a worker-pool configuration (worker count,
// scheduling grain, and vector width for packetized kernels) that executes
// the identical data-parallel primitives. Per-profile coefficients are then
// fitted exactly as the paper fits per-architecture coefficients.
package device

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Device describes one execution target for the data-parallel engine.
type Device struct {
	// Name identifies the profile in study output and fitted models.
	Name string
	// Workers is the number of concurrent workers used by parallel
	// primitives. Values above runtime.NumCPU model oversubscribed,
	// massively threaded targets.
	Workers int
	// Grain is the minimum number of items per scheduled chunk.
	Grain int
	// VectorWidth is the packet width kernels may use to amortize work
	// across coherent items (the SIMD/ISPC analogue). 1 means scalar.
	VectorWidth int
	// Stats, when non-nil, accumulates occupancy instrumentation.
	Stats *Stats

	// pool is the lazily started persistent worker gang (see Pool).
	// Devices are shared by pointer; copying an initialized Device would
	// share the pool, so treat Device values as handles, not data.
	poolOnce sync.Once
	pool     *Pool
}

// New returns a device with sensible defaults for the given worker count.
func New(name string, workers int) *Device {
	if workers < 1 {
		workers = 1
	}
	return &Device{Name: name, Workers: workers, Grain: 256, VectorWidth: 1}
}

// Serial returns a single-worker device.
func Serial() *Device { return New("serial", 1) }

// CPU returns a device using every hardware thread.
func CPU() *Device { return New("cpu", runtime.NumCPU()) }

// Profiles returns fresh copies of the named device profiles used by the
// study. The mapping to the paper's architectures is documented in
// DESIGN.md; "bigiron" is held out of the main study and plays the role of
// the leading-edge machine in the Table 15 experiment.
func Profiles() map[string]*Device {
	n := runtime.NumCPU()
	mk := func(name string, workers, grain, vw int) *Device {
		return &Device{Name: name, Workers: workers, Grain: grain, VectorWidth: vw}
	}
	return map[string]*Device{
		"serial":  mk("serial", 1, 1024, 1),
		"cpu":     mk("cpu", n, 512, 1),
		"gpu":     mk("gpu", 4*n, 64, 4),
		"mic":     mk("mic", 2*n, 128, 8),
		"bigiron": mk("bigiron", 3*n, 96, 4),
	}
}

// Profile returns a fresh copy of a named profile.
func Profile(name string) (*Device, error) {
	d, ok := Profiles()[name]
	if !ok {
		return nil, fmt.Errorf("device: unknown profile %q (have %v)", name, ProfileNames())
	}
	return d, nil
}

// ProfileNames returns the sorted list of known profile names.
func ProfileNames() []string {
	m := Profiles()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Stats accumulates execution instrumentation across parallel launches. It
// is the substitute for the paper's PAPI and nvprof counters: wall-clock
// busy time, items processed, and launch counts give the occupancy and
// throughput ("IPC analogue") figures reported in Tables 6 and 7.
//
// Under the pooled execution model, busy time is recorded per wake: each
// pool worker that accepts a launch measures the span from accepting it
// to finishing its last chunk, and the launching goroutine measures its
// own participation the same way. Park time never counts as busy, so
// occupancy reflects useful work, not resident goroutines.
type Stats struct {
	busyNS   atomic.Int64
	items    atomic.Int64
	launches atomic.Int64
	wakes    atomic.Int64
}

// AddBusy records ns of worker busy time (one wake's or one launcher's
// span of chunk execution).
//
//insitu:noalloc
func (s *Stats) AddBusy(d time.Duration) { s.busyNS.Add(int64(d)) }

// AddItems records processed work items.
//
//insitu:noalloc
func (s *Stats) AddItems(n int64) { s.items.Add(n) }

// AddLaunch records one parallel launch.
//
//insitu:noalloc
func (s *Stats) AddLaunch() { s.launches.Add(1) }

// AddWake records one pool worker accepting a launch. The launching
// goroutine's own participation is not a wake.
//
//insitu:noalloc
func (s *Stats) AddWake() { s.wakes.Add(1) }

// Busy returns the accumulated worker busy time.
func (s *Stats) Busy() time.Duration { return time.Duration(s.busyNS.Load()) }

// Items returns the accumulated item count.
func (s *Stats) Items() int64 { return s.items.Load() }

// Launches returns the number of parallel launches.
func (s *Stats) Launches() int64 { return s.launches.Load() }

// Wakes returns the number of pool-worker wakes across all launches.
// Wakes/Launches approximates the average helper count per launch; it can
// be below Workers-1 when launches are small or the pool is contended.
func (s *Stats) Wakes() int64 { return s.wakes.Load() }

// Reset zeroes all counters.
func (s *Stats) Reset() {
	s.busyNS.Store(0)
	s.items.Store(0)
	s.launches.Store(0)
	s.wakes.Store(0)
}

// Occupancy is busy time divided by the wall-clock capacity of the device
// (wall * workers), clipped to [0,1]. It is the analogue of nvprof's
// achieved occupancy.
func (s *Stats) Occupancy(wall time.Duration, workers int) float64 {
	if wall <= 0 || workers <= 0 {
		return 0
	}
	occ := float64(s.busyNS.Load()) / (float64(wall) * float64(workers))
	if occ > 1 {
		occ = 1
	}
	if occ < 0 {
		occ = 0
	}
	return occ
}

// Throughput returns items per microsecond of busy time, the study's
// substitute for instructions-per-cycle.
func (s *Stats) Throughput() float64 {
	busy := float64(s.busyNS.Load())
	if busy == 0 {
		return 0
	}
	return float64(s.items.Load()) / (busy / 1e3)
}
