// Package conduit provides the hierarchical in-core data description the
// in situ interface uses to pass meshes and actions between a simulation
// and the visualization pipeline, modeled on LLNL's Conduit: a JSON-like
// tree with ordered children, typed leaves, and zero-copy "external"
// array references so simulation state is described rather than copied.
package conduit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Node is one tree node: an interior object with ordered children, or a
// leaf holding a value.
type Node struct {
	children map[string]*Node
	keys     []string
	value    any
	hasValue bool
	external bool
}

// NewNode returns an empty node.
func NewNode() *Node { return &Node{} }

// Fetch returns the node at a "/"-separated path, creating intermediate
// nodes as needed (Conduit's operator[] semantics).
func (n *Node) Fetch(path string) *Node {
	cur := n
	for _, part := range splitPath(path) {
		if cur.children == nil {
			cur.children = map[string]*Node{}
		}
		next, ok := cur.children[part]
		if !ok {
			next = NewNode()
			cur.children[part] = next
			cur.keys = append(cur.keys, part)
		}
		cur = next
	}
	return cur
}

// Get returns the node at path without creating anything.
func (n *Node) Get(path string) (*Node, bool) {
	cur := n
	for _, part := range splitPath(path) {
		next, ok := cur.children[part]
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// Has reports whether a path exists.
func (n *Node) Has(path string) bool {
	_, ok := n.Get(path)
	return ok
}

// Set stores a value at path. Slices are deep-copied, matching Conduit's
// owning set; use SetExternal for zero-copy.
func (n *Node) Set(path string, v any) *Node {
	leaf := n.Fetch(path)
	switch s := v.(type) {
	case []float64:
		cp := make([]float64, len(s))
		copy(cp, s)
		v = cp
	case []int32:
		cp := make([]int32, len(s))
		copy(cp, s)
		v = cp
	case []float32:
		cp := make([]float32, len(s))
		copy(cp, s)
		v = cp
	}
	leaf.value = v
	leaf.hasValue = true
	leaf.external = false
	return leaf
}

// SetExternal stores a reference to v at path without copying. The caller
// retains ownership; this is the zero-copy path simulations use to
// publish their state arrays.
func (n *Node) SetExternal(path string, v any) *Node {
	leaf := n.Fetch(path)
	leaf.value = v
	leaf.hasValue = true
	leaf.external = true
	return leaf
}

// External reports whether the node holds a zero-copy reference.
func (n *Node) External() bool { return n.external }

// IsLeaf reports whether the node holds a value.
func (n *Node) IsLeaf() bool { return n.hasValue }

// Value returns the raw stored value.
func (n *Node) Value() any { return n.value }

// Children returns the child names in insertion order.
func (n *Node) Children() []string { return append([]string(nil), n.keys...) }

// Child returns a named child, or nil.
func (n *Node) Child(name string) *Node { return n.children[name] }

// Append adds the next list element (children named "0", "1", ...),
// Conduit's list semantics used for action sequences.
func (n *Node) Append() *Node {
	return n.Fetch(strconv.Itoa(len(n.keys)))
}

// List returns the children in insertion order.
func (n *Node) List() []*Node {
	out := make([]*Node, 0, len(n.keys))
	for _, k := range n.keys {
		out = append(out, n.children[k])
	}
	return out
}

// typed accessors ------------------------------------------------------

// String returns the value at path as a string.
func (n *Node) String(path string) (string, error) {
	leaf, ok := n.Get(path)
	if !ok || !leaf.hasValue {
		return "", fmt.Errorf("conduit: no value at %q", path)
	}
	s, ok := leaf.value.(string)
	if !ok {
		return "", fmt.Errorf("conduit: %q holds %T, not string", path, leaf.value)
	}
	return s, nil
}

// StringOr returns the string at path or a default.
func (n *Node) StringOr(path, def string) string {
	if s, err := n.String(path); err == nil {
		return s
	}
	return def
}

// Int returns the value at path as an int (accepting common int widths).
func (n *Node) Int(path string) (int, error) {
	leaf, ok := n.Get(path)
	if !ok || !leaf.hasValue {
		return 0, fmt.Errorf("conduit: no value at %q", path)
	}
	switch v := leaf.value.(type) {
	case int:
		return v, nil
	case int32:
		return int(v), nil
	case int64:
		return int(v), nil
	case float64:
		return int(v), nil
	}
	return 0, fmt.Errorf("conduit: %q holds %T, not int", path, leaf.value)
}

// IntOr returns the int at path or a default.
func (n *Node) IntOr(path string, def int) int {
	if v, err := n.Int(path); err == nil {
		return v
	}
	return def
}

// Float returns the value at path as a float64.
func (n *Node) Float(path string) (float64, error) {
	leaf, ok := n.Get(path)
	if !ok || !leaf.hasValue {
		return 0, fmt.Errorf("conduit: no value at %q", path)
	}
	switch v := leaf.value.(type) {
	case float64:
		return v, nil
	case float32:
		return float64(v), nil
	case int:
		return float64(v), nil
	}
	return 0, fmt.Errorf("conduit: %q holds %T, not float", path, leaf.value)
}

// FloatOr returns the float at path or a default.
func (n *Node) FloatOr(path string, def float64) float64 {
	if v, err := n.Float(path); err == nil {
		return v
	}
	return def
}

// Float64Slice returns the []float64 at path (shared, not copied).
func (n *Node) Float64Slice(path string) ([]float64, error) {
	leaf, ok := n.Get(path)
	if !ok || !leaf.hasValue {
		return nil, fmt.Errorf("conduit: no value at %q", path)
	}
	s, ok := leaf.value.([]float64)
	if !ok {
		return nil, fmt.Errorf("conduit: %q holds %T, not []float64", path, leaf.value)
	}
	return s, nil
}

// Int32Slice returns the []int32 at path (shared, not copied).
func (n *Node) Int32Slice(path string) ([]int32, error) {
	leaf, ok := n.Get(path)
	if !ok || !leaf.hasValue {
		return nil, fmt.Errorf("conduit: no value at %q", path)
	}
	s, ok := leaf.value.([]int32)
	if !ok {
		return nil, fmt.Errorf("conduit: %q holds %T, not []int32", path, leaf.value)
	}
	return s, nil
}

// Dump renders the tree as an indented, deterministic debug string.
func (n *Node) Dump() string {
	var sb strings.Builder
	n.dump(&sb, 0)
	return sb.String()
}

func (n *Node) dump(sb *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.hasValue {
		switch v := n.value.(type) {
		case []float64:
			fmt.Fprintf(sb, "float64[%d]", len(v))
		case []int32:
			fmt.Fprintf(sb, "int32[%d]", len(v))
		case []float32:
			fmt.Fprintf(sb, "float32[%d]", len(v))
		default:
			fmt.Fprintf(sb, "%v", v)
		}
		if n.external {
			sb.WriteString(" (external)")
		}
		sb.WriteByte('\n')
		return
	}
	sb.WriteByte('\n')
	keys := append([]string(nil), n.keys...)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s%s: ", indent, k)
		n.children[k].dump(sb, depth+1)
	}
}

func splitPath(path string) []string {
	if path == "" {
		return nil
	}
	parts := strings.Split(path, "/")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
