package conduit

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSetFetchRoundTrip(t *testing.T) {
	n := NewNode()
	n.Set("state/time", 1.5)
	n.Set("state/cycle", 7)
	n.Set("coords/type", "uniform")
	if v, err := n.Float("state/time"); err != nil || v != 1.5 {
		t.Errorf("time = %v, %v", v, err)
	}
	if v, err := n.Int("state/cycle"); err != nil || v != 7 {
		t.Errorf("cycle = %v, %v", v, err)
	}
	if v, err := n.String("coords/type"); err != nil || v != "uniform" {
		t.Errorf("type = %v, %v", v, err)
	}
}

func TestPathsWithExtraSlashes(t *testing.T) {
	n := NewNode()
	n.Set("a//b/", 3)
	if v, err := n.Int("a/b"); err != nil || v != 3 {
		t.Errorf("got %v, %v", v, err)
	}
}

func TestSetCopiesSlices(t *testing.T) {
	n := NewNode()
	src := []float64{1, 2, 3}
	n.Set("vals", src)
	src[0] = 99
	got, err := n.Float64Slice("vals")
	if err != nil || got[0] != 1 {
		t.Errorf("Set should copy: got %v, %v", got, err)
	}
	if n.Fetch("vals").External() {
		t.Error("Set should not be external")
	}
}

func TestSetExternalSharesSlices(t *testing.T) {
	n := NewNode()
	src := []float64{1, 2, 3}
	n.SetExternal("vals", src)
	src[0] = 99
	got, err := n.Float64Slice("vals")
	if err != nil || got[0] != 99 {
		t.Errorf("SetExternal should share: got %v, %v", got, err)
	}
	if !n.Fetch("vals").External() {
		t.Error("SetExternal should be external")
	}
}

func TestTypeMismatchErrors(t *testing.T) {
	n := NewNode()
	n.Set("s", "hello")
	if _, err := n.Int("s"); err == nil {
		t.Error("expected int error")
	}
	if _, err := n.Float64Slice("s"); err == nil {
		t.Error("expected slice error")
	}
	if _, err := n.String("missing/path"); err == nil {
		t.Error("expected missing-path error")
	}
}

func TestDefaults(t *testing.T) {
	n := NewNode()
	if n.StringOr("x", "d") != "d" || n.IntOr("x", 4) != 4 || n.FloatOr("x", 2.5) != 2.5 {
		t.Error("defaults not honored")
	}
}

func TestChildrenOrder(t *testing.T) {
	n := NewNode()
	n.Set("b", 1)
	n.Set("a", 2)
	n.Set("c", 3)
	got := n.Children()
	if len(got) != 3 || got[0] != "b" || got[1] != "a" || got[2] != "c" {
		t.Errorf("children = %v (insertion order expected)", got)
	}
}

func TestAppendList(t *testing.T) {
	actions := NewNode()
	a := actions.Append()
	a.Set("action", "add_plot")
	b := actions.Append()
	b.Set("action", "save_image")
	list := actions.List()
	if len(list) != 2 {
		t.Fatalf("list length %d", len(list))
	}
	if v, _ := list[0].String("action"); v != "add_plot" {
		t.Errorf("first action %q", v)
	}
	if v, _ := list[1].String("action"); v != "save_image" {
		t.Errorf("second action %q", v)
	}
}

func TestHasAndGet(t *testing.T) {
	n := NewNode()
	n.Set("a/b/c", 1)
	if !n.Has("a/b") || !n.Has("a/b/c") || n.Has("a/x") {
		t.Error("Has misbehaves")
	}
	if _, ok := n.Get("nope"); ok {
		t.Error("Get should miss")
	}
}

func TestDump(t *testing.T) {
	n := NewNode()
	n.Set("state/cycle", 3)
	n.SetExternal("fields/v/values", make([]float64, 10))
	d := n.Dump()
	if !strings.Contains(d, "cycle") || !strings.Contains(d, "float64[10] (external)") {
		t.Errorf("dump = %q", d)
	}
}

func TestArbitraryPathsRoundTrip(t *testing.T) {
	f := func(a, b uint8, v int64) bool {
		n := NewNode()
		path := "p" + string(rune('a'+a%26)) + "/" + "q" + string(rune('a'+b%26))
		n.Set(path, int(v))
		got, err := n.Int(path)
		return err == nil && got == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
