package baseline

import (
	"math"
	"sort"
	"time"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// VolStats reports a comparator volume render with the paper's Table 9
// phase split: screen-space transform (SS), sampling (S), compositing (C).
type VolStats struct {
	ScreenSpace time.Duration
	Sampling    time.Duration
	Composite   time.Duration
	Sort        time.Duration // HAVS only
	Total       time.Duration
}

// commonTF is shared by the comparator renderers so pictures match the
// DPP volume renderer's.
func commonTF() *framebuffer.TransferFunction {
	return framebuffer.DefaultTransferFunction()
}

// projectTets transforms tet vertices to screen space with linear depth,
// mirroring the DPP unstructured renderer's projection so the comparators
// sample the same screen-space geometry.
func projectTets(m *mesh.TetMesh, cam render.Camera, w, h int) (sx, sy, sz []float64, ok []bool) {
	matrix := cam.Normalized().Matrix(w, h)
	view := vecmath.LookAt(cam.Normalized().Position, cam.Normalized().LookAt, cam.Normalized().Up)
	n := m.NumVertices()
	sx = make([]float64, n)
	sy = make([]float64, n)
	sz = make([]float64, n)
	ok = make([]bool, n)
	dlo, dhi := math.Inf(1), math.Inf(-1)
	for v := 0; v < n; v++ {
		p, pw := matrix.TransformPoint(m.Vertex(int32(v)))
		vp, _ := view.TransformPoint(m.Vertex(int32(v)))
		if pw <= 0 || vp.Z >= 0 {
			continue
		}
		ok[v] = true
		sx[v], sy[v] = p.X, p.Y
		d := -vp.Z
		sz[v] = d
		dlo = math.Min(dlo, d)
		dhi = math.Max(dhi, d)
	}
	if dhi > dlo {
		inv := 1 / (dhi - dlo)
		for v := 0; v < n; v++ {
			if ok[v] {
				sz[v] = (sz[v] - dlo) * inv
			}
		}
	}
	return sx, sy, sz, ok
}

// HAVS is the hardware-assisted-visibility-sorting analogue: tetrahedra
// are depth-sorted with a GPU-style radix sort (as in the paper, which
// replaced HAVS's CPU sort with a measured GPU radix sort) and splatted
// in visibility order with ordered blending.
type HAVS struct {
	Mesh *mesh.TetMesh
	Dev  *device.Device
}

// Render produces the image and phase timings.
func (hv *HAVS) Render(cam render.Camera, w, h, samplesZ int) (*framebuffer.Image, VolStats, error) {
	var st VolStats
	total := time.Now()
	m := hv.Mesh
	tf := commonTF()
	norm := render.Normalizer{Min: m.ScalarMin, Max: m.ScalarMax}
	img := framebuffer.NewImage(w, h)
	ntets := m.NumTets()
	if ntets == 0 {
		st.Total = time.Since(total)
		return img, st, nil
	}

	start := time.Now()
	sx, sy, sz, okv := projectTets(m, cam, w, h)
	st.ScreenSpace = time.Since(start)

	// Depth sort by centroid with the parallel radix sort.
	start = time.Now()
	keys := make([]uint32, ntets)
	ids := make([]int32, ntets)
	for t := 0; t < ntets; t++ {
		var depth float64
		valid := true
		for c := 0; c < 4; c++ {
			v := m.Conn[4*t+c]
			if !okv[v] {
				valid = false
				break
			}
			depth += sz[v]
		}
		if !valid {
			keys[t] = math.MaxUint32
		} else {
			keys[t] = uint32(depth / 4 * float64(1<<30))
		}
		ids[t] = int32(t)
	}
	dpp.SortPairs32(hv.Dev, keys, ids)
	st.Sort = time.Since(start)

	// Splat in front-to-back order with the under operator; the ordered
	// serial blend is what the k-buffer guarantees in HAVS.
	start = time.Now()
	dz := 1.0 / float64(samplesZ)
	refStep := 1.0 / 200
	accum := img.Color
	for _, id := range ids {
		t := int(id)
		if keys[t] == math.MaxUint32 && false {
			continue
		}
		valid := true
		var xs, ys, zs, ss [4]float64
		for c := 0; c < 4; c++ {
			v := m.Conn[4*t+c]
			if !okv[v] {
				valid = false
				break
			}
			xs[c], ys[c], zs[c], ss[c] = sx[v], sy[v], sz[v], m.Scalars[v]
		}
		if !valid {
			continue
		}
		splatTet(xs, ys, zs, ss, accum, img.Depth, w, h, dz, refStep, tf, norm)
	}
	st.Sampling = time.Since(start)
	st.Composite = 0 // blending is fused into the splat loop
	st.Total = time.Since(total)
	return img, st, nil
}

// splatTet samples one screen-space tet over its bbox, blending into the
// accumulation buffer with the under operator.
func splatTet(xs, ys, zs, ss [4]float64, accum []float32, depth []float32, w, h int, dz, refStep float64, tf *framebuffer.TransferFunction, norm render.Normalizer) {
	minX := maxInt(int(math.Floor(minOf4(xs))), 0)
	maxX := minInt(int(math.Ceil(maxOf4(xs))), w-1)
	minY := maxInt(int(math.Floor(minOf4(ys))), 0)
	maxY := minInt(int(math.Ceil(maxOf4(ys))), h-1)
	if minX > maxX || minY > maxY {
		return
	}
	var mm [9]float64
	mm[0], mm[1], mm[2] = xs[1]-xs[0], xs[2]-xs[0], xs[3]-xs[0]
	mm[3], mm[4], mm[5] = ys[1]-ys[0], ys[2]-ys[0], ys[3]-ys[0]
	mm[6], mm[7], mm[8] = zs[1]-zs[0], zs[2]-zs[0], zs[3]-zs[0]
	inv, ok := invert3(mm)
	if !ok {
		return
	}
	zlo := minOf4(zs)
	zhi := maxOf4(zs)
	slo := int(math.Ceil(zlo / dz))
	shi := int(math.Floor(zhi / dz))
	for py := minY; py <= maxY; py++ {
		fy := float64(py) + 0.5
		for px := minX; px <= maxX; px++ {
			p := py*w + px
			a := float64(accum[4*p+3])
			if a >= 0.99 {
				continue
			}
			fx := float64(px) + 0.5
			for s := slo; s <= shi; s++ {
				fz := float64(s) * dz
				rx, ry, rz := fx-xs[0], fy-ys[0], fz-zs[0]
				b1 := inv[0]*rx + inv[1]*ry + inv[2]*rz
				b2 := inv[3]*rx + inv[4]*ry + inv[5]*rz
				b3 := inv[6]*rx + inv[7]*ry + inv[8]*rz
				b0 := 1 - b1 - b2 - b3
				if b0 < 0 || b1 < 0 || b2 < 0 || b3 < 0 {
					continue
				}
				val := b0*ss[0] + b1*ss[1] + b2*ss[2] + b3*ss[3]
				sr, sg, sb, sa := tf.Sample(norm.Normalize(val))
				if sa <= 0 {
					continue
				}
				sa = 1 - math.Pow(1-sa, dz/refStep)
				wgt := (1 - a) * sa
				accum[4*p+0] += float32(wgt * sr)
				accum[4*p+1] += float32(wgt * sg)
				accum[4*p+2] += float32(wgt * sb)
				a += wgt
				if float32(fz) < depth[p] {
					depth[p] = float32(fz)
				}
			}
			accum[4*p+3] = float32(a)
		}
	}
}

// Bunyk is the connectivity ray-caster analogue: a serial unstructured
// ray caster that precomputes tet face adjacency (the preprocessing the
// paper excludes from its timings) and marches rays cell to cell.
type Bunyk struct {
	Mesh *mesh.TetMesh
	// neighbors[4*t+f] is the tet sharing face f of tet t, or -1.
	neighbors []int32
	// boundary lists (tet, face) pairs with no neighbor.
	boundary [][2]int32
	// PreprocessTime is the connectivity build (excluded from renders).
	PreprocessTime time.Duration
}

// tetFaceCorners lists each face's three local corners.
var tetFaceCorners = [4][3]int{{1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}}

// NewBunyk builds face connectivity.
func NewBunyk(m *mesh.TetMesh) *Bunyk {
	start := time.Now()
	b := &Bunyk{Mesh: m}
	ntets := m.NumTets()
	b.neighbors = make([]int32, 4*ntets)
	for i := range b.neighbors {
		b.neighbors[i] = -1
	}
	type faceID [3]int32
	canon := func(a, bb, c int32) faceID {
		f := faceID{a, bb, c}
		if f[0] > f[1] {
			f[0], f[1] = f[1], f[0]
		}
		if f[1] > f[2] {
			f[1], f[2] = f[2], f[1]
		}
		if f[0] > f[1] {
			f[0], f[1] = f[1], f[0]
		}
		return f
	}
	seen := make(map[faceID][2]int32, 2*ntets)
	for t := 0; t < ntets; t++ {
		for f := 0; f < 4; f++ {
			fc := tetFaceCorners[f]
			key := canon(m.Conn[4*t+fc[0]], m.Conn[4*t+fc[1]], m.Conn[4*t+fc[2]])
			if prev, ok := seen[key]; ok {
				b.neighbors[4*t+f] = prev[0]
				b.neighbors[4*int(prev[0])+int(prev[1])] = int32(t)
				delete(seen, key)
			} else {
				seen[key] = [2]int32{int32(t), int32(f)}
			}
		}
	}
	for _, tf := range seen {
		b.boundary = append(b.boundary, tf)
	}
	sort.Slice(b.boundary, func(i, j int) bool {
		if b.boundary[i][0] != b.boundary[j][0] {
			return b.boundary[i][0] < b.boundary[j][0]
		}
		return b.boundary[i][1] < b.boundary[j][1]
	})
	b.PreprocessTime = time.Since(start)
	return b
}

// Render ray-casts the mesh serially (the comparator is single threaded,
// as in the paper's study).
func (b *Bunyk) Render(cam render.Camera, w, h, samplesZ int) (*framebuffer.Image, VolStats, error) {
	var st VolStats
	total := time.Now()
	m := b.Mesh
	tf := commonTF()
	norm := render.Normalizer{Min: m.ScalarMin, Max: m.ScalarMax}
	img := framebuffer.NewImage(w, h)
	if m.NumTets() == 0 {
		st.Total = time.Since(total)
		return img, st, nil
	}
	diag := m.Bounds().Diagonal().Length()
	step := diag / float64(samplesZ)
	refStep := diag / 200

	start := time.Now()
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			ray := cam.Ray(float64(px), float64(py), 0.5, 0.5, w, h)
			b.castRay(ray, img, px, py, step, refStep, tf, norm)
		}
	}
	st.Sampling = time.Since(start)
	st.Total = time.Since(total)
	return img, st, nil
}

// castRay finds the entry tet through the boundary and marches.
func (b *Bunyk) castRay(ray vecmath.Ray, img *framebuffer.Image, px, py int, step, refStep float64, tf *framebuffer.TransferFunction, norm render.Normalizer) {
	m := b.Mesh
	// Entry search over boundary faces (the comparator's known cost).
	bestT := math.Inf(1)
	entry := int32(-1)
	for _, tface := range b.boundary {
		t, f := tface[0], tface[1]
		fc := tetFaceCorners[f]
		a := m.Vertex(m.Conn[4*t+int32(fc[0])])
		bb := m.Vertex(m.Conn[4*t+int32(fc[1])])
		c := m.Vertex(m.Conn[4*t+int32(fc[2])])
		if tt, _, _, ok := bvhIntersectTri(ray.Orig, ray.Dir, a, bb, c); ok && tt > 1e-9 && tt < bestT {
			bestT = tt
			entry = t
		}
	}
	if entry < 0 {
		return
	}
	var cr, cg, cb, ca float64
	firstT := float32(framebuffer.MaxDepth)
	cur := entry
	t := bestT + step/2
	for steps := 0; steps < 100000; steps++ {
		pos := ray.At(t)
		bary, inside := tetBary(m, cur, pos)
		if !inside {
			// Move to the neighbor across the most-violated face.
			worst, wf := 0.0, -1
			for f := 0; f < 4; f++ {
				if bary[f] < worst {
					worst = bary[f]
					wf = f
				}
			}
			if wf < 0 {
				break
			}
			next := b.neighbors[4*cur+int32(wf)]
			if next < 0 {
				break // exited the mesh
			}
			cur = next
			continue
		}
		val := 0.0
		for c := 0; c < 4; c++ {
			val += bary[c] * m.Scalars[m.Conn[4*cur+int32(c)]]
		}
		sr, sg, sb, sa := tf.Sample(norm.Normalize(val))
		if sa > 0 {
			sa = 1 - math.Pow(1-sa, step/refStep)
			wgt := (1 - ca) * sa
			cr += wgt * sr
			cg += wgt * sg
			cb += wgt * sb
			ca += wgt
			if firstT == framebuffer.MaxDepth {
				firstT = float32(t)
			}
			if ca >= 0.99 {
				break
			}
		}
		t += step
	}
	if ca > 0 {
		img.Set(px, py, float32(cr), float32(cg), float32(cb), float32(ca), firstT)
	}
}

// tetBary computes barycentric coordinates of pos in world-space tet t.
func tetBary(m *mesh.TetMesh, t int32, pos vecmath.Vec3) ([4]float64, bool) {
	v0 := m.Vertex(m.Conn[4*t])
	v1 := m.Vertex(m.Conn[4*t+1])
	v2 := m.Vertex(m.Conn[4*t+2])
	v3 := m.Vertex(m.Conn[4*t+3])
	var mm [9]float64
	mm[0], mm[1], mm[2] = v1.X-v0.X, v2.X-v0.X, v3.X-v0.X
	mm[3], mm[4], mm[5] = v1.Y-v0.Y, v2.Y-v0.Y, v3.Y-v0.Y
	mm[6], mm[7], mm[8] = v1.Z-v0.Z, v2.Z-v0.Z, v3.Z-v0.Z
	inv, ok := invert3(mm)
	if !ok {
		return [4]float64{}, false
	}
	rx, ry, rz := pos.X-v0.X, pos.Y-v0.Y, pos.Z-v0.Z
	b1 := inv[0]*rx + inv[1]*ry + inv[2]*rz
	b2 := inv[3]*rx + inv[4]*ry + inv[5]*rz
	b3 := inv[6]*rx + inv[7]*ry + inv[8]*rz
	b0 := 1 - b1 - b2 - b3
	bary := [4]float64{b0, b1, b2, b3}
	const eps = -1e-9
	return bary, b0 >= eps && b1 >= eps && b2 >= eps && b3 >= eps
}

// VisItVR is the sampling comparator: the serial three-phase pipeline
// (screen-space transform, sampling, compositing) with per-phase timing,
// matching Table 9's SS/S/C/TOT columns.
type VisItVR struct {
	Mesh *mesh.TetMesh
}

// Render runs the serial sampling pipeline.
func (vv *VisItVR) Render(cam render.Camera, w, h, samplesZ int) (*framebuffer.Image, VolStats, error) {
	var st VolStats
	total := time.Now()
	m := vv.Mesh
	tf := commonTF()
	norm := render.Normalizer{Min: m.ScalarMin, Max: m.ScalarMax}
	img := framebuffer.NewImage(w, h)
	ntets := m.NumTets()
	if ntets == 0 {
		st.Total = time.Since(total)
		return img, st, nil
	}

	start := time.Now()
	sx, sy, sz, okv := projectTets(m, cam, w, h)
	st.ScreenSpace = time.Since(start)

	// Sampling into a full-depth sample buffer (VisIt holds all samples,
	// distributing them over nodes; serially that is one big buffer).
	start = time.Now()
	samples := make([]float32, w*h*samplesZ)
	for i := range samples {
		samples[i] = float32(math.NaN())
	}
	dz := 1.0 / float64(samplesZ)
	for t := 0; t < ntets; t++ {
		valid := true
		var xs, ys, zs, ss [4]float64
		for c := 0; c < 4; c++ {
			v := m.Conn[4*t+c]
			if !okv[v] {
				valid = false
				break
			}
			xs[c], ys[c], zs[c], ss[c] = sx[v], sy[v], sz[v], m.Scalars[v]
		}
		if !valid {
			continue
		}
		sampleTetInto(xs, ys, zs, ss, samples, w, h, samplesZ, dz)
	}
	st.Sampling = time.Since(start)

	// Compositing.
	start = time.Now()
	refStep := 1.0 / 200
	for p := 0; p < w*h; p++ {
		var cr, cg, cb, ca float64
		firstZ := float32(framebuffer.MaxDepth)
		for s := 0; s < samplesZ; s++ {
			v := samples[p*samplesZ+s]
			if v != v { // NaN
				continue
			}
			sr, sg, sb, sa := tf.Sample(norm.Normalize(float64(v)))
			if sa <= 0 {
				continue
			}
			sa = 1 - math.Pow(1-sa, dz/refStep)
			wgt := (1 - ca) * sa
			cr += wgt * sr
			cg += wgt * sg
			cb += wgt * sb
			ca += wgt
			if firstZ == framebuffer.MaxDepth {
				firstZ = float32(float64(s) * dz)
			}
			if ca >= 0.99 {
				break
			}
		}
		if ca > 0 {
			img.Set(p%w, p/w, float32(cr), float32(cg), float32(cb), float32(ca), firstZ)
		}
	}
	st.Composite = time.Since(start)
	st.Total = time.Since(total)
	return img, st, nil
}

// sampleTetInto writes a tet's samples into the full-depth buffer.
func sampleTetInto(xs, ys, zs, ss [4]float64, samples []float32, w, h, samplesZ int, dz float64) {
	minX := maxInt(int(math.Floor(minOf4(xs))), 0)
	maxX := minInt(int(math.Ceil(maxOf4(xs))), w-1)
	minY := maxInt(int(math.Floor(minOf4(ys))), 0)
	maxY := minInt(int(math.Ceil(maxOf4(ys))), h-1)
	if minX > maxX || minY > maxY {
		return
	}
	var mm [9]float64
	mm[0], mm[1], mm[2] = xs[1]-xs[0], xs[2]-xs[0], xs[3]-xs[0]
	mm[3], mm[4], mm[5] = ys[1]-ys[0], ys[2]-ys[0], ys[3]-ys[0]
	mm[6], mm[7], mm[8] = zs[1]-zs[0], zs[2]-zs[0], zs[3]-zs[0]
	inv, ok := invert3(mm)
	if !ok {
		return
	}
	slo := maxInt(int(math.Ceil(minOf4(zs)/dz)), 0)
	shi := minInt(int(math.Floor(maxOf4(zs)/dz)), samplesZ-1)
	for py := minY; py <= maxY; py++ {
		fy := float64(py) + 0.5
		for px := minX; px <= maxX; px++ {
			fx := float64(px) + 0.5
			for s := slo; s <= shi; s++ {
				fz := float64(s) * dz
				rx, ry, rz := fx-xs[0], fy-ys[0], fz-zs[0]
				b1 := inv[0]*rx + inv[1]*ry + inv[2]*rz
				b2 := inv[3]*rx + inv[4]*ry + inv[5]*rz
				b3 := inv[6]*rx + inv[7]*ry + inv[8]*rz
				b0 := 1 - b1 - b2 - b3
				if b0 < 0 || b1 < 0 || b2 < 0 || b3 < 0 {
					continue
				}
				samples[(py*w+px)*samplesZ+s] = float32(b0*ss[0] + b1*ss[1] + b2*ss[2] + b3*ss[3])
			}
		}
	}
}

// invert3 inverts a row-major 3x3 matrix.
func invert3(m [9]float64) ([9]float64, bool) {
	a, b, c := m[0], m[1], m[2]
	d, e, f := m[3], m[4], m[5]
	g, h, i := m[6], m[7], m[8]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	if math.Abs(det) < 1e-18 {
		return m, false
	}
	inv := 1 / det
	return [9]float64{
		(e*i - f*h) * inv, (c*h - b*i) * inv, (b*f - c*e) * inv,
		(f*g - d*i) * inv, (a*i - c*g) * inv, (c*d - a*f) * inv,
		(d*h - e*g) * inv, (b*g - a*h) * inv, (a*e - b*d) * inv,
	}, true
}

// bvhIntersectTri adapts the shared Moller-Trumbore test.
func bvhIntersectTri(orig, dir, a, b, c vecmath.Vec3) (float64, float64, float64, bool) {
	return intersectTriangle(orig, dir, a, b, c)
}

func intersectTriangle(orig, dir, a, b, c vecmath.Vec3) (t, u, v float64, ok bool) {
	const eps = 1e-12
	e1 := b.Sub(a)
	e2 := c.Sub(a)
	p := dir.Cross(e2)
	det := e1.Dot(p)
	if det > -eps && det < eps {
		return 0, 0, 0, false
	}
	inv := 1 / det
	s := orig.Sub(a)
	u = s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, 0, 0, false
	}
	q := s.Cross(e1)
	v = dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, 0, 0, false
	}
	return e2.Dot(q) * inv, u, v, true
}

func minOf4(v [4]float64) float64 {
	return math.Min(math.Min(v[0], v[1]), math.Min(v[2], v[3]))
}

func maxOf4(v [4]float64) float64 {
	return math.Max(math.Max(v[0], v[1]), math.Max(v[2], v[3]))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
