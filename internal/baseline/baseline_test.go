package baseline

import (
	"testing"

	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
)

func surfaceScene(t *testing.T, n int) *mesh.TriangleMesh {
	t.Helper()
	ds, err := synthdata.ByName("rm")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, n, n, n, synthdata.UnitBounds())
	m, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tetScene(t *testing.T, n int) *mesh.TetMesh {
	t.Helper()
	ds, err := synthdata.ByName("nek")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, n, n, n, synthdata.UnitBounds())
	tm, err := g.Tetrahedralize(ds.FieldName)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestTunedTracersAgreeWithDPPOnHits(t *testing.T) {
	m := surfaceScene(t, 12)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	w, h := 96, 72

	img, _, err := raytrace.New(device.CPU(), m).Render(raytrace.Options{
		Width: w, Height: h, Camera: cam, Workload: raytrace.Workload1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dppHits := img.ActivePixels()

	fast := NewFastRT(m, 2)
	fr := fast.Trace(cam, w, h)
	if fr.Rays != w*h {
		t.Errorf("fastrt rays = %d", fr.Rays)
	}
	if fr.Hits != dppHits {
		t.Errorf("fastrt hits %d != dpp %d", fr.Hits, dppHits)
	}
	if fr.MRaysPerSec() <= 0 {
		t.Error("fastrt rate missing")
	}
	if fast.BuildTime() <= 0 {
		t.Error("fastrt build time missing")
	}

	queue := NewQueueRT(m, 2)
	qr := queue.Trace(cam, w, h)
	if qr.Hits != dppHits {
		t.Errorf("queuert hits %d != dpp %d", qr.Hits, dppHits)
	}
}

func TestHAVSCoversLikeDPPVolume(t *testing.T) {
	tm := tetScene(t, 10)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.0)
	w, h := 48, 36

	ref, _, err := volume.NewUnstructured(device.CPU(), tm).Render(volume.UnstructuredOptions{
		Width: w, Height: h, Camera: cam, SamplesZ: 64,
	})
	if err != nil {
		t.Fatal(err)
	}

	hv := &HAVS{Mesh: tm, Dev: device.CPU()}
	img, st, err := hv.Render(cam, w, h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total <= 0 || st.Sort <= 0 {
		t.Errorf("missing timings: %+v", st)
	}
	assertCoverageOverlap(t, "havs", ref.Color, img.Color, w*h, 0.7)
}

func TestBunykCoversLikeDPPVolume(t *testing.T) {
	tm := tetScene(t, 8)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.0)
	w, h := 40, 30

	ref, _, err := volume.NewUnstructured(device.CPU(), tm).Render(volume.UnstructuredOptions{
		Width: w, Height: h, Camera: cam, SamplesZ: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	bk := NewBunyk(tm)
	if bk.PreprocessTime <= 0 {
		t.Error("preprocess time missing")
	}
	if len(bk.boundary) == 0 {
		t.Fatal("no boundary faces found")
	}
	// A cube of tets has 2 triangles per boundary cell face.
	img, st, err := bk.Render(cam, w, h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total <= 0 {
		t.Error("missing total time")
	}
	assertCoverageOverlap(t, "bunyk", ref.Color, img.Color, w*h, 0.7)
}

func TestVisItVRMatchesDPPVolume(t *testing.T) {
	tm := tetScene(t, 8)
	cam := render.OrbitCamera(tm.Bounds(), 30, 20, 1.0)
	w, h := 40, 30
	ref, _, err := volume.NewUnstructured(device.Serial(), tm).Render(volume.UnstructuredOptions{
		Width: w, Height: h, Camera: cam, SamplesZ: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	vv := &VisItVR{Mesh: tm}
	img, st, err := vv.Render(cam, w, h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.ScreenSpace <= 0 || st.Sampling <= 0 || st.Composite <= 0 {
		t.Errorf("phase timings missing: %+v", st)
	}
	// The VisIt-style sampler uses the same screen-space sampling grid as
	// the DPP renderer, so images should be nearly identical.
	maxDiff := float32(0)
	for i := range ref.Color {
		d := ref.Color[i] - img.Color[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.05 {
		t.Errorf("visitvr differs from DPP-VR by %v", maxDiff)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	tm := tetScene(t, 6)
	bk := NewBunyk(tm)
	for tt := 0; tt < tm.NumTets(); tt++ {
		for f := 0; f < 4; f++ {
			nb := bk.neighbors[4*tt+f]
			if nb < 0 {
				continue
			}
			// The neighbor must reference tt back through some face.
			found := false
			for g := 0; g < 4; g++ {
				if bk.neighbors[4*nb+int32(g)] == int32(tt) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: tet %d face %d -> %d", tt, f, nb)
			}
		}
	}
}

func assertCoverageOverlap(t *testing.T, name string, a, b []float32, npix int, want float64) {
	t.Helper()
	both, either := 0, 0
	for i := 0; i < npix; i++ {
		ca := a[4*i+3] > 0.02
		cb := b[4*i+3] > 0.02
		if ca || cb {
			either++
		}
		if ca && cb {
			both++
		}
	}
	if either == 0 {
		t.Fatalf("%s: no coverage", name)
	}
	if overlap := float64(both) / float64(either); overlap < want {
		t.Errorf("%s: coverage overlap %.2f < %.2f", name, overlap, want)
	}
}
