// Package baseline implements the comparator renderers of the paper's
// studies. The proprietary systems (Intel Embree, NVIDIA OptiX Prime) are
// simulated by architecture-tuned tracers that shed the data-parallel
// abstraction — fused traversal loops, SAH trees, packetized scheduling —
// so the "gap" experiments (Tables 3-5) measure the same thing the paper
// measures: hardware-agnostic DPP code against specialized code on the
// same machine. The community volume renderers (Bunyk-style connectivity
// ray casting, HAVS-style sort+blend, VisIt-style sampling) back the
// Chapter III comparisons (Figures 6-7, Table 9).
package baseline

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/bvh"
	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// TraceResult reports a Workload-1 style intersection benchmark.
type TraceResult struct {
	Elapsed time.Duration
	Rays    int
	Hits    int
}

// MRaysPerSec returns the headline rate.
func (r TraceResult) MRaysPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Rays) / r.Elapsed.Seconds() / 1e6
}

// FastRT is the Embree analogue: a CPU-tuned single-ray tracer over a
// binned-SAH BVH with a fused traversal loop (no per-primitive callbacks,
// no primitive-id indirection beyond the leaf list) and static row
// chunking per worker.
type FastRT struct {
	bvh     *bvh.BVH
	workers int
}

// NewFastRT builds the tuned tracer. Construction (SAH) is slower than
// the DPP tracer's LBVH — exactly the trade the vendors make.
func NewFastRT(m *mesh.TriangleMesh, workers int) *FastRT {
	d := device.New("fastrt", workers)
	return &FastRT{bvh: bvh.Build(d, m, bvh.SAH), workers: workers}
}

// BuildTime returns the acceleration construction time.
func (f *FastRT) BuildTime() time.Duration { return f.bvh.BuildTime }

// Trace intersects one primary ray per pixel and returns the rate.
func (f *FastRT) Trace(cam render.Camera, w, h int) TraceResult {
	start := time.Now()
	var hits int64
	var wg sync.WaitGroup
	rows := (h + f.workers - 1) / f.workers
	for wk := 0; wk < f.workers; wk++ {
		y0 := wk * rows
		y1 := minInt(y0+rows, h)
		if y0 >= y1 {
			continue
		}
		wg.Add(1)
		go func(y0, y1 int) {
			defer wg.Done()
			local := 0
			for y := y0; y < y1; y++ {
				for x := 0; x < w; x++ {
					ray := cam.Ray(float64(x), float64(y), 0.5, 0.5, w, h)
					if hit, _, _ := f.bvh.IntersectClosest(ray.Orig, ray.Dir, 1e-9, math.Inf(1)); hit.Prim >= 0 {
						local++
					}
				}
			}
			atomic.AddInt64(&hits, int64(local))
		}(y0, y1)
	}
	wg.Wait()
	return TraceResult{Elapsed: time.Since(start), Rays: w * h, Hits: int(hits)}
}

// QueueRT is the OptiX Prime analogue: persistent workers pull fixed-size
// tiles from a shared queue (the GPU's persistent-threads scheduling) and
// trace morton-coherent 8-ray packets through an SAH tree.
type QueueRT struct {
	bvh     *bvh.BVH
	workers int
}

// NewQueueRT builds the queue-scheduled tracer.
func NewQueueRT(m *mesh.TriangleMesh, workers int) *QueueRT {
	d := device.New("queuert", workers)
	return &QueueRT{bvh: bvh.Build(d, m, bvh.SAH), workers: workers}
}

// BuildTime returns the acceleration construction time.
func (q *QueueRT) BuildTime() time.Duration { return q.bvh.BuildTime }

// Trace intersects one primary ray per pixel using tile-queue scheduling
// and packet traversal.
func (q *QueueRT) Trace(cam render.Camera, w, h int) TraceResult {
	const tile = 8 // 8x8 pixel tiles, traced as 8 packets of 8 rays
	start := time.Now()
	tilesX := (w + tile - 1) / tile
	tilesY := (h + tile - 1) / tile
	total := tilesX * tilesY
	var next int64
	var hits int64
	var wg sync.WaitGroup
	for wk := 0; wk < q.workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			orig := make([]vecmath.Vec3, tile)
			dir := make([]vecmath.Vec3, tile)
			packet := make([]bvh.Hit, tile)
			local := 0
			for {
				t := int(atomic.AddInt64(&next, 1)) - 1
				if t >= total {
					break
				}
				tx := (t % tilesX) * tile
				ty := (t / tilesX) * tile
				for row := 0; row < tile; row++ {
					y := ty + row
					if y >= h {
						continue
					}
					n := 0
					for dx := 0; dx < tile; dx++ {
						x := tx + dx
						if x >= w {
							break
						}
						r := cam.Ray(float64(x), float64(y), 0.5, 0.5, w, h)
						orig[n], dir[n] = r.Orig, r.Dir
						n++
					}
					if n == 0 {
						continue
					}
					q.bvh.IntersectClosestPacket(orig[:n], dir[:n], 1e-9, packet[:n])
					for i := 0; i < n; i++ {
						if packet[i].Prim >= 0 {
							local++
						}
					}
				}
			}
			atomic.AddInt64(&hits, int64(local))
		}()
	}
	wg.Wait()
	return TraceResult{Elapsed: time.Since(start), Rays: w * h, Hits: int(hits)}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
