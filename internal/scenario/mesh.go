// Package scenario is the pluggable measurement path shared by the
// performance study, the repro table generators, and the in situ
// pipeline: one Scene describes a renderable block (parsed simulation
// data or prebuilt geometry, camera, device, field range), and
// self-registered Backends turn a Scene into frame renderers that fill
// the model inputs of §5.3. Adding a rendering technique means writing
// one Backend and registering it — the study plan samples it, model
// fitting fits it, registry snapshots carry it, and the advisor serves
// it without further changes.
package scenario

import (
	"fmt"
	"math"

	"insitu/internal/conduit"
	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

// ParsedMesh is the pipeline's view of a published conduit tree. It is
// the working representation both the in situ pipeline and the
// performance study drive their rendering from.
type ParsedMesh struct {
	Grid    *mesh.StructuredGrid // non-nil for uniform/rectilinear blocks
	X, Y, Z []float64            // explicit coordinates
	HexConn []int32              // unstructured hex connectivity
	fields  map[string]*conduit.Node
}

// ParseMesh validates the conduit mesh conventions and builds the
// pipeline's working representation (still zero-copy: slices are shared
// with the simulation).
func ParseMesh(n *conduit.Node) (*ParsedMesh, error) {
	pm := &ParsedMesh{fields: map[string]*conduit.Node{}}
	ctype, err := n.String("coords/type")
	if err != nil {
		return nil, fmt.Errorf("mesh description missing coords/type: %w", err)
	}
	switch ctype {
	case "uniform":
		ni := n.IntOr("coords/dims/i", 0)
		nj := n.IntOr("coords/dims/j", 0)
		nk := n.IntOr("coords/dims/k", 0)
		if ni < 2 || nj < 2 || nk < 2 {
			return nil, fmt.Errorf("uniform coords need dims >= 2, got %dx%dx%d", ni, nj, nk)
		}
		g := &mesh.StructuredGrid{
			Nx: ni, Ny: nj, Nz: nk,
			Origin: vecmath.V(
				n.FloatOr("coords/origin/x", 0),
				n.FloatOr("coords/origin/y", 0),
				n.FloatOr("coords/origin/z", 0)),
			Spacing: vecmath.V(
				n.FloatOr("coords/spacing/dx", 1),
				n.FloatOr("coords/spacing/dy", 1),
				n.FloatOr("coords/spacing/dz", 1)),
			Fields: map[string]*mesh.Field{},
		}
		pm.Grid = g
	case "rectilinear":
		xs, err := n.Float64Slice("coords/x")
		if err != nil {
			return nil, err
		}
		ys, err := n.Float64Slice("coords/y")
		if err != nil {
			return nil, err
		}
		zs, err := n.Float64Slice("coords/z")
		if err != nil {
			return nil, err
		}
		pm.Grid = mesh.NewRectilinearGrid(xs, ys, zs)
	case "explicit":
		pm.X, err = n.Float64Slice("coords/x")
		if err != nil {
			return nil, err
		}
		pm.Y, err = n.Float64Slice("coords/y")
		if err != nil {
			return nil, err
		}
		pm.Z, err = n.Float64Slice("coords/z")
		if err != nil {
			return nil, err
		}
		shape := n.StringOr("topology/elements/shape", "")
		if shape != "hexs" {
			return nil, fmt.Errorf("explicit topology shape %q unsupported (want hexs)", shape)
		}
		pm.HexConn, err = n.Int32Slice("topology/elements/connectivity")
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown coords/type %q", ctype)
	}

	fieldsNode, ok := n.Get("fields")
	if !ok {
		return nil, fmt.Errorf("mesh description has no fields")
	}
	for _, name := range fieldsNode.Children() {
		pm.fields[name] = fieldsNode.Child(name)
	}
	return pm, nil
}

// FieldValues returns a field's values as vertex-associated data,
// averaging element fields onto vertices when necessary.
func (pm *ParsedMesh) FieldValues(name string) ([]float64, error) {
	fn, ok := pm.fields[name]
	if !ok {
		names := make([]string, 0, len(pm.fields))
		for k := range pm.fields {
			names = append(names, k)
		}
		return nil, fmt.Errorf("no field %q (have %v)", name, names)
	}
	vals, err := fn.Float64Slice("values")
	if err != nil {
		return nil, err
	}
	assoc := fn.StringOr("association", "vertex")
	if assoc == "vertex" {
		return vals, nil
	}
	// Element-centered data: average to vertices.
	if pm.HexConn != nil {
		return mesh.ElementToVertex(len(pm.X), pm.HexConn, vals)
	}
	if pm.Grid != nil {
		return elementToVertexStructured(pm.Grid, vals)
	}
	return nil, fmt.Errorf("field %q: cannot convert element data without topology", name)
}

// elementToVertexStructured averages a cell field to grid points.
func elementToVertexStructured(g *mesh.StructuredGrid, vals []float64) ([]float64, error) {
	if len(vals) != g.NumCells() {
		return nil, fmt.Errorf("element field has %d values for %d cells", len(vals), g.NumCells())
	}
	conn := g.HexConnectivity()
	return mesh.ElementToVertex(g.NumPoints(), conn, vals)
}

// LocalBounds returns the block's spatial bounds.
func (pm *ParsedMesh) LocalBounds() vecmath.AABB {
	if pm.Grid != nil {
		return pm.Grid.Bounds()
	}
	b := vecmath.EmptyAABB()
	for i := range pm.X {
		b = b.ExpandPoint(vecmath.V(pm.X[i], pm.Y[i], pm.Z[i]))
	}
	return b
}

// Surface extracts the renderable boundary triangles of the block.
func (pm *ParsedMesh) Surface(fieldName string, vals []float64) (*mesh.TriangleMesh, error) {
	if pm.Grid != nil {
		name := fieldName + "__vertex"
		if err := pm.Grid.AddField(name, mesh.VertexAssoc, vals); err != nil {
			return nil, err
		}
		return pm.Grid.ExternalFaces(name)
	}
	return mesh.ExternalFacesFromHexes(pm.X, pm.Y, pm.Z, pm.HexConn, vals)
}

// TetVolume tetrahedralizes the block for unstructured volume rendering:
// six conforming tets per hex cell, for structured and explicit blocks
// alike. vals are the vertex-associated scalars.
func (pm *ParsedMesh) TetVolume(fieldName string, vals []float64) (*mesh.TetMesh, error) {
	if pm.Grid != nil {
		name := fieldName + "__vertex"
		if err := pm.Grid.AddField(name, mesh.VertexAssoc, vals); err != nil {
			return nil, err
		}
		return pm.Grid.Tetrahedralize(name)
	}
	return mesh.TetMeshFromHexes(pm.X, pm.Y, pm.Z, pm.HexConn, vals)
}

// FieldRange scans vertex scalars for the color-map range, skipping
// non-finite values so a single Inf/NaN sample (a blown-up cell, a
// division artifact) cannot poison the global scalar range — and with
// it every AP-derived model term fitted downstream. An all-non-finite
// (or empty) field falls back to the unit range.
func FieldRange(vals []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi >= lo) {
		return 0, 1
	}
	return lo, hi
}
