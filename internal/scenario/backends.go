package scenario

import (
	"fmt"
	"time"

	"insitu/internal/composite"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/render/raster"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
)

// VolumeUnstructured names the tetrahedral volume backend — the first
// technique added through the scenario seam rather than wired by hand
// through study, repro, and advisor. Its model is c0*O + c1*(AP*SPR) +
// c2 over tetrahedra.
const VolumeUnstructured core.Renderer = "volume-unstructured"

func init() {
	MustRegister(raytraceBackend{})
	MustRegister(rasterBackend{})
	MustRegister(volumeBackend{})
	MustRegister(volumeUnstructuredBackend{})
}

// coreSpec returns the core-registered model spec of a built-in
// renderer, keeping core's init the single source of truth for the
// paper's model forms (Register verifies a backend's declared spec
// against the registered one, so the two can never drift).
func coreSpec(r core.Renderer) core.RendererSpec {
	spec, ok := core.LookupRenderer(r)
	if !ok {
		panic(fmt.Sprintf("scenario: core model spec for %q missing", r))
	}
	return spec
}

// --- ray tracing ---

type raytraceBackend struct{}

func (raytraceBackend) Name() core.Renderer { return core.RayTrace }

func (raytraceBackend) Model() core.RendererSpec { return coreSpec(core.RayTrace) }

func (raytraceBackend) CompositeOp() composite.Op { return composite.DepthOp }
func (raytraceBackend) NeedsStructured() bool     { return false }

func (raytraceBackend) Prepare(sc *Scene) (FrameRunner, error) {
	tri, err := sc.SurfaceMesh()
	if err != nil {
		return nil, err
	}
	raytrace.New(sc.Dev, tri) // warm-up build (cold-cache effects)
	rdr := raytrace.New(sc.Dev, tri)
	wl := raytrace.Workload(sc.RTWorkload)
	if wl == 0 {
		wl = raytrace.Workload2
	}
	return &raytraceRunner{
		rdr: rdr,
		opts: raytrace.Options{
			Width: sc.Width, Height: sc.Height,
			Camera: sc.Camera, Workload: wl,
			// The full pipeline uses its complete feature set, matching
			// cmd/render's historical workload-3 configuration.
			Compaction:  wl == raytrace.Workload3,
			Supersample: wl == raytrace.Workload3,
		},
	}, nil
}

type raytraceRunner struct {
	rdr  *raytrace.Renderer
	opts raytrace.Options
}

func (r *raytraceRunner) BuildSeconds() float64       { return r.rdr.BVH.BuildTime.Seconds() }
func (r *raytraceRunner) SetCamera(cam render.Camera) { r.opts.Camera = cam }

//insitu:arena
func (r *raytraceRunner) RenderFrame(in *core.Inputs) (time.Duration, *framebuffer.Image, error) {
	start := time.Now()
	img, st, err := r.rdr.Render(r.opts)
	if err != nil {
		return 0, nil, err
	}
	in.O = float64(st.Objects)
	in.AP = float64(st.ActivePixels)
	return time.Since(start), img, nil
}

// --- rasterization ---

type rasterBackend struct{}

func (rasterBackend) Name() core.Renderer { return core.Raster }

func (rasterBackend) Model() core.RendererSpec { return coreSpec(core.Raster) }

func (rasterBackend) CompositeOp() composite.Op { return composite.DepthOp }
func (rasterBackend) NeedsStructured() bool     { return false }

func (rasterBackend) Prepare(sc *Scene) (FrameRunner, error) {
	tri, err := sc.SurfaceMesh()
	if err != nil {
		return nil, err
	}
	return &rasterRunner{
		rdr:  raster.New(sc.Dev, tri),
		opts: raster.Options{Width: sc.Width, Height: sc.Height, Camera: sc.Camera},
	}, nil
}

type rasterRunner struct {
	rdr  *raster.Renderer
	opts raster.Options
}

func (r *rasterRunner) BuildSeconds() float64       { return 0 }
func (r *rasterRunner) SetCamera(cam render.Camera) { r.opts.Camera = cam }

//insitu:arena
func (r *rasterRunner) RenderFrame(in *core.Inputs) (time.Duration, *framebuffer.Image, error) {
	start := time.Now()
	img, st, err := r.rdr.Render(r.opts)
	if err != nil {
		return 0, nil, err
	}
	in.O = float64(st.Objects)
	in.AP = float64(st.ActivePixels)
	in.VO = float64(st.VisibleObjects)
	in.PPT = st.PPT()
	return time.Since(start), img, nil
}

// --- structured volume rendering ---

type volumeBackend struct{}

func (volumeBackend) Name() core.Renderer { return core.Volume }

func (volumeBackend) Model() core.RendererSpec { return coreSpec(core.Volume) }

func (volumeBackend) CompositeOp() composite.Op { return composite.BlendOp }
func (volumeBackend) NeedsStructured() bool     { return true }

func (volumeBackend) Prepare(sc *Scene) (FrameRunner, error) {
	g := sc.Grid()
	if g == nil {
		return nil, fmt.Errorf("scenario: %q needs a structured block", core.Volume)
	}
	if _, ok := g.Fields[sc.FieldName]; !ok {
		if err := g.AddField(sc.FieldName, mesh.VertexAssoc, sc.Values); err != nil {
			return nil, err
		}
	}
	vr, err := volume.NewStructured(sc.Dev, g, sc.FieldName)
	if err != nil {
		return nil, err
	}
	lo, hi := sc.FieldRange()
	return &volumeRunner{
		rdr: vr,
		opts: volume.StructuredOptions{
			Width: sc.Width, Height: sc.Height,
			Camera: sc.Camera, FieldRange: [2]float64{lo, hi},
			Samples: sc.SamplesZ,
		},
	}, nil
}

type volumeRunner struct {
	rdr  *volume.StructuredRenderer
	opts volume.StructuredOptions
}

func (r *volumeRunner) BuildSeconds() float64       { return 0 }
func (r *volumeRunner) SetCamera(cam render.Camera) { r.opts.Camera = cam }

//insitu:arena
func (r *volumeRunner) RenderFrame(in *core.Inputs) (time.Duration, *framebuffer.Image, error) {
	start := time.Now()
	img, st, err := r.rdr.Render(r.opts)
	if err != nil {
		return 0, nil, err
	}
	in.O = float64(st.Objects)
	in.AP = float64(st.ActivePixels)
	in.SPR = st.SPR()
	in.CS = float64(st.CellsSpanned)
	return time.Since(start), img, nil
}

// --- unstructured (tetrahedral) volume rendering ---

type volumeUnstructuredBackend struct{}

func (volumeUnstructuredBackend) Name() core.Renderer { return VolumeUnstructured }

// uvrTerms is the unstructured volume model: T = c0*O + c1*(AP*SPR) + c2,
// linear in the tet count (every tet is projected and pass-selected) and
// in the samples taken along active rays.
func uvrTerms(in core.Inputs) []float64 { return []float64{in.O, in.AP * in.SPR, 1} }

func (volumeUnstructuredBackend) Model() core.RendererSpec {
	return core.RendererSpec{
		Name:  VolumeUnstructured,
		Terms: uvrTerms,
		// Six tetrahedra per hex cell of an N^3 block.
		Objects: func(n float64) float64 { return 6 * n * n * n },
	}
}

func (volumeUnstructuredBackend) CompositeOp() composite.Op { return composite.BlendOp }
func (volumeUnstructuredBackend) NeedsStructured() bool     { return false }

func (volumeUnstructuredBackend) Prepare(sc *Scene) (FrameRunner, error) {
	tm, err := sc.TetMesh()
	if err != nil {
		return nil, err
	}
	lo, hi := sc.FieldRange()
	return &volumeUnstructuredRunner{
		rdr: volume.NewUnstructured(sc.Dev, tm),
		opts: volume.UnstructuredOptions{
			Width: sc.Width, Height: sc.Height,
			Camera: sc.Camera, FieldRange: [2]float64{lo, hi},
			SamplesZ: sc.SamplesZ,
		},
	}, nil
}

type volumeUnstructuredRunner struct {
	rdr  *volume.UnstructuredRenderer
	opts volume.UnstructuredOptions
}

func (r *volumeUnstructuredRunner) BuildSeconds() float64       { return 0 }
func (r *volumeUnstructuredRunner) SetCamera(cam render.Camera) { r.opts.Camera = cam }

//insitu:arena
func (r *volumeUnstructuredRunner) RenderFrame(in *core.Inputs) (time.Duration, *framebuffer.Image, error) {
	start := time.Now()
	img, st, err := r.rdr.Render(r.opts)
	if err != nil {
		return 0, nil, err
	}
	in.O = float64(st.Objects)
	in.AP = float64(st.ActivePixels)
	if st.ActivePixels > 0 {
		in.SPR = float64(st.TotalSamples) / float64(st.ActivePixels)
	} else {
		in.SPR = 0
	}
	return time.Since(start), img, nil
}
