package scenario

import (
	"testing"

	"insitu/internal/core"
)

// BenchmarkScenarioDispatch measures the steady-state frame cost through
// the pluggable seam — registry lookup and scene preparation happen once
// (as they do for a real plan point, where one runner renders many
// frames), then each iteration renders one frame through the backend's
// FrameRunner. A warm-up frame before the timer pays the one-time arena
// allocations, so allocs/op reports the steady state, which the pooled
// renderers keep at zero.
func BenchmarkScenarioDispatch(b *testing.B) {
	for _, name := range Names() {
		backend, err := Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		sc := simScene(b, "kripke", 8, 32)
		if backend.NeedsStructured() && !sc.Structured() {
			continue
		}
		b.Run(string(name), func(b *testing.B) {
			runner, err := backend.Prepare(sc)
			if err != nil {
				b.Fatal(err)
			}
			var in core.Inputs
			if _, _, err := runner.RenderFrame(&in); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := runner.RenderFrame(&in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
