package scenario

import (
	"testing"

	"insitu/internal/core"
)

// BenchmarkScenarioDispatch measures the cost of the pluggable seam
// itself — registry lookup, scene preparation, one frame — at a tiny
// image size, so regressions in the dispatch path (as opposed to the
// renderers behind it) show up in isolation.
func BenchmarkScenarioDispatch(b *testing.B) {
	for _, name := range Names() {
		backend, err := Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		sc := simScene(b, "kripke", 8, 32)
		if backend.NeedsStructured() && !sc.Structured() {
			continue
		}
		b.Run(string(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bk, err := Lookup(name)
				if err != nil {
					b.Fatal(err)
				}
				runner, err := bk.Prepare(sc)
				if err != nil {
					b.Fatal(err)
				}
				var in core.Inputs
				if _, _, err := runner.RenderFrame(&in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
