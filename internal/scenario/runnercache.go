package scenario

import (
	"sync"
)

// RunnerCache keeps prepared FrameRunners alive across requests so a
// serving path pays scene preparation — simulation stepping, geometry
// extraction, acceleration-structure builds, device worker-pool spin-up —
// once per distinct configuration instead of once per frame. FrameRunners
// are not safe for concurrent use, so the cache hands out exclusive
// leases: a second request for the same key blocks until the first
// releases it (frames of one configuration serialize on its runner, which
// also keeps the runner's frame arenas warm), while requests for
// different keys proceed in parallel.
//
// Capacity is a soft bound on *idle* runners: when the cache holds more
// entries than cap, the least recently released idle entry is closed and
// dropped. Entries currently leased (or awaited) are never evicted, so
// the live count can exceed cap under load and shrinks back as leases
// return.
type RunnerCache[K comparable] struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries map[K]*runnerEntry[K]
	closed  bool
}

type runnerEntry[K comparable] struct {
	key K
	// mu serializes preparation and rendering on this entry; it is held
	// for the lifetime of a lease.
	mu       sync.Mutex
	runner   FrameRunner
	close    func()
	prepared bool
	// pins counts leases held or awaited; only pins==0 entries may be
	// evicted. lastUsed orders idle entries for LRU eviction.
	pins     int
	lastUsed uint64
}

// RunnerLease is exclusive access to one cached runner. Release it when
// the frame is done; the runner stays cached for the next request.
type RunnerLease[K comparable] struct {
	cache *RunnerCache[K]
	entry *runnerEntry[K]
}

// Runner returns the leased frame runner.
func (l *RunnerLease[K]) Runner() FrameRunner { return l.entry.runner }

// Release returns the runner to the cache and triggers idle eviction if
// the cache is over capacity.
func (l *RunnerLease[K]) Release() {
	l.entry.mu.Unlock()
	l.cache.release(l.entry)
}

// NewRunnerCache returns a cache keeping up to cap idle runners (cap < 1
// keeps 1: a cache that closed every runner immediately would defeat its
// purpose).
func NewRunnerCache[K comparable](cap int) *RunnerCache[K] {
	if cap < 1 {
		cap = 1
	}
	return &RunnerCache[K]{cap: cap, entries: map[K]*runnerEntry[K]{}}
}

// Acquire leases the runner for key, preparing it with prepare on first
// use. prepare returns the runner and a close hook releasing whatever
// backs it (typically the scene's device). Preparation happens outside
// the cache lock but inside the entry's, so concurrent requests for one
// key prepare exactly once and requests for other keys are not stalled
// behind a slow preparation. A failed preparation is not cached: the
// error propagates and the next Acquire retries.
func (c *RunnerCache[K]) Acquire(key K, prepare func() (FrameRunner, func(), error)) (*RunnerLease[K], error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errRunnerCacheClosed
	}
	e, ok := c.entries[key]
	if !ok {
		e = &runnerEntry[K]{key: key}
		c.entries[key] = e
	}
	e.pins++
	c.mu.Unlock()

	e.mu.Lock()
	if !e.prepared {
		runner, closeFn, err := prepare()
		if err != nil {
			e.mu.Unlock()
			c.mu.Lock()
			e.pins--
			// Drop the failed entry only if no other waiter is about to
			// retry preparation through it.
			if e.pins == 0 && c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			return nil, err
		}
		e.runner, e.close, e.prepared = runner, closeFn, true
	}
	return &RunnerLease[K]{cache: c, entry: e}, nil
}

// release unpins the entry and evicts over-capacity idle runners.
func (c *RunnerCache[K]) release(e *runnerEntry[K]) {
	var closers []func()
	c.mu.Lock()
	e.pins--
	c.seq++
	e.lastUsed = c.seq
	for len(c.entries) > c.cap {
		victim := c.victimLocked()
		if victim == nil {
			break
		}
		delete(c.entries, victim.key)
		if victim.close != nil {
			closers = append(closers, victim.close)
		}
	}
	c.mu.Unlock()
	for _, fn := range closers {
		fn()
	}
}

// victimLocked returns the least recently used idle entry, or nil when
// every entry is pinned.
func (c *RunnerCache[K]) victimLocked() *runnerEntry[K] {
	var victim *runnerEntry[K]
	for _, e := range c.entries {
		if e.pins > 0 || !e.prepared {
			continue
		}
		if victim == nil || e.lastUsed < victim.lastUsed {
			victim = e
		}
	}
	return victim
}

// Len returns the number of cached entries (leased and idle).
func (c *RunnerCache[K]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Close drops every idle runner and refuses further Acquires. Leased
// runners are closed by their eventual release path only if the caller
// re-Closes; in practice servers stop accepting work before Close.
func (c *RunnerCache[K]) Close() {
	var closers []func()
	c.mu.Lock()
	c.closed = true
	for k, e := range c.entries {
		if e.pins > 0 {
			continue
		}
		delete(c.entries, k)
		if e.close != nil {
			closers = append(closers, e.close)
		}
	}
	c.mu.Unlock()
	for _, fn := range closers {
		fn()
	}
}

type runnerCacheError string

func (e runnerCacheError) Error() string { return string(e) }

const errRunnerCacheClosed = runnerCacheError("scenario: runner cache closed")
