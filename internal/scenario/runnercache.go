package scenario

import (
	"sync"
)

// RunnerCache keeps prepared FrameRunners alive across requests so a
// serving path pays scene preparation — simulation stepping, geometry
// extraction, acceleration-structure builds, device worker-pool spin-up —
// once per distinct configuration instead of once per frame. FrameRunners
// are not safe for concurrent use, so the cache hands out exclusive
// leases: a second request for the same key blocks until the first
// releases it (frames of one configuration serialize on its runner, which
// also keeps the runner's frame arenas warm), while requests for
// different keys proceed in parallel. Lease handoff under contention is
// first-come-first-served in the long run (sync.Mutex starvation mode
// hands the lock to the longest waiter once it has waited ~1ms, and
// render-bound leases are held for milliseconds), which is the fairness
// property the session manager's starvation guarantee rests on.
//
// Capacity is a soft bound on *idle* runners: when the cache holds more
// entries than cap, the least recently released idle entry is closed and
// dropped. Entries currently leased (or awaited) are never evicted, so
// the live count can exceed cap under load and shrinks back as leases
// return.
//
// Pins are the session-aware layer: a streaming session Pins the key its
// frames render through, and eviction prefers unpinned idle entries, so
// one-shot request churn cannot cold-start a live session's warm runner.
// Pins are soft — when every idle entry is pinned the LRU one is evicted
// anyway — so a cache smaller than the session population stays bounded
// and degrades to plain LRU instead of growing or starving.
type RunnerCache[K comparable] struct {
	mu      sync.Mutex
	cap     int
	seq     uint64
	entries map[K]*runnerEntry[K]
	pins    map[K]int
	closed  bool
	stats   RunnerCacheStats
}

// RunnerCacheStats is a point-in-time view of lease and eviction
// activity, JSON-shaped for /v1/metrics.
type RunnerCacheStats struct {
	// Leases counts Acquire calls that handed out a lease; Hits the
	// subset that found the runner already prepared (a miss pays the
	// full scene preparation, counted in Prepared).
	Leases   uint64 `json:"leases"`
	Hits     uint64 `json:"hits"`
	Prepared uint64 `json:"prepared"`
	// PrepareErrors counts failed preparations (not cached; the next
	// Acquire retries).
	PrepareErrors uint64 `json:"prepare_errors"`
	// Evicted counts idle runners closed by capacity pressure;
	// EvictedPinned the subset that were pinned by a live session when
	// evicted (pressure exceeded the pin population — the soft-pin
	// degradation path).
	Evicted       uint64 `json:"evicted"`
	EvictedPinned uint64 `json:"evicted_pinned"`
	// Live is the current entry count (leased and idle); Pinned the
	// number of distinct pinned keys.
	Live   int `json:"live"`
	Pinned int `json:"pinned"`
}

type runnerEntry[K comparable] struct {
	key K
	// mu serializes preparation and rendering on this entry; it is held
	// for the lifetime of a lease.
	mu       sync.Mutex
	runner   FrameRunner
	close    func()
	prepared bool
	// pins counts leases held or awaited; only pins==0 entries may be
	// evicted. lastUsed orders idle entries for LRU eviction.
	pins     int
	lastUsed uint64
}

// RunnerLease is exclusive access to one cached runner. Release it when
// the frame is done; the runner stays cached for the next request.
type RunnerLease[K comparable] struct {
	cache *RunnerCache[K]
	entry *runnerEntry[K]
}

// Runner returns the leased frame runner.
func (l *RunnerLease[K]) Runner() FrameRunner { return l.entry.runner }

// Release returns the runner to the cache and triggers idle eviction if
// the cache is over capacity.
func (l *RunnerLease[K]) Release() {
	l.entry.mu.Unlock()
	l.cache.release(l.entry)
}

// NewRunnerCache returns a cache keeping up to cap idle runners (cap < 1
// keeps 1: a cache that closed every runner immediately would defeat its
// purpose).
func NewRunnerCache[K comparable](cap int) *RunnerCache[K] {
	if cap < 1 {
		cap = 1
	}
	return &RunnerCache[K]{cap: cap, entries: map[K]*runnerEntry[K]{}, pins: map[K]int{}}
}

// Acquire leases the runner for key, preparing it with prepare on first
// use. prepare returns the runner and a close hook releasing whatever
// backs it (typically the scene's device). Preparation happens outside
// the cache lock but inside the entry's, so concurrent requests for one
// key prepare exactly once and requests for other keys are not stalled
// behind a slow preparation. A failed preparation is not cached: the
// error propagates and the next Acquire retries.
func (c *RunnerCache[K]) Acquire(key K, prepare func() (FrameRunner, func(), error)) (*RunnerLease[K], error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errRunnerCacheClosed
	}
	e, ok := c.entries[key]
	if !ok {
		e = &runnerEntry[K]{key: key}
		c.entries[key] = e
	}
	e.pins++
	c.mu.Unlock()

	e.mu.Lock()
	if !e.prepared {
		runner, closeFn, err := prepare()
		if err != nil {
			e.mu.Unlock()
			c.mu.Lock()
			e.pins--
			c.stats.PrepareErrors++
			// Drop the failed entry only if no other waiter is about to
			// retry preparation through it.
			if e.pins == 0 && c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
			return nil, err
		}
		e.runner, e.close, e.prepared = runner, closeFn, true
		c.mu.Lock()
		c.stats.Leases++
		c.stats.Prepared++
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		c.stats.Leases++
		c.stats.Hits++
		c.mu.Unlock()
	}
	return &RunnerLease[K]{cache: c, entry: e}, nil
}

// Pin marks key as backing a live session: eviction prefers unpinned
// entries, so request churn cannot cold-start the session's warm runner.
// Pins nest (each Pin needs an Unpin) and are soft — see the type
// comment. Pinning does not prepare the runner; the first Acquire does.
func (c *RunnerCache[K]) Pin(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.pins[key]++
}

// Unpin removes one pin for key.
func (c *RunnerCache[K]) Unpin(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := c.pins[key]; n > 1 {
		c.pins[key] = n - 1
	} else {
		delete(c.pins, key)
	}
}

// Stats snapshots the lease and eviction counters.
func (c *RunnerCache[K]) Stats() RunnerCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Live = len(c.entries)
	st.Pinned = len(c.pins)
	return st
}

// release unpins the entry and evicts over-capacity idle runners.
func (c *RunnerCache[K]) release(e *runnerEntry[K]) {
	var closers []func()
	c.mu.Lock()
	e.pins--
	c.seq++
	e.lastUsed = c.seq
	for len(c.entries) > c.cap {
		victim := c.victimLocked()
		if victim == nil {
			break
		}
		delete(c.entries, victim.key)
		c.stats.Evicted++
		if c.pins[victim.key] > 0 {
			c.stats.EvictedPinned++
		}
		if victim.close != nil {
			closers = append(closers, victim.close)
		}
	}
	c.mu.Unlock()
	for _, fn := range closers {
		fn()
	}
}

// victimLocked returns the least recently used idle entry, preferring
// unpinned ones; nil when every entry is leased or awaited.
func (c *RunnerCache[K]) victimLocked() *runnerEntry[K] {
	var victim, pinnedVictim *runnerEntry[K]
	for _, e := range c.entries {
		if e.pins > 0 || !e.prepared {
			continue
		}
		if c.pins[e.key] > 0 {
			if pinnedVictim == nil || e.lastUsed < pinnedVictim.lastUsed {
				pinnedVictim = e
			}
			continue
		}
		if victim == nil || e.lastUsed < victim.lastUsed {
			victim = e
		}
	}
	if victim != nil {
		return victim
	}
	return pinnedVictim
}

// Len returns the number of cached entries (leased and idle).
func (c *RunnerCache[K]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Close drops every idle runner and refuses further Acquires. Leased
// runners are closed by their eventual release path only if the caller
// re-Closes; in practice servers stop accepting work before Close.
func (c *RunnerCache[K]) Close() {
	var closers []func()
	c.mu.Lock()
	c.closed = true
	for k, e := range c.entries {
		if e.pins > 0 {
			continue
		}
		delete(c.entries, k)
		if e.close != nil {
			closers = append(closers, e.close)
		}
	}
	c.mu.Unlock()
	for _, fn := range closers {
		fn()
	}
}

type runnerCacheError string

func (e runnerCacheError) Error() string { return string(e) }

const errRunnerCacheClosed = runnerCacheError("scenario: runner cache closed")
