package scenario

import (
	"fmt"

	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/render"
)

// Scene is the renderer-agnostic description of one rendering
// configuration: what to render (a parsed simulation block or prebuilt
// geometry), from where, on which device, at what resolution, and over
// which scalar range. The same Scene drives every backend, so the study
// harness, the repro table generators, and the in situ pipeline set a
// scene up once and let the backend decide how to consume it.
type Scene struct {
	Dev           *device.Device
	Camera        render.Camera
	Width, Height int
	// FieldName and Values are the plotted scalar field, vertex
	// associated. Required for backends that extract geometry from Mesh;
	// prebuilt-geometry scenes may leave them empty.
	FieldName string
	Values    []float64
	// FieldLo/FieldHi fix the scalar normalization (globally reduced in
	// multi-task runs). Both zero means derive from the local values.
	FieldLo, FieldHi float64
	// SamplesZ is the depth sampling density for volume techniques
	// (0 uses the backend's default).
	SamplesZ int
	// RTWorkload selects the ray tracing pipeline depth (1, 2, or 3;
	// 0 uses the backend default, the paper's shaded Workload2). The
	// serving layer degrades it to fit deadlines; the study leaves it at
	// the default so fitted models stay on one workload.
	RTWorkload int

	// Mesh is the parsed simulation block (nil for prebuilt-geometry
	// scenes).
	Mesh *ParsedMesh

	// surface and tets, when set, bypass extraction: table generators
	// hand prebuilt geometry straight to a backend.
	surface *mesh.TriangleMesh
	tets    *mesh.TetMesh
}

// NewScene describes a parsed simulation block — the study and in situ
// path. Values must be FieldName's vertex-associated scalars.
func NewScene(dev *device.Device, pm *ParsedMesh, fieldName string, vals []float64, cam render.Camera, width, height int) *Scene {
	lo, hi := FieldRange(vals)
	return &Scene{
		Dev: dev, Camera: cam, Width: width, Height: height,
		FieldName: fieldName, Values: vals, FieldLo: lo, FieldHi: hi,
		Mesh: pm,
	}
}

// SceneFromSurface describes prebuilt surface geometry — the repro table
// path, where datasets arrive as extracted isosurfaces.
func SceneFromSurface(dev *device.Device, tri *mesh.TriangleMesh, cam render.Camera, width, height int) *Scene {
	return &Scene{
		Dev: dev, Camera: cam, Width: width, Height: height,
		FieldLo: tri.ScalarMin, FieldHi: tri.ScalarMax,
		surface: tri,
	}
}

// SceneFromTets describes a prebuilt tetrahedral volume.
func SceneFromTets(dev *device.Device, tm *mesh.TetMesh, cam render.Camera, width, height int) *Scene {
	return &Scene{
		Dev: dev, Camera: cam, Width: width, Height: height,
		FieldLo: tm.ScalarMin, FieldHi: tm.ScalarMax,
		tets: tm,
	}
}

// SceneFromGrid describes a structured grid with a named vertex field —
// the figure-rendering path.
func SceneFromGrid(dev *device.Device, g *mesh.StructuredGrid, fieldName string, cam render.Camera, width, height int) (*Scene, error) {
	f, err := g.Field(fieldName)
	if err != nil {
		return nil, err
	}
	sc := NewScene(dev, &ParsedMesh{Grid: g}, fieldName, f.Values, cam, width, height)
	return sc, nil
}

// SetSurface installs prebuilt surface geometry (e.g. an extracted
// isosurface), which surface backends will render instead of the block's
// external faces. This is how a tool renders a *plot* of a parsed block
// rather than its boundary while still dispatching through the backend
// registry.
func (sc *Scene) SetSurface(tri *mesh.TriangleMesh) { sc.surface = tri }

// FieldRange returns the scene's scalar normalization range.
func (sc *Scene) FieldRange() (float64, float64) {
	if sc.FieldLo == 0 && sc.FieldHi == 0 && sc.Values != nil {
		return FieldRange(sc.Values)
	}
	return sc.FieldLo, sc.FieldHi
}

// SurfaceMesh returns the scene's renderable surface, extracting the
// block's external faces when no prebuilt surface was supplied.
func (sc *Scene) SurfaceMesh() (*mesh.TriangleMesh, error) {
	if sc.surface != nil {
		return sc.surface, nil
	}
	if sc.Mesh == nil {
		return nil, fmt.Errorf("scenario: scene has no mesh to extract a surface from")
	}
	tri, err := sc.Mesh.Surface(sc.FieldName, sc.Values)
	if err != nil {
		return nil, err
	}
	tri.ScalarMin, tri.ScalarMax = sc.FieldRange()
	sc.surface = tri
	return tri, nil
}

// TetMesh returns the scene as a tetrahedral volume, tetrahedralizing
// the block (structured or explicit hexes) when no prebuilt tet mesh was
// supplied.
func (sc *Scene) TetMesh() (*mesh.TetMesh, error) {
	if sc.tets != nil {
		return sc.tets, nil
	}
	if sc.Mesh == nil {
		return nil, fmt.Errorf("scenario: scene has no mesh to tetrahedralize")
	}
	tm, err := sc.Mesh.TetVolume(sc.FieldName, sc.Values)
	if err != nil {
		return nil, err
	}
	tm.ScalarMin, tm.ScalarMax = sc.FieldRange()
	sc.tets = tm
	return tm, nil
}

// Grid returns the scene's structured grid, or nil when the block is
// unstructured or the scene holds prebuilt geometry.
func (sc *Scene) Grid() *mesh.StructuredGrid {
	if sc.Mesh == nil {
		return nil
	}
	return sc.Mesh.Grid
}

// Structured reports whether the scene can feed structured-only
// backends.
func (sc *Scene) Structured() bool { return sc.Grid() != nil }
