package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"insitu/internal/composite"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/render"
)

// FrameRunner renders frames of one prepared scene. A runner is bound to
// a single task's scene and is not safe for concurrent use; the harness
// that measures it owns the call discipline (warm-up frame, kept-frame
// averaging).
type FrameRunner interface {
	// RenderFrame renders one frame, filling in the per-frame workload
	// inputs the backend's model terms consume (O, AP, and the technique's
	// specific measures). Prefilled configuration inputs (Pixels, Tasks)
	// are left untouched.
	//insitu:arena
	RenderFrame(in *core.Inputs) (time.Duration, *framebuffer.Image, error)
	// BuildSeconds is the one-time acceleration-structure construction
	// cost (0 for techniques without one).
	BuildSeconds() float64
	// SetCamera repoints the camera for subsequent frames. Geometry and
	// acceleration structures are camera-independent for every modeled
	// technique, so a serving path reuses one prepared runner across
	// camera angles through this instead of re-preparing the scene.
	SetCamera(cam render.Camera)
}

// Backend is one pluggable rendering technique: it declares its model
// form (how frame stats map to core.Inputs terms), its compositing
// needs, and its data-shape constraints, and prepares frame runners from
// scenes. Backends self-register in their init functions.
type Backend interface {
	// Name is the renderer name used in study configs, model keys,
	// registry snapshots, and the HTTP API.
	Name() core.Renderer
	// Model is the renderer spec fitted over this backend's measurements.
	// Register installs it into the core spec registry.
	Model() core.RendererSpec
	// CompositeOp is the sort-last compositing operator the backend's
	// images need (depth for surfaces, visibility-ordered blend for
	// volumes).
	CompositeOp() composite.Op
	// NeedsStructured reports that the backend can only consume
	// structured blocks (mirroring the paper's "not all combinations made
	// sense": the structured volume renderer cannot eat the Lagrangian
	// proxy's unstructured mesh).
	//insitu:noalloc
	NeedsStructured() bool
	// Prepare builds a frame runner for the scene, performing any
	// one-time setup (geometry extraction, acceleration structures).
	Prepare(sc *Scene) (FrameRunner, error)
}

var (
	backendMu sync.RWMutex
	backends  = map[core.Renderer]Backend{}
)

// Register installs a backend and its model spec. Duplicate names are an
// error: two backends answering to one renderer name would make
// measurements ambiguous. When a spec for the backend's name is already
// registered in core (the paper's built-in model forms register at core
// init), the backend's declared spec must agree with it — term arity and
// the build/surface flags — so the two can never drift apart silently.
func Register(b Backend) error {
	name := b.Name()
	if name == "" {
		return fmt.Errorf("scenario: backend has no name")
	}
	if name == core.Compositing {
		return fmt.Errorf("scenario: %q is the compositing pseudo-renderer, not a backend name", name)
	}
	spec := b.Model()
	if spec.Name != name {
		return fmt.Errorf("scenario: backend %q declares a model spec named %q", name, spec.Name)
	}
	if spec.Terms == nil {
		return fmt.Errorf("scenario: backend %q declares a model spec without terms", name)
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		return fmt.Errorf("scenario: backend %q already registered", name)
	}
	if existing, ok := core.LookupRenderer(name); ok {
		if len(existing.Terms(core.Inputs{})) != len(spec.Terms(core.Inputs{})) ||
			existing.HasBuild != spec.HasBuild || existing.Surface != spec.Surface {
			return fmt.Errorf("scenario: backend %q declares a model spec inconsistent with the registered %q spec", name, name)
		}
	} else if err := core.RegisterRenderer(spec); err != nil {
		return fmt.Errorf("scenario: registering %q model spec: %w", name, err)
	}
	backends[name] = b
	return nil
}

// MustRegister is Register for init-time self-registration.
func MustRegister(b Backend) {
	if err := Register(b); err != nil {
		panic(err)
	}
}

// Lookup returns the backend for a renderer name, with an error that
// names the alternatives — the message a study config or an HTTP request
// with a typo'd renderer ultimately surfaces.
func Lookup(name core.Renderer) (Backend, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown renderer %q (registered: %v)", name, namesLocked())
	}
	return b, nil
}

// Names returns the registered backend names, sorted for deterministic
// plan generation.
func Names() []core.Renderer {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return namesLocked()
}

func namesLocked() []core.Renderer {
	out := make([]core.Renderer, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
