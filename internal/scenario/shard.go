package scenario

import (
	"fmt"

	"insitu/internal/conduit"
	"insitu/internal/sim"
	"insitu/internal/vecmath"
)

// ShardData is one rank's slice of a sharded scene: the parsed block a
// simulation proxy publishes for that shard of the domain decomposition,
// plus the locally derived facts (bounds, scalar range) that cluster
// ranks reduce into the globally consistent camera and color map. It is
// deliberately device- and camera-free so a worker can cache it across
// requests that differ only in view or resolution.
type ShardData struct {
	Mesh        *ParsedMesh
	Field       string
	Values      []float64
	LocalBounds vecmath.AABB
	// FieldLo/FieldHi are the shard-local scalar range; callers reduce
	// them across the fleet before building scenes.
	FieldLo, FieldHi float64
}

// BuildShard steps one shard of a simulation proxy and slices its
// published block into a ShardData. shards is the total decomposition
// width and shard this rank's index in [0, shards) — the same
// (tasks, rank) pair the study hands to sim.New, so a sharded serving
// frame renders exactly the block layout the study measured and the
// models were fitted on.
func BuildShard(simName string, n, shards, shard, cycles int) (*ShardData, error) {
	if shards < 1 {
		return nil, fmt.Errorf("scenario: shard count %d < 1", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("scenario: shard index %d outside [0,%d)", shard, shards)
	}
	sm, err := sim.New(simName, n, shards, shard)
	if err != nil {
		return nil, err
	}
	if cycles < 1 {
		cycles = 1
	}
	for i := 0; i < cycles; i++ {
		sm.Step()
	}
	node := conduit.NewNode()
	sm.Publish(node)
	pm, err := ParseMesh(node)
	if err != nil {
		return nil, fmt.Errorf("scenario: parsing %s shard %d/%d: %w", simName, shard, shards, err)
	}
	vals, err := pm.FieldValues(sm.PrimaryField())
	if err != nil {
		return nil, fmt.Errorf("scenario: %s shard %d/%d: %w", simName, shard, shards, err)
	}
	lo, hi := FieldRange(vals)
	return &ShardData{
		Mesh:        pm,
		Field:       sm.PrimaryField(),
		Values:      vals,
		LocalBounds: pm.LocalBounds(),
		FieldLo:     lo,
		FieldHi:     hi,
	}, nil
}
