package scenario

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/render"
)

// fakeRunner counts frames so tests can tell runners apart.
type fakeRunner struct{ id int }

func (r *fakeRunner) RenderFrame(in *core.Inputs) (time.Duration, *framebuffer.Image, error) {
	return time.Millisecond, nil, nil
}
func (r *fakeRunner) BuildSeconds() float64       { return 0 }
func (r *fakeRunner) SetCamera(cam render.Camera) {}

func TestRunnerCachePreparesOncePerKey(t *testing.T) {
	c := NewRunnerCache[string](4)
	defer c.Close()
	var prepared atomic.Int32
	acquire := func(key string) *RunnerLease[string] {
		l, err := c.Acquire(key, func() (FrameRunner, func(), error) {
			return &fakeRunner{id: int(prepared.Add(1))}, nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l1 := acquire("a")
	r1 := l1.Runner()
	l1.Release()
	l2 := acquire("a")
	if l2.Runner() != r1 {
		t.Error("second acquire prepared a fresh runner")
	}
	l2.Release()
	if got := prepared.Load(); got != 1 {
		t.Errorf("prepared %d times, want 1", got)
	}
	// Concurrent acquires of one key serialize on the lease and still
	// prepare exactly once.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l := acquire("b")
			time.Sleep(time.Millisecond)
			l.Release()
		}()
	}
	wg.Wait()
	if got := prepared.Load(); got != 2 {
		t.Errorf("prepared %d times, want 2", got)
	}
}

func TestRunnerCacheEvictsIdleLRUAndCloses(t *testing.T) {
	c := NewRunnerCache[int](2)
	defer c.Close()
	closed := map[int]bool{}
	var mu sync.Mutex
	acquire := func(key int) {
		l, err := c.Acquire(key, func() (FrameRunner, func(), error) {
			return &fakeRunner{id: key}, func() {
				mu.Lock()
				closed[key] = true
				mu.Unlock()
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		l.Release()
	}
	acquire(1)
	acquire(2)
	acquire(3) // over capacity: the least recently released (1) goes
	mu.Lock()
	defer mu.Unlock()
	if !closed[1] {
		t.Error("LRU idle runner not closed")
	}
	if closed[2] || closed[3] {
		t.Errorf("recently used runners closed: %v", closed)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestRunnerCachePrepareFailureNotCached(t *testing.T) {
	c := NewRunnerCache[string](2)
	defer c.Close()
	boom := errors.New("boom")
	calls := 0
	//insitu:leaselife-ok prepare fails by construction, so no lease is ever produced
	_, err := c.Acquire("k", func() (FrameRunner, func(), error) {
		calls++
		return nil, nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("failed entry cached: len = %d", c.Len())
	}
	// The next acquire retries preparation.
	l, err := c.Acquire("k", func() (FrameRunner, func(), error) {
		calls++
		return &fakeRunner{}, nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	if calls != 2 {
		t.Errorf("prepare called %d times, want 2", calls)
	}
}

func TestRunnerCacheCloseRefusesAcquire(t *testing.T) {
	c := NewRunnerCache[string](2)
	var closes int
	l, err := c.Acquire("k", func() (FrameRunner, func(), error) {
		return &fakeRunner{}, func() { closes++ }, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Release()
	c.Close()
	if closes != 1 {
		t.Errorf("idle runner not closed on Close: %d", closes)
	}
	//insitu:leaselife-ok the cache is closed, so Acquire must fail without producing a lease
	if _, err := c.Acquire("k", func() (FrameRunner, func(), error) {
		return &fakeRunner{}, nil, nil
	}); err == nil {
		t.Error("Acquire after Close succeeded")
	}
}
