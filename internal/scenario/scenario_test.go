package scenario

import (
	"math"
	"strings"
	"testing"

	"insitu/internal/composite"
	"insitu/internal/conduit"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/render"
	"insitu/internal/sim"
)

// simScene builds a one-task scene from a stepped proxy, the same way
// the study harness does.
func simScene(t testing.TB, proxy string, n, size int) *Scene {
	t.Helper()
	sm, err := sim.New(proxy, n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sm.Step()
	node := conduit.NewNode()
	sm.Publish(node)
	pm, err := ParseMesh(node)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := pm.FieldValues(sm.PrimaryField())
	if err != nil {
		t.Fatal(err)
	}
	cam := render.OrbitCamera(pm.LocalBounds(), 30, 20, 1.0)
	return NewScene(device.CPU(), pm, sm.PrimaryField(), vals, cam, size, size)
}

// TestEveryBackendRendersItsCompatibleProxies drives each registered
// backend over every proxy it declares itself compatible with: Prepare
// succeeds, a frame comes back non-empty, and the model inputs its term
// vector consumes are filled.
func TestEveryBackendRendersItsCompatibleProxies(t *testing.T) {
	for _, name := range Names() {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, proxy := range sim.Names() {
			if b.NeedsStructured() && !sim.Structured(proxy) {
				continue
			}
			t.Run(string(name)+"/"+proxy, func(t *testing.T) {
				sc := simScene(t, proxy, 8, 48)
				runner, err := b.Prepare(sc)
				if err != nil {
					t.Fatal(err)
				}
				var in core.Inputs
				elapsed, img, err := runner.RenderFrame(&in)
				if err != nil {
					t.Fatal(err)
				}
				if elapsed <= 0 {
					t.Error("no elapsed time measured")
				}
				if img == nil || img.ActivePixels() == 0 {
					t.Error("empty image")
				}
				if in.O <= 0 || in.AP <= 0 {
					t.Errorf("inputs not filled: O=%v AP=%v", in.O, in.AP)
				}
				// The backend's own term vector must be computable and
				// non-degenerate over what it filled.
				terms := b.Model().Terms(in)
				if len(terms) < 2 {
					t.Fatalf("term vector too short: %v", terms)
				}
				for i, v := range terms {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("term %d is %v", i, v)
					}
				}
			})
		}
	}
}

// TestStructuredOnlyBackendRejectsUnstructuredScene mirrors the paper's
// "not all combinations made sense": the structured volume backend must
// refuse the Lagrangian proxy's explicit hex mesh, while the
// unstructured volume backend consumes it.
func TestStructuredOnlyBackendRejectsUnstructuredScene(t *testing.T) {
	sc := simScene(t, "lulesh", 8, 48)
	vb, err := Lookup(core.Volume)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vb.Prepare(sc); err == nil {
		t.Error("structured volume backend accepted an unstructured block")
	}
	ub, err := Lookup(VolumeUnstructured)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := ub.Prepare(sc)
	if err != nil {
		t.Fatalf("unstructured volume backend rejected lulesh: %v", err)
	}
	var in core.Inputs
	if _, img, err := runner.RenderFrame(&in); err != nil || img.ActivePixels() == 0 {
		t.Fatalf("unstructured volume frame: err=%v", err)
	}
	if in.SPR <= 0 {
		t.Errorf("SPR not filled: %v", in.SPR)
	}
}

// TestLookupUnknownRendererNamesAlternatives: the error a typo'd study
// config or HTTP request ultimately surfaces must name what exists.
func TestLookupUnknownRendererNamesAlternatives(t *testing.T) {
	_, err := Lookup("teapot")
	if err == nil {
		t.Fatal("lookup of unknown renderer succeeded")
	}
	if !strings.Contains(err.Error(), "teapot") || !strings.Contains(err.Error(), string(core.RayTrace)) {
		t.Errorf("error does not name the unknown renderer and the registered ones: %v", err)
	}
}

// badBackend is a minimal backend for registration error-path tests.
type badBackend struct{ name core.Renderer }

func (b badBackend) Name() core.Renderer { return b.name }
func (b badBackend) Model() core.RendererSpec {
	return core.RendererSpec{Name: b.name, Terms: func(core.Inputs) []float64 { return []float64{1} }}
}
func (badBackend) CompositeOp() composite.Op           { return composite.DepthOp }
func (badBackend) NeedsStructured() bool               { return false }
func (badBackend) Prepare(*Scene) (FrameRunner, error) { return nil, nil }

func TestRegisterErrorPaths(t *testing.T) {
	if err := Register(badBackend{name: core.RayTrace}); err == nil {
		t.Error("duplicate registration accepted")
	} else if !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration error unclear: %v", err)
	}
	if err := Register(badBackend{name: ""}); err == nil {
		t.Error("nameless backend accepted")
	}
	if err := Register(badBackend{name: core.Compositing}); err == nil {
		t.Error("compositing pseudo-renderer accepted as a backend name")
	}
	// A backend whose declared model spec disagrees with the spec already
	// registered in core must be rejected: silently keeping the old spec
	// would let the two drift apart.
	if err := core.RegisterRenderer(core.RendererSpec{
		Name:  "drift-test",
		Terms: func(core.Inputs) []float64 { return []float64{1, 2} },
	}); err != nil {
		t.Fatal(err)
	}
	if err := Register(badBackend{name: "drift-test"}); err == nil {
		t.Error("backend with inconsistent model spec accepted")
	} else if !strings.Contains(err.Error(), "inconsistent") {
		t.Errorf("inconsistent-spec error unclear: %v", err)
	}
}

// TestFieldRangeSkipsNonFinite is the regression test for the scalar
// range poisoning bug: one Inf or NaN sample must not blow up the global
// range every AP-derived model term depends on.
func TestFieldRangeSkipsNonFinite(t *testing.T) {
	lo, hi := FieldRange([]float64{1, 2, math.Inf(1), 3, math.NaN(), math.Inf(-1), 0.5})
	if lo != 0.5 || hi != 3 {
		t.Errorf("range = [%v, %v], want [0.5, 3]", lo, hi)
	}
	// All-non-finite and empty fields fall back to the unit range.
	if lo, hi := FieldRange([]float64{math.NaN(), math.Inf(1)}); lo != 0 || hi != 1 {
		t.Errorf("all-non-finite range = [%v, %v], want [0, 1]", lo, hi)
	}
	if lo, hi := FieldRange(nil); lo != 0 || hi != 1 {
		t.Errorf("empty range = [%v, %v], want [0, 1]", lo, hi)
	}
}

// TestSceneLazyGeometryIsCached: repeated accessor calls hand back the
// same extracted geometry (backends prepared from one scene share it).
func TestSceneLazyGeometryIsCached(t *testing.T) {
	sc := simScene(t, "kripke", 8, 32)
	s1, err := sc.SurfaceMesh()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sc.SurfaceMesh()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("surface extracted twice")
	}
	t1, err := sc.TetMesh()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sc.TetMesh()
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("tetrahedralized twice")
	}
	if !sc.Structured() {
		t.Error("kripke scene should be structured")
	}
}
