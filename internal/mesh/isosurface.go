package mesh

import (
	"fmt"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/vecmath"
)

func errCellAssoc(name string) error {
	return fmt.Errorf("mesh: field %q must be vertex-associated", name)
}

// mtEdge identifies a tetrahedron edge by its two local corner indices.
type mtEdge [2]uint8

// mtCases lists, per marching-tetrahedra case, the triangles as triples of
// tet edges the isosurface crosses (Bourke's tetrahedron polygonisation).
// A corner's case bit is set when its value is below the isovalue.
var mtCases = [16][][3]mtEdge{
	0x0: nil,
	0x1: {{{0, 1}, {0, 2}, {0, 3}}},
	0x2: {{{1, 0}, {1, 3}, {1, 2}}},
	0x3: {{{0, 3}, {0, 2}, {1, 3}}, {{1, 3}, {1, 2}, {0, 2}}},
	0x4: {{{2, 0}, {2, 1}, {2, 3}}},
	0x5: {{{0, 1}, {2, 3}, {0, 3}}, {{0, 1}, {1, 2}, {2, 3}}},
	0x6: {{{0, 1}, {1, 3}, {2, 3}}, {{0, 1}, {2, 3}, {0, 2}}},
	0x7: {{{3, 0}, {3, 2}, {3, 1}}},
	0x8: {{{3, 0}, {3, 2}, {3, 1}}},
	0x9: {{{0, 1}, {1, 3}, {2, 3}}, {{0, 1}, {2, 3}, {0, 2}}},
	0xA: {{{0, 1}, {2, 3}, {0, 3}}, {{0, 1}, {1, 2}, {2, 3}}},
	0xB: {{{2, 0}, {2, 1}, {2, 3}}},
	0xC: {{{0, 3}, {0, 2}, {1, 3}}, {{1, 3}, {1, 2}, {0, 2}}},
	0xD: {{{1, 0}, {1, 3}, {1, 2}}},
	0xE: {{{0, 1}, {0, 2}, {0, 3}}},
	0xF: nil,
}

// IsoOptions configures isosurface extraction.
type IsoOptions struct {
	// ColorField, when non-empty, names a second vertex field interpolated
	// onto the surface for color mapping; otherwise the iso field is used
	// (yielding the constant isovalue).
	ColorField string
}

// Isosurface extracts the isovalue surface of a vertex field using
// marching tetrahedra over the six-tet decomposition of each cell. The
// extraction is the classic two-pass data-parallel pattern: a map counts
// triangles per cell, an exclusive scan produces output offsets, and a
// second map writes vertices, gradient normals, and scalars.
func (g *StructuredGrid) Isosurface(d *device.Device, fieldName string, iso float64, opts IsoOptions) (*TriangleMesh, error) {
	f, err := g.Field(fieldName)
	if err != nil {
		return nil, err
	}
	if f.Assoc != VertexAssoc {
		return nil, errCellAssoc(fieldName)
	}
	colorVals := f.Values
	if opts.ColorField != "" {
		cf, err := g.Field(opts.ColorField)
		if err != nil {
			return nil, err
		}
		if cf.Assoc != VertexAssoc {
			return nil, errCellAssoc(opts.ColorField)
		}
		colorVals = cf.Values
	}

	cx, cy, cz := g.CellDims()
	ncells := cx * cy * cz
	if ncells == 0 {
		return &TriangleMesh{ScalarMin: 0, ScalarMax: 1}, nil
	}
	vals := f.Values

	cellCase := func(cell int) (corners [8]int, codes [6]uint8, total int) {
		ci := cell % cx
		cj := (cell / cx) % cy
		ck := cell / (cx * cy)
		for c, off := range hexCorners {
			corners[c] = g.PointIndex(ci+off[0], cj+off[1], ck+off[2])
		}
		for t, tet := range hexTets {
			var code uint8
			for b := 0; b < 4; b++ {
				if vals[corners[tet[b]]] < iso {
					code |= 1 << uint(b)
				}
			}
			codes[t] = code
			total += len(mtCases[code])
		}
		return corners, codes, total
	}

	// Pass 1: count triangles per cell.
	counts := make([]int32, ncells)
	dpp.For(d, ncells, func(lo, hi int) {
		for cell := lo; cell < hi; cell++ {
			_, _, total := cellCase(cell)
			counts[cell] = int32(total)
		}
	})

	// Exclusive scan for output offsets.
	offsets := make([]int32, ncells)
	total := dpp.ScanExclusive(d, counts, offsets, 0, func(a, b int32) int32 { return a + b })

	nv := int(total) * 3
	out := &TriangleMesh{
		X: make([]float64, nv), Y: make([]float64, nv), Z: make([]float64, nv),
		NX: make([]float64, nv), NY: make([]float64, nv), NZ: make([]float64, nv),
		Conn:    make([]int32, nv),
		Scalars: make([]float64, nv),
	}
	for i := 0; i < nv; i++ {
		out.Conn[i] = int32(i)
	}

	// Pass 2: emit triangles at the scanned offsets.
	dpp.For(d, ncells, func(lo, hi int) {
		for cell := lo; cell < hi; cell++ {
			corners, codes, total := cellCase(cell)
			if total == 0 {
				continue
			}
			ci := cell % cx
			cj := (cell / cx) % cy
			ck := cell / (cx * cy)
			// Corner positions and gradients for interpolation.
			var pos [8]vecmath.Vec3
			var grad [8]vecmath.Vec3
			for c, off := range hexCorners {
				pi, pj, pk := ci+off[0], cj+off[1], ck+off[2]
				pos[c] = g.Point(pi, pj, pk)
				grad[c] = g.Gradient(vals, pi, pj, pk)
			}
			vcursor := int(offsets[cell]) * 3
			for t, tet := range hexTets {
				tris := mtCases[codes[t]]
				for _, tri := range tris {
					for _, edge := range tri {
						la, lb := tet[edge[0]], tet[edge[1]]
						va, vb := vals[corners[la]], vals[corners[lb]]
						frac := 0.5
						if vb != va {
							frac = (iso - va) / (vb - va)
						}
						frac = vecmath.Clamp(frac, 0, 1)
						p := pos[la].Lerp(pos[lb], frac)
						n := grad[la].Lerp(grad[lb], frac).Normalize()
						s := colorVals[corners[la]] + frac*(colorVals[corners[lb]]-colorVals[corners[la]])
						out.X[vcursor], out.Y[vcursor], out.Z[vcursor] = p.X, p.Y, p.Z
						out.NX[vcursor], out.NY[vcursor], out.NZ[vcursor] = n.X, n.Y, n.Z
						out.Scalars[vcursor] = s
						vcursor++
					}
				}
			}
		}
	})
	out.UpdateScalarRange()
	return out, nil
}
