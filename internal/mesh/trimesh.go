package mesh

import (
	"insitu/internal/vecmath"
)

// TriangleMesh is a triangle soup in structure-of-arrays layout, the wire
// format between geometry operators and the surface renderers. Scalars are
// per-vertex and drive color mapping; normals are optional and recomputed
// from faces when absent.
type TriangleMesh struct {
	X, Y, Z    []float64 // vertex positions
	NX, NY, NZ []float64 // optional per-vertex normals
	Conn       []int32   // 3 vertex indices per triangle
	Scalars    []float64 // per-vertex scalar for color mapping
	ScalarMin  float64
	ScalarMax  float64
}

// NumTriangles returns the triangle count.
func (m *TriangleMesh) NumTriangles() int { return len(m.Conn) / 3 }

// NumVertices returns the vertex count.
func (m *TriangleMesh) NumVertices() int { return len(m.X) }

// Vertex returns vertex i's position.
//
//insitu:noalloc
func (m *TriangleMesh) Vertex(i int32) vecmath.Vec3 {
	return vecmath.V(m.X[i], m.Y[i], m.Z[i])
}

// Normal returns vertex i's normal, or the zero vector if normals are unset.
//
//insitu:noalloc
func (m *TriangleMesh) Normal(i int32) vecmath.Vec3 {
	if m.NX == nil {
		return vecmath.Vec3{}
	}
	return vecmath.V(m.NX[i], m.NY[i], m.NZ[i])
}

// TriVerts returns the three corner positions of triangle t.
//
//insitu:noalloc
func (m *TriangleMesh) TriVerts(t int) (a, b, c vecmath.Vec3) {
	i0, i1, i2 := m.Conn[3*t], m.Conn[3*t+1], m.Conn[3*t+2]
	return m.Vertex(i0), m.Vertex(i1), m.Vertex(i2)
}

// TriBounds returns triangle t's bounding box.
func (m *TriangleMesh) TriBounds(t int) vecmath.AABB {
	a, b, c := m.TriVerts(t)
	return vecmath.EmptyAABB().ExpandPoint(a).ExpandPoint(b).ExpandPoint(c)
}

// Centroid returns triangle t's centroid.
func (m *TriangleMesh) Centroid(t int) vecmath.Vec3 {
	a, b, c := m.TriVerts(t)
	return a.Add(b).Add(c).Scale(1.0 / 3.0)
}

// Bounds returns the mesh bounding box (empty box for an empty mesh).
func (m *TriangleMesh) Bounds() vecmath.AABB {
	b := vecmath.EmptyAABB()
	for i := range m.X {
		b = b.ExpandPoint(vecmath.V(m.X[i], m.Y[i], m.Z[i]))
	}
	return b
}

// FaceNormal returns the unit normal of triangle t.
func (m *TriangleMesh) FaceNormal(t int) vecmath.Vec3 {
	a, b, c := m.TriVerts(t)
	return b.Sub(a).Cross(c.Sub(a)).Normalize()
}

// EnsureNormals computes per-vertex normals from faces when absent. In a
// triangle soup each vertex belongs to one face, so this yields flat
// shading; isosurfaces carry smooth gradient normals instead.
func (m *TriangleMesh) EnsureNormals() {
	if m.NX != nil {
		return
	}
	n := m.NumVertices()
	m.NX = make([]float64, n)
	m.NY = make([]float64, n)
	m.NZ = make([]float64, n)
	for t := 0; t < m.NumTriangles(); t++ {
		fn := m.FaceNormal(t)
		for c := 0; c < 3; c++ {
			i := m.Conn[3*t+c]
			m.NX[i] += fn.X
			m.NY[i] += fn.Y
			m.NZ[i] += fn.Z
		}
	}
	for i := 0; i < n; i++ {
		v := vecmath.V(m.NX[i], m.NY[i], m.NZ[i]).Normalize()
		m.NX[i], m.NY[i], m.NZ[i] = v.X, v.Y, v.Z
	}
}

// UpdateScalarRange recomputes ScalarMin/ScalarMax from the data.
func (m *TriangleMesh) UpdateScalarRange() {
	if len(m.Scalars) == 0 {
		m.ScalarMin, m.ScalarMax = 0, 1
		return
	}
	lo, hi := m.Scalars[0], m.Scalars[0]
	for _, v := range m.Scalars {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	m.ScalarMin, m.ScalarMax = lo, hi
}

// TetMesh is an unstructured tetrahedral mesh with shared vertices and
// per-vertex scalars, the input to the unstructured volume renderer.
type TetMesh struct {
	X, Y, Z   []float64
	Conn      []int32 // 4 vertex indices per tetrahedron
	Scalars   []float64
	ScalarMin float64
	ScalarMax float64
}

// NumTets returns the tetrahedron count.
func (m *TetMesh) NumTets() int { return len(m.Conn) / 4 }

// NumVertices returns the vertex count.
func (m *TetMesh) NumVertices() int { return len(m.X) }

// Vertex returns vertex i's position.
func (m *TetMesh) Vertex(i int32) vecmath.Vec3 {
	return vecmath.V(m.X[i], m.Y[i], m.Z[i])
}

// TetVerts returns the four corner positions of tetrahedron t.
func (m *TetMesh) TetVerts(t int) (a, b, c, d vecmath.Vec3) {
	i := m.Conn[4*t : 4*t+4]
	return m.Vertex(i[0]), m.Vertex(i[1]), m.Vertex(i[2]), m.Vertex(i[3])
}

// Bounds returns the mesh bounding box.
func (m *TetMesh) Bounds() vecmath.AABB {
	b := vecmath.EmptyAABB()
	for i := range m.X {
		b = b.ExpandPoint(vecmath.V(m.X[i], m.Y[i], m.Z[i]))
	}
	return b
}

// UpdateScalarRange recomputes ScalarMin/ScalarMax from the data.
func (m *TetMesh) UpdateScalarRange() {
	if len(m.Scalars) == 0 {
		m.ScalarMin, m.ScalarMax = 0, 1
		return
	}
	lo, hi := m.Scalars[0], m.Scalars[0]
	for _, v := range m.Scalars {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	m.ScalarMin, m.ScalarMax = lo, hi
}

// Tetrahedralize splits every hexahedral cell of a structured grid into
// six conforming tetrahedra, reusing the grid's points. The named vertex
// field becomes the tet mesh's scalars — the same preparation the paper's
// volume rendering study applies to the Enzo and Nek5000 data.
func (g *StructuredGrid) Tetrahedralize(fieldName string) (*TetMesh, error) {
	f, err := g.Field(fieldName)
	if err != nil {
		return nil, err
	}
	if f.Assoc != VertexAssoc {
		return nil, errCellAssoc(fieldName)
	}
	np := g.NumPoints()
	out := &TetMesh{
		X:       make([]float64, np),
		Y:       make([]float64, np),
		Z:       make([]float64, np),
		Scalars: f.Values,
	}
	idx := 0
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				p := g.Point(i, j, k)
				out.X[idx], out.Y[idx], out.Z[idx] = p.X, p.Y, p.Z
				idx++
			}
		}
	}
	cx, cy, cz := g.CellDims()
	out.Conn = make([]int32, 0, cx*cy*cz*6*4)
	for k := 0; k < cz; k++ {
		for j := 0; j < cy; j++ {
			for i := 0; i < cx; i++ {
				var corner [8]int32
				for c, off := range hexCorners {
					corner[c] = int32(g.PointIndex(i+off[0], j+off[1], k+off[2]))
				}
				for _, tet := range hexTets {
					out.Conn = append(out.Conn,
						corner[tet[0]], corner[tet[1]], corner[tet[2]], corner[tet[3]])
				}
			}
		}
	}
	out.UpdateScalarRange()
	return out, nil
}
