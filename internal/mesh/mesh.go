// Package mesh provides the data model the renderers consume: structured
// (uniform and rectilinear) grids with named fields, triangle meshes,
// tetrahedral meshes, and the geometry operators the paper's study uses —
// isosurfacing (marching tetrahedra), external faces, and hexahedron
// tetrahedralization — all expressed over the data-parallel primitives.
package mesh

import (
	"fmt"

	"insitu/internal/vecmath"
)

// Assoc states whether field values live on points or cells.
type Assoc int

const (
	// VertexAssoc fields hold one value per grid point.
	VertexAssoc Assoc = iota
	// CellAssoc fields hold one value per cell.
	CellAssoc
)

// Field is a named scalar array attached to a grid.
type Field struct {
	Name   string
	Assoc  Assoc
	Values []float64
}

// StructuredGrid is a regular or rectilinear grid of Nx x Ny x Nz points.
// If the coordinate arrays are nil, the grid is uniform with the given
// origin and spacing; otherwise the arrays give per-axis point positions.
type StructuredGrid struct {
	Nx, Ny, Nz int
	Origin     vecmath.Vec3
	Spacing    vecmath.Vec3
	XCoords    []float64
	YCoords    []float64
	ZCoords    []float64
	Fields     map[string]*Field
}

// NewUniformGrid builds a uniform grid covering the given bounds with
// nx x ny x nz points.
func NewUniformGrid(nx, ny, nz int, bounds vecmath.AABB) *StructuredGrid {
	d := bounds.Diagonal()
	sp := vecmath.V(
		d.X/float64(max(nx-1, 1)),
		d.Y/float64(max(ny-1, 1)),
		d.Z/float64(max(nz-1, 1)),
	)
	return &StructuredGrid{
		Nx: nx, Ny: ny, Nz: nz,
		Origin:  bounds.Min,
		Spacing: sp,
		Fields:  map[string]*Field{},
	}
}

// NewRectilinearGrid builds a grid from explicit per-axis coordinates.
func NewRectilinearGrid(x, y, z []float64) *StructuredGrid {
	return &StructuredGrid{
		Nx: len(x), Ny: len(y), Nz: len(z),
		XCoords: x, YCoords: y, ZCoords: z,
		Fields: map[string]*Field{},
	}
}

// NumPoints returns the point count.
func (g *StructuredGrid) NumPoints() int { return g.Nx * g.Ny * g.Nz }

// NumCells returns the hexahedral cell count.
func (g *StructuredGrid) NumCells() int {
	return max(g.Nx-1, 0) * max(g.Ny-1, 0) * max(g.Nz-1, 0)
}

// CellDims returns the cell counts along each axis.
func (g *StructuredGrid) CellDims() (int, int, int) {
	return max(g.Nx-1, 0), max(g.Ny-1, 0), max(g.Nz-1, 0)
}

// PointIndex flattens (i,j,k) point coordinates.
func (g *StructuredGrid) PointIndex(i, j, k int) int {
	return (k*g.Ny+j)*g.Nx + i
}

// Point returns the position of point (i,j,k).
func (g *StructuredGrid) Point(i, j, k int) vecmath.Vec3 {
	if g.XCoords != nil {
		return vecmath.V(g.XCoords[i], g.YCoords[j], g.ZCoords[k])
	}
	return vecmath.V(
		g.Origin.X+g.Spacing.X*float64(i),
		g.Origin.Y+g.Spacing.Y*float64(j),
		g.Origin.Z+g.Spacing.Z*float64(k),
	)
}

// Bounds returns the grid's bounding box.
func (g *StructuredGrid) Bounds() vecmath.AABB {
	return vecmath.AABB{Min: g.Point(0, 0, 0), Max: g.Point(g.Nx-1, g.Ny-1, g.Nz-1)}
}

// AddField attaches a scalar field. The value count must match the
// association.
func (g *StructuredGrid) AddField(name string, assoc Assoc, values []float64) error {
	want := g.NumPoints()
	if assoc == CellAssoc {
		want = g.NumCells()
	}
	if len(values) != want {
		return fmt.Errorf("mesh: field %q has %d values, want %d", name, len(values), want)
	}
	g.Fields[name] = &Field{Name: name, Assoc: assoc, Values: values}
	return nil
}

// Field returns a named field or an error listing what exists.
func (g *StructuredGrid) Field(name string) (*Field, error) {
	f, ok := g.Fields[name]
	if !ok {
		names := make([]string, 0, len(g.Fields))
		for n := range g.Fields {
			names = append(names, n)
		}
		return nil, fmt.Errorf("mesh: no field %q (have %v)", name, names)
	}
	return f, nil
}

// FieldRange returns the min and max of a field's values.
func (g *StructuredGrid) FieldRange(name string) (float64, float64, error) {
	f, err := g.Field(name)
	if err != nil {
		return 0, 0, err
	}
	if len(f.Values) == 0 {
		return 0, 0, fmt.Errorf("mesh: field %q is empty", name)
	}
	lo, hi := f.Values[0], f.Values[0]
	for _, v := range f.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, nil
}

// cellCorner offsets in the canonical hexahedron ordering used by the
// tetrahedralization and marching-tetrahedra tables.
var hexCorners = [8][3]int{
	{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
	{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1},
}

// hexTets decomposes the canonical hexahedron into six tetrahedra that
// share the 0-6 diagonal, a conforming decomposition for structured grids.
var hexTets = [6][4]int{
	{0, 1, 2, 6},
	{0, 2, 3, 6},
	{0, 3, 7, 6},
	{0, 7, 4, 6},
	{0, 4, 5, 6},
	{0, 5, 1, 6},
}

// Gradient estimates the central-difference gradient of a vertex field at
// point (i,j,k), in world units.
func (g *StructuredGrid) Gradient(vals []float64, i, j, k int) vecmath.Vec3 {
	sample := func(i, j, k int) float64 {
		return vals[g.PointIndex(i, j, k)]
	}
	diff := func(lo, hi, coordLo, coordHi float64) float64 {
		d := coordHi - coordLo
		if d == 0 {
			return 0
		}
		return (hi - lo) / d
	}
	im, ip := max(i-1, 0), min(i+1, g.Nx-1)
	jm, jp := max(j-1, 0), min(j+1, g.Ny-1)
	km, kp := max(k-1, 0), min(k+1, g.Nz-1)
	return vecmath.V(
		diff(sample(im, j, k), sample(ip, j, k), g.Point(im, j, k).X, g.Point(ip, j, k).X),
		diff(sample(i, jm, k), sample(i, jp, k), g.Point(i, jm, k).Y, g.Point(i, jp, k).Y),
		diff(sample(i, j, km), sample(i, j, kp), g.Point(i, j, km).Z, g.Point(i, j, kp).Z),
	)
}

// Dims3 factors n tasks into a near-cubic (px, py, pz) process grid, the
// MPI_Dims_create analogue used for block domain decomposition.
func Dims3(n int) (int, int, int) {
	if n < 1 {
		return 1, 1, 1
	}
	best := [3]int{n, 1, 1}
	bestScore := score3(n, 1, 1)
	for px := 1; px <= n; px++ {
		if n%px != 0 {
			continue
		}
		rem := n / px
		for py := 1; py <= rem; py++ {
			if rem%py != 0 {
				continue
			}
			pz := rem / py
			if s := score3(px, py, pz); s < bestScore {
				best = [3]int{px, py, pz}
				bestScore = s
			}
		}
	}
	return best[0], best[1], best[2]
}

// score3 prefers balanced factorizations (smaller surface-to-volume).
func score3(a, b, c int) int {
	return a*b + b*c + c*a
}

// BlockBounds returns the world-space bounds of block rank within a unit
// process grid decomposition of domain, using Dims3(tasks).
func BlockBounds(domain vecmath.AABB, tasks, rank int) vecmath.AABB {
	px, py, pz := Dims3(tasks)
	ix := rank % px
	iy := (rank / px) % py
	iz := rank / (px * py)
	d := domain.Diagonal()
	lo := vecmath.V(
		domain.Min.X+d.X*float64(ix)/float64(px),
		domain.Min.Y+d.Y*float64(iy)/float64(py),
		domain.Min.Z+d.Z*float64(iz)/float64(pz),
	)
	hi := vecmath.V(
		domain.Min.X+d.X*float64(ix+1)/float64(px),
		domain.Min.Y+d.Y*float64(iy+1)/float64(py),
		domain.Min.Z+d.Z*float64(iz+1)/float64(pz),
	)
	return vecmath.AABB{Min: lo, Max: hi}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
