package mesh

import (
	"math"
	"testing"

	"insitu/internal/device"
	"insitu/internal/vecmath"
)

func unitGrid(n int) *StructuredGrid {
	return NewUniformGrid(n, n, n, vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(1, 1, 1)})
}

func sphereField(g *StructuredGrid) []float64 {
	vals := make([]float64, g.NumPoints())
	c := vecmath.V(0.5, 0.5, 0.5)
	idx := 0
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				vals[idx] = g.Point(i, j, k).Sub(c).Length()
				idx++
			}
		}
	}
	return vals
}

func TestGridCountsAndBounds(t *testing.T) {
	g := unitGrid(5)
	if g.NumPoints() != 125 {
		t.Errorf("NumPoints = %d", g.NumPoints())
	}
	if g.NumCells() != 64 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	b := g.Bounds()
	if b.Min != vecmath.V(0, 0, 0) || b.Max != vecmath.V(1, 1, 1) {
		t.Errorf("Bounds = %v", b)
	}
	p := g.Point(4, 0, 0)
	if math.Abs(p.X-1) > 1e-12 {
		t.Errorf("Point(4,0,0) = %v", p)
	}
}

func TestRectilinearGrid(t *testing.T) {
	g := NewRectilinearGrid([]float64{0, 1, 4}, []float64{0, 2}, []float64{0, 3})
	if g.NumPoints() != 12 || g.NumCells() != 2 {
		t.Errorf("points=%d cells=%d", g.NumPoints(), g.NumCells())
	}
	if got := g.Point(2, 1, 1); got != vecmath.V(4, 2, 3) {
		t.Errorf("Point = %v", got)
	}
}

func TestFieldValidation(t *testing.T) {
	g := unitGrid(3)
	if err := g.AddField("bad", VertexAssoc, make([]float64, 5)); err == nil {
		t.Error("expected size mismatch error")
	}
	if err := g.AddField("cells", CellAssoc, make([]float64, g.NumCells())); err != nil {
		t.Error(err)
	}
	if _, err := g.Field("missing"); err == nil {
		t.Error("expected missing field error")
	}
}

func TestFieldRange(t *testing.T) {
	g := unitGrid(3)
	vals := make([]float64, g.NumPoints())
	for i := range vals {
		vals[i] = float64(i)
	}
	if err := g.AddField("f", VertexAssoc, vals); err != nil {
		t.Fatal(err)
	}
	lo, hi, err := g.FieldRange("f")
	if err != nil || lo != 0 || hi != float64(len(vals)-1) {
		t.Errorf("range = %v..%v err=%v", lo, hi, err)
	}
}

func TestDims3Products(t *testing.T) {
	for n := 1; n <= 64; n++ {
		px, py, pz := Dims3(n)
		if px*py*pz != n {
			t.Fatalf("Dims3(%d) = %d*%d*%d", n, px, py, pz)
		}
	}
	// 8 should factor as a cube.
	px, py, pz := Dims3(8)
	if px != 2 || py != 2 || pz != 2 {
		t.Errorf("Dims3(8) = %d,%d,%d", px, py, pz)
	}
}

func TestBlockBoundsTileDomain(t *testing.T) {
	domain := vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(2, 1, 1)}
	for _, tasks := range []int{1, 2, 4, 6, 8} {
		var vol float64
		for r := 0; r < tasks; r++ {
			b := BlockBounds(domain, tasks, r)
			d := b.Diagonal()
			vol += d.X * d.Y * d.Z
			if !b.Valid() {
				t.Fatalf("tasks=%d rank=%d invalid block", tasks, r)
			}
		}
		want := 2.0
		if math.Abs(vol-want) > 1e-9 {
			t.Errorf("tasks=%d blocks cover volume %v, want %v", tasks, vol, want)
		}
	}
}

func TestExternalFacesCount(t *testing.T) {
	n := 6 // points; cells per axis = 5
	g := unitGrid(n)
	if err := g.AddField("f", VertexAssoc, sphereField(g)); err != nil {
		t.Fatal(err)
	}
	m, err := g.ExternalFaces("f")
	if err != nil {
		t.Fatal(err)
	}
	cells := n - 1
	want := 12 * cells * cells
	if m.NumTriangles() != want {
		t.Errorf("triangles = %d want %d", m.NumTriangles(), want)
	}
	// Bounds match the grid bounds.
	mb, gb := m.Bounds(), g.Bounds()
	if mb.Min.Sub(gb.Min).Length() > 1e-12 || mb.Max.Sub(gb.Max).Length() > 1e-12 {
		t.Errorf("bounds %v != grid %v", mb, gb)
	}
	// Scalars within field range.
	lo, hi, _ := g.FieldRange("f")
	for _, s := range m.Scalars {
		if s < lo-1e-12 || s > hi+1e-12 {
			t.Fatalf("scalar %v outside [%v,%v]", s, lo, hi)
		}
	}
}

func TestIsosurfaceSphere(t *testing.T) {
	g := unitGrid(20)
	if err := g.AddField("dist", VertexAssoc, sphereField(g)); err != nil {
		t.Fatal(err)
	}
	const iso = 0.3
	for _, d := range []*device.Device{device.Serial(), device.New("w4", 4)} {
		m, err := g.Isosurface(d, "dist", iso, IsoOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m.NumTriangles() == 0 {
			t.Fatal("no triangles extracted")
		}
		c := vecmath.V(0.5, 0.5, 0.5)
		cellDiag := g.Spacing.Length()
		for i := range m.X {
			r := vecmath.V(m.X[i], m.Y[i], m.Z[i]).Sub(c).Length()
			if math.Abs(r-iso) > cellDiag {
				t.Fatalf("%s: vertex %d at radius %v, want ~%v", d.Name, i, r, iso)
			}
			// Gradient normals of a distance field point radially.
			n := m.Normal(int32(i))
			radial := vecmath.V(m.X[i], m.Y[i], m.Z[i]).Sub(c).Normalize()
			if n.Dot(radial) < 0.8 {
				t.Fatalf("%s: normal %v not radial (dot=%v)", d.Name, n, n.Dot(radial))
			}
			// Scalars should equal the isovalue when no color field given.
			if math.Abs(m.Scalars[i]-iso) > 1e-9 {
				t.Fatalf("scalar %v != iso", m.Scalars[i])
			}
		}
	}
}

func TestIsosurfaceDeterministicAcrossDevices(t *testing.T) {
	g := unitGrid(12)
	if err := g.AddField("dist", VertexAssoc, sphereField(g)); err != nil {
		t.Fatal(err)
	}
	a, err := g.Isosurface(device.Serial(), "dist", 0.25, IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Isosurface(device.New("w8", 8), "dist", 0.25, IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTriangles() != b.NumTriangles() {
		t.Fatalf("triangle count differs: %d vs %d", a.NumTriangles(), b.NumTriangles())
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.Z[i] != b.Z[i] {
			t.Fatalf("vertex %d differs across devices", i)
		}
	}
}

func TestIsosurfaceOutsideRangeIsEmpty(t *testing.T) {
	g := unitGrid(8)
	if err := g.AddField("dist", VertexAssoc, sphereField(g)); err != nil {
		t.Fatal(err)
	}
	m, err := g.Isosurface(device.CPU(), "dist", 99, IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() != 0 {
		t.Errorf("expected empty mesh, got %d triangles", m.NumTriangles())
	}
}

func TestIsosurfaceColorField(t *testing.T) {
	g := unitGrid(10)
	if err := g.AddField("dist", VertexAssoc, sphereField(g)); err != nil {
		t.Fatal(err)
	}
	height := make([]float64, g.NumPoints())
	idx := 0
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				height[idx] = g.Point(i, j, k).Y
				idx++
			}
		}
	}
	if err := g.AddField("height", VertexAssoc, height); err != nil {
		t.Fatal(err)
	}
	m, err := g.Isosurface(device.CPU(), "dist", 0.3, IsoOptions{ColorField: "height"})
	if err != nil {
		t.Fatal(err)
	}
	// Height scalars should roughly match vertex Y.
	for i := range m.X {
		if math.Abs(m.Scalars[i]-m.Y[i]) > 0.15 {
			t.Fatalf("color scalar %v far from y=%v", m.Scalars[i], m.Y[i])
		}
	}
}

func tetVolume(a, b, c, d vecmath.Vec3) float64 {
	return math.Abs(b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a))) / 6
}

func TestTetrahedralizeVolumeConservation(t *testing.T) {
	g := NewUniformGrid(4, 3, 5, vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(3, 2, 4)})
	vals := make([]float64, g.NumPoints())
	if err := g.AddField("f", VertexAssoc, vals); err != nil {
		t.Fatal(err)
	}
	tm, err := g.Tetrahedralize("f")
	if err != nil {
		t.Fatal(err)
	}
	if tm.NumTets() != 6*g.NumCells() {
		t.Errorf("tets = %d want %d", tm.NumTets(), 6*g.NumCells())
	}
	var vol float64
	for i := 0; i < tm.NumTets(); i++ {
		a, b, c, d := tm.TetVerts(i)
		vol += tetVolume(a, b, c, d)
	}
	want := 3.0 * 2 * 4
	if math.Abs(vol-want) > 1e-9 {
		t.Errorf("total tet volume = %v want %v", vol, want)
	}
}

func TestGradientOfLinearField(t *testing.T) {
	g := unitGrid(6)
	vals := make([]float64, g.NumPoints())
	idx := 0
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				p := g.Point(i, j, k)
				vals[idx] = 2*p.X + 3*p.Y - p.Z
				idx++
			}
		}
	}
	grad := g.Gradient(vals, 2, 3, 1)
	want := vecmath.V(2, 3, -1)
	if grad.Sub(want).Length() > 1e-9 {
		t.Errorf("gradient = %v want %v", grad, want)
	}
	// Boundary gradients use one-sided differences but stay exact for a
	// linear field.
	grad = g.Gradient(vals, 0, 0, 0)
	if grad.Sub(want).Length() > 1e-9 {
		t.Errorf("boundary gradient = %v want %v", grad, want)
	}
}

func TestEnsureNormalsUnitLength(t *testing.T) {
	g := unitGrid(5)
	if err := g.AddField("f", VertexAssoc, sphereField(g)); err != nil {
		t.Fatal(err)
	}
	m, err := g.ExternalFaces("f")
	if err != nil {
		t.Fatal(err)
	}
	m.NX, m.NY, m.NZ = nil, nil, nil
	m.EnsureNormals()
	for i := range m.NX {
		l := vecmath.V(m.NX[i], m.NY[i], m.NZ[i]).Length()
		if math.Abs(l-1) > 1e-9 {
			t.Fatalf("normal %d has length %v", i, l)
		}
	}
}
