package mesh

import (
	"math"
	"testing"

	"insitu/internal/vecmath"
)

// twoHexMesh builds two unit hexes sharing one face (3x2x2 points).
func twoHexMesh() (x, y, z []float64, conn []int32) {
	g := NewUniformGrid(3, 2, 2, vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(2, 1, 1)})
	for k := 0; k < 2; k++ {
		for j := 0; j < 2; j++ {
			for i := 0; i < 3; i++ {
				p := g.Point(i, j, k)
				x = append(x, p.X)
				y = append(y, p.Y)
				z = append(z, p.Z)
			}
		}
	}
	return x, y, z, g.HexConnectivity()
}

func TestExternalFacesFromHexesRemovesInteriorFace(t *testing.T) {
	x, y, z, conn := twoHexMesh()
	scalars := make([]float64, len(x))
	m, err := ExternalFacesFromHexes(x, y, z, conn, scalars)
	if err != nil {
		t.Fatal(err)
	}
	// Two hexes: 12 faces total, 2 coincide -> 10 boundary quads -> 20 tris.
	if m.NumTriangles() != 20 {
		t.Errorf("triangles = %d want 20", m.NumTriangles())
	}
	// Surface area of the 2x1x1 box: 2*(2+2+1) = 10.
	var area float64
	for tr := 0; tr < m.NumTriangles(); tr++ {
		a, b, c := m.TriVerts(tr)
		area += b.Sub(a).Cross(c.Sub(a)).Length() / 2
	}
	if math.Abs(area-10) > 1e-9 {
		t.Errorf("boundary area = %v want 10", area)
	}
}

func TestExternalFacesFromHexesValidation(t *testing.T) {
	if _, err := ExternalFacesFromHexes(nil, nil, nil, make([]int32, 7), nil); err == nil {
		t.Error("expected bad-connectivity error")
	}
	if _, err := ExternalFacesFromHexes(make([]float64, 3), make([]float64, 2), make([]float64, 3), make([]int32, 8), make([]float64, 3)); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestTetMeshFromHexesVolume(t *testing.T) {
	x, y, z, conn := twoHexMesh()
	scalars := make([]float64, len(x))
	tm, err := TetMeshFromHexes(x, y, z, conn, scalars)
	if err != nil {
		t.Fatal(err)
	}
	if tm.NumTets() != 12 {
		t.Errorf("tets = %d want 12", tm.NumTets())
	}
	var vol float64
	for i := 0; i < tm.NumTets(); i++ {
		a, b, c, d := tm.TetVerts(i)
		vol += math.Abs(b.Sub(a).Cross(c.Sub(a)).Dot(d.Sub(a))) / 6
	}
	if math.Abs(vol-2) > 1e-9 {
		t.Errorf("volume = %v want 2", vol)
	}
	// Zero-copy: tet mesh shares the coordinate arrays.
	x[0] = 42
	if tm.X[0] != 42 {
		t.Error("TetMeshFromHexes should share coordinates")
	}
}

func TestElementToVertexAveraging(t *testing.T) {
	x, _, _, conn := twoHexMesh()
	elem := []float64{1, 3} // left hex 1, right hex 3
	vert, err := ElementToVertex(len(x), conn, elem)
	if err != nil {
		t.Fatal(err)
	}
	// Points on the shared face belong to both hexes: average 2.
	// Point index 1 is (x=1, y=0, z=0), on the shared face.
	if vert[1] != 2 {
		t.Errorf("shared-face vertex = %v want 2", vert[1])
	}
	// Corner point 0 belongs only to the left hex.
	if vert[0] != 1 {
		t.Errorf("corner vertex = %v want 1", vert[0])
	}
	if _, err := ElementToVertex(len(x), conn, []float64{1}); err == nil {
		t.Error("expected count-mismatch error")
	}
}

func TestHexConnectivityShape(t *testing.T) {
	g := NewUniformGrid(3, 3, 3, vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(1, 1, 1)})
	conn := g.HexConnectivity()
	if len(conn) != g.NumCells()*8 {
		t.Fatalf("connectivity length = %d", len(conn))
	}
	for _, v := range conn {
		if v < 0 || int(v) >= g.NumPoints() {
			t.Fatalf("vertex id %d out of range", v)
		}
	}
}
