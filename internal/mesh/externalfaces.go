package mesh

import (
	"insitu/internal/vecmath"
)

// ExternalFaces extracts the boundary surface of a structured grid as a
// triangle mesh: each boundary quad becomes two triangles, so an N^3 grid
// yields 12*N^2 triangles — the geometry workload the paper's modeling
// study renders (its stand-in for slice and contour outputs). The named
// vertex field supplies per-vertex scalars; outward axis normals are set.
func (g *StructuredGrid) ExternalFaces(fieldName string) (*TriangleMesh, error) {
	f, err := g.Field(fieldName)
	if err != nil {
		return nil, err
	}
	if f.Assoc != VertexAssoc {
		return nil, errCellAssoc(fieldName)
	}
	vals := f.Values
	out := &TriangleMesh{}

	// emitQuad adds two triangles for the quad (p00, p10, p11, p01) given
	// as point indices (i,j,k triples) with the face's outward normal.
	emitQuad := func(idx [4][3]int, normal vecmath.Vec3) {
		base := int32(len(out.X))
		for _, id := range idx {
			p := g.Point(id[0], id[1], id[2])
			out.X = append(out.X, p.X)
			out.Y = append(out.Y, p.Y)
			out.Z = append(out.Z, p.Z)
			out.NX = append(out.NX, normal.X)
			out.NY = append(out.NY, normal.Y)
			out.NZ = append(out.NZ, normal.Z)
			out.Scalars = append(out.Scalars, vals[g.PointIndex(id[0], id[1], id[2])])
		}
		out.Conn = append(out.Conn, base, base+1, base+2, base, base+2, base+3)
	}

	nx, ny, nz := g.Nx, g.Ny, g.Nz
	// -Z and +Z faces.
	for _, face := range []struct {
		k int
		n vecmath.Vec3
	}{{0, vecmath.V(0, 0, -1)}, {nz - 1, vecmath.V(0, 0, 1)}} {
		for j := 0; j < ny-1; j++ {
			for i := 0; i < nx-1; i++ {
				emitQuad([4][3]int{
					{i, j, face.k}, {i + 1, j, face.k}, {i + 1, j + 1, face.k}, {i, j + 1, face.k},
				}, face.n)
			}
		}
	}
	// -Y and +Y faces.
	for _, face := range []struct {
		j int
		n vecmath.Vec3
	}{{0, vecmath.V(0, -1, 0)}, {ny - 1, vecmath.V(0, 1, 0)}} {
		for k := 0; k < nz-1; k++ {
			for i := 0; i < nx-1; i++ {
				emitQuad([4][3]int{
					{i, face.j, k}, {i + 1, face.j, k}, {i + 1, face.j, k + 1}, {i, face.j, k + 1},
				}, face.n)
			}
		}
	}
	// -X and +X faces.
	for _, face := range []struct {
		i int
		n vecmath.Vec3
	}{{0, vecmath.V(-1, 0, 0)}, {nx - 1, vecmath.V(1, 0, 0)}} {
		for k := 0; k < nz-1; k++ {
			for j := 0; j < ny-1; j++ {
				emitQuad([4][3]int{
					{face.i, j, k}, {face.i, j + 1, k}, {face.i, j + 1, k + 1}, {face.i, j, k + 1},
				}, face.n)
			}
		}
	}
	out.UpdateScalarRange()
	return out, nil
}
