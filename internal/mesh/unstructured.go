package mesh

import (
	"fmt"
)

// hexFaces lists the six quad faces of the canonical hexahedron in the
// hexCorners ordering, wound outward.
var hexFaces = [6][4]int{
	{0, 3, 2, 1}, // -z
	{4, 5, 6, 7}, // +z
	{0, 1, 5, 4}, // -y
	{3, 7, 6, 2}, // +y
	{0, 4, 7, 3}, // -x
	{1, 2, 6, 5}, // +x
}

// faceKey identifies a quad face independent of orientation.
type faceKey [4]int32

func makeFaceKey(a, b, c, d int32) faceKey {
	k := faceKey{a, b, c, d}
	// Insertion sort of four elements.
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && k[j-1] > k[j]; j-- {
			k[j-1], k[j] = k[j], k[j-1]
		}
	}
	return k
}

// ExternalFacesFromHexes extracts the boundary surface of an unstructured
// hexahedral mesh: faces referenced by exactly one hexahedron become two
// triangles each. scalars are per-vertex values carried onto the surface.
// This is the Lagrangian-mesh path of the in situ pipeline (the proxy
// hydrodynamics code publishes explicit coordinates and hex connectivity).
func ExternalFacesFromHexes(x, y, z []float64, conn []int32, scalars []float64) (*TriangleMesh, error) {
	if len(conn)%8 != 0 {
		return nil, fmt.Errorf("mesh: hex connectivity length %d not divisible by 8", len(conn))
	}
	nverts := len(x)
	if len(y) != nverts || len(z) != nverts || len(scalars) != nverts {
		return nil, fmt.Errorf("mesh: coordinate/scalar arrays disagree on vertex count")
	}
	nhex := len(conn) / 8
	type faceRef struct {
		verts [4]int32
		count int
	}
	faces := make(map[faceKey]*faceRef, nhex*3)
	for h := 0; h < nhex; h++ {
		hex := conn[8*h : 8*h+8]
		for _, f := range hexFaces {
			a, b, c, d := hex[f[0]], hex[f[1]], hex[f[2]], hex[f[3]]
			key := makeFaceKey(a, b, c, d)
			if ref, ok := faces[key]; ok {
				ref.count++
			} else {
				faces[key] = &faceRef{verts: [4]int32{a, b, c, d}, count: 1}
			}
		}
	}
	out := &TriangleMesh{}
	emit := func(a, b, c int32) {
		base := int32(len(out.X))
		for _, v := range [3]int32{a, b, c} {
			out.X = append(out.X, x[v])
			out.Y = append(out.Y, y[v])
			out.Z = append(out.Z, z[v])
			out.Scalars = append(out.Scalars, scalars[v])
		}
		out.Conn = append(out.Conn, base, base+1, base+2)
	}
	for _, ref := range faces {
		if ref.count != 1 {
			continue // interior face
		}
		emit(ref.verts[0], ref.verts[1], ref.verts[2])
		emit(ref.verts[0], ref.verts[2], ref.verts[3])
	}
	out.EnsureNormals()
	out.UpdateScalarRange()
	return out, nil
}

// TetMeshFromHexes splits unstructured hexahedra into six tetrahedra each,
// sharing the original vertex arrays (zero copy of coordinates).
func TetMeshFromHexes(x, y, z []float64, conn []int32, scalars []float64) (*TetMesh, error) {
	if len(conn)%8 != 0 {
		return nil, fmt.Errorf("mesh: hex connectivity length %d not divisible by 8", len(conn))
	}
	nverts := len(x)
	if len(y) != nverts || len(z) != nverts || len(scalars) != nverts {
		return nil, fmt.Errorf("mesh: coordinate/scalar arrays disagree on vertex count")
	}
	nhex := len(conn) / 8
	out := &TetMesh{X: x, Y: y, Z: z, Scalars: scalars, Conn: make([]int32, 0, nhex*24)}
	for h := 0; h < nhex; h++ {
		hex := conn[8*h : 8*h+8]
		for _, tet := range hexTets {
			out.Conn = append(out.Conn, hex[tet[0]], hex[tet[1]], hex[tet[2]], hex[tet[3]])
		}
	}
	out.UpdateScalarRange()
	return out, nil
}

// ElementToVertex averages an element-associated field onto vertices of an
// unstructured hex mesh, the conversion the in situ pipeline applies when
// a plot asks for a cell-centered quantity.
func ElementToVertex(nverts int, conn []int32, elemVals []float64) ([]float64, error) {
	if len(conn)%8 != 0 {
		return nil, fmt.Errorf("mesh: hex connectivity length %d not divisible by 8", len(conn))
	}
	nhex := len(conn) / 8
	if len(elemVals) != nhex {
		return nil, fmt.Errorf("mesh: %d element values for %d hexes", len(elemVals), nhex)
	}
	sums := make([]float64, nverts)
	counts := make([]float64, nverts)
	for h := 0; h < nhex; h++ {
		for c := 0; c < 8; c++ {
			v := conn[8*h+c]
			sums[v] += elemVals[h]
			counts[v]++
		}
	}
	for v := range sums {
		if counts[v] > 0 {
			sums[v] /= counts[v]
		}
	}
	return sums, nil
}

// HexConnectivity builds the standard hex connectivity of a structured
// grid (8 point ids per cell), used by proxies that publish their
// structured block as an unstructured Lagrangian mesh.
func (g *StructuredGrid) HexConnectivity() []int32 {
	cx, cy, cz := g.CellDims()
	conn := make([]int32, 0, cx*cy*cz*8)
	for k := 0; k < cz; k++ {
		for j := 0; j < cy; j++ {
			for i := 0; i < cx; i++ {
				for _, off := range hexCorners {
					conn = append(conn, int32(g.PointIndex(i+off[0], j+off[1], k+off[2])))
				}
			}
		}
	}
	return conn
}
