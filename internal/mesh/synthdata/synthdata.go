// Package synthdata generates the synthetic stand-ins for the paper's
// datasets: Richtmyer-Meshkov mixing layers, Lead Telluride charge
// densities, seismic wave-speed perturbations, Enzo-like cosmology density,
// and Nek5000-like thermal plumes. Each generator is an analytic field
// function over the unit cube, so distributed tasks can sample their own
// sub-block of the same global field — the weak-scaling setup of the study.
package synthdata

import (
	"fmt"
	"math"
	"math/rand"

	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

// FieldFunc evaluates a scalar field at a world-space point.
type FieldFunc func(p vecmath.Vec3) float64

// UnitBounds is the canonical global domain.
func UnitBounds() vecmath.AABB {
	return vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(1, 1, 1)}
}

// MixingLayer models a Richtmyer-Meshkov style density interface: a tanh
// profile across y = 0.5 perturbed by a deterministic set of sinusoidal
// modes, plus fine-scale roll-up wiggle near the interface.
func MixingLayer(seed int64) FieldFunc {
	rng := rand.New(rand.NewSource(seed))
	const modes = 6
	amp := make([]float64, modes)
	kx := make([]float64, modes)
	kz := make([]float64, modes)
	ph := make([]float64, modes)
	for m := 0; m < modes; m++ {
		amp[m] = 0.02 + 0.05*rng.Float64()/float64(m+1)
		kx[m] = float64(1+rng.Intn(5)) * 2 * math.Pi
		kz[m] = float64(1+rng.Intn(5)) * 2 * math.Pi
		ph[m] = rng.Float64() * 2 * math.Pi
	}
	return func(p vecmath.Vec3) float64 {
		perturb := 0.0
		for m := 0; m < modes; m++ {
			perturb += amp[m] * math.Sin(kx[m]*p.X+ph[m]) * math.Cos(kz[m]*p.Z+ph[m]*0.5)
		}
		y := p.Y - 0.5 - perturb
		base := 0.5 * (1 + math.Tanh(y/0.06))
		rollup := 0.08 * math.Exp(-y*y/0.01) * math.Sin(24*math.Pi*p.X) * math.Sin(24*math.Pi*p.Z)
		return base + rollup
	}
}

// CrystalLattice models a Lead-Telluride-like charge density: Gaussian
// charge blobs on two interpenetrating cubic sublattices.
func CrystalLattice() FieldFunc {
	const cells = 4.0
	return func(p vecmath.Vec3) float64 {
		blob := func(q vecmath.Vec3, sigma, w float64) float64 {
			frac := func(v float64) float64 { return v - math.Floor(v) }
			d := vecmath.V(frac(q.X*cells)-0.5, frac(q.Y*cells)-0.5, frac(q.Z*cells)-0.5)
			return w * math.Exp(-d.Length2()/(2*sigma*sigma))
		}
		a := blob(p, 0.16, 1.0)
		b := blob(p.Add(vecmath.V(0.5/cells, 0.5/cells, 0.5/cells)), 0.11, 0.7)
		return a + b
	}
}

// SeismicSpeed models SPECFEM-like wave-speed perturbations: layered
// background velocity with spherical wavefront perturbations radiating
// from deterministic event hypocenters.
func SeismicSpeed(seed int64) FieldFunc {
	rng := rand.New(rand.NewSource(seed))
	const events = 4
	centers := make([]vecmath.Vec3, events)
	radii := make([]float64, events)
	for e := 0; e < events; e++ {
		centers[e] = vecmath.V(rng.Float64(), rng.Float64()*0.4, rng.Float64())
		radii[e] = 0.15 + 0.5*rng.Float64()
	}
	return func(p vecmath.Vec3) float64 {
		layered := 0.4 + 0.4*p.Y + 0.05*math.Sin(10*math.Pi*p.Y)
		wave := 0.0
		for e := 0; e < events; e++ {
			r := p.Sub(centers[e]).Length()
			wave += 0.12 * math.Exp(-40*(r-radii[e])*(r-radii[e])) * math.Cos(30*r)
		}
		return layered + wave
	}
}

// CosmologyBlobs models an Enzo-like density field: clustered Gaussian
// halos with a power-law mass spectrum over a low uniform background.
func CosmologyBlobs(seed int64, halos int) FieldFunc {
	rng := rand.New(rand.NewSource(seed))
	type halo struct {
		c    vecmath.Vec3
		s, w float64
	}
	hs := make([]halo, halos)
	// Cluster halos around a few attractors so the field has large-scale
	// structure like a cosmological simulation.
	attractors := make([]vecmath.Vec3, 5)
	for i := range attractors {
		attractors[i] = vecmath.V(rng.Float64(), rng.Float64(), rng.Float64())
	}
	for i := range hs {
		a := attractors[rng.Intn(len(attractors))]
		off := vecmath.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Scale(0.08)
		mass := math.Pow(rng.Float64()+0.05, -0.8) // power-law-ish masses
		hs[i] = halo{
			c: a.Add(off),
			s: 0.01 + 0.03*rng.Float64(),
			w: 0.1 * mass,
		}
	}
	return func(p vecmath.Vec3) float64 {
		rho := 0.02
		for _, h := range hs {
			d2 := p.Sub(h.c).Length2()
			rho += h.w * math.Exp(-d2/(2*h.s*h.s))
		}
		return rho
	}
}

// ThermalPlume models a Nek5000-like thermal hydraulics temperature field:
// a hot rising plume with sinusoidal sway and entrainment vortices.
func ThermalPlume() FieldFunc {
	return func(p vecmath.Vec3) float64 {
		sway := 0.08 * math.Sin(3*math.Pi*p.Y)
		dx := p.X - 0.5 - sway
		dz := p.Z - 0.5 - 0.5*sway
		core := math.Exp(-(dx*dx + dz*dz) / (0.015 + 0.05*p.Y*p.Y))
		vortex := 0.15 * math.Sin(8*math.Pi*p.Y) * math.Exp(-(dx*dx+dz*dz)/0.05)
		return 0.1 + 0.9*core*p.Y + vortex
	}
}

// Grid samples a field function on an nx x ny x nz uniform grid over the
// given bounds and attaches the samples as a vertex field.
func Grid(fieldName string, f FieldFunc, nx, ny, nz int, bounds vecmath.AABB) *mesh.StructuredGrid {
	g := mesh.NewUniformGrid(nx, ny, nz, bounds)
	vals := make([]float64, g.NumPoints())
	idx := 0
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				vals[idx] = f(g.Point(i, j, k))
				idx++
			}
		}
	}
	if err := g.AddField(fieldName, mesh.VertexAssoc, vals); err != nil {
		panic(err) // sizes are constructed to match
	}
	return g
}

// Dataset describes a named synthetic dataset.
type Dataset struct {
	Name      string
	FieldName string
	Func      FieldFunc
	// Isovalue is a good default contour for surface extraction.
	Isovalue float64
}

// Datasets returns the study's dataset pool, the stand-ins for the paper's
// RM, Lead Telluride, Seismic, Enzo, and Nek5000 data.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "rm", FieldName: "density", Func: MixingLayer(42), Isovalue: 0.5},
		{Name: "lt", FieldName: "charge", Func: CrystalLattice(), Isovalue: 0.45},
		{Name: "seismic", FieldName: "speed", Func: SeismicSpeed(7), Isovalue: 0.62},
		{Name: "enzo", FieldName: "density", Func: CosmologyBlobs(3, 60), Isovalue: 0.12},
		{Name: "nek", FieldName: "temperature", Func: ThermalPlume(), Isovalue: 0.5},
	}
}

// ByName returns a named dataset from the pool.
func ByName(name string) (Dataset, error) {
	for _, ds := range Datasets() {
		if ds.Name == name {
			return ds, nil
		}
	}
	return Dataset{}, fmt.Errorf("synthdata: unknown dataset %q", name)
}

// BlockGrid samples the dataset on one task's block of the global unit
// domain, with n points per axis on the block: the weak-scaling layout
// (total cells grow proportionally with task count).
func (ds Dataset) BlockGrid(n, tasks, rank int) *mesh.StructuredGrid {
	b := mesh.BlockBounds(UnitBounds(), tasks, rank)
	return Grid(ds.FieldName, ds.Func, n, n, n, b)
}
