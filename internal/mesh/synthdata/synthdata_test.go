package synthdata

import (
	"math"
	"testing"

	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

func TestDatasetsAreDeterministic(t *testing.T) {
	for _, ds := range Datasets() {
		a := ds.Func(vecmath.V(0.3, 0.6, 0.4))
		b := ByNameMust(t, ds.Name).Func(vecmath.V(0.3, 0.6, 0.4))
		if a != b {
			t.Errorf("%s: generator not deterministic: %v vs %v", ds.Name, a, b)
		}
	}
}

func ByNameMust(t *testing.T, name string) Dataset {
	t.Helper()
	ds, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestFieldsAreFiniteAndVarying(t *testing.T) {
	for _, ds := range Datasets() {
		g := Grid(ds.FieldName, ds.Func, 12, 12, 12, UnitBounds())
		lo, hi, err := g.FieldRange(ds.FieldName)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
			t.Errorf("%s: field range not finite: [%v,%v]", ds.Name, lo, hi)
		}
		if hi-lo < 1e-6 {
			t.Errorf("%s: field is constant", ds.Name)
		}
		// The default isovalue must cut the field so surfaces exist.
		if ds.Isovalue <= lo || ds.Isovalue >= hi {
			t.Errorf("%s: isovalue %v outside range [%v,%v]", ds.Name, ds.Isovalue, lo, hi)
		}
	}
}

func TestBlockGridsTileGlobalField(t *testing.T) {
	ds := ByNameMust(t, "rm")
	// A point inside block r must evaluate identically to the global field.
	tasks := 4
	for r := 0; r < tasks; r++ {
		g := ds.BlockGrid(8, tasks, r)
		f, err := g.Field(ds.FieldName)
		if err != nil {
			t.Fatal(err)
		}
		p := g.Point(3, 4, 5)
		want := ds.Func(p)
		got := f.Values[g.PointIndex(3, 4, 5)]
		if got != want {
			t.Errorf("rank %d: sampled %v want %v", r, got, want)
		}
		// Block bounds must be inside the unit cube.
		b := g.Bounds()
		if b.Min.X < -1e-12 || b.Max.X > 1+1e-12 {
			t.Errorf("rank %d: bounds %v escape unit cube", r, b)
		}
	}
}

func TestBlockGridsCoverDomainOnce(t *testing.T) {
	tasks := 8
	var vol float64
	for r := 0; r < tasks; r++ {
		b := mesh.BlockBounds(UnitBounds(), tasks, r)
		d := b.Diagonal()
		vol += d.X * d.Y * d.Z
	}
	if math.Abs(vol-1) > 1e-9 {
		t.Errorf("blocks cover volume %v, want 1", vol)
	}
}
