// Package vecmath provides the small 3-D linear algebra kernel shared by
// every renderer: vectors, rays, 4x4 transforms, and axis-aligned boxes.
// Everything here is value math on small structs: no function in this
// package may heap-allocate, which the whole-package directive below
// compiles into CI.
//
//insitu:noalloc-package
package vecmath

import "math"

// Vec3 is a 3-component double-precision vector.
type Vec3 struct{ X, Y, Z float64 }

// V builds a Vec3 from components.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v - u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Dot returns the inner product of v and u.
func (v Vec3) Dot(u Vec3) float64 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v x u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Length returns the Euclidean norm of v.
func (v Vec3) Length() float64 { return math.Sqrt(v.Dot(v)) }

// Length2 returns the squared norm of v.
func (v Vec3) Length2() float64 { return v.Dot(v) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec3) Normalize() Vec3 {
	l := v.Length()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Min returns the component-wise minimum of v and u.
func (v Vec3) Min(u Vec3) Vec3 {
	return Vec3{math.Min(v.X, u.X), math.Min(v.Y, u.Y), math.Min(v.Z, u.Z)}
}

// Max returns the component-wise maximum of v and u.
func (v Vec3) Max(u Vec3) Vec3 {
	return Vec3{math.Max(v.X, u.X), math.Max(v.Y, u.Y), math.Max(v.Z, u.Z)}
}

// Lerp linearly interpolates from v to u by t in [0,1].
func (v Vec3) Lerp(u Vec3, t float64) Vec3 { return v.Add(u.Sub(v).Scale(t)) }

// MaxComponent returns the largest component of v.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 { return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)} }

// IsFinite reports whether every component is neither NaN nor infinite.
func (v Vec3) IsFinite() bool {
	return finite(v.X) && finite(v.Y) && finite(v.Z)
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Reflect returns v reflected about unit normal n.
func (v Vec3) Reflect(n Vec3) Vec3 { return v.Sub(n.Scale(2 * v.Dot(n))) }

// Ray is a half-line with origin and (not necessarily unit) direction.
type Ray struct {
	Orig Vec3
	Dir  Vec3
}

// At returns the point Orig + t*Dir.
func (r Ray) At(t float64) Vec3 { return r.Orig.Add(r.Dir.Scale(t)) }

// InvDir returns the reciprocal direction used by slab tests. Zero direction
// components become +Inf, matching the IEEE behaviour slab tests rely on.
func (r Ray) InvDir() Vec3 { return Vec3{1 / r.Dir.X, 1 / r.Dir.Y, 1 / r.Dir.Z} }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
