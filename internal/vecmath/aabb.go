package vecmath

import "math"

// AABB is an axis-aligned bounding box. The zero value is not valid; use
// EmptyAABB so unions start from an inverted box.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns an inverted box that unions correctly with anything.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Valid reports whether the box contains at least one point.
func (b AABB) Valid() bool {
	return b.Min.X <= b.Max.X && b.Min.Y <= b.Max.Y && b.Min.Z <= b.Max.Z
}

// ExpandPoint grows b to contain p.
func (b AABB) ExpandPoint(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Center returns the centroid of the box.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Diagonal returns Max - Min.
func (b AABB) Diagonal() Vec3 { return b.Max.Sub(b.Min) }

// SurfaceArea returns the total surface area of the box, or 0 if invalid.
func (b AABB) SurfaceArea() float64 {
	if !b.Valid() {
		return 0
	}
	d := b.Diagonal()
	return 2 * (d.X*d.Y + d.Y*d.Z + d.Z*d.X)
}

// Contains reports whether p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// HitRay performs the slab test against a ray given its origin and
// reciprocal direction. It returns the parametric entry and exit distances
// clipped to [tmin, tmax] and whether the interval is non-empty.
func (b AABB) HitRay(orig, invDir Vec3, tmin, tmax float64) (float64, float64, bool) {
	t0x := (b.Min.X - orig.X) * invDir.X
	t1x := (b.Max.X - orig.X) * invDir.X
	if t0x > t1x {
		t0x, t1x = t1x, t0x
	}
	t0y := (b.Min.Y - orig.Y) * invDir.Y
	t1y := (b.Max.Y - orig.Y) * invDir.Y
	if t0y > t1y {
		t0y, t1y = t1y, t0y
	}
	t0z := (b.Min.Z - orig.Z) * invDir.Z
	t1z := (b.Max.Z - orig.Z) * invDir.Z
	if t0z > t1z {
		t0z, t1z = t1z, t0z
	}
	t0 := math.Max(math.Max(t0x, t0y), math.Max(t0z, tmin))
	t1 := math.Min(math.Min(t1x, t1y), math.Min(t1z, tmax))
	return t0, t1, t0 <= t1
}
