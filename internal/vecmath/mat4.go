package vecmath

import "math"

// Mat4 is a row-major 4x4 transform matrix.
type Mat4 [16]float64

// Identity returns the identity transform.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// MulMat returns m * n (applying n first, then m).
func (m Mat4) MulMat(n Mat4) Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s := 0.0
			for k := 0; k < 4; k++ {
				s += m[i*4+k] * n[k*4+j]
			}
			r[i*4+j] = s
		}
	}
	return r
}

// TransformPoint applies m to p as a position (w = 1) and performs the
// perspective divide. It also returns the pre-divide w, which callers use
// to reject points behind the eye.
func (m Mat4) TransformPoint(p Vec3) (Vec3, float64) {
	x := m[0]*p.X + m[1]*p.Y + m[2]*p.Z + m[3]
	y := m[4]*p.X + m[5]*p.Y + m[6]*p.Z + m[7]
	z := m[8]*p.X + m[9]*p.Y + m[10]*p.Z + m[11]
	w := m[12]*p.X + m[13]*p.Y + m[14]*p.Z + m[15]
	if w != 0 && w != 1 {
		inv := 1 / w
		return Vec3{x * inv, y * inv, z * inv}, w
	}
	return Vec3{x, y, z}, w
}

// TransformDir applies m to d as a direction (w = 0, no divide).
func (m Mat4) TransformDir(d Vec3) Vec3 {
	return Vec3{
		m[0]*d.X + m[1]*d.Y + m[2]*d.Z,
		m[4]*d.X + m[5]*d.Y + m[6]*d.Z,
		m[8]*d.X + m[9]*d.Y + m[10]*d.Z,
	}
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r[i*4+j] = m[j*4+i]
		}
	}
	return r
}

// LookAt builds a right-handed view matrix with the camera at eye looking
// toward center, matching the OpenGL gluLookAt convention.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	return Mat4{
		s.X, s.Y, s.Z, -s.Dot(eye),
		u.X, u.Y, u.Z, -u.Dot(eye),
		-f.X, -f.Y, -f.Z, f.Dot(eye),
		0, 0, 0, 1,
	}
}

// Perspective builds a right-handed perspective projection with a vertical
// field of view in degrees, mapping depth into clip space like OpenGL.
func Perspective(fovyDeg, aspect, near, far float64) Mat4 {
	f := 1 / math.Tan(Radians(fovyDeg)/2)
	nf := 1 / (near - far)
	return Mat4{
		f / aspect, 0, 0, 0,
		0, f, 0, 0,
		0, 0, (far + near) * nf, 2 * far * near * nf,
		0, 0, -1, 0,
	}
}

// Viewport maps normalized device coordinates in [-1,1] to pixel coordinates
// in a width x height image, with depth mapped to [0,1]. Y is flipped so
// NDC +1 (up) lands on image row 0 (top), matching the ray tracer's pixel
// convention.
func Viewport(width, height int) Mat4 {
	w := float64(width) / 2
	h := float64(height) / 2
	return Mat4{
		w, 0, 0, w,
		0, -h, 0, h,
		0, 0, 0.5, 0.5,
		0, 0, 0, 1,
	}
}
