package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVecBasics(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)
	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
}

func TestCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V(math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100))
		b := V(math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100))
		c := a.Cross(b)
		scale := a.Length()*b.Length() + 1
		return almostEq(c.Dot(a)/scale, 0, 1e-9) && almostEq(c.Dot(b)/scale, 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := V(3, 4, 0).Normalize()
	if !almostEq(v.Length(), 1, 1e-12) {
		t.Errorf("Normalize length = %v", v.Length())
	}
	zero := V(0, 0, 0).Normalize()
	if zero != V(0, 0, 0) {
		t.Errorf("Normalize zero = %v", zero)
	}
}

func TestReflect(t *testing.T) {
	// Reflecting a downward ray off a floor flips Y.
	d := V(1, -1, 0).Normalize()
	r := d.Reflect(V(0, 1, 0))
	want := V(1, 1, 0).Normalize()
	if !vecAlmostEq(r, want, 1e-12) {
		t.Errorf("Reflect = %v want %v", r, want)
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(2, 4, 8)
	if got := a.Lerp(b, 0.5); got != V(1, 2, 4) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestMat4Identity(t *testing.T) {
	m := Identity()
	p, w := m.TransformPoint(V(3, -2, 7))
	if p != V(3, -2, 7) || w != 1 {
		t.Errorf("identity transform = %v w=%v", p, w)
	}
}

func TestMat4MulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randMat := func() Mat4 {
		var m Mat4
		for i := range m {
			m[i] = rng.Float64()*2 - 1
		}
		return m
	}
	for trial := 0; trial < 20; trial++ {
		a, b, c := randMat(), randMat(), randMat()
		ab_c := a.MulMat(b).MulMat(c)
		a_bc := a.MulMat(b.MulMat(c))
		for i := range ab_c {
			if !almostEq(ab_c[i], a_bc[i], 1e-9) {
				t.Fatalf("matrix multiply not associative at %d: %v vs %v", i, ab_c[i], a_bc[i])
			}
		}
	}
}

func TestLookAtMapsCenterToNegZ(t *testing.T) {
	eye := V(0, 0, 5)
	view := LookAt(eye, V(0, 0, 0), V(0, 1, 0))
	p, _ := view.TransformPoint(V(0, 0, 0))
	// Center should land on the -Z axis at distance 5.
	if !vecAlmostEq(p, V(0, 0, -5), 1e-12) {
		t.Errorf("center in view space = %v", p)
	}
	// The eye maps to the origin.
	o, _ := view.TransformPoint(eye)
	if !vecAlmostEq(o, V(0, 0, 0), 1e-12) {
		t.Errorf("eye in view space = %v", o)
	}
}

func TestProjectionPipeline(t *testing.T) {
	w, h := 640, 480
	view := LookAt(V(0, 0, 5), V(0, 0, 0), V(0, 1, 0))
	proj := Perspective(60, float64(w)/float64(h), 0.1, 100)
	vp := Viewport(w, h)
	m := vp.MulMat(proj).MulMat(view)
	// The look-at center projects to the middle of the screen.
	p, pw := m.TransformPoint(V(0, 0, 0))
	if pw <= 0 {
		t.Fatalf("center behind eye, w=%v", pw)
	}
	if !almostEq(p.X, float64(w)/2, 1e-6) || !almostEq(p.Y, float64(h)/2, 1e-6) {
		t.Errorf("center projects to (%v,%v)", p.X, p.Y)
	}
	if p.Z < 0 || p.Z > 1 {
		t.Errorf("depth out of [0,1]: %v", p.Z)
	}
	// A nearer point must have smaller depth.
	near, _ := m.TransformPoint(V(0, 0, 2))
	if near.Z >= p.Z {
		t.Errorf("nearer point has depth %v >= %v", near.Z, p.Z)
	}
}

func TestAABBUnionContains(t *testing.T) {
	f := func(px, py, pz, qx, qy, qz float64) bool {
		p := V(math.Mod(px, 50), math.Mod(py, 50), math.Mod(pz, 50))
		q := V(math.Mod(qx, 50), math.Mod(qy, 50), math.Mod(qz, 50))
		b := EmptyAABB().ExpandPoint(p).ExpandPoint(q)
		return b.Valid() && b.Contains(p) && b.Contains(q) && b.Contains(b.Center())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAABBEmptyUnion(t *testing.T) {
	e := EmptyAABB()
	if e.Valid() {
		t.Error("empty box should be invalid")
	}
	b := AABB{Min: V(0, 0, 0), Max: V(1, 1, 1)}
	if got := e.Union(b); got != b {
		t.Errorf("empty union = %v", got)
	}
	if e.SurfaceArea() != 0 {
		t.Errorf("empty surface area = %v", e.SurfaceArea())
	}
}

func TestAABBRayHit(t *testing.T) {
	b := AABB{Min: V(-1, -1, -1), Max: V(1, 1, 1)}
	r := Ray{Orig: V(0, 0, -5), Dir: V(0, 0, 1)}
	t0, t1, hit := b.HitRay(r.Orig, r.InvDir(), 0, math.Inf(1))
	if !hit || !almostEq(t0, 4, 1e-12) || !almostEq(t1, 6, 1e-12) {
		t.Errorf("hit=%v t0=%v t1=%v", hit, t0, t1)
	}
	// A ray pointing away misses.
	r2 := Ray{Orig: V(0, 0, -5), Dir: V(0, 0, -1)}
	if _, _, hit := b.HitRay(r2.Orig, r2.InvDir(), 0, math.Inf(1)); hit {
		t.Error("ray pointing away should miss")
	}
	// Axis-parallel ray outside the slab misses even with Inf inverses.
	r3 := Ray{Orig: V(5, 0, -5), Dir: V(0, 0, 1)}
	if _, _, hit := b.HitRay(r3.Orig, r3.InvDir(), 0, math.Inf(1)); hit {
		t.Error("offset axis-parallel ray should miss")
	}
}

func TestAABBRayRandomContainment(t *testing.T) {
	// Property: for a random ray hitting the box, the midpoint of the
	// clipped interval lies inside the box.
	rng := rand.New(rand.NewSource(7))
	b := AABB{Min: V(-2, -1, -3), Max: V(1, 2, 0.5)}
	hits := 0
	for trial := 0; trial < 500; trial++ {
		o := V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
		d := V(rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1)
		if d.Length() < 1e-6 {
			continue
		}
		r := Ray{Orig: o, Dir: d}
		t0, t1, hit := b.HitRay(r.Orig, r.InvDir(), 0, math.Inf(1))
		if !hit {
			continue
		}
		hits++
		mid := r.At((t0 + t1) / 2)
		grown := AABB{Min: b.Min.Sub(V(1e-9, 1e-9, 1e-9)), Max: b.Max.Add(V(1e-9, 1e-9, 1e-9))}
		if !grown.Contains(mid) {
			t.Fatalf("midpoint %v outside box for ray %v", mid, r)
		}
	}
	if hits == 0 {
		t.Error("no random rays hit the box; test is vacuous")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestSurfaceArea(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(1, 2, 3)}
	want := 2.0 * (1*2 + 2*3 + 3*1)
	if got := b.SurfaceArea(); !almostEq(got, want, 1e-12) {
		t.Errorf("SurfaceArea = %v want %v", got, want)
	}
}
