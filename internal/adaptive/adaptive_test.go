package adaptive

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"insitu/internal/core"
)

// plantedSamples builds a corpus from a known generating process (same
// coefficients as the core package tests).
func plantedSamples(arch string, n int, seed int64) []core.Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []core.Sample
	for i := 0; i < n; i++ {
		tasks := []int{1, 2, 4}[rng.Intn(3)]
		pix := float64(10000 + rng.Intn(90000))
		ap := 0.5 * pix / math.Cbrt(float64(tasks))
		objects := float64(2000 + rng.Intn(50000))

		rtIn := core.Inputs{O: objects, AP: ap, Pixels: pix, AvgAP: ap, Tasks: tasks}
		rt := core.Sample{
			Arch: arch, Renderer: core.RayTrace, In: rtIn,
			BuildTime:  3e-8*objects + 1e-4,
			RenderTime: 2e-9*ap*math.Log2(objects) + 4e-8*ap + 2e-4,
		}
		if tasks > 1 {
			rt.CompositeTime = 1.5e-8*ap + 5e-9*pix + 1e-4
		}
		out = append(out, rt)

		vo := math.Min(ap, objects)
		raIn := core.Inputs{O: objects, AP: ap, VO: vo, PPT: 4 * ap / vo, Pixels: pix, AvgAP: ap, Tasks: tasks}
		ra := core.Sample{
			Arch: arch, Renderer: core.Raster, In: raIn,
			RenderTime: 1e-8*objects + 2e-9*4*ap + 1e-4,
		}
		if tasks > 1 {
			ra.CompositeTime = 1.5e-8*ap + 5e-9*pix + 1e-4
		}
		out = append(out, ra)
	}
	return out
}

func advisorForTest(t *testing.T) *Advisor {
	t.Helper()
	samples := plantedSamples("cpu", 60, 5)
	set, err := core.FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	return NewAdvisor(set, core.CalibrateMapping(samples), "cpu")
}

func TestDecidePicksLargestFeasibleSize(t *testing.T) {
	a := advisorForTest(t)
	loose, err := a.Decide(128, 4, Constraints{MaxVisSeconds: 10, Images: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Feasible {
		t.Fatal("10 s for 10 images should be feasible")
	}
	tight, err := a.Decide(128, 4, Constraints{MaxVisSeconds: 0.05, Images: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Feasible && tight.ImageSize > loose.ImageSize {
		t.Errorf("tighter budget chose a larger image: %d vs %d", tight.ImageSize, loose.ImageSize)
	}
	if loose.PredictedSeconds > 10 {
		t.Errorf("decision predicts %v s over a 10 s budget", loose.PredictedSeconds)
	}
	if loose.ImageSize < 128 || loose.ImageSize > 4096 {
		t.Errorf("image size %d outside default bounds", loose.ImageSize)
	}
}

func TestDecideInfeasibleFallsBackToCheapest(t *testing.T) {
	a := advisorForTest(t)
	d, err := a.Decide(512, 1, Constraints{MaxVisSeconds: 1e-9, Images: 1000, MinImageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if d.Feasible {
		t.Error("nanosecond budget should be infeasible")
	}
	if d.ImageSize != 512 {
		t.Errorf("fallback should use the minimum size, got %d", d.ImageSize)
	}
	if d.Renderer == "" {
		t.Error("fallback must still name a renderer")
	}
}

func TestDecideMoreImagesCostMore(t *testing.T) {
	a := advisorForTest(t)
	few, err := a.Decide(128, 4, Constraints{MaxVisSeconds: 5, Images: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := a.Decide(128, 4, Constraints{MaxVisSeconds: 5, Images: 500})
	if err != nil {
		t.Fatal(err)
	}
	if many.Feasible && few.Feasible && many.ImageSize > few.ImageSize {
		t.Errorf("500 images allowed a larger size than 1 image: %d vs %d",
			many.ImageSize, few.ImageSize)
	}
}

func TestAdvisorNoModels(t *testing.T) {
	a := NewAdvisor(&core.ModelSet{Models: map[string]*core.Model{}}, core.DefaultMapping(), "cpu")
	if _, err := a.Decide(64, 1, Constraints{MaxVisSeconds: 1}); err == nil {
		t.Error("expected error with no models")
	}
}

func TestOnlineFitterRefines(t *testing.T) {
	f := NewOnlineFitter(nil)
	if _, err := f.Models(); err == nil {
		t.Error("empty corpus should not fit")
	}
	for _, s := range plantedSamples("cpu", 10, 9) {
		f.Deposit(s)
	}
	set1, err := f.Models()
	if err != nil {
		t.Fatal(err)
	}
	rt1 := set1.Models[core.Key("cpu", core.RayTrace)]
	if rt1 == nil {
		t.Fatal("ray tracing model missing")
	}
	// Depositing more samples marks the fitter dirty and changes the fit.
	for _, s := range plantedSamples("cpu", 30, 11) {
		f.Deposit(s)
	}
	set2, err := f.Models()
	if err != nil {
		t.Fatal(err)
	}
	if set1 == set2 {
		t.Error("new deposits should produce a refit")
	}
	if f.Len() != 80 {
		t.Errorf("corpus size = %d", f.Len())
	}
	// Cached when clean.
	set3, err := f.Models()
	if err != nil {
		t.Fatal(err)
	}
	if set2 != set3 {
		t.Error("clean fitter should return the cached set")
	}
	keys := f.Keys()
	if len(keys) != 2 {
		t.Errorf("coverage keys = %v", keys)
	}
}

func TestOnlineFitterConcurrentDeposits(t *testing.T) {
	f := NewOnlineFitter(plantedSamples("cpu", 10, 1))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, s := range plantedSamples("cpu", 5, int64(w)) {
				f.Deposit(s)
			}
			_, _ = f.Models()
		}(w)
	}
	wg.Wait()
	if f.Len() != 10*2+4*5*2 {
		t.Errorf("corpus size = %d", f.Len())
	}
	if _, err := f.Models(); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineFitterSkipsThinGroups(t *testing.T) {
	f := NewOnlineFitter(plantedSamples("cpu", 10, 3))
	// One lone sample for a different arch must not break fitting.
	f.Deposit(core.Sample{Arch: "weird", Renderer: core.Volume,
		In: core.Inputs{AP: 1, CS: 1, SPR: 1, Tasks: 1}, RenderTime: 0.1})
	set, err := f.Models()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.Models[core.Key("weird", core.Volume)]; ok {
		t.Error("thin group should be skipped")
	}
	cov := f.Coverage()
	if cov[core.Key("weird", core.Volume)] != 1 {
		t.Error("coverage should still count the thin group")
	}
}
