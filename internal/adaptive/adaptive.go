// Package adaptive implements the paper's Chapter VI direction: an
// adaptive in situ layer that sits between a simulation and the
// visualization pipeline, consuming the fitted performance models to make
// run-time decisions under constraints. The simulation registers what it
// can afford (time per cycle); the layer chooses rendering configurations
// whose predicted cost fits, and refines its models on line as every
// completed render deposits a new measurement.
package adaptive

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"insitu/internal/core"
)

// Constraints are the simulation-registered limits (§6.3).
type Constraints struct {
	// MaxVisSeconds is the time the simulation will devote to one
	// visualization invocation.
	MaxVisSeconds float64
	// MinImageSize is the smallest acceptable square image.
	MinImageSize int
	// MaxImageSize caps the search.
	MaxImageSize int
	// Images is how many renderings the invocation must produce
	// (image-database use cases render many views per cycle).
	Images int
}

// Normalize fills defaults.
func (c Constraints) Normalize() Constraints {
	if c.MinImageSize <= 0 {
		c.MinImageSize = 128
	}
	if c.MaxImageSize <= 0 {
		c.MaxImageSize = 4096
	}
	if c.Images <= 0 {
		c.Images = 1
	}
	return c
}

// Decision is the layer's chosen configuration.
type Decision struct {
	Renderer  core.Renderer
	ImageSize int
	// PredictedSeconds is the model's estimate for the whole invocation
	// (build amortized over the images).
	PredictedSeconds float64
	// Feasible reports whether the constraints can be met at all; when
	// false, the decision holds the cheapest available configuration.
	Feasible bool
}

// Advisor makes rendering decisions from a fitted model set.
type Advisor struct {
	Set     *core.ModelSet
	Mapping core.Mapping
	Arch    string
	// Candidates are the renderers the advisor may choose among; nil
	// means every renderer with a model for Arch.
	Candidates []core.Renderer
}

// NewAdvisor builds an advisor over every model fitted for arch.
func NewAdvisor(set *core.ModelSet, mp core.Mapping, arch string) *Advisor {
	return &Advisor{Set: set, Mapping: mp, Arch: arch}
}

// candidates lists usable renderers in deterministic order.
func (a *Advisor) candidates() []core.Renderer {
	if a.Candidates != nil {
		return a.Candidates
	}
	var out []core.Renderer
	for _, r := range []core.Renderer{core.RayTrace, core.Raster, core.Volume} {
		if _, ok := a.Set.Models[core.Key(a.Arch, r)]; ok {
			out = append(out, r)
		}
	}
	return out
}

// predictInvocation estimates the cost of rendering cons.Images frames at
// the given size with renderer r, amortizing any build cost.
func (a *Advisor) predictInvocation(r core.Renderer, n, tasks, size, images int) (float64, error) {
	m, ok := a.Set.Models[core.Key(a.Arch, r)]
	if !ok {
		return 0, fmt.Errorf("adaptive: no model for %s", core.Key(a.Arch, r))
	}
	in := a.Mapping.Map(core.Config{N: n, Tasks: tasks, Width: size, Height: size, Renderer: r})
	per := m.Predict(in)
	if tasks > 1 && a.Set.Compositing != nil {
		per += a.Set.Compositing.Predict(in)
	}
	if per < 0 {
		per = 0
	}
	return m.PredictBuild(in) + per*float64(images), nil
}

// Decide picks the renderer and largest image size whose predicted total
// cost fits the constraints. Quality (image size) is maximized first,
// then cost is minimized among renderers achieving it — the trade-off the
// paper's Figure 14 lays out for a human, made automatically.
func (a *Advisor) Decide(n, tasks int, cons Constraints) (Decision, error) {
	cons = cons.Normalize()
	cands := a.candidates()
	if len(cands) == 0 {
		return Decision{}, fmt.Errorf("adaptive: no models available for arch %q", a.Arch)
	}
	best := Decision{Feasible: false}
	cheapest := Decision{PredictedSeconds: math.Inf(1)}
	for _, r := range cands {
		// Binary search the largest feasible size for this renderer.
		lo, hi := cons.MinImageSize, cons.MaxImageSize
		var feasibleSize int
		var feasibleCost float64
		for lo <= hi {
			mid := (lo + hi) / 2
			cost, err := a.predictInvocation(r, n, tasks, mid, cons.Images)
			if err != nil {
				return Decision{}, err
			}
			if cost <= cons.MaxVisSeconds {
				feasibleSize, feasibleCost = mid, cost
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		minCost, err := a.predictInvocation(r, n, tasks, cons.MinImageSize, cons.Images)
		if err != nil {
			return Decision{}, err
		}
		if minCost < cheapest.PredictedSeconds {
			cheapest = Decision{Renderer: r, ImageSize: cons.MinImageSize, PredictedSeconds: minCost}
		}
		if feasibleSize == 0 {
			continue
		}
		better := feasibleSize > best.ImageSize ||
			(feasibleSize == best.ImageSize && feasibleCost < best.PredictedSeconds)
		if !best.Feasible || better {
			best = Decision{Renderer: r, ImageSize: feasibleSize, PredictedSeconds: feasibleCost, Feasible: true}
		}
	}
	if !best.Feasible {
		return cheapest, nil
	}
	return best, nil
}

// OnlineFitter accumulates measurements as renders complete and refits
// the models on demand — §6.2's "models refined as the corpus grows".
// It is safe for concurrent deposits.
type OnlineFitter struct {
	mu      sync.Mutex
	samples []core.Sample
	set     *core.ModelSet
	dirty   bool
	// MinSamplesPerModel gates refitting (OLS needs headroom).
	MinSamplesPerModel int
}

// NewOnlineFitter starts with an optional seed corpus.
func NewOnlineFitter(seed []core.Sample) *OnlineFitter {
	return &OnlineFitter{
		samples:            append([]core.Sample(nil), seed...),
		dirty:              len(seed) > 0,
		MinSamplesPerModel: 6,
	}
}

// Deposit adds one measurement.
func (f *OnlineFitter) Deposit(s core.Sample) {
	f.mu.Lock()
	f.samples = append(f.samples, s)
	f.dirty = true
	f.mu.Unlock()
}

// Len returns the corpus size.
func (f *OnlineFitter) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.samples)
}

// Models returns the current fitted set, refitting lazily if new samples
// arrived. Groups that are still too small are skipped silently; an error
// is returned only when nothing can be fitted.
func (f *OnlineFitter) Models() (*core.ModelSet, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dirty && f.set != nil {
		return f.set, nil
	}
	// Keep only groups with enough rows for a stable fit.
	counts := map[string]int{}
	for _, s := range f.samples {
		counts[core.Key(s.Arch, s.Renderer)]++
	}
	var usable []core.Sample
	for _, s := range f.samples {
		if counts[core.Key(s.Arch, s.Renderer)] >= f.MinSamplesPerModel {
			usable = append(usable, s)
		}
	}
	if len(usable) == 0 {
		return nil, fmt.Errorf("adaptive: corpus too small (%d samples, need %d per model)",
			len(f.samples), f.MinSamplesPerModel)
	}
	set, err := core.FitModels(usable)
	if err != nil {
		return nil, err
	}
	f.set = set
	f.dirty = false
	return set, nil
}

// Mapping calibrates the configuration mapping from the current corpus.
func (f *OnlineFitter) Mapping() core.Mapping {
	f.mu.Lock()
	defer f.mu.Unlock()
	return core.CalibrateMapping(f.samples)
}

// Coverage summarizes which (arch, renderer) groups have enough data, so
// an in situ layer can decide what it can already predict (the paper's
// "what algorithms are used most" telemetry).
func (f *OnlineFitter) Coverage() map[string]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := map[string]int{}
	for _, s := range f.samples {
		out[core.Key(s.Arch, s.Renderer)]++
	}
	return out
}

// Keys returns the covered model keys, sorted.
func (f *OnlineFitter) Keys() []string {
	cov := f.Coverage()
	keys := make([]string, 0, len(cov))
	for k := range cov {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
