package comm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFaultPlanKillSeversBothDirections: a killed rank's sends vanish and
// sends to it vanish (senders never block on its links).
func TestFaultPlanKillSeversBothDirections(t *testing.T) {
	w := NewWorld(2)
	p := NewFaultPlan(1)
	w.InjectFaults(p)
	p.KillRank(1)

	alive, dead := w.Endpoint(0), w.Endpoint(1)
	// Sends to the dead rank are swallowed even past the link buffer depth.
	for i := 0; i < 200; i++ {
		alive.Send(1, 7, []float32{1})
	}
	// The dead rank's sends never arrive.
	dead.Send(0, 7, []float32{2})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := alive.RecvAnyCtx(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("message from killed rank was delivered (err=%v)", err)
	}
	if st := p.Stats(); st.Swallowed != 201 {
		t.Errorf("swallowed = %d, want 201", st.Swallowed)
	}
}

// TestFaultPlanKillAfterSends: the rank dies exactly after its nth
// delivered message — deterministic mid-exchange kills.
func TestFaultPlanKillAfterSends(t *testing.T) {
	w := NewWorld(2)
	p := NewFaultPlan(1)
	w.InjectFaults(p)
	p.KillRankAfterSends(0, 3)

	s := w.Endpoint(0)
	for i := 0; i < 5; i++ {
		s.Send(1, 7, []float32{float32(i)})
	}
	r := w.Endpoint(1)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	var got []float32
	for {
		_, data, err := r.RecvAnyCtx(ctx, 0)
		if err != nil {
			break
		}
		got = append(got, data[0])
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("delivered %v, want the first 3 sends", got)
	}
	if !p.Killed(0) {
		t.Error("rank 0 not marked killed after its budget")
	}
}

// TestFaultPlanLinkTriggers: drop, duplicate, delay, and stall are all
// per-link, per-index deterministic.
func TestFaultPlanLinkTriggers(t *testing.T) {
	recvAll := func(w *World, from, to int) []float32 {
		r := w.Endpoint(to)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		var got []float32
		for {
			_, data, err := r.RecvAnyCtx(ctx, from)
			if err != nil {
				return got
			}
			got = append(got, data[0])
		}
	}
	send := func(w *World, n int) {
		s := w.Endpoint(0)
		for i := 1; i <= n; i++ {
			s.Send(1, 7, []float32{float32(i)})
		}
	}

	w := NewWorld(2)
	p := NewFaultPlan(1)
	w.InjectFaults(p)
	p.DropNth(0, 1, 2)
	p.DupNth(0, 1, 3)
	p.DelayNth(0, 1, 4, 2) // message 4 arrives after message 6
	send(w, 6)
	got := recvAll(w, 0, 1)
	want := []float32{1, 3, 3, 5, 6, 4}
	if len(got) != len(want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered %v, want %v", got, want)
		}
	}

	w2 := NewWorld(2)
	p2 := NewFaultPlan(1)
	w2.InjectFaults(p2)
	p2.StallAfter(0, 1, 3)
	send(w2, 100) // sender never blocks on the stalled link
	if got := recvAll(w2, 0, 1); len(got) != 2 {
		t.Fatalf("stalled link delivered %v, want only the first 2", got)
	}
}

// TestFaultPlanDropEveryIsSeeded: the same seed drops the same messages;
// a different seed drops different ones.
func TestFaultPlanDropEveryIsSeeded(t *testing.T) {
	run := func(seed uint64) []float32 {
		w := NewWorld(2)
		p := NewFaultPlan(seed)
		w.InjectFaults(p)
		p.DropEvery(0, 1, 0.5)
		s := w.Endpoint(0)
		for i := 1; i <= 64; i++ {
			s.Send(1, 7, []float32{float32(i)})
		}
		r := w.Endpoint(1)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		var got []float32
		for {
			_, data, err := r.RecvAnyCtx(ctx, 0)
			if err != nil {
				return got
			}
			got = append(got, data[0])
		}
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different survivor counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different survivors")
		}
	}
	if len(a) == 0 || len(a) == 64 {
		t.Fatalf("rate 0.5 dropped %d of 64", 64-len(a))
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical drop patterns")
	}
}

// TestWithEpochFiltersStaleMessages: a receiver bound to epoch E consumes
// and discards traffic from other epochs, and the discard is counted.
func TestWithEpochFiltersStaleMessages(t *testing.T) {
	w := NewWorld(2)
	old := w.Endpoint(0).WithEpoch(context.Background(), 1)
	cur := w.Endpoint(0).WithEpoch(context.Background(), 2)
	old.Send(1, 7, []float32{1}) // stale leftover of an abandoned attempt
	cur.Send(1, 7, []float32{2})

	r := w.Endpoint(1).WithEpoch(context.Background(), 2)
	if got := r.Recv(0, 7); got[0] != 2 {
		t.Fatalf("received %v, want the epoch-2 payload", got)
	}
	if w.StaleDrops() != 1 {
		t.Errorf("stale drops = %d, want 1", w.StaleDrops())
	}
}

// TestWithEpochAbortsOnDeadPeer: a blocking receive from a rank that will
// never answer panics with *AbortError naming the peer once the attempt
// context expires — the primitive rank-death detection builds on.
func TestWithEpochAbortsOnDeadPeer(t *testing.T) {
	w := NewWorld(3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := w.Endpoint(1).WithEpoch(ctx, 9)
	defer func() {
		p := recover()
		ab, ok := p.(*AbortError)
		if !ok {
			t.Fatalf("recovered %v, want *AbortError", p)
		}
		if ab.Rank != 1 || ab.Peer != 2 || ab.Op != "recv" {
			t.Errorf("abort names rank %d peer %d op %q", ab.Rank, ab.Peer, ab.Op)
		}
		if !errors.Is(ab, context.DeadlineExceeded) {
			t.Errorf("abort error does not unwrap to the context error: %v", ab.Err)
		}
	}()
	c.Recv(2, 7) // rank 2 never sends
	t.Fatal("recv from a silent peer returned")
}

// TestWithEpochAbortsCollectives: collectives built on Send/Recv inherit
// the abort binding — an AllReduce with a dead participant abandons
// instead of wedging.
func TestWithEpochAbortsCollectives(t *testing.T) {
	w := NewWorld(3)
	p := NewFaultPlan(1)
	w.InjectFaults(p)
	p.KillRank(2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan int, 2)
	for _, rank := range []int{0, 1} {
		go func(rank int) {
			defer func() {
				if _, ok := recover().(*AbortError); ok {
					done <- rank
				}
			}()
			w.Endpoint(rank).WithEpoch(ctx, 5).AllReduceMax(float64(rank))
		}(rank)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("live ranks wedged in a collective with a dead peer")
		}
	}
}
