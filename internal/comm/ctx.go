package comm

import (
	"context"
	"fmt"
)

// Context-aware point-to-point operations for service-lifetime endpoints.
// The study path uses the blocking Send/Recv pair — a one-shot collective
// job either completes or is a bug — but a serving router must bound how
// long it waits on a slow or wedged rank and must be able to shut down
// while blocked, so these variants select on the context alongside the
// link. Unlike Recv, a tag mismatch is reported as an error rather than a
// panic: on a long-lived transport a protocol hiccup should fail one
// request, not the process.

// SendCtx is Send bounded by a context: it delivers a copy of data unless
// the destination link stays full past the context's deadline or
// cancellation, in which case the message is not sent and the context's
// error is returned.
func (c *Comm) SendCtx(ctx context.Context, to, tag int, data []float32) error {
	if to < 0 || to >= c.Size() {
		return fmt.Errorf("comm: send to invalid rank %d", to)
	}
	cp := make([]float32, len(data))
	copy(cp, data)
	from, dst := c.actual(c.rank), c.actual(to)
	m := message{tag: tag, epoch: c.epoch, data: cp}
	if p := c.world.faults.Load(); p != nil {
		for _, out := range p.route(from, dst, m) {
			if err := c.pushCtx(ctx, from, dst, out); err != nil {
				return err
			}
		}
		return nil
	}
	return c.pushCtx(ctx, from, dst, m)
}

// pushCtx delivers one routed message, bounded by ctx.
func (c *Comm) pushCtx(ctx context.Context, from, dst int, m message) error {
	select {
	case c.world.links[from][dst] <- m:
		c.world.bytes.Add(int64(4 * len(m.data)))
		c.world.msgs.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RecvCtx is Recv bounded by a context. A message carrying an unexpected
// tag is an error (the message is consumed — the link is presumed
// poisoned at that point and the caller should fail the exchange).
func (c *Comm) RecvCtx(ctx context.Context, from, tag int) ([]float32, error) {
	gotTag, data, err := c.RecvAnyCtx(ctx, from)
	if err != nil {
		return nil, err
	}
	if gotTag != tag {
		return nil, fmt.Errorf("comm: rank %d expected tag %d from %d, got %d", c.rank, tag, from, gotTag)
	}
	return data, nil
}

// RecvAnyCtx receives the next message from a rank regardless of tag,
// returning the tag alongside the payload — the demultiplexing primitive
// for a service loop that handles several message kinds (jobs, snapshot
// pushes, results) over one link. Messages from other epochs (stale
// leftovers of an abandoned exchange attempt) are silently discarded.
func (c *Comm) RecvAnyCtx(ctx context.Context, from int) (int, []float32, error) {
	if from < 0 || from >= c.Size() {
		return 0, nil, fmt.Errorf("comm: recv from invalid rank %d", from)
	}
	link := c.world.links[c.actual(from)][c.actual(c.rank)]
	for {
		select {
		case m := <-link:
			if m.epoch != c.epoch {
				c.world.stale.Add(1)
				continue
			}
			return m.tag, m.data, nil
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		}
	}
}
