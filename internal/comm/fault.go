package comm

import (
	"sync"
)

// Deterministic fault injection for chaos testing. A FaultPlan is
// installed on a World with InjectFaults and intercepts every message at
// the send side: it can sever a rank (sends from and deliveries to it are
// swallowed), drop/duplicate/delay the nth message on a chosen link,
// blackhole a link from its nth message onward, or drop a seeded
// pseudo-random fraction of a link's traffic. All triggers are counters
// over the plan's own per-link message indices — no wall-clock, no global
// randomness — so a chaos test that replays the same traffic replays the
// same faults.
//
// The steady-state cost of fault support is one atomic pointer load per
// send; a World with no plan installed takes the branch-free fast path.

// FaultPlan is a mutable, concurrency-safe set of fault triggers. The
// zero value (via NewFaultPlan) injects nothing until triggers are added;
// triggers may be added while traffic is flowing (e.g. KillRank mid-test).
type FaultPlan struct {
	mu   sync.Mutex
	seed uint64

	killed    map[int]bool // rank -> severed
	killAfter map[int]int  // rank -> sends delivered before severing
	sent      map[int]int  // rank -> sends routed so far
	links     map[linkID]*linkFaults

	stats FaultStats
}

type linkID struct{ from, to int }

// linkFaults holds one directed link's triggers, all keyed by the link's
// 1-based message index.
type linkFaults struct {
	n          int // messages routed on this link so far
	dropNth    map[int]bool
	dupNth     map[int]bool
	delayNth   map[int]int   // index -> deliver after this many later messages
	stallAfter int           // 0 = off; messages with index >= stallAfter vanish
	dropRate   float64       // seeded bernoulli drop probability
	held       []heldMessage // delayed messages awaiting release
}

type heldMessage struct {
	m         message
	releaseAt int // link index at which the message is re-delivered
}

// FaultStats counts what the plan has done to the traffic.
type FaultStats struct {
	Swallowed  int64 // messages severed with a killed rank
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Stalled    int64
}

// NewFaultPlan returns an empty plan. seed parameterizes the
// deterministic pseudo-random drops installed with DropEvery.
func NewFaultPlan(seed uint64) *FaultPlan {
	return &FaultPlan{
		seed:      seed,
		killed:    map[int]bool{},
		killAfter: map[int]int{},
		sent:      map[int]int{},
		links:     map[linkID]*linkFaults{},
	}
}

// KillRank severs a rank immediately: everything it sends from now on is
// swallowed, and so is everything sent to it (so live senders never block
// on a dead rank's full link). The rank's goroutine keeps running — like
// a real network partition, the process does not know it is dead.
func (p *FaultPlan) KillRank(rank int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killed[rank] = true
	delete(p.killAfter, rank)
}

// KillRankAfterSends severs a rank after it has delivered n more
// messages — the deterministic mid-frame kill: the rank dies partway
// through an exchange it already started.
func (p *FaultPlan) KillRankAfterSends(rank, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killAfter[rank] = p.sent[rank] + n
}

// Killed reports whether a rank is currently severed.
func (p *FaultPlan) Killed(rank int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.killed[rank]
}

// Reset clears every trigger — kills, link faults, pending delayed
// messages — leaving counters and stats intact: the "network healed"
// event recovery tests flip mid-run. Messages already swallowed stay
// lost.
func (p *FaultPlan) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killed = map[int]bool{}
	p.killAfter = map[int]int{}
	p.links = map[linkID]*linkFaults{}
}

// DropNth drops the nth (1-based) message sent on the from->to link.
func (p *FaultPlan) DropNth(from, to, nth int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	lf := p.link(from, to)
	if lf.dropNth == nil {
		lf.dropNth = map[int]bool{}
	}
	lf.dropNth[nth] = true
}

// DupNth delivers the nth message on the from->to link twice.
func (p *FaultPlan) DupNth(from, to, nth int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	lf := p.link(from, to)
	if lf.dupNth == nil {
		lf.dupNth = map[int]bool{}
	}
	lf.dupNth[nth] = true
}

// DelayNth holds the nth message on the from->to link and re-delivers it
// after byK later messages have passed — a deterministic reordering.
func (p *FaultPlan) DelayNth(from, to, nth, byK int) {
	if byK < 1 {
		byK = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	lf := p.link(from, to)
	if lf.delayNth == nil {
		lf.delayNth = map[int]int{}
	}
	lf.delayNth[nth] = byK
}

// StallAfter blackholes the from->to link from its nth message onward:
// sends are accepted (the sender never blocks) but nothing arrives — the
// wedged-link failure mode, distinct from a dead rank because the sender
// stays healthy and keeps heartbeating.
func (p *FaultPlan) StallAfter(from, to, nth int) {
	if nth < 1 {
		nth = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.link(from, to).stallAfter = nth
}

// DropEvery drops each message on the from->to link independently with
// probability rate, decided by a hash of (plan seed, link, message index)
// — deterministic for a fixed seed and traffic order.
func (p *FaultPlan) DropEvery(from, to int, rate float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.link(from, to).dropRate = rate
}

// Stats snapshots the plan's fault counters.
func (p *FaultPlan) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// link returns (creating on demand) the trigger set for a directed link.
// Caller holds p.mu.
func (p *FaultPlan) link(from, to int) *linkFaults {
	id := linkID{from, to}
	lf := p.links[id]
	if lf == nil {
		lf = &linkFaults{}
		p.links[id] = lf
	}
	return lf
}

// route decides one message's fate: the returned slice holds what is
// actually delivered on the from->to link, in order (empty = swallowed;
// two entries = duplicated; released delayed messages ride behind).
func (p *FaultPlan) route(from, to int, m message) []message {
	p.mu.Lock()
	defer p.mu.Unlock()

	// Rank kills sever the whole rank, not one link.
	if p.killed[from] {
		p.stats.Swallowed++
		return nil
	}
	if at, ok := p.killAfter[from]; ok {
		if p.sent[from] >= at {
			p.killed[from] = true
			delete(p.killAfter, from)
			p.stats.Swallowed++
			return nil
		}
	}
	p.sent[from]++
	if p.killed[to] {
		p.stats.Swallowed++
		return nil
	}

	lf := p.links[linkID{from, to}]
	if lf == nil {
		return []message{m}
	}
	lf.n++
	idx := lf.n
	if lf.stallAfter > 0 && idx >= lf.stallAfter {
		p.stats.Stalled++
		return nil
	}
	out := make([]message, 0, 2+len(lf.held))
	switch {
	case lf.dropNth[idx]:
		p.stats.Dropped++
	case lf.dropRate > 0 && bernoulli(p.seed, from, to, idx, lf.dropRate):
		p.stats.Dropped++
	case lf.delayNth[idx] > 0:
		lf.held = append(lf.held, heldMessage{m: m, releaseAt: idx + lf.delayNth[idx]})
		p.stats.Delayed++
	default:
		out = append(out, m)
		if lf.dupNth[idx] {
			// The duplicate gets its own payload copy so the two
			// deliveries stay independent.
			cp := make([]float32, len(m.data))
			copy(cp, m.data)
			out = append(out, message{tag: m.tag, epoch: m.epoch, data: cp})
			p.stats.Duplicated++
		}
	}
	// Release held messages whose delay has elapsed.
	kept := lf.held[:0]
	for _, h := range lf.held {
		if h.releaseAt <= idx {
			out = append(out, h.m)
		} else {
			kept = append(kept, h)
		}
	}
	lf.held = kept
	return out
}

// bernoulli is a deterministic coin flip keyed on (seed, link, index).
func bernoulli(seed uint64, from, to, idx int, rate float64) bool {
	x := splitmix64(seed ^ uint64(from)<<40 ^ uint64(to)<<20 ^ uint64(idx))
	return float64(x>>11)/(1<<53) < rate
}

// splitmix64 is the standard 64-bit finalizer — a tiny, well-mixed PRNG
// step with no shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
