package comm

import (
	"sync"
	"testing"
)

func TestGroupValidation(t *testing.T) {
	w := NewWorld(4)
	c := w.Endpoint(1)
	for _, tc := range []struct {
		name    string
		members []int
	}{
		{"empty", nil},
		{"out of range", []int{1, 4}},
		{"negative", []int{-1, 1}},
		{"duplicate", []int{1, 2, 2}},
		{"caller not a member", []int{0, 2}},
	} {
		if _, err := c.Group(tc.members); err == nil {
			t.Errorf("%s: Group(%v) accepted", tc.name, tc.members)
		}
	}
	g, err := c.Group([]int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rank() != 1 || g.Size() != 2 {
		t.Fatalf("rank %d size %d, want rank 1 size 2", g.Rank(), g.Size())
	}
}

// TestGroupCollectivesOverSubset runs collectives and point-to-point
// traffic over a rank subset in group coordinates, with member order
// deliberately not matching world order. This is the contract the
// compositor relies on when a frame is sharded over a subset of the
// worker fleet.
func TestGroupCollectivesOverSubset(t *testing.T) {
	w := NewWorld(5)
	members := []int{3, 1, 4} // group rank i = world rank members[i]

	var wg sync.WaitGroup
	for i, wr := range members {
		wg.Add(1)
		go func(vrank, worldRank int) {
			defer wg.Done()
			g, err := w.Endpoint(worldRank).Group(members)
			//insitu:collective-ok Group forms for all members or none; a failed member fails the test
			if err != nil {
				t.Errorf("world rank %d: %v", worldRank, err)
				return
			}
			//insitu:collective-ok assertion failure fails the test; stranded peers surface as the timeout
			if g.Rank() != vrank {
				t.Errorf("world rank %d: group rank %d, want %d", worldRank, g.Rank(), vrank)
				return
			}

			if sum := g.AllReduceSum(float64(worldRank)); sum != 3+1+4 {
				t.Errorf("group AllReduceSum = %v, want 8", sum)
			}
			if max := g.AllReduceMax(float64(worldRank)); max != 4 {
				t.Errorf("group AllReduceMax = %v, want 4", max)
			}

			got := g.Bcast(0, []float32{float32(worldRank)})
			if len(got) != 1 || got[0] != 3 {
				t.Errorf("group Bcast: got %v, want [3] (leader's world rank)", got)
			}

			rows := g.Gather(0, []float32{float32(worldRank)})
			if g.Rank() == 0 {
				for j, want := range members {
					if rows[j][0] != float32(want) {
						t.Errorf("group Gather row %d = %v, want %d", j, rows[j], want)
					}
				}
			} else if rows != nil {
				t.Errorf("non-root Gather returned %v", rows)
			}

			// Ring exchange in group coordinates.
			g.Send((g.Rank()+1)%g.Size(), 42, []float32{float32(g.Rank())})
			prev := (g.Rank() + g.Size() - 1) % g.Size()
			if m := g.Recv(prev, 42); m[0] != float32(prev) {
				t.Errorf("group ring: rank %d got %v from %d", g.Rank(), m, prev)
			}
			g.Barrier()
		}(i, wr)
	}
	wg.Wait()

	// Non-members were untouched: their links are empty, so a fresh
	// whole-world exchange still works.
	w.Endpoint(0).Send(2, 7, []float32{1})
	if m := w.Endpoint(2).Recv(0, 7); m[0] != 1 {
		t.Fatalf("world exchange after group traffic: got %v", m)
	}
}
