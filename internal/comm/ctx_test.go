package comm

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecvCtxTimesOutOnSlowRank pins the router's failure mode for a
// wedged worker: a receive against a rank that has not sent yet returns
// the context's deadline error instead of blocking forever, and the late
// message stays queued for a later receive instead of being lost.
func TestRecvCtxTimesOutOnSlowRank(t *testing.T) {
	w := NewWorld(2)
	slow := w.Endpoint(1)
	router := w.Endpoint(0)

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-release // the slow rank renders far past the deadline
		slow.Send(0, 7, []float32{42})
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := router.RecvCtx(ctx, 1, 7); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("recv from slow rank: err = %v, want DeadlineExceeded", err)
	}

	// The exchange failed but the transport did not: the late message is
	// still delivered in order once the slow rank gets around to sending.
	close(release)
	data, err := router.RecvCtx(context.Background(), 1, 7)
	if err != nil {
		t.Fatalf("late message lost: %v", err)
	}
	if len(data) != 1 || data[0] != 42 {
		t.Fatalf("late message corrupted: %v", data)
	}
	wg.Wait()
}

// TestSendCtxCancelledOnFullLink: a sender facing a receiver that stopped
// draining unblocks on cancellation, and the cancelled message is never
// delivered (no partial sends).
func TestSendCtxCancelledOnFullLink(t *testing.T) {
	w := NewWorld(2)
	c := w.Endpoint(0)
	// Fill the (0 -> 1) link's buffer.
	filled := 0
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		err := c.SendCtx(ctx, 1, 1, []float32{float32(filled)})
		cancel()
		if err != nil {
			break
		}
		filled++
		if filled > 1<<16 {
			t.Fatal("link buffer appears unbounded")
		}
	}
	if filled == 0 {
		t.Fatal("could not fill the link buffer")
	}

	msgsBefore := w.MessagesSent()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.SendCtx(ctx, 1, 1, []float32{1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("send on full link with cancelled ctx: err = %v, want Canceled", err)
	}
	if got := w.MessagesSent(); got != msgsBefore {
		t.Fatalf("cancelled send was counted as delivered: %d -> %d", msgsBefore, got)
	}

	// Drain: exactly the successfully sent messages arrive, in order.
	r := w.Endpoint(1)
	for i := 0; i < filled; i++ {
		data, err := r.RecvCtx(context.Background(), 0, 1)
		if err != nil {
			t.Fatalf("draining message %d: %v", i, err)
		}
		if data[0] != float32(i) {
			t.Fatalf("message %d out of order: got %v", i, data[0])
		}
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if _, err := r.RecvCtx(ctx2, 0, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled message was delivered anyway: err = %v", err)
	}
}

// TestRecvCtxTagMismatchIsAnError: on a long-lived endpoint a protocol
// mismatch fails the exchange with an error naming both tags instead of
// panicking the process.
func TestRecvCtxTagMismatchIsAnError(t *testing.T) {
	w := NewWorld(2)
	w.Endpoint(1).Send(0, 3, []float32{1})
	_, err := w.Endpoint(0).RecvCtx(context.Background(), 1, 9)
	if err == nil {
		t.Fatal("tag mismatch accepted")
	}
	if !strings.Contains(err.Error(), "tag 9") || !strings.Contains(err.Error(), "got 3") {
		t.Fatalf("mismatch error does not name the tags: %v", err)
	}
}

// TestRecvAnyCtxDemultiplexes: a single service loop can sort several
// message kinds arriving over one link by the returned tag, in send
// order.
func TestRecvAnyCtxDemultiplexes(t *testing.T) {
	w := NewWorld(2)
	s := w.Endpoint(0)
	s.Send(1, 10, []float32{1})
	s.Send(1, 20, []float32{2})
	s.Send(1, 10, []float32{3})

	r := w.Endpoint(1)
	wantTags := []int{10, 20, 10}
	for i, want := range wantTags {
		tag, data, err := r.RecvAnyCtx(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if tag != want || data[0] != float32(i+1) {
			t.Fatalf("message %d: tag %d data %v, want tag %d data %d", i, tag, data, want, i+1)
		}
	}
}

// TestCancelledExchangeLeavesWorldUsable: a multi-rank exchange aborted
// mid-flight (one receiver gives up) must not wedge the world for later,
// well-behaved exchanges — the router's recovery story after a deadline
// miss.
func TestCancelledExchangeLeavesWorldUsable(t *testing.T) {
	w := NewWorld(3)
	ctx, cancel := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	errc := make(chan error, 1)
	go func() {
		defer wg.Done()
		// Rank 0 waits on rank 2, which never sends in this exchange.
		_, err := w.Endpoint(0).RecvCtx(ctx, 2, 5)
		errc <- err
	}()
	cancel()
	wg.Wait()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted exchange: err = %v, want Canceled", err)
	}

	// A fresh exchange over the same ranks completes normally.
	done := make(chan struct{})
	go func() {
		w.Endpoint(2).Send(0, 5, []float32{9})
		close(done)
	}()
	data, err := w.Endpoint(0).RecvCtx(context.Background(), 2, 5)
	if err != nil || data[0] != 9 {
		t.Fatalf("world wedged after cancelled exchange: %v %v", data, err)
	}
	<-done
}
