// Package comm provides the distributed-memory substrate: an in-process
// message-passing world that stands in for MPI. Each task is a goroutine;
// point-to-point messages copy their payload (network semantics) through
// buffered channels, and the collectives the renderers and compositors
// need (barrier, reductions, gather, broadcast) are built on top. Byte
// counters expose communication volume to the study.
//
// Fault tolerance hooks: a deterministic FaultPlan (InjectFaults) can
// sever ranks and corrupt chosen links for chaos testing, and WithEpoch
// binds a communicator to one exchange attempt — sends are epoch-stamped,
// receives discard other epochs, and blocking operations abort with a
// recoverable *AbortError panic when the attempt's context expires
// instead of wedging on a dead peer.
package comm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one point-to-point payload. Data is always a private copy.
// epoch identifies the exchange attempt the message belongs to (0 for
// control-plane traffic); receivers bound to an epoch silently discard
// messages from any other epoch, so an abandoned exchange cannot leak
// stale payloads into its retry.
type message struct {
	tag   int
	epoch uint64
	data  []float32
}

// World owns the channels connecting size tasks.
type World struct {
	size  int
	links [][]chan message // links[from][to]
	bytes atomic.Int64
	msgs  atomic.Int64
	stale atomic.Int64
	// Per-link traffic counters, indexed like links. They answer the
	// topology question the totals cannot: which pairs carry the
	// compositing traffic, and how lopsided the exchange pattern is.
	linkBytes [][]atomic.Int64
	linkMsgs  [][]atomic.Int64
	faults    atomic.Pointer[FaultPlan]
}

// NewWorld creates a world of n tasks.
func NewWorld(n int) *World {
	if n < 1 {
		n = 1
	}
	w := &World{
		size:      n,
		links:     make([][]chan message, n),
		linkBytes: make([][]atomic.Int64, n),
		linkMsgs:  make([][]atomic.Int64, n),
	}
	for from := 0; from < n; from++ {
		w.links[from] = make([]chan message, n)
		w.linkBytes[from] = make([]atomic.Int64, n)
		w.linkMsgs[from] = make([]atomic.Int64, n)
		for to := 0; to < n; to++ {
			// Deep buffering lets symmetric exchange patterns (binary
			// swap) post sends before the matching receives.
			w.links[from][to] = make(chan message, 64)
		}
	}
	return w
}

// Size returns the task count.
func (w *World) Size() int { return w.size }

// BytesSent returns the total payload bytes sent so far.
func (w *World) BytesSent() int64 { return w.bytes.Load() }

// MessagesSent returns the total message count so far.
func (w *World) MessagesSent() int64 { return w.msgs.Load() }

// StaleDrops returns how many received messages were discarded because
// their epoch did not match the receiver's — the observable footprint of
// abandoned exchange attempts.
func (w *World) StaleDrops() int64 { return w.stale.Load() }

// LinkStat is one directed link's cumulative traffic.
type LinkStat struct {
	From     int   `json:"from"`
	To       int   `json:"to"`
	Bytes    int64 `json:"bytes"`
	Messages int64 `json:"messages"`
}

// LinkStats returns the cumulative traffic of every link that has
// carried at least one message, ordered by (from, to). Export path:
// allocates a fresh slice per call.
func (w *World) LinkStats() []LinkStat {
	var out []LinkStat
	for from := 0; from < w.size; from++ {
		for to := 0; to < w.size; to++ {
			m := w.linkMsgs[from][to].Load()
			if m == 0 {
				continue
			}
			out = append(out, LinkStat{
				From: from, To: to,
				Bytes:    w.linkBytes[from][to].Load(),
				Messages: m,
			})
		}
	}
	return out
}

// InjectFaults installs (or, with nil, removes) a fault plan. The plan
// intercepts every subsequent send; a world without a plan pays one
// atomic pointer load per message.
func (w *World) InjectFaults(p *FaultPlan) { w.faults.Store(p) }

// Run executes f once per rank, each on its own goroutine, and waits for
// all of them. Panics inside a task are recovered and reported as that
// task's error; the first non-nil error is returned.
func (w *World) Run(f func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("comm: task %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = f(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("comm: task %d: %w", r, err)
		}
	}
	return nil
}

// RunCollect is Run but also collects one result value per rank.
func RunCollect[T any](w *World, f func(c *Comm) (T, error)) ([]T, error) {
	results := make([]T, w.size)
	err := w.Run(func(c *Comm) error {
		v, err := f(c)
		results[c.Rank()] = v
		return err
	})
	return results, err
}

// Endpoint returns a service-lifetime communicator for one rank. Unlike
// Run — which owns every rank for the duration of one collective job — an
// endpoint is held by a long-lived goroutine (a render router, a worker
// loop) that sends and receives on its own schedule. The caller is
// responsible for the usual single-reader discipline: at most one
// goroutine may receive from a given (from, to) link at a time.
func (w *World) Endpoint(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("comm: endpoint for invalid rank %d", rank))
	}
	return &Comm{world: w, rank: rank}
}

// Comm is one task's endpoint in the world (or, when members is set, in a
// sub-communicator over a subset of the world's ranks).
type Comm struct {
	world *World
	// rank is the task's id in this communicator's coordinate space:
	// a position in members for a group, a world rank otherwise.
	rank    int
	members []int // nil for a whole-world communicator
	// epoch stamps every send and filters every receive; abortCtx, when
	// set, bounds every blocking operation (see WithEpoch).
	epoch    uint64
	abortCtx context.Context
}

// AbortError is the panic payload a bound communicator (WithEpoch) raises
// when its context expires inside a blocking Send, Recv, or collective:
// the exchange attempt is abandoned wholesale rather than wedging on a
// dead or stalled peer. Callers running fallible exchanges recover it at
// the attempt boundary and retry.
type AbortError struct {
	Rank int    // world rank of the aborting task
	Peer int    // world rank of the link peer it was blocked on
	Op   string // "send" or "recv"
	Err  error  // the context's error
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("comm: rank %d aborted %s with rank %d: %v", e.Rank, e.Op, e.Peer, e.Err)
}

func (e *AbortError) Unwrap() error { return e.Err }

// WithEpoch returns a communicator bound to one exchange attempt: sends
// are stamped with epoch, receives silently discard messages from any
// other epoch (counted by World.StaleDrops), and every blocking operation
// — including the collectives and anything built on Send/Recv, such as
// sort-last compositing — aborts by panicking with *AbortError once ctx
// is done. Epoch 0 is the control plane (unbound communicators); exchange
// attempts must use non-zero, attempt-unique epochs.
//
// The epoch filter makes retry safe: messages a failed attempt left in
// flight are consumed and dropped by the retry's receives instead of
// being mistaken for its own traffic.
func (c *Comm) WithEpoch(ctx context.Context, epoch uint64) *Comm {
	d := *c
	d.epoch = epoch
	d.abortCtx = ctx
	return &d
}

// actual translates a rank in this communicator's coordinate space to a
// world rank.
func (c *Comm) actual(v int) int {
	if c.members == nil {
		return v
	}
	return c.members[v]
}

// Rank returns this task's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size (the world size, or the member count
// for a group).
func (c *Comm) Size() int {
	if c.members != nil {
		return len(c.members)
	}
	return c.world.size
}

// Group derives a sub-communicator over a subset of this communicator's
// ranks: members[i] becomes rank i of the group, so collectives and
// compositing exchanges written against ranks 0..len(members)-1 run
// unchanged over any rank subset (MPI_Comm_create in miniature). The
// calling task must be a member. Messages still travel over the world's
// per-pair links, so a task may only participate in one group exchange at
// a time — concurrent groups are safe as long as each world rank works
// through its exchanges in a globally consistent order.
func (c *Comm) Group(members []int) (*Comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("comm: empty group")
	}
	actual := make([]int, len(members))
	seen := make(map[int]bool, len(members))
	me := -1
	for i, m := range members {
		if m < 0 || m >= c.Size() {
			return nil, fmt.Errorf("comm: group member %d out of range [0,%d)", m, c.Size())
		}
		a := c.actual(m)
		if seen[a] {
			return nil, fmt.Errorf("comm: duplicate group member %d", m)
		}
		seen[a] = true
		actual[i] = a
		if m == c.rank {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("comm: rank %d is not a member of group %v", c.rank, members)
	}
	return &Comm{world: c.world, rank: me, members: actual, epoch: c.epoch, abortCtx: c.abortCtx}, nil
}

// Send delivers a copy of data to the destination rank. Messages between a
// fixed (from, to) pair arrive in send order.
func (c *Comm) Send(to, tag int, data []float32) {
	if to < 0 || to >= c.Size() {
		panic(fmt.Sprintf("comm: send to invalid rank %d", to))
	}
	cp := make([]float32, len(data))
	copy(cp, data)
	from, dst := c.actual(c.rank), c.actual(to)
	m := message{tag: tag, epoch: c.epoch, data: cp}
	if p := c.world.faults.Load(); p != nil {
		for _, out := range p.route(from, dst, m) {
			c.push(from, dst, out)
		}
		return
	}
	c.push(from, dst, m)
}

// push delivers one routed message on a link, honoring the abort binding.
func (c *Comm) push(from, dst int, m message) {
	w := c.world
	w.bytes.Add(int64(4 * len(m.data)))
	w.msgs.Add(1)
	w.linkBytes[from][dst].Add(int64(4 * len(m.data)))
	w.linkMsgs[from][dst].Add(1)
	if c.abortCtx == nil {
		w.links[from][dst] <- m
		return
	}
	select {
	case w.links[from][dst] <- m:
	case <-c.abortCtx.Done():
		panic(&AbortError{Rank: from, Peer: dst, Op: "send", Err: c.abortCtx.Err()})
	}
}

// Recv blocks for the next message from a rank and checks its tag. A tag
// mismatch indicates a protocol bug and panics (surfaced by Run as an
// error). Messages from other epochs are silently discarded; on a bound
// communicator (WithEpoch) an expired context aborts the wait with an
// *AbortError panic instead of blocking forever on a dead peer.
func (c *Comm) Recv(from, tag int) []float32 {
	if from < 0 || from >= c.Size() {
		panic(fmt.Sprintf("comm: recv from invalid rank %d", from))
	}
	src, me := c.actual(from), c.actual(c.rank)
	link := c.world.links[src][me]
	for {
		var m message
		if c.abortCtx == nil {
			m = <-link
		} else {
			select {
			case m = <-link:
			case <-c.abortCtx.Done():
				panic(&AbortError{Rank: me, Peer: src, Op: "recv", Err: c.abortCtx.Err()})
			}
		}
		if m.epoch != c.epoch {
			c.world.stale.Add(1)
			continue
		}
		if m.tag != tag {
			panic(fmt.Sprintf("comm: rank %d expected tag %d from %d, got %d", c.rank, tag, from, m.tag))
		}
		return m.data
	}
}

// Internal collective tags live in a reserved negative range.
const (
	tagBarrier = -1
	tagReduce  = -2
	tagBcast   = -3
	tagGather  = -4
)

// Barrier blocks until every task has entered it.
func (c *Comm) Barrier() {
	// Central coordinator: everyone checks in with rank 0, rank 0 releases.
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			c.Recv(r, tagBarrier)
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tagBarrier, nil)
		}
		return
	}
	c.Send(0, tagBarrier, nil)
	c.Recv(0, tagBarrier)
}

// AllReduce combines one float64 from every task with op and returns the
// result on every task.
func (c *Comm) AllReduce(v float64, op func(a, b float64) float64) float64 {
	// Reduce to 0 with float64 precision carried in two float32 words.
	hi, lo := splitFloat64(v)
	buf := []float32{hi, lo}
	if c.rank == 0 {
		acc := v
		for r := 1; r < c.Size(); r++ {
			m := c.Recv(r, tagReduce)
			acc = op(acc, joinFloat64(m[0], m[1]))
		}
		h, l := splitFloat64(acc)
		out := []float32{h, l}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tagBcast, out)
		}
		return acc
	}
	c.Send(0, tagReduce, buf)
	m := c.Recv(0, tagBcast)
	return joinFloat64(m[0], m[1])
}

// AllReduceMax returns the maximum of v across tasks.
func (c *Comm) AllReduceMax(v float64) float64 {
	return c.AllReduce(v, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllReduceMin returns the minimum of v across tasks.
func (c *Comm) AllReduceMin(v float64) float64 {
	return c.AllReduce(v, func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	})
}

// AllReduceSum returns the sum of v across tasks.
func (c *Comm) AllReduceSum(v float64) float64 {
	return c.AllReduce(v, func(a, b float64) float64 { return a + b })
}

// Gather collects each task's slice at the root (others get nil).
func (c *Comm) Gather(root int, data []float32) [][]float32 {
	if c.rank != root {
		c.Send(root, tagGather, data)
		return nil
	}
	out := make([][]float32, c.Size())
	cp := make([]float32, len(data))
	copy(cp, data)
	out[root] = cp
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		out[r] = c.Recv(r, tagGather)
	}
	return out
}

// Bcast sends root's slice to every task and returns it (a copy).
func (c *Comm) Bcast(root int, data []float32) []float32 {
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, tagBcast, data)
			}
		}
		cp := make([]float32, len(data))
		copy(cp, data)
		return cp
	}
	return c.Recv(root, tagBcast)
}

// splitFloat64 encodes a float64 into two float32 words losslessly enough
// for reductions (value + residual).
func splitFloat64(v float64) (float32, float32) {
	hi := float32(v)
	lo := float32(v - float64(hi))
	return hi, lo
}

func joinFloat64(hi, lo float32) float64 {
	return float64(hi) + float64(lo)
}
