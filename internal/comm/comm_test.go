package comm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestPointToPointOrder(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float32{1})
			c.Send(1, 7, []float32{2})
			c.Send(1, 7, []float32{3})
			return nil
		}
		for want := 1; want <= 3; want++ {
			m := c.Recv(0, 7)
			if len(m) != 1 || m[0] != float32(want) {
				return fmt.Errorf("got %v want %d", m, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MessagesSent() != 3 {
		t.Errorf("messages = %d", w.MessagesSent())
	}
	if w.BytesSent() != 12 {
		t.Errorf("bytes = %d", w.BytesSent())
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []float32{42}
			c.Send(1, 0, buf)
			buf[0] = 99 // mutating after send must not affect the receiver
			return nil
		}
		m := c.Recv(0, 0)
		if m[0] != 42 {
			return fmt.Errorf("payload mutated in flight: %v", m[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(n)
		var before, violations int64
		err := w.Run(func(c *Comm) error {
			atomic.AddInt64(&before, 1)
			c.Barrier()
			if atomic.LoadInt64(&before) != int64(n) {
				atomic.AddInt64(&violations, 1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if violations != 0 {
			t.Errorf("n=%d: %d tasks passed the barrier early", n, violations)
		}
	}
}

func TestAllReduce(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		w := NewWorld(n)
		err := w.Run(func(c *Comm) error {
			v := float64(c.Rank() + 1)
			sum := c.AllReduceSum(v)
			want := float64(n*(n+1)) / 2
			if sum != want {
				return fmt.Errorf("sum = %v want %v", sum, want)
			}
			if mx := c.AllReduceMax(v); mx != float64(n) {
				return fmt.Errorf("max = %v", mx)
			}
			if mn := c.AllReduceMin(v); mn != 1 {
				return fmt.Errorf("min = %v", mn)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGatherAndBcast(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		mine := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
		parts := c.Gather(0, mine)
		//insitu:collective-ok assertion failure aborts the whole world run; no rank keeps collecting
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				if parts[r][0] != float32(r) || parts[r][1] != float32(r*10) {
					return fmt.Errorf("gather wrong for rank %d: %v", r, parts[r])
				}
			}
		} else if parts != nil {
			return errors.New("non-root should get nil from Gather")
		}
		got := c.Bcast(0, []float32{123})
		if got[0] != 123 {
			return fmt.Errorf("bcast got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCollect(t *testing.T) {
	w := NewWorld(3)
	vals, err := RunCollect(w, func(c *Comm) (int, error) {
		return c.Rank() * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range vals {
		if v != 2*r {
			t.Errorf("rank %d value %d", r, v)
		}
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	w := NewWorld(3)
	sentinel := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestTaskPanicRecovered(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic("injected failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic should surface as error")
	}
}

func TestInvalidRankPanicsAsError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(5, 0, nil) // out of range
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error for invalid destination")
	}
}

func TestTagMismatchDetected(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float32{1})
			return nil
		}
		c.Recv(0, 2) // wrong tag: protocol bug
		return nil
	})
	if err == nil {
		t.Fatal("expected tag mismatch error")
	}
}
