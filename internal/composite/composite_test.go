package composite

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"insitu/internal/comm"
	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raytrace"
)

// randomImage builds a reproducible random partial image.
func randomImage(w, h int, seed int64, coverage float64) *framebuffer.Image {
	rng := rand.New(rand.NewSource(seed))
	img := framebuffer.NewImage(w, h)
	for i := 0; i < w*h; i++ {
		if rng.Float64() < coverage {
			a := rng.Float32()
			img.Set(i%w, i/w, rng.Float32()*a, rng.Float32()*a, rng.Float32()*a, a, 1+rng.Float32()*10)
		}
	}
	return img
}

// serialDepthMerge is the reference result for DepthOp.
func serialDepthMerge(imgs []*framebuffer.Image) *framebuffer.Image {
	out := imgs[0].Clone()
	for _, im := range imgs[1:] {
		if err := out.DepthCompositeFrom(im); err != nil {
			panic(err)
		}
	}
	return out
}

// serialBlend is the reference result for BlendOp in the given order.
func serialBlend(imgs []*framebuffer.Image, order []int) *framebuffer.Image {
	out := imgs[order[0]].Clone()
	for _, r := range order[1:] {
		if err := out.BlendUnder(imgs[r]); err != nil {
			panic(err)
		}
	}
	return out
}

func imagesAlmostEqual(a, b *framebuffer.Image, tol float32) error {
	for i := range a.Color {
		d := a.Color[i] - b.Color[i]
		if d < -tol || d > tol {
			return fmt.Errorf("color[%d]: %v vs %v", i, a.Color[i], b.Color[i])
		}
	}
	return nil
}

func runComposite(t *testing.T, k *Compositor, imgs []*framebuffer.Image, op Op, order []int) *framebuffer.Image {
	t.Helper()
	n := len(imgs)
	w := comm.NewWorld(n)
	results, err := comm.RunCollect(w, func(c *comm.Comm) (*framebuffer.Image, error) {
		out, stats, err := k.Composite(c, imgs[c.Rank()], op, order)
		if err != nil {
			return nil, err
		}
		if stats.Elapsed <= 0 {
			return nil, fmt.Errorf("no elapsed time recorded")
		}
		//insitu:leaselife-ok test compares the image before any further Composite call reuses the arena
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0] == nil {
		t.Fatal("rank 0 got no image")
	}
	for r := 1; r < n; r++ {
		if results[r] != nil {
			t.Fatalf("rank %d should not receive the image", r)
		}
	}
	return results[0]
}

func TestDepthCompositeMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 6, 8} {
		imgs := make([]*framebuffer.Image, n)
		for r := 0; r < n; r++ {
			imgs[r] = randomImage(19, 13, int64(100+r), 0.6)
		}
		want := serialDepthMerge(imgs)
		for name, k := range map[string]*Compositor{
			"binaryswap": BinarySwap(),
			"directsend": DirectSend(n),
		} {
			got := runComposite(t, k, imgs, DepthOp, nil)
			if err := imagesAlmostEqual(got, want, 0); err != nil {
				t.Errorf("n=%d %s: %v", n, name, err)
			}
		}
	}
}

func TestBlendCompositeMatchesSerialOrder(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		imgs := make([]*framebuffer.Image, n)
		for r := 0; r < n; r++ {
			imgs[r] = randomImage(17, 11, int64(7*n+r), 0.8)
		}
		// A shuffled visibility order exercises the position remapping.
		order := rand.New(rand.NewSource(int64(n))).Perm(n)
		want := serialBlend(imgs, order)
		got := runComposite(t, BinarySwap(), imgs, BlendOp, order)
		if err := imagesAlmostEqual(got, want, 2e-5); err != nil {
			t.Errorf("n=%d blend: %v", n, err)
		}
	}
}

func TestRadixKExplicitFactors(t *testing.T) {
	n := 12
	imgs := make([]*framebuffer.Image, n)
	for r := 0; r < n; r++ {
		imgs[r] = randomImage(23, 9, int64(r), 0.5)
	}
	want := serialDepthMerge(imgs)
	for _, factors := range [][]int{{2, 2, 3}, {3, 4}, {12}, {2, 6}} {
		got := runComposite(t, RadixK(factors...), imgs, DepthOp, nil)
		if err := imagesAlmostEqual(got, want, 0); err != nil {
			t.Errorf("factors %v: %v", factors, err)
		}
	}
}

func TestBadFactorsRejected(t *testing.T) {
	imgs := []*framebuffer.Image{randomImage(8, 8, 1, 0.5), randomImage(8, 8, 2, 0.5)}
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) error {
		_, _, err := RadixK(3).Composite(c, imgs[c.Rank()], DepthOp, nil)
		return err
	})
	if err == nil {
		t.Fatal("expected factor mismatch error")
	}
}

func TestBlendRequiresOrder(t *testing.T) {
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) error {
		_, _, err := BinarySwap().Composite(c, randomImage(4, 4, int64(c.Rank()), 1), BlendOp, nil)
		return err
	})
	if err == nil {
		t.Fatal("expected missing-order error")
	}
}

func TestVisibilityOrder(t *testing.T) {
	order := VisibilityOrder([]float64{3.5, 1.25, 2.0, math.NaN()})
	want := []int{1, 2, 0, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v want %v", order, want)
		}
	}
}

// TestDistributedRenderMatchesSingleTask is the key integration property:
// dividing a mesh's triangles across N tasks, rendering each subset, and
// depth-compositing must reproduce the single-task render exactly.
func TestDistributedRenderMatchesSingleTask(t *testing.T) {
	ds, err := synthdata.ByName("rm")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, 14, 14, 14, synthdata.UnitBounds())
	full, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cam := render.OrbitCamera(full.Bounds(), 30, 20, 1.0)
	opts := raytrace.Options{Width: 64, Height: 48, Camera: cam, Workload: raytrace.Workload2}
	// Fix the light: the headlight default depends only on the camera, but
	// being explicit keeps tasks consistent by construction.
	light := render.HeadLight(cam)
	opts.Light = &light

	wantImg, _, err := raytrace.New(device.CPU(), full).Render(opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	// Round-robin triangle distribution.
	sub := make([]*mesh.TriangleMesh, n)
	for r := 0; r < n; r++ {
		sub[r] = &mesh.TriangleMesh{ScalarMin: full.ScalarMin, ScalarMax: full.ScalarMax}
	}
	for tri := 0; tri < full.NumTriangles(); tri++ {
		r := tri % n
		base := int32(len(sub[r].X))
		for c := 0; c < 3; c++ {
			vi := full.Conn[3*tri+c]
			sub[r].X = append(sub[r].X, full.X[vi])
			sub[r].Y = append(sub[r].Y, full.Y[vi])
			sub[r].Z = append(sub[r].Z, full.Z[vi])
			sub[r].NX = append(sub[r].NX, full.NX[vi])
			sub[r].NY = append(sub[r].NY, full.NY[vi])
			sub[r].NZ = append(sub[r].NZ, full.NZ[vi])
			sub[r].Scalars = append(sub[r].Scalars, full.Scalars[vi])
		}
		sub[r].Conn = append(sub[r].Conn, base, base+1, base+2)
	}

	w := comm.NewWorld(n)
	results, err := comm.RunCollect(w, func(c *comm.Comm) (*framebuffer.Image, error) {
		img, _, err := raytrace.New(device.New("task", 2), sub[c.Rank()]).Render(opts)
		if err != nil {
			return nil, err
		}
		out, _, err := BinarySwap().Composite(c, img, DepthOp, nil)
		//insitu:leaselife-ok per-rank compositor is discarded after this one frame; no reuse overwrites the image
		return out, err
	})
	if err != nil {
		t.Fatal(err)
	}
	got := results[0]
	diffs := 0
	for i := range wantImg.Color {
		if math.Abs(float64(wantImg.Color[i]-got.Color[i])) > 1e-6 {
			diffs++
		}
	}
	// Identical geometry and deterministic shading: allow only a handful
	// of depth-tie pixels to differ.
	if diffs > len(wantImg.Color)/500 {
		t.Errorf("distributed render differs at %d of %d channels", diffs, len(wantImg.Color))
	}
}
