// Package composite implements sort-last parallel image compositing, the
// IceT analogue: radix-k partition exchange (with binary swap and direct
// send as special factorizations), a z-test operator for opaque surface
// renders, and a visibility-ordered blend operator for volume renders.
package composite

import (
	"fmt"
	"math"
	"sort"
	"time"

	"insitu/internal/comm"
	"insitu/internal/framebuffer"
)

// Op selects the per-pixel merge operator.
type Op int

const (
	// DepthOp keeps the nearer fragment (opaque geometry). Commutative,
	// so no ordering information is required.
	DepthOp Op = iota
	// BlendOp composites with the over operator in visibility order
	// (transparent volumes). Requires a per-task ordering.
	BlendOp
)

// Stats describes one compositing operation.
type Stats struct {
	Elapsed time.Duration
	Rounds  int
}

// Compositor merges the per-task sub-images of one frame into a complete
// image delivered at rank 0 (other ranks return nil).
type Compositor struct {
	// Factors is the radix-k factorization of the task count per round.
	// nil means "factor automatically into the smallest primes", which
	// yields binary swap on power-of-two counts.
	Factors []int
}

// BinarySwap returns a compositor using radix-2 rounds.
func BinarySwap() *Compositor { return &Compositor{} }

// DirectSend returns a compositor using one round of task-count radix,
// which is exactly the direct-send partition exchange.
func DirectSend(tasks int) *Compositor { return &Compositor{Factors: []int{tasks}} }

// RadixK returns a compositor with explicit round factors; the product
// must equal the task count.
func RadixK(factors ...int) *Compositor { return &Compositor{Factors: factors} }

// pixelsPerWord is the float32 payload per pixel: RGBA + depth.
const pixelsPerWord = 5

// Composite merges img across the world. order gives the visibility
// permutation for BlendOp: order[i] is the rank whose block is i-th
// closest to the camera; it may be nil for DepthOp. The composited image
// is returned at rank 0.
func (k *Compositor) Composite(c *comm.Comm, img *framebuffer.Image, op Op, order []int) (*framebuffer.Image, *Stats, error) {
	start := time.Now()
	n := c.Size()
	stats := &Stats{}
	if op == BlendOp && order == nil {
		return nil, nil, fmt.Errorf("composite: BlendOp requires a visibility order")
	}
	if op == BlendOp && len(order) != n {
		return nil, nil, fmt.Errorf("composite: order has %d entries for %d tasks", len(order), n)
	}
	// My position in the visibility order (front = 0).
	pos := c.Rank()
	if op == BlendOp {
		pos = -1
		for i, r := range order {
			if r == c.Rank() {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, nil, fmt.Errorf("composite: rank %d missing from order %v", c.Rank(), order)
		}
	}

	factors := k.Factors
	if factors == nil {
		factors = primeFactors(n)
	}
	if product(factors) != n {
		return nil, nil, fmt.Errorf("composite: factors %v do not multiply to %d tasks", factors, n)
	}

	// The exchange pattern runs over VIRTUAL ids. For the ordered blend
	// operator, virtual id = visibility position, so every exchange group
	// is contiguous in visibility order and pairwise merges stay
	// associative across rounds (IceT's rank reordering). For the
	// commutative depth operator, virtual id = rank.
	virt := c.Rank()
	toActual := func(v int) int { return v }
	if op == BlendOp {
		virt = pos
		toActual = func(v int) int { return order[v] }
	}

	npix := img.W * img.H
	lo, hi := 0, npix
	cur := img.Clone()

	// Each round splits the owned range into f parts and exchanges them
	// within a group of f tasks.
	stride := 1
	for _, f := range factors {
		if f < 2 {
			stride *= f
			continue
		}
		stats.Rounds++
		me := (virt / stride) % f
		groupBase := virt - me*stride

		// Split [lo, hi) into f contiguous parts.
		parts := splitRange(lo, hi, f)

		// Send part j to group member j; keep part me.
		for j := 0; j < f; j++ {
			if j == me {
				continue
			}
			peer := toActual(groupBase + j*stride)
			c.Send(peer, tagFor(stride, j), encode(cur, parts[j][0], parts[j][1], virt))
		}
		// Receive every other member's fragment of my part and merge.
		myLo, myHi := parts[me][0], parts[me][1]
		frags := make([]fragment, 0, f)
		frags = append(frags, fragment{pos: virt, img: cur.SubRange(myLo, myHi)})
		for j := 0; j < f; j++ {
			if j == me {
				continue
			}
			peer := toActual(groupBase + j*stride)
			data := c.Recv(peer, tagFor(stride, me))
			frag, fragPos, err := decode(data, myHi-myLo)
			if err != nil {
				return nil, nil, err
			}
			frags = append(frags, fragment{pos: fragPos, img: frag})
		}
		merged, err := mergeFragments(frags, op)
		if err != nil {
			return nil, nil, err
		}
		cur.WriteRange(myLo, merged)
		lo, hi = myLo, myHi
		stride *= f
	}

	// Gather the owned ranges at rank 0.
	final := gatherRanges(c, cur, lo, hi, npix)
	stats.Elapsed = time.Since(start)
	if c.Rank() != 0 {
		return nil, stats, nil
	}
	return final, stats, nil
}

// fragment pairs a strip with its owner's visibility position.
type fragment struct {
	pos int
	img *framebuffer.Image
}

// mergeFragments folds fragments with the selected operator. For BlendOp
// the fragments are sorted front to back and folded with the under
// operator; for DepthOp order is irrelevant.
func mergeFragments(frags []fragment, op Op) (*framebuffer.Image, error) {
	if op == BlendOp {
		sort.Slice(frags, func(i, j int) bool { return frags[i].pos < frags[j].pos })
	}
	acc := frags[0].img
	for _, f := range frags[1:] {
		var err error
		if op == DepthOp {
			err = acc.DepthCompositeFrom(f.img)
		} else {
			err = acc.BlendUnder(f.img)
		}
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// gatherRanges collects every task's owned [lo,hi) range at rank 0 and
// assembles the full image.
func gatherRanges(c *comm.Comm, cur *framebuffer.Image, lo, hi, npix int) *framebuffer.Image {
	header := []float32{float32(lo), float32(hi)}
	strip := cur.SubRange(lo, hi)
	payload := append(header, encodeStrip(strip)...)
	parts := c.Gather(0, payload)
	if c.Rank() != 0 {
		return nil
	}
	out := framebuffer.NewImage(cur.W, cur.H)
	for _, p := range parts {
		plo := int(p[0])
		phi := int(p[1])
		strip := decodeStrip(p[2:], phi-plo)
		out.WriteRange(plo, strip)
	}
	return out
}

// encode packs a pixel range plus the sender's visibility position.
func encode(img *framebuffer.Image, lo, hi, pos int) []float32 {
	strip := img.SubRange(lo, hi)
	out := make([]float32, 0, 1+pixelsPerWord*(hi-lo))
	out = append(out, float32(pos))
	return append(out, encodeStrip(strip)...)
}

func decode(data []float32, n int) (*framebuffer.Image, int, error) {
	if len(data) != 1+pixelsPerWord*n {
		return nil, 0, fmt.Errorf("composite: fragment has %d words, want %d", len(data), 1+pixelsPerWord*n)
	}
	pos := int(data[0])
	return decodeStrip(data[1:], n), pos, nil
}

func encodeStrip(strip *framebuffer.Image) []float32 {
	n := strip.W * strip.H
	out := make([]float32, pixelsPerWord*n)
	copy(out[:4*n], strip.Color)
	copy(out[4*n:], strip.Depth)
	return out
}

func decodeStrip(data []float32, n int) *framebuffer.Image {
	strip := &framebuffer.Image{W: n, H: 1, Color: make([]float32, 4*n), Depth: make([]float32, n)}
	copy(strip.Color, data[:4*n])
	copy(strip.Depth, data[4*n:])
	return strip
}

// splitRange divides [lo, hi) into k near-equal contiguous parts.
func splitRange(lo, hi, k int) [][2]int {
	n := hi - lo
	parts := make([][2]int, k)
	for j := 0; j < k; j++ {
		parts[j] = [2]int{lo + j*n/k, lo + (j+1)*n/k}
	}
	return parts
}

// tagFor derives a distinct message tag per (round stride, destination
// slot) pair so rounds cannot cross-talk.
func tagFor(stride, slot int) int { return 1000 + stride*64 + slot }

// primeFactors factors n into ascending primes (binary swap on powers of
// two). n = 1 yields an empty factorization.
func primeFactors(n int) []int {
	var f []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			f = append(f, p)
			n /= p
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

func product(f []int) int {
	p := 1
	for _, v := range f {
		p *= v
	}
	return p
}

// VisibilityOrder sorts ranks front to back by their blocks' camera-space
// distance; blockDepth[r] is the distance of rank r's block centroid from
// the camera. Used to drive BlendOp compositing of distributed volumes.
func VisibilityOrder(blockDepth []float64) []int {
	order := make([]int, len(blockDepth))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := blockDepth[order[a]], blockDepth[order[b]]
		if math.IsNaN(da) {
			return false
		}
		if math.IsNaN(db) {
			return true
		}
		return da < db
	})
	return order
}
