// Package composite implements sort-last parallel image compositing, the
// IceT analogue: radix-k partition exchange (with binary swap and direct
// send as special factorizations), a z-test operator for opaque surface
// renders, and a visibility-ordered blend operator for volume renders.
package composite

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"insitu/internal/comm"
	"insitu/internal/framebuffer"
)

// Op selects the per-pixel merge operator.
type Op int

const (
	// DepthOp keeps the nearer fragment (opaque geometry). Commutative,
	// so no ordering information is required.
	DepthOp Op = iota
	// BlendOp composites with the over operator in visibility order
	// (transparent volumes). Requires a per-task ordering.
	BlendOp
)

// Stats describes one compositing operation.
type Stats struct {
	Elapsed time.Duration
	Rounds  int
}

// Compositor merges the per-task sub-images of one frame into a complete
// image delivered at rank 0 (other ranks return nil).
//
// A Compositor owns reusable per-rank scratch — the working image copy,
// the encode buffer (safe to reuse between sends because comm.Send
// copies), the decoded fragment strips, and the root's assembled output —
// all grown on demand and pre-sized after the first frame, so
// steady-state compositing rounds allocate only inside the comm layer's
// network-copy semantics. Scratch is keyed by rank, so one Compositor may
// be shared across the ranks of a simulated MPI world and reused across
// frames (as study.runTask does); concurrent Composite calls from the
// SAME rank are not supported. The image returned at rank 0 is owned by
// the compositor and valid until that rank's next Composite call.
type Compositor struct {
	// Factors is the radix-k factorization of the task count per round.
	// nil means "factor automatically into the smallest primes", which
	// yields binary swap on power-of-two counts.
	Factors []int

	mu      sync.Mutex
	scratch map[int]*compScratch
}

// compScratch is one rank's reusable compositing state.
type compScratch struct {
	cur       framebuffer.Image
	out       framebuffer.Image
	myStrip   framebuffer.Image
	sendBuf   []float32
	gatherBuf []float32
	frags     []fragment
	fragImgs  []*framebuffer.Image
}

// scratchFor returns rank's scratch, creating it on first use.
func (k *Compositor) scratchFor(rank int) *compScratch {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.scratch == nil {
		k.scratch = make(map[int]*compScratch)
	}
	s := k.scratch[rank]
	if s == nil {
		s = &compScratch{}
		k.scratch[rank] = s
	}
	return s
}

// BinarySwap returns a compositor using radix-2 rounds.
func BinarySwap() *Compositor { return &Compositor{} }

// DirectSend returns a compositor using one round of task-count radix,
// which is exactly the direct-send partition exchange.
func DirectSend(tasks int) *Compositor { return &Compositor{Factors: []int{tasks}} }

// RadixK returns a compositor with explicit round factors; the product
// must equal the task count.
func RadixK(factors ...int) *Compositor { return &Compositor{Factors: factors} }

// pixelsPerWord is the float32 payload per pixel: RGBA + depth.
const pixelsPerWord = 5

// Composite merges img across the world. order gives the visibility
// permutation for BlendOp: order[i] is the rank whose block is i-th
// closest to the camera; it may be nil for DepthOp. The composited image
// is returned at rank 0.
//
//insitu:arena
func (k *Compositor) Composite(c *comm.Comm, img *framebuffer.Image, op Op, order []int) (*framebuffer.Image, *Stats, error) {
	start := time.Now()
	n := c.Size()
	stats := &Stats{}
	if op == BlendOp && order == nil {
		return nil, nil, fmt.Errorf("composite: BlendOp requires a visibility order")
	}
	if op == BlendOp && len(order) != n {
		return nil, nil, fmt.Errorf("composite: order has %d entries for %d tasks", len(order), n)
	}
	// My position in the visibility order (front = 0).
	pos := c.Rank()
	if op == BlendOp {
		pos = -1
		for i, r := range order {
			if r == c.Rank() {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, nil, fmt.Errorf("composite: rank %d missing from order %v", c.Rank(), order)
		}
	}

	factors := k.Factors
	if factors == nil {
		factors = primeFactors(n)
	}
	if product(factors) != n {
		return nil, nil, fmt.Errorf("composite: factors %v do not multiply to %d tasks", factors, n)
	}

	// The exchange pattern runs over VIRTUAL ids. For the ordered blend
	// operator, virtual id = visibility position, so every exchange group
	// is contiguous in visibility order and pairwise merges stay
	// associative across rounds (IceT's rank reordering). For the
	// commutative depth operator, virtual id = rank.
	virt := c.Rank()
	toActual := func(v int) int { return v }
	if op == BlendOp {
		virt = pos
		toActual = func(v int) int { return order[v] }
	}

	npix := img.W * img.H
	lo, hi := 0, npix
	sc := k.scratchFor(c.Rank())
	sc.cur.CopyFrom(img)
	cur := &sc.cur

	// Each round splits the owned range into f parts and exchanges them
	// within a group of f tasks.
	stride := 1
	for _, f := range factors {
		if f < 2 {
			stride *= f
			continue
		}
		stats.Rounds++
		me := (virt / stride) % f
		groupBase := virt - me*stride

		// Send part j to group member j; keep part me. partRange avoids
		// materializing the split: parts are derived arithmetically.
		for j := 0; j < f; j++ {
			if j == me {
				continue
			}
			peer := toActual(groupBase + j*stride)
			plo, phi := partRange(lo, hi, f, j)
			c.Send(peer, tagFor(stride, j), sc.encodeRange(cur, plo, phi, virt))
		}
		// Receive every other member's fragment of my part and merge.
		myLo, myHi := partRange(lo, hi, f, me)
		sc.frags = sc.frags[:0]
		cur.SubRangeInto(myLo, myHi, &sc.myStrip)
		sc.frags = append(sc.frags, fragment{pos: virt, img: &sc.myStrip})
		for j := 0; j < f; j++ {
			if j == me {
				continue
			}
			peer := toActual(groupBase + j*stride)
			data := c.Recv(peer, tagFor(stride, me))
			frag, fragPos, err := decodeInto(data, myHi-myLo, sc.fragImg(j))
			if err != nil {
				return nil, nil, err
			}
			sc.frags = append(sc.frags, fragment{pos: fragPos, img: frag})
		}
		merged, err := mergeFragments(sc.frags, op)
		if err != nil {
			return nil, nil, err
		}
		cur.WriteRange(myLo, merged)
		lo, hi = myLo, myHi
		stride *= f
	}

	// Gather the owned ranges at rank 0.
	final := sc.gatherRanges(c, cur, lo, hi, npix)
	stats.Elapsed = time.Since(start)
	if c.Rank() != 0 {
		return nil, stats, nil
	}
	return final, stats, nil
}

// fragImg returns the j-th reusable decode strip.
func (sc *compScratch) fragImg(j int) *framebuffer.Image {
	for len(sc.fragImgs) <= j {
		sc.fragImgs = append(sc.fragImgs, &framebuffer.Image{})
	}
	return sc.fragImgs[j]
}

// fragment pairs a strip with its owner's visibility position.
type fragment struct {
	pos int
	img *framebuffer.Image
}

// mergeFragments folds fragments with the selected operator. For BlendOp
// the fragments are sorted front to back and folded with the under
// operator; for DepthOp order is irrelevant.
func mergeFragments(frags []fragment, op Op) (*framebuffer.Image, error) {
	if op == BlendOp {
		sort.Slice(frags, func(i, j int) bool { return frags[i].pos < frags[j].pos })
	}
	acc := frags[0].img
	for _, f := range frags[1:] {
		var err error
		if op == DepthOp {
			err = acc.DepthCompositeFrom(f.img)
		} else {
			err = acc.BlendUnder(f.img)
		}
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// gatherRanges collects every task's owned [lo,hi) range at rank 0 and
// assembles the full image into the compositor's reusable output.
func (sc *compScratch) gatherRanges(c *comm.Comm, cur *framebuffer.Image, lo, hi, npix int) *framebuffer.Image {
	n := hi - lo
	need := 2 + pixelsPerWord*n
	if cap(sc.gatherBuf) < need {
		sc.gatherBuf = make([]float32, need)
	}
	payload := sc.gatherBuf[:need]
	payload[0], payload[1] = float32(lo), float32(hi)
	copy(payload[2:2+4*n], cur.Color[4*lo:4*hi])
	copy(payload[2+4*n:], cur.Depth[lo:hi])
	parts := c.Gather(0, payload)
	if c.Rank() != 0 {
		return nil
	}
	sc.out.EnsureSize(cur.W, cur.H)
	out := &sc.out
	for _, p := range parts {
		plo := int(p[0])
		phi := int(p[1])
		pn := phi - plo
		copy(out.Color[4*plo:4*phi], p[2:2+4*pn])
		copy(out.Depth[plo:phi], p[2+4*pn:])
	}
	return out
}

// encodeRange packs a pixel range plus the sender's visibility position
// into the compositor's reusable send buffer. comm.Send copies its
// payload (network semantics), so the buffer may be reused by the very
// next send.
func (sc *compScratch) encodeRange(img *framebuffer.Image, lo, hi, pos int) []float32 {
	n := hi - lo
	need := 1 + pixelsPerWord*n
	if cap(sc.sendBuf) < need {
		sc.sendBuf = make([]float32, need)
	}
	buf := sc.sendBuf[:need]
	buf[0] = float32(pos)
	copy(buf[1:1+4*n], img.Color[4*lo:4*hi])
	copy(buf[1+4*n:], img.Depth[lo:hi])
	return buf
}

// decodeInto unpacks a fragment into the reusable strip dst.
func decodeInto(data []float32, n int, dst *framebuffer.Image) (*framebuffer.Image, int, error) {
	if len(data) != 1+pixelsPerWord*n {
		return nil, 0, fmt.Errorf("composite: fragment has %d words, want %d", len(data), 1+pixelsPerWord*n)
	}
	pos := int(data[0])
	body := data[1:]
	if cap(dst.Color) < 4*n {
		dst.Color = make([]float32, 4*n)
		dst.Depth = make([]float32, n)
	}
	dst.W, dst.H = n, 1
	dst.Color = dst.Color[:4*n]
	dst.Depth = dst.Depth[:n]
	copy(dst.Color, body[:4*n])
	copy(dst.Depth, body[4*n:])
	return dst, pos, nil
}

// partRange returns the j-th of f near-equal contiguous parts of [lo, hi).
func partRange(lo, hi, f, j int) (int, int) {
	n := hi - lo
	return lo + j*n/f, lo + (j+1)*n/f
}

// tagFor derives a distinct message tag per (round stride, destination
// slot) pair so rounds cannot cross-talk.
func tagFor(stride, slot int) int { return 1000 + stride*64 + slot }

// primeFactors factors n into ascending primes (binary swap on powers of
// two). n = 1 yields an empty factorization.
func primeFactors(n int) []int {
	var f []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			f = append(f, p)
			n /= p
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

func product(f []int) int {
	p := 1
	for _, v := range f {
		p *= v
	}
	return p
}

// VisibilityOrder sorts ranks front to back by their blocks' camera-space
// distance; blockDepth[r] is the distance of rank r's block centroid from
// the camera. Used to drive BlendOp compositing of distributed volumes.
func VisibilityOrder(blockDepth []float64) []int {
	order := make([]int, len(blockDepth))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := blockDepth[order[a]], blockDepth[order[b]]
		if math.IsNaN(da) {
			return false
		}
		if math.IsNaN(db) {
			return true
		}
		return da < db
	})
	return order
}
