// Package bvh builds and traverses bounding volume hierarchies over
// triangle meshes. The default builder is the linear BVH (morton-code
// radix sort + top-down splits at the highest differing bit), the O(n)
// structure behind the paper's ray-tracing performance model; a median
// split and a binned-SAH builder are provided for the architecture-tuned
// baselines and ablation benches.
package bvh

import (
	"fmt"
	"math"
	"time"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

// Node is one flat-array BVH node. Leaves have Count > 0 and reference
// PrimIDs[Start : Start+Count]; inner nodes reference children by index.
type Node struct {
	Bounds       vecmath.AABB
	Left, Right  int32
	Start, Count int32
}

// BVH is a flattened hierarchy over a triangle mesh.
type BVH struct {
	Nodes   []Node
	PrimIDs []int32
	Mesh    *mesh.TriangleMesh
	// BuildTime records wall-clock construction cost; the ray-tracing
	// model's c0*O + c1 term is fitted against it.
	BuildTime time.Duration
	// MaxLeafSize used during the build.
	MaxLeafSize int
}

// Builder selects the construction algorithm.
type Builder int

const (
	// LBVH is the morton-sort linear BVH (O(n) build).
	LBVH Builder = iota
	// Median recursively splits at the median of the longest axis.
	Median
	// SAH is a binned surface-area-heuristic build (slowest, best trees).
	SAH
)

func (b Builder) String() string {
	switch b {
	case LBVH:
		return "lbvh"
	case Median:
		return "median"
	case SAH:
		return "sah"
	}
	return fmt.Sprintf("builder(%d)", int(b))
}

// Build constructs a BVH over the mesh with the given builder.
func Build(d *device.Device, m *mesh.TriangleMesh, builder Builder) *BVH {
	start := time.Now()
	n := m.NumTriangles()
	b := &BVH{Mesh: m, MaxLeafSize: 8}
	if n == 0 {
		b.BuildTime = time.Since(start)
		return b
	}

	bounds := make([]vecmath.AABB, n)
	centroids := make([]vecmath.Vec3, n)
	dpp.For(d, n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			bounds[t] = m.TriBounds(t)
			centroids[t] = m.Centroid(t)
		}
	})
	// AABB union is a componentwise min/max — commutative and exactly
	// associative — so the parallel chunked reduction is bit-identical to
	// the serial fold on every device profile.
	world := dpp.Reduce(d, bounds, vecmath.EmptyAABB(),
		func(a, c vecmath.AABB) vecmath.AABB { return a.Union(c) })

	ids := make([]int32, n)
	dpp.For(d, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ids[i] = int32(i)
		}
	})

	switch builder {
	case LBVH:
		codes := make([]uint64, n)
		diag := world.Diagonal()
		inv := vecmath.V(safeInv(diag.X), safeInv(diag.Y), safeInv(diag.Z))
		dpp.For(d, n, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				p := centroids[t].Sub(world.Min).Mul(inv)
				codes[t] = Morton3(p.X, p.Y, p.Z)
			}
		})
		dpp.SortPairs64(d, codes, ids)
		b.PrimIDs = ids
		b.buildLBVH(d, codes, bounds)
	case Median, SAH:
		// Pre-size to the binary-tree bound (2n-1 nodes) so recursion
		// never regrows the array.
		b.Nodes = make([]Node, 0, 2*n)
		b.PrimIDs = ids
		b.buildSpatialRange(bounds, centroids, 0, n, builder)
	}
	b.BuildTime = time.Since(start)
	return b
}

// lbvhParallelCutoff is the subtree size below which the LBVH topology
// build stays serial: smaller ranges are cheaper to build than to
// dispatch.
const lbvhParallelCutoff = 4096

// buildLBVH constructs the morton-split topology over the sorted codes.
// On multi-worker devices the build is parallel and deterministic: a
// serial descent from the root carves the code range into subtree spans
// (the "spine"), the subtrees are built concurrently into private node
// arrays, and a parallel stitch copies them into one pre-sized array with
// child-index fixups. The resulting tree is identical in topology to the
// serial build; only the node numbering differs (spine first, then
// subtrees in range order), which traversal never observes.
func (b *BVH) buildLBVH(d *device.Device, codes []uint64, bounds []vecmath.AABB) {
	n := len(codes)
	workers := d.Workers
	if workers < 1 {
		workers = 1
	}
	cutoff := n / (4 * workers)
	if cutoff < lbvhParallelCutoff {
		cutoff = lbvhParallelCutoff
	}
	if workers == 1 || n <= cutoff {
		b.Nodes = make([]Node, 0, 2*n)
		b.buildMortonInto(&b.Nodes, codes, bounds, 0, n, 0)
		return
	}

	// Spine descent. Placeholder children are encoded as ^rangeIndex.
	type span struct{ start, end, bit int }
	var spine []Node
	var ranges []span
	var descend func(start, end, bit int) int32
	descend = func(start, end, bit int) int32 {
		count := end - start
		if count <= cutoff || count <= b.MaxLeafSize || bit >= 30 {
			ranges = append(ranges, span{start, end, bit})
			return ^int32(len(ranges) - 1)
		}
		split := mortonSplit(codes, start, end, bit)
		if split == start || split == end {
			// All codes share this bit: descend without splitting.
			return descend(start, end, bit+1)
		}
		idx := int32(len(spine))
		spine = append(spine, Node{})
		left := descend(start, split, bit+1)
		right := descend(split, end, bit+1)
		spine[idx].Left, spine[idx].Right = left, right
		return idx
	}
	root := descend(0, n, 0)

	// Build every subtree concurrently into its own array.
	subs := make([][]Node, len(ranges))
	dpp.ForEach(d, len(ranges), func(i int) {
		r := ranges[i]
		local := make([]Node, 0, 2*(r.end-r.start))
		b.buildMortonInto(&local, codes, bounds, r.start, r.end, r.bit)
		subs[i] = local
	})

	if root < 0 {
		// The whole range was one span (degenerate codes): no spine.
		b.Nodes = subs[0]
		return
	}

	// Stitch: spine nodes first, then each subtree at its offset.
	offs := make([]int32, len(ranges))
	total := int32(len(spine))
	for i := range subs {
		offs[i] = total
		total += int32(len(subs[i]))
	}
	nodes := make([]Node, total)
	copy(nodes, spine)
	dpp.ForEach(d, len(ranges), func(i int) {
		off := offs[i]
		dst := nodes[off : int(off)+len(subs[i])]
		for j, nd := range subs[i] {
			if nd.Count == 0 {
				nd.Left += off
				nd.Right += off
			}
			dst[j] = nd
		}
	})
	// Resolve placeholder children, then fill spine bounds bottom-up.
	// Spine nodes are in pre-order, so children always have higher
	// indices than their parent and a reverse sweep sees children first.
	for i := len(spine) - 1; i >= 0; i-- {
		nd := &nodes[i]
		if nd.Left < 0 {
			nd.Left = offs[^nd.Left]
		}
		if nd.Right < 0 {
			nd.Right = offs[^nd.Right]
		}
		nd.Bounds = nodes[nd.Left].Bounds.Union(nodes[nd.Right].Bounds)
	}
	b.Nodes = nodes
}

// mortonSplit returns the first position in the sorted [start, end) range
// whose code has the (29-bit)th bit set, found by binary search.
func mortonSplit(codes []uint64, start, end, bit int) int {
	mask := uint64(1) << uint(29-bit)
	lo, hi := start, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if codes[mid]&mask == 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func safeInv(v float64) float64 {
	if v == 0 {
		return 0
	}
	return 1 / v
}

// Morton3 interleaves 10 bits per normalized coordinate into a 30-bit
// morton code.
func Morton3(x, y, z float64) uint64 {
	return expandBits(quantize10(x))<<2 | expandBits(quantize10(y))<<1 | expandBits(quantize10(z))
}

func quantize10(v float64) uint32 {
	q := int(v * 1024)
	if q < 0 {
		q = 0
	}
	if q > 1023 {
		q = 1023
	}
	return uint32(q)
}

// expandBits spreads the low 10 bits of v so they occupy every third bit.
func expandBits(v uint32) uint64 {
	x := uint64(v) & 0x3ff
	x = (x | x<<16) & 0x30000ff
	x = (x | x<<8) & 0x300f00f
	x = (x | x<<4) & 0x30c30c3
	x = (x | x<<2) & 0x9249249
	return x
}

// rangeBounds unions the primitive bounds of PrimIDs[start:end].
func (b *BVH) rangeBounds(bounds []vecmath.AABB, start, end int) vecmath.AABB {
	box := vecmath.EmptyAABB()
	for i := start; i < end; i++ {
		box = box.Union(bounds[b.PrimIDs[i]])
	}
	return box
}

// buildMortonInto recursively splits the sorted morton range at the
// highest differing code bit, appending the subtree's nodes to *nodes
// (local indices) and returning its root index. Codes were sorted with
// PrimIDs as payload, so codes[i] corresponds to position i in PrimIDs;
// leaf Start/Count reference the global PrimIDs array, which is what lets
// subtrees build concurrently into private arrays and stitch without
// touching primitive indices.
func (b *BVH) buildMortonInto(nodes *[]Node, codes []uint64, bounds []vecmath.AABB, start, end, bit int) int32 {
	idx := int32(len(*nodes))
	*nodes = append(*nodes, Node{})
	count := end - start
	if count <= b.MaxLeafSize || bit >= 30 {
		(*nodes)[idx] = Node{
			Bounds: b.rangeBounds(bounds, start, end),
			Start:  int32(start), Count: int32(count),
		}
		return idx
	}
	split := mortonSplit(codes, start, end, bit)
	if split == start || split == end {
		// All codes share this bit: descend without splitting.
		*nodes = (*nodes)[:idx] // rebuild node at same position after recursion
		return b.buildMortonInto(nodes, codes, bounds, start, end, bit+1)
	}
	left := b.buildMortonInto(nodes, codes, bounds, start, split, bit+1)
	right := b.buildMortonInto(nodes, codes, bounds, split, end, bit+1)
	(*nodes)[idx] = Node{
		Bounds: (*nodes)[left].Bounds.Union((*nodes)[right].Bounds),
		Left:   left, Right: right,
	}
	return idx
}

// buildSpatialRange builds median or SAH splits over PrimIDs[start:end].
func (b *BVH) buildSpatialRange(bounds []vecmath.AABB, centroids []vecmath.Vec3, start, end int, builder Builder) int32 {
	idx := int32(len(b.Nodes))
	b.Nodes = append(b.Nodes, Node{})
	count := end - start
	box := b.rangeBounds(bounds, start, end)
	if count <= b.MaxLeafSize {
		b.Nodes[idx] = Node{Bounds: box, Start: int32(start), Count: int32(count)}
		return idx
	}

	cbox := vecmath.EmptyAABB()
	for i := start; i < end; i++ {
		cbox = cbox.ExpandPoint(centroids[b.PrimIDs[i]])
	}
	axis := longestAxis(cbox.Diagonal())
	split := start + count/2

	if builder == SAH {
		if s, ok := b.sahSplit(bounds, centroids, cbox, start, end, axis); ok {
			split = s
		} else {
			b.partitionMedian(centroids, start, end, axis, split)
		}
	} else {
		b.partitionMedian(centroids, start, end, axis, split)
	}
	if split <= start || split >= end {
		split = start + count/2
	}

	left := b.buildSpatialRange(bounds, centroids, start, split, builder)
	right := b.buildSpatialRange(bounds, centroids, split, end, builder)
	b.Nodes[idx] = Node{
		Bounds: b.Nodes[left].Bounds.Union(b.Nodes[right].Bounds),
		Left:   left, Right: right,
	}
	return idx
}

// partitionMedian nth-element partitions PrimIDs[start:end] around the kth
// centroid along axis (quickselect).
func (b *BVH) partitionMedian(centroids []vecmath.Vec3, start, end, axis, k int) {
	ids := b.PrimIDs
	key := func(i int) float64 { return axisValue(centroids[ids[i]], axis) }
	lo, hi := start, end-1
	for lo < hi {
		pivot := key((lo + hi) / 2)
		i, j := lo, hi
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				ids[i], ids[j] = ids[j], ids[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
}

// sahSplit bins centroids along axis and picks the minimum-cost split.
// Returns the partition point and whether a useful split was found.
func (b *BVH) sahSplit(bounds []vecmath.AABB, centroids []vecmath.Vec3, cbox vecmath.AABB, start, end, axis int) (int, bool) {
	const nbins = 8
	lo := axisValue(cbox.Min, axis)
	hi := axisValue(cbox.Max, axis)
	if hi-lo < 1e-12 {
		return 0, false
	}
	scale := nbins / (hi - lo)
	type bin struct {
		count int
		box   vecmath.AABB
	}
	bins := [nbins]bin{}
	for i := range bins {
		bins[i].box = vecmath.EmptyAABB()
	}
	binOf := func(p int32) int {
		k := int((axisValue(centroids[p], axis) - lo) * scale)
		if k < 0 {
			k = 0
		}
		if k >= nbins {
			k = nbins - 1
		}
		return k
	}
	for i := start; i < end; i++ {
		p := b.PrimIDs[i]
		k := binOf(p)
		bins[k].count++
		bins[k].box = bins[k].box.Union(bounds[p])
	}
	// Sweep to find the cheapest split boundary.
	var leftBox, rightBox [nbins]vecmath.AABB
	var leftCount, rightCount [nbins]int
	acc := vecmath.EmptyAABB()
	cnt := 0
	for i := 0; i < nbins; i++ {
		acc = acc.Union(bins[i].box)
		cnt += bins[i].count
		leftBox[i], leftCount[i] = acc, cnt
	}
	acc = vecmath.EmptyAABB()
	cnt = 0
	for i := nbins - 1; i >= 0; i-- {
		acc = acc.Union(bins[i].box)
		cnt += bins[i].count
		rightBox[i], rightCount[i] = acc, cnt
	}
	bestCost := math.Inf(1)
	bestBin := -1
	for i := 0; i < nbins-1; i++ {
		if leftCount[i] == 0 || rightCount[i+1] == 0 {
			continue
		}
		cost := leftBox[i].SurfaceArea()*float64(leftCount[i]) +
			rightBox[i+1].SurfaceArea()*float64(rightCount[i+1])
		if cost < bestCost {
			bestCost = cost
			bestBin = i
		}
	}
	if bestBin < 0 {
		return 0, false
	}
	// Partition PrimIDs by bin.
	mid := start
	for i := start; i < end; i++ {
		if binOf(b.PrimIDs[i]) <= bestBin {
			b.PrimIDs[mid], b.PrimIDs[i] = b.PrimIDs[i], b.PrimIDs[mid]
			mid++
		}
	}
	return mid, mid > start && mid < end
}

func axisValue(v vecmath.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

func longestAxis(d vecmath.Vec3) int {
	if d.X >= d.Y && d.X >= d.Z {
		return 0
	}
	if d.Y >= d.Z {
		return 1
	}
	return 2
}
