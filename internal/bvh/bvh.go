// Package bvh builds and traverses bounding volume hierarchies over
// triangle meshes. The default builder is the linear BVH (morton-code
// radix sort + top-down splits at the highest differing bit), the O(n)
// structure behind the paper's ray-tracing performance model; a median
// split and a binned-SAH builder are provided for the architecture-tuned
// baselines and ablation benches.
package bvh

import (
	"fmt"
	"math"
	"time"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

// Node is one flat-array BVH node. Leaves have Count > 0 and reference
// PrimIDs[Start : Start+Count]; inner nodes reference children by index.
type Node struct {
	Bounds       vecmath.AABB
	Left, Right  int32
	Start, Count int32
}

// BVH is a flattened hierarchy over a triangle mesh.
type BVH struct {
	Nodes   []Node
	PrimIDs []int32
	Mesh    *mesh.TriangleMesh
	// BuildTime records wall-clock construction cost; the ray-tracing
	// model's c0*O + c1 term is fitted against it.
	BuildTime time.Duration
	// MaxLeafSize used during the build.
	MaxLeafSize int
}

// Builder selects the construction algorithm.
type Builder int

const (
	// LBVH is the morton-sort linear BVH (O(n) build).
	LBVH Builder = iota
	// Median recursively splits at the median of the longest axis.
	Median
	// SAH is a binned surface-area-heuristic build (slowest, best trees).
	SAH
)

func (b Builder) String() string {
	switch b {
	case LBVH:
		return "lbvh"
	case Median:
		return "median"
	case SAH:
		return "sah"
	}
	return fmt.Sprintf("builder(%d)", int(b))
}

// Build constructs a BVH over the mesh with the given builder.
func Build(d *device.Device, m *mesh.TriangleMesh, builder Builder) *BVH {
	start := time.Now()
	n := m.NumTriangles()
	b := &BVH{Mesh: m, MaxLeafSize: 8}
	if n == 0 {
		b.BuildTime = time.Since(start)
		return b
	}

	bounds := make([]vecmath.AABB, n)
	centroids := make([]vecmath.Vec3, n)
	dpp.For(d, n, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			bounds[t] = m.TriBounds(t)
			centroids[t] = m.Centroid(t)
		}
	})
	world := vecmath.EmptyAABB()
	for t := 0; t < n; t++ {
		world = world.Union(bounds[t])
	}

	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}

	switch builder {
	case LBVH:
		codes := make([]uint64, n)
		diag := world.Diagonal()
		inv := vecmath.V(safeInv(diag.X), safeInv(diag.Y), safeInv(diag.Z))
		dpp.For(d, n, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				p := centroids[t].Sub(world.Min).Mul(inv)
				codes[t] = Morton3(p.X, p.Y, p.Z)
			}
		})
		dpp.SortPairs64(d, codes, ids)
		b.PrimIDs = ids
		b.buildMortonRange(codes, bounds, 0, n, 0)
	case Median, SAH:
		b.PrimIDs = ids
		b.buildSpatialRange(bounds, centroids, 0, n, builder)
	}
	b.BuildTime = time.Since(start)
	return b
}

func safeInv(v float64) float64 {
	if v == 0 {
		return 0
	}
	return 1 / v
}

// Morton3 interleaves 10 bits per normalized coordinate into a 30-bit
// morton code.
func Morton3(x, y, z float64) uint64 {
	return expandBits(quantize10(x))<<2 | expandBits(quantize10(y))<<1 | expandBits(quantize10(z))
}

func quantize10(v float64) uint32 {
	q := int(v * 1024)
	if q < 0 {
		q = 0
	}
	if q > 1023 {
		q = 1023
	}
	return uint32(q)
}

// expandBits spreads the low 10 bits of v so they occupy every third bit.
func expandBits(v uint32) uint64 {
	x := uint64(v) & 0x3ff
	x = (x | x<<16) & 0x30000ff
	x = (x | x<<8) & 0x300f00f
	x = (x | x<<4) & 0x30c30c3
	x = (x | x<<2) & 0x9249249
	return x
}

// rangeBounds unions the primitive bounds of PrimIDs[start:end].
func (b *BVH) rangeBounds(bounds []vecmath.AABB, start, end int) vecmath.AABB {
	box := vecmath.EmptyAABB()
	for i := start; i < end; i++ {
		box = box.Union(bounds[b.PrimIDs[i]])
	}
	return box
}

// buildMortonRange recursively splits the sorted morton range at the
// highest differing code bit, producing the LBVH topology. Returns the
// node index.
func (b *BVH) buildMortonRange(codes []uint64, bounds []vecmath.AABB, start, end, bit int) int32 {
	idx := int32(len(b.Nodes))
	b.Nodes = append(b.Nodes, Node{})
	count := end - start
	if count <= b.MaxLeafSize || bit >= 30 {
		b.Nodes[idx] = Node{
			Bounds: b.rangeBounds(bounds, start, end),
			Start:  int32(start), Count: int32(count),
		}
		return idx
	}
	// Codes were sorted with PrimIDs as payload, so codes[i] corresponds to
	// position i in PrimIDs.
	mask := uint64(1) << uint(29-bit)
	split := start
	for split < end && codes[split]&mask == 0 {
		split++
	}
	if split == start || split == end {
		// All codes share this bit: descend without splitting.
		b.Nodes = b.Nodes[:idx] // rebuild node at same position after recursion
		return b.buildMortonRange(codes, bounds, start, end, bit+1)
	}
	left := b.buildMortonRange(codes, bounds, start, split, bit+1)
	right := b.buildMortonRange(codes, bounds, split, end, bit+1)
	b.Nodes[idx] = Node{
		Bounds: b.Nodes[left].Bounds.Union(b.Nodes[right].Bounds),
		Left:   left, Right: right,
	}
	return idx
}

// buildSpatialRange builds median or SAH splits over PrimIDs[start:end].
func (b *BVH) buildSpatialRange(bounds []vecmath.AABB, centroids []vecmath.Vec3, start, end int, builder Builder) int32 {
	idx := int32(len(b.Nodes))
	b.Nodes = append(b.Nodes, Node{})
	count := end - start
	box := b.rangeBounds(bounds, start, end)
	if count <= b.MaxLeafSize {
		b.Nodes[idx] = Node{Bounds: box, Start: int32(start), Count: int32(count)}
		return idx
	}

	cbox := vecmath.EmptyAABB()
	for i := start; i < end; i++ {
		cbox = cbox.ExpandPoint(centroids[b.PrimIDs[i]])
	}
	axis := longestAxis(cbox.Diagonal())
	split := start + count/2

	if builder == SAH {
		if s, ok := b.sahSplit(bounds, centroids, cbox, start, end, axis); ok {
			split = s
		} else {
			b.partitionMedian(centroids, start, end, axis, split)
		}
	} else {
		b.partitionMedian(centroids, start, end, axis, split)
	}
	if split <= start || split >= end {
		split = start + count/2
	}

	left := b.buildSpatialRange(bounds, centroids, start, split, builder)
	right := b.buildSpatialRange(bounds, centroids, split, end, builder)
	b.Nodes[idx] = Node{
		Bounds: b.Nodes[left].Bounds.Union(b.Nodes[right].Bounds),
		Left:   left, Right: right,
	}
	return idx
}

// partitionMedian nth-element partitions PrimIDs[start:end] around the kth
// centroid along axis (quickselect).
func (b *BVH) partitionMedian(centroids []vecmath.Vec3, start, end, axis, k int) {
	ids := b.PrimIDs
	key := func(i int) float64 { return axisValue(centroids[ids[i]], axis) }
	lo, hi := start, end-1
	for lo < hi {
		pivot := key((lo + hi) / 2)
		i, j := lo, hi
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				ids[i], ids[j] = ids[j], ids[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
}

// sahSplit bins centroids along axis and picks the minimum-cost split.
// Returns the partition point and whether a useful split was found.
func (b *BVH) sahSplit(bounds []vecmath.AABB, centroids []vecmath.Vec3, cbox vecmath.AABB, start, end, axis int) (int, bool) {
	const nbins = 8
	lo := axisValue(cbox.Min, axis)
	hi := axisValue(cbox.Max, axis)
	if hi-lo < 1e-12 {
		return 0, false
	}
	scale := nbins / (hi - lo)
	type bin struct {
		count int
		box   vecmath.AABB
	}
	bins := [nbins]bin{}
	for i := range bins {
		bins[i].box = vecmath.EmptyAABB()
	}
	binOf := func(p int32) int {
		k := int((axisValue(centroids[p], axis) - lo) * scale)
		if k < 0 {
			k = 0
		}
		if k >= nbins {
			k = nbins - 1
		}
		return k
	}
	for i := start; i < end; i++ {
		p := b.PrimIDs[i]
		k := binOf(p)
		bins[k].count++
		bins[k].box = bins[k].box.Union(bounds[p])
	}
	// Sweep to find the cheapest split boundary.
	var leftBox, rightBox [nbins]vecmath.AABB
	var leftCount, rightCount [nbins]int
	acc := vecmath.EmptyAABB()
	cnt := 0
	for i := 0; i < nbins; i++ {
		acc = acc.Union(bins[i].box)
		cnt += bins[i].count
		leftBox[i], leftCount[i] = acc, cnt
	}
	acc = vecmath.EmptyAABB()
	cnt = 0
	for i := nbins - 1; i >= 0; i-- {
		acc = acc.Union(bins[i].box)
		cnt += bins[i].count
		rightBox[i], rightCount[i] = acc, cnt
	}
	bestCost := math.Inf(1)
	bestBin := -1
	for i := 0; i < nbins-1; i++ {
		if leftCount[i] == 0 || rightCount[i+1] == 0 {
			continue
		}
		cost := leftBox[i].SurfaceArea()*float64(leftCount[i]) +
			rightBox[i+1].SurfaceArea()*float64(rightCount[i+1])
		if cost < bestCost {
			bestCost = cost
			bestBin = i
		}
	}
	if bestBin < 0 {
		return 0, false
	}
	// Partition PrimIDs by bin.
	mid := start
	for i := start; i < end; i++ {
		if binOf(b.PrimIDs[i]) <= bestBin {
			b.PrimIDs[mid], b.PrimIDs[i] = b.PrimIDs[i], b.PrimIDs[mid]
			mid++
		}
	}
	return mid, mid > start && mid < end
}

func axisValue(v vecmath.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

func longestAxis(d vecmath.Vec3) int {
	if d.X >= d.Y && d.X >= d.Z {
		return 0
	}
	if d.Y >= d.Z {
		return 1
	}
	return 2
}
