package bvh

import (
	"math"

	"insitu/internal/vecmath"
)

// Hit describes the closest intersection found along a ray.
type Hit struct {
	Prim int32   // triangle index, -1 if none
	T    float64 // distance along the (unit) ray direction
	U, V float64 // barycentric coordinates at the hit
}

// IntersectTriangle is the Moller-Trumbore ray/triangle test. It returns
// the hit distance and barycentric coordinates, or ok=false on a miss.
// Back faces count as hits (scientific visualization shades two-sided).
func IntersectTriangle(orig, dir, a, b, c vecmath.Vec3) (t, u, v float64, ok bool) {
	const eps = 1e-12
	e1 := b.Sub(a)
	e2 := c.Sub(a)
	p := dir.Cross(e2)
	det := e1.Dot(p)
	if det > -eps && det < eps {
		return 0, 0, 0, false
	}
	inv := 1 / det
	s := orig.Sub(a)
	u = s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, 0, 0, false
	}
	q := s.Cross(e1)
	v = dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, 0, 0, false
	}
	t = e2.Dot(q) * inv
	return t, u, v, true
}

// IntersectClosest finds the nearest triangle hit along the ray between
// tmin and tmax, traversing children front to back. It returns a Hit with
// Prim == -1 when nothing is hit, along with the number of node and
// triangle tests performed (the workload counters behind the model's
// AP*log2(O) term).
//
//insitu:noalloc
func (b *BVH) IntersectClosest(orig, dir vecmath.Vec3, tmin, tmax float64) (Hit, int, int) {
	hit := Hit{Prim: -1, T: math.Inf(1)}
	if len(b.Nodes) == 0 {
		return hit, 0, 0
	}
	inv := vecmath.V(1/dir.X, 1/dir.Y, 1/dir.Z)
	m := b.Mesh
	nodeTests, triTests := 0, 0
	best := tmax

	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		ni := stack[sp]
		node := &b.Nodes[ni]
		nodeTests++
		if _, _, ok := node.Bounds.HitRay(orig, inv, tmin, best); !ok {
			continue
		}
		if node.Count > 0 {
			for i := node.Start; i < node.Start+node.Count; i++ {
				prim := b.PrimIDs[i]
				triTests++
				va, vb, vc := m.TriVerts(int(prim))
				if t, u, v, ok := IntersectTriangle(orig, dir, va, vb, vc); ok && t > tmin && t < best {
					best = t
					hit = Hit{Prim: prim, T: t, U: u, V: v}
				}
			}
			continue
		}
		// Push the farther child first so the nearer pops first.
		l, r := node.Left, node.Right
		lt, _, lok := b.Nodes[l].Bounds.HitRay(orig, inv, tmin, best)
		rt, _, rok := b.Nodes[r].Bounds.HitRay(orig, inv, tmin, best)
		switch {
		case lok && rok:
			if lt > rt {
				l, r = r, l
			}
			stack[sp] = r
			sp++
			stack[sp] = l
			sp++
		case lok:
			stack[sp] = l
			sp++
		case rok:
			stack[sp] = r
			sp++
		}
		nodeTests += 2
	}
	return hit, nodeTests, triTests
}

// IntersectAny reports whether any triangle is hit in (tmin, tmax), the
// early-out query used for shadow and ambient-occlusion rays.
//
//insitu:noalloc
func (b *BVH) IntersectAny(orig, dir vecmath.Vec3, tmin, tmax float64) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	inv := vecmath.V(1/dir.X, 1/dir.Y, 1/dir.Z)
	m := b.Mesh
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		node := &b.Nodes[stack[sp]]
		if _, _, ok := node.Bounds.HitRay(orig, inv, tmin, tmax); !ok {
			continue
		}
		if node.Count > 0 {
			for i := node.Start; i < node.Start+node.Count; i++ {
				prim := b.PrimIDs[i]
				va, vb, vc := m.TriVerts(int(prim))
				if t, _, _, ok := IntersectTriangle(orig, dir, va, vb, vc); ok && t > tmin && t < tmax {
					return true
				}
			}
			continue
		}
		stack[sp] = node.Left
		sp++
		stack[sp] = node.Right
		sp++
	}
	return false
}

// PacketScratch is the reusable per-worker state of packet traversal:
// reciprocal directions and per-ray best distances. Hoisting it out of
// the per-packet call is what makes the packetized inner loop
// allocation-free.
type PacketScratch struct {
	inv  []vecmath.Vec3
	best []float64
}

// Ensure grows the scratch to hold width rays.
//
//insitu:noalloc
func (s *PacketScratch) Ensure(width int) {
	if cap(s.inv) < width {
		//insitu:noalloc-ok capacity-guarded arena growth: first frame only, steady state reuses
		s.inv = make([]vecmath.Vec3, width)
		//insitu:noalloc-ok capacity-guarded arena growth: first frame only, steady state reuses
		s.best = make([]float64, width)
	}
}

// IntersectClosestPacket traces a bundle of coherent rays through the tree
// together, amortizing node tests across the packet: a node is descended
// if any ray's interval hits it. This is the vector-unit ("ISPC") backend
// of the tracer; with VectorWidth 1 it degenerates to per-ray traversal.
func (b *BVH) IntersectClosestPacket(orig, dir []vecmath.Vec3, tmin float64, hits []Hit) {
	var scratch PacketScratch
	b.IntersectClosestPacketScratch(orig, dir, tmin, hits, &scratch)
}

// IntersectClosestPacketScratch is IntersectClosestPacket with
// caller-owned scratch, for steady-state loops that trace many packets.
//
//insitu:noalloc
func (b *BVH) IntersectClosestPacketScratch(orig, dir []vecmath.Vec3, tmin float64, hits []Hit, scratch *PacketScratch) {
	n := len(orig)
	for i := range hits {
		hits[i] = Hit{Prim: -1, T: math.Inf(1)}
	}
	if len(b.Nodes) == 0 || n == 0 {
		return
	}
	scratch.Ensure(n)
	inv := scratch.inv[:n]
	best := scratch.best[:n]
	for i := 0; i < n; i++ {
		inv[i] = vecmath.V(1/dir[i].X, 1/dir[i].Y, 1/dir[i].Z)
		best[i] = math.Inf(1)
	}
	m := b.Mesh
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		node := &b.Nodes[stack[sp]]
		any := false
		for i := 0; i < n; i++ {
			if _, _, ok := node.Bounds.HitRay(orig[i], inv[i], tmin, best[i]); ok {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		if node.Count > 0 {
			for pi := node.Start; pi < node.Start+node.Count; pi++ {
				prim := b.PrimIDs[pi]
				va, vb, vc := m.TriVerts(int(prim))
				for i := 0; i < n; i++ {
					if t, u, v, ok := IntersectTriangle(orig[i], dir[i], va, vb, vc); ok && t > tmin && t < best[i] {
						best[i] = t
						hits[i] = Hit{Prim: prim, T: t, U: u, V: v}
					}
				}
			}
			continue
		}
		stack[sp] = node.Left
		sp++
		stack[sp] = node.Right
		sp++
	}
}

// Depth returns the maximum leaf depth, a tree-quality diagnostic.
func (b *BVH) Depth() int {
	if len(b.Nodes) == 0 {
		return 0
	}
	var walk func(n int32) int
	walk = func(n int32) int {
		node := &b.Nodes[n]
		if node.Count > 0 {
			return 1
		}
		l, r := walk(node.Left), walk(node.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}
