package bvh

import (
	"math"
	"math/rand"
	"testing"

	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

// randomMesh builds n random small triangles in the unit cube.
func randomMesh(n int, seed int64) *mesh.TriangleMesh {
	rng := rand.New(rand.NewSource(seed))
	m := &mesh.TriangleMesh{}
	for t := 0; t < n; t++ {
		base := vecmath.V(rng.Float64(), rng.Float64(), rng.Float64())
		for c := 0; c < 3; c++ {
			p := base.Add(vecmath.V(rng.Float64(), rng.Float64(), rng.Float64()).Scale(0.1))
			m.X = append(m.X, p.X)
			m.Y = append(m.Y, p.Y)
			m.Z = append(m.Z, p.Z)
			m.Scalars = append(m.Scalars, rng.Float64())
			m.Conn = append(m.Conn, int32(3*t+c))
		}
	}
	m.UpdateScalarRange()
	return m
}

// bruteForceClosest is the reference intersector.
func bruteForceClosest(m *mesh.TriangleMesh, orig, dir vecmath.Vec3, tmin, tmax float64) Hit {
	hit := Hit{Prim: -1, T: math.Inf(1)}
	best := tmax
	for t := 0; t < m.NumTriangles(); t++ {
		a, b, c := m.TriVerts(t)
		if tt, u, v, ok := IntersectTriangle(orig, dir, a, b, c); ok && tt > tmin && tt < best {
			best = tt
			hit = Hit{Prim: int32(t), T: tt, U: u, V: v}
		}
	}
	return hit
}

func TestMorton3Locality(t *testing.T) {
	// Codes of nearby points share a long prefix; codes are monotone along
	// each axis when other coordinates are zero.
	prev := uint64(0)
	for i := 0; i < 1024; i++ {
		c := Morton3(float64(i)/1024, 0, 0)
		if c < prev {
			t.Fatalf("morton not monotone along x at %d", i)
		}
		prev = c
	}
}

func TestIntersectTriangleBasics(t *testing.T) {
	a, b, c := vecmath.V(0, 0, 0), vecmath.V(1, 0, 0), vecmath.V(0, 1, 0)
	tt, u, v, ok := IntersectTriangle(vecmath.V(0.25, 0.25, -1), vecmath.V(0, 0, 1), a, b, c)
	if !ok || math.Abs(tt-1) > 1e-12 {
		t.Fatalf("hit=%v t=%v", ok, tt)
	}
	if math.Abs(u-0.25) > 1e-12 || math.Abs(v-0.25) > 1e-12 {
		t.Errorf("barycentric = %v,%v", u, v)
	}
	// Outside the triangle misses.
	if _, _, _, ok := IntersectTriangle(vecmath.V(0.9, 0.9, -1), vecmath.V(0, 0, 1), a, b, c); ok {
		t.Error("expected miss outside triangle")
	}
	// Back face still hits (two-sided).
	if _, _, _, ok := IntersectTriangle(vecmath.V(0.25, 0.25, 1), vecmath.V(0, 0, -1), a, b, c); !ok {
		t.Error("expected two-sided hit")
	}
	// Parallel ray misses.
	if _, _, _, ok := IntersectTriangle(vecmath.V(0, 0, 1), vecmath.V(1, 0, 0), a, b, c); ok {
		t.Error("parallel ray should miss")
	}
}

func TestBVHMatchesBruteForce(t *testing.T) {
	m := randomMesh(300, 4)
	rng := rand.New(rand.NewSource(8))
	for _, builder := range []Builder{LBVH, Median, SAH} {
		b := Build(device.CPU(), m, builder)
		misses, hits := 0, 0
		for trial := 0; trial < 300; trial++ {
			orig := vecmath.V(rng.Float64()*3-1, rng.Float64()*3-1, rng.Float64()*3-1)
			dir := vecmath.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalize()
			want := bruteForceClosest(m, orig, dir, 1e-6, math.Inf(1))
			got, _, _ := b.IntersectClosest(orig, dir, 1e-6, math.Inf(1))
			if want.Prim != got.Prim {
				t.Fatalf("%v: prim %d != %d (trial %d)", builder, got.Prim, want.Prim, trial)
			}
			if want.Prim >= 0 {
				hits++
				if math.Abs(want.T-got.T) > 1e-9 {
					t.Fatalf("%v: t %v != %v", builder, got.T, want.T)
				}
			} else {
				misses++
			}
			// IntersectAny must agree with whether a closest hit exists.
			if b.IntersectAny(orig, dir, 1e-6, math.Inf(1)) != (want.Prim >= 0) {
				t.Fatalf("%v: IntersectAny disagrees (trial %d)", builder, trial)
			}
		}
		if hits == 0 || misses == 0 {
			t.Fatalf("%v: degenerate test: hits=%d misses=%d", builder, hits, misses)
		}
	}
}

func TestPacketMatchesSingleRay(t *testing.T) {
	m := randomMesh(200, 5)
	b := Build(device.CPU(), m, LBVH)
	rng := rand.New(rand.NewSource(17))
	const packet = 8
	orig := make([]vecmath.Vec3, packet)
	dir := make([]vecmath.Vec3, packet)
	hits := make([]Hit, packet)
	for trial := 0; trial < 50; trial++ {
		base := vecmath.V(rng.Float64()*2-0.5, rng.Float64()*2-0.5, -2)
		for i := 0; i < packet; i++ {
			orig[i] = base
			dir[i] = vecmath.V(rng.Float64()*0.2-0.1, rng.Float64()*0.2-0.1, 1).Normalize()
		}
		b.IntersectClosestPacket(orig, dir, 1e-6, hits)
		for i := 0; i < packet; i++ {
			want, _, _ := b.IntersectClosest(orig[i], dir[i], 1e-6, math.Inf(1))
			if want.Prim != hits[i].Prim {
				t.Fatalf("packet ray %d prim %d != %d", i, hits[i].Prim, want.Prim)
			}
			if want.Prim >= 0 && math.Abs(want.T-hits[i].T) > 1e-9 {
				t.Fatalf("packet ray %d t %v != %v", i, hits[i].T, want.T)
			}
		}
	}
}

func TestEmptyMesh(t *testing.T) {
	b := Build(device.CPU(), &mesh.TriangleMesh{}, LBVH)
	hit, _, _ := b.IntersectClosest(vecmath.V(0, 0, 0), vecmath.V(0, 0, 1), 0, math.Inf(1))
	if hit.Prim != -1 {
		t.Error("empty mesh should not hit")
	}
	if b.IntersectAny(vecmath.V(0, 0, 0), vecmath.V(0, 0, 1), 0, math.Inf(1)) {
		t.Error("empty mesh IntersectAny should be false")
	}
}

func TestSAHTreeAtLeastAsShallowQuality(t *testing.T) {
	// SAH trees should not do more triangle tests on average than LBVH for
	// the same workload. This is the property the OptiX/Embree baselines
	// rely on; allow a small tolerance for noise.
	m := randomMesh(500, 6)
	lb := Build(device.CPU(), m, LBVH)
	sah := Build(device.CPU(), m, SAH)
	rng := rand.New(rand.NewSource(30))
	var lbTests, sahTests int
	for trial := 0; trial < 200; trial++ {
		orig := vecmath.V(rng.Float64(), rng.Float64(), -1)
		dir := vecmath.V(0, 0, 1)
		_, _, t1 := lb.IntersectClosest(orig, dir, 1e-6, math.Inf(1))
		_, _, t2 := sah.IntersectClosest(orig, dir, 1e-6, math.Inf(1))
		lbTests += t1
		sahTests += t2
	}
	if float64(sahTests) > 1.5*float64(lbTests)+100 {
		t.Errorf("SAH does many more tri tests than LBVH: %d vs %d", sahTests, lbTests)
	}
}

func TestBVHBoundsContainMesh(t *testing.T) {
	m := randomMesh(100, 12)
	b := Build(device.CPU(), m, LBVH)
	root := b.Nodes[0].Bounds
	mb := m.Bounds()
	eps := vecmath.V(1e-9, 1e-9, 1e-9)
	grown := vecmath.AABB{Min: root.Min.Sub(eps), Max: root.Max.Add(eps)}
	if !grown.Contains(mb.Min) || !grown.Contains(mb.Max) {
		t.Errorf("root bounds %v do not contain mesh bounds %v", root, mb)
	}
	if b.BuildTime <= 0 {
		t.Error("BuildTime not recorded")
	}
	if b.Depth() < 1 {
		t.Error("tree depth < 1")
	}
}

func TestBuilderString(t *testing.T) {
	if LBVH.String() != "lbvh" || Median.String() != "median" || SAH.String() != "sah" {
		t.Error("builder names wrong")
	}
}
