// Package strawman is the light-weight batch in situ visualization
// infrastructure (Chapter IV): simulations describe their meshes with
// conduit conventions and Publish them zero-copy, then Execute a small
// action list (add_plot / draw_plots / save_image). The pipeline renders
// each task's block with the data-parallel renderers, composites with the
// sort-last compositor, writes PNGs, and can stream the latest image to a
// web browser.
package strawman

import (
	"fmt"
	"time"

	"insitu/internal/comm"
	"insitu/internal/conduit"
	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/render"
)

// Strawman is one task's in situ endpoint.
type Strawman struct {
	dev    *device.Device
	comm   *comm.Comm // nil when running serially
	data   *conduit.Node
	server *ImageServer
	// LastVisTime records the wall time of the most recent Execute, the
	// "simulation burden" measurement of Table 11.
	LastVisTime time.Duration
	// LastImages holds the composited images produced by the most recent
	// Execute (rank 0 only), keyed by output file name.
	LastImages map[string]*framebuffer.Image
}

// Open initializes the infrastructure from a conduit options node:
//
//	device:   device profile name (default "cpu")
//	mpi_comm: a *comm.Comm stored with SetExternal (optional)
//	web/port: local port to stream images to (optional)
func Open(options *conduit.Node) (*Strawman, error) {
	s := &Strawman{LastImages: map[string]*framebuffer.Image{}}
	profile := "cpu"
	if options != nil {
		profile = options.StringOr("device", "cpu")
	}
	dev, err := device.Profile(profile)
	if err != nil {
		return nil, fmt.Errorf("strawman: %w", err)
	}
	s.dev = dev
	if options != nil {
		if n, ok := options.Get("mpi_comm"); ok {
			c, ok := n.Value().(*comm.Comm)
			if !ok {
				return nil, fmt.Errorf("strawman: mpi_comm holds %T, want *comm.Comm", n.Value())
			}
			s.comm = c
		}
		if port := options.IntOr("web/port", 0); port > 0 && (s.comm == nil || s.comm.Rank() == 0) {
			srv, err := StartImageServer(fmt.Sprintf("127.0.0.1:%d", port))
			if err != nil {
				return nil, fmt.Errorf("strawman: web server: %w", err)
			}
			s.server = srv
		}
	}
	return s, nil
}

// Publish registers the simulation's current state description. The node
// is referenced, not copied, so external arrays stay zero-copy (R11); the
// simulation retains ownership (R5).
func (s *Strawman) Publish(data *conduit.Node) error {
	if data == nil {
		return fmt.Errorf("strawman: Publish(nil)")
	}
	s.data = data
	return nil
}

// plot is one requested rendering.
type plot struct {
	variable string
	renderer string // "raytracer", "rasterizer", "volume"
}

// Execute runs an action list:
//
//	{action: "add_plot",  var: <field>, renderer: <name>}
//	{action: "draw_plots"}
//	{action: "save_image", fileName: <path sans .png>, width, height}
//
// matching the paper's Strawman interface. Rendering happens at
// save_image; images land on rank 0.
func (s *Strawman) Execute(actions *conduit.Node) error {
	if s.data == nil {
		return fmt.Errorf("strawman: Execute before Publish")
	}
	start := time.Now()
	defer func() { s.LastVisTime = time.Since(start) }()

	var plots []plot
	for _, a := range actions.List() {
		kind, err := a.String("action")
		if err != nil {
			return fmt.Errorf("strawman: action without kind: %w", err)
		}
		switch kind {
		case "add_plot":
			v, err := a.String("var")
			if err != nil {
				return fmt.Errorf("strawman: add_plot: %w", err)
			}
			plots = append(plots, plot{
				variable: v,
				renderer: a.StringOr("renderer", "raytracer"),
			})
		case "draw_plots":
			// Rendering is deferred to save_image in this batch pipeline;
			// the action is accepted for interface compatibility.
		case "save_image":
			name, err := a.String("fileName")
			if err != nil {
				return fmt.Errorf("strawman: save_image: %w", err)
			}
			w := a.IntOr("width", 512)
			h := a.IntOr("height", 512)
			camera := cameraFromAction(a)
			if len(plots) == 0 {
				return fmt.Errorf("strawman: save_image %q with no plots added", name)
			}
			for _, p := range plots {
				img, err := s.renderPlot(p, w, h, camera)
				if err != nil {
					return fmt.Errorf("strawman: plot %q: %w", p.variable, err)
				}
				if img != nil { // rank 0 (or serial)
					// renderPlot's image is frame-arena owned: the next
					// plot in this loop would overwrite it in place, so
					// keep a deep copy.
					kept := img.Clone()
					s.LastImages[name] = kept
					if a.StringOr("format", "png") == "png" {
						if err := kept.SavePNG(name + ".png"); err != nil {
							return fmt.Errorf("strawman: saving %q: %w", name, err)
						}
					}
					if s.server != nil {
						s.server.Update(kept)
					}
				}
			}
		default:
			return fmt.Errorf("strawman: unknown action %q", kind)
		}
	}
	return nil
}

// cameraFromAction reads optional camera overrides.
func cameraFromAction(a *conduit.Node) cameraSpec {
	return cameraSpec{
		azimuth:   a.FloatOr("camera/azimuth", 30),
		elevation: a.FloatOr("camera/elevation", 20),
		zoom:      a.FloatOr("camera/zoom", 1.0),
	}
}

type cameraSpec struct {
	azimuth, elevation, zoom float64
}

func (cs cameraSpec) build(b boundsT) render.Camera {
	return render.OrbitCamera(b, cs.azimuth, cs.elevation, cs.zoom)
}

// Close shuts the infrastructure down.
func (s *Strawman) Close() error {
	if s.server != nil {
		return s.server.Close()
	}
	return nil
}
