package strawman

import (
	"bytes"
	"net"
	"net/http"
	"sync"

	"insitu/internal/framebuffer"
)

// ImageServer streams the most recent in situ image to a web browser,
// the paper's R8 delivery requirement: results are consumable both as
// files on disk and live over HTTP.
type ImageServer struct {
	mu     sync.Mutex
	latest []byte
	ln     net.Listener
	srv    *http.Server
}

const indexPage = `<!doctype html>
<html><head><title>strawman in situ</title>
<meta http-equiv="refresh" content="1"></head>
<body style="background:#222;color:#eee;font-family:monospace">
<h3>strawman in situ stream</h3>
<img src="/image.png" alt="waiting for first image...">
</body></html>`

// StartImageServer listens on addr and serves the stream.
func StartImageServer(addr string) (*ImageServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &ImageServer{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		_, _ = w.Write([]byte(indexPage))
	})
	mux.HandleFunc("/image.png", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		data := s.latest
		s.mu.Unlock()
		if data == nil {
			http.Error(w, "no image yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/png")
		_, _ = w.Write(data)
	})
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the listening address.
func (s *ImageServer) Addr() string { return s.ln.Addr().String() }

// Update replaces the streamed image.
func (s *ImageServer) Update(img *framebuffer.Image) {
	var buf bytes.Buffer
	if err := img.EncodePNG(&buf); err != nil {
		return
	}
	s.mu.Lock()
	s.latest = buf.Bytes()
	s.mu.Unlock()
}

// Close stops the server.
func (s *ImageServer) Close() error { return s.srv.Close() }
