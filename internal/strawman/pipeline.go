package strawman

import (
	"fmt"
	"math"

	"insitu/internal/composite"
	"insitu/internal/conduit"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render/raster"
	"insitu/internal/render/raytrace"
	"insitu/internal/render/volume"
	"insitu/internal/vecmath"
)

type boundsT = vecmath.AABB

// ParsedMesh is the pipeline's view of a published conduit tree. It is
// exported so the performance study harness can drive the same parsing
// path the in situ pipeline uses.
type ParsedMesh struct {
	Grid    *mesh.StructuredGrid // non-nil for uniform/rectilinear blocks
	X, Y, Z []float64            // explicit coordinates
	HexConn []int32              // unstructured hex connectivity
	fields  map[string]*conduit.Node
}

// ParseMesh validates the conduit mesh conventions and builds the
// pipeline's working representation (still zero-copy: slices are shared
// with the simulation).
func ParseMesh(n *conduit.Node) (*ParsedMesh, error) {
	pm := &ParsedMesh{fields: map[string]*conduit.Node{}}
	ctype, err := n.String("coords/type")
	if err != nil {
		return nil, fmt.Errorf("mesh description missing coords/type: %w", err)
	}
	switch ctype {
	case "uniform":
		ni := n.IntOr("coords/dims/i", 0)
		nj := n.IntOr("coords/dims/j", 0)
		nk := n.IntOr("coords/dims/k", 0)
		if ni < 2 || nj < 2 || nk < 2 {
			return nil, fmt.Errorf("uniform coords need dims >= 2, got %dx%dx%d", ni, nj, nk)
		}
		g := &mesh.StructuredGrid{
			Nx: ni, Ny: nj, Nz: nk,
			Origin: vecmath.V(
				n.FloatOr("coords/origin/x", 0),
				n.FloatOr("coords/origin/y", 0),
				n.FloatOr("coords/origin/z", 0)),
			Spacing: vecmath.V(
				n.FloatOr("coords/spacing/dx", 1),
				n.FloatOr("coords/spacing/dy", 1),
				n.FloatOr("coords/spacing/dz", 1)),
			Fields: map[string]*mesh.Field{},
		}
		pm.Grid = g
	case "rectilinear":
		xs, err := n.Float64Slice("coords/x")
		if err != nil {
			return nil, err
		}
		ys, err := n.Float64Slice("coords/y")
		if err != nil {
			return nil, err
		}
		zs, err := n.Float64Slice("coords/z")
		if err != nil {
			return nil, err
		}
		pm.Grid = mesh.NewRectilinearGrid(xs, ys, zs)
	case "explicit":
		pm.X, err = n.Float64Slice("coords/x")
		if err != nil {
			return nil, err
		}
		pm.Y, err = n.Float64Slice("coords/y")
		if err != nil {
			return nil, err
		}
		pm.Z, err = n.Float64Slice("coords/z")
		if err != nil {
			return nil, err
		}
		shape := n.StringOr("topology/elements/shape", "")
		if shape != "hexs" {
			return nil, fmt.Errorf("explicit topology shape %q unsupported (want hexs)", shape)
		}
		pm.HexConn, err = n.Int32Slice("topology/elements/connectivity")
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown coords/type %q", ctype)
	}

	fieldsNode, ok := n.Get("fields")
	if !ok {
		return nil, fmt.Errorf("mesh description has no fields")
	}
	for _, name := range fieldsNode.Children() {
		pm.fields[name] = fieldsNode.Child(name)
	}
	return pm, nil
}

// FieldValues returns a field's values as vertex-associated data,
// averaging element fields onto vertices when necessary.
func (pm *ParsedMesh) FieldValues(name string) ([]float64, error) {
	fn, ok := pm.fields[name]
	if !ok {
		names := make([]string, 0, len(pm.fields))
		for k := range pm.fields {
			names = append(names, k)
		}
		return nil, fmt.Errorf("no field %q (have %v)", name, names)
	}
	vals, err := fn.Float64Slice("values")
	if err != nil {
		return nil, err
	}
	assoc := fn.StringOr("association", "vertex")
	if assoc == "vertex" {
		return vals, nil
	}
	// Element-centered data: average to vertices.
	if pm.HexConn != nil {
		return mesh.ElementToVertex(len(pm.X), pm.HexConn, vals)
	}
	if pm.Grid != nil {
		return elementToVertexStructured(pm.Grid, vals)
	}
	return nil, fmt.Errorf("field %q: cannot convert element data without topology", name)
}

// elementToVertexStructured averages a cell field to grid points.
func elementToVertexStructured(g *mesh.StructuredGrid, vals []float64) ([]float64, error) {
	if len(vals) != g.NumCells() {
		return nil, fmt.Errorf("element field has %d values for %d cells", len(vals), g.NumCells())
	}
	conn := g.HexConnectivity()
	return mesh.ElementToVertex(g.NumPoints(), conn, vals)
}

// LocalBounds returns the block's spatial bounds.
func (pm *ParsedMesh) LocalBounds() vecmath.AABB {
	if pm.Grid != nil {
		return pm.Grid.Bounds()
	}
	b := vecmath.EmptyAABB()
	for i := range pm.X {
		b = b.ExpandPoint(vecmath.V(pm.X[i], pm.Y[i], pm.Z[i]))
	}
	return b
}

// renderPlot renders one plot across the world and returns the composited
// image at rank 0 (nil elsewhere; serial runs always return the image).
func (s *Strawman) renderPlot(p plot, w, h int, cs cameraSpec) (*framebuffer.Image, error) {
	pm, err := ParseMesh(s.data)
	if err != nil {
		return nil, err
	}
	vals, err := pm.FieldValues(p.variable)
	if err != nil {
		return nil, err
	}

	// Global bounds and scalar range keep cameras and color maps
	// consistent across tasks.
	lb := pm.LocalBounds()
	gb := lb
	flo, fhi := fieldRange(vals)
	if s.comm != nil {
		gb.Min.X = s.comm.AllReduceMin(lb.Min.X)
		gb.Min.Y = s.comm.AllReduceMin(lb.Min.Y)
		gb.Min.Z = s.comm.AllReduceMin(lb.Min.Z)
		gb.Max.X = s.comm.AllReduceMax(lb.Max.X)
		gb.Max.Y = s.comm.AllReduceMax(lb.Max.Y)
		gb.Max.Z = s.comm.AllReduceMax(lb.Max.Z)
		flo = s.comm.AllReduceMin(flo)
		fhi = s.comm.AllReduceMax(fhi)
	}
	cam := cs.build(gb)

	var img *framebuffer.Image
	op := composite.DepthOp
	switch p.renderer {
	case "raytracer", "rasterizer":
		tri, err := pm.Surface(p.variable, vals)
		if err != nil {
			return nil, err
		}
		tri.ScalarMin, tri.ScalarMax = flo, fhi
		if p.renderer == "raytracer" {
			img, _, err = raytrace.New(s.dev, tri).Render(raytrace.Options{
				Width: w, Height: h, Camera: cam, Workload: raytrace.Workload2,
			})
		} else {
			img, _, err = raster.New(s.dev, tri).Render(raster.Options{
				Width: w, Height: h, Camera: cam,
			})
		}
		if err != nil {
			return nil, err
		}
	case "volume":
		op = composite.BlendOp
		if pm.Grid != nil {
			if _, ok := pm.Grid.Fields[p.variable]; !ok {
				if err := pm.Grid.AddField(p.variable, mesh.VertexAssoc, vals); err != nil {
					return nil, err
				}
			}
			vr, err := volume.NewStructured(s.dev, pm.Grid, p.variable)
			if err != nil {
				return nil, err
			}
			img, _, err = vr.Render(volume.StructuredOptions{
				Width: w, Height: h, Camera: cam, FieldRange: [2]float64{flo, fhi},
			})
			if err != nil {
				return nil, err
			}
		} else {
			tm, err := mesh.TetMeshFromHexes(pm.X, pm.Y, pm.Z, pm.HexConn, vals)
			if err != nil {
				return nil, err
			}
			tm.ScalarMin, tm.ScalarMax = flo, fhi
			img, _, err = volume.NewUnstructured(s.dev, tm).Render(volume.UnstructuredOptions{
				Width: w, Height: h, Camera: cam, FieldRange: [2]float64{flo, fhi},
			})
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown renderer %q", p.renderer)
	}

	if s.comm == nil {
		return img, nil
	}

	// Sort-last compositing: depth for surfaces, visibility-ordered blend
	// for volumes.
	var order []int
	if op == composite.BlendOp {
		depth := lb.Center().Sub(cam.Position).Length()
		parts := s.comm.Gather(0, []float32{float32(depth)})
		var orderF []float32
		if s.comm.Rank() == 0 {
			depths := make([]float64, s.comm.Size())
			for r, p := range parts {
				depths[r] = float64(p[0])
			}
			o := composite.VisibilityOrder(depths)
			orderF = make([]float32, len(o))
			for i, r := range o {
				orderF[i] = float32(r)
			}
		} else {
			orderF = make([]float32, s.comm.Size())
		}
		orderF = s.comm.Bcast(0, orderF)
		order = make([]int, len(orderF))
		for i, f := range orderF {
			order[i] = int(f)
		}
	}
	out, _, err := composite.BinarySwap().Composite(s.comm, img, op, order)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Surface extracts the renderable boundary triangles of the block.
func (pm *ParsedMesh) Surface(fieldName string, vals []float64) (*mesh.TriangleMesh, error) {
	if pm.Grid != nil {
		name := fieldName + "__vertex"
		if err := pm.Grid.AddField(name, mesh.VertexAssoc, vals); err != nil {
			return nil, err
		}
		return pm.Grid.ExternalFaces(name)
	}
	return mesh.ExternalFacesFromHexes(pm.X, pm.Y, pm.Z, pm.HexConn, vals)
}

func fieldRange(vals []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi >= lo) {
		return 0, 1
	}
	return lo, hi
}
