package strawman

import (
	"fmt"

	"insitu/internal/composite"
	"insitu/internal/conduit"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/scenario"
	"insitu/internal/vecmath"
)

type boundsT = vecmath.AABB

// ParsedMesh is the pipeline's view of a published conduit tree; it now
// lives in the scenario package so the performance study, the repro
// tables, and this pipeline drive one parsing path. The aliases keep the
// strawman API stable.
type ParsedMesh = scenario.ParsedMesh

// ParseMesh validates the conduit mesh conventions and builds the
// pipeline's working representation.
func ParseMesh(n *conduit.Node) (*ParsedMesh, error) { return scenario.ParseMesh(n) }

// renderPlot renders one plot across the world and returns the composited
// image at rank 0 (nil elsewhere; serial runs always return the image).
// The renderer name selects a scenario backend; when a structured-only
// backend meets an unstructured block, the "<name>-unstructured" backend
// of the same family takes over (the Lagrangian proxy's volume plots).
//
//insitu:arena
func (s *Strawman) renderPlot(p plot, w, h int, cs cameraSpec) (*framebuffer.Image, error) {
	pm, err := scenario.ParseMesh(s.data)
	var vals []float64
	if err == nil {
		vals, err = pm.FieldValues(p.variable)
	}
	var backend scenario.Backend
	if err == nil {
		backend, err = lookupBackend(p.renderer, pm)
	}
	// Resolve rank-local failures collectively before the first
	// reduction: either every task proceeds or every task returns.
	//insitu:collective-ok failure is collectively agreed by errBarrier above
	if err = s.errBarrier(err); err != nil {
		return nil, err
	}

	// Global bounds and scalar range keep cameras and color maps
	// consistent across tasks.
	lb := pm.LocalBounds()
	gb := lb
	flo, fhi := scenario.FieldRange(vals)
	if s.comm != nil {
		gb.Min.X = s.comm.AllReduceMin(lb.Min.X)
		gb.Min.Y = s.comm.AllReduceMin(lb.Min.Y)
		gb.Min.Z = s.comm.AllReduceMin(lb.Min.Z)
		gb.Max.X = s.comm.AllReduceMax(lb.Max.X)
		gb.Max.Y = s.comm.AllReduceMax(lb.Max.Y)
		gb.Max.Z = s.comm.AllReduceMax(lb.Max.Z)
		flo = s.comm.AllReduceMin(flo)
		fhi = s.comm.AllReduceMax(fhi)
	}
	cam := cs.build(gb)

	sc := scenario.NewScene(s.dev, pm, p.variable, vals, cam, w, h)
	sc.FieldLo, sc.FieldHi = flo, fhi
	runner, err := backend.Prepare(sc)
	var img *framebuffer.Image
	if err == nil {
		var in core.Inputs
		_, img, err = runner.RenderFrame(&in)
	}
	// Same agreement before the compositing collectives below.
	//insitu:collective-ok failure is collectively agreed by errBarrier above
	if err = s.errBarrier(err); err != nil {
		return nil, err
	}

	if s.comm == nil {
		return img, nil
	}

	// Sort-last compositing: depth for surfaces, visibility-ordered blend
	// for volumes.
	op := backend.CompositeOp()
	var order []int
	if op == composite.BlendOp {
		depth := lb.Center().Sub(cam.Position).Length()
		parts := s.comm.Gather(0, []float32{float32(depth)})
		var orderF []float32
		if s.comm.Rank() == 0 {
			depths := make([]float64, s.comm.Size())
			for r, p := range parts {
				depths[r] = float64(p[0])
			}
			o := composite.VisibilityOrder(depths)
			orderF = make([]float32, len(o))
			for i, r := range o {
				orderF[i] = float32(r)
			}
		} else {
			orderF = make([]float32, s.comm.Size())
		}
		orderF = s.comm.Bcast(0, orderF)
		order = make([]int, len(orderF))
		for i, f := range orderF {
			order[i] = int(f)
		}
	}
	out, _, err := composite.BinarySwap().Composite(s.comm, img, op, order)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// lookupBackend resolves the plot's renderer, falling back to the
// "<name>-unstructured" family member when a structured-only backend
// meets an unstructured block.
func lookupBackend(renderer string, pm *ParsedMesh) (scenario.Backend, error) {
	backend, err := scenario.Lookup(core.Renderer(renderer))
	if err != nil {
		return nil, fmt.Errorf("unknown renderer %q: %w", renderer, err)
	}
	if backend.NeedsStructured() && pm.Grid == nil {
		fallback, ferr := scenario.Lookup(core.Renderer(renderer) + "-unstructured")
		if ferr != nil {
			return nil, fmt.Errorf("renderer %q needs a structured block and no unstructured fallback is registered", renderer)
		}
		backend = fallback
	}
	return backend, nil
}

// errBarrier is the two-phase error exchange from cluster/shard.go: every
// task reduces a failure flag before anyone acts on a rank-local error,
// so either all tasks return an error or none do and no task is left
// blocking in a collective its peers skipped.
func (s *Strawman) errBarrier(err error) error {
	if s.comm == nil {
		return err
	}
	flag := 0.0
	if err != nil {
		flag = 1
	}
	if s.comm.AllReduceMax(flag) > 0 {
		if err == nil {
			err = fmt.Errorf("peer task failed preparing the plot")
		}
		return err
	}
	return nil
}
