package strawman

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"insitu/internal/comm"
	"insitu/internal/conduit"
	"insitu/internal/framebuffer"
	"insitu/internal/sim"
)

// basicActions builds the canonical add_plot / draw_plots / save_image
// sequence from the paper's integration listing.
func basicActions(variable, renderer, file string, wh int) *conduit.Node {
	actions := conduit.NewNode()
	add := actions.Append()
	add.Set("action", "add_plot")
	add.Set("var", variable)
	add.Set("renderer", renderer)
	draw := actions.Append()
	draw.Set("action", "draw_plots")
	save := actions.Append()
	save.Set("action", "save_image")
	save.Set("fileName", file)
	save.Set("width", wh)
	save.Set("height", wh)
	return actions
}

func TestSerialEndToEndAllProxiesAllRenderers(t *testing.T) {
	dir := t.TempDir()
	for _, proxy := range sim.Names() {
		s, err := sim.New(proxy, 10, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			s.Step()
		}
		data := conduit.NewNode()
		s.Publish(data)
		for _, renderer := range []string{"raytracer", "rasterizer", "volume"} {
			opts := conduit.NewNode()
			opts.Set("device", "cpu")
			sm, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := sm.Publish(data); err != nil {
				t.Fatal(err)
			}
			file := filepath.Join(dir, fmt.Sprintf("%s_%s", proxy, renderer))
			if err := sm.Execute(basicActions(s.PrimaryField(), renderer, file, 64)); err != nil {
				t.Fatalf("%s/%s: %v", proxy, renderer, err)
			}
			img := sm.LastImages[file]
			if img == nil {
				t.Fatalf("%s/%s: no image", proxy, renderer)
			}
			if img.ActivePixels() == 0 {
				t.Errorf("%s/%s: empty image", proxy, renderer)
			}
			if fi, err := os.Stat(file + ".png"); err != nil || fi.Size() == 0 {
				t.Errorf("%s/%s: png missing: %v", proxy, renderer, err)
			}
			if sm.LastVisTime <= 0 {
				t.Errorf("%s/%s: no vis time", proxy, renderer)
			}
			if err := sm.Close(); err != nil {
				t.Error(err)
			}
		}
	}
}

func TestParallelInSitu(t *testing.T) {
	dir := t.TempDir()
	const tasks = 4
	w := comm.NewWorld(tasks)
	imgs, err := comm.RunCollect(w, func(c *comm.Comm) (*framebuffer.Image, error) {
		s, err := sim.New("kripke", 10, tasks, c.Rank())
		if err != nil {
			return nil, err
		}
		s.Step()
		data := conduit.NewNode()
		s.Publish(data)
		opts := conduit.NewNode()
		opts.Set("device", "cpu")
		opts.SetExternal("mpi_comm", c)
		sm, err := Open(opts)
		if err != nil {
			return nil, err
		}
		if err := sm.Publish(data); err != nil {
			return nil, err
		}
		file := filepath.Join(dir, fmt.Sprintf("parallel_rank%d", c.Rank()))
		if err := sm.Execute(basicActions("phi", "raytracer", file, 64)); err != nil {
			return nil, err
		}
		return sm.LastImages[file], sm.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if imgs[0] == nil || imgs[0].ActivePixels() == 0 {
		t.Error("rank 0 should hold the composited image")
	}
	for r := 1; r < tasks; r++ {
		if imgs[r] != nil {
			t.Errorf("rank %d should not hold an image", r)
		}
	}
}

func TestParallelVolumeBlend(t *testing.T) {
	dir := t.TempDir()
	const tasks = 4
	w := comm.NewWorld(tasks)
	imgs, err := comm.RunCollect(w, func(c *comm.Comm) (*framebuffer.Image, error) {
		s, err := sim.New("cloverleaf", 10, tasks, c.Rank())
		if err != nil {
			return nil, err
		}
		s.Step()
		data := conduit.NewNode()
		s.Publish(data)
		opts := conduit.NewNode()
		opts.SetExternal("mpi_comm", c)
		sm, err := Open(opts)
		if err != nil {
			return nil, err
		}
		if err := sm.Publish(data); err != nil {
			return nil, err
		}
		file := filepath.Join(dir, fmt.Sprintf("vol_rank%d", c.Rank()))
		if err := sm.Execute(basicActions("energy", "volume", file, 48)); err != nil {
			return nil, err
		}
		return sm.LastImages[file], sm.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	if imgs[0] == nil || imgs[0].ActivePixels() == 0 {
		t.Error("composited volume image empty")
	}
}

func TestErrorsSurfaced(t *testing.T) {
	opts := conduit.NewNode()
	sm, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Execute before publish.
	if err := sm.Execute(basicActions("x", "raytracer", "nope", 16)); err == nil {
		t.Error("expected Execute-before-Publish error")
	}
	// Unknown device profile.
	bad := conduit.NewNode()
	bad.Set("device", "vax")
	if _, err := Open(bad); err == nil {
		t.Error("expected unknown-device error")
	}
	// Unknown field.
	s, err := sim.New("kripke", 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := conduit.NewNode()
	s.Publish(data)
	if err := sm.Publish(data); err != nil {
		t.Fatal(err)
	}
	if err := sm.Execute(basicActions("nosuchfield", "raytracer", "nope", 16)); err == nil {
		t.Error("expected unknown-field error")
	}
	// Unknown renderer.
	if err := sm.Execute(basicActions("phi", "crayon", "nope", 16)); err == nil {
		t.Error("expected unknown-renderer error")
	}
	// Malformed action list.
	broken := conduit.NewNode()
	broken.Append().Set("whoops", 1)
	if err := sm.Execute(broken); err == nil {
		t.Error("expected malformed-action error")
	}
	// save_image with no plots.
	nude := conduit.NewNode()
	saveOnly := nude.Append()
	saveOnly.Set("action", "save_image")
	saveOnly.Set("fileName", "x")
	if err := sm.Execute(nude); err == nil {
		t.Error("expected no-plots error")
	}
}

func TestElementFieldConversion(t *testing.T) {
	// The lulesh proxy publishes an element-centered energy field; plots of
	// it must work via element-to-vertex averaging.
	dir := t.TempDir()
	s, err := sim.New("lulesh", 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	data := conduit.NewNode()
	s.Publish(data)
	sm, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Publish(data); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, "lulesh_e")
	if err := sm.Execute(basicActions("e", "raytracer", file, 48)); err != nil {
		t.Fatal(err)
	}
	if sm.LastImages[file].ActivePixels() == 0 {
		t.Error("element-field plot is empty")
	}
}

func TestWebStreaming(t *testing.T) {
	s, err := sim.New("kripke", 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	data := conduit.NewNode()
	s.Publish(data)

	srv, err := StartImageServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Before any image: 404.
	resp, err := http.Get("http://" + srv.Addr() + "/image.png")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pre-image status = %d", resp.StatusCode)
	}

	img := framebuffer.NewImage(8, 8)
	img.Set(1, 1, 1, 0, 0, 1, 1)
	srv.Update(img)

	resp, err = http.Get("http://" + srv.Addr() + "/image.png")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("image fetch failed: %d, %d bytes", resp.StatusCode, len(body))
	}
	resp, err = http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(page) == 0 {
		t.Error("index page empty")
	}
}

func TestMultiplePlotsOneExecute(t *testing.T) {
	dir := t.TempDir()
	s, err := sim.New("kripke", 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	data := conduit.NewNode()
	s.Publish(data)
	sm, err := Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if err := sm.Publish(data); err != nil {
		t.Fatal(err)
	}
	// Two plots (the flux and the cross-section) saved from one action
	// list; both variables render into the same save target sequence.
	actions := conduit.NewNode()
	for _, v := range []string{"phi", "sigma"} {
		add := actions.Append()
		add.Set("action", "add_plot")
		add.Set("var", v)
		add.Set("renderer", "raytracer")
	}
	save := actions.Append()
	save.Set("action", "save_image")
	save.Set("fileName", filepath.Join(dir, "multi"))
	save.Set("width", 48)
	save.Set("height", 48)
	if err := sm.Execute(actions); err != nil {
		t.Fatal(err)
	}
	if sm.LastImages[filepath.Join(dir, "multi")] == nil {
		t.Error("no image produced")
	}
}

func TestCameraOverridesChangeImage(t *testing.T) {
	dir := t.TempDir()
	s, err := sim.New("cloverleaf", 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	data := conduit.NewNode()
	s.Publish(data)
	render := func(azimuth float64) *framebuffer.Image {
		sm, err := Open(nil)
		if err != nil {
			t.Fatal(err)
		}
		defer sm.Close()
		if err := sm.Publish(data); err != nil {
			t.Fatal(err)
		}
		actions := basicActions("energy", "raytracer", filepath.Join(dir, "cam"), 48)
		actions.List()[2].Set("camera/azimuth", azimuth)
		if err := sm.Execute(actions); err != nil {
			t.Fatal(err)
		}
		return sm.LastImages[filepath.Join(dir, "cam")]
	}
	a := render(0)
	b := render(120)
	diff := 0
	for i := range a.Color {
		if a.Color[i] != b.Color[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("camera azimuth override had no effect")
	}
}
