// Package advisor is the online prediction engine over a model registry.
// It answers the paper's viability questions as a service: given a
// user-facing rendering configuration (data size, task count, image
// resolution, technique), it maps the configuration to model inputs
// (§5.8), evaluates the registered per-architecture models, and returns
// per-image cost, images-per-budget curves, and inverse queries such as
// the largest triangle count that still fits a frame budget. Requests can
// be answered singly or in batches, and every operation is instrumented
// with per-request counters and latency so a serving process can report
// its own health.
package advisor

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// Op names one engine operation for metrics.
type Op string

const (
	OpPredict      Op = "predict"
	OpFeasibility  Op = "feasibility"
	OpMaxTriangles Op = "max_triangles"
	OpObserve      Op = "observe"
)

var ops = []Op{OpPredict, OpFeasibility, OpMaxTriangles, OpObserve}

// checkRenderer validates a request's renderer name against the model
// spec registry: unknown names and the compositing pseudo-renderer
// (fitted across architectures, never served per-arch) are rejected
// with the registered alternatives named, so a typo answers a clear 400
// instead of a misleading "no model" 404.
func checkRenderer(name string) error {
	r := core.Renderer(name)
	if _, ok := core.LookupRenderer(r); !ok || r == core.Compositing {
		return fmt.Errorf("advisor: unknown renderer %q (registered: %v)",
			name, core.ModeledRenderers())
	}
	return nil
}

// cleanFloat zeroes non-finite values and raises the response's flag.
// Degenerate fits can predict NaN, and inverse queries can divide by a
// non-positive prediction into ±Inf; encoding/json rejects both, which
// would turn an otherwise well-formed answer into an opaque serialization
// failure at the API boundary. Flagged zeros keep the response honest and
// encodable.
func cleanFloat(v float64, flagged *bool) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		*flagged = true
		return 0
	}
	return v
}

// opMetrics accumulates one operation's counters with atomics so the hot
// path never takes a lock.
type opMetrics struct {
	count    atomic.Uint64
	errors   atomic.Uint64
	nanos    atomic.Uint64
	maxNanos atomic.Uint64
}

func (m *opMetrics) observe(start time.Time, err error) {
	d := uint64(time.Since(start).Nanoseconds())
	m.count.Add(1)
	m.nanos.Add(d)
	for {
		cur := m.maxNanos.Load()
		if d <= cur || m.maxNanos.CompareAndSwap(cur, d) {
			break
		}
	}
	if err != nil {
		m.errors.Add(1)
	}
}

// OpStats is one operation's metrics snapshot.
type OpStats struct {
	Op        Op      `json:"op"`
	Count     uint64  `json:"count"`
	Errors    uint64  `json:"errors"`
	AvgMicros float64 `json:"avg_micros"`
	MaxMicros float64 `json:"max_micros"`
}

// Observer ingests measured samples and may publish a refitted model
// snapshot into the serving path (study.Calibrator is the canonical
// implementation). It reports the accumulated corpus size, whether a new
// generation was published, and — when not — a human-readable reason.
type Observer interface {
	Observe(samples []core.Sample) (corpus int, published bool, reason string, err error)
}

// Engine answers prediction and feasibility queries over a registry.
type Engine struct {
	reg      *registry.Registry
	metrics  map[Op]*opMetrics
	observer Observer
}

// New returns an engine over the registry.
func New(reg *registry.Registry) *Engine {
	e := &Engine{reg: reg, metrics: map[Op]*opMetrics{}}
	for _, op := range ops {
		e.metrics[op] = &opMetrics{}
	}
	return e
}

// Registry exposes the engine's backing registry.
//
//insitu:noalloc
func (e *Engine) Registry() *registry.Registry { return e.reg }

// SetObserver enables observation ingestion through the given observer.
// Call before serving; it is not synchronized against in-flight requests.
func (e *Engine) SetObserver(o Observer) { e.observer = o }

// Metrics snapshots every operation's counters in a stable order.
func (e *Engine) Metrics() []OpStats {
	out := make([]OpStats, 0, len(ops))
	for _, op := range ops {
		m := e.metrics[op]
		s := OpStats{Op: op, Count: m.count.Load(), Errors: m.errors.Load()}
		if s.Count > 0 {
			s.AvgMicros = float64(m.nanos.Load()) / float64(s.Count) / 1e3
		}
		s.MaxMicros = float64(m.maxNanos.Load()) / 1e3
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// PredictRequest is one user-facing configuration to cost out.
type PredictRequest struct {
	Arch     string `json:"arch"`
	Renderer string `json:"renderer"`
	// N is the per-task data size (an N^3 block), as in core.Config.
	N     int `json:"n"`
	Tasks int `json:"tasks"`
	Width int `json:"width"`
	// Height defaults to Width when 0 (square images).
	Height int `json:"height,omitempty"`
	// Renderings amortizes the one-time acceleration-structure build over
	// this many images (default 1, the paper's 100-image scenario uses 100).
	Renderings int `json:"renderings,omitempty"`
}

func (r *PredictRequest) normalize() error {
	if r.Arch == "" {
		return fmt.Errorf("advisor: missing arch")
	}
	if r.Renderer == "" {
		return fmt.Errorf("advisor: missing renderer")
	}
	if err := checkRenderer(r.Renderer); err != nil {
		return err
	}
	if r.N <= 0 {
		return fmt.Errorf("advisor: n must be positive, got %d", r.N)
	}
	if r.Width <= 0 {
		return fmt.Errorf("advisor: width must be positive, got %d", r.Width)
	}
	if r.Height <= 0 {
		r.Height = r.Width
	}
	if r.Tasks <= 0 {
		r.Tasks = 1
	}
	if r.Renderings <= 0 {
		r.Renderings = 1
	}
	return nil
}

// config converts the request to the core configuration.
func (r *PredictRequest) config() core.Config {
	return core.Config{
		N: r.N, Tasks: r.Tasks, Width: r.Width, Height: r.Height,
		Renderer: core.Renderer(r.Renderer),
	}
}

// PredictResponse is the costed configuration.
type PredictResponse struct {
	Arch     string      `json:"arch"`
	Renderer string      `json:"renderer"`
	Inputs   core.Inputs `json:"inputs"`
	// RenderSeconds is the slowest task's local render time per image.
	RenderSeconds float64 `json:"render_seconds"`
	// BuildSeconds is the one-time acceleration-structure cost (0 when the
	// technique has none).
	BuildSeconds float64 `json:"build_seconds"`
	// CompositeSeconds is the per-image parallel compositing cost.
	CompositeSeconds float64 `json:"composite_seconds"`
	// PerImageSeconds = render + composite + build/renderings.
	PerImageSeconds float64 `json:"per_image_seconds"`
	// ImagesPerSecond is the reciprocal throughput (0 when the prediction
	// is non-positive).
	ImagesPerSecond float64 `json:"images_per_second"`
	// NonFinite reports that one or more predicted values were NaN or
	// infinite (a degenerate fit) and have been zeroed so the response
	// stays JSON-encodable. Treat the numbers as unreliable.
	NonFinite bool `json:"non_finite,omitempty"`
}

// Predict costs one configuration.
func (e *Engine) Predict(req PredictRequest) (PredictResponse, error) {
	start := time.Now()
	resp, err := e.predict(req)
	e.metrics[OpPredict].observe(start, err)
	return resp, err
}

func (e *Engine) predict(req PredictRequest) (PredictResponse, error) {
	if err := req.normalize(); err != nil {
		return PredictResponse{}, err
	}
	// One registry view per request: mapping and models from the same
	// generation, even if a hot reload lands mid-request.
	v, err := e.reg.View()
	if err != nil {
		return PredictResponse{}, err
	}
	in := v.Mapping().Map(req.config())
	res, err := v.Predict(req.Arch, core.Renderer(req.Renderer), in)
	if err != nil {
		return PredictResponse{}, err
	}
	resp := PredictResponse{Arch: req.Arch, Renderer: req.Renderer, Inputs: in}
	resp.RenderSeconds = cleanFloat(res.RenderSeconds, &resp.NonFinite)
	resp.BuildSeconds = cleanFloat(res.BuildSeconds, &resp.NonFinite)
	resp.CompositeSeconds = cleanFloat(res.CompositeSeconds, &resp.NonFinite)
	resp.PerImageSeconds = cleanFloat(res.RenderSeconds+res.CompositeSeconds+
		res.BuildSeconds/float64(req.Renderings), &resp.NonFinite)
	if resp.PerImageSeconds > 0 {
		// A subnormal per-image time overflows the reciprocal to +Inf, so
		// this derived value needs cleaning too.
		resp.ImagesPerSecond = cleanFloat(1/resp.PerImageSeconds, &resp.NonFinite)
	}
	return resp, nil
}

// BatchItem pairs one batch element's response with its error, keeping
// positions aligned with the request slice so one bad element does not
// fail the batch.
type BatchItem struct {
	Response *PredictResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// PredictBatch costs every configuration, one BatchItem per request.
func (e *Engine) PredictBatch(reqs []PredictRequest) []BatchItem {
	out := make([]BatchItem, len(reqs))
	for i, req := range reqs {
		resp, err := e.Predict(req)
		if err != nil {
			out[i].Error = err.Error()
			continue
		}
		r := resp
		out[i].Response = &r
	}
	return out
}

// FeasibilityRequest asks the paper's question: can I render Images images
// of each candidate size within BudgetSeconds?
type FeasibilityRequest struct {
	Arch     string `json:"arch"`
	Renderer string `json:"renderer"`
	N        int    `json:"n"`
	Tasks    int    `json:"tasks"`
	// BudgetSeconds is the total rendering budget; the one-time build is
	// charged against it before images are counted (image-database use).
	BudgetSeconds float64 `json:"budget_seconds"`
	// Sizes are the candidate square image sizes.
	Sizes []int `json:"sizes"`
	// Images, when positive, is the desired image count; each point then
	// reports whether it fits.
	Images float64 `json:"images,omitempty"`
}

// FeasibilityPoint is one image size's answer.
type FeasibilityPoint struct {
	ImageSize       int     `json:"image_size"`
	Images          float64 `json:"images"`
	PerImageSeconds float64 `json:"per_image_seconds"`
	// Feasible reports whether the requested image count fits (only
	// populated when the request named one).
	Feasible *bool `json:"feasible,omitempty"`
	// NonFinite flags zeroed NaN/Inf predictions at this point.
	NonFinite bool `json:"non_finite,omitempty"`
}

// FeasibilityResponse is the images-per-budget curve.
type FeasibilityResponse struct {
	Arch            string             `json:"arch"`
	Renderer        string             `json:"renderer"`
	BudgetSeconds   float64            `json:"budget_seconds"`
	RequestedImages float64            `json:"requested_images,omitempty"`
	Points          []FeasibilityPoint `json:"points"`
}

// Feasibility evaluates the images-per-budget curve through the registry's
// cached predictions. The arithmetic matches core.ModelSet.ImagesInBudget:
// the build is paid once out of the budget, compositing is added for
// multi-task configurations, and non-positive budgets or predictions yield
// zero images.
func (e *Engine) Feasibility(req FeasibilityRequest) (FeasibilityResponse, error) {
	start := time.Now()
	resp, err := e.feasibility(req)
	e.metrics[OpFeasibility].observe(start, err)
	return resp, err
}

func (e *Engine) feasibility(req FeasibilityRequest) (FeasibilityResponse, error) {
	if req.Arch == "" || req.Renderer == "" {
		return FeasibilityResponse{}, fmt.Errorf("advisor: missing arch or renderer")
	}
	if err := checkRenderer(req.Renderer); err != nil {
		return FeasibilityResponse{}, err
	}
	if req.N <= 0 {
		return FeasibilityResponse{}, fmt.Errorf("advisor: n must be positive, got %d", req.N)
	}
	if req.Tasks <= 0 {
		req.Tasks = 1
	}
	resp := FeasibilityResponse{
		Arch: req.Arch, Renderer: req.Renderer,
		BudgetSeconds: req.BudgetSeconds, RequestedImages: req.Images,
		Points: make([]FeasibilityPoint, 0, len(req.Sizes)),
	}
	// The whole curve is answered from one registry view so every point
	// reflects the same model generation.
	v, err := e.reg.View()
	if err != nil {
		return FeasibilityResponse{}, err
	}
	mp := v.Mapping()
	for _, size := range req.Sizes {
		if size <= 0 {
			return FeasibilityResponse{}, fmt.Errorf("advisor: image size must be positive, got %d", size)
		}
		in := mp.Map(core.Config{
			N: req.N, Tasks: req.Tasks, Width: size, Height: size,
			Renderer: core.Renderer(req.Renderer),
		})
		res, err := v.Predict(req.Arch, core.Renderer(req.Renderer), in)
		if err != nil {
			return FeasibilityResponse{}, err
		}
		pt := FeasibilityPoint{ImageSize: size}
		per := cleanFloat(res.RenderSeconds+res.CompositeSeconds, &pt.NonFinite)
		budget := cleanFloat(req.BudgetSeconds-res.BuildSeconds, &pt.NonFinite)
		images := 0.0
		if per > 0 && budget > 0 {
			images = budget / per
		}
		pt.Images = cleanFloat(images, &pt.NonFinite)
		pt.PerImageSeconds = per
		if req.Images > 0 {
			ok := images >= req.Images
			pt.Feasible = &ok
		}
		resp.Points = append(resp.Points, pt)
	}
	return resp, nil
}

// MaxTrianglesRequest inverts a surface model: the largest geometry that
// still renders within a per-image budget.
type MaxTrianglesRequest struct {
	Arch     string `json:"arch"`
	Renderer string `json:"renderer"` // raytracer or rasterizer
	Tasks    int    `json:"tasks"`
	// ImageSize is the square image resolution.
	ImageSize int `json:"image_size"`
	// PerImageBudgetSeconds bounds the per-image cost (render + composite
	// + build/renderings).
	PerImageBudgetSeconds float64 `json:"per_image_budget_seconds"`
	// Renderings amortizes the build (default 1).
	Renderings int `json:"renderings,omitempty"`
}

// MaxTrianglesResponse reports the largest feasible geometry.
type MaxTrianglesResponse struct {
	Arch     string `json:"arch"`
	Renderer string `json:"renderer"`
	// N is the largest per-task data size whose surface fits the budget
	// (0 when even N=1 exceeds it).
	N int `json:"n"`
	// Triangles is the per-task surface triangle count 12*N^2.
	Triangles float64 `json:"triangles"`
	// TotalTriangles sums over tasks.
	TotalTriangles float64 `json:"total_triangles"`
	// PerImageSeconds is the predicted cost at N.
	PerImageSeconds float64 `json:"per_image_seconds"`
	// NonFinite flags zeroed NaN/Inf predictions (degenerate fit).
	NonFinite bool `json:"non_finite,omitempty"`
}

// maxTrianglesCeiling bounds the inversion search; 12*N^2 at the ceiling
// is ~3e9 triangles per task, far beyond the fitted range.
const maxTrianglesCeiling = 1 << 14

// MaxTriangles binary-searches the largest per-task N whose surface render
// fits the per-image budget. All model coefficients enter positively in
// the mapped inputs, so predicted time is monotone in N and bisection is
// sound.
func (e *Engine) MaxTriangles(req MaxTrianglesRequest) (MaxTrianglesResponse, error) {
	start := time.Now()
	resp, err := e.maxTriangles(req)
	e.metrics[OpMaxTriangles].observe(start, err)
	return resp, err
}

func (e *Engine) maxTriangles(req MaxTrianglesRequest) (MaxTrianglesResponse, error) {
	r := core.Renderer(req.Renderer)
	spec, ok := core.LookupRenderer(r)
	if !ok || !spec.Surface {
		return MaxTrianglesResponse{}, fmt.Errorf("advisor: max_triangles needs a registered surface renderer, got %q", req.Renderer)
	}
	if req.ImageSize <= 0 {
		return MaxTrianglesResponse{}, fmt.Errorf("advisor: image size must be positive, got %d", req.ImageSize)
	}
	if req.Tasks <= 0 {
		req.Tasks = 1
	}
	if req.Renderings <= 0 {
		req.Renderings = 1
	}
	// The bisection must evaluate every probe against one model
	// generation, or a mid-search reload breaks monotonicity.
	v, err := e.reg.View()
	if err != nil {
		return MaxTrianglesResponse{}, err
	}
	cost := func(n int) (float64, error) {
		in := v.Mapping().Map(core.Config{
			N: n, Tasks: req.Tasks, Width: req.ImageSize, Height: req.ImageSize, Renderer: r,
		})
		res, err := v.Predict(req.Arch, r, in)
		if err != nil {
			return 0, err
		}
		return res.RenderSeconds + res.CompositeSeconds + res.BuildSeconds/float64(req.Renderings), nil
	}
	resp := MaxTrianglesResponse{Arch: req.Arch, Renderer: req.Renderer}
	// Establish feasibility at the floor before bisecting.
	c1, err := cost(1)
	if err != nil {
		return MaxTrianglesResponse{}, err
	}
	if math.IsNaN(c1) || c1 > req.PerImageBudgetSeconds {
		return resp, nil
	}
	lo, hi := 1, maxTrianglesCeiling // invariant: cost(lo) fits, cost(hi+1) unknown/over
	for lo < hi {
		mid := (lo + hi + 1) / 2
		c, err := cost(mid)
		if err != nil {
			return MaxTrianglesResponse{}, err
		}
		if c <= req.PerImageBudgetSeconds {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	c, err := cost(lo)
	if err != nil {
		return MaxTrianglesResponse{}, err
	}
	if c > req.PerImageBudgetSeconds {
		// Fitted coefficients are OLS output and can come out slightly
		// negative on noisy corpora, breaking the monotonicity the
		// bisection assumes. Degrade to a conservative doubling scan from
		// the floor (which is known to fit) so the answer always respects
		// the budget.
		lo, c = 1, c1
		for n := 2; n <= maxTrianglesCeiling; n *= 2 {
			cn, err := cost(n)
			if err != nil {
				return MaxTrianglesResponse{}, err
			}
			if cn > req.PerImageBudgetSeconds {
				break
			}
			lo, c = n, cn
		}
	}
	resp.N = lo
	objects := spec.Objects
	if objects == nil {
		objects = func(n float64) float64 { return 12 * n * n }
	}
	resp.Triangles = objects(float64(lo))
	resp.TotalTriangles = resp.Triangles * float64(req.Tasks)
	resp.PerImageSeconds = cleanFloat(c, &resp.NonFinite)
	return resp, nil
}

// Observation is one measured sample posted back into the serving path —
// the continuous-calibration input. Inputs follow §5.3; times are in
// seconds.
type Observation struct {
	Arch             string      `json:"arch"`
	Renderer         string      `json:"renderer"`
	Inputs           core.Inputs `json:"inputs"`
	BuildSeconds     float64     `json:"build_seconds,omitempty"`
	RenderSeconds    float64     `json:"render_seconds"`
	CompositeSeconds float64     `json:"composite_seconds,omitempty"`
}

// validate rejects observations that would poison a refit: unknown
// renderers, non-positive render times, and any non-finite number (the
// inbound mirror of the non-finite sanitization on responses).
func (o *Observation) validate() error {
	if o.Arch == "" {
		return fmt.Errorf("advisor: observation missing arch")
	}
	// Any renderer with a registered model spec is observable — except
	// "compositing", which is fitted across archs from the multi-task
	// samples' CompositeSeconds, not posted as a pseudo-renderer of its
	// own. Validating against the spec registry (not a hardcoded list)
	// means observations for newly registered scenario backends flow into
	// refits without advisor changes.
	if err := checkRenderer(o.Renderer); err != nil {
		return err
	}
	// Field names match the JSON tags so a rejection names the exact key
	// to fix. Negative inputs are as poisonous to a refit as non-finite
	// ones: OLS happily fits garbage coefficients over them.
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"inputs.o", o.Inputs.O}, {"inputs.ap", o.Inputs.AP},
		{"inputs.vo", o.Inputs.VO}, {"inputs.ppt", o.Inputs.PPT},
		{"inputs.spr", o.Inputs.SPR}, {"inputs.cs", o.Inputs.CS},
		{"inputs.pixels", o.Inputs.Pixels}, {"inputs.avg_ap", o.Inputs.AvgAP},
		{"build_seconds", o.BuildSeconds}, {"render_seconds", o.RenderSeconds},
		{"composite_seconds", o.CompositeSeconds},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("advisor: observation %s is not finite", f.name)
		}
		if f.v < 0 {
			return fmt.Errorf("advisor: observation %s must be non-negative, got %v", f.name, f.v)
		}
	}
	if o.RenderSeconds <= 0 {
		return fmt.Errorf("advisor: observation render_seconds must be positive, got %v", o.RenderSeconds)
	}
	if o.Inputs.Tasks < 0 {
		return fmt.Errorf("advisor: observation inputs.tasks must be non-negative, got %d", o.Inputs.Tasks)
	}
	return nil
}

// SamplesFromObservations validates a batch and converts it to fitting
// samples. One bad element fails the batch: a refit corpus is shared
// state, so partial ingestion of a malformed payload is worse than a
// clean rejection.
func SamplesFromObservations(obs []Observation) ([]core.Sample, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("advisor: empty observation batch")
	}
	out := make([]core.Sample, len(obs))
	for i := range obs {
		o := &obs[i]
		if err := o.validate(); err != nil {
			return nil, fmt.Errorf("observation %d: %w", i, err)
		}
		in := o.Inputs
		if in.Tasks < 1 {
			in.Tasks = 1
		}
		out[i] = core.Sample{
			Arch:          o.Arch,
			Renderer:      core.Renderer(o.Renderer),
			In:            in,
			BuildTime:     o.BuildSeconds,
			RenderTime:    o.RenderSeconds,
			CompositeTime: o.CompositeSeconds,
		}
	}
	return out, nil
}

// ObserveResponse reports the outcome of an ingestion batch.
type ObserveResponse struct {
	Accepted   int    `json:"accepted"`
	CorpusSize int    `json:"corpus_size"`
	Published  bool   `json:"published"`
	Generation uint64 `json:"generation"`
	// Pending explains why no new generation was published (refit cadence
	// not reached, or the corpus cannot fit a model yet).
	Pending string `json:"pending,omitempty"`
}

// Observe feeds validated samples to the configured observer; when the
// observer refits and publishes, the registry generation in the response
// reflects the new models.
func (e *Engine) Observe(samples []core.Sample) (ObserveResponse, error) {
	start := time.Now()
	resp, err := e.doObserve(samples)
	e.metrics[OpObserve].observe(start, err)
	return resp, err
}

func (e *Engine) doObserve(samples []core.Sample) (ObserveResponse, error) {
	if e.observer == nil {
		return ObserveResponse{}, fmt.Errorf("advisor: observation ingestion is not enabled")
	}
	if len(samples) == 0 {
		return ObserveResponse{}, fmt.Errorf("advisor: empty sample batch")
	}
	corpus, published, reason, err := e.observer.Observe(samples)
	if err != nil {
		return ObserveResponse{}, err
	}
	return ObserveResponse{
		Accepted:   len(samples),
		CorpusSize: corpus,
		Published:  published,
		Generation: e.reg.Generation(),
		Pending:    reason,
	}, nil
}
