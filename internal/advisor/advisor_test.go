package advisor

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// paperArchs are the architecture profiles of the study (device package
// profiles; "bigiron" is the held-out Table 15 machine).
var paperArchs = []string{"serial", "cpu", "gpu", "mic", "bigiron"}

// syntheticSamples plants per-architecture coefficients so every paper
// architecture gets a well-conditioned fit.
func syntheticSamples(archs []string, n int, seed int64) []core.Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []core.Sample
	for ai, arch := range archs {
		// Architectures differ by a speed factor, as in the paper.
		f := 1.0 / float64(ai+1)
		for i := 0; i < n; i++ {
			tasks := []int{1, 2, 4}[rng.Intn(3)]
			pix := float64(10000 + rng.Intn(90000))
			ap := 0.5 * pix / math.Cbrt(float64(tasks))
			objects := float64(2000 + rng.Intn(50000))
			noise := func() float64 { return 1 + 0.01*rng.NormFloat64() }

			rtIn := core.Inputs{O: objects, AP: ap, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
			rt := core.Sample{
				Arch: arch, Renderer: core.RayTrace, In: rtIn,
				BuildTime:  f * (3e-8*objects + 1e-4) * noise(),
				RenderTime: f * (2e-9*ap*math.Log2(objects) + 4e-8*ap + 2e-4) * noise(),
			}
			if tasks > 1 {
				rt.CompositeTime = (1.5e-8*rtIn.AvgAP + 5e-9*pix + 1e-4) * noise()
			}
			out = append(out, rt)

			vo := math.Min(ap, objects)
			raIn := core.Inputs{O: objects, AP: ap, VO: vo, PPT: 4 * ap / vo, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
			ra := core.Sample{
				Arch: arch, Renderer: core.Raster, In: raIn,
				RenderTime: f * (1e-8*objects + 2e-9*4*ap + 1e-4) * noise(),
			}
			if tasks > 1 {
				ra.CompositeTime = (1.5e-8*raIn.AvgAP + 5e-9*pix + 1e-4) * noise()
			}
			out = append(out, ra)

			cs := float64(32 + rng.Intn(96))
			spr := 100 / math.Cbrt(float64(tasks))
			vIn := core.Inputs{O: cs * cs * cs, AP: ap, SPR: spr, CS: cs, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
			v := core.Sample{
				Arch: arch, Renderer: core.Volume, In: vIn,
				RenderTime: f * (5e-10*ap*cs + 4e-9*ap*spr + 2e-4) * noise(),
			}
			if tasks > 1 {
				v.CompositeTime = (1.5e-8*vIn.AvgAP + 5e-9*pix + 1e-4) * noise()
			}
			out = append(out, v)
		}
	}
	return out
}

// testEngine builds an engine over a registry fitted to the given
// architectures, returning the underlying set and mapping for comparison.
func testEngine(tb testing.TB, archs []string, cacheSize int) (*Engine, *core.ModelSet, core.Mapping) {
	tb.Helper()
	samples := syntheticSamples(archs, 40, 7)
	set, err := core.FitModels(samples)
	if err != nil {
		tb.Fatal(err)
	}
	mp := core.CalibrateMapping(samples)
	reg := registry.New(cacheSize)
	if err := reg.Load(registry.FromModelSet(set, mp, "test")); err != nil {
		tb.Fatal(err)
	}
	return New(reg), set, mp
}

func TestPredictMatchesModelSet(t *testing.T) {
	e, set, mp := testEngine(t, []string{"cpu"}, 64)
	req := PredictRequest{Arch: "cpu", Renderer: "raytracer", N: 64, Tasks: 8, Width: 1024, Renderings: 100}
	resp, err := e.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	in := mp.Map(core.Config{N: 64, Tasks: 8, Width: 1024, Height: 1024, Renderer: core.RayTrace})
	m := set.Models[core.Key("cpu", core.RayTrace)]
	if resp.RenderSeconds != m.Predict(in) {
		t.Errorf("render = %v want %v", resp.RenderSeconds, m.Predict(in))
	}
	if resp.BuildSeconds != m.PredictBuild(in) {
		t.Errorf("build = %v want %v", resp.BuildSeconds, m.PredictBuild(in))
	}
	if resp.CompositeSeconds != set.Compositing.Predict(in) {
		t.Errorf("composite = %v want %v", resp.CompositeSeconds, set.Compositing.Predict(in))
	}
	want := resp.RenderSeconds + resp.CompositeSeconds + resp.BuildSeconds/100
	if math.Abs(resp.PerImageSeconds-want) > 1e-18 {
		t.Errorf("per image = %v want %v", resp.PerImageSeconds, want)
	}
	if resp.ImagesPerSecond <= 0 {
		t.Errorf("throughput = %v", resp.ImagesPerSecond)
	}

	// Height defaults to Width; renderings default to 1 (full build cost).
	resp1, err := e.Predict(PredictRequest{Arch: "cpu", Renderer: "raytracer", N: 64, Tasks: 8, Width: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if resp1.PerImageSeconds <= resp.PerImageSeconds {
		t.Error("unamortized build should cost more per image")
	}
}

func TestPredictValidation(t *testing.T) {
	e, _, _ := testEngine(t, []string{"cpu"}, 0)
	cases := []PredictRequest{
		{Renderer: "raytracer", N: 10, Width: 100},             // missing arch
		{Arch: "cpu", N: 10, Width: 100},                       // missing renderer
		{Arch: "cpu", Renderer: "raytracer", Width: 100},       // missing n
		{Arch: "cpu", Renderer: "raytracer", N: 10},            // missing width
		{Arch: "gpu", Renderer: "raytracer", N: 10, Width: 64}, // unknown model
		{Arch: "cpu", Renderer: "mystery", N: 10, Width: 64},   // unknown renderer
	}
	for i, req := range cases {
		if _, err := e.Predict(req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}
}

func TestPredictBatchAlignsAndIsolatesErrors(t *testing.T) {
	e, _, _ := testEngine(t, []string{"cpu"}, 64)
	reqs := []PredictRequest{
		{Arch: "cpu", Renderer: "volume", N: 32, Tasks: 2, Width: 512},
		{Arch: "nope", Renderer: "volume", N: 32, Width: 512},
		{Arch: "cpu", Renderer: "rasterizer", N: 48, Tasks: 4, Width: 256},
	}
	items := e.PredictBatch(reqs)
	if len(items) != 3 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].Response == nil || items[0].Error != "" {
		t.Errorf("item 0: %+v", items[0])
	}
	if items[1].Response != nil || !strings.Contains(items[1].Error, "no model") {
		t.Errorf("item 1: %+v", items[1])
	}
	if items[2].Response == nil || items[2].Response.Renderer != "rasterizer" {
		t.Errorf("item 2: %+v", items[2])
	}
}

// TestFeasibilityMatchesImagesInBudget pins the engine's arithmetic to the
// core implementation the repro pipeline uses for Figure 14.
func TestFeasibilityMatchesImagesInBudget(t *testing.T) {
	e, set, mp := testEngine(t, []string{"cpu"}, 128)
	sizes := []int{256, 512, 1024, 2048}
	for _, r := range []core.Renderer{core.RayTrace, core.Raster, core.Volume} {
		resp, err := e.Feasibility(FeasibilityRequest{
			Arch: "cpu", Renderer: string(r), N: 128, Tasks: 4,
			BudgetSeconds: 60, Sizes: sizes,
		})
		if err != nil {
			t.Fatal(err)
		}
		want, err := set.ImagesInBudget("cpu", r, mp, 128, 4, 60, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Points) != len(want) {
			t.Fatalf("%s: points = %d", r, len(resp.Points))
		}
		for i, pt := range resp.Points {
			if pt.Images != want[i].Images || pt.PerImageSeconds != want[i].PerImage {
				t.Errorf("%s size %d: got (%v, %v) want (%v, %v)", r, pt.ImageSize,
					pt.Images, pt.PerImageSeconds, want[i].Images, want[i].PerImage)
			}
		}
	}
}

func TestFeasibilityRequestedImages(t *testing.T) {
	e, _, _ := testEngine(t, []string{"cpu"}, 64)
	resp, err := e.Feasibility(FeasibilityRequest{
		Arch: "cpu", Renderer: "volume", N: 64, Tasks: 2,
		BudgetSeconds: 60, Sizes: []int{128, 4096}, Images: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range resp.Points {
		if pt.Feasible == nil {
			t.Fatalf("size %d: feasible not populated", pt.ImageSize)
		}
		if got, want := *pt.Feasible, pt.Images >= 50; got != want {
			t.Errorf("size %d: feasible = %v with %v images", pt.ImageSize, got, pt.Images)
		}
	}
	// Small images must fit 50 in a minute on the synthetic models; the
	// check is meaningful only if the two sizes disagree or both answer.
	if !*resp.Points[0].Feasible {
		t.Errorf("128px: only %v images in 60s", resp.Points[0].Images)
	}

	// Zero and negative budgets yield zero images.
	for _, budget := range []float64{0, -5} {
		resp, err := e.Feasibility(FeasibilityRequest{
			Arch: "cpu", Renderer: "volume", N: 64, Tasks: 1,
			BudgetSeconds: budget, Sizes: []int{256},
		})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Points[0].Images != 0 {
			t.Errorf("budget %v: images = %v", budget, resp.Points[0].Images)
		}
	}
}

func TestFeasibilityValidation(t *testing.T) {
	e, _, _ := testEngine(t, []string{"cpu"}, 0)
	bad := []FeasibilityRequest{
		{Renderer: "volume", N: 10, BudgetSeconds: 1, Sizes: []int{64}},
		{Arch: "cpu", Renderer: "volume", BudgetSeconds: 1, Sizes: []int{64}},
		{Arch: "cpu", Renderer: "volume", N: 10, BudgetSeconds: 1, Sizes: []int{0}},
	}
	for i, req := range bad {
		if _, err := e.Feasibility(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Empty sizes is a valid question with an empty answer.
	resp, err := e.Feasibility(FeasibilityRequest{Arch: "cpu", Renderer: "volume", N: 10, BudgetSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 0 {
		t.Errorf("points = %d", len(resp.Points))
	}
}

func TestMaxTriangles(t *testing.T) {
	e, _, _ := testEngine(t, []string{"cpu"}, 256)
	small, err := e.MaxTriangles(MaxTrianglesRequest{
		Arch: "cpu", Renderer: "raytracer", Tasks: 4, ImageSize: 512,
		PerImageBudgetSeconds: 0.05, Renderings: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.MaxTriangles(MaxTrianglesRequest{
		Arch: "cpu", Renderer: "raytracer", Tasks: 4, ImageSize: 512,
		PerImageBudgetSeconds: 5, Renderings: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.N < small.N {
		t.Errorf("bigger budget allows less geometry: %d vs %d", big.N, small.N)
	}
	if big.N > 0 {
		if big.Triangles != 12*float64(big.N)*float64(big.N) {
			t.Errorf("triangles = %v for N = %d", big.Triangles, big.N)
		}
		if big.TotalTriangles != 4*big.Triangles {
			t.Errorf("total = %v", big.TotalTriangles)
		}
		if big.PerImageSeconds > 5 {
			t.Errorf("reported cost %v exceeds budget", big.PerImageSeconds)
		}
	}

	// A hopeless budget answers zero rather than erroring.
	zero, err := e.MaxTriangles(MaxTrianglesRequest{
		Arch: "cpu", Renderer: "raytracer", Tasks: 1, ImageSize: 4096,
		PerImageBudgetSeconds: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if zero.N != 0 || zero.Triangles != 0 {
		t.Errorf("zero budget: %+v", zero)
	}

	if _, err := e.MaxTriangles(MaxTrianglesRequest{
		Arch: "cpu", Renderer: "volume", ImageSize: 512, PerImageBudgetSeconds: 1,
	}); err == nil {
		t.Error("volume accepted by max_triangles")
	}
}

func TestMetricsCountersAndErrors(t *testing.T) {
	e, _, _ := testEngine(t, paperArchs, 64)
	for i := 0; i < 3; i++ {
		if _, err := e.Predict(PredictRequest{Arch: "gpu", Renderer: "volume", N: 32, Width: 256}); err != nil {
			t.Fatal(err)
		}
	}
	e.Predict(PredictRequest{}) // error
	if _, err := e.Feasibility(FeasibilityRequest{Arch: "mic", Renderer: "raytracer", N: 16, BudgetSeconds: 10, Sizes: []int{128}}); err != nil {
		t.Fatal(err)
	}
	byOp := map[Op]OpStats{}
	for _, s := range e.Metrics() {
		byOp[s.Op] = s
	}
	if s := byOp[OpPredict]; s.Count != 4 || s.Errors != 1 {
		t.Errorf("predict stats: %+v", s)
	}
	if s := byOp[OpFeasibility]; s.Count != 1 || s.Errors != 0 {
		t.Errorf("feasibility stats: %+v", s)
	}
	if s := byOp[OpMaxTriangles]; s.Count != 0 {
		t.Errorf("max_triangles stats: %+v", s)
	}
}

// degenerateEngine serves a registry whose raytracer fit predicts NaN
// (a NaN coefficient — the worst case a pathological corpus can produce).
func degenerateEngine(t *testing.T) *Engine {
	t.Helper()
	samples := syntheticSamples([]string{"cpu"}, 40, 7)
	set, err := core.FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	set.Models[core.Key("cpu", core.RayTrace)].Fit.Coef[0] = math.NaN()
	reg := registry.New(0)
	if err := reg.Load(registry.FromModelSet(set, core.CalibrateMapping(samples), "degenerate")); err != nil {
		t.Fatal(err)
	}
	return New(reg)
}

// TestNonFinitePredictionsAreSanitized: degenerate fits must never leak
// NaN or Inf into a response — encoding/json rejects them, which used to
// turn the whole advisord answer into an opaque 500. Sanitized responses
// carry flagged zeros and marshal cleanly.
func TestNonFinitePredictionsAreSanitized(t *testing.T) {
	e := degenerateEngine(t)

	resp, err := e.Predict(PredictRequest{Arch: "cpu", Renderer: "raytracer", N: 64, Tasks: 2, Width: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.NonFinite {
		t.Error("NaN prediction not flagged")
	}
	for name, v := range map[string]float64{
		"render": resp.RenderSeconds, "build": resp.BuildSeconds,
		"composite": resp.CompositeSeconds, "per_image": resp.PerImageSeconds,
		"images_per_second": resp.ImagesPerSecond,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v leaked through sanitization", name, v)
		}
	}
	if _, err := json.Marshal(resp); err != nil {
		t.Errorf("sanitized predict response does not marshal: %v", err)
	}

	fresp, err := e.Feasibility(FeasibilityRequest{
		Arch: "cpu", Renderer: "raytracer", N: 64, Tasks: 2,
		BudgetSeconds: 60, Sizes: []int{256, 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range fresp.Points {
		if !pt.NonFinite {
			t.Errorf("size %d: NaN curve point not flagged", pt.ImageSize)
		}
		if math.IsNaN(pt.Images) || math.IsInf(pt.Images, 0) ||
			math.IsNaN(pt.PerImageSeconds) || math.IsInf(pt.PerImageSeconds, 0) {
			t.Errorf("size %d: non-finite point %+v", pt.ImageSize, pt)
		}
	}
	if _, err := json.Marshal(fresp); err != nil {
		t.Errorf("sanitized feasibility response does not marshal: %v", err)
	}

	mresp, err := e.MaxTriangles(MaxTrianglesRequest{
		Arch: "cpu", Renderer: "raytracer", Tasks: 1, ImageSize: 256, PerImageBudgetSeconds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(mresp); err != nil {
		t.Errorf("max_triangles response does not marshal: %v", err)
	}

	// A healthy engine never sets the flag.
	healthy, _, _ := testEngine(t, []string{"cpu"}, 0)
	hresp, err := healthy.Predict(PredictRequest{Arch: "cpu", Renderer: "raytracer", N: 64, Tasks: 2, Width: 512})
	if err != nil {
		t.Fatal(err)
	}
	if hresp.NonFinite {
		t.Error("healthy prediction flagged as non-finite")
	}
}

// fakeObserver records the samples it is handed.
type fakeObserver struct {
	batches [][]core.Sample
	corpus  int
	publish bool
	reason  string
	err     error
}

func (f *fakeObserver) Observe(samples []core.Sample) (int, bool, string, error) {
	f.batches = append(f.batches, samples)
	f.corpus += len(samples)
	return f.corpus, f.publish, f.reason, f.err
}

func TestObservationValidation(t *testing.T) {
	good := Observation{
		Arch: "cpu", Renderer: "volume",
		Inputs:        core.Inputs{O: 1000, AP: 5000, SPR: 100, CS: 10, Pixels: 10000, AvgAP: 5000, Tasks: 2},
		RenderSeconds: 0.01, CompositeSeconds: 0.001,
	}
	if _, err := SamplesFromObservations([]Observation{good}); err != nil {
		t.Fatalf("valid observation rejected: %v", err)
	}
	bad := []struct {
		name   string
		mutate func(*Observation)
	}{
		{"missing arch", func(o *Observation) { o.Arch = "" }},
		{"unknown renderer", func(o *Observation) { o.Renderer = "splatter" }},
		{"compositing pseudo-renderer", func(o *Observation) { o.Renderer = "compositing" }},
		{"zero render time", func(o *Observation) { o.RenderSeconds = 0 }},
		{"negative render time", func(o *Observation) { o.RenderSeconds = -1 }},
		{"NaN render time", func(o *Observation) { o.RenderSeconds = math.NaN() }},
		{"Inf input", func(o *Observation) { o.Inputs.AP = math.Inf(1) }},
		{"negative composite", func(o *Observation) { o.CompositeSeconds = -0.1 }},
	}
	for _, tc := range bad {
		o := good
		tc.mutate(&o)
		if _, err := SamplesFromObservations([]Observation{o}); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		// One bad element fails the whole batch.
		if _, err := SamplesFromObservations([]Observation{good, o}); err == nil {
			t.Errorf("%s: bad element hid inside a batch", tc.name)
		}
	}
	if _, err := SamplesFromObservations(nil); err == nil {
		t.Error("empty batch accepted")
	}
	// Tasks default to 1.
	o := good
	o.Inputs.Tasks = 0
	samples, err := SamplesFromObservations([]Observation{o})
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].In.Tasks != 1 {
		t.Errorf("tasks = %d, want defaulted 1", samples[0].In.Tasks)
	}
}

func TestEngineObserve(t *testing.T) {
	e, _, _ := testEngine(t, []string{"cpu"}, 0)

	// Without an observer the operation is disabled.
	if _, err := e.Observe([]core.Sample{{Arch: "cpu", Renderer: core.Volume, RenderTime: 0.01}}); err == nil {
		t.Error("observe without an observer accepted")
	}

	obs := &fakeObserver{publish: true}
	e.SetObserver(obs)
	samples, err := SamplesFromObservations([]Observation{{
		Arch: "cpu", Renderer: "volume",
		Inputs:        core.Inputs{O: 1000, AP: 5000, SPR: 100, CS: 10, Pixels: 10000, AvgAP: 5000, Tasks: 1},
		RenderSeconds: 0.01,
	}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.Observe(samples)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.CorpusSize != 1 || !resp.Published || resp.Generation != 1 {
		t.Errorf("response: %+v", resp)
	}
	if len(obs.batches) != 1 || len(obs.batches[0]) != 1 {
		t.Errorf("observer saw %v", obs.batches)
	}

	// The observe op shows up in metrics.
	found := false
	for _, s := range e.Metrics() {
		if s.Op == OpObserve && s.Count == 2 && s.Errors == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("observe metrics missing: %+v", e.Metrics())
	}
}
