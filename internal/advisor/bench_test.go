package advisor

import (
	"fmt"
	"testing"
)

// BenchmarkAdvisorPredict measures prediction throughput over a registry
// holding every paper architecture: the cache-hot steady state (one
// repeated configuration), a rotating working set larger than a single
// request, and batches, with and without the prediction cache.
func BenchmarkAdvisorPredict(b *testing.B) {
	b.ReportAllocs()
	renderers := []string{"raytracer", "rasterizer", "volume"}
	mkReqs := func(n int) []PredictRequest {
		reqs := make([]PredictRequest, n)
		for i := range reqs {
			reqs[i] = PredictRequest{
				Arch:     paperArchs[i%len(paperArchs)],
				Renderer: renderers[i%len(renderers)],
				N:        16 + 8*(i%10),
				Tasks:    1 << (i % 6),
				Width:    256 + 128*(i%8),
			}
		}
		return reqs
	}

	b.Run("single/hot", func(b *testing.B) {
		e, _, _ := testEngine(b, paperArchs, 4096)
		req := mkReqs(1)[0]
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Predict(req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("single/rotating", func(b *testing.B) {
		e, _, _ := testEngine(b, paperArchs, 4096)
		reqs := mkReqs(240)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Predict(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("single/uncached", func(b *testing.B) {
		e, _, _ := testEngine(b, paperArchs, 0)
		reqs := mkReqs(240)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Predict(reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	for _, size := range []int{16, 128} {
		b.Run(fmt.Sprintf("batch/%d", size), func(b *testing.B) {
			e, _, _ := testEngine(b, paperArchs, 4096)
			reqs := mkReqs(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items := e.PredictBatch(reqs)
				for _, it := range items {
					if it.Error != "" {
						b.Fatal(it.Error)
					}
				}
			}
		})
	}

	b.Run("parallel", func(b *testing.B) {
		e, _, _ := testEngine(b, paperArchs, 4096)
		reqs := mkReqs(240)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := e.Predict(reqs[i%len(reqs)]); err != nil {
					// Fatal would Goexit a worker goroutine, which the
					// testing package forbids inside RunParallel.
					b.Error(err)
					return
				}
				i++
			}
		})
	})
}
