package registry

import (
	"container/list"
	"sync"
)

// lru is a small mutex-guarded LRU cache of predictions. Prediction is
// cheap (a dot product) but advisord answers the same handful of
// configurations at high QPS, and the cache also absorbs the map lookup
// and lock traffic of the model set itself.
type lru struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[predKey]*list.Element
}

type lruEntry struct {
	key predKey
	val PredictResult
}

// newLRU returns a cache holding up to cap entries; cap <= 0 disables
// caching (every Get misses, Add is a no-op).
func newLRU(cap int) *lru {
	return &lru{cap: cap, ll: list.New(), items: map[predKey]*list.Element{}}
}

func (c *lru) Get(k predKey) (PredictResult, bool) {
	if c.cap <= 0 {
		return PredictResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return PredictResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lru) Add(k predKey, v PredictResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = v
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[predKey]*list.Element{}
}

func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
