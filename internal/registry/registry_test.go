package registry

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"insitu/internal/core"
	"insitu/internal/lru"
)

// fittedSet fits a model set from synthetic study-like samples, mirroring
// the generating process of the core package tests.
func fittedSet(t *testing.T, seed int64) (*core.ModelSet, core.Mapping, []core.Sample) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var samples []core.Sample
	for i := 0; i < 60; i++ {
		tasks := []int{1, 2, 4}[rng.Intn(3)]
		pix := float64(10000 + rng.Intn(90000))
		ap := 0.5 * pix / math.Cbrt(float64(tasks))
		objects := float64(2000 + rng.Intn(50000))
		noise := func() float64 { return 1 + 0.01*rng.NormFloat64() }

		rtIn := core.Inputs{O: objects, AP: ap, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
		rt := core.Sample{
			Arch: "cpu", Renderer: core.RayTrace, In: rtIn,
			BuildTime:  (3e-8*objects + 1e-4) * noise(),
			RenderTime: (2e-9*ap*math.Log2(objects) + 4e-8*ap + 2e-4) * noise(),
		}
		if tasks > 1 {
			rt.CompositeTime = (1.5e-8*rtIn.AvgAP + 5e-9*pix + 1e-4) * noise()
		}
		samples = append(samples, rt)

		vo := math.Min(ap, objects)
		raIn := core.Inputs{O: objects, AP: ap, VO: vo, PPT: 4 * ap / vo, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
		ra := core.Sample{
			Arch: "cpu", Renderer: core.Raster, In: raIn,
			RenderTime: (1e-8*objects + 2e-9*4*ap + 1e-4) * noise(),
		}
		if tasks > 1 {
			ra.CompositeTime = (1.5e-8*raIn.AvgAP + 5e-9*pix + 1e-4) * noise()
		}
		samples = append(samples, ra)

		cs := float64(32 + rng.Intn(96))
		spr := 100 / math.Cbrt(float64(tasks))
		vIn := core.Inputs{O: cs * cs * cs, AP: ap, SPR: spr, CS: cs, Pixels: pix, AvgAP: ap * 0.9, Tasks: tasks}
		v := core.Sample{
			Arch: "cpu", Renderer: core.Volume, In: vIn,
			RenderTime: (5e-10*ap*cs + 4e-9*ap*spr + 2e-4) * noise(),
		}
		if tasks > 1 {
			v.CompositeTime = (1.5e-8*vIn.AvgAP + 5e-9*pix + 1e-4) * noise()
		}
		samples = append(samples, v)
	}
	set, err := core.FitModels(samples)
	if err != nil {
		t.Fatal(err)
	}
	return set, core.CalibrateMapping(samples), samples
}

// probeInputs is a spread of input vectors for prediction comparison.
func probeInputs(n int, seed int64) []core.Inputs {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Inputs, n)
	for i := range out {
		out[i] = core.Inputs{
			O:      float64(1000 + rng.Intn(1000000)),
			AP:     float64(100 + rng.Intn(4000000)),
			VO:     float64(100 + rng.Intn(100000)),
			PPT:    1 + 8*rng.Float64(),
			SPR:    1 + 400*rng.Float64(),
			CS:     float64(8 + rng.Intn(512)),
			Pixels: float64(10000 + rng.Intn(16000000)),
			AvgAP:  float64(100 + rng.Intn(4000000)),
			Tasks:  1 + rng.Intn(64),
		}
	}
	return out
}

// TestRoundTripPredictsExactly is the registry's contract: save, load, and
// predict must match the in-memory ModelSet.Predict bit for bit. JSON
// emits shortest round-trippable decimals and prediction is a dot product
// over the decoded coefficients, so no tolerance is needed or allowed.
func TestRoundTripPredictsExactly(t *testing.T) {
	set, mp, _ := fittedSet(t, 7)
	snap := FromModelSet(set, mp, "test")

	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	set2, err := loaded.ModelSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(set2.Models) != len(set.Models) {
		t.Fatalf("models: %d vs %d", len(set2.Models), len(set.Models))
	}
	for _, in := range probeInputs(200, 11) {
		for k, m := range set.Models {
			m2, ok := set2.Models[k]
			if !ok {
				t.Fatalf("model %s lost in round trip", k)
			}
			if got, want := m2.Predict(in), m.Predict(in); got != want {
				t.Fatalf("%s: Predict = %v, want exactly %v", k, got, want)
			}
			if got, want := m2.PredictBuild(in), m.PredictBuild(in); got != want {
				t.Fatalf("%s: PredictBuild = %v, want exactly %v", k, got, want)
			}
		}
		if got, want := set2.Compositing.Predict(in), set.Compositing.Predict(in); got != want {
			t.Fatalf("compositing: Predict = %v, want exactly %v", got, want)
		}
	}
	// Diagnostics survive too.
	for i, d := range loaded.Models {
		if d.Fit.R2 != snap.Models[i].Fit.R2 || d.Fit.N != snap.Models[i].Fit.N {
			t.Fatalf("model %d diagnostics changed in round trip", i)
		}
	}
	if got := loaded.CalibratedMapping(); got != mp {
		t.Fatalf("mapping round trip: %+v vs %+v", got, mp)
	}
}

func TestWriteFileReadFile(t *testing.T) {
	set, mp, _ := fittedSet(t, 13)
	snap := FromModelSet(set, mp, "test")
	path := filepath.Join(t.TempDir(), "models.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Models) != len(snap.Models) || loaded.Source != "test" {
		t.Fatalf("loaded %d models source %q", len(loaded.Models), loaded.Source)
	}
	// Published snapshots are world-readable (other processes consume
	// them), not CreateTemp's private 0600.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o644 {
		t.Errorf("snapshot file mode %o, want 644", perm)
	}
}

func TestValidateRejectsBadSnapshots(t *testing.T) {
	set, mp, _ := fittedSet(t, 17)
	good := FromModelSet(set, mp, "test")

	wrongVersion := *good
	wrongVersion.Version = 99
	if err := wrongVersion.Validate(); err == nil {
		t.Error("wrong version accepted")
	}

	empty := Snapshot{Version: SnapshotVersion}
	if err := empty.Validate(); err == nil {
		t.Error("empty snapshot accepted")
	}

	badRenderer := *good
	badRenderer.Models = append([]ModelDoc(nil), good.Models...)
	badRenderer.Models[0].Renderer = "mystery"
	if err := badRenderer.Validate(); err == nil {
		t.Error("unknown renderer accepted")
	}

	badArity := *good
	badArity.Models = append([]ModelDoc(nil), good.Models...)
	badArity.Models[0].Fit.Coef = []float64{1}
	if err := badArity.Validate(); err == nil {
		t.Error("wrong coefficient arity accepted")
	}

	dup := *good
	dup.Models = append(append([]ModelDoc(nil), good.Models...), good.Models[0])
	if err := dup.Validate(); err == nil {
		t.Error("duplicate model accepted")
	}
}

func TestRegistryLoadLookupPredict(t *testing.T) {
	set, mp, _ := fittedSet(t, 19)
	reg := New(128)
	if _, err := reg.Predict("cpu", core.RayTrace, core.Inputs{}); err == nil {
		t.Error("empty registry predicted")
	}
	if err := reg.Load(FromModelSet(set, mp, "test")); err != nil {
		t.Fatal(err)
	}
	if g := reg.Generation(); g != 1 {
		t.Errorf("generation = %d", g)
	}
	if _, ok := reg.Lookup("cpu", core.RayTrace); !ok {
		t.Error("lookup missed cpu/raytracer")
	}
	if _, ok := reg.Lookup("gpu", core.RayTrace); ok {
		t.Error("lookup found a model that was never loaded")
	}
	if archs := reg.Archs(); len(archs) != 1 || archs[0] != "cpu" {
		t.Errorf("archs = %v", archs)
	}

	in := core.Inputs{O: 50000, AP: 200000, Pixels: 500000, AvgAP: 180000, Tasks: 4}
	res, err := reg.Predict("cpu", core.RayTrace, in)
	if err != nil {
		t.Fatal(err)
	}
	m := set.Models[core.Key("cpu", core.RayTrace)]
	if res.RenderSeconds != m.Predict(in) {
		t.Errorf("render = %v want %v", res.RenderSeconds, m.Predict(in))
	}
	if res.BuildSeconds != m.PredictBuild(in) {
		t.Errorf("build = %v want %v", res.BuildSeconds, m.PredictBuild(in))
	}
	if res.CompositeSeconds != set.Compositing.Predict(in) {
		t.Errorf("composite = %v want %v", res.CompositeSeconds, set.Compositing.Predict(in))
	}

	// Single-task predictions carry no compositing cost.
	in1 := in
	in1.Tasks = 1
	res1, err := reg.Predict("cpu", core.RayTrace, in1)
	if err != nil {
		t.Fatal(err)
	}
	if res1.CompositeSeconds != 0 {
		t.Errorf("single-task composite = %v", res1.CompositeSeconds)
	}
}

func TestRegistryCacheHitsAndReloadPurge(t *testing.T) {
	set, mp, _ := fittedSet(t, 23)
	reg := New(8)
	snap := FromModelSet(set, mp, "test")
	path := filepath.Join(t.TempDir(), "models.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	in := core.Inputs{O: 10000, AP: 90000, Pixels: 250000, AvgAP: 80000, Tasks: 2}
	for i := 0; i < 5; i++ {
		if _, err := reg.Predict("cpu", core.Volume, in); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := reg.CacheStats()
	if misses != 1 || hits != 4 || size != 1 {
		t.Errorf("cache stats: hits=%d misses=%d size=%d", hits, misses, size)
	}

	// Hot reload bumps the generation and purges cached predictions.
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if g := reg.Generation(); g != 2 {
		t.Errorf("generation after reload = %d", g)
	}
	if _, _, size := reg.CacheStats(); size != 0 {
		t.Errorf("cache size after reload = %d", size)
	}
	if reg.LastReload().IsZero() {
		t.Error("LastReload not recorded")
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	set, mp, _ := fittedSet(t, 29)
	reg := New(8)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := FromModelSet(set, mp, "test").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err == nil {
		t.Fatal("corrupt reload succeeded")
	}
	// The previous snapshot still answers.
	if _, err := reg.Predict("cpu", core.Raster, core.Inputs{O: 1000, AP: 5000, VO: 1000, PPT: 4, Tasks: 1}); err != nil {
		t.Errorf("registry stopped serving after failed reload: %v", err)
	}
	if g := reg.Generation(); g != 1 {
		t.Errorf("generation advanced on failed reload: %d", g)
	}

	// Unknown models answer the typed sentinel.
	if _, err := reg.Predict("gpu", core.Raster, core.Inputs{Tasks: 1}); !errors.Is(err, ErrNoModel) {
		t.Errorf("unknown model error = %v, want ErrNoModel", err)
	}

	// An in-memory Load detaches the registry from the file: Reload must
	// refuse rather than silently revert to stale file contents.
	if err := reg.Load(FromModelSet(set, mp, "memory")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err == nil {
		t.Error("reload after in-memory Load should error, not revert to the file")
	}
}

func TestRegistryConcurrentPredictAndReload(t *testing.T) {
	set, mp, _ := fittedSet(t, 31)
	reg := New(64)
	path := filepath.Join(t.TempDir(), "models.json")
	if err := FromModelSet(set, mp, "test").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	probes := probeInputs(32, 37)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				in := probes[(w*500+i)%len(probes)]
				if _, err := reg.Predict("cpu", core.Volume, in); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := reg.Reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if g := reg.Generation(); g != 21 {
		t.Errorf("generation = %d, want 21", g)
	}
}

// TestStalePredictionCannotPoisonCacheAcrossReload pins the reload race:
// a prediction computed from a pre-reload view and inserted into the
// cache after the reload's purge must never answer post-reload lookups.
func TestStalePredictionCannotPoisonCacheAcrossReload(t *testing.T) {
	setA, mpA, _ := fittedSet(t, 43)
	setB, mpB, _ := fittedSet(t, 47) // different noise -> different coefficients
	reg := New(64)
	if err := reg.Load(FromModelSet(setA, mpA, "a")); err != nil {
		t.Fatal(err)
	}
	in := core.Inputs{O: 30000, AP: 120000, Pixels: 300000, AvgAP: 110000, Tasks: 2}

	// An in-flight request captured its view before the reload...
	oldView, err := reg.View()
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Load(FromModelSet(setB, mpB, "b")); err != nil {
		t.Fatal(err)
	}
	// ...and completes (cache insert) after it.
	stale, err := oldView.Predict("cpu", core.RayTrace, in)
	if err != nil {
		t.Fatal(err)
	}
	if want := setA.Models[core.Key("cpu", core.RayTrace)].Predict(in); stale.RenderSeconds != want {
		t.Fatalf("old view predicted %v, want old-model %v", stale.RenderSeconds, want)
	}

	// Fresh lookups must see the new model, not the stale insert.
	fresh, err := reg.Predict("cpu", core.RayTrace, in)
	if err != nil {
		t.Fatal(err)
	}
	want := setB.Models[core.Key("cpu", core.RayTrace)].Predict(in)
	if fresh.RenderSeconds != want {
		t.Fatalf("post-reload predict %v, want new-model %v (stale cache entry answered)", fresh.RenderSeconds, want)
	}
	if fresh.RenderSeconds == stale.RenderSeconds {
		t.Fatal("old and new models coincided; test lost its power")
	}
}

func TestLRUEviction(t *testing.T) {
	c := lru.New[predKey, PredictResult](2)
	k := func(i int) predKey { return predKey{key: "m", in: core.Inputs{O: float64(i)}} }
	c.Add(k(1), PredictResult{RenderSeconds: 1})
	c.Add(k(2), PredictResult{RenderSeconds: 2})
	c.Get(k(1)) // touch 1 so 2 is the eviction victim
	c.Add(k(3), PredictResult{RenderSeconds: 3})
	if _, ok := c.Get(k(2)); ok {
		t.Error("least-recently-used entry survived")
	}
	if v, ok := c.Get(k(1)); !ok || v.RenderSeconds != 1 {
		t.Error("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
	// Disabled cache never stores.
	d := lru.New[predKey, PredictResult](0)
	d.Add(k(1), PredictResult{})
	if _, ok := d.Get(k(1)); ok || d.Len() != 0 {
		t.Error("disabled cache cached")
	}
}

// TestPublishPreservesReloadPath: Publish hot-swaps an in-memory snapshot
// (generation bump, cache purge) like Load, but keeps the remembered file
// path so a later Reload still re-reads the published registry file —
// the contract the continuous-calibration path depends on.
func TestPublishPreservesReloadPath(t *testing.T) {
	set, mp, _ := fittedSet(t, 51)
	dir := t.TempDir()
	path := filepath.Join(dir, "models.json")
	if err := FromModelSet(set, mp, "on-disk").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	reg := New(64)
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	gen := reg.Generation()

	// Publish a refitted in-memory snapshot.
	refit := FromModelSet(set, mp, "refit")
	if err := reg.Publish(refit); err != nil {
		t.Fatal(err)
	}
	if reg.Generation() != gen+1 {
		t.Errorf("generation %d, want %d", reg.Generation(), gen+1)
	}
	if got := reg.Snapshot().Source; got != "refit" {
		t.Errorf("serving source %q", got)
	}

	// Reload still works and re-reads the file (Load would have severed it).
	if err := reg.Reload(); err != nil {
		t.Fatalf("reload after publish: %v", err)
	}
	if got := reg.Snapshot().Source; got != "on-disk" {
		t.Errorf("source after reload = %q, want on-disk", got)
	}

	// Publish on a never-file-backed registry keeps working too.
	mem := New(64)
	if err := mem.Load(FromModelSet(set, mp, "mem")); err != nil {
		t.Fatal(err)
	}
	if err := mem.Publish(refit); err != nil {
		t.Fatal(err)
	}
	if err := mem.Reload(); err == nil {
		t.Error("reload on a memory-only registry should still fail")
	}
}

// TestPublishIfRejectsStaleGeneration: a conditional publish derived from
// an outdated generation must fail with ErrStale and leave the registry
// untouched, so read-merge-publish updaters cannot clobber a concurrent
// load.
func TestPublishIfRejectsStaleGeneration(t *testing.T) {
	set, mp, _ := fittedSet(t, 53)
	reg := New(16)
	if err := reg.Load(FromModelSet(set, mp, "first")); err != nil {
		t.Fatal(err)
	}
	gen := reg.Generation()
	if err := reg.Load(FromModelSet(set, mp, "second")); err != nil {
		t.Fatal(err)
	}
	err := reg.PublishIf(FromModelSet(set, mp, "stale-refit"), gen)
	if !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	if got := reg.Snapshot().Source; got != "second" {
		t.Errorf("stale publish replaced serving snapshot: %q", got)
	}
	if reg.Generation() != gen+1 {
		t.Errorf("generation moved to %d on a failed publish", reg.Generation())
	}
	// The current generation succeeds.
	if err := reg.PublishIf(FromModelSet(set, mp, "fresh-refit"), gen+1); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Source; got != "fresh-refit" {
		t.Errorf("serving %q", got)
	}
}
