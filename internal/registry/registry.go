// Package registry persists fitted performance models and serves them to
// online consumers. A Snapshot is the versioned JSON form of a fitted
// core.ModelSet — per-model coefficients, fit diagnostics, and the
// calibrated configuration mapping — so a one-shot study or repro run can
// publish its models once and any number of advisor processes can answer
// feasibility questions from them later. A Registry holds the current
// snapshot in memory behind a read-write lock, supports atomic hot reload
// (a reload swaps the whole model set and invalidates derived state), and
// memoizes predictions in an LRU cache keyed by the full model input
// vector, since interactive advisors ask the same few configurations over
// and over.
package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/core"
	"insitu/internal/lru"
	"insitu/internal/stats"
)

// ErrNoModel reports a lookup for an architecture+renderer the registry
// does not hold. Callers classify it with errors.Is rather than matching
// error text.
var ErrNoModel = errors.New("registry: no model")

// SnapshotVersion is the current serialization format version. Decoders
// accept only this version; bump it when the layout changes.
const SnapshotVersion = 1

// FitDoc serializes one stats.Fit: the coefficients that define the model
// plus the diagnostics needed to judge it without refitting.
type FitDoc struct {
	Coef       []float64 `json:"coef"`
	R2         float64   `json:"r2"`
	AdjR2      float64   `json:"adj_r2"`
	ResidualSD float64   `json:"residual_sd"`
	N          int       `json:"n"`
	P          int       `json:"p"`
}

// ModelDoc serializes one fitted architecture+renderer model.
type ModelDoc struct {
	Arch     string  `json:"arch"`
	Renderer string  `json:"renderer"`
	Fit      FitDoc  `json:"fit"`
	BuildFit *FitDoc `json:"build_fit,omitempty"`
}

// MappingDoc serializes the calibrated configuration-to-inputs mapping.
type MappingDoc struct {
	FillFraction float64 `json:"fill_fraction"`
	SPRBase      float64 `json:"spr_base"`
}

// Snapshot is the on-disk registry document: everything needed to answer
// feasibility questions, detached from the study that produced it.
type Snapshot struct {
	Version     int        `json:"version"`
	Source      string     `json:"source"`
	CreatedUnix int64      `json:"created_unix"`
	Mapping     MappingDoc `json:"mapping"`
	Models      []ModelDoc `json:"models"`
	Compositing *ModelDoc  `json:"compositing,omitempty"`
}

func fitDoc(f *stats.Fit) FitDoc {
	return FitDoc{
		Coef:       append([]float64(nil), f.Coef...),
		R2:         f.R2,
		AdjR2:      f.AdjR2,
		ResidualSD: f.ResidualSD,
		N:          f.N,
		P:          f.P,
	}
}

func (d FitDoc) fit() *stats.Fit {
	return &stats.Fit{
		Coef:       append([]float64(nil), d.Coef...),
		R2:         d.R2,
		AdjR2:      d.AdjR2,
		ResidualSD: d.ResidualSD,
		N:          d.N,
		P:          d.P,
	}
}

func modelDoc(m *core.Model) ModelDoc {
	doc := ModelDoc{Arch: m.Arch, Renderer: string(m.Renderer), Fit: fitDoc(m.Fit)}
	if m.BuildFit != nil {
		bd := fitDoc(m.BuildFit)
		doc.BuildFit = &bd
	}
	return doc
}

// FromModelSet packages a fitted model set and its calibrated mapping as a
// snapshot. Models are emitted in the set's sorted key order so snapshots
// of the same fit are byte-identical.
func FromModelSet(set *core.ModelSet, mp core.Mapping, source string) *Snapshot {
	s := &Snapshot{
		Version:     SnapshotVersion,
		Source:      source,
		CreatedUnix: time.Now().Unix(),
		Mapping:     MappingDoc{FillFraction: mp.FillFraction, SPRBase: mp.SPRBase},
	}
	keys := make([]string, 0, len(set.Models))
	for k := range set.Models {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Models = append(s.Models, modelDoc(set.Models[k]))
	}
	if set.Compositing != nil {
		cd := modelDoc(set.Compositing)
		s.Compositing = &cd
	}
	return s
}

// termCount returns the expected coefficient count of a renderer's term
// vector, for validation.
func termCount(r core.Renderer) (int, error) {
	terms, err := core.RenderTerms(r, core.Inputs{})
	if err != nil {
		return 0, err
	}
	return len(terms), nil
}

// Validate checks the snapshot's version, renderer names, and coefficient
// arities, so a stale or hand-edited file fails loudly at load time rather
// than producing silent garbage predictions.
func (s *Snapshot) Validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("registry: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	if len(s.Models) == 0 {
		return fmt.Errorf("registry: snapshot has no models")
	}
	check := func(d *ModelDoc) error {
		r := core.Renderer(d.Renderer)
		want, err := termCount(r)
		if err != nil {
			return fmt.Errorf("registry: model %s/%s: %w", d.Arch, d.Renderer, err)
		}
		if len(d.Fit.Coef) != want {
			return fmt.Errorf("registry: model %s/%s has %d coefficients, want %d",
				d.Arch, d.Renderer, len(d.Fit.Coef), want)
		}
		if d.BuildFit != nil && len(d.BuildFit.Coef) != len(core.RTBuildTerms(core.Inputs{})) {
			return fmt.Errorf("registry: model %s/%s build fit has %d coefficients",
				d.Arch, d.Renderer, len(d.BuildFit.Coef))
		}
		return nil
	}
	seen := map[string]bool{}
	for i := range s.Models {
		d := &s.Models[i]
		if err := check(d); err != nil {
			return err
		}
		k := core.Key(d.Arch, core.Renderer(d.Renderer))
		if seen[k] {
			return fmt.Errorf("registry: duplicate model %s", k)
		}
		seen[k] = true
	}
	if s.Compositing != nil {
		if err := check(s.Compositing); err != nil {
			return err
		}
	}
	return nil
}

// ModelSet reconstructs the in-memory model set. The returned set predicts
// bit-identically to the one the snapshot was built from: coefficients
// survive the JSON round trip exactly (shortest round-trippable decimals)
// and prediction is a plain dot product over them.
func (s *Snapshot) ModelSet() (*core.ModelSet, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	set := &core.ModelSet{Models: map[string]*core.Model{}}
	for i := range s.Models {
		d := &s.Models[i]
		m := &core.Model{Arch: d.Arch, Renderer: core.Renderer(d.Renderer), Fit: d.Fit.fit()}
		if d.BuildFit != nil {
			m.BuildFit = d.BuildFit.fit()
		}
		set.Models[core.Key(d.Arch, m.Renderer)] = m
	}
	if s.Compositing != nil {
		set.Compositing = &core.Model{
			Arch:     s.Compositing.Arch,
			Renderer: core.Renderer(s.Compositing.Renderer),
			Fit:      s.Compositing.Fit.fit(),
		}
	}
	return set, nil
}

// CalibratedMapping reconstructs the calibrated mapping, falling back to
// the paper's defaults when the snapshot predates calibration.
func (s *Snapshot) CalibratedMapping() core.Mapping {
	mp := core.Mapping{FillFraction: s.Mapping.FillFraction, SPRBase: s.Mapping.SPRBase}
	def := core.DefaultMapping()
	if mp.FillFraction <= 0 {
		mp.FillFraction = def.FillFraction
	}
	if mp.SPRBase <= 0 {
		mp.SPRBase = def.SPRBase
	}
	return mp
}

// Encode writes the snapshot as indented JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// EncodeBytes renders the snapshot to a byte slice — the wire form for
// replicating snapshots router → workers over a rank transport.
func (s *Snapshot) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeBytes parses and validates a replicated snapshot.
func DecodeBytes(b []byte) (*Snapshot, error) {
	return Decode(bytes.NewReader(b))
}

// Decode reads and validates a snapshot.
func Decode(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("registry: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteFile atomically writes the snapshot next to path (temp file +
// rename), so a concurrent hot reload never observes a torn file.
func (s *Snapshot) WriteFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".registry-*.json")
	if err != nil {
		return err
	}
	if err := s.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp makes the file 0600; published snapshots are meant to be
	// consumed by other processes (advisord under a service user), so open
	// it up before the rename makes it visible.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile loads and validates a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// PredictResult is one cached prediction: the per-image local render time,
// the one-time acceleration-structure build, and the per-image compositing
// cost (0 for single-task configurations or when no compositing model is
// loaded).
type PredictResult struct {
	RenderSeconds    float64 `json:"render_seconds"`
	BuildSeconds     float64 `json:"build_seconds"`
	CompositeSeconds float64 `json:"composite_seconds"`
}

// predKey identifies a prediction by registry generation, model, and full
// input vector. core.Inputs is a flat struct of numbers, so the key is
// comparable and collision-free. The generation guards against a race
// with hot reload: a prediction computed from the pre-reload model set
// carries the old generation and can never answer a post-reload lookup,
// even if it is inserted after the reload's purge.
type predKey struct {
	gen uint64
	key string
	in  core.Inputs
}

// Registry serves one snapshot's models to concurrent readers.
type Registry struct {
	mu         sync.RWMutex
	snap       *Snapshot
	set        *core.ModelSet
	mapping    core.Mapping
	path       string // last loaded file, for Reload
	generation uint64

	cache      *lru.Cache[predKey, PredictResult]
	hits       atomic.Uint64
	misses     atomic.Uint64
	lastReload atomic.Int64 // unix nanos
}

// New returns an empty registry whose prediction cache holds up to
// cacheSize entries (0 disables caching).
func New(cacheSize int) *Registry {
	return &Registry{cache: lru.New[predKey, PredictResult](cacheSize)}
}

// Load installs an in-memory snapshot, replacing any previous one
// atomically and invalidating the prediction cache. The remembered
// Reload path is cleared: the current models no longer come from a file.
func (r *Registry) Load(s *Snapshot) error { return r.load(s, "") }

// LoadFile loads a snapshot file and remembers the path for Reload.
func (r *Registry) LoadFile(path string) error {
	s, err := ReadFile(path)
	if err != nil {
		return err
	}
	return r.load(s, path)
}

// load installs snapshot and path in one critical section so concurrent
// loads can never pair one file's models with another file's reload path.
func (r *Registry) load(s *Snapshot, path string) error {
	set, err := s.ModelSet()
	if err != nil {
		return err
	}
	mp := s.CalibratedMapping()
	r.mu.Lock()
	r.snap = s
	r.set = set
	r.mapping = mp
	r.path = path
	r.generation++
	r.mu.Unlock()
	r.cache.Purge()
	r.lastReload.Store(time.Now().UnixNano())
	return nil
}

// ErrStale reports a conditional publish whose base generation no longer
// matches the registry — another load or publish won the race. Callers
// re-derive their snapshot from the current state and retry.
var ErrStale = errors.New("registry: stale base generation")

// Publish installs an in-memory snapshot while preserving the remembered
// Reload path — the continuous-calibration path: a refitted snapshot
// replaces the serving models atomically (generation bump, cache purge)
// without disconnecting the registry from the file a later explicit
// reload should re-read. Like Load, a failed Publish leaves the current
// models serving.
func (r *Registry) Publish(s *Snapshot) error {
	return r.publish(s, nil)
}

// PublishIf is Publish conditioned on the registry still being at
// baseGen, the generation the caller derived its snapshot from. It fails
// with ErrStale when a concurrent load or reload has moved the registry
// on — essential for read-merge-publish updates (study.Calibrator),
// which would otherwise silently drop models installed by the concurrent
// load.
func (r *Registry) PublishIf(s *Snapshot, baseGen uint64) error {
	return r.publish(s, &baseGen)
}

// publish installs a snapshot keeping r.path untouched; expect, when
// non-nil, is the required current generation.
func (r *Registry) publish(s *Snapshot, expect *uint64) error {
	set, err := s.ModelSet()
	if err != nil {
		return err
	}
	mp := s.CalibratedMapping()
	r.mu.Lock()
	if expect != nil && r.generation != *expect {
		gen := r.generation
		r.mu.Unlock()
		return fmt.Errorf("%w: registry at generation %d, snapshot derived from %d", ErrStale, gen, *expect)
	}
	r.snap = s
	r.set = set
	r.mapping = mp
	r.generation++
	r.mu.Unlock()
	r.cache.Purge()
	r.lastReload.Store(time.Now().UnixNano())
	return nil
}

// Reload re-reads the last loaded file — the hot-reload path a running
// advisord uses when the study pipeline publishes fresh models. A failed
// reload leaves the current models serving.
func (r *Registry) Reload() error {
	r.mu.RLock()
	path := r.path
	r.mu.RUnlock()
	if path == "" {
		return fmt.Errorf("registry: no file loaded")
	}
	return r.LoadFile(path)
}

// Generation returns the load counter; it increments on every successful
// Load so clients can detect model churn.
//
//insitu:noalloc
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.generation
}

// Snapshot returns the currently loaded snapshot document (nil when
// empty). Callers must not mutate it.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.snap
}

// Mapping returns the active configuration mapping.
func (r *Registry) Mapping() core.Mapping {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mapping
}

// ModelSet returns the active model set (nil when empty). Callers must
// not mutate it.
func (r *Registry) ModelSet() *core.ModelSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.set
}

// Lookup returns the model for an architecture and renderer.
func (r *Registry) Lookup(arch string, renderer core.Renderer) (*core.Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.set == nil {
		return nil, false
	}
	m, ok := r.set.Models[core.Key(arch, renderer)]
	return m, ok
}

// Archs returns the sorted architectures with at least one model.
func (r *Registry) Archs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	if r.snap != nil {
		for _, d := range r.snap.Models {
			if !seen[d.Arch] {
				seen[d.Arch] = true
				out = append(out, d.Arch)
			}
		}
	}
	sort.Strings(out)
	return out
}

// View is an immutable, internally consistent snapshot of the registry
// state: the model set, the mapping calibrated with it, and the
// generation they were loaded under. Callers that make several dependent
// evaluations (map inputs, then predict; a whole feasibility curve) take
// one View so a concurrent hot reload cannot mix old-mapping inputs with
// new-model coefficients mid-request.
type View struct {
	reg     *Registry
	snap    *Snapshot
	set     *core.ModelSet
	mapping core.Mapping
	gen     uint64
}

// View captures the current consistent state, erroring when empty.
func (r *Registry) View() (View, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.set == nil {
		return View{}, fmt.Errorf("registry: no snapshot loaded")
	}
	return View{reg: r, snap: r.snap, set: r.set, mapping: r.mapping, gen: r.generation}, nil
}

// Mapping returns the view's calibrated configuration mapping.
func (v View) Mapping() core.Mapping { return v.mapping }

// Generation returns the load generation this view was taken at.
func (v View) Generation() uint64 { return v.gen }

// Snapshot returns the snapshot document this view was taken from.
// Callers must not mutate it.
func (v View) Snapshot() *Snapshot { return v.snap }

// Predict evaluates the view's model for the given inputs, memoizing
// through the registry's LRU cache under the view's generation.
func (v View) Predict(arch string, renderer core.Renderer, in core.Inputs) (PredictResult, error) {
	r := v.reg
	k := predKey{gen: v.gen, key: core.Key(arch, renderer), in: in}
	if res, ok := r.cache.Get(k); ok {
		r.hits.Add(1)
		return res, nil
	}
	m, ok := v.set.Models[k.key]
	if !ok {
		return PredictResult{}, fmt.Errorf("%w for %s", ErrNoModel, k.key)
	}
	res := PredictResult{
		RenderSeconds: m.Predict(in),
		BuildSeconds:  m.PredictBuild(in),
	}
	if in.Tasks > 1 && v.set.Compositing != nil {
		res.CompositeSeconds = v.set.Compositing.Predict(in)
	}
	r.misses.Add(1)
	r.cache.Add(k, res)
	return res, nil
}

// Predict evaluates the current model for the given inputs, memoizing
// through the LRU cache. The result separates render, build, and
// compositing time so callers can amortize the build over many images.
func (r *Registry) Predict(arch string, renderer core.Renderer, in core.Inputs) (PredictResult, error) {
	v, err := r.View()
	if err != nil {
		return PredictResult{}, err
	}
	return v.Predict(arch, renderer, in)
}

// CacheStats reports prediction-cache effectiveness.
func (r *Registry) CacheStats() (hits, misses uint64, size int) {
	return r.hits.Load(), r.misses.Load(), r.cache.Len()
}

// LastReload returns when the registry last loaded a snapshot (zero time
// when never loaded).
func (r *Registry) LastReload() time.Time {
	ns := r.lastReload.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
