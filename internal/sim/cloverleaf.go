package sim

import (
	"math"

	"insitu/internal/conduit"
	"insitu/internal/vecmath"
)

// cloverleaf is the compressible Euler proxy on a rectilinear grid:
// node-collocated density, energy, and velocity advanced with a
// Lax-Friedrichs scheme from an energy-deposit initial condition, the
// CloverLeaf3D analogue.
type cloverleaf struct {
	n       int
	rank    int
	bounds  vecmath.AABB
	xs      []float64
	ys      []float64
	zs      []float64
	rho     []float64
	energy  []float64
	u, v, w []float64
	scratch []float64
	cycle   int
	time    float64
	dt      float64
	h       float64
}

func newCloverleaf(n int, bounds vecmath.AABB, rank int) *cloverleaf {
	s := &cloverleaf{n: n, rank: rank, bounds: bounds}
	s.xs = axisCoords(bounds.Min.X, bounds.Max.X, n, 1.15)
	s.ys = axisCoords(bounds.Min.Y, bounds.Max.Y, n, 1.0)
	s.zs = axisCoords(bounds.Min.Z, bounds.Max.Z, n, 0.9)
	np := n * n * n
	s.rho = make([]float64, np)
	s.energy = make([]float64, np)
	s.u = make([]float64, np)
	s.v = make([]float64, np)
	s.w = make([]float64, np)
	s.scratch = make([]float64, np)
	s.h = (bounds.Max.X - bounds.Min.X) / float64(n-1)
	s.dt = 0.12 * s.h
	// Initial condition: quiescent gas with a hot dense region at a
	// global location so multi-block runs form one coherent state.
	hot := vecmath.V(0.3, 0.4, 0.5)
	idx := 0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				p := vecmath.V(s.xs[i], s.ys[j], s.zs[k])
				d2 := p.Sub(hot).Length2()
				s.rho[idx] = 1 + 4*math.Exp(-d2/0.01)
				s.energy[idx] = 1 + 20*math.Exp(-d2/0.005)
				idx++
			}
		}
	}
	return s
}

// axisCoords builds mildly graded rectilinear coordinates (CloverLeaf
// meshes are rectilinear, not uniform).
func axisCoords(lo, hi float64, n int, grading float64) []float64 {
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		xs[i] = lo + (hi-lo)*math.Pow(t, grading)
	}
	return xs
}

func (s *cloverleaf) Name() string         { return "cloverleaf" }
func (s *cloverleaf) Cycle() int           { return s.cycle }
func (s *cloverleaf) Time() float64        { return s.time }
func (s *cloverleaf) PrimaryField() string { return "energy" }

func (s *cloverleaf) idx(i, j, k int) int { return (k*s.n+j)*s.n + i }

// Step advances one Lax-Friedrichs cycle of the collocated Euler system.
func (s *cloverleaf) Step() {
	n := s.n
	const gamma = 1.4
	inv2h := 1 / (2 * s.h)
	update := func(field, out []float64, advect bool) {
		for k := 0; k < n; k++ {
			km, kp := maxi(k-1, 0), mini(k+1, n-1)
			for j := 0; j < n; j++ {
				jm, jp := maxi(j-1, 0), mini(j+1, n-1)
				for i := 0; i < n; i++ {
					im, ip := maxi(i-1, 0), mini(i+1, n-1)
					c := s.idx(i, j, k)
					avg := (field[s.idx(im, j, k)] + field[s.idx(ip, j, k)] +
						field[s.idx(i, jm, k)] + field[s.idx(i, jp, k)] +
						field[s.idx(i, j, km)] + field[s.idx(i, j, kp)]) / 6
					val := 0.75*field[c] + 0.25*avg
					if advect {
						gx := (field[s.idx(ip, j, k)] - field[s.idx(im, j, k)]) * inv2h
						gy := (field[s.idx(i, jp, k)] - field[s.idx(i, jm, k)]) * inv2h
						gz := (field[s.idx(i, j, kp)] - field[s.idx(i, j, km)]) * inv2h
						val -= s.dt * (s.u[c]*gx + s.v[c]*gy + s.w[c]*gz)
					}
					out[c] = val
				}
			}
		}
		copy(field, out)
	}

	// Momentum update from the pressure gradient (p = (gamma-1) rho e).
	for k := 0; k < n; k++ {
		km, kp := maxi(k-1, 0), mini(k+1, n-1)
		for j := 0; j < n; j++ {
			jm, jp := maxi(j-1, 0), mini(j+1, n-1)
			for i := 0; i < n; i++ {
				im, ip := maxi(i-1, 0), mini(i+1, n-1)
				c := s.idx(i, j, k)
				press := func(ii int) float64 {
					return (gamma - 1) * s.rho[ii] * s.energy[ii]
				}
				rho := math.Max(s.rho[c], 1e-6)
				s.u[c] -= s.dt * (press(s.idx(ip, j, k)) - press(s.idx(im, j, k))) * inv2h / rho
				s.v[c] -= s.dt * (press(s.idx(i, jp, k)) - press(s.idx(i, jm, k))) * inv2h / rho
				s.w[c] -= s.dt * (press(s.idx(i, j, kp)) - press(s.idx(i, j, km))) * inv2h / rho
				// Mild drag keeps the proxy stable over long runs.
				s.u[c] *= 0.999
				s.v[c] *= 0.999
				s.w[c] *= 0.999
			}
		}
	}
	update(s.rho, s.scratch, true)
	update(s.energy, s.scratch, true)
	s.cycle++
	s.time += s.dt
}

// Publish describes the rectilinear block and its fields, zero-copy.
func (s *cloverleaf) Publish(node *conduit.Node) {
	publishState(node, s.Name(), s.cycle, s.time, s.rank)
	node.Set("coords/type", "rectilinear")
	node.SetExternal("coords/x", s.xs)
	node.SetExternal("coords/y", s.ys)
	node.SetExternal("coords/z", s.zs)
	node.Set("topology/type", "structured")
	node.Set("fields/energy/association", "vertex")
	node.Set("fields/energy/type", "scalar")
	node.SetExternal("fields/energy/values", s.energy)
	node.Set("fields/density/association", "vertex")
	node.Set("fields/density/type", "scalar")
	node.SetExternal("fields/density/values", s.rho)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
