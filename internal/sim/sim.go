// Package sim provides the three proxy physics applications the in situ
// study instruments, standing in for the paper's LULESH, Kripke, and
// CloverLeaf3D: a Lagrangian shock-hydrodynamics proxy on a 3-D
// unstructured hex mesh, a deterministic discrete-ordinates transport
// proxy on a 3-D uniform mesh, and a compressible Euler proxy on a 3-D
// rectilinear mesh. Each evolves a real (if simplified) numerical kernel
// and publishes its state through conduit's mesh conventions with
// zero-copy field references.
//
// Blocks are distributed over tasks with the same unit-domain
// decomposition the datasets use; boundary conditions are block-local
// (no halo exchange), which leaves per-cycle compute cost and the
// published data shapes representative without coupling tasks.
package sim

import (
	"fmt"

	"insitu/internal/conduit"
	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

// Simulation is one proxy application instance (one task's block).
type Simulation interface {
	// Name identifies the proxy ("cloverleaf", "kripke", "lulesh").
	Name() string
	// Step advances one simulation cycle.
	Step()
	// Cycle returns the completed cycle count.
	Cycle() int
	// Time returns the simulated time.
	Time() float64
	// Publish describes the current mesh and fields into node following
	// the conduit mesh conventions, using zero-copy external references.
	Publish(node *conduit.Node)
	// PrimaryField names the field plots default to.
	PrimaryField() string
}

// New builds a named proxy with n points per axis on this task's block of
// the unit domain.
func New(name string, n, tasks, rank int) (Simulation, error) {
	if n < 4 {
		return nil, fmt.Errorf("sim: block size %d too small (need >= 4)", n)
	}
	if rank < 0 || rank >= tasks {
		return nil, fmt.Errorf("sim: rank %d outside world of %d", rank, tasks)
	}
	bounds := mesh.BlockBounds(unitBounds(), tasks, rank)
	switch name {
	case "cloverleaf":
		return newCloverleaf(n, bounds, rank), nil
	case "kripke":
		return newKripke(n, bounds, rank), nil
	case "lulesh":
		return newLulesh(n, bounds, rank), nil
	}
	return nil, fmt.Errorf("sim: unknown proxy %q (have cloverleaf, kripke, lulesh)", name)
}

// Names returns the available proxy names.
func Names() []string { return []string{"cloverleaf", "kripke", "lulesh"} }

// Structured reports whether a proxy publishes a structured block.
// The Euler proxy publishes rectilinear coordinates and the transport
// proxy uniform ones; the Lagrangian proxy publishes an explicit
// unstructured hex mesh, which structured-only rendering backends
// cannot consume (the paper's "not all combinations made sense").
//
//insitu:noalloc
func Structured(name string) bool { return name != "lulesh" }

func unitBounds() vecmath.AABB {
	return vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(1, 1, 1)}
}

// publishState writes the common state block.
func publishState(node *conduit.Node, name string, cycle int, t float64, rank int) {
	node.Set("state/name", name)
	node.Set("state/cycle", cycle)
	node.Set("state/time", t)
	node.Set("state/domain", rank)
}
