package sim

import (
	"math"
	"sync"

	"insitu/internal/conduit"
	"insitu/internal/vecmath"
)

// kripke is the deterministic discrete-ordinates transport proxy on a
// uniform grid: eight octant directions sweep angular flux through an
// absorbing medium with a rotating beam source; the published scalar flux
// is the direction-weighted sum. The Kripke analogue.
type kripke struct {
	n      int
	rank   int
	bounds vecmath.AABB
	origin vecmath.Vec3
	h      float64
	sigma  []float64 // absorption cross-section per node
	phi    []float64 // scalar flux (published)
	psi    [][]float64
	cycle  int
	time   float64
}

// octants are the eight diagonal sweep directions.
var octants = [8][3]int{
	{1, 1, 1}, {-1, 1, 1}, {1, -1, 1}, {-1, -1, 1},
	{1, 1, -1}, {-1, 1, -1}, {1, -1, -1}, {-1, -1, -1},
}

func newKripke(n int, bounds vecmath.AABB, rank int) *kripke {
	s := &kripke{n: n, rank: rank, bounds: bounds, origin: bounds.Min}
	s.h = (bounds.Max.X - bounds.Min.X) / float64(n-1)
	np := n * n * n
	s.sigma = make([]float64, np)
	s.phi = make([]float64, np)
	s.psi = make([][]float64, len(octants))
	for d := range s.psi {
		s.psi[d] = make([]float64, np)
	}
	// Heterogeneous absorber: a dense slab plus lattice pins, the classic
	// transport benchmark geometry.
	idx := 0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				p := s.point(i, j, k)
				sig := 0.4
				if p.Y > 0.45 && p.Y < 0.55 {
					sig = 4.0 // slab
				}
				// Pin lattice in x/z.
				fx := p.X*8 - math.Floor(p.X*8)
				fz := p.Z*8 - math.Floor(p.Z*8)
				if (fx-0.5)*(fx-0.5)+(fz-0.5)*(fz-0.5) < 0.04 {
					sig += 2.5
				}
				s.sigma[idx] = sig
				idx++
			}
		}
	}
	return s
}

func (s *kripke) point(i, j, k int) vecmath.Vec3 {
	return vecmath.V(
		s.origin.X+s.h*float64(i),
		s.origin.Y+s.h*float64(j),
		s.origin.Z+s.h*float64(k),
	)
}

func (s *kripke) Name() string         { return "kripke" }
func (s *kripke) Cycle() int           { return s.cycle }
func (s *kripke) Time() float64        { return s.time }
func (s *kripke) PrimaryField() string { return "phi" }

func (s *kripke) idx(i, j, k int) int { return (k*s.n+j)*s.n + i }

// Step performs one source iteration: a sweep per octant (octants run
// concurrently; each sweep is sequential in its direction, the defining
// dependency structure of Sn transport).
func (s *kripke) Step() {
	n := s.n
	// The beam source rotates so the field evolves between cycles.
	angle := float64(s.cycle) * 0.15
	src := vecmath.V(0.5+0.3*math.Cos(angle), 0.2, 0.5+0.3*math.Sin(angle))

	var wg sync.WaitGroup
	wg.Add(len(octants))
	for d := range octants {
		go func(d int) {
			defer wg.Done()
			oct := octants[d]
			psi := s.psi[d]
			i0, i1, di := sweepRange(n, oct[0])
			j0, j1, dj := sweepRange(n, oct[1])
			k0, k1, dk := sweepRange(n, oct[2])
			c := 1 / s.h
			for k := k0; k != k1; k += dk {
				for j := j0; j != j1; j += dj {
					for i := i0; i != i1; i += di {
						id := s.idx(i, j, k)
						p := s.point(i, j, k)
						q := 12 * math.Exp(-p.Sub(src).Length2()/0.004)
						var inX, inY, inZ float64
						if i-di >= 0 && i-di < n {
							inX = psi[s.idx(i-di, j, k)]
						}
						if j-dj >= 0 && j-dj < n {
							inY = psi[s.idx(i, j-dj, k)]
						}
						if k-dk >= 0 && k-dk < n {
							inZ = psi[s.idx(i, j, k-dk)]
						}
						psi[id] = (q + c*(inX+inY+inZ)) / (s.sigma[id] + 3*c)
					}
				}
			}
		}(d)
	}
	wg.Wait()

	// Scalar flux: equal-weight quadrature over octants.
	w := 1.0 / float64(len(octants))
	for i := range s.phi {
		var sum float64
		for d := range s.psi {
			sum += s.psi[d][i]
		}
		s.phi[i] = sum * w
	}
	s.cycle++
	s.time += 1
}

// Publish describes the uniform block and the scalar flux, zero-copy.
func (s *kripke) Publish(node *conduit.Node) {
	publishState(node, s.Name(), s.cycle, s.time, s.rank)
	node.Set("coords/type", "uniform")
	node.Set("coords/dims/i", s.n)
	node.Set("coords/dims/j", s.n)
	node.Set("coords/dims/k", s.n)
	node.Set("coords/origin/x", s.origin.X)
	node.Set("coords/origin/y", s.origin.Y)
	node.Set("coords/origin/z", s.origin.Z)
	node.Set("coords/spacing/dx", s.h)
	node.Set("coords/spacing/dy", s.h)
	node.Set("coords/spacing/dz", s.h)
	node.Set("topology/type", "structured")
	node.Set("fields/phi/association", "vertex")
	node.Set("fields/phi/type", "scalar")
	node.SetExternal("fields/phi/values", s.phi)
	node.Set("fields/sigma/association", "vertex")
	node.Set("fields/sigma/type", "scalar")
	node.SetExternal("fields/sigma/values", s.sigma)
}

func sweepRange(n, dir int) (int, int, int) {
	if dir > 0 {
		return 0, n, 1
	}
	return n - 1, -1, -1
}
