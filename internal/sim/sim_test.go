package sim

import (
	"math"
	"testing"

	"insitu/internal/conduit"
)

func TestUnknownProxyRejected(t *testing.T) {
	if _, err := New("nope", 8, 1, 0); err == nil {
		t.Error("expected error for unknown proxy")
	}
	if _, err := New("kripke", 2, 1, 0); err == nil {
		t.Error("expected error for tiny block")
	}
	if _, err := New("kripke", 8, 2, 5); err == nil {
		t.Error("expected error for bad rank")
	}
}

func TestAllProxiesStepAndStayFinite(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, 10, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("name = %q", s.Name())
		}
		for cyc := 0; cyc < 5; cyc++ {
			s.Step()
		}
		if s.Cycle() != 5 {
			t.Errorf("%s: cycle = %d", name, s.Cycle())
		}
		if s.Time() <= 0 {
			t.Errorf("%s: time = %v", name, s.Time())
		}
		node := conduit.NewNode()
		s.Publish(node)
		field := "fields/" + s.PrimaryField() + "/values"
		vals, err := node.Float64Slice(field)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		varied := false
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: value %d not finite: %v", name, i, v)
			}
			if i > 0 && v != vals[0] {
				varied = true
			}
		}
		if !varied {
			t.Errorf("%s: primary field is constant after 5 cycles", name)
		}
	}
}

func TestFieldsEvolve(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, 10, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		node := conduit.NewNode()
		s.Publish(node)
		before, err := node.Float64Slice("fields/" + s.PrimaryField() + "/values")
		if err != nil {
			t.Fatal(err)
		}
		snapshot := append([]float64(nil), before...)
		for i := 0; i < 3; i++ {
			s.Step()
		}
		diff := 0.0
		for i := range snapshot {
			diff += math.Abs(before[i] - snapshot[i])
		}
		if diff == 0 {
			t.Errorf("%s: field did not evolve (zero-copy publish should expose changes)", name)
		}
	}
}

func TestPublishIsZeroCopy(t *testing.T) {
	s, err := New("kripke", 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	node := conduit.NewNode()
	s.Publish(node)
	leaf, ok := node.Get("fields/phi/values")
	if !ok || !leaf.External() {
		t.Error("primary field should be published external (zero-copy)")
	}
}

func TestStatePublished(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, 8, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		s.Step()
		node := conduit.NewNode()
		s.Publish(node)
		if v, err := node.Int("state/cycle"); err != nil || v != 1 {
			t.Errorf("%s: cycle = %v, %v", name, v, err)
		}
		if v, err := node.Int("state/domain"); err != nil || v != 2 {
			t.Errorf("%s: domain = %v, %v", name, v, err)
		}
		if v, err := node.String("state/name"); err != nil || v != name {
			t.Errorf("%s: name = %v, %v", name, v, err)
		}
	}
}

func TestBlocksAreDisjoint(t *testing.T) {
	// With 2 tasks, the blocks must not overlap in space.
	a, err := New("cloverleaf", 8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("cloverleaf", 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	na, nb := conduit.NewNode(), conduit.NewNode()
	a.Publish(na)
	b.Publish(nb)
	xa, _ := na.Float64Slice("coords/x")
	xb, _ := nb.Float64Slice("coords/x")
	if xa[len(xa)-1] > xb[0]+1e-12 && xb[len(xb)-1] > xa[0]+1e-12 {
		// Overlapping x-ranges are fine if split along another axis; check
		// that at least one axis separates them.
		ya, _ := na.Float64Slice("coords/y")
		yb, _ := nb.Float64Slice("coords/y")
		za, _ := na.Float64Slice("coords/z")
		zb, _ := nb.Float64Slice("coords/z")
		sep := xa[len(xa)-1] <= xb[0]+1e-12 || xb[len(xb)-1] <= xa[0]+1e-12 ||
			ya[len(ya)-1] <= yb[0]+1e-12 || yb[len(yb)-1] <= ya[0]+1e-12 ||
			za[len(za)-1] <= zb[0]+1e-12 || zb[len(zb)-1] <= za[0]+1e-12
		if !sep {
			t.Error("blocks of ranks 0 and 1 overlap")
		}
	}
}

func TestLuleshMeshDeforms(t *testing.T) {
	s, err := New("lulesh", 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	node := conduit.NewNode()
	s.Publish(node)
	xs, _ := node.Float64Slice("coords/x")
	x0 := append([]float64(nil), xs...)
	for i := 0; i < 10; i++ {
		s.Step()
	}
	moved := 0.0
	for i := range xs {
		moved += math.Abs(xs[i] - x0[i])
	}
	if moved == 0 {
		t.Error("Lagrangian mesh did not move")
	}
	for i := range xs {
		if math.IsNaN(xs[i]) {
			t.Fatal("node position went NaN")
		}
	}
}
