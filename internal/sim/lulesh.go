package sim

import (
	"math"

	"insitu/internal/conduit"
	"insitu/internal/mesh"
	"insitu/internal/vecmath"
)

// lulesh is the Lagrangian shock-hydrodynamics proxy: an unstructured hex
// mesh whose nodes move with the flow of a point-energy (Sedov-style)
// blast. Cell energy drives pressure, pressure gradients accelerate
// nodes, and the mesh deforms — publishing explicit coordinates, hex
// connectivity, an element-centered energy field, and a node-centered
// pressure field. The LULESH analogue.
type lulesh struct {
	n          int // nodes per axis
	rank       int
	bounds     vecmath.AABB
	x, y, z    []float64 // node coordinates (move every cycle)
	vx, vy, vz []float64
	conn       []int32   // hex connectivity
	e          []float64 // element energy
	p          []float64 // node pressure (derived each cycle)
	scratch    []float64
	cycle      int
	time       float64
	dt         float64
}

func newLulesh(n int, bounds vecmath.AABB, rank int) *lulesh {
	g := mesh.NewUniformGrid(n, n, n, bounds)
	np := g.NumPoints()
	s := &lulesh{n: n, rank: rank, bounds: bounds, dt: 2e-4}
	s.x = make([]float64, np)
	s.y = make([]float64, np)
	s.z = make([]float64, np)
	s.vx = make([]float64, np)
	s.vy = make([]float64, np)
	s.vz = make([]float64, np)
	s.p = make([]float64, np)
	idx := 0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				pt := g.Point(i, j, k)
				s.x[idx], s.y[idx], s.z[idx] = pt.X, pt.Y, pt.Z
				idx++
			}
		}
	}
	s.conn = g.HexConnectivity()
	nhex := len(s.conn) / 8
	s.e = make([]float64, nhex)
	s.scratch = make([]float64, nhex)
	// Sedov deposit: energy in the cells nearest the global blast origin.
	origin := vecmath.V(0.5, 0.5, 0.5)
	for h := 0; h < nhex; h++ {
		c := s.cellCenter(h)
		d2 := c.Sub(origin).Length2()
		s.e[h] = 0.02 + 30*math.Exp(-d2/0.002)
	}
	return s
}

func (s *lulesh) cellCenter(h int) vecmath.Vec3 {
	var cx, cy, cz float64
	for c := 0; c < 8; c++ {
		v := s.conn[8*h+c]
		cx += s.x[v]
		cy += s.y[v]
		cz += s.z[v]
	}
	return vecmath.V(cx/8, cy/8, cz/8)
}

func (s *lulesh) Name() string         { return "lulesh" }
func (s *lulesh) Cycle() int           { return s.cycle }
func (s *lulesh) Time() float64        { return s.time }
func (s *lulesh) PrimaryField() string { return "p" }

// cellIdx flattens structured cell coordinates; the proxy retains the
// block's logical structure even though it publishes unstructured hexes.
func (s *lulesh) cellIdx(i, j, k int) int {
	c := s.n - 1
	return (k*c+j)*c + i
}

// Step advances one Lagrangian cycle.
func (s *lulesh) Step() {
	const gamma = 1.4
	c := s.n - 1
	nhex := len(s.e)

	// Nodal forces from cell pressure: each cell pushes its corners away
	// from its center in proportion to pressure (a simplified hourglass-
	// free expansion force).
	for h := 0; h < nhex; h++ {
		press := (gamma - 1) * s.e[h]
		center := s.cellCenter(h)
		for cnr := 0; cnr < 8; cnr++ {
			v := s.conn[8*h+cnr]
			dir := vecmath.V(s.x[v], s.y[v], s.z[v]).Sub(center)
			l := dir.Length()
			if l < 1e-12 {
				continue
			}
			f := press / l
			s.vx[v] += s.dt * f * dir.X / l
			s.vy[v] += s.dt * f * dir.Y / l
			s.vz[v] += s.dt * f * dir.Z / l
		}
	}
	// Integrate node positions with drag; clamp to 2x the block bounds so
	// degenerate blow-ups cannot escape to infinity.
	for v := range s.x {
		s.vx[v] *= 0.995
		s.vy[v] *= 0.995
		s.vz[v] *= 0.995
		s.x[v] += s.dt * s.vx[v]
		s.y[v] += s.dt * s.vy[v]
		s.z[v] += s.dt * s.vz[v]
	}

	// Energy diffusion over the structured 6-neighborhood plus decay as
	// the blast does work on the mesh.
	for k := 0; k < c; k++ {
		for j := 0; j < c; j++ {
			for i := 0; i < c; i++ {
				id := s.cellIdx(i, j, k)
				sum, cnt := 0.0, 0.0
				for _, d := range [6][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
					ni, nj, nk := i+d[0], j+d[1], k+d[2]
					if ni < 0 || nj < 0 || nk < 0 || ni >= c || nj >= c || nk >= c {
						continue
					}
					sum += s.e[s.cellIdx(ni, nj, nk)]
					cnt++
				}
				avg := s.e[id]
				if cnt > 0 {
					avg = sum / cnt
				}
				s.scratch[id] = 0.995 * (0.9*s.e[id] + 0.1*avg)
			}
		}
	}
	copy(s.e, s.scratch)

	// Node pressure for plotting: element pressure averaged to nodes.
	const gammaM1 = gamma - 1
	for v := range s.p {
		s.p[v] = 0
	}
	counts := make([]float64, len(s.p))
	for h := 0; h < nhex; h++ {
		press := gammaM1 * s.e[h]
		for cnr := 0; cnr < 8; cnr++ {
			v := s.conn[8*h+cnr]
			s.p[v] += press
			counts[v]++
		}
	}
	for v := range s.p {
		if counts[v] > 0 {
			s.p[v] /= counts[v]
		}
	}
	s.cycle++
	s.time += s.dt
}

// Publish describes the deforming hex mesh, zero-copy: the coordinate and
// field arrays are referenced, not duplicated, so each cycle's Publish is
// cheap (the paper's R11).
func (s *lulesh) Publish(node *conduit.Node) {
	publishState(node, s.Name(), s.cycle, s.time, s.rank)
	node.Set("coords/type", "explicit")
	node.SetExternal("coords/x", s.x)
	node.SetExternal("coords/y", s.y)
	node.SetExternal("coords/z", s.z)
	node.Set("topology/type", "unstructured")
	node.Set("topology/elements/shape", "hexs")
	node.SetExternal("topology/elements/connectivity", s.conn)
	node.Set("fields/e/association", "element")
	node.Set("fields/e/type", "scalar")
	node.SetExternal("fields/e/values", s.e)
	node.Set("fields/p/association", "vertex")
	node.Set("fields/p/type", "scalar")
	node.SetExternal("fields/p/values", s.p)
}
