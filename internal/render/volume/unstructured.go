package volume

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// UnstructuredOptions configures the multi-pass tetrahedral sampler.
type UnstructuredOptions struct {
	Width, Height int
	Camera        render.Camera
	// SamplesZ is the number of samples in depth across the whole view
	// (the paper's S; it uses 1000 at 1024^2, default here 200).
	SamplesZ int
	// Passes splits the sample buffer in depth to bound memory; each pass
	// runs the four phases over its slab (default 1).
	Passes int
	// TF overrides the default transfer function.
	TF *framebuffer.TransferFunction
	// FieldRange fixes scalar normalization; zeros mean auto.
	FieldRange [2]float64
}

// UnstructuredStats reports the per-phase timings of Algorithm 2 plus
// workload measures.
type UnstructuredStats struct {
	Phases        render.Timings
	ActivePixels  int
	PassCount     int
	TetsProcessed int64 // sum of active tets over passes (the paper's m)
	TotalSamples  int64
	Objects       int
}

// UnstructuredRenderer renders one tetrahedral mesh. The renderer owns a
// frame arena — projection buffers, pass-selection flags, the slab sample
// buffer, accumulators, and the phase kernels — so steady-state frames
// perform no heap allocation; the returned image and stats are valid
// until the next Render call. Not safe for concurrent use.
type UnstructuredRenderer struct {
	Dev  *device.Device
	Mesh *mesh.TetMesh

	arena unstructuredArena
}

// NewUnstructured prepares a renderer.
func NewUnstructured(dev *device.Device, m *mesh.TetMesh) *UnstructuredRenderer {
	if m.ScalarMin == 0 && m.ScalarMax == 0 {
		m.UpdateScalarRange()
	}
	return &UnstructuredRenderer{Dev: dev, Mesh: m}
}

// sampleNaN is the empty-sample sentinel stored in the slab buffer.
var sampleNaN = math.Float32bits(float32(math.NaN()))

// screenTet is one tetrahedron in screen space with per-corner scalars.
type screenTet struct {
	x, y, z [4]float64
	s       [4]float64
}

// unstructuredArena is the renderer's persistent per-frame state.
type unstructuredArena struct {
	r *UnstructuredRenderer

	// Per-frame parameters.
	opts      UnstructuredOptions
	tf        *framebuffer.TransferFunction
	defaultTF *framebuffer.TransferFunction
	norm      render.Normalizer
	matrix    vecmath.Mat4
	view      vecmath.Mat4
	w, h      int
	dz        float64
	invDepth  float64
	depthLo   float64

	// Per-pass parameters.
	s0, s1           int
	slabSamples      int
	zPassLo, zPassHi float64

	// Projection buffers (per vertex).
	sx, sy, sz []float64
	behind     []bool
	// Initialization buffers (per tet).
	minZ, maxZ []float64
	valid      []bool
	flags      []bool
	// Pass working set.
	active  []int32
	work    []screenTet
	compact dpp.Compactor
	// Sample/accumulation buffers (per pixel).
	samples []uint32
	accum   []float64
	firstZ  []float64
	// touched is a per-pixel bitmask of "a sample was written this
	// pass"; compositing skips clean pixels instead of scanning their
	// all-empty slabs.
	touched []uint32

	img   framebuffer.Image
	stats UnstructuredStats

	passSamples atomic.Int64

	projectFn, normalizeFn, initTetsFn func(lo, hi int)
	flagsFn, gatherFn, sampleFn        func(lo, hi int)
	resetFn, compositeFn               func(lo, hi int)
}

func (a *unstructuredArena) init(r *UnstructuredRenderer) {
	if a.r != nil {
		return
	}
	a.r = r
	a.compact.Init(r.Dev)
	a.projectFn = a.projectKernel
	a.normalizeFn = a.normalizeKernel
	a.initTetsFn = a.initTetsKernel
	a.flagsFn = a.flagsKernel
	a.gatherFn = a.gatherKernel
	a.sampleFn = a.sampleKernel
	a.resetFn = a.resetKernel
	a.compositeFn = a.compositeKernel
}

// ensure sizes the arena for the mesh and frame geometry.
func (a *unstructuredArena) ensure(nverts, ntets, npix, slab int) {
	if cap(a.sx) < nverts {
		a.sx = make([]float64, nverts)
		a.sy = make([]float64, nverts)
		a.sz = make([]float64, nverts)
		a.behind = make([]bool, nverts)
	}
	a.sx, a.sy, a.sz, a.behind = a.sx[:nverts], a.sy[:nverts], a.sz[:nverts], a.behind[:nverts]
	if cap(a.minZ) < ntets {
		a.minZ = make([]float64, ntets)
		a.maxZ = make([]float64, ntets)
		a.valid = make([]bool, ntets)
		a.flags = make([]bool, ntets)
	}
	a.minZ, a.maxZ, a.valid, a.flags = a.minZ[:ntets], a.maxZ[:ntets], a.valid[:ntets], a.flags[:ntets]
	if cap(a.samples) < npix*slab {
		a.samples = make([]uint32, npix*slab)
	}
	a.samples = a.samples[:npix*slab]
	if cap(a.accum) < 4*npix {
		a.accum = make([]float64, 4*npix)
		a.firstZ = make([]float64, npix)
	}
	a.accum = a.accum[:4*npix]
	a.firstZ = a.firstZ[:npix]
	words := (npix + 31) / 32
	if cap(a.touched) < words {
		a.touched = make([]uint32, words)
	}
	a.touched = a.touched[:words]
	// Accumulators must start clean every frame: reused buffers would
	// otherwise leak the previous frame's opacity into this one.
	for i := range a.accum {
		a.accum[i] = 0
	}
	for i := range a.firstZ {
		a.firstZ[i] = math.Inf(1)
	}
}

// Render executes Algorithm 2: an initialization map computes each tet's
// depth-pass range; every pass then runs Pass Selection (threshold,
// reduce, scan, reverse-index, gather), Screen Space Transformation (map),
// Sampling (map over active tets into the slab's sample buffer), and
// Compositing (map over pixels), with early ray termination between
// passes. The returned image and stats are owned by the renderer's arena
// and valid until the next Render call.
//
//insitu:arena
func (r *UnstructuredRenderer) Render(opts UnstructuredOptions) (*framebuffer.Image, *UnstructuredStats, error) {
	if opts.Width <= 0 || opts.Height <= 0 {
		return nil, nil, fmt.Errorf("volume: invalid image size %dx%d", opts.Width, opts.Height)
	}
	if opts.SamplesZ <= 0 {
		opts.SamplesZ = 200
	}
	if opts.Passes <= 0 {
		opts.Passes = 1
	}
	if opts.Passes > opts.SamplesZ {
		opts.Passes = opts.SamplesZ
	}
	a := &r.arena
	a.init(r)
	a.opts = opts
	a.tf = opts.TF
	if a.tf == nil {
		if a.defaultTF == nil {
			a.defaultTF = framebuffer.DefaultTransferFunction()
		}
		a.tf = a.defaultTF
	}
	m := r.Mesh
	cam := opts.Camera.Normalized()
	stats := &a.stats
	stats.Phases.Reset()
	stats.PassCount = opts.Passes
	stats.Objects = m.NumTets()
	stats.ActivePixels, stats.TetsProcessed, stats.TotalSamples = 0, 0, 0
	a.img.EnsureSize(opts.Width, opts.Height)
	img := &a.img
	ntets := m.NumTets()
	if ntets == 0 {
		return img, stats, nil
	}

	lo, hi := opts.FieldRange[0], opts.FieldRange[1]
	if lo == 0 && hi == 0 {
		lo, hi = m.ScalarMin, m.ScalarMax
	}
	a.norm = render.Normalizer{Min: lo, Max: hi}

	a.matrix = cam.Matrix(opts.Width, opts.Height)
	a.view = vecmath.LookAt(cam.Position, cam.LookAt, cam.Up)
	a.w, a.h = opts.Width, opts.Height
	npix := a.w * a.h

	slabSamples := (opts.SamplesZ + opts.Passes - 1) / opts.Passes
	a.slabSamples = slabSamples
	nverts := m.NumVertices()
	a.ensure(nverts, ntets, npix, slabSamples)

	// Project all vertices once; tets index the projected coordinates.
	// Screen x/y come from the perspective transform; depth is the LINEAR
	// view-space distance normalized to the data's own depth extent — the
	// paper's setup of near/far planes "as close as possible without
	// clipping away data", which keeps the S depth samples inside the
	// volume instead of wasted on empty NDC range.
	startInit := time.Now()
	dpp.For(r.Dev, nverts, a.projectFn)
	// Normalize depths to [0,1] over the visible vertices.
	dlo, dhi := math.Inf(1), math.Inf(-1)
	for v := 0; v < nverts; v++ {
		if a.behind[v] {
			continue
		}
		dlo = math.Min(dlo, a.sz[v])
		dhi = math.Max(dhi, a.sz[v])
	}
	if !(dhi > dlo) {
		return img, stats, nil
	}
	a.depthLo = dlo
	a.invDepth = 1 / (dhi - dlo)
	dpp.For(r.Dev, nverts, a.normalizeFn)

	// Initialization: min/max NDC depth per tet, converted to pass range.
	dpp.For(r.Dev, ntets, a.initTetsFn)
	stats.Phases.Add("init", time.Since(startInit))

	a.dz = 1.0 / float64(opts.SamplesZ)

	for pass := 0; pass < opts.Passes; pass++ {
		a.s0 = pass * slabSamples
		a.s1 = minInt(a.s0+slabSamples, opts.SamplesZ)
		if a.s0 >= a.s1 {
			break
		}
		a.zPassLo = float64(a.s0) * a.dz
		a.zPassHi = float64(a.s1) * a.dz

		// Pass Selection: threshold map + compaction (reduce/scan/gather).
		start := time.Now()
		dpp.For(r.Dev, ntets, a.flagsFn)
		//insitu:leaselife-ok the arena field is itself frame-scoped; both reset on the next Render
		a.active = a.compact.CompactIndices(a.flags)
		stats.TetsProcessed += int64(len(a.active))
		stats.Phases.Add("passselect", time.Since(start))

		// Screen Space Transformation: gather active tets' projected
		// vertices into a compact working set.
		start = time.Now()
		if cap(a.work) < len(a.active) {
			a.work = make([]screenTet, len(a.active))
		}
		a.work = a.work[:len(a.active)]
		dpp.For(r.Dev, len(a.active), a.gatherFn)
		stats.Phases.Add("screenspace", time.Since(start))

		// Sampling: for every active tet, test every (pixel, depth sample)
		// in its screen bounding box with barycentric coordinates.
		start = time.Now()
		dpp.For(r.Dev, len(a.samples), a.resetFn)
		for i := range a.touched {
			a.touched[i] = 0
		}
		a.passSamples.Store(0)
		dpp.For(r.Dev, len(a.active), a.sampleFn)
		stats.TotalSamples += a.passSamples.Load()
		stats.Phases.Add("sampling", time.Since(start))

		// Compositing: fold the slab's samples into the per-pixel
		// accumulators front to back.
		start = time.Now()
		dpp.For(r.Dev, npix, a.compositeFn)
		stats.Phases.Add("composite", time.Since(start))
	}

	for p := 0; p < npix; p++ {
		if a.accum[4*p+3] > 0 {
			img.Set(p%a.w, p/a.w,
				float32(a.accum[4*p]), float32(a.accum[4*p+1]), float32(a.accum[4*p+2]), float32(a.accum[4*p+3]),
				float32(a.firstZ[p]))
		}
	}
	stats.ActivePixels = img.ActivePixels()
	return img, stats, nil
}

// projectKernel transforms vertices to screen space.
func (a *unstructuredArena) projectKernel(vlo, vhi int) {
	m := a.r.Mesh
	for v := vlo; v < vhi; v++ {
		p, pw := a.matrix.TransformPoint(m.Vertex(int32(v)))
		vp, _ := a.view.TransformPoint(m.Vertex(int32(v)))
		if pw <= 0 || vp.Z >= 0 {
			a.behind[v] = true
			// Reused buffers: clear the stale projection so no later
			// frame-dependent read sees last frame's coordinates.
			a.sx[v], a.sy[v], a.sz[v] = 0, 0, 0
			continue
		}
		a.behind[v] = false
		a.sx[v], a.sy[v], a.sz[v] = p.X, p.Y, -vp.Z
	}
}

// normalizeKernel maps visible depths to [0,1].
func (a *unstructuredArena) normalizeKernel(vlo, vhi int) {
	for v := vlo; v < vhi; v++ {
		if !a.behind[v] {
			a.sz[v] = (a.sz[v] - a.depthLo) * a.invDepth
		}
	}
}

// initTetsKernel computes each tet's screen bounds and depth-pass range.
func (a *unstructuredArena) initTetsKernel(tlo, thi int) {
	m := a.r.Mesh
	w, h := a.w, a.h
	for t := tlo; t < thi; t++ {
		zlo, zhi := math.Inf(1), math.Inf(-1)
		xlo, xhi := math.Inf(1), math.Inf(-1)
		ylo, yhi := math.Inf(1), math.Inf(-1)
		ok := true
		for c := 0; c < 4; c++ {
			v := m.Conn[4*t+c]
			if a.behind[v] {
				ok = false
				break
			}
			zlo = math.Min(zlo, a.sz[v])
			zhi = math.Max(zhi, a.sz[v])
			xlo = math.Min(xlo, a.sx[v])
			xhi = math.Max(xhi, a.sx[v])
			ylo = math.Min(ylo, a.sy[v])
			yhi = math.Max(yhi, a.sy[v])
		}
		if !ok || zhi < 0 || zlo > 1 || xhi < 0 || xlo >= float64(w) || yhi < 0 || ylo >= float64(h) {
			a.valid[t] = false
			a.minZ[t], a.maxZ[t] = 0, 0
			continue
		}
		a.valid[t] = true
		a.minZ[t] = zlo
		a.maxZ[t] = zhi
	}
}

// flagsKernel marks tets intersecting the current pass slab.
func (a *unstructuredArena) flagsKernel(tlo, thi int) {
	for t := tlo; t < thi; t++ {
		a.flags[t] = a.valid[t] && a.maxZ[t] >= a.zPassLo && a.minZ[t] < a.zPassHi
	}
}

// gatherKernel packs active tets' projected vertices.
func (a *unstructuredArena) gatherKernel(alo, ahi int) {
	m := a.r.Mesh
	for i := alo; i < ahi; i++ {
		t := int(a.active[i])
		var st screenTet
		for c := 0; c < 4; c++ {
			v := m.Conn[4*t+c]
			st.x[c], st.y[c], st.z[c] = a.sx[v], a.sy[v], a.sz[v]
			st.s[c] = m.Scalars[v]
		}
		a.work[i] = st
	}
}

// resetKernel refills the slab buffer with the empty sentinel.
func (a *unstructuredArena) resetKernel(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.samples[i] = sampleNaN
	}
}

// sampleKernel rasterizes active tets into the slab buffer.
func (a *unstructuredArena) sampleKernel(alo, ahi int) {
	var local int64
	for i := alo; i < ahi; i++ {
		local += sampleTet(&a.work[i], a.samples, a.accum, a.touched, a.w, a.h, a.s0, a.s1, a.slabSamples, a.dz)
	}
	a.passSamples.Add(local)
}

// compositeKernel folds the slab's samples into the pixel accumulators.
func (a *unstructuredArena) compositeKernel(plo, phi int) {
	refStep := 1.0 / 200
	dz := a.dz
	exp := dz / refStep
	s0, s1, slab := a.s0, a.s1, a.slabSamples
	for p := plo; p < phi; p++ {
		// Pixels no tet touched this pass have all-empty slabs: skip the
		// scan entirely (contributes nothing either way).
		if a.touched[p>>5]&(1<<uint(p&31)) == 0 {
			continue
		}
		acc := a.accum[4*p+3]
		if acc >= 0.99 {
			continue
		}
		cr, cg, cb := a.accum[4*p], a.accum[4*p+1], a.accum[4*p+2]
		for s := s0; s < s1; s++ {
			bits := a.samples[p*slab+(s-s0)]
			if bits == sampleNaN {
				continue
			}
			v := float64(math.Float32frombits(bits))
			sr, sg, sb, sa := a.tf.Sample(a.norm.Normalize(v))
			if sa <= 0 {
				continue
			}
			// Pow(x, 1) is exactly x: skip the call for the default
			// sample budget with identical results.
			om := 1 - sa
			if exp != 1 {
				om = math.Pow(om, exp)
			}
			sa = 1 - om
			wgt := (1 - acc) * sa
			cr += wgt * sr
			cg += wgt * sg
			cb += wgt * sb
			acc += wgt
			z := float64(s) * dz
			if z < a.firstZ[p] {
				a.firstZ[p] = z
			}
			if acc >= 0.99 {
				break
			}
		}
		a.accum[4*p], a.accum[4*p+1], a.accum[4*p+2], a.accum[4*p+3] = cr, cg, cb, acc
	}
}

// sampleTet rasterizes one screen-space tetrahedron into the slab buffer,
// returning the number of samples written. Samples are stored with atomic
// writes because tets sharing a face may both own a boundary sample;
// touched pixels are flagged in the bitmask the same way.
func sampleTet(st *screenTet, samples []uint32, accum []float64, touched []uint32, w, h, s0, s1, slabSamples int, dz float64) int64 {
	minX := int(math.Floor(min4(st.x)))
	maxX := int(math.Ceil(max4(st.x)))
	minY := int(math.Floor(min4(st.y)))
	maxY := int(math.Ceil(max4(st.y)))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > w-1 {
		maxX = w - 1
	}
	if maxY > h-1 {
		maxY = h - 1
	}
	zlo := math.Max(min4(st.z), float64(s0)*dz)
	zhi := math.Min(max4(st.z), float64(s1)*dz)
	slo := int(math.Ceil(zlo / dz))
	shi := int(math.Floor(zhi / dz))
	if slo < s0 {
		slo = s0
	}
	if shi >= s1 {
		shi = s1 - 1
	}
	if minX > maxX || minY > maxY || slo > shi {
		return 0
	}

	// Invert the barycentric system once per tet: p = v0 + M*(b1,b2,b3).
	var mmat [9]float64
	mmat[0] = st.x[1] - st.x[0]
	mmat[1] = st.x[2] - st.x[0]
	mmat[2] = st.x[3] - st.x[0]
	mmat[3] = st.y[1] - st.y[0]
	mmat[4] = st.y[2] - st.y[0]
	mmat[5] = st.y[3] - st.y[0]
	mmat[6] = st.z[1] - st.z[0]
	mmat[7] = st.z[2] - st.z[0]
	mmat[8] = st.z[3] - st.z[0]
	inv, ok := invert3(mmat)
	if !ok {
		return 0
	}

	const eps = -1e-9
	// Depth gradients of the barycentrics: b_i is affine in rz with
	// slope g_i, which lets each pixel narrow its depth scan to the
	// feasible interval before testing samples. Reciprocals are taken
	// once per tet so the per-pixel bound computation multiplies instead
	// of divides; the rounding difference is absorbed by the interval's
	// two-sample safety margin.
	g1, g2, g3 := inv[2], inv[5], inv[8]
	g0 := -(g1 + g2 + g3)
	gs := [4]float64{g0, g1, g2, g3}
	var igs [4]float64
	for c, g := range gs {
		if g > 1e-12 || g < -1e-12 {
			igs[c] = 1 / g
		}
	}

	var written int64
	for py := minY; py <= maxY; py++ {
		fy := float64(py) + 0.5
		for px := minX; px <= maxX; px++ {
			p := py*w + px
			// Early ray termination: skip already-opaque pixels.
			if accum[4*p+3] >= 0.99 {
				continue
			}
			fx := float64(px) + 0.5
			// Hoist the x/y partial sums of the barycentric dot products
			// out of the depth loop. Go's + is left-associative, so
			// (inv0*rx + inv1*ry) + inv2*rz is bit-identical to the
			// unhoisted three-term sum — the inner loop drops from nine
			// multiplies to three with no numeric change.
			rx := fx - st.x[0]
			ry := fy - st.y[0]
			u1 := inv[0]*rx + inv[1]*ry
			u2 := inv[3]*rx + inv[4]*ry
			u3 := inv[6]*rx + inv[7]*ry
			// Narrow the depth range by solving u_i + g_i*rz >= eps for
			// rz and intersecting the four half-lines. The float-derived
			// interval is widened by two whole samples and every
			// candidate inside it is still exactly re-tested, so the
			// emitted samples are identical to the full scan's;
			// near-constant barycentrics (tiny |g|) simply don't
			// constrain the interval.
			pLo, pHi := slo, shi
			u0 := 1 - u1 - u2 - u3
			us := [4]float64{u0, u1, u2, u3}
			rzLo, rzHi := math.Inf(-1), math.Inf(1)
			infeasible := false
			for c := 0; c < 4; c++ {
				u, g := us[c], gs[c]
				if g > 1e-12 {
					if bound := (eps - u) * igs[c]; bound > rzLo {
						rzLo = bound
					}
				} else if g < -1e-12 {
					if bound := (eps - u) * igs[c]; bound < rzHi {
						rzHi = bound
					}
				} else if u < eps-1e-9 {
					// Constant and clearly infeasible: no sample passes.
					infeasible = true
					break
				}
			}
			if infeasible || rzLo > rzHi {
				continue
			}
			if !math.IsInf(rzLo, -1) {
				if sA := int(math.Floor((rzLo+st.z[0])/dz)) - 2; sA > pLo {
					pLo = sA
				}
			}
			if !math.IsInf(rzHi, 1) {
				if sB := int(math.Ceil((rzHi+st.z[0])/dz)) + 2; sB < pHi {
					pHi = sB
				}
			}
			wrote := false
			for s := pLo; s <= pHi; s++ {
				fz := float64(s) * dz
				rz := fz - st.z[0]
				b1 := u1 + g1*rz
				b2 := u2 + g2*rz
				b3 := u3 + g3*rz
				b0 := 1 - b1 - b2 - b3
				if b0 < eps || b1 < eps || b2 < eps || b3 < eps {
					continue
				}
				val := b0*st.s[0] + b1*st.s[1] + b2*st.s[2] + b3*st.s[3]
				storeSample(&samples[p*slabSamples+(s-s0)], math.Float32bits(float32(val)))
				written++
				wrote = true
			}
			if wrote {
				atomic.OrUint32(&touched[p>>5], 1<<uint(p&31))
			}
		}
	}
	return written
}

// storeSample merges one sample into a slab slot. Adjacent tets may both
// own a boundary sample and, interpolating through their own barycentric
// inverses, produce values differing in the last ulp — a plain store
// would make the image depend on write order. The merge keeps the
// largest bit pattern (the sentinel always loses), a commutative,
// associative rule, so the slab content is schedule-independent and the
// parallel-vs-serial byte-identical guarantee holds.
func storeSample(addr *uint32, bits uint32) {
	for {
		cur := atomic.LoadUint32(addr)
		if cur != sampleNaN && cur >= bits {
			return
		}
		if atomic.CompareAndSwapUint32(addr, cur, bits) {
			return
		}
	}
}

// invert3 inverts a row-major 3x3 matrix.
func invert3(m [9]float64) ([9]float64, bool) {
	a, b, c := m[0], m[1], m[2]
	d, e, f := m[3], m[4], m[5]
	g, h, i := m[6], m[7], m[8]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	if math.Abs(det) < 1e-18 {
		return m, false
	}
	inv := 1 / det
	return [9]float64{
		(e*i - f*h) * inv, (c*h - b*i) * inv, (b*f - c*e) * inv,
		(f*g - d*i) * inv, (a*i - c*g) * inv, (c*d - a*f) * inv,
		(d*h - e*g) * inv, (b*g - a*h) * inv, (a*e - b*d) * inv,
	}, true
}

func min4(v [4]float64) float64 {
	return math.Min(math.Min(v[0], v[1]), math.Min(v[2], v[3]))
}

func max4(v [4]float64) float64 {
	return math.Max(math.Max(v[0], v[1]), math.Max(v[2], v[3]))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
