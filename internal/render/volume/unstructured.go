package volume

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// UnstructuredOptions configures the multi-pass tetrahedral sampler.
type UnstructuredOptions struct {
	Width, Height int
	Camera        render.Camera
	// SamplesZ is the number of samples in depth across the whole view
	// (the paper's S; it uses 1000 at 1024^2, default here 200).
	SamplesZ int
	// Passes splits the sample buffer in depth to bound memory; each pass
	// runs the four phases over its slab (default 1).
	Passes int
	// TF overrides the default transfer function.
	TF *framebuffer.TransferFunction
	// FieldRange fixes scalar normalization; zeros mean auto.
	FieldRange [2]float64
}

// UnstructuredStats reports the per-phase timings of Algorithm 2 plus
// workload measures.
type UnstructuredStats struct {
	Phases        render.Timings
	ActivePixels  int
	PassCount     int
	TetsProcessed int64 // sum of active tets over passes (the paper's m)
	TotalSamples  int64
	Objects       int
}

// UnstructuredRenderer renders one tetrahedral mesh.
type UnstructuredRenderer struct {
	Dev  *device.Device
	Mesh *mesh.TetMesh
}

// NewUnstructured prepares a renderer.
func NewUnstructured(dev *device.Device, m *mesh.TetMesh) *UnstructuredRenderer {
	if m.ScalarMin == 0 && m.ScalarMax == 0 {
		m.UpdateScalarRange()
	}
	return &UnstructuredRenderer{Dev: dev, Mesh: m}
}

// sampleNaN is the empty-sample sentinel stored in the slab buffer.
var sampleNaN = math.Float32bits(float32(math.NaN()))

// screenTet is one tetrahedron in screen space with per-corner scalars.
type screenTet struct {
	x, y, z [4]float64
	s       [4]float64
}

// Render executes Algorithm 2: an initialization map computes each tet's
// depth-pass range; every pass then runs Pass Selection (threshold,
// reduce, scan, reverse-index, gather), Screen Space Transformation (map),
// Sampling (map over active tets into the slab's sample buffer), and
// Compositing (map over pixels), with early ray termination between
// passes.
func (r *UnstructuredRenderer) Render(opts UnstructuredOptions) (*framebuffer.Image, *UnstructuredStats, error) {
	if opts.Width <= 0 || opts.Height <= 0 {
		return nil, nil, fmt.Errorf("volume: invalid image size %dx%d", opts.Width, opts.Height)
	}
	if opts.SamplesZ <= 0 {
		opts.SamplesZ = 200
	}
	if opts.Passes <= 0 {
		opts.Passes = 1
	}
	if opts.Passes > opts.SamplesZ {
		opts.Passes = opts.SamplesZ
	}
	tf := opts.TF
	if tf == nil {
		tf = framebuffer.DefaultTransferFunction()
	}
	m := r.Mesh
	cam := opts.Camera.Normalized()
	stats := &UnstructuredStats{PassCount: opts.Passes, Objects: m.NumTets()}
	img := framebuffer.NewImage(opts.Width, opts.Height)
	ntets := m.NumTets()
	if ntets == 0 {
		return img, stats, nil
	}

	lo, hi := opts.FieldRange[0], opts.FieldRange[1]
	if lo == 0 && hi == 0 {
		lo, hi = m.ScalarMin, m.ScalarMax
	}
	norm := render.Normalizer{Min: lo, Max: hi}

	matrix := cam.Matrix(opts.Width, opts.Height)
	view := vecmath.LookAt(cam.Position, cam.LookAt, cam.Up)
	w, h := opts.Width, opts.Height
	npix := w * h

	// Project all vertices once; tets index the projected coordinates.
	// Screen x/y come from the perspective transform; depth is the LINEAR
	// view-space distance normalized to the data's own depth extent — the
	// paper's setup of near/far planes "as close as possible without
	// clipping away data", which keeps the S depth samples inside the
	// volume instead of wasted on empty NDC range.
	nverts := m.NumVertices()
	sx := make([]float64, nverts)
	sy := make([]float64, nverts)
	sz := make([]float64, nverts)
	behind := make([]bool, nverts)
	startInit := time.Now()
	dpp.For(r.Dev, nverts, func(vlo, vhi int) {
		for v := vlo; v < vhi; v++ {
			p, pw := matrix.TransformPoint(m.Vertex(int32(v)))
			vp, _ := view.TransformPoint(m.Vertex(int32(v)))
			if pw <= 0 || vp.Z >= 0 {
				behind[v] = true
				continue
			}
			sx[v], sy[v], sz[v] = p.X, p.Y, -vp.Z
		}
	})
	// Normalize depths to [0,1] over the visible vertices.
	dlo, dhi := math.Inf(1), math.Inf(-1)
	for v := 0; v < nverts; v++ {
		if behind[v] {
			continue
		}
		dlo = math.Min(dlo, sz[v])
		dhi = math.Max(dhi, sz[v])
	}
	if !(dhi > dlo) {
		return img, stats, nil
	}
	invDepth := 1 / (dhi - dlo)
	dpp.For(r.Dev, nverts, func(vlo, vhi int) {
		for v := vlo; v < vhi; v++ {
			if !behind[v] {
				sz[v] = (sz[v] - dlo) * invDepth
			}
		}
	})

	// Initialization: min/max NDC depth per tet, converted to pass range.
	minZ := make([]float64, ntets)
	maxZ := make([]float64, ntets)
	valid := make([]bool, ntets)
	dpp.For(r.Dev, ntets, func(tlo, thi int) {
		for t := tlo; t < thi; t++ {
			zlo, zhi := math.Inf(1), math.Inf(-1)
			xlo, xhi := math.Inf(1), math.Inf(-1)
			ylo, yhi := math.Inf(1), math.Inf(-1)
			ok := true
			for c := 0; c < 4; c++ {
				v := m.Conn[4*t+c]
				if behind[v] {
					ok = false
					break
				}
				zlo = math.Min(zlo, sz[v])
				zhi = math.Max(zhi, sz[v])
				xlo = math.Min(xlo, sx[v])
				xhi = math.Max(xhi, sx[v])
				ylo = math.Min(ylo, sy[v])
				yhi = math.Max(yhi, sy[v])
			}
			if !ok || zhi < 0 || zlo > 1 || xhi < 0 || xlo >= float64(w) || yhi < 0 || ylo >= float64(h) {
				valid[t] = false
				continue
			}
			valid[t] = true
			minZ[t] = zlo
			maxZ[t] = zhi
		}
	})
	stats.Phases.Add("init", time.Since(startInit))

	// The slab sample buffer holds float32 bits and is written atomically:
	// neighboring tets may both own a boundary sample.
	slabSamples := (opts.SamplesZ + opts.Passes - 1) / opts.Passes
	samples := make([]uint32, npix*slabSamples)

	// Accumulated premultiplied color per pixel across passes.
	accum := make([]float64, 4*npix)
	firstZ := make([]float64, npix)
	for i := range firstZ {
		firstZ[i] = math.Inf(1)
	}

	dz := 1.0 / float64(opts.SamplesZ)
	var totalSamples int64

	for pass := 0; pass < opts.Passes; pass++ {
		s0 := pass * slabSamples
		s1 := minInt(s0+slabSamples, opts.SamplesZ)
		if s0 >= s1 {
			break
		}
		zPassLo := float64(s0) * dz
		zPassHi := float64(s1) * dz

		// Pass Selection: threshold map + compaction (reduce/scan/gather).
		start := time.Now()
		flags := make([]bool, ntets)
		dpp.For(r.Dev, ntets, func(tlo, thi int) {
			for t := tlo; t < thi; t++ {
				flags[t] = valid[t] && maxZ[t] >= zPassLo && minZ[t] < zPassHi
			}
		})
		active := dpp.CompactIndices(r.Dev, flags)
		stats.TetsProcessed += int64(len(active))
		stats.Phases.Add("passselect", time.Since(start))

		// Screen Space Transformation: gather active tets' projected
		// vertices into a compact working set.
		start = time.Now()
		work := make([]screenTet, len(active))
		dpp.For(r.Dev, len(active), func(alo, ahi int) {
			for a := alo; a < ahi; a++ {
				t := int(active[a])
				var st screenTet
				for c := 0; c < 4; c++ {
					v := m.Conn[4*t+c]
					st.x[c], st.y[c], st.z[c] = sx[v], sy[v], sz[v]
					st.s[c] = m.Scalars[v]
				}
				work[a] = st
			}
		})
		stats.Phases.Add("screenspace", time.Since(start))

		// Sampling: for every active tet, test every (pixel, depth sample)
		// in its screen bounding box with barycentric coordinates.
		start = time.Now()
		resetSamples(r.Dev, samples)
		var passSamples int64
		dpp.For(r.Dev, len(active), func(alo, ahi int) {
			var local int64
			for a := alo; a < ahi; a++ {
				local += sampleTet(&work[a], samples, accum, w, h, s0, s1, slabSamples, dz)
			}
			atomic.AddInt64(&passSamples, local)
		})
		totalSamples += passSamples
		stats.Phases.Add("sampling", time.Since(start))

		// Compositing: fold the slab's samples into the per-pixel
		// accumulators front to back.
		start = time.Now()
		refStep := 1.0 / 200
		dpp.For(r.Dev, npix, func(plo, phi int) {
			for p := plo; p < phi; p++ {
				a := accum[4*p+3]
				if a >= 0.99 {
					continue
				}
				cr, cg, cb := accum[4*p], accum[4*p+1], accum[4*p+2]
				for s := s0; s < s1; s++ {
					bits := samples[p*slabSamples+(s-s0)]
					if bits == sampleNaN {
						continue
					}
					v := float64(math.Float32frombits(bits))
					sr, sg, sb, sa := tf.Sample(norm.Normalize(v))
					if sa <= 0 {
						continue
					}
					sa = 1 - math.Pow(1-sa, dz/refStep)
					wgt := (1 - a) * sa
					cr += wgt * sr
					cg += wgt * sg
					cb += wgt * sb
					a += wgt
					z := float64(s) * dz
					if z < firstZ[p] {
						firstZ[p] = z
					}
					if a >= 0.99 {
						break
					}
				}
				accum[4*p], accum[4*p+1], accum[4*p+2], accum[4*p+3] = cr, cg, cb, a
			}
		})
		stats.Phases.Add("composite", time.Since(start))
	}

	for p := 0; p < npix; p++ {
		if accum[4*p+3] > 0 {
			img.Set(p%w, p/w,
				float32(accum[4*p]), float32(accum[4*p+1]), float32(accum[4*p+2]), float32(accum[4*p+3]),
				float32(firstZ[p]))
		}
	}
	stats.TotalSamples = totalSamples
	stats.ActivePixels = img.ActivePixels()
	return img, stats, nil
}

// resetSamples refills the slab buffer with the empty sentinel.
func resetSamples(d *device.Device, samples []uint32) {
	dpp.For(d, len(samples), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			samples[i] = sampleNaN
		}
	})
}

// sampleTet rasterizes one screen-space tetrahedron into the slab buffer,
// returning the number of samples written. Samples are stored with atomic
// writes because tets sharing a face may both own a boundary sample.
func sampleTet(st *screenTet, samples []uint32, accum []float64, w, h, s0, s1, slabSamples int, dz float64) int64 {
	minX := int(math.Floor(min4(st.x)))
	maxX := int(math.Ceil(max4(st.x)))
	minY := int(math.Floor(min4(st.y)))
	maxY := int(math.Ceil(max4(st.y)))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > w-1 {
		maxX = w - 1
	}
	if maxY > h-1 {
		maxY = h - 1
	}
	zlo := math.Max(min4(st.z), float64(s0)*dz)
	zhi := math.Min(max4(st.z), float64(s1)*dz)
	slo := int(math.Ceil(zlo / dz))
	shi := int(math.Floor(zhi / dz))
	if slo < s0 {
		slo = s0
	}
	if shi >= s1 {
		shi = s1 - 1
	}
	if minX > maxX || minY > maxY || slo > shi {
		return 0
	}

	// Invert the barycentric system once per tet: p = v0 + M*(b1,b2,b3).
	var mmat [9]float64
	mmat[0] = st.x[1] - st.x[0]
	mmat[1] = st.x[2] - st.x[0]
	mmat[2] = st.x[3] - st.x[0]
	mmat[3] = st.y[1] - st.y[0]
	mmat[4] = st.y[2] - st.y[0]
	mmat[5] = st.y[3] - st.y[0]
	mmat[6] = st.z[1] - st.z[0]
	mmat[7] = st.z[2] - st.z[0]
	mmat[8] = st.z[3] - st.z[0]
	inv, ok := invert3(mmat)
	if !ok {
		return 0
	}

	var written int64
	for py := minY; py <= maxY; py++ {
		fy := float64(py) + 0.5
		for px := minX; px <= maxX; px++ {
			p := py*w + px
			// Early ray termination: skip already-opaque pixels.
			if accum[4*p+3] >= 0.99 {
				continue
			}
			fx := float64(px) + 0.5
			for s := slo; s <= shi; s++ {
				fz := float64(s) * dz
				rx := fx - st.x[0]
				ry := fy - st.y[0]
				rz := fz - st.z[0]
				b1 := inv[0]*rx + inv[1]*ry + inv[2]*rz
				b2 := inv[3]*rx + inv[4]*ry + inv[5]*rz
				b3 := inv[6]*rx + inv[7]*ry + inv[8]*rz
				b0 := 1 - b1 - b2 - b3
				const eps = -1e-9
				if b0 < eps || b1 < eps || b2 < eps || b3 < eps {
					continue
				}
				val := b0*st.s[0] + b1*st.s[1] + b2*st.s[2] + b3*st.s[3]
				atomic.StoreUint32(&samples[p*slabSamples+(s-s0)], math.Float32bits(float32(val)))
				written++
			}
		}
	}
	return written
}

// invert3 inverts a row-major 3x3 matrix.
func invert3(m [9]float64) ([9]float64, bool) {
	a, b, c := m[0], m[1], m[2]
	d, e, f := m[3], m[4], m[5]
	g, h, i := m[6], m[7], m[8]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	if math.Abs(det) < 1e-18 {
		return m, false
	}
	inv := 1 / det
	return [9]float64{
		(e*i - f*h) * inv, (c*h - b*i) * inv, (b*f - c*e) * inv,
		(f*g - d*i) * inv, (a*i - c*g) * inv, (c*d - a*f) * inv,
		(d*h - e*g) * inv, (b*g - a*h) * inv, (a*e - b*d) * inv,
	}, true
}

func min4(v [4]float64) float64 {
	return math.Min(math.Min(v[0], v[1]), math.Min(v[2], v[3]))
}

func max4(v [4]float64) float64 {
	return math.Max(math.Max(v[0], v[1]), math.Max(v[2], v[3]))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
