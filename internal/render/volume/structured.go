// Package volume implements the paper's two volume renderers: an
// image-order ray caster for structured grids (the renderer modeled in
// Chapter V as T = c0*(AP*CS) + c1*(AP*SPR) + c2) and the multi-pass
// data-parallel sampler for unstructured tetrahedral meshes from
// Chapter III (Algorithm 2).
package volume

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// StructuredOptions configures the structured-grid ray caster.
type StructuredOptions struct {
	Width, Height int
	Camera        render.Camera
	// Samples is the sample budget along a full diagonal crossing of the
	// volume (the paper uses 1000 for 1024^2 images; default 200).
	Samples int
	// TF overrides the default transfer function.
	TF *framebuffer.TransferFunction
	// FieldRange fixes scalar normalization; zeros mean auto. Distributed
	// renders must pass the global range so tasks color consistently.
	FieldRange [2]float64
}

// StructuredStats reports the timings and measured model inputs.
type StructuredStats struct {
	Phases       render.Timings
	ActivePixels int
	// TotalSamples counts in-volume samples taken, so SPR() is the
	// measured samples-per-ray model input.
	TotalSamples int64
	// CellsSpanned is the model's CS input: the cell count along the
	// grid's largest axis.
	CellsSpanned int
	Objects      int // cells, the model's O for volume rendering
}

// SPR returns average samples per active ray.
func (s *StructuredStats) SPR() float64 {
	if s.ActivePixels == 0 {
		return 0
	}
	return float64(s.TotalSamples) / float64(s.ActivePixels)
}

// StructuredRenderer ray-casts one structured grid. The renderer owns a
// frame arena (output image, stats, and the ray-cast kernel itself), so
// steady-state frames perform no heap allocation; the returned image and
// stats are valid until the next Render call. A StructuredRenderer is
// not safe for concurrent use.
type StructuredRenderer struct {
	Dev     *device.Device
	Grid    *mesh.StructuredGrid
	field   *mesh.Field
	sampler *gridSampler

	arena structuredArena
}

// structuredArena carries the per-frame parameters the ray-cast kernel
// reads plus the reused output buffers.
type structuredArena struct {
	r *StructuredRenderer

	opts          StructuredOptions
	cam           render.Camera
	raygen        render.RayGen
	tf            *framebuffer.TransferFunction
	defaultTF     *framebuffer.TransferFunction
	norm          render.Normalizer
	bounds        vecmath.AABB
	step, refStep float64

	img          framebuffer.Image
	stats        StructuredStats
	totalSamples atomic.Int64

	castFn func(lo, hi int)
}

func (a *structuredArena) init(r *StructuredRenderer) {
	if a.r != nil {
		return
	}
	a.r = r
	a.castFn = a.castKernel
}

// NewStructured prepares a renderer for the named vertex field. The
// trilinear sampler is built once here, not per frame.
func NewStructured(dev *device.Device, g *mesh.StructuredGrid, fieldName string) (*StructuredRenderer, error) {
	f, err := g.Field(fieldName)
	if err != nil {
		return nil, err
	}
	if f.Assoc != mesh.VertexAssoc {
		return nil, fmt.Errorf("volume: field %q must be vertex-associated", fieldName)
	}
	sampler, err := newGridSampler(g, f.Values)
	if err != nil {
		return nil, err
	}
	return &StructuredRenderer{Dev: dev, Grid: g, field: f, sampler: sampler}, nil
}

// Render casts one ray per pixel, sampling the field with trilinear
// interpolation and compositing front to back with early termination.
// The returned image and stats are owned by the renderer's arena and
// valid until the next Render call; Clone the image to retain it.
//
//insitu:arena
func (r *StructuredRenderer) Render(opts StructuredOptions) (*framebuffer.Image, *StructuredStats, error) {
	if opts.Width <= 0 || opts.Height <= 0 {
		return nil, nil, fmt.Errorf("volume: invalid image size %dx%d", opts.Width, opts.Height)
	}
	if opts.Samples <= 0 {
		opts.Samples = 200
	}
	a := &r.arena
	a.init(r)
	a.opts = opts
	a.tf = opts.TF
	if a.tf == nil {
		if a.defaultTF == nil {
			a.defaultTF = framebuffer.DefaultTransferFunction()
		}
		a.tf = a.defaultTF
	}
	a.cam = opts.Camera.Normalized()
	a.raygen = a.cam.NewRayGen(opts.Width, opts.Height)
	g := r.Grid
	cx, cy, cz := g.CellDims()
	stats := &a.stats
	stats.Phases.Reset()
	stats.CellsSpanned = maxInt(cx, maxInt(cy, cz))
	stats.Objects = g.NumCells()
	stats.ActivePixels, stats.TotalSamples = 0, 0
	a.img.EnsureSize(opts.Width, opts.Height)
	img := &a.img

	lo, hi := opts.FieldRange[0], opts.FieldRange[1]
	if lo == 0 && hi == 0 {
		var err error
		lo, hi, err = g.FieldRange(r.field.Name)
		if err != nil {
			return nil, nil, err
		}
	}
	a.norm = render.Normalizer{Min: lo, Max: hi}

	a.bounds = g.Bounds()
	diag := a.bounds.Diagonal().Length()
	if diag == 0 {
		return img, stats, nil
	}
	a.step = diag / float64(opts.Samples)
	// Opacity correction reference so pass/sample-count choices do not
	// change the converged image brightness.
	a.refStep = diag / 200

	start := time.Now()
	a.totalSamples.Store(0)
	dpp.For(r.Dev, opts.Width*opts.Height, a.castFn)
	stats.Phases.Add("sampling", time.Since(start))
	stats.TotalSamples = a.totalSamples.Load()
	stats.ActivePixels = img.ActivePixels()
	return img, stats, nil
}

// castKernel ray-casts one pixel range.
func (a *structuredArena) castKernel(plo, phi int) {
	opts := &a.opts
	sampler := a.r.sampler
	step := a.step
	exp := step / a.refStep
	var localSamples int64
	for p := plo; p < phi; p++ {
		px := float64(p % opts.Width)
		py := float64(p / opts.Width)
		ray := a.raygen.Ray(px, py, 0.5, 0.5)
		t0, t1, ok := a.bounds.HitRay(ray.Orig, ray.InvDir(), 0, math.Inf(1))
		if !ok {
			continue
		}
		var cr, cg, cb, ca float64
		firstT := float32(framebuffer.MaxDepth)
		for t := t0 + step/2; t < t1; t += step {
			pos := ray.At(t)
			v, inside := sampler.sample(pos)
			if !inside {
				continue
			}
			localSamples++
			sr, sg, sb, sa := a.tf.Sample(a.norm.Normalize(v))
			if sa <= 0 {
				continue
			}
			// Correct opacity for the step size, then front-to-back
			// "under" accumulation in premultiplied space. Pow(x, 1) is
			// exactly x, so the unit-exponent case (the default sample
			// budget) skips the call with identical results.
			om := 1 - sa
			if exp != 1 {
				om = math.Pow(om, exp)
			}
			sa = 1 - om
			w := (1 - ca) * sa
			cr += w * sr
			cg += w * sg
			cb += w * sb
			ca += w
			if firstT == framebuffer.MaxDepth {
				firstT = float32(t)
			}
			if ca >= 0.99 {
				break
			}
		}
		if ca > 0 {
			a.img.Set(int(px), int(py), float32(cr), float32(cg), float32(cb), float32(ca), firstT)
		}
	}
	a.totalSamples.Add(localSamples)
}

// gridSampler performs trilinear interpolation on uniform or rectilinear
// structured grids.
type gridSampler struct {
	g        *mesh.StructuredGrid
	vals     []float64
	uniform  bool
	invSpace vecmath.Vec3
}

func newGridSampler(g *mesh.StructuredGrid, vals []float64) (*gridSampler, error) {
	s := &gridSampler{g: g, vals: vals, uniform: g.XCoords == nil}
	if g.Nx < 2 || g.Ny < 2 || g.Nz < 2 {
		return nil, fmt.Errorf("volume: grid too small (%dx%dx%d)", g.Nx, g.Ny, g.Nz)
	}
	if s.uniform {
		sp := g.Spacing
		if sp.X <= 0 || sp.Y <= 0 || sp.Z <= 0 {
			return nil, fmt.Errorf("volume: non-positive spacing %v", sp)
		}
		s.invSpace = vecmath.V(1/sp.X, 1/sp.Y, 1/sp.Z)
	}
	return s, nil
}

// locate returns the cell index and intra-cell fraction along one axis.
func locateRect(coords []float64, v float64) (int, float64, bool) {
	n := len(coords)
	if v < coords[0] || v > coords[n-1] {
		return 0, 0, false
	}
	// sort.SearchFloat64s returns the first index with coords[i] >= v.
	i := sort.SearchFloat64s(coords, v)
	if i > 0 {
		i--
	}
	if i >= n-1 {
		i = n - 2
	}
	span := coords[i+1] - coords[i]
	f := 0.0
	if span > 0 {
		f = (v - coords[i]) / span
	}
	return i, f, true
}

// sample returns the trilinear field value at pos and whether pos is
// inside the grid.
func (s *gridSampler) sample(pos vecmath.Vec3) (float64, bool) {
	g := s.g
	var i, j, k int
	var fx, fy, fz float64
	if s.uniform {
		rel := pos.Sub(g.Origin).Mul(s.invSpace)
		if rel.X < 0 || rel.Y < 0 || rel.Z < 0 {
			return 0, false
		}
		i, j, k = int(rel.X), int(rel.Y), int(rel.Z)
		if i >= g.Nx-1 {
			if rel.X > float64(g.Nx-1)+1e-9 {
				return 0, false
			}
			i = g.Nx - 2
		}
		if j >= g.Ny-1 {
			if rel.Y > float64(g.Ny-1)+1e-9 {
				return 0, false
			}
			j = g.Ny - 2
		}
		if k >= g.Nz-1 {
			if rel.Z > float64(g.Nz-1)+1e-9 {
				return 0, false
			}
			k = g.Nz - 2
		}
		fx, fy, fz = rel.X-float64(i), rel.Y-float64(j), rel.Z-float64(k)
	} else {
		var ok bool
		i, fx, ok = locateRect(g.XCoords, pos.X)
		if !ok {
			return 0, false
		}
		j, fy, ok = locateRect(g.YCoords, pos.Y)
		if !ok {
			return 0, false
		}
		k, fz, ok = locateRect(g.ZCoords, pos.Z)
		if !ok {
			return 0, false
		}
	}
	v000 := s.vals[g.PointIndex(i, j, k)]
	v100 := s.vals[g.PointIndex(i+1, j, k)]
	v010 := s.vals[g.PointIndex(i, j+1, k)]
	v110 := s.vals[g.PointIndex(i+1, j+1, k)]
	v001 := s.vals[g.PointIndex(i, j, k+1)]
	v101 := s.vals[g.PointIndex(i+1, j, k+1)]
	v011 := s.vals[g.PointIndex(i, j+1, k+1)]
	v111 := s.vals[g.PointIndex(i+1, j+1, k+1)]
	c00 := v000 + fx*(v100-v000)
	c10 := v010 + fx*(v110-v010)
	c01 := v001 + fx*(v101-v001)
	c11 := v011 + fx*(v111-v011)
	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return c0 + fz*(c1-c0), true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
