package volume

import (
	"math"
	"testing"

	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

func plumeGrid(n int) *mesh.StructuredGrid {
	ds, _ := synthdata.ByName("nek")
	return synthdata.Grid(ds.FieldName, ds.Func, n, n, n, synthdata.UnitBounds())
}

func TestStructuredRenderBasics(t *testing.T) {
	g := plumeGrid(20)
	r, err := NewStructured(device.CPU(), g, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	opts := StructuredOptions{
		Width: 80, Height: 60,
		Camera:  render.OrbitCamera(g.Bounds(), 30, 20, 1.0),
		Samples: 120,
	}
	img, stats, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ActivePixels == 0 {
		t.Fatal("no active pixels")
	}
	if stats.SPR() <= 1 {
		t.Errorf("SPR = %v", stats.SPR())
	}
	if stats.CellsSpanned != 19 {
		t.Errorf("CS = %d", stats.CellsSpanned)
	}
	if stats.Objects != g.NumCells() {
		t.Errorf("objects = %d", stats.Objects)
	}
	// Alpha values are valid.
	for i := 3; i < len(img.Color); i += 4 {
		a := img.Color[i]
		if a < 0 || a > 1.0001 || math.IsNaN(float64(a)) {
			t.Fatalf("alpha[%d] = %v", i/4, a)
		}
	}
}

func TestStructuredDeterministicAcrossDevices(t *testing.T) {
	g := plumeGrid(14)
	opts := StructuredOptions{
		Width: 48, Height: 36,
		Camera:  render.OrbitCamera(g.Bounds(), 30, 20, 1.0),
		Samples: 80,
	}
	var ref []float32
	for _, dev := range []*device.Device{device.Serial(), device.New("w4", 4)} {
		r, err := NewStructured(dev, g, "temperature")
		if err != nil {
			t.Fatal(err)
		}
		img, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = img.Color
			continue
		}
		for i := range ref {
			if ref[i] != img.Color[i] {
				t.Fatalf("channel %d differs across devices", i)
			}
		}
	}
}

func TestStructuredSampleCountInvariance(t *testing.T) {
	// Opacity correction should keep brightness stable when the sample
	// budget changes.
	g := plumeGrid(16)
	r, err := NewStructured(device.CPU(), g, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	cam := render.OrbitCamera(g.Bounds(), 30, 20, 1.0)
	mean := func(samples int) float64 {
		img, _, err := r.Render(StructuredOptions{Width: 48, Height: 36, Camera: cam, Samples: samples})
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i := 3; i < len(img.Color); i += 4 {
			sum += float64(img.Color[i])
		}
		return sum
	}
	a100 := mean(100)
	a400 := mean(400)
	if a100 == 0 {
		t.Fatal("no opacity at all")
	}
	ratio := a400 / a100
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("alpha not sample-count invariant: ratio %v", ratio)
	}
}

func TestRectilinearMatchesUniform(t *testing.T) {
	// A rectilinear grid with uniform coordinates must sample identically
	// to the equivalent uniform grid.
	n := 12
	uni := plumeGrid(n)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n-1)
	}
	rect := mesh.NewRectilinearGrid(xs, xs, xs)
	f, _ := uni.Field("temperature")
	if err := rect.AddField("temperature", mesh.VertexAssoc, f.Values); err != nil {
		t.Fatal(err)
	}
	opts := StructuredOptions{
		Width: 32, Height: 24,
		Camera:  render.OrbitCamera(uni.Bounds(), 30, 20, 1.0),
		Samples: 60,
	}
	r1, err := NewStructured(device.Serial(), uni, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewStructured(device.Serial(), rect, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	img1, _, err := r1.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	img2, _, err := r2.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img1.Color {
		d := float64(img1.Color[i] - img2.Color[i])
		if math.Abs(d) > 1e-4 {
			t.Fatalf("rectilinear differs from uniform at channel %d: %v vs %v", i, img1.Color[i], img2.Color[i])
		}
	}
}

func TestUnstructuredRenderBasics(t *testing.T) {
	g := plumeGrid(10)
	tm, err := g.Tetrahedralize("temperature")
	if err != nil {
		t.Fatal(err)
	}
	r := NewUnstructured(device.CPU(), tm)
	opts := UnstructuredOptions{
		Width: 64, Height: 48,
		Camera:   render.OrbitCamera(g.Bounds(), 30, 20, 1.0),
		SamplesZ: 80,
	}
	img, stats, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ActivePixels == 0 {
		t.Fatal("no active pixels")
	}
	if stats.TotalSamples == 0 || stats.TetsProcessed == 0 {
		t.Errorf("samples=%d tets=%d", stats.TotalSamples, stats.TetsProcessed)
	}
	for _, phase := range []string{"init", "passselect", "screenspace", "sampling", "composite"} {
		if stats.Phases.Get(phase) <= 0 {
			t.Errorf("phase %q missing", phase)
		}
	}
	_ = img
}

func TestUnstructuredMultiPassMatchesSinglePass(t *testing.T) {
	g := plumeGrid(8)
	tm, err := g.Tetrahedralize("temperature")
	if err != nil {
		t.Fatal(err)
	}
	cam := render.OrbitCamera(g.Bounds(), 30, 20, 1.0)
	imgs := make([][]float32, 0, 3)
	var processed []int64
	for _, passes := range []int{1, 2, 4} {
		r := NewUnstructured(device.Serial(), tm)
		img, stats, err := r.Render(UnstructuredOptions{
			Width: 48, Height: 36, Camera: cam, SamplesZ: 64, Passes: passes,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.PassCount != passes {
			t.Errorf("pass count = %d", stats.PassCount)
		}
		imgs = append(imgs, img.Color)
		processed = append(processed, stats.TetsProcessed)
	}
	for p := 1; p < len(imgs); p++ {
		for i := range imgs[0] {
			d := math.Abs(float64(imgs[0][i] - imgs[p][i]))
			if d > 1e-4 {
				t.Fatalf("pass variant %d differs at channel %d by %v", p, i, d)
			}
		}
	}
	// More passes re-select tets, so the summed active count grows.
	if processed[2] < processed[0] {
		t.Errorf("4-pass processed %d < 1-pass %d", processed[2], processed[0])
	}
}

func TestUnstructuredMatchesStructuredCoverage(t *testing.T) {
	// Rendering the same field as a structured grid and as its
	// tetrahedralization must light up nearly the same pixels.
	g := plumeGrid(12)
	cam := render.OrbitCamera(g.Bounds(), 30, 20, 1.0)
	w, h := 48, 36
	rs, err := NewStructured(device.CPU(), g, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	imgS, _, err := rs.Render(StructuredOptions{Width: w, Height: h, Camera: cam, Samples: 64})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := g.Tetrahedralize("temperature")
	if err != nil {
		t.Fatal(err)
	}
	imgU, _, err := NewUnstructured(device.CPU(), tm).Render(UnstructuredOptions{
		Width: w, Height: h, Camera: cam, SamplesZ: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	both, either := 0, 0
	for i := 0; i < w*h; i++ {
		s := imgS.Color[4*i+3] > 0.02
		u := imgU.Color[4*i+3] > 0.02
		if s || u {
			either++
		}
		if s && u {
			both++
		}
	}
	if either == 0 {
		t.Fatal("no coverage")
	}
	if overlap := float64(both) / float64(either); overlap < 0.75 {
		t.Errorf("structured/unstructured coverage overlap %.2f", overlap)
	}
}

func TestStructuredInvalidInputs(t *testing.T) {
	g := plumeGrid(8)
	if _, err := NewStructured(device.CPU(), g, "missing"); err == nil {
		t.Error("expected missing-field error")
	}
	r, err := NewStructured(device.CPU(), g, "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Render(StructuredOptions{Width: 0, Height: 4}); err == nil {
		t.Error("expected invalid-size error")
	}
}

func TestUnstructuredEmptyMesh(t *testing.T) {
	r := NewUnstructured(device.CPU(), &mesh.TetMesh{})
	img, stats, err := r.Render(UnstructuredOptions{
		Width: 16, Height: 16,
		Camera: render.Camera{Position: vecmath.V(0, 0, 5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ActivePixels != 0 || img.ActivePixels() != 0 {
		t.Error("empty mesh should render nothing")
	}
}
