package raytrace

import (
	"math"
	"testing"

	"insitu/internal/device"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// testScene builds a small isosurface scene.
func testScene(t *testing.T, n int) *mesh.TriangleMesh {
	t.Helper()
	ds, err := synthdata.ByName("rm")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, n, n, n, synthdata.UnitBounds())
	m, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTriangles() == 0 {
		t.Fatal("empty scene")
	}
	return m
}

func defaultOptions(m *mesh.TriangleMesh, wl Workload) Options {
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	return Options{Width: 96, Height: 72, Camera: cam, Workload: wl}
}

func TestWorkload2ProducesImage(t *testing.T) {
	m := testScene(t, 16)
	r := New(device.CPU(), m)
	opts := defaultOptions(m, Workload2)
	img, stats, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ActivePixels == 0 {
		t.Fatal("no active pixels")
	}
	if stats.ActivePixels > opts.Width*opts.Height {
		t.Fatalf("active pixels %d exceed image", stats.ActivePixels)
	}
	if got := img.ActivePixels(); got != stats.ActivePixels {
		t.Errorf("stats AP %d != image AP %d", stats.ActivePixels, got)
	}
	// Phases recorded.
	for _, phase := range []string{"raygen", "traversal", "shade", "accumulate"} {
		if stats.Phases.Get(phase) <= 0 {
			t.Errorf("phase %q has no time", phase)
		}
	}
	if stats.PrimaryRays != opts.Width*opts.Height {
		t.Errorf("primary rays = %d", stats.PrimaryRays)
	}
	// Colors finite and in range.
	for i, c := range img.Color {
		if c < 0 || c > 4 || math.IsNaN(float64(c)) {
			t.Fatalf("color[%d] = %v", i, c)
		}
	}
}

func TestDeterministicAcrossDevices(t *testing.T) {
	m := testScene(t, 12)
	opts := Options{
		Width: 64, Height: 48,
		Camera:   render.OrbitCamera(m.Bounds(), 30, 20, 1.0),
		Workload: Workload3, Compaction: true, Supersample: true, AOSamples: 2,
	}
	imgs := make([][]float32, 0, 2)
	for _, dev := range []*device.Device{device.Serial(), device.New("w4", 4)} {
		r := New(dev, m)
		img, _, err := r.Render(opts)
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, img.Color)
	}
	for i := range imgs[0] {
		if imgs[0][i] != imgs[1][i] {
			t.Fatalf("pixel channel %d differs across devices: %v vs %v", i, imgs[0][i], imgs[1][i])
		}
	}
}

func TestWorkload1HitMaskMatchesWorkload2Coverage(t *testing.T) {
	m := testScene(t, 12)
	r := New(device.CPU(), m)
	frame1, s1, err := r.Render(defaultOptions(m, Workload1))
	if err != nil {
		t.Fatal(err)
	}
	img1 := frame1.Clone() // frames are arena-owned; retain across renders
	img2, s2, err := r.Render(defaultOptions(m, Workload2))
	if err != nil {
		t.Fatal(err)
	}
	if img1.ActivePixels() != img2.ActivePixels() {
		t.Errorf("coverage differs: %d vs %d", img1.ActivePixels(), img2.ActivePixels())
	}
	if s1.MRaysPerSec() <= 0 {
		t.Error("Workload1 rate not measured")
	}
	if s2.TotalRays != int64(s2.PrimaryRays) {
		t.Errorf("workload2 should cast only primary rays: %d vs %d", s2.TotalRays, s2.PrimaryRays)
	}
}

func TestPacketTraversalMatchesScalar(t *testing.T) {
	m := testScene(t, 12)
	dev := device.New("vec", 2)
	dev.VectorWidth = 8
	r := New(dev, m)
	opts := defaultOptions(m, Workload2)
	scalarFrame, _, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	scalarImg := scalarFrame.Clone() // frames are arena-owned; retain across renders
	opts.UsePackets = true
	packetImg, _, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scalarImg.Color {
		if scalarImg.Color[i] != packetImg.Color[i] {
			t.Fatalf("packet render differs at channel %d", i)
		}
	}
}

func TestWorkload3CastsSecondaryRays(t *testing.T) {
	m := testScene(t, 12)
	r := New(device.CPU(), m)
	opts := defaultOptions(m, Workload3)
	opts.Compaction = true
	opts.Supersample = true
	opts.AOSamples = 4
	img, stats, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalRays <= int64(stats.PrimaryRays) {
		t.Errorf("no secondary rays: total=%d primary=%d", stats.TotalRays, stats.PrimaryRays)
	}
	if stats.Phases.Get("ao") <= 0 || stats.Phases.Get("shadow") <= 0 {
		t.Error("AO/shadow phases missing")
	}
	if stats.Phases.Get("compact") <= 0 {
		t.Error("compaction phase missing")
	}
	if img.ActivePixels() == 0 {
		t.Error("no active pixels")
	}
	// Supersampling traces 4 rays per pixel.
	if stats.PrimaryRays != 4*96*72 {
		t.Errorf("primary rays = %d, want %d", stats.PrimaryRays, 4*96*72)
	}
}

func TestAODarkensImage(t *testing.T) {
	m := testScene(t, 14)
	r := New(device.CPU(), m)
	base := defaultOptions(m, Workload2)
	frame2, _, err := r.Render(base)
	if err != nil {
		t.Fatal(err)
	}
	img2 := frame2.Clone() // frames are arena-owned; retain across renders
	full := base
	full.Workload = Workload3
	full.AOSamples = 4
	img3, _, err := r.Render(full)
	if err != nil {
		t.Fatal(err)
	}
	lum := func(img2 interface {
		At(int, int) (float32, float32, float32, float32)
	}, w, h int) float64 {
		var sum float64
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				r, g, b, _ := img2.At(x, y)
				sum += float64(r + g + b)
			}
		}
		return sum
	}
	l2 := lum(img2, 96, 72)
	l3 := lum(img3, 96, 72)
	if l3 > l2 {
		t.Errorf("AO+shadows should not brighten: %v vs %v", l3, l2)
	}
}

func TestReflectionsRun(t *testing.T) {
	m := testScene(t, 10)
	r := New(device.CPU(), m)
	opts := defaultOptions(m, Workload2)
	opts.Reflections = true
	_, stats, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Phases.Get("reflect") <= 0 {
		t.Error("reflect phase missing")
	}
	if stats.TotalRays <= int64(stats.PrimaryRays) {
		t.Error("reflections cast no rays")
	}
}

func TestInvalidOptions(t *testing.T) {
	m := testScene(t, 8)
	r := New(device.CPU(), m)
	if _, _, err := r.Render(Options{Width: 0, Height: 10}); err == nil {
		t.Error("expected error for zero width")
	}
}

func TestEmptyMeshRenders(t *testing.T) {
	m := &mesh.TriangleMesh{}
	r := New(device.CPU(), m)
	cam := render.Camera{Position: vecmath.V(0, 0, 5), LookAt: vecmath.Vec3{}}
	img, stats, err := r.Render(Options{Width: 32, Height: 32, Camera: cam, Workload: Workload2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ActivePixels != 0 || img.ActivePixels() != 0 {
		t.Error("empty mesh should produce empty image")
	}
}

func TestMortonPixelOrderCoversImage(t *testing.T) {
	for _, wh := range [][2]int{{7, 5}, {16, 16}, {33, 9}, {1, 1}} {
		w, h := wh[0], wh[1]
		order := mortonPixelOrder(w, h)
		if len(order) != w*h {
			t.Fatalf("%dx%d: order length %d", w, h, len(order))
		}
		seen := make(map[int32]bool, len(order))
		for _, p := range order {
			if p < 0 || int(p) >= w*h || seen[p] {
				t.Fatalf("%dx%d: bad or duplicate pixel %d", w, h, p)
			}
			seen[p] = true
		}
	}
}

func TestBVHBuildTimeReported(t *testing.T) {
	m := testScene(t, 10)
	r := New(device.CPU(), m)
	if r.BVH.BuildTime <= 0 {
		t.Error("build time missing")
	}
	_, stats, err := r.Render(defaultOptions(m, Workload2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.BVHBuild != r.BVH.BuildTime {
		t.Error("stats should carry the build time")
	}
	if stats.Objects != m.NumTriangles() {
		t.Errorf("objects = %d", stats.Objects)
	}
}

func TestLightOverrideChangesImage(t *testing.T) {
	m := testScene(t, 12)
	r := New(device.CPU(), m)
	opts := defaultOptions(m, Workload2)
	baseFrame, _, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	base := baseFrame.Clone() // frames are arena-owned; retain across renders
	// A dim light from the opposite side must produce a different image.
	opts.Light = &render.Light{
		Position:  m.Bounds().Center().Add(vecmath.V(-5, -5, -5)),
		Intensity: 0.3,
	}
	lit, _, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range base.Color {
		if base.Color[i] != lit.Color[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("light override had no effect")
	}
}

func TestColorMapOverride(t *testing.T) {
	m := testScene(t, 12)
	r := New(device.CPU(), m)
	opts := defaultOptions(m, Workload2)
	opts.ColorMap = framebuffer.Inferno()
	img, _, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	if img.ActivePixels() == 0 {
		t.Error("empty image with custom color map")
	}
}
