// Package raytrace implements the paper's data-parallel ray tracer
// (Chapter II, Algorithm 1): breadth-first ray processing over
// structure-of-arrays ray state, expressed with map / gather / scatter /
// scan primitives. Primary rays are generated in morton order, traversal
// uses an LBVH, and the full workload adds stream compaction, ambient
// occlusion, shadows, optional specular reflection, and supersampled
// anti-aliasing.
//
// The renderer owns a frame arena: the SoA ray state, the occlusion,
// shadow, and color buffers, the live-ray compactor, the per-worker
// packet scratch, the output image, and the kernel closures themselves
// are built on the first frame and reused afterwards, so a steady-state
// Render performs no heap allocation. The morton pixel order is cached
// per (width, height) across all renderers.
package raytrace

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/bvh"
	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// Workload selects how much of the pipeline runs, matching the paper's
// three study workloads.
type Workload int

const (
	// Workload1 traces primary rays only (the Mrays/s benchmark).
	Workload1 Workload = 1
	// Workload2 adds Blinn-Phong shading (the rasterization-equivalent
	// scientific visualization picture).
	Workload2 Workload = 2
	// Workload3 enables every feature: ambient occlusion, shadows,
	// stream compaction, and anti-aliasing.
	Workload3 Workload = 3
)

// Options configures one render.
type Options struct {
	Width, Height int
	Camera        render.Camera
	Workload      Workload
	// AOSamples is the hemisphere sample count per hit (default 4).
	AOSamples int
	// AODistance caps occlusion rays; 0 means 5% of the scene diagonal.
	AODistance float64
	// Compaction compacts dead rays before secondary stages (Workload3).
	Compaction bool
	// Supersample traces 4 jittered rays per pixel and gathers an
	// anti-aliased image (Workload3).
	Supersample bool
	// Reflections adds one specular bounce.
	Reflections bool
	// UsePackets traces coherent ray packets of the device's VectorWidth,
	// the vector-unit ("ISPC") backend of the tracer.
	UsePackets bool
	// Light overrides the default headlight.
	Light *render.Light
	// ColorMap overrides the default cool-to-warm map.
	ColorMap *framebuffer.ColorMap
}

// Stats reports per-phase timings and the measured model inputs.
type Stats struct {
	BVHBuild     time.Duration
	Phases       render.Timings
	Objects      int
	PrimaryRays  int
	TotalRays    int64
	ActivePixels int
	NodeTests    int64
	TriTests     int64
}

// MRaysPerSec returns primary rays per second (in millions) using the
// traversal phase only, the paper's Workload1 metric.
func (s *Stats) MRaysPerSec() float64 {
	d := s.Phases.Get("traversal").Seconds()
	if d == 0 {
		return 0
	}
	return float64(s.PrimaryRays) / d / 1e6
}

// Renderer owns the acceleration structure for a mesh and the reusable
// frame arena. Building once and rendering many times matches the model's
// separation of the c0*O + c1 build term from the per-frame terms.
// A Renderer is not safe for concurrent use.
type Renderer struct {
	Dev  *device.Device
	Mesh *mesh.TriangleMesh
	BVH  *bvh.BVH

	arena frameArena
}

// New builds a renderer with the default LBVH.
func New(dev *device.Device, m *mesh.TriangleMesh) *Renderer {
	return NewWithBuilder(dev, m, bvh.LBVH)
}

// NewWithBuilder builds a renderer with an explicit BVH builder.
func NewWithBuilder(dev *device.Device, m *mesh.TriangleMesh, builder bvh.Builder) *Renderer {
	m.EnsureNormals()
	if m.ScalarMin == 0 && m.ScalarMax == 0 {
		m.UpdateScalarRange()
	}
	return &Renderer{Dev: dev, Mesh: m, BVH: bvh.Build(dev, m, builder)}
}

// raysSoA is the structure-of-arrays ray state the pipeline stages share.
type raysSoA struct {
	ox, oy, oz []float64
	dx, dy, dz []float64
	hitT       []float64
	hitU, hitV []float64
	hitPrim    []int32
}

// ensure grows the SoA to n rays, reallocating only on growth.
func (r *raysSoA) ensure(n int) {
	if cap(r.ox) < n {
		r.ox, r.oy, r.oz = make([]float64, n), make([]float64, n), make([]float64, n)
		r.dx, r.dy, r.dz = make([]float64, n), make([]float64, n), make([]float64, n)
		r.hitT, r.hitU, r.hitV = make([]float64, n), make([]float64, n), make([]float64, n)
		r.hitPrim = make([]int32, n)
	}
	r.ox, r.oy, r.oz = r.ox[:n], r.oy[:n], r.oz[:n]
	r.dx, r.dy, r.dz = r.dx[:n], r.dy[:n], r.dz[:n]
	r.hitT, r.hitU, r.hitV = r.hitT[:n], r.hitU[:n], r.hitV[:n]
	r.hitPrim = r.hitPrim[:n]
}

func (r *raysSoA) orig(i int) vecmath.Vec3 { return vecmath.V(r.ox[i], r.oy[i], r.oz[i]) }
func (r *raysSoA) dir(i int) vecmath.Vec3  { return vecmath.V(r.dx[i], r.dy[i], r.dz[i]) }

// jitterTable is the fixed 4-sample supersampling pattern.
var jitterTable = [4][2]float64{{0.5, 0.5}, {0.25, 0.25}, {0.75, 0.25}, {0.5, 0.75}}

// packetScratch is one worker's reusable packet-tracing state. Hoisting
// it out of the chunk loop removes the per-chunk origs/dirs/hits
// allocations the packetized backend used to pay.
type packetScratch struct {
	origs, dirs []vecmath.Vec3
	hits        []bvh.Hit
	trav        bvh.PacketScratch
}

func (p *packetScratch) ensure(width int) {
	if cap(p.origs) < width {
		p.origs = make([]vecmath.Vec3, width)
		p.dirs = make([]vecmath.Vec3, width)
		p.hits = make([]bvh.Hit, width)
	}
	p.origs, p.dirs, p.hits = p.origs[:width], p.dirs[:width], p.hits[:width]
}

// frameArena is the renderer's persistent per-frame state: every buffer
// the pipeline stages share, the per-frame parameters the kernels read,
// and the kernel closures themselves (built once, so launching a kernel
// allocates nothing).
type frameArena struct {
	r *Renderer

	// Per-frame parameters, written by Render before kernels launch.
	opts   Options
	cam    render.Camera
	raygen render.RayGen
	light  render.Light
	cmap   *framebuffer.ColorMap
	norm   render.Normalizer
	spp    int
	n      int
	order  []int32

	rays       raysSoA
	occlusion  []float64
	shadow     []float64
	colors     []vecmath.Vec3
	reflectC   []vecmath.Vec3
	useReflect bool
	flags      []bool
	live       []int32
	compact    dpp.Compactor
	img        framebuffer.Image
	stats      Stats

	nodeTests, triTests, castRays atomic.Int64

	packets []packetScratch

	defaultCmap *framebuffer.ColorMap

	raygenFn, flagsFn, initFn, traceFn func(lo, hi int)
	aoFn, shadowFn, reflectFn          func(lo, hi int)
	shadeFn, accumFn, hitsFn           func(lo, hi int)
	tracePacketFn                      func(worker, lo, hi int)
}

// init wires the arena to its renderer and builds the kernel closures
// exactly once.
func (a *frameArena) init(r *Renderer) {
	if a.r != nil {
		return
	}
	a.r = r
	a.compact.Init(r.Dev)
	a.raygenFn = a.raygenKernel
	a.flagsFn = a.flagsKernel
	a.initFn = a.initKernel
	a.traceFn = a.traceKernel
	a.aoFn = a.aoKernel
	a.shadowFn = a.shadowKernel
	a.reflectFn = a.reflectKernel
	a.shadeFn = a.shadeKernel
	a.accumFn = a.accumKernel
	a.hitsFn = a.hitsKernel
	a.tracePacketFn = a.tracePacketKernel
}

// ensure sizes every per-frame buffer for n rays and w x h output.
func (a *frameArena) ensure(n, w, h int) {
	a.n = n
	a.rays.ensure(n)
	if cap(a.occlusion) < n {
		a.occlusion = make([]float64, n)
		a.shadow = make([]float64, n)
		a.colors = make([]vecmath.Vec3, n)
		a.flags = make([]bool, n)
	}
	a.occlusion = a.occlusion[:n]
	a.shadow = a.shadow[:n]
	a.colors = a.colors[:n]
	a.flags = a.flags[:n]
	a.img.EnsureSize(w, h)
}

// Render executes the configured workload and returns the image and
// stats. Both are owned by the renderer's frame arena and remain valid
// only until the next Render call on this renderer; Clone the image (and
// copy the stats) to retain them across frames.
//
//insitu:arena
func (r *Renderer) Render(opts Options) (*framebuffer.Image, *Stats, error) {
	if opts.Width <= 0 || opts.Height <= 0 {
		return nil, nil, fmt.Errorf("raytrace: invalid image size %dx%d", opts.Width, opts.Height)
	}
	if opts.Workload == 0 {
		opts.Workload = Workload2
	}
	if opts.AOSamples <= 0 {
		opts.AOSamples = 4
	}
	diag := r.BVH.Mesh.Bounds().Diagonal().Length()
	if opts.AODistance <= 0 {
		opts.AODistance = 0.05 * diag
		if opts.AODistance == 0 {
			opts.AODistance = 1
		}
	}

	a := &r.arena
	a.init(r)
	a.opts = opts
	a.cam = opts.Camera.Normalized()
	a.raygen = a.cam.NewRayGen(opts.Width, opts.Height)
	a.light = render.HeadLight(a.cam)
	if opts.Light != nil {
		a.light = *opts.Light
	}
	a.cmap = opts.ColorMap
	if a.cmap == nil {
		if a.defaultCmap == nil {
			a.defaultCmap = framebuffer.CoolToWarm()
		}
		a.cmap = a.defaultCmap
	}
	a.norm = render.Normalizer{Min: r.Mesh.ScalarMin, Max: r.Mesh.ScalarMax}

	stats := &a.stats
	stats.Phases.Reset()
	stats.BVHBuild = r.BVH.BuildTime
	stats.Objects = r.Mesh.NumTriangles()
	stats.PrimaryRays, stats.TotalRays, stats.ActivePixels = 0, 0, 0
	stats.NodeTests, stats.TriTests = 0, 0
	a.nodeTests.Store(0)
	a.triTests.Store(0)
	a.castRays.Store(0)

	a.spp = 1
	if opts.Workload == Workload3 && opts.Supersample {
		a.spp = 4
	}

	// Primary ray generation in morton order (a map over ray indices).
	start := time.Now()
	a.order = mortonPixelOrder(opts.Width, opts.Height)
	numPixels := len(a.order)
	n := numPixels * a.spp
	a.ensure(n, opts.Width, opts.Height)
	dpp.For(r.Dev, n, a.raygenFn)
	stats.Phases.Add("raygen", time.Since(start))
	stats.PrimaryRays = n
	stats.TotalRays = int64(n)

	// Traversal and intersection.
	start = time.Now()
	if opts.UsePackets && r.Dev.VectorWidth >= 2 {
		a.ensurePackets()
		dpp.ForWorker(r.Dev, n, a.tracePacketFn)
	} else {
		dpp.For(r.Dev, n, a.traceFn)
	}
	stats.NodeTests += a.nodeTests.Load()
	stats.TriTests += a.triTests.Load()
	stats.Phases.Add("traversal", time.Since(start))

	img := &a.img
	if opts.Workload == Workload1 {
		// Intersection-only picture: white where rays hit.
		start = time.Now()
		dpp.For(r.Dev, numPixels, a.hitsFn)
		stats.Phases.Add("accumulate", time.Since(start))
		stats.ActivePixels = img.ActivePixels()
		return img, stats, nil
	}

	// Live-ray index list, optionally stream compacted, plus the
	// occlusion/shadow identity fill.
	start = time.Now()
	dpp.For(r.Dev, n, a.flagsFn)
	//insitu:leaselife-ok the arena field is itself frame-scoped; both reset on the next Render
	a.live = a.compact.CompactIndices(a.flags)
	if opts.Workload == Workload3 && opts.Compaction {
		stats.Phases.Add("compact", time.Since(start))
	}
	dpp.For(r.Dev, n, a.initFn)

	if opts.Workload == Workload3 {
		start = time.Now()
		dpp.For(r.Dev, len(a.live), a.aoFn)
		stats.Phases.Add("ao", time.Since(start))

		start = time.Now()
		dpp.For(r.Dev, len(a.live), a.shadowFn)
		stats.Phases.Add("shadow", time.Since(start))
	}
	a.useReflect = false
	if opts.Reflections {
		start = time.Now()
		if cap(a.reflectC) < len(a.live) {
			a.reflectC = make([]vecmath.Vec3, len(a.live))
		}
		a.reflectC = a.reflectC[:len(a.live)]
		dpp.For(r.Dev, len(a.live), a.reflectFn)
		a.useReflect = true
		stats.Phases.Add("reflect", time.Since(start))
	}

	// Shading: Blinn-Phong over interpolated normals and color-mapped
	// scalars, modulated by AO and shadow terms.
	start = time.Now()
	dpp.For(r.Dev, len(a.live), a.shadeFn)
	stats.Phases.Add("shade", time.Since(start))

	// Accumulate into the framebuffer; with supersampling this is the
	// anti-aliasing gather over each pixel's samples.
	start = time.Now()
	dpp.For(r.Dev, numPixels, a.accumFn)
	stats.Phases.Add("accumulate", time.Since(start))
	stats.TotalRays += a.castRays.Load()
	stats.ActivePixels = img.ActivePixels()
	return img, stats, nil
}

// raygenKernel fills the SoA with primary rays in morton order.
//
//insitu:noalloc
func (a *frameArena) raygenKernel(lo, hi int) {
	opts := &a.opts
	spp := a.spp
	for i := lo; i < hi; i++ {
		p := a.order[i/spp]
		px := float64(int(p) % opts.Width)
		py := float64(int(p) / opts.Width)
		j := jitterTable[0]
		if spp > 1 {
			j = jitterTable[i%spp]
		}
		ray := a.raygen.Ray(px, py, j[0], j[1])
		a.rays.ox[i], a.rays.oy[i], a.rays.oz[i] = ray.Orig.X, ray.Orig.Y, ray.Orig.Z
		a.rays.dx[i], a.rays.dy[i], a.rays.dz[i] = ray.Dir.X, ray.Dir.Y, ray.Dir.Z
	}
}

// traceKernel intersects rays against the BVH, scalar path.
//
//insitu:noalloc
func (a *frameArena) traceKernel(lo, hi int) {
	rays := &a.rays
	var localNode, localTri int
	for i := lo; i < hi; i++ {
		hit, nt, tt := a.r.BVH.IntersectClosest(rays.orig(i), rays.dir(i), 1e-9, math.Inf(1))
		localNode += nt
		localTri += tt
		rays.hitPrim[i] = hit.Prim
		rays.hitT[i] = hit.T
		rays.hitU[i] = hit.U
		rays.hitV[i] = hit.V
	}
	a.nodeTests.Add(int64(localNode))
	a.triTests.Add(int64(localTri))
}

// ensurePackets sizes the per-worker packet scratch.
func (a *frameArena) ensurePackets() {
	workers := a.r.Dev.Workers
	if workers < 1 {
		workers = 1
	}
	if len(a.packets) < workers {
		a.packets = make([]packetScratch, workers)
	}
	for i := range a.packets {
		a.packets[i].ensure(a.r.Dev.VectorWidth)
	}
}

// tracePacketKernel is the packetized traversal; worker indexes the
// per-worker scratch, so the inner loop performs no allocation.
//
//insitu:noalloc
func (a *frameArena) tracePacketKernel(worker, lo, hi int) {
	rays := &a.rays
	width := a.r.Dev.VectorWidth
	ps := &a.packets[worker]
	for base := lo; base < hi; base += width {
		cnt := width
		if base+cnt > hi {
			cnt = hi - base
		}
		for k := 0; k < cnt; k++ {
			ps.origs[k] = rays.orig(base + k)
			ps.dirs[k] = rays.dir(base + k)
		}
		a.r.BVH.IntersectClosestPacketScratch(ps.origs[:cnt], ps.dirs[:cnt], 1e-9, ps.hits[:cnt], &ps.trav)
		for k := 0; k < cnt; k++ {
			rays.hitPrim[base+k] = ps.hits[k].Prim
			rays.hitT[base+k] = ps.hits[k].T
			rays.hitU[base+k] = ps.hits[k].U
			rays.hitV[base+k] = ps.hits[k].V
		}
	}
}

// flagsKernel marks rays that hit geometry for stream compaction.
//
//insitu:noalloc
func (a *frameArena) flagsKernel(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.flags[i] = a.rays.hitPrim[i] >= 0
	}
}

// initKernel resets the per-ray occlusion and shadow terms to their
// identity. Reused buffers make this reset mandatory: stale terms from
// the previous frame must never leak into the current one.
//
//insitu:noalloc
func (a *frameArena) initKernel(lo, hi int) {
	for i := lo; i < hi; i++ {
		a.occlusion[i] = 1
		a.shadow[i] = 1
	}
}

// hitsKernel paints the Workload1 hit-mask image.
//
//insitu:noalloc
func (a *frameArena) hitsKernel(lo, hi int) {
	w := a.img.W
	spp := a.spp
	for q := lo; q < hi; q++ {
		i := q * spp
		if a.rays.hitPrim[i] < 0 {
			continue
		}
		p := int(a.order[q])
		a.img.Set(p%w, p/w, 0.8, 0.8, 0.8, 1, float32(a.rays.hitT[i]))
	}
}

// aoKernel casts hemisphere rays around every live hit. Sample directions
// come from a per-ray deterministic hash stream, so renders are
// reproducible across devices and schedules.
//
//insitu:noalloc
func (a *frameArena) aoKernel(lo, hi int) {
	m := a.r.Mesh
	rays := &a.rays
	samples := a.opts.AOSamples
	var localCast int64
	for li := lo; li < hi; li++ {
		i := int(a.live[li])
		prim := rays.hitPrim[i]
		nrm, _ := interpolateHit(m, prim, rays.hitU[i], rays.hitV[i])
		view := rays.dir(i)
		if nrm.Dot(view) > 0 {
			nrm = nrm.Neg()
		}
		pos := rays.orig(i).Add(view.Scale(rays.hitT[i])).Add(nrm.Scale(1e-6 * a.opts.AODistance))
		t1, t2 := tangentFrame(nrm)
		seed := uint64(i)*0x9e3779b97f4a7c15 + 0x1234
		blocked := 0
		for s := 0; s < samples; s++ {
			u1 := hashFloat(&seed)
			u2 := hashFloat(&seed)
			dir := cosineHemisphere(nrm, t1, t2, u1, u2)
			localCast++
			if a.r.BVH.IntersectAny(pos, dir, 1e-9, a.opts.AODistance) {
				blocked++
			}
		}
		a.occlusion[i] = 1 - float64(blocked)/float64(samples)
	}
	a.castRays.Add(localCast)
}

// shadowKernel tests visibility from every live hit to the light.
//
//insitu:noalloc
func (a *frameArena) shadowKernel(lo, hi int) {
	rays := &a.rays
	var localCast int64
	for li := lo; li < hi; li++ {
		i := int(a.live[li])
		pos := rays.orig(i).Add(rays.dir(i).Scale(rays.hitT[i]))
		toLight := a.light.Position.Sub(pos)
		dist := toLight.Length()
		if dist == 0 {
			continue
		}
		dir := toLight.Scale(1 / dist)
		localCast++
		if a.r.BVH.IntersectAny(pos.Add(dir.Scale(1e-6*dist)), dir, 1e-9, dist*(1-1e-6)) {
			a.shadow[i] = 0.35
		}
	}
	a.castRays.Add(localCast)
}

// reflectKernel traces one specular bounce for every live ray, writing
// bounce colors indexed like live (zero when the bounce misses — written
// unconditionally so reused buffers never carry stale colors).
//
//insitu:noalloc
func (a *frameArena) reflectKernel(lo, hi int) {
	m := a.r.Mesh
	rays := &a.rays
	var localCast int64
	for li := lo; li < hi; li++ {
		i := int(a.live[li])
		var c vecmath.Vec3
		nrm, _ := interpolateHit(m, rays.hitPrim[i], rays.hitU[i], rays.hitV[i])
		view := rays.dir(i)
		if nrm.Dot(view) > 0 {
			nrm = nrm.Neg()
		}
		pos := rays.orig(i).Add(view.Scale(rays.hitT[i]))
		dir := view.Reflect(nrm).Normalize()
		localCast++
		hit, _, _ := a.r.BVH.IntersectClosest(pos.Add(dir.Scale(1e-9)), dir, 1e-9, math.Inf(1))
		if hit.Prim >= 0 {
			bn, bs := interpolateHit(m, hit.Prim, hit.U, hit.V)
			base := a.cmap.Sample(a.norm.Normalize(bs))
			c = shade(base, pos.Add(dir.Scale(hit.T)), bn, dir, a.light)
		}
		a.reflectC[li] = c
	}
	a.castRays.Add(localCast)
}

// shadeKernel evaluates Blinn-Phong over interpolated normals and
// color-mapped scalars, modulated by the AO and shadow terms.
//
//insitu:noalloc
func (a *frameArena) shadeKernel(lo, hi int) {
	m := a.r.Mesh
	rays := &a.rays
	for li := lo; li < hi; li++ {
		i := int(a.live[li])
		prim := rays.hitPrim[i]
		pos := rays.orig(i).Add(rays.dir(i).Scale(rays.hitT[i]))
		nrm, scalar := interpolateHit(m, prim, rays.hitU[i], rays.hitV[i])
		base := a.cmap.Sample(a.norm.Normalize(scalar))
		c := shade(base, pos, nrm, rays.dir(i), a.light)
		c = c.Scale(a.occlusion[i] * a.shadow[i])
		if a.useReflect {
			c = c.Add(a.reflectC[li].Scale(0.2))
		}
		a.colors[i] = c
	}
}

// accumKernel gathers each pixel's samples into the framebuffer.
//
//insitu:noalloc
func (a *frameArena) accumKernel(lo, hi int) {
	rays := &a.rays
	spp := a.spp
	w := a.img.W
	for q := lo; q < hi; q++ {
		var sum vecmath.Vec3
		hits := 0
		minT := math.Inf(1)
		for s := 0; s < spp; s++ {
			i := q*spp + s
			if rays.hitPrim[i] >= 0 {
				hits++
				sum = sum.Add(a.colors[i])
				if rays.hitT[i] < minT {
					minT = rays.hitT[i]
				}
			}
		}
		if hits == 0 {
			continue
		}
		inv := 1 / float64(spp)
		alpha := float32(float64(hits) * inv)
		p := int(a.order[q])
		a.img.Set(p%w, p/w,
			float32(sum.X*inv), float32(sum.Y*inv), float32(sum.Z*inv),
			alpha, float32(minT))
	}
}

// interpolateHit returns the barycentric-interpolated normal and scalar of
// a hit on triangle prim.
func interpolateHit(m *mesh.TriangleMesh, prim int32, u, v float64) (vecmath.Vec3, float64) {
	i0, i1, i2 := m.Conn[3*prim], m.Conn[3*prim+1], m.Conn[3*prim+2]
	w := 1 - u - v
	nrm := m.Normal(i0).Scale(w).Add(m.Normal(i1).Scale(u)).Add(m.Normal(i2).Scale(v)).Normalize()
	s := m.Scalars[i0]*w + m.Scalars[i1]*u + m.Scalars[i2]*v
	return nrm, s
}

// shade evaluates two-sided Blinn-Phong with linear light attenuation.
func shade(base, pos, nrm, viewDir vecmath.Vec3, light render.Light) vecmath.Vec3 {
	toLight := light.Position.Sub(pos)
	dist := toLight.Length()
	l := toLight.Normalize()
	att := light.Intensity / (1 + 0.1*dist)
	diffuse := math.Abs(nrm.Dot(l))
	h := l.Sub(viewDir).Normalize()
	spec := math.Pow(math.Abs(nrm.Dot(h)), 30) * 0.25
	c := base.Scale(0.15 + 0.85*diffuse*att)
	return c.Add(vecmath.V(spec, spec, spec).Scale(att))
}

// tangentFrame builds an orthonormal basis around unit n.
func tangentFrame(n vecmath.Vec3) (vecmath.Vec3, vecmath.Vec3) {
	a := vecmath.V(1, 0, 0)
	if math.Abs(n.X) > 0.9 {
		a = vecmath.V(0, 1, 0)
	}
	t1 := n.Cross(a).Normalize()
	t2 := n.Cross(t1)
	return t1, t2
}

// cosineHemisphere maps two uniforms to a cosine-weighted direction about n.
func cosineHemisphere(n, t1, t2 vecmath.Vec3, u1, u2 float64) vecmath.Vec3 {
	phi := 2 * math.Pi * u1
	cosT := math.Sqrt(1 - u2)
	sinT := math.Sqrt(u2)
	return t1.Scale(math.Cos(phi) * sinT).
		Add(t2.Scale(math.Sin(phi) * sinT)).
		Add(n.Scale(cosT)).Normalize()
}

// hashFloat advances a splitmix-style stream and returns a float in [0,1).
func hashFloat(seed *uint64) float64 {
	*seed += 0x9e3779b97f4a7c15
	z := *seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// mortonCache shares the per-(w,h) pixel orders across all renderers:
// the order depends only on the image size, is immutable once built, and
// the study renders thousands of frames at a handful of sizes.
var (
	mortonMu    sync.Mutex
	mortonCache = map[[2]int][]int32{}
)

// mortonCacheLimit bounds the cache; when exceeded it is dropped
// wholesale (sizes churn only in pathological sweeps).
const mortonCacheLimit = 64

// mortonPixelOrder returns every pixel index of a w x h image in 2-D
// morton (Z-curve) order, the coherence-friendly traversal the paper uses
// to raise SIMD efficiency. Orders are cached per (w, h); the returned
// slice is shared and must not be mutated.
func mortonPixelOrder(w, h int) []int32 {
	key := [2]int{w, h}
	mortonMu.Lock()
	order, ok := mortonCache[key]
	mortonMu.Unlock()
	if ok {
		return order
	}
	order = computeMortonOrder(w, h)
	mortonMu.Lock()
	if len(mortonCache) >= mortonCacheLimit {
		mortonCache = map[[2]int][]int32{}
	}
	mortonCache[key] = order
	mortonMu.Unlock()
	return order
}

func computeMortonOrder(w, h int) []int32 {
	side := 1
	for side < w || side < h {
		side <<= 1
	}
	order := make([]int32, 0, w*h)
	total := side * side
	for code := 0; code < total; code++ {
		x := compact1by1(uint64(code))
		y := compact1by1(uint64(code) >> 1)
		if int(x) < w && int(y) < h {
			order = append(order, int32(int(y)*w+int(x)))
		}
	}
	return order
}

// compact1by1 extracts the even-position bits of v.
func compact1by1(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return uint32(v)
}
