// Package raytrace implements the paper's data-parallel ray tracer
// (Chapter II, Algorithm 1): breadth-first ray processing over
// structure-of-arrays ray state, expressed with map / gather / scatter /
// scan primitives. Primary rays are generated in morton order, traversal
// uses an LBVH, and the full workload adds stream compaction, ambient
// occlusion, shadows, optional specular reflection, and supersampled
// anti-aliasing.
package raytrace

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"insitu/internal/bvh"
	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// Workload selects how much of the pipeline runs, matching the paper's
// three study workloads.
type Workload int

const (
	// Workload1 traces primary rays only (the Mrays/s benchmark).
	Workload1 Workload = 1
	// Workload2 adds Blinn-Phong shading (the rasterization-equivalent
	// scientific visualization picture).
	Workload2 Workload = 2
	// Workload3 enables every feature: ambient occlusion, shadows,
	// stream compaction, and anti-aliasing.
	Workload3 Workload = 3
)

// Options configures one render.
type Options struct {
	Width, Height int
	Camera        render.Camera
	Workload      Workload
	// AOSamples is the hemisphere sample count per hit (default 4).
	AOSamples int
	// AODistance caps occlusion rays; 0 means 5% of the scene diagonal.
	AODistance float64
	// Compaction compacts dead rays before secondary stages (Workload3).
	Compaction bool
	// Supersample traces 4 jittered rays per pixel and gathers an
	// anti-aliased image (Workload3).
	Supersample bool
	// Reflections adds one specular bounce.
	Reflections bool
	// UsePackets traces coherent ray packets of the device's VectorWidth,
	// the vector-unit ("ISPC") backend of the tracer.
	UsePackets bool
	// Light overrides the default headlight.
	Light *render.Light
	// ColorMap overrides the default cool-to-warm map.
	ColorMap *framebuffer.ColorMap
}

// Stats reports per-phase timings and the measured model inputs.
type Stats struct {
	BVHBuild     time.Duration
	Phases       render.Timings
	Objects      int
	PrimaryRays  int
	TotalRays    int64
	ActivePixels int
	NodeTests    int64
	TriTests     int64
}

// MRaysPerSec returns primary rays per second (in millions) using the
// traversal phase only, the paper's Workload1 metric.
func (s *Stats) MRaysPerSec() float64 {
	d := s.Phases.Get("traversal").Seconds()
	if d == 0 {
		return 0
	}
	return float64(s.PrimaryRays) / d / 1e6
}

// Renderer owns the acceleration structure for a mesh. Building once and
// rendering many times matches the model's separation of the c0*O + c1
// build term from the per-frame terms.
type Renderer struct {
	Dev  *device.Device
	Mesh *mesh.TriangleMesh
	BVH  *bvh.BVH
}

// New builds a renderer with the default LBVH.
func New(dev *device.Device, m *mesh.TriangleMesh) *Renderer {
	return NewWithBuilder(dev, m, bvh.LBVH)
}

// NewWithBuilder builds a renderer with an explicit BVH builder.
func NewWithBuilder(dev *device.Device, m *mesh.TriangleMesh, builder bvh.Builder) *Renderer {
	m.EnsureNormals()
	if m.ScalarMin == 0 && m.ScalarMax == 0 {
		m.UpdateScalarRange()
	}
	return &Renderer{Dev: dev, Mesh: m, BVH: bvh.Build(dev, m, builder)}
}

// raysSoA is the structure-of-arrays ray state the pipeline stages share.
type raysSoA struct {
	ox, oy, oz []float64
	dx, dy, dz []float64
	hitT       []float64
	hitU, hitV []float64
	hitPrim    []int32
}

func newRays(n int) *raysSoA {
	return &raysSoA{
		ox: make([]float64, n), oy: make([]float64, n), oz: make([]float64, n),
		dx: make([]float64, n), dy: make([]float64, n), dz: make([]float64, n),
		hitT: make([]float64, n), hitU: make([]float64, n), hitV: make([]float64, n),
		hitPrim: make([]int32, n),
	}
}

func (r *raysSoA) orig(i int) vecmath.Vec3 { return vecmath.V(r.ox[i], r.oy[i], r.oz[i]) }
func (r *raysSoA) dir(i int) vecmath.Vec3  { return vecmath.V(r.dx[i], r.dy[i], r.dz[i]) }

// Render executes the configured workload and returns the image and stats.
func (r *Renderer) Render(opts Options) (*framebuffer.Image, *Stats, error) {
	if opts.Width <= 0 || opts.Height <= 0 {
		return nil, nil, fmt.Errorf("raytrace: invalid image size %dx%d", opts.Width, opts.Height)
	}
	if opts.Workload == 0 {
		opts.Workload = Workload2
	}
	if opts.AOSamples <= 0 {
		opts.AOSamples = 4
	}
	diag := r.BVH.Mesh.Bounds().Diagonal().Length()
	if opts.AODistance <= 0 {
		opts.AODistance = 0.05 * diag
		if opts.AODistance == 0 {
			opts.AODistance = 1
		}
	}
	cam := opts.Camera.Normalized()
	light := render.HeadLight(cam)
	if opts.Light != nil {
		light = *opts.Light
	}
	cmap := opts.ColorMap
	if cmap == nil {
		cmap = framebuffer.CoolToWarm()
	}

	stats := &Stats{BVHBuild: r.BVH.BuildTime, Objects: r.Mesh.NumTriangles()}
	img := framebuffer.NewImage(opts.Width, opts.Height)

	spp := 1
	if opts.Workload == Workload3 && opts.Supersample {
		spp = 4
	}

	// Primary ray generation in morton order (a map over ray indices).
	start := time.Now()
	order := mortonPixelOrder(opts.Width, opts.Height)
	numPixels := len(order)
	n := numPixels * spp
	rays := newRays(n)
	jitter := [4][2]float64{{0.5, 0.5}, {0.25, 0.25}, {0.75, 0.25}, {0.5, 0.75}}
	dpp.For(r.Dev, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := order[i/spp]
			px := float64(int(p) % opts.Width)
			py := float64(int(p) / opts.Width)
			j := jitter[0]
			if spp > 1 {
				j = jitter[i%spp]
			}
			ray := cam.Ray(px, py, j[0], j[1], opts.Width, opts.Height)
			rays.ox[i], rays.oy[i], rays.oz[i] = ray.Orig.X, ray.Orig.Y, ray.Orig.Z
			rays.dx[i], rays.dy[i], rays.dz[i] = ray.Dir.X, ray.Dir.Y, ray.Dir.Z
		}
	})
	stats.Phases.Add("raygen", time.Since(start))
	stats.PrimaryRays = n
	stats.TotalRays = int64(n)

	// Traversal and intersection.
	start = time.Now()
	r.trace(rays, opts, stats)
	stats.Phases.Add("traversal", time.Since(start))

	if opts.Workload == Workload1 {
		// Intersection-only picture: white where rays hit.
		start = time.Now()
		r.resolveHits(rays, order, spp, img)
		stats.Phases.Add("accumulate", time.Since(start))
		stats.ActivePixels = img.ActivePixels()
		return img, stats, nil
	}

	// Live-ray index list, optionally stream compacted.
	live := r.liveRays(rays, opts, stats)

	occlusion := make([]float64, n)
	dpp.Fill(r.Dev, occlusion, 1.0)
	shadow := make([]float64, n)
	dpp.Fill(r.Dev, shadow, 1.0)
	reflect := make([]vecmath.Vec3, 0)

	if opts.Workload == Workload3 {
		start = time.Now()
		r.ambientOcclusion(rays, live, opts, occlusion, stats)
		stats.Phases.Add("ao", time.Since(start))

		start = time.Now()
		r.shadows(rays, live, light, shadow, stats)
		stats.Phases.Add("shadow", time.Since(start))
	}
	if opts.Reflections {
		start = time.Now()
		reflect = r.reflections(rays, live, light, cmap, stats)
		stats.Phases.Add("reflect", time.Since(start))
	}

	// Shading: Blinn-Phong over interpolated normals and color-mapped
	// scalars, modulated by AO and shadow terms.
	start = time.Now()
	colors := make([]vecmath.Vec3, n)
	norm := render.Normalizer{Min: r.Mesh.ScalarMin, Max: r.Mesh.ScalarMax}
	m := r.Mesh
	dpp.For(r.Dev, len(live), func(lo, hi int) {
		for li := lo; li < hi; li++ {
			i := int(live[li])
			prim := rays.hitPrim[i]
			pos := rays.orig(i).Add(rays.dir(i).Scale(rays.hitT[i]))
			nrm, scalar := interpolateHit(m, prim, rays.hitU[i], rays.hitV[i])
			base := cmap.Sample(norm.Normalize(scalar))
			c := shade(base, pos, nrm, rays.dir(i), light)
			c = c.Scale(occlusion[i] * shadow[i])
			if len(reflect) > 0 {
				c = c.Add(reflect[li].Scale(0.2))
			}
			colors[i] = c
		}
	})
	stats.Phases.Add("shade", time.Since(start))

	// Accumulate into the framebuffer; with supersampling this is the
	// anti-aliasing gather over each pixel's samples.
	start = time.Now()
	dpp.For(r.Dev, numPixels, func(lo, hi int) {
		for q := lo; q < hi; q++ {
			var sum vecmath.Vec3
			hits := 0
			minT := math.Inf(1)
			for s := 0; s < spp; s++ {
				i := q*spp + s
				if rays.hitPrim[i] >= 0 {
					hits++
					sum = sum.Add(colors[i])
					if rays.hitT[i] < minT {
						minT = rays.hitT[i]
					}
				}
			}
			if hits == 0 {
				continue
			}
			inv := 1 / float64(spp)
			alpha := float32(float64(hits) * inv)
			p := int(order[q])
			img.Set(p%opts.Width, p/opts.Width,
				float32(sum.X*inv), float32(sum.Y*inv), float32(sum.Z*inv),
				alpha, float32(minT))
		}
	})
	stats.Phases.Add("accumulate", time.Since(start))
	stats.ActivePixels = img.ActivePixels()
	return img, stats, nil
}

// trace intersects every ray against the BVH, scalar or packetized.
func (r *Renderer) trace(rays *raysSoA, opts Options, stats *Stats) {
	n := len(rays.ox)
	var nodeTests, triTests int64
	width := r.Dev.VectorWidth
	if !opts.UsePackets || width < 2 {
		dpp.For(r.Dev, n, func(lo, hi int) {
			var localNode, localTri int
			for i := lo; i < hi; i++ {
				hit, nt, tt := r.BVH.IntersectClosest(rays.orig(i), rays.dir(i), 1e-9, math.Inf(1))
				localNode += nt
				localTri += tt
				rays.hitPrim[i] = hit.Prim
				rays.hitT[i] = hit.T
				rays.hitU[i] = hit.U
				rays.hitV[i] = hit.V
			}
			atomic.AddInt64(&nodeTests, int64(localNode))
			atomic.AddInt64(&triTests, int64(localTri))
		})
	} else {
		dpp.For(r.Dev, n, func(lo, hi int) {
			origs := make([]vecmath.Vec3, width)
			dirs := make([]vecmath.Vec3, width)
			hits := make([]bvh.Hit, width)
			for base := lo; base < hi; base += width {
				cnt := width
				if base+cnt > hi {
					cnt = hi - base
				}
				for k := 0; k < cnt; k++ {
					origs[k] = rays.orig(base + k)
					dirs[k] = rays.dir(base + k)
				}
				r.BVH.IntersectClosestPacket(origs[:cnt], dirs[:cnt], 1e-9, hits[:cnt])
				for k := 0; k < cnt; k++ {
					rays.hitPrim[base+k] = hits[k].Prim
					rays.hitT[base+k] = hits[k].T
					rays.hitU[base+k] = hits[k].U
					rays.hitV[base+k] = hits[k].V
				}
			}
		})
	}
	stats.NodeTests += nodeTests
	stats.TriTests += triTests
}

// liveRays returns the indices of rays that hit geometry, optionally via
// the stream-compaction primitive sequence.
func (r *Renderer) liveRays(rays *raysSoA, opts Options, stats *Stats) []int32 {
	start := time.Now()
	n := len(rays.hitPrim)
	flags := make([]bool, n)
	dpp.For(r.Dev, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			flags[i] = rays.hitPrim[i] >= 0
		}
	})
	live := dpp.CompactIndices(r.Dev, flags)
	if opts.Workload == Workload3 && opts.Compaction {
		stats.Phases.Add("compact", time.Since(start))
	}
	return live
}

// resolveHits paints the Workload1 hit-mask image.
func (r *Renderer) resolveHits(rays *raysSoA, order []int32, spp int, img *framebuffer.Image) {
	w := img.W
	dpp.For(r.Dev, len(order), func(lo, hi int) {
		for q := lo; q < hi; q++ {
			i := q * spp
			if rays.hitPrim[i] < 0 {
				continue
			}
			p := int(order[q])
			img.Set(p%w, p/w, 0.8, 0.8, 0.8, 1, float32(rays.hitT[i]))
		}
	})
}

// ambientOcclusion casts hemisphere rays around every live hit. Sample
// directions come from a per-ray deterministic hash stream, so renders are
// reproducible across devices and schedules.
func (r *Renderer) ambientOcclusion(rays *raysSoA, live []int32, opts Options, occlusion []float64, stats *Stats) {
	m := r.Mesh
	samples := opts.AOSamples
	var cast int64
	dpp.For(r.Dev, len(live), func(lo, hi int) {
		var localCast int64
		for li := lo; li < hi; li++ {
			i := int(live[li])
			prim := rays.hitPrim[i]
			nrm, _ := interpolateHit(m, prim, rays.hitU[i], rays.hitV[i])
			view := rays.dir(i)
			if nrm.Dot(view) > 0 {
				nrm = nrm.Neg()
			}
			pos := rays.orig(i).Add(view.Scale(rays.hitT[i])).Add(nrm.Scale(1e-6 * opts.AODistance))
			t1, t2 := tangentFrame(nrm)
			seed := uint64(i)*0x9e3779b97f4a7c15 + 0x1234
			blocked := 0
			for s := 0; s < samples; s++ {
				u1 := hashFloat(&seed)
				u2 := hashFloat(&seed)
				dir := cosineHemisphere(nrm, t1, t2, u1, u2)
				localCast++
				if r.BVH.IntersectAny(pos, dir, 1e-9, opts.AODistance) {
					blocked++
				}
			}
			occlusion[i] = 1 - float64(blocked)/float64(samples)
		}
		atomic.AddInt64(&cast, localCast)
	})
	stats.TotalRays += cast
}

// shadows tests visibility from every live hit to the light.
func (r *Renderer) shadows(rays *raysSoA, live []int32, light render.Light, shadow []float64, stats *Stats) {
	var cast int64
	dpp.For(r.Dev, len(live), func(lo, hi int) {
		var localCast int64
		for li := lo; li < hi; li++ {
			i := int(live[li])
			pos := rays.orig(i).Add(rays.dir(i).Scale(rays.hitT[i]))
			toLight := light.Position.Sub(pos)
			dist := toLight.Length()
			if dist == 0 {
				continue
			}
			dir := toLight.Scale(1 / dist)
			localCast++
			if r.BVH.IntersectAny(pos.Add(dir.Scale(1e-6*dist)), dir, 1e-9, dist*(1-1e-6)) {
				shadow[i] = 0.35
			}
		}
		atomic.AddInt64(&cast, localCast)
	})
	stats.TotalRays += cast
}

// reflections traces one specular bounce for every live ray and returns
// the bounce colors indexed like live.
func (r *Renderer) reflections(rays *raysSoA, live []int32, light render.Light, cmap *framebuffer.ColorMap, stats *Stats) []vecmath.Vec3 {
	m := r.Mesh
	norm := render.Normalizer{Min: m.ScalarMin, Max: m.ScalarMax}
	out := make([]vecmath.Vec3, len(live))
	var cast int64
	dpp.For(r.Dev, len(live), func(lo, hi int) {
		var localCast int64
		for li := lo; li < hi; li++ {
			i := int(live[li])
			nrm, _ := interpolateHit(m, rays.hitPrim[i], rays.hitU[i], rays.hitV[i])
			view := rays.dir(i)
			if nrm.Dot(view) > 0 {
				nrm = nrm.Neg()
			}
			pos := rays.orig(i).Add(view.Scale(rays.hitT[i]))
			dir := view.Reflect(nrm).Normalize()
			localCast++
			hit, _, _ := r.BVH.IntersectClosest(pos.Add(dir.Scale(1e-9)), dir, 1e-9, math.Inf(1))
			if hit.Prim < 0 {
				continue
			}
			bn, bs := interpolateHit(m, hit.Prim, hit.U, hit.V)
			base := cmap.Sample(norm.Normalize(bs))
			out[li] = shade(base, pos.Add(dir.Scale(hit.T)), bn, dir, light)
		}
		atomic.AddInt64(&cast, localCast)
	})
	stats.TotalRays += cast
	return out
}

// interpolateHit returns the barycentric-interpolated normal and scalar of
// a hit on triangle prim.
func interpolateHit(m *mesh.TriangleMesh, prim int32, u, v float64) (vecmath.Vec3, float64) {
	i0, i1, i2 := m.Conn[3*prim], m.Conn[3*prim+1], m.Conn[3*prim+2]
	w := 1 - u - v
	nrm := m.Normal(i0).Scale(w).Add(m.Normal(i1).Scale(u)).Add(m.Normal(i2).Scale(v)).Normalize()
	s := m.Scalars[i0]*w + m.Scalars[i1]*u + m.Scalars[i2]*v
	return nrm, s
}

// shade evaluates two-sided Blinn-Phong with linear light attenuation.
func shade(base, pos, nrm, viewDir vecmath.Vec3, light render.Light) vecmath.Vec3 {
	toLight := light.Position.Sub(pos)
	dist := toLight.Length()
	l := toLight.Normalize()
	att := light.Intensity / (1 + 0.1*dist)
	diffuse := math.Abs(nrm.Dot(l))
	h := l.Sub(viewDir).Normalize()
	spec := math.Pow(math.Abs(nrm.Dot(h)), 30) * 0.25
	c := base.Scale(0.15 + 0.85*diffuse*att)
	return c.Add(vecmath.V(spec, spec, spec).Scale(att))
}

// tangentFrame builds an orthonormal basis around unit n.
func tangentFrame(n vecmath.Vec3) (vecmath.Vec3, vecmath.Vec3) {
	a := vecmath.V(1, 0, 0)
	if math.Abs(n.X) > 0.9 {
		a = vecmath.V(0, 1, 0)
	}
	t1 := n.Cross(a).Normalize()
	t2 := n.Cross(t1)
	return t1, t2
}

// cosineHemisphere maps two uniforms to a cosine-weighted direction about n.
func cosineHemisphere(n, t1, t2 vecmath.Vec3, u1, u2 float64) vecmath.Vec3 {
	phi := 2 * math.Pi * u1
	cosT := math.Sqrt(1 - u2)
	sinT := math.Sqrt(u2)
	return t1.Scale(math.Cos(phi) * sinT).
		Add(t2.Scale(math.Sin(phi) * sinT)).
		Add(n.Scale(cosT)).Normalize()
}

// hashFloat advances a splitmix-style stream and returns a float in [0,1).
func hashFloat(seed *uint64) float64 {
	*seed += 0x9e3779b97f4a7c15
	z := *seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// mortonPixelOrder returns every pixel index of a w x h image in 2-D
// morton (Z-curve) order, the coherence-friendly traversal the paper uses
// to raise SIMD efficiency.
func mortonPixelOrder(w, h int) []int32 {
	side := 1
	for side < w || side < h {
		side <<= 1
	}
	order := make([]int32, 0, w*h)
	total := side * side
	for code := 0; code < total; code++ {
		x := compact1by1(uint64(code))
		y := compact1by1(uint64(code) >> 1)
		if int(x) < w && int(y) < h {
			order = append(order, int32(int(y)*w+int(x)))
		}
	}
	return order
}

// compact1by1 extracts the even-position bits of v.
func compact1by1(v uint64) uint32 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return uint32(v)
}
