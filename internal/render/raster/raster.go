// Package raster implements the paper's data-parallel rasterizer: an
// object-order pipeline that transforms triangles to screen space, culls
// invisible geometry with stream compaction, and rasterizes survivors by
// sampling barycentric coordinates over each triangle's screen bounding
// box into a lock-free packed depth buffer. Its cost model is
// T = c0*O + c1*(VO*PPT) + c2.
package raster

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"insitu/internal/device"
	"insitu/internal/dpp"
	"insitu/internal/framebuffer"
	"insitu/internal/mesh"
	"insitu/internal/render"
	"insitu/internal/vecmath"
)

// Options configures one rasterization.
type Options struct {
	Width, Height int
	Camera        render.Camera
	// Light overrides the default headlight.
	Light *render.Light
	// ColorMap overrides the default cool-to-warm map.
	ColorMap *framebuffer.ColorMap
}

// Stats reports per-phase timings and the measured model inputs:
// Objects (O), VisibleObjects (VO), and PixelsConsidered (VO*PPT).
type Stats struct {
	Phases           render.Timings
	Objects          int
	VisibleObjects   int
	PixelsConsidered int64
	ActivePixels     int
}

// PPT returns the average pixels considered per visible triangle.
func (s *Stats) PPT() float64 {
	if s.VisibleObjects == 0 {
		return 0
	}
	return float64(s.PixelsConsidered) / float64(s.VisibleObjects)
}

// Renderer rasterizes one triangle mesh. The renderer owns a frame arena
// (projected triangles, visibility flags, the packed depth buffer, the
// output image, and the pipeline kernels), so steady-state frames perform
// no heap allocation; the returned image and stats are valid until the
// next Render call. Not safe for concurrent use.
type Renderer struct {
	Dev  *device.Device
	Mesh *mesh.TriangleMesh

	arena rasterArena
}

// New prepares a rasterizer for the mesh.
func New(dev *device.Device, m *mesh.TriangleMesh) *Renderer {
	m.EnsureNormals()
	if m.ScalarMin == 0 && m.ScalarMax == 0 {
		m.UpdateScalarRange()
	}
	return &Renderer{Dev: dev, Mesh: m}
}

// screenTri is one projected triangle with per-vertex Gouraud colors.
type screenTri struct {
	x, y, z [3]float64 // pixel coords + NDC depth
	c       [3]vecmath.Vec3
}

// rasterArena is the renderer's persistent per-frame state.
type rasterArena struct {
	r *Renderer

	// Per-frame parameters.
	opts        Options
	cam         render.Camera
	light       render.Light
	cmap        *framebuffer.ColorMap
	defaultCmap *framebuffer.ColorMap
	norm        render.Normalizer
	matrix      vecmath.Mat4

	tris    []screenTri
	visible []bool
	vis     []int32
	compact dpp.Compactor
	buf     framebuffer.PackedBuffer
	img     framebuffer.Image
	stats   Stats

	considered atomic.Int64

	transformFn, rasterizeFn func(lo, hi int)
}

func (a *rasterArena) init(r *Renderer) {
	if a.r != nil {
		return
	}
	a.r = r
	a.compact.Init(r.Dev)
	a.transformFn = a.transformKernel
	a.rasterizeFn = a.rasterizeKernel
}

// Render executes the pipeline and returns the image and stats. Both are
// owned by the renderer's arena and valid until the next Render call;
// Clone the image to retain it across frames.
//
//insitu:arena
func (r *Renderer) Render(opts Options) (*framebuffer.Image, *Stats, error) {
	if opts.Width <= 0 || opts.Height <= 0 {
		return nil, nil, fmt.Errorf("raster: invalid image size %dx%d", opts.Width, opts.Height)
	}
	a := &r.arena
	a.init(r)
	a.opts = opts
	a.cam = opts.Camera.Normalized()
	a.light = render.HeadLight(a.cam)
	if opts.Light != nil {
		a.light = *opts.Light
	}
	a.cmap = opts.ColorMap
	if a.cmap == nil {
		if a.defaultCmap == nil {
			a.defaultCmap = framebuffer.CoolToWarm()
		}
		a.cmap = a.defaultCmap
	}
	m := r.Mesh
	n := m.NumTriangles()
	stats := &a.stats
	stats.Phases.Reset()
	stats.Objects = n
	stats.VisibleObjects, stats.PixelsConsidered, stats.ActivePixels = 0, 0, 0
	a.img.EnsureSize(opts.Width, opts.Height)
	img := &a.img
	a.matrix = a.cam.Matrix(opts.Width, opts.Height)
	a.norm = render.Normalizer{Min: m.ScalarMin, Max: m.ScalarMax}
	if cap(a.tris) < n {
		a.tris = make([]screenTri, n)
		a.visible = make([]bool, n)
	}
	a.tris, a.visible = a.tris[:n], a.visible[:n]

	// Transform + cull: project every triangle, flag the on-screen ones.
	start := time.Now()
	dpp.For(r.Dev, n, a.transformFn)
	stats.Phases.Add("transform", time.Since(start))

	// Stream compaction of visible triangles.
	start = time.Now()
	//insitu:leaselife-ok the arena field is itself frame-scoped; both reset on the next Render
	a.vis = a.compact.CompactIndices(a.visible)
	stats.VisibleObjects = len(a.vis)
	stats.Phases.Add("cull", time.Since(start))

	// Rasterize into the packed atomic depth buffer.
	start = time.Now()
	a.buf.EnsureSize(opts.Width, opts.Height)
	a.considered.Store(0)
	dpp.For(r.Dev, len(a.vis), a.rasterizeFn)
	stats.PixelsConsidered = a.considered.Load()
	stats.Phases.Add("rasterize", time.Since(start))

	// Resolve the packed buffer into the float framebuffer.
	start = time.Now()
	a.buf.Resolve(img)
	stats.Phases.Add("resolve", time.Since(start))
	stats.ActivePixels = img.ActivePixels()
	return img, stats, nil
}

// transformKernel projects triangles and flags on-screen ones.
func (a *rasterArena) transformKernel(lo, hi int) {
	m := a.r.Mesh
	w := float64(a.opts.Width)
	h := float64(a.opts.Height)
	for t := lo; t < hi; t++ {
		var st screenTri
		ok := true
		for c := 0; c < 3; c++ {
			vi := m.Conn[3*t+c]
			world := m.Vertex(vi)
			p, pw := a.matrix.TransformPoint(world)
			if pw <= 0 || p.Z < 0 || p.Z > 1 {
				ok = false
				break
			}
			st.x[c], st.y[c], st.z[c] = p.X, p.Y, p.Z
			base := a.cmap.Sample(a.norm.Normalize(m.Scalars[vi]))
			st.c[c] = gouraud(base, world, m.Normal(vi), world.Sub(a.cam.Position).Normalize(), a.light)
		}
		if ok {
			minX := math.Min(st.x[0], math.Min(st.x[1], st.x[2]))
			maxX := math.Max(st.x[0], math.Max(st.x[1], st.x[2]))
			minY := math.Min(st.y[0], math.Min(st.y[1], st.y[2]))
			maxY := math.Max(st.y[0], math.Max(st.y[1], st.y[2]))
			if maxX < 0 || minX >= w || maxY < 0 || minY >= h {
				ok = false
			}
		}
		a.visible[t] = ok
		if ok {
			a.tris[t] = st
		}
	}
}

// rasterizeKernel rasterizes visible triangles into the packed buffer.
func (a *rasterArena) rasterizeKernel(lo, hi int) {
	var localConsidered int64
	for i := lo; i < hi; i++ {
		st := &a.tris[a.vis[i]]
		localConsidered += rasterizeTri(st, &a.buf, a.opts.Width, a.opts.Height)
	}
	a.considered.Add(localConsidered)
}

// rasterizeTri samples barycentric coordinates over the triangle's screen
// bounding box and returns the number of pixels considered.
func rasterizeTri(st *screenTri, buf *framebuffer.PackedBuffer, w, h int) int64 {
	minX := int(math.Floor(math.Min(st.x[0], math.Min(st.x[1], st.x[2]))))
	maxX := int(math.Ceil(math.Max(st.x[0], math.Max(st.x[1], st.x[2]))))
	minY := int(math.Floor(math.Min(st.y[0], math.Min(st.y[1], st.y[2]))))
	maxY := int(math.Ceil(math.Max(st.y[0], math.Max(st.y[1], st.y[2]))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > w-1 {
		maxX = w - 1
	}
	if maxY > h-1 {
		maxY = h - 1
	}
	if minX > maxX || minY > maxY {
		return 0
	}

	x0, y0 := st.x[0], st.y[0]
	x1, y1 := st.x[1], st.y[1]
	x2, y2 := st.x[2], st.y[2]
	area := (x1-x0)*(y2-y0) - (y1-y0)*(x2-x0)
	if area == 0 {
		return int64(maxX-minX+1) * int64(maxY-minY+1)
	}
	inv := 1 / area

	var considered int64
	for py := minY; py <= maxY; py++ {
		fy := float64(py) + 0.5
		for px := minX; px <= maxX; px++ {
			considered++
			fx := float64(px) + 0.5
			// Signed edge functions give barycentric weights; accepting
			// both orientations makes rasterization two-sided like the
			// ray tracer.
			w0 := ((x1-fx)*(y2-fy) - (y1-fy)*(x2-fx)) * inv
			w1 := ((x2-fx)*(y0-fy) - (y2-fy)*(x0-fx)) * inv
			w2 := 1 - w0 - w1
			if w0 < 0 || w1 < 0 || w2 < 0 {
				continue
			}
			depth := w0*st.z[0] + w1*st.z[1] + w2*st.z[2]
			col := st.c[0].Scale(w0).Add(st.c[1].Scale(w1)).Add(st.c[2].Scale(w2))
			buf.Write(py*w+px, float32(depth),
				framebuffer.RGBA8(float32(col.X), float32(col.Y), float32(col.Z), 1))
		}
	}
	return considered
}

// gouraud evaluates per-vertex Blinn-Phong for interpolation.
func gouraud(base, pos, nrm, viewDir vecmath.Vec3, light render.Light) vecmath.Vec3 {
	toLight := light.Position.Sub(pos)
	dist := toLight.Length()
	l := toLight.Normalize()
	att := light.Intensity / (1 + 0.1*dist)
	diffuse := math.Abs(nrm.Dot(l))
	hv := l.Sub(viewDir).Normalize()
	spec := math.Pow(math.Abs(nrm.Dot(hv)), 30) * 0.25
	c := base.Scale(0.15 + 0.85*diffuse*att)
	return c.Add(vecmath.V(spec, spec, spec).Scale(att))
}
