package raster

import (
	"testing"

	"insitu/internal/device"
	"insitu/internal/mesh"
	"insitu/internal/mesh/synthdata"
	"insitu/internal/render"
	"insitu/internal/render/raytrace"
	"insitu/internal/vecmath"
)

func testScene(t *testing.T, n int) *mesh.TriangleMesh {
	t.Helper()
	ds, err := synthdata.ByName("nek")
	if err != nil {
		t.Fatal(err)
	}
	g := synthdata.Grid(ds.FieldName, ds.Func, n, n, n, synthdata.UnitBounds())
	m, err := g.Isosurface(device.CPU(), ds.FieldName, ds.Isovalue, mesh.IsoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRenderBasics(t *testing.T) {
	m := testScene(t, 14)
	r := New(device.CPU(), m)
	opts := Options{Width: 96, Height: 72, Camera: render.OrbitCamera(m.Bounds(), 30, 20, 1.0)}
	img, stats, err := r.Render(opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != m.NumTriangles() {
		t.Errorf("objects = %d", stats.Objects)
	}
	if stats.VisibleObjects == 0 || stats.VisibleObjects > stats.Objects {
		t.Errorf("visible objects = %d of %d", stats.VisibleObjects, stats.Objects)
	}
	if stats.PPT() <= 0 {
		t.Errorf("PPT = %v", stats.PPT())
	}
	if stats.ActivePixels == 0 || stats.ActivePixels != img.ActivePixels() {
		t.Errorf("active pixels = %d (image %d)", stats.ActivePixels, img.ActivePixels())
	}
	for _, phase := range []string{"transform", "cull", "rasterize", "resolve"} {
		if stats.Phases.Get(phase) <= 0 {
			t.Errorf("phase %q missing", phase)
		}
	}
}

func TestDepthOrdering(t *testing.T) {
	// Two parallel triangles; the nearer one must win the z-test.
	m := &mesh.TriangleMesh{
		X:       []float64{-1, 1, 0 /* near */, -1, 1, 0 /* far */},
		Y:       []float64{-1, -1, 1, -1, -1, 1},
		Z:       []float64{1, 1, 1, 0, 0, 0},
		Conn:    []int32{0, 1, 2, 3, 4, 5},
		Scalars: []float64{0, 0, 0, 1, 1, 1}, // near is "cold", far is "warm"
	}
	m.UpdateScalarRange()
	r := New(device.Serial(), m)
	cam := render.Camera{Position: vecmath.V(0, 0, 5), LookAt: vecmath.V(0, 0, 0.5)}
	img, _, err := r.Render(Options{Width: 64, Height: 64, Camera: cam})
	if err != nil {
		t.Fatal(err)
	}
	// Center pixel: the near (z=1) triangle is cold -> blue-dominant.
	cr, _, cb, ca := img.At(32, 36)
	if ca == 0 {
		t.Fatal("center pixel empty")
	}
	if cb <= cr {
		t.Errorf("near triangle should win: r=%v b=%v", cr, cb)
	}
}

func TestCoverageMatchesRayTracer(t *testing.T) {
	// Object-order and image-order renderers must agree on silhouette
	// coverage to within a small tolerance.
	m := testScene(t, 12)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	w, h := 96, 72
	rastImg, _, err := New(device.CPU(), m).Render(Options{Width: w, Height: h, Camera: cam})
	if err != nil {
		t.Fatal(err)
	}
	rtImg, _, err := raytrace.New(device.CPU(), m).Render(raytrace.Options{
		Width: w, Height: h, Camera: cam, Workload: raytrace.Workload1,
	})
	if err != nil {
		t.Fatal(err)
	}
	both, either := 0, 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			_, _, _, ra := rastImg.At(x, y)
			_, _, _, ta := rtImg.At(x, y)
			r := ra > 0
			tt := ta > 0
			if r || tt {
				either++
			}
			if r && tt {
				both++
			}
		}
	}
	if either == 0 {
		t.Fatal("no coverage at all")
	}
	overlap := float64(both) / float64(either)
	if overlap < 0.9 {
		t.Errorf("coverage overlap only %.2f", overlap)
	}
}

func TestDeterministicImageAcrossDevices(t *testing.T) {
	// The packed z-buffer resolves races by depth, and Gouraud colors are
	// deterministic, so images must match bit-for-bit unless two fragments
	// tie in depth. Use a scene without coplanar overlaps.
	m := testScene(t, 10)
	cam := render.OrbitCamera(m.Bounds(), 30, 20, 1.0)
	imgs := make([][]float32, 0, 2)
	for _, dev := range []*device.Device{device.Serial(), device.New("w4", 4)} {
		img, _, err := New(dev, m).Render(Options{Width: 64, Height: 48, Camera: cam})
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, img.Color)
	}
	diff := 0
	for i := range imgs[0] {
		if imgs[0][i] != imgs[1][i] {
			diff++
		}
	}
	if diff > len(imgs[0])/100 {
		t.Errorf("%d of %d channels differ across devices", diff, len(imgs[0]))
	}
}

func TestInvalidSize(t *testing.T) {
	m := testScene(t, 8)
	if _, _, err := New(device.CPU(), m).Render(Options{Width: -1, Height: 5}); err == nil {
		t.Error("expected error")
	}
}

func TestEmptyMesh(t *testing.T) {
	m := &mesh.TriangleMesh{}
	cam := render.Camera{Position: vecmath.V(0, 0, 5)}
	img, stats, err := New(device.CPU(), m).Render(Options{Width: 32, Height: 32, Camera: cam})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VisibleObjects != 0 || img.ActivePixels() != 0 {
		t.Error("empty mesh should render nothing")
	}
}

func TestBehindCameraCulled(t *testing.T) {
	// Geometry behind the camera must be culled, not smeared across the
	// screen.
	m := &mesh.TriangleMesh{
		X:       []float64{-1, 1, 0},
		Y:       []float64{-1, -1, 1},
		Z:       []float64{10, 10, 10}, // behind a camera at z=5 looking at -z
		Conn:    []int32{0, 1, 2},
		Scalars: []float64{0, 0, 0},
	}
	m.UpdateScalarRange()
	cam := render.Camera{Position: vecmath.V(0, 0, 5), LookAt: vecmath.V(0, 0, 0)}
	img, stats, err := New(device.CPU(), m).Render(Options{Width: 32, Height: 32, Camera: cam})
	if err != nil {
		t.Fatal(err)
	}
	if stats.VisibleObjects != 0 || img.ActivePixels() != 0 {
		t.Errorf("behind-camera triangle rendered: VO=%d AP=%d", stats.VisibleObjects, img.ActivePixels())
	}
}
