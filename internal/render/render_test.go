package render

import (
	"math"
	"testing"
	"time"

	"insitu/internal/vecmath"
)

func TestTimings(t *testing.T) {
	var tm Timings
	tm.Add("a", time.Second)
	tm.Add("b", 2*time.Second)
	tm.Add("a", time.Second)
	if tm.Get("a") != 2*time.Second {
		t.Errorf("a = %v", tm.Get("a"))
	}
	if tm.Get("missing") != 0 {
		t.Errorf("missing = %v", tm.Get("missing"))
	}
	if tm.Total() != 4*time.Second {
		t.Errorf("total = %v", tm.Total())
	}
	names := tm.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if tm.String() == "" {
		t.Error("empty String()")
	}
}

func TestNormalizer(t *testing.T) {
	n := Normalizer{Min: 10, Max: 20}
	if n.Normalize(15) != 0.5 {
		t.Errorf("mid = %v", n.Normalize(15))
	}
	if n.Normalize(5) != 0 || n.Normalize(25) != 1 {
		t.Error("clamping broken")
	}
	flat := Normalizer{Min: 3, Max: 3}
	if flat.Normalize(3) != 0.5 {
		t.Error("degenerate range should map to 0.5")
	}
}

func TestCameraRayThroughCenterHitsLookAt(t *testing.T) {
	cam := Camera{Position: vecmath.V(0, 0, 5), LookAt: vecmath.V(0, 0, 0)}
	r := cam.Ray(319.5, 239.5, 0.5, 0.5, 640, 480)
	// The center ray should pass very near the look-at point.
	tClosest := r.Dir.Dot(cam.LookAt.Sub(r.Orig))
	closest := r.At(tClosest)
	if closest.Sub(cam.LookAt).Length() > 1e-2 {
		t.Errorf("center ray misses look-at by %v", closest.Sub(cam.LookAt).Length())
	}
	if math.Abs(r.Dir.Length()-1) > 1e-12 {
		t.Errorf("direction not unit: %v", r.Dir.Length())
	}
}

func TestOrbitCameraSeesBounds(t *testing.T) {
	b := vecmath.AABB{Min: vecmath.V(-1, -2, -1), Max: vecmath.V(3, 1, 2)}
	for name, cam := range StudyCameras(b) {
		r := cam.Ray(float64(320)-0.5, float64(240)-0.5, 0.5, 0.5, 640, 480)
		if _, _, hit := b.HitRay(r.Orig, r.InvDir(), 0, math.Inf(1)); !hit {
			t.Errorf("%s: center ray misses the bounds", name)
		}
		if b.Contains(cam.Position) {
			t.Errorf("%s: camera inside the data", name)
		}
	}
}

func TestOrbitCameraZoomMovesCloser(t *testing.T) {
	b := vecmath.AABB{Min: vecmath.V(0, 0, 0), Max: vecmath.V(1, 1, 1)}
	far := OrbitCamera(b, 30, 20, 0.5)
	near := OrbitCamera(b, 30, 20, 2)
	dFar := far.Position.Sub(b.Center()).Length()
	dNear := near.Position.Sub(b.Center()).Length()
	if dNear >= dFar {
		t.Errorf("zoomed camera not closer: %v vs %v", dNear, dFar)
	}
}

func TestCameraMatrixProjectsLookAtToCenter(t *testing.T) {
	cam := Camera{Position: vecmath.V(2, 3, 5), LookAt: vecmath.V(0.5, 0.5, 0.5)}
	m := cam.Matrix(800, 600)
	p, w := m.TransformPoint(cam.LookAt)
	if w <= 0 {
		t.Fatal("look-at behind camera")
	}
	if math.Abs(p.X-400) > 1e-6 || math.Abs(p.Y-300) > 1e-6 {
		t.Errorf("look-at projects to (%v,%v)", p.X, p.Y)
	}
}

func TestHeadLight(t *testing.T) {
	cam := Camera{Position: vecmath.V(1, 2, 3)}
	l := HeadLight(cam)
	if l.Position != cam.Position || l.Intensity != 1 {
		t.Errorf("headlight = %+v", l)
	}
}
