// Package render holds the types shared by the three renderers: cameras,
// lights, phase timing, and scalar-to-color normalization. The rendering
// study's camera placement helpers (zoomed-in and zoomed-out orbit views)
// live here too.
package render

import (
	"fmt"
	"math"
	"strings"
	"time"

	"insitu/internal/vecmath"
)

// Camera is a pinhole camera. Zero-value fields are replaced by defaults:
// Up (0,1,0), FOV 45 degrees, Near 1e-3, Far 1e3.
type Camera struct {
	Position vecmath.Vec3
	LookAt   vecmath.Vec3
	Up       vecmath.Vec3
	FOV      float64 // vertical field of view in degrees
	Near     float64
	Far      float64
}

// Normalized returns the camera with defaults filled in.
func (c Camera) Normalized() Camera {
	if c.Up == (vecmath.Vec3{}) {
		c.Up = vecmath.V(0, 1, 0)
	}
	if c.FOV == 0 {
		c.FOV = 45
	}
	if c.Near == 0 {
		c.Near = 1e-3
	}
	if c.Far == 0 {
		c.Far = 1e3
	}
	return c
}

// Basis returns the camera's orthonormal frame (right, up, forward).
func (c Camera) Basis() (right, up, forward vecmath.Vec3) {
	c = c.Normalized()
	forward = c.LookAt.Sub(c.Position).Normalize()
	right = forward.Cross(c.Up).Normalize()
	up = right.Cross(forward)
	return right, up, forward
}

// Ray returns the unit-direction primary ray through pixel center
// (px+0.5, py+0.5) with optional sub-pixel jitter (jx, jy in [0,1)).
func (c Camera) Ray(px, py, jx, jy float64, w, h int) vecmath.Ray {
	c = c.Normalized()
	right, up, forward := c.Basis()
	tanF := math.Tan(vecmath.Radians(c.FOV) / 2)
	aspect := float64(w) / float64(h)
	sx := (2*(px+jx)/float64(w) - 1) * tanF * aspect
	sy := (1 - 2*(py+jy)/float64(h)) * tanF
	dir := forward.Add(right.Scale(sx)).Add(up.Scale(sy)).Normalize()
	return vecmath.Ray{Orig: c.Position, Dir: dir}
}

// RayGen is a camera with its frame precomputed for one image size: the
// basis vectors, FOV tangent, and aspect ratio are evaluated once per
// frame instead of once per ray. Ray produces bit-identical rays to
// Camera.Ray (the same expressions over the same once-computed values),
// so hoisting ray generation through a RayGen never changes an image.
type RayGen struct {
	pos, right, up, forward vecmath.Vec3
	tanF, aspect            float64
	w, h                    float64
}

// NewRayGen precomputes the camera frame for a w x h image.
func (c Camera) NewRayGen(w, h int) RayGen {
	c = c.Normalized()
	right, up, forward := c.Basis()
	return RayGen{
		pos: c.Position, right: right, up: up, forward: forward,
		tanF:   math.Tan(vecmath.Radians(c.FOV) / 2),
		aspect: float64(w) / float64(h),
		w:      float64(w), h: float64(h),
	}
}

// Ray returns the unit-direction primary ray through (px+jx, py+jy).
//
//insitu:noalloc
func (g *RayGen) Ray(px, py, jx, jy float64) vecmath.Ray {
	sx := (2*(px+jx)/g.w - 1) * g.tanF * g.aspect
	sy := (1 - 2*(py+jy)/g.h) * g.tanF
	dir := g.forward.Add(g.right.Scale(sx)).Add(g.up.Scale(sy)).Normalize()
	return vecmath.Ray{Orig: g.pos, Dir: dir}
}

// Matrix returns the combined viewport * projection * view transform used
// by the object-order renderers. Transformed points land in pixel
// coordinates with depth in [0,1].
func (c Camera) Matrix(w, h int) vecmath.Mat4 {
	c = c.Normalized()
	view := vecmath.LookAt(c.Position, c.LookAt, c.Up)
	proj := vecmath.Perspective(c.FOV, float64(w)/float64(h), c.Near, c.Far)
	return vecmath.Viewport(w, h).MulMat(proj).MulMat(view)
}

// OrbitCamera positions a camera on an orbit around the bounds at the
// given azimuth/elevation (degrees). zoom 1 roughly fits the bounds to the
// viewport; larger zoom values fill the screen (the study's "close" view),
// smaller values surround the data with background (the "far" view).
func OrbitCamera(b vecmath.AABB, azimuthDeg, elevationDeg, zoom float64) Camera {
	center := b.Center()
	radius := b.Diagonal().Length() / 2
	if radius == 0 {
		radius = 1
	}
	if zoom <= 0 {
		zoom = 1
	}
	fov := 45.0
	dist := radius/math.Tan(vecmath.Radians(fov)/2)/zoom + radius*0.1
	az := vecmath.Radians(azimuthDeg)
	el := vecmath.Radians(elevationDeg)
	dir := vecmath.V(
		math.Cos(el)*math.Sin(az),
		math.Sin(el),
		math.Cos(el)*math.Cos(az),
	)
	return Camera{
		Position: center.Add(dir.Scale(dist)),
		LookAt:   center,
		FOV:      fov,
		Near:     dist / 100,
		Far:      dist + 4*radius,
	}
}

// StudyCameras returns the camera set the performance study renders from,
// mirroring the paper's front / back / zoomed-in positions.
func StudyCameras(b vecmath.AABB) map[string]Camera {
	return map[string]Camera{
		"front": OrbitCamera(b, 20, 15, 0.85),
		"back":  OrbitCamera(b, 200, 10, 0.85),
		"close": OrbitCamera(b, 35, 25, 1.9),
	}
}

// Light is a point light.
type Light struct {
	Position  vecmath.Vec3
	Intensity float64
}

// HeadLight places a light at the camera with unit intensity.
func HeadLight(c Camera) Light {
	return Light{Position: c.Normalized().Position, Intensity: 1}
}

// Timings is an ordered list of named phase durations, the per-phase
// timing record every renderer returns and the study regresses against.
type Timings struct {
	names     []string
	durations []time.Duration
}

// Add appends (or accumulates into) a named phase.
func (t *Timings) Add(name string, d time.Duration) {
	for i, n := range t.names {
		if n == name {
			t.durations[i] += d
			return
		}
	}
	t.names = append(t.names, name)
	t.durations = append(t.durations, d)
}

// Reset zeroes every phase duration while keeping the phase names, so a
// renderer's reused Timings records per-frame values without reallocating
// its entries each frame.
func (t *Timings) Reset() {
	for i := range t.durations {
		t.durations[i] = 0
	}
}

// Get returns a phase's duration (0 when absent).
func (t *Timings) Get(name string) time.Duration {
	for i, n := range t.names {
		if n == name {
			return t.durations[i]
		}
	}
	return 0
}

// Names returns the phase names in insertion order.
func (t *Timings) Names() []string { return append([]string(nil), t.names...) }

// Total sums all phases.
func (t *Timings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.durations {
		sum += d
	}
	return sum
}

// String formats the timings as "phase=dur phase=dur".
func (t *Timings) String() string {
	var sb strings.Builder
	for i, n := range t.names {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", n, t.durations[i].Round(time.Microsecond))
	}
	return sb.String()
}

// Normalizer maps scalars to [0,1] for color lookup.
type Normalizer struct {
	Min, Max float64
}

// Normalize returns (v-Min)/(Max-Min) clamped to [0,1].
//
//insitu:noalloc
func (n Normalizer) Normalize(v float64) float64 {
	if n.Max <= n.Min {
		return 0.5
	}
	return vecmath.Clamp((v-n.Min)/(n.Max-n.Min), 0, 1)
}
