package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/obs"
)

// SessionOptions configures an interactive-session run: each virtual
// client opens a streaming session, orbits the camera at a steady
// angular velocity with a think-time pause between frames (the idle
// headroom speculative prefetch renders into), and reports
// time-to-photon — the client-observed latency from asking for a pose
// to holding its pixels.
type SessionOptions struct {
	// Target is the base URL; Client issues the requests.
	Target string
	Client *http.Client
	// Opens are JSON bodies for POST /v1/session, assigned to clients
	// round-robin, so a mix of scene configurations shares the server.
	Opens [][]byte
	// Sessions is the number of concurrent virtual clients; Duration how
	// long each orbits.
	Sessions int
	Duration time.Duration
	// StepDegrees is the per-frame azimuth increment (default 15);
	// ThinkTime the pause between a frame's arrival and the next request
	// (default 50ms). Zero think time turns the orbit into a saturation
	// test where prefetch has no idle headroom to work with.
	StepDegrees float64
	ThinkTime   time.Duration
}

// SessionReport is the outcome of an interactive-session run,
// JSON-shaped like Report.
type SessionReport struct {
	Sessions int           `json:"sessions"`
	Duration time.Duration `json:"duration_nanos"`
	// Frames counts delivered frames across all sessions; Failed both
	// failed opens and failed frames.
	Frames uint64 `json:"frames"`
	Failed uint64 `json:"failed"`
	// PrefetchHits counts frames the server marked as served from a
	// speculatively rendered cache entry; CacheHits any cache-served
	// frame (prefetch hits included).
	PrefetchHits uint64 `json:"prefetch_hits"`
	CacheHits    uint64 `json:"cache_hits"`
	// Time-to-photon distribution over delivered frames, histogram-backed
	// with the full buckets alongside the headline percentiles.
	Avg     time.Duration     `json:"avg_nanos"`
	P50     time.Duration     `json:"p50_nanos"`
	P95     time.Duration     `json:"p95_nanos"`
	P99     time.Duration     `json:"p99_nanos"`
	Max     time.Duration     `json:"max_nanos"`
	Latency obs.HistogramJSON `json:"latency"`
}

// sessionOpenBody is the slice of the open response this package needs.
type sessionOpenBody struct {
	ID string `json:"session"`
}

// RunSessions drives Sessions concurrent orbiting clients against the
// target's session API and aggregates the time-to-photon distribution.
func RunSessions(opts SessionOptions) (SessionReport, error) {
	if len(opts.Opens) == 0 {
		return SessionReport{}, fmt.Errorf("loadgen: no session-open bodies configured")
	}
	if opts.Sessions < 1 {
		opts.Sessions = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	if opts.StepDegrees == 0 {
		opts.StepDegrees = 15
	}
	if opts.ThinkTime == 0 {
		opts.ThinkTime = 50 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	var (
		frames, failed, prefetch, cached atomic.Uint64
		wg                               sync.WaitGroup
		lat                              latencyAgg
	)
	deadline := time.Now().Add(opts.Duration)
	for c := 0; c < opts.Sessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id, az, err := openSession(client, opts.Target, opts.Opens[c%len(opts.Opens)])
			if err != nil {
				failed.Add(1)
				return
			}
			defer closeSession(client, opts.Target, id)
			for time.Now().Before(deadline) {
				az += opts.StepDegrees
				for az >= 360 {
					az -= 360
				}
				elapsed, pf, hit, err := sessionFrame(client, opts.Target, id, az)
				if err != nil {
					failed.Add(1)
					break
				}
				frames.Add(1)
				if pf {
					prefetch.Add(1)
				}
				if hit {
					cached.Add(1)
				}
				lat.observe(elapsed)
				time.Sleep(opts.ThinkTime)
			}
		}(c)
	}
	wg.Wait()

	rep := SessionReport{
		Sessions: opts.Sessions, Duration: opts.Duration,
		Frames: frames.Load(), Failed: failed.Load(),
		PrefetchHits: prefetch.Load(), CacheHits: cached.Load(),
	}
	lat.fill(&rep.Avg, &rep.P50, &rep.P95, &rep.P99, &rep.Max, &rep.Latency)
	return rep, nil
}

// openSession opens one streaming session and returns its token plus
// the opening azimuth (the orbit continues from there).
func openSession(client *http.Client, target string, body []byte) (id string, azimuth float64, err error) {
	req, err := http.NewRequest(http.MethodPost, target+"/v1/session", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", 0, fmt.Errorf("loadgen: open session: status %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var open sessionOpenBody
	if err := json.NewDecoder(resp.Body).Decode(&open); err != nil {
		return "", 0, fmt.Errorf("loadgen: open session: %w", err)
	}
	var opened struct {
		Azimuth float64 `json:"azimuth"`
	}
	_ = json.Unmarshal(body, &opened)
	return open.ID, opened.Azimuth, nil
}

// sessionFrame requests one pose and reports its time-to-photon plus
// the server's prefetch/cache verdict headers.
func sessionFrame(client *http.Client, target, id string, azimuth float64) (elapsed time.Duration, prefetchHit, cacheHit bool, err error) {
	u := target + "/v1/session/" + url.PathEscape(id) + "/frame?azimuth=" +
		strconv.FormatFloat(azimuth, 'g', -1, 64)
	start := time.Now()
	resp, err := client.Get(u)
	if err != nil {
		return 0, false, false, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed = time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return 0, false, false, fmt.Errorf("loadgen: frame status %d", resp.StatusCode)
	}
	return elapsed,
		resp.Header.Get("X-Renderd-Prefetch") == "hit",
		resp.Header.Get("X-Renderd-Cache") == "hit",
		nil
}

func closeSession(client *http.Client, target, id string) {
	req, err := http.NewRequest(http.MethodDelete, target+"/v1/session/"+url.PathEscape(id), nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// FPS is the sustained delivered frame rate across all sessions.
func (r SessionReport) FPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Frames) / r.Duration.Seconds()
}

// PrefetchHitRate is the fraction of delivered frames served from a
// speculatively rendered cache entry.
func (r SessionReport) PrefetchHitRate() float64 {
	if r.Frames == 0 {
		return 0
	}
	return float64(r.PrefetchHits) / float64(r.Frames)
}

// String renders the human report block.
func (r SessionReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  sessions:       %d clients for %s\n", r.Sessions, r.Duration)
	fmt.Fprintf(&b, "  frames:         %d delivered (%.1f fps aggregate), %d failed\n",
		r.Frames, r.FPS(), r.Failed)
	if r.Frames > 0 {
		fmt.Fprintf(&b, "  prefetch:       %.1f%% of frames pre-rendered (%d prefetch hits, %d cache hits)\n",
			100*r.PrefetchHitRate(), r.PrefetchHits, r.CacheHits)
		fmt.Fprintf(&b, "  time-to-photon: avg %s  p50 %s  p95 %s  p99 %s  max %s\n",
			r.Avg, r.P50, r.P95, r.P99, r.Max)
	}
	return b.String()
}
