// Package loadgen is the load-generator core shared by the serving
// binaries: advisord and renderd both sustain a fixed request mix
// against a target for a duration and report sustained QPS plus the
// latency distribution (p50/p95/p99, not just the mean — tail latency
// is what a deadline-scheduled service is judged on).
package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/obs"
)

// Shot is one request in the mix.
type Shot struct {
	Method string // default POST when Body != nil, else GET
	Path   string
	Body   []byte
}

// Options configures a run.
type Options struct {
	// Target is the base URL; Client issues the requests.
	Target string
	Client *http.Client
	// Shots is the request mix, replayed round-robin per worker.
	Shots []Shot
	// Duration and Concurrency shape the load.
	Duration    time.Duration
	Concurrency int
	// Accept classifies a status code as a successful answer (default:
	// 2xx). A deadline-gated 422 rejection, for example, is a correct
	// fast answer for renderd, not a failure.
	Accept func(status int) bool
	// Classify, when set, buckets every completed response (accepted or
	// not) by cause — e.g. "ok", "rejected", "degraded", "retried" from
	// the status and response headers — into Report.Breakdown. Transport
	// errors land in the "transport-error" bucket.
	Classify func(status int, header http.Header) string
}

// Report is the outcome of a run, JSON-shaped so chaos/session harnesses
// can persist full distributions, not just the headline percentiles.
type Report struct {
	OK          uint64        `json:"ok"`
	Failed      uint64        `json:"failed"`
	Duration    time.Duration `json:"duration_nanos"`
	Concurrency int           `json:"concurrency"`
	// Latency distribution over successful requests, read from the same
	// log-spaced histogram the serving path uses (no sample retention).
	Avg time.Duration `json:"avg_nanos"`
	P50 time.Duration `json:"p50_nanos"`
	P95 time.Duration `json:"p95_nanos"`
	P99 time.Duration `json:"p99_nanos"`
	Max time.Duration `json:"max_nanos"`
	// Latency carries the full histogram — buckets, count, sum — so a
	// consumer can merge runs or recompute any quantile.
	Latency obs.HistogramJSON `json:"latency"`
	// ByStatus counts accepted answers per status code.
	ByStatus map[int]uint64 `json:"by_status,omitempty"`
	// Breakdown counts every completed response per Classify bucket
	// (nil when no Classify hook was configured).
	Breakdown map[string]uint64 `json:"breakdown,omitempty"`
}

// latencyAgg accumulates a latency distribution concurrently: a shared
// lock-free histogram plus an exact max (the one statistic log-spaced
// buckets blur).
type latencyAgg struct {
	hist     obs.Histogram
	maxNanos atomic.Int64
}

func (a *latencyAgg) observe(d time.Duration) {
	a.hist.ObserveDuration(d)
	for {
		cur := a.maxNanos.Load()
		if int64(d) <= cur || a.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// fill writes the distribution into the report fields every loadgen
// report shares.
func (a *latencyAgg) fill(avg, p50, p95, p99, max *time.Duration, latency *obs.HistogramJSON) {
	snap := a.hist.Snapshot()
	if snap.Count == 0 {
		return
	}
	*avg = time.Duration(snap.Mean())
	*p50 = time.Duration(snap.Quantile(0.50))
	*p95 = time.Duration(snap.Quantile(0.95))
	*p99 = time.Duration(snap.Quantile(0.99))
	*max = time.Duration(a.maxNanos.Load())
	*latency = snap.JSON()
}

// Run sustains the mix against the target and aggregates the report.
func Run(opts Options) (Report, error) {
	if len(opts.Shots) == 0 {
		return Report{}, fmt.Errorf("loadgen: no shots configured")
	}
	if opts.Concurrency < 1 {
		opts.Concurrency = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	accept := opts.Accept
	if accept == nil {
		accept = func(status int) bool { return status >= 200 && status < 300 }
	}

	var (
		ok, failed atomic.Uint64
		wg         sync.WaitGroup
		mu         sync.Mutex
		lat        latencyAgg
		byStatus   = map[int]uint64{}
		breakdown  map[string]uint64
	)
	if opts.Classify != nil {
		breakdown = map[string]uint64{}
	}
	deadline := time.Now().Add(opts.Duration)
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localStatus := map[int]uint64{}
			localCause := map[string]uint64{}
			for i := w; time.Now().Before(deadline); i++ {
				sh := opts.Shots[i%len(opts.Shots)]
				method := sh.Method
				if method == "" {
					if sh.Body != nil {
						method = http.MethodPost
					} else {
						method = http.MethodGet
					}
				}
				req, err := http.NewRequest(method, opts.Target+sh.Path, bytes.NewReader(sh.Body))
				if err != nil {
					failed.Add(1)
					continue
				}
				if sh.Body != nil {
					req.Header.Set("Content-Type", "application/json")
				}
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					if opts.Classify != nil {
						localCause["transport-error"]++
					}
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if opts.Classify != nil {
					localCause[opts.Classify(resp.StatusCode, resp.Header)]++
				}
				if !accept(resp.StatusCode) {
					failed.Add(1)
					continue
				}
				lat.observe(time.Since(start))
				localStatus[resp.StatusCode]++
				ok.Add(1)
			}
			mu.Lock()
			for code, n := range localStatus {
				byStatus[code] += n
			}
			for cause, n := range localCause {
				breakdown[cause] += n
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	rep := Report{
		OK: ok.Load(), Failed: failed.Load(),
		Duration: opts.Duration, Concurrency: opts.Concurrency,
		ByStatus: byStatus, Breakdown: breakdown,
	}
	lat.fill(&rep.Avg, &rep.P50, &rep.P95, &rep.P99, &rep.Max, &rep.Latency)
	return rep, nil
}

// QPS is the sustained successful request rate.
func (r Report) QPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.OK) / r.Duration.Seconds()
}

// String renders the human report block both binaries print.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  requests:    %d ok, %d failed\n", r.OK, r.Failed)
	fmt.Fprintf(&b, "  sustained:   %.0f req/s over %s with %d clients\n",
		r.QPS(), r.Duration, r.Concurrency)
	if r.OK > 0 {
		fmt.Fprintf(&b, "  latency:     avg %s  p50 %s  p95 %s  p99 %s  max %s\n",
			r.Avg, r.P50, r.P95, r.P99, r.Max)
	}
	if len(r.ByStatus) > 1 {
		codes := make([]int, 0, len(r.ByStatus))
		for c := range r.ByStatus {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		fmt.Fprintf(&b, "  status mix: ")
		for _, c := range codes {
			fmt.Fprintf(&b, " %d x%d", c, r.ByStatus[c])
		}
		fmt.Fprintf(&b, "\n")
	}
	if len(r.Breakdown) > 0 {
		causes := make([]string, 0, len(r.Breakdown))
		for c := range r.Breakdown {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		fmt.Fprintf(&b, "  breakdown:  ")
		for _, c := range causes {
			fmt.Fprintf(&b, " %s x%d", c, r.Breakdown[c])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
