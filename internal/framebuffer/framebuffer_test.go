package framebuffer

import (
	"bytes"
	"image/png"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"insitu/internal/vecmath"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(depth float32, rgba uint32) bool {
		if depth < 0 {
			depth = -depth
		}
		d, c := Unpack(Pack(depth, rgba))
		return d == depth && c == rgba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackOrderingMatchesDepth(t *testing.T) {
	// For non-negative depths, packed words must order like depths, which
	// is what makes the atomic-min z-test correct.
	f := func(a, b float32) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		pa, pb := Pack(a, 0xffffffff), Pack(b, 0)
		if a < b {
			return pa < pb
		}
		if a > b {
			return pa > pb
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedBufferConcurrentMin(t *testing.T) {
	b := NewPackedBuffer(4, 4)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for n := 0; n < 2000; n++ {
				i := rng.Intn(16)
				b.Write(i, 1+rng.Float32()*100, uint32(rng.Int63()))
			}
		}(w)
	}
	wg.Wait()
	// Now write a definitive minimum and ensure it sticks.
	for i := 0; i < 16; i++ {
		b.Write(i, 0.001, 0xdeadbeef)
	}
	img := NewImage(4, 4)
	b.Resolve(img)
	for i := 0; i < 16; i++ {
		if img.Depth[i] != 0.001 {
			t.Fatalf("pixel %d depth = %v, min write lost", i, img.Depth[i])
		}
	}
}

func TestDepthCompositeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func() *Image {
		im := NewImage(8, 8)
		for i := 0; i < 64; i++ {
			if rng.Float32() < 0.7 {
				im.Set(i%8, i/8, rng.Float32(), rng.Float32(), rng.Float32(), 1, rng.Float32()*10)
			}
		}
		return im
	}
	a, b := mk(), mk()
	ab := a.Clone()
	if err := ab.DepthCompositeFrom(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.DepthCompositeFrom(a); err != nil {
		t.Fatal(err)
	}
	for i := range ab.Depth {
		if ab.Depth[i] != ba.Depth[i] {
			t.Fatalf("depth differs at %d", i)
		}
	}
	for i := range ab.Color {
		if ab.Color[i] != ba.Color[i] {
			t.Fatalf("color differs at %d", i)
		}
	}
}

func TestDepthCompositeSizeMismatch(t *testing.T) {
	a, b := NewImage(4, 4), NewImage(5, 4)
	if err := a.DepthCompositeFrom(b); err == nil {
		t.Error("expected size mismatch error")
	}
	if err := a.BlendUnder(b); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestBlendUnderAssociative(t *testing.T) {
	// (a under b) under c == a under (b under c) for premultiplied over.
	rng := rand.New(rand.NewSource(9))
	mk := func() *Image {
		im := NewImage(4, 4)
		for i := 0; i < 16; i++ {
			a := rng.Float32()
			im.Set(i%4, i/4, rng.Float32()*a, rng.Float32()*a, rng.Float32()*a, a, rng.Float32())
		}
		return im
	}
	a, b, c := mk(), mk(), mk()

	left := a.Clone()
	if err := left.BlendUnder(b); err != nil {
		t.Fatal(err)
	}
	if err := left.BlendUnder(c); err != nil {
		t.Fatal(err)
	}

	bc := b.Clone()
	if err := bc.BlendUnder(c); err != nil {
		t.Fatal(err)
	}
	right := a.Clone()
	if err := right.BlendUnder(bc); err != nil {
		t.Fatal(err)
	}

	for i := range left.Color {
		diff := left.Color[i] - right.Color[i]
		if diff < -1e-5 || diff > 1e-5 {
			t.Fatalf("blend not associative at %d: %v vs %v", i, left.Color[i], right.Color[i])
		}
	}
}

func TestActivePixels(t *testing.T) {
	im := NewImage(10, 10)
	if im.ActivePixels() != 0 {
		t.Errorf("fresh image has %d active pixels", im.ActivePixels())
	}
	im.Set(3, 4, 1, 0, 0, 1, 2.5)
	im.Set(9, 9, 0, 0, 0, 0.5, MaxDepth) // alpha-only counts too
	if got := im.ActivePixels(); got != 2 {
		t.Errorf("ActivePixels = %d want 2", got)
	}
}

func TestSubRangeWriteRangeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := NewImage(8, 4)
	for i := 0; i < 32; i++ {
		im.Set(i%8, i/8, rng.Float32(), rng.Float32(), rng.Float32(), 1, rng.Float32())
	}
	strip := im.SubRange(5, 21)
	out := NewImage(8, 4)
	out.WriteRange(5, strip)
	for i := 5; i < 21; i++ {
		if out.Depth[i] != im.Depth[i] {
			t.Fatalf("depth mismatch at %d", i)
		}
		for c := 0; c < 4; c++ {
			if out.Color[4*i+c] != im.Color[4*i+c] {
				t.Fatalf("color mismatch at %d", i)
			}
		}
	}
}

func TestEncodePNG(t *testing.T) {
	im := NewImage(16, 8)
	im.Set(1, 1, 1, 0, 0, 1, 0.5)
	var buf bytes.Buffer
	if err := im.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 16 || decoded.Bounds().Dy() != 8 {
		t.Errorf("decoded size = %v", decoded.Bounds())
	}
}

func TestColorMapEndpoints(t *testing.T) {
	cm := CoolToWarm()
	lo := cm.Sample(0)
	hi := cm.Sample(1)
	if lo.Z < lo.X {
		t.Errorf("cold end should be blue-ish: %v", lo)
	}
	if hi.X < hi.Z {
		t.Errorf("warm end should be red-ish: %v", hi)
	}
	// Out-of-range inputs clamp.
	if cm.Sample(-5) != lo || cm.Sample(7) != hi {
		t.Error("Sample should clamp out-of-range input")
	}
}

func TestColorMapInterpolates(t *testing.T) {
	cm := NewColorMap(
		[]float64{0, 1},
		[]vecmath.Vec3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 1, Z: 1}},
	)
	mid := cm.Sample(0.25)
	if mid.X < 0.2 || mid.X > 0.3 {
		t.Errorf("Sample(0.25) = %v, want ~0.25 gray", mid)
	}
}

func TestTransferFunctionMonotoneAlpha(t *testing.T) {
	tf := DefaultTransferFunction()
	prev := -1.0
	for i := 0; i <= 100; i++ {
		_, _, _, a := tf.Sample(float64(i) / 100)
		if a < prev-1e-12 {
			t.Fatalf("default transfer function opacity not monotone at %d: %v < %v", i, a, prev)
		}
		prev = a
	}
	if _, _, _, a := tf.Sample(0); a != 0 {
		t.Errorf("alpha at 0 = %v", a)
	}
}
