package framebuffer

import "insitu/internal/vecmath"

// ColorMap maps a scalar in [0,1] to an RGB color via piecewise-linear
// interpolation between stops.
type ColorMap struct {
	positions []float64
	colors    []vecmath.Vec3
}

// NewColorMap builds a map from sorted stop positions (in [0,1]) and colors.
func NewColorMap(positions []float64, colors []vecmath.Vec3) *ColorMap {
	if len(positions) != len(colors) || len(positions) < 2 {
		panic("framebuffer: color map needs >= 2 matched stops")
	}
	return &ColorMap{positions: positions, colors: colors}
}

// CoolToWarm is the default scientific-visualization diverging map.
func CoolToWarm() *ColorMap {
	return NewColorMap(
		[]float64{0, 0.5, 1},
		[]vecmath.Vec3{
			{X: 0.23, Y: 0.30, Z: 0.75},
			{X: 0.87, Y: 0.87, Z: 0.87},
			{X: 0.70, Y: 0.02, Z: 0.15},
		},
	)
}

// Inferno is a perceptually ordered sequential map (coarse approximation).
func Inferno() *ColorMap {
	return NewColorMap(
		[]float64{0, 0.25, 0.5, 0.75, 1},
		[]vecmath.Vec3{
			{X: 0.00, Y: 0.00, Z: 0.01},
			{X: 0.34, Y: 0.06, Z: 0.43},
			{X: 0.73, Y: 0.21, Z: 0.33},
			{X: 0.97, Y: 0.55, Z: 0.04},
			{X: 0.99, Y: 1.00, Z: 0.64},
		},
	)
}

// Sample returns the interpolated color for t clamped to [0,1].
//
//insitu:noalloc
func (cm *ColorMap) Sample(t float64) vecmath.Vec3 {
	return cm.sampleClamped(vecmath.Clamp(t, 0, 1))
}

// sampleClamped is Sample for a t already known to lie in [0,1], saving
// the redundant clamp on the transfer-function hot path.
func (cm *ColorMap) sampleClamped(t float64) vecmath.Vec3 {
	n := len(cm.positions)
	if t <= cm.positions[0] {
		return cm.colors[0]
	}
	for i := 1; i < n; i++ {
		if t <= cm.positions[i] {
			span := cm.positions[i] - cm.positions[i-1]
			f := 0.0
			if span > 0 {
				f = (t - cm.positions[i-1]) / span
			}
			return cm.colors[i-1].Lerp(cm.colors[i], f)
		}
	}
	return cm.colors[n-1]
}

// TransferFunction maps a scalar in [0,1] to premultiplied-ready RGBA for
// volume rendering: a color map plus a piecewise-linear opacity curve.
type TransferFunction struct {
	Colors   *ColorMap
	opacityP []float64
	opacityV []float64
}

// NewTransferFunction pairs a color map with an opacity ramp. Opacity
// positions must be sorted in [0,1].
func NewTransferFunction(cm *ColorMap, positions, opacities []float64) *TransferFunction {
	if len(positions) != len(opacities) || len(positions) < 2 {
		panic("framebuffer: transfer function needs >= 2 matched opacity stops")
	}
	return &TransferFunction{Colors: cm, opacityP: positions, opacityV: opacities}
}

// DefaultTransferFunction emphasizes high scalar values, the common default
// for density-like fields.
func DefaultTransferFunction() *TransferFunction {
	return NewTransferFunction(CoolToWarm(),
		[]float64{0, 0.3, 0.6, 1},
		[]float64{0, 0.005, 0.05, 0.35})
}

// Sample returns straight (non-premultiplied) RGBA for scalar t.
func (tf *TransferFunction) Sample(t float64) (r, g, b, a float64) {
	t = vecmath.Clamp(t, 0, 1)
	c := tf.Colors.sampleClamped(t)
	n := len(tf.opacityP)
	alpha := tf.opacityV[n-1]
	if t <= tf.opacityP[0] {
		alpha = tf.opacityV[0]
	} else {
		for i := 1; i < n; i++ {
			if t <= tf.opacityP[i] {
				span := tf.opacityP[i] - tf.opacityP[i-1]
				f := 0.0
				if span > 0 {
					f = (t - tf.opacityP[i-1]) / span
				}
				alpha = tf.opacityV[i-1] + f*(tf.opacityV[i]-tf.opacityV[i-1])
				break
			}
		}
	}
	return c.X, c.Y, c.Z, alpha
}
