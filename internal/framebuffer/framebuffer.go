// Package framebuffer provides the image types shared by the renderers and
// the compositor: float RGBA color plus depth, a lock-free packed depth
// buffer for the rasterizer, color maps, and PNG output.
package framebuffer

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
	"os"
)

// MaxDepth marks pixels never touched by a renderer.
const MaxDepth = float32(math.MaxFloat32)

// Image is a W x H framebuffer with float RGBA color and a float depth
// channel. Color is stored as 4 floats per pixel in row-major order.
type Image struct {
	W, H  int
	Color []float32 // RGBA, length 4*W*H
	Depth []float32 // length W*H
}

// NewImage allocates a cleared image (transparent black, MaxDepth).
func NewImage(w, h int) *Image {
	img := &Image{W: w, H: h, Color: make([]float32, 4*w*h), Depth: make([]float32, w*h)}
	img.Clear()
	return img
}

// EnsureSize resizes the image to w x h, reallocating only when the
// pixel count grows, and clears it. This is the frame-arena entry point:
// renderers that reuse one Image across frames call EnsureSize instead of
// NewImage, so steady-state frames allocate nothing.
func (im *Image) EnsureSize(w, h int) {
	n := w * h
	if cap(im.Color) < 4*n {
		im.Color = make([]float32, 4*n)
		im.Depth = make([]float32, n)
	}
	im.W, im.H = w, h
	im.Color = im.Color[:4*n]
	im.Depth = im.Depth[:n]
	im.Clear()
}

// Clear resets the image to transparent black at MaxDepth.
func (im *Image) Clear() {
	for i := range im.Color {
		im.Color[i] = 0
	}
	for i := range im.Depth {
		im.Depth[i] = MaxDepth
	}
}

// ClearColor fills every pixel with the given color at MaxDepth.
func (im *Image) ClearColor(r, g, b, a float32) {
	for i := 0; i < im.W*im.H; i++ {
		im.Color[4*i+0] = r
		im.Color[4*i+1] = g
		im.Color[4*i+2] = b
		im.Color[4*i+3] = a
	}
	for i := range im.Depth {
		im.Depth[i] = MaxDepth
	}
}

// Set writes a pixel's color and depth.
//
//insitu:noalloc
func (im *Image) Set(x, y int, r, g, b, a, depth float32) {
	i := y*im.W + x
	im.Color[4*i+0] = r
	im.Color[4*i+1] = g
	im.Color[4*i+2] = b
	im.Color[4*i+3] = a
	im.Depth[i] = depth
}

// At returns a pixel's color.
func (im *Image) At(x, y int) (r, g, b, a float32) {
	i := y*im.W + x
	return im.Color[4*i+0], im.Color[4*i+1], im.Color[4*i+2], im.Color[4*i+3]
}

// ActivePixels counts pixels written by a renderer: any pixel with depth
// below MaxDepth or nonzero alpha. This is the model input variable AP.
func (im *Image) ActivePixels() int {
	n := 0
	for i := 0; i < im.W*im.H; i++ {
		if im.Depth[i] < MaxDepth || im.Color[4*i+3] > 0 {
			n++
		}
	}
	return n
}

// DepthCompositeFrom merges other into im pixel-by-pixel, keeping the
// nearer fragment. This is the z-test operator used for opaque sort-last
// compositing; it is commutative and associative, so any compositing
// schedule produces the same image.
func (im *Image) DepthCompositeFrom(other *Image) error {
	if im.W != other.W || im.H != other.H {
		return fmt.Errorf("framebuffer: size mismatch %dx%d vs %dx%d", im.W, im.H, other.W, other.H)
	}
	for i := 0; i < im.W*im.H; i++ {
		if other.Depth[i] < im.Depth[i] {
			im.Depth[i] = other.Depth[i]
			copy(im.Color[4*i:4*i+4], other.Color[4*i:4*i+4])
		}
	}
	return nil
}

// BlendUnder composites im over other and stores the result in im,
// assuming both use premultiplied alpha and im is in front of other
// (the "under" operator as seen from im). Associative but not commutative:
// callers must respect visibility order.
func (im *Image) BlendUnder(other *Image) error {
	if im.W != other.W || im.H != other.H {
		return fmt.Errorf("framebuffer: size mismatch %dx%d vs %dx%d", im.W, im.H, other.W, other.H)
	}
	for i := 0; i < im.W*im.H; i++ {
		a := im.Color[4*i+3]
		t := 1 - a
		im.Color[4*i+0] += t * other.Color[4*i+0]
		im.Color[4*i+1] += t * other.Color[4*i+1]
		im.Color[4*i+2] += t * other.Color[4*i+2]
		im.Color[4*i+3] = a + t*other.Color[4*i+3]
		if other.Depth[i] < im.Depth[i] {
			im.Depth[i] = other.Depth[i]
		}
	}
	return nil
}

// CopyFrom makes im a deep copy of other, reusing im's buffers when they
// are large enough (the allocation-free form of Clone).
func (im *Image) CopyFrom(other *Image) {
	n := other.W * other.H
	if cap(im.Color) < 4*n {
		im.Color = make([]float32, 4*n)
		im.Depth = make([]float32, n)
	}
	im.W, im.H = other.W, other.H
	im.Color = im.Color[:4*n]
	im.Depth = im.Depth[:n]
	copy(im.Color, other.Color)
	copy(im.Depth, other.Depth)
}

// SubRangeInto copies the pixel range [lo, hi) of the flattened image
// into dst as a standalone strip, reusing dst's buffers (the
// allocation-free form of SubRange).
func (im *Image) SubRangeInto(lo, hi int, dst *Image) {
	n := hi - lo
	if cap(dst.Color) < 4*n {
		dst.Color = make([]float32, 4*n)
		dst.Depth = make([]float32, n)
	}
	dst.W, dst.H = n, 1
	dst.Color = dst.Color[:4*n]
	dst.Depth = dst.Depth[:n]
	copy(dst.Color, im.Color[4*lo:4*hi])
	copy(dst.Depth, im.Depth[lo:hi])
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := &Image{W: im.W, H: im.H, Color: make([]float32, len(im.Color)), Depth: make([]float32, len(im.Depth))}
	copy(out.Color, im.Color)
	copy(out.Depth, im.Depth)
	return out
}

// SubRange returns the pixel range [lo, hi) of the flattened image as a
// standalone image strip; used by the compositor's partition exchanges.
func (im *Image) SubRange(lo, hi int) *Image {
	n := hi - lo
	out := &Image{W: n, H: 1, Color: make([]float32, 4*n), Depth: make([]float32, n)}
	copy(out.Color, im.Color[4*lo:4*hi])
	copy(out.Depth, im.Depth[lo:hi])
	return out
}

// WriteRange copies a strip produced by SubRange back into [lo, hi).
func (im *Image) WriteRange(lo int, strip *Image) {
	copy(im.Color[4*lo:], strip.Color)
	copy(im.Depth[lo:], strip.Depth)
}

// ToRGBA converts to an 8-bit image, compositing onto an opaque white
// background and clamping.
func (im *Image) ToRGBA() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := y*im.W + x
			a := im.Color[4*i+3]
			bg := 1 - a
			r := im.Color[4*i+0] + bg
			g := im.Color[4*i+1] + bg
			b := im.Color[4*i+2] + bg
			out.SetRGBA(x, y, color.RGBA{
				R: clamp8(r),
				G: clamp8(g),
				B: clamp8(b),
				A: 255,
			})
		}
	}
	return out
}

func clamp8(v float32) uint8 {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return uint8(v*255 + 0.5)
}

// EncodePNG writes the image as PNG.
func (im *Image) EncodePNG(w io.Writer) error {
	return png.Encode(w, im.ToRGBA())
}

// SavePNG writes the image to a PNG file.
func (im *Image) SavePNG(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := im.EncodePNG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
