package framebuffer

import (
	"image"
	"image/color"
	"image/png"
	"io"
)

// PNGEncoder encodes Images to PNG while reusing its conversion and
// compression scratch across frames: the RGBA staging image and the png
// package's encoder buffers survive between Encode calls, so a serving
// path that encodes a frame per request allocates only the output bytes.
// An encoder is not safe for concurrent use; give each worker its own.
type PNGEncoder struct {
	rgba *image.RGBA
	enc  png.Encoder
	buf  *png.EncoderBuffer
}

// Get and Put implement png.EncoderBufferPool over the single retained
// buffer, which is all a single-threaded encoder needs.
func (e *PNGEncoder) Get() *png.EncoderBuffer  { return e.buf }
func (e *PNGEncoder) Put(b *png.EncoderBuffer) { e.buf = b }

// Encode writes im as PNG to w, staging through the reused RGBA image.
// The pixel conversion matches Image.ToRGBA: composited over a white
// background, opaque output.
//
//insitu:noalloc
func (e *PNGEncoder) Encode(w io.Writer, im *Image) error {
	//insitu:noalloc-ok image.Rect is a value constructor, no heap
	bounds := image.Rect(0, 0, im.W, im.H)
	n := 4 * im.W * im.H
	if e.rgba == nil || cap(e.rgba.Pix) < n {
		//insitu:noalloc-ok capacity-guarded staging growth: reused across frames at steady resolution
		e.rgba = image.NewRGBA(bounds)
	} else if e.rgba.Rect != bounds {
		//insitu:noalloc-ok re-slicing the retained staging buffer on resolution change, no pixel alloc
		e.rgba = &image.RGBA{Pix: e.rgba.Pix[:n], Stride: 4 * im.W, Rect: bounds}
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := y*im.W + x
			a := im.Color[4*i+3]
			bg := 1 - a
			//insitu:noalloc-ok SetRGBA writes 4 bytes in place into the retained staging buffer
			e.rgba.SetRGBA(x, y, color.RGBA{
				R: clamp8(im.Color[4*i+0] + bg),
				G: clamp8(im.Color[4*i+1] + bg),
				B: clamp8(im.Color[4*i+2] + bg),
				A: 255,
			})
		}
	}
	if e.enc.BufferPool == nil {
		e.enc.BufferPool = e
	}
	//insitu:noalloc-ok the png encoder reuses our pooled EncoderBuffer; only the caller-owned output grows
	return e.enc.Encode(w, e.rgba)
}
