package framebuffer

import (
	"math"
	"sync/atomic"
)

// PackedBuffer is a lock-free z-buffer for object-order rasterization.
// Each pixel is one uint64: the high 32 bits hold the depth's IEEE bits
// (monotone for non-negative floats), the low 32 bits hold RGBA8. An
// atomic-min loop makes concurrent triangle writes race-free without
// per-pixel locks — the data-parallel substitute for the GPU's ROP units.
type PackedBuffer struct {
	W, H  int
	words []uint64
}

const clearWord = uint64(math.MaxUint64)

// NewPackedBuffer allocates a cleared packed buffer.
func NewPackedBuffer(w, h int) *PackedBuffer {
	b := &PackedBuffer{W: w, H: h, words: make([]uint64, w*h)}
	b.Clear()
	return b
}

// EnsureSize resizes the buffer to w x h, reallocating only when the
// pixel count grows, and clears it (the frame-arena analogue of
// Image.EnsureSize).
func (b *PackedBuffer) EnsureSize(w, h int) {
	n := w * h
	if cap(b.words) < n {
		b.words = make([]uint64, n)
	}
	b.W, b.H = w, h
	b.words = b.words[:n]
	b.Clear()
}

// Clear resets every pixel to "no fragment".
func (b *PackedBuffer) Clear() {
	for i := range b.words {
		b.words[i] = clearWord
	}
}

// Pack combines a non-negative depth and an RGBA8 color into one word.
func Pack(depth float32, rgba uint32) uint64 {
	return uint64(math.Float32bits(depth))<<32 | uint64(rgba)
}

// Unpack splits a packed word.
func Unpack(w uint64) (depth float32, rgba uint32) {
	return math.Float32frombits(uint32(w >> 32)), uint32(w)
}

// Write performs a depth-tested store at pixel index i. Smaller depth wins;
// concurrent writers are safe.
func (b *PackedBuffer) Write(i int, depth float32, rgba uint32) {
	packed := Pack(depth, rgba)
	addr := &b.words[i]
	for {
		cur := atomic.LoadUint64(addr)
		if packed >= cur {
			return
		}
		if atomic.CompareAndSwapUint64(addr, cur, packed) {
			return
		}
	}
}

// RGBA8 packs float color components into the low-word format.
func RGBA8(r, g, b, a float32) uint32 {
	return uint32(clamp8(r)) | uint32(clamp8(g))<<8 | uint32(clamp8(b))<<16 | uint32(clamp8(a))<<24
}

// Resolve unpacks the buffer into a float image. Untouched pixels stay at
// MaxDepth with zero color.
func (b *PackedBuffer) Resolve(img *Image) {
	for i, w := range b.words {
		if w == clearWord {
			continue
		}
		depth, rgba := Unpack(w)
		img.Depth[i] = depth
		img.Color[4*i+0] = float32(rgba&0xff) / 255
		img.Color[4*i+1] = float32((rgba>>8)&0xff) / 255
		img.Color[4*i+2] = float32((rgba>>16)&0xff) / 255
		img.Color[4*i+3] = float32((rgba>>24)&0xff) / 255
	}
}
