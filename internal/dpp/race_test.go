package dpp

import (
	"sync"
	"testing"

	"insitu/internal/device"
)

// TestConcurrentForSharedDevice hammers one shared device pool with
// concurrent launches from many goroutines — the contention pattern of a
// parallel study runner sharing renderer devices — and checks every
// launch still covers its index space exactly once. Run under -race via
// `make race` / `make ci`, this is the pool's data-race certificate.
func TestConcurrentForSharedDevice(t *testing.T) {
	d := device.New("shared", 4)
	d.Grain = 8
	d.Stats = &device.Stats{}
	defer d.Close()

	const goroutines = 6
	const launches = 25
	const n = 2048

	var wg sync.WaitGroup
	results := make([][]int32, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int32, n)
			for l := 0; l < launches; l++ {
				For(d, n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i]++
					}
				})
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g, out := range results {
		for i, c := range out {
			if c != launches {
				t.Fatalf("goroutine %d index %d visited %d times, want %d", g, i, c, launches)
			}
		}
	}
	if got := d.Stats.Launches(); got != goroutines*launches {
		t.Errorf("launches = %d, want %d", got, goroutines*launches)
	}
}

// TestConcurrentCompactors runs per-goroutine Compactors against one
// shared device, mirroring how each renderer arena owns a compactor but
// shares the device pool.
func TestConcurrentCompactors(t *testing.T) {
	d := device.New("shared", 3)
	d.Grain = 4
	defer d.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewCompactor(d)
			flags := make([]bool, 1500)
			for i := range flags {
				flags[i] = (i+g)%3 == 0
			}
			for l := 0; l < 10; l++ {
				idx := c.CompactIndices(flags)
				want := 0
				for i, f := range flags {
					if f {
						if idx[want] != int32(i) {
							t.Errorf("goroutine %d: idx[%d] = %d, want %d", g, want, idx[want], i)
							return
						}
						want++
					}
				}
				if len(idx) != want {
					t.Errorf("goroutine %d: len = %d, want %d", g, len(idx), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestForWorkerSlots checks ForWorker hands every participant a distinct
// slot below Workers, the invariant per-worker scratch indexing relies on.
func TestForWorkerSlots(t *testing.T) {
	d := device.New("slots", 5)
	d.Grain = 1
	defer d.Close()
	n := 500
	hits := make([]int32, n)
	slotSeen := make([]int32, d.Workers)
	var mu sync.Mutex
	ForWorker(d, n, func(w, lo, hi int) {
		if w < 0 || w >= d.Workers {
			t.Errorf("slot %d out of range [0,%d)", w, d.Workers)
		}
		mu.Lock()
		slotSeen[w]++
		mu.Unlock()
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, c := range hits {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// TestStatsWakesPooled pins the pooled occupancy accounting: wakes count
// pool workers accepting a launch (never the launching goroutine), busy
// time accumulates per wake, and serial devices never wake anything.
func TestStatsWakesPooled(t *testing.T) {
	d := device.New("pooled", 4)
	d.Grain = 1
	d.Stats = &device.Stats{}
	defer d.Close()

	const launches = 8
	for l := 0; l < launches; l++ {
		For(d, 10000, func(lo, hi int) {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			_ = s
		})
	}
	if got := d.Stats.Launches(); got != launches {
		t.Errorf("launches = %d, want %d", got, launches)
	}
	if w := d.Stats.Wakes(); w < 0 || w > int64(launches*(d.Workers-1)) {
		t.Errorf("wakes = %d, want within [0, %d]", w, launches*(d.Workers-1))
	}
	if d.Stats.Busy() <= 0 {
		t.Error("busy time not accumulated")
	}
	if d.Stats.Items() != launches*10000 {
		t.Errorf("items = %d", d.Stats.Items())
	}

	serial := device.Serial()
	serial.Stats = &device.Stats{}
	For(serial, 5000, func(lo, hi int) {})
	if serial.Stats.Wakes() != 0 {
		t.Errorf("serial device recorded %d wakes", serial.Stats.Wakes())
	}
	if serial.Stats.Launches() != 1 || serial.Stats.Busy() < 0 {
		t.Error("serial stats wrong")
	}
}

// TestCloseFallsBackToInline verifies a closed device still executes
// launches correctly (on the calling goroutine) and stops accumulating
// wakes.
func TestCloseFallsBackToInline(t *testing.T) {
	d := device.New("closed", 4)
	d.Grain = 1
	d.Stats = &device.Stats{}
	For(d, 100, func(lo, hi int) {}) // spin the pool up
	d.Close()
	base := d.Stats.Wakes()

	out := make([]int32, 3000)
	For(d, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i]++
		}
	})
	for i, c := range out {
		if c != 1 {
			t.Fatalf("index %d visited %d times after Close", i, c)
		}
	}
	if w := d.Stats.Wakes(); w != base {
		t.Errorf("wakes grew after Close: %d -> %d", base, w)
	}
	d.Close() // idempotent
}
