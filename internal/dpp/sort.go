package dpp

import "insitu/internal/device"

// SortPairs64 sorts keys ascending, permuting vals identically, using a
// parallel least-significant-digit radix sort (8-bit digits, 8 passes).
// It is the primitive behind morton-code sorting for LBVH construction and
// the GPU-style radix sort used in the HAVS comparison.
func SortPairs64(d *device.Device, keys []uint64, vals []int32) {
	n := len(keys)
	if n != len(vals) {
		panic("dpp: SortPairs64 length mismatch")
	}
	if n < 2 {
		return
	}
	tmpK := make([]uint64, n)
	tmpV := make([]int32, n)
	srcK, srcV := keys, vals
	dstK, dstV := tmpK, tmpV
	const radix = 256
	ch := chunksFor(d, n)
	hist := make([][]int32, ch.num)
	for pass := 0; pass < 8; pass++ {
		shift := uint(pass * 8)
		For(d, ch.num, func(clo, chi int) {
			for c := clo; c < chi; c++ {
				h := hist[c]
				if h == nil {
					h = make([]int32, radix)
					hist[c] = h
				} else {
					for b := range h {
						h[b] = 0
					}
				}
				lo, hi := ch.bounds(c)
				for i := lo; i < hi; i++ {
					h[(srcK[i]>>shift)&0xff]++
				}
			}
		})
		// Exclusive scan in bucket-major, chunk-minor order so each chunk
		// scatters into a private, stable range.
		var running int32
		for b := 0; b < radix; b++ {
			for c := 0; c < ch.num; c++ {
				count := hist[c][b]
				hist[c][b] = running
				running += count
			}
		}
		For(d, ch.num, func(clo, chi int) {
			for c := clo; c < chi; c++ {
				cursors := hist[c]
				lo, hi := ch.bounds(c)
				for i := lo; i < hi; i++ {
					b := (srcK[i] >> shift) & 0xff
					pos := cursors[b]
					cursors[b] = pos + 1
					dstK[pos] = srcK[i]
					dstV[pos] = srcV[i]
				}
			}
		})
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	// Eight passes is even, so the result is back in keys/vals.
}

// SortPairs32 sorts 32-bit keys ascending with an identically permuted
// payload (4 radix passes).
func SortPairs32(d *device.Device, keys []uint32, vals []int32) {
	n := len(keys)
	if n != len(vals) {
		panic("dpp: SortPairs32 length mismatch")
	}
	if n < 2 {
		return
	}
	wide := make([]uint64, n)
	For(d, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			wide[i] = uint64(keys[i])
		}
	})
	SortPairs64(d, wide, vals)
	For(d, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = uint32(wide[i])
		}
	})
}

// IsSorted reports whether keys are in non-decreasing order.
func IsSorted(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}
