// Package dpp implements the data-parallel primitives the paper's
// renderers are built from: map, gather, scatter, reduce, scan, stream
// compaction, and key/value radix sort (Blelloch's vector model, the
// vocabulary of EAVL and VTK-m). Every primitive executes on a
// device.Device worker pool, so one algorithm runs unchanged on every
// simulated architecture profile.
package dpp

import (
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/device"
)

// chunkRanges splits n items into contiguous chunks compatible with the
// device's grain, returning the chunk boundaries. At least one chunk is
// returned for n > 0.
func chunkRanges(d *device.Device, n int) []int {
	if n <= 0 {
		return nil
	}
	workers := d.Workers
	if workers < 1 {
		workers = 1
	}
	grain := d.Grain
	if grain < 1 {
		grain = 1
	}
	// Aim for a few chunks per worker so dynamic scheduling can balance
	// irregular work, without dropping below the grain size.
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < grain {
		chunk = grain
	}
	num := (n + chunk - 1) / chunk
	bounds := make([]int, num+1)
	for i := 0; i <= num; i++ {
		b := i * chunk
		if b > n {
			b = n
		}
		bounds[i] = b
	}
	bounds[num] = n
	return bounds
}

// For executes body over [0, n) in parallel chunks. body receives
// half-open ranges and must be safe to run concurrently with itself on
// disjoint ranges. Chunks are scheduled dynamically so irregular per-item
// cost (long rays, dense cells) balances across workers.
func For(d *device.Device, n int, body func(lo, hi int)) {
	bounds := chunkRanges(d, n)
	if bounds == nil {
		return
	}
	numChunks := len(bounds) - 1
	if d.Stats != nil {
		d.Stats.AddLaunch()
		d.Stats.AddItems(int64(n))
	}
	if numChunks == 1 || d.Workers <= 1 {
		start := time.Now()
		body(0, n)
		if d.Stats != nil {
			d.Stats.AddBusy(time.Since(start))
		}
		return
	}
	workers := d.Workers
	if workers > numChunks {
		workers = numChunks
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			start := time.Now()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= numChunks {
					break
				}
				body(bounds[c], bounds[c+1])
			}
			if d.Stats != nil {
				d.Stats.AddBusy(time.Since(start))
			}
		}()
	}
	wg.Wait()
}

// ForEach executes f once per index in [0, n), in parallel.
func ForEach(d *device.Device, n int, f func(i int)) {
	For(d, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// Map applies f to every element of in, writing results to out.
// len(out) must be at least len(in).
func Map[T, U any](d *device.Device, in []T, out []U, f func(T) U) {
	For(d, len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(in[i])
		}
	})
}

// Fill sets every element of out to v.
func Fill[T any](d *device.Device, out []T, v T) {
	For(d, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = v
		}
	})
}

// Gather copies in[idx[i]] into out[i] for every i. len(out) and len(idx)
// must match; indices must be within in.
func Gather[T any](d *device.Device, idx []int32, in, out []T) {
	For(d, len(idx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = in[idx[i]]
		}
	})
}

// Scatter copies in[i] into out[idx[i]] for every i. The caller must
// guarantee indices are unique, otherwise the result is racy — the same
// caution the paper attaches to the scatter primitive.
func Scatter[T any](d *device.Device, idx []int32, in, out []T) {
	For(d, len(idx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[idx[i]] = in[i]
		}
	})
}

// Reduce combines all elements of in with an associative op starting from
// the identity id. Chunk partials are combined in chunk order, so
// floating-point results are deterministic for a fixed device geometry.
func Reduce[T any](d *device.Device, in []T, id T, op func(a, b T) T) T {
	bounds := chunkRanges(d, len(in))
	if bounds == nil {
		return id
	}
	numChunks := len(bounds) - 1
	partials := make([]T, numChunks)
	For(d, numChunks, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			acc := id
			for i := bounds[c]; i < bounds[c+1]; i++ {
				acc = op(acc, in[i])
			}
			partials[c] = acc
		}
	})
	acc := id
	for _, p := range partials {
		acc = op(acc, p)
	}
	return acc
}

// MinMax returns the smallest and largest values of in. It panics on empty
// input.
func MinMax(d *device.Device, in []float64) (float64, float64) {
	if len(in) == 0 {
		panic("dpp: MinMax of empty slice")
	}
	lo, hi := in[0], in[0]
	bounds := chunkRanges(d, len(in))
	numChunks := len(bounds) - 1
	los := make([]float64, numChunks)
	his := make([]float64, numChunks)
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			l, h := in[bounds[c]], in[bounds[c]]
			for i := bounds[c] + 1; i < bounds[c+1]; i++ {
				v := in[i]
				if v < l {
					l = v
				}
				if v > h {
					h = v
				}
			}
			los[c], his[c] = l, h
		}
	})
	for c := 0; c < numChunks; c++ {
		if los[c] < lo {
			lo = los[c]
		}
		if his[c] > hi {
			hi = his[c]
		}
	}
	return lo, hi
}
