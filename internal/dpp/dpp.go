// Package dpp implements the data-parallel primitives the paper's
// renderers are built from: map, gather, scatter, reduce, scan, stream
// compaction, and key/value radix sort (Blelloch's vector model, the
// vocabulary of EAVL and VTK-m). Every primitive executes on a
// device.Device worker pool, so one algorithm runs unchanged on every
// simulated architecture profile.
//
// Launches are dispatched to the device's persistent worker pool: a
// launch wakes parked goroutines instead of spawning new ones, chunk
// geometry is computed arithmetically (no per-launch bounds allocation),
// and the launch descriptor itself is recycled through a sync.Pool. A
// steady-state For costs a few channel handoffs and zero heap
// allocations, which keeps the harness overhead out of the measured
// per-frame times the performance model is fitted against.
package dpp

import (
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/device"
)

// chunking is the chunk geometry of one launch: n items split into num
// chunks of size chunk (the last possibly short). It replaces the
// chunk-bounds slice the launcher used to allocate per launch; bounds are
// derived arithmetically instead.
type chunking struct {
	n, chunk, num int
}

// chunksFor splits n items into contiguous chunks compatible with the
// device's grain. The geometry depends only on (Workers, Grain, n), never
// on runtime scheduling, so chunk-ordered reductions stay deterministic
// for a fixed device profile.
//
//insitu:noalloc
func chunksFor(d *device.Device, n int) chunking {
	if n <= 0 {
		return chunking{}
	}
	workers := d.Workers
	if workers < 1 {
		workers = 1
	}
	grain := d.Grain
	if grain < 1 {
		grain = 1
	}
	// Aim for a few chunks per worker so dynamic scheduling can balance
	// irregular work, without dropping below the grain size.
	chunk := (n + workers*4 - 1) / (workers * 4)
	if chunk < grain {
		chunk = grain
	}
	num := (n + chunk - 1) / chunk
	return chunking{n: n, chunk: chunk, num: num}
}

// bounds returns the half-open item range of chunk i.
//
//insitu:noalloc
func (c chunking) bounds(i int) (lo, hi int) {
	lo = i * c.chunk
	hi = lo + c.chunk
	if hi > c.n {
		hi = c.n
	}
	return lo, hi
}

// launch is one in-flight parallel-for. It satisfies device.Runnable:
// every participant (the launcher plus each woken pool worker) calls
// runChunks, grabbing chunk indices from the shared atomic counter until
// the launch is exhausted. Launches are recycled through launchPool so
// the steady-state dispatch path performs no heap allocation.
type launch struct {
	body  func(lo, hi int)
	bodyW func(worker, lo, hi int)
	ch    chunking
	next  atomic.Int64
	slots atomic.Int64
	wg    sync.WaitGroup
	stats *device.Stats
}

var launchPool = sync.Pool{New: func() any { return new(launch) }}

// Run is the pool-worker entry: execute chunks, account the wake.
//
//insitu:noalloc
func (l *launch) Run() {
	start := time.Now()
	l.runChunks()
	if l.stats != nil {
		l.stats.AddBusy(time.Since(start))
		l.stats.AddWake()
	}
	l.wg.Done()
}

//insitu:noalloc
func (l *launch) runChunks() {
	slot := 0
	if l.bodyW != nil {
		slot = int(l.slots.Add(1)) - 1
	}
	for {
		c := int(l.next.Add(1)) - 1
		if c >= l.ch.num {
			return
		}
		lo, hi := l.ch.bounds(c)
		if l.bodyW != nil {
			l.bodyW(slot, lo, hi)
		} else {
			l.body(lo, hi)
		}
	}
}

// For executes body over [0, n) in parallel chunks. body receives
// half-open ranges and must be safe to run concurrently with itself on
// disjoint ranges. Chunks are scheduled dynamically so irregular per-item
// cost (long rays, dense cells) balances across workers. The launching
// goroutine always participates; a launch on a multi-worker device wakes
// parked pool workers rather than spawning goroutines, so concurrent
// launches on a shared device are safe and simply share the pool.
//
//insitu:noalloc
func For(d *device.Device, n int, body func(lo, hi int)) {
	forLaunch(d, n, body, nil)
}

// ForWorker is For with a stable per-participant slot id in [0, Workers)
// passed to the body, so kernels can index pre-allocated per-worker
// scratch (packet buffers, histograms) without allocation or false
// sharing. Slots are assigned per launch: the same goroutine may get a
// different slot on the next launch.
//
//insitu:noalloc
func ForWorker(d *device.Device, n int, body func(worker, lo, hi int)) {
	forLaunch(d, n, nil, body)
}

//insitu:noalloc
func forLaunch(d *device.Device, n int, body func(lo, hi int), bodyW func(worker, lo, hi int)) {
	ch := chunksFor(d, n)
	if ch.num == 0 {
		return
	}
	stats := d.Stats
	if stats != nil {
		stats.AddLaunch()
		stats.AddItems(int64(n))
	}
	if ch.num == 1 || d.Workers <= 1 {
		start := time.Now()
		if bodyW != nil {
			bodyW(0, 0, n)
		} else {
			body(0, n)
		}
		if stats != nil {
			stats.AddBusy(time.Since(start))
		}
		return
	}

	l := launchPool.Get().(*launch)
	l.body, l.bodyW, l.ch, l.stats = body, bodyW, ch, stats
	l.next.Store(0)
	l.slots.Store(0)

	want := d.Workers
	if want > ch.num {
		want = ch.num
	}
	if p := d.Pool(); p != nil && want > 1 {
		// Reserve the maximum wakes up front so a woken worker can never
		// Done before its Add, then return the unused reservations.
		k := want - 1
		l.wg.Add(k)
		woken := p.TryWake(l, k)
		if woken < k {
			l.wg.Add(woken - k)
		}
	}
	start := time.Now()
	l.runChunks()
	if stats != nil {
		stats.AddBusy(time.Since(start))
	}
	l.wg.Wait()

	l.body, l.bodyW, l.stats = nil, nil, nil
	launchPool.Put(l)
}

// ForEach executes f once per index in [0, n), in parallel.
func ForEach(d *device.Device, n int, f func(i int)) {
	For(d, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// Map applies f to every element of in, writing results to out.
// len(out) must be at least len(in).
func Map[T, U any](d *device.Device, in []T, out []U, f func(T) U) {
	For(d, len(in), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(in[i])
		}
	})
}

// Fill sets every element of out to v.
func Fill[T any](d *device.Device, out []T, v T) {
	For(d, len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = v
		}
	})
}

// Gather copies in[idx[i]] into out[i] for every i. len(out) and len(idx)
// must match; indices must be within in.
func Gather[T any](d *device.Device, idx []int32, in, out []T) {
	For(d, len(idx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = in[idx[i]]
		}
	})
}

// Scatter copies in[i] into out[idx[i]] for every i. The caller must
// guarantee indices are unique, otherwise the result is racy — the same
// caution the paper attaches to the scatter primitive.
func Scatter[T any](d *device.Device, idx []int32, in, out []T) {
	For(d, len(idx), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[idx[i]] = in[i]
		}
	})
}

// Reduce combines all elements of in with an associative op starting from
// the identity id. Chunk partials are combined in chunk order, so
// floating-point results are deterministic for a fixed device geometry.
func Reduce[T any](d *device.Device, in []T, id T, op func(a, b T) T) T {
	ch := chunksFor(d, len(in))
	if ch.num == 0 {
		return id
	}
	partials := make([]T, ch.num)
	For(d, ch.num, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := ch.bounds(c)
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, in[i])
			}
			partials[c] = acc
		}
	})
	acc := id
	for _, p := range partials {
		acc = op(acc, p)
	}
	return acc
}

// MinMax returns the smallest and largest values of in. It panics on empty
// input.
func MinMax(d *device.Device, in []float64) (float64, float64) {
	if len(in) == 0 {
		panic("dpp: MinMax of empty slice")
	}
	lo, hi := in[0], in[0]
	ch := chunksFor(d, len(in))
	los := make([]float64, ch.num)
	his := make([]float64, ch.num)
	For(d, ch.num, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			blo, bhi := ch.bounds(c)
			l, h := in[blo], in[blo]
			for i := blo + 1; i < bhi; i++ {
				v := in[i]
				if v < l {
					l = v
				}
				if v > h {
					h = v
				}
			}
			los[c], his[c] = l, h
		}
	})
	for c := 0; c < ch.num; c++ {
		if los[c] < lo {
			lo = los[c]
		}
		if his[c] > hi {
			hi = his[c]
		}
	}
	return lo, hi
}
