package dpp

import "insitu/internal/device"

// ScanExclusive writes the exclusive prefix combination of in into out and
// returns the total. op must be associative and id its identity. in and out
// may alias. The parallel scheme is the standard two-pass chunked scan:
// per-chunk totals, a serial scan of the totals, then a per-chunk sweep.
func ScanExclusive[T any](d *device.Device, in, out []T, id T, op func(a, b T) T) T {
	n := len(in)
	if n == 0 {
		return id
	}
	ch := chunksFor(d, n)
	sums := make([]T, ch.num)
	For(d, ch.num, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := ch.bounds(c)
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, in[i])
			}
			sums[c] = acc
		}
	})
	prefix := make([]T, ch.num)
	running := id
	for c := 0; c < ch.num; c++ {
		prefix[c] = running
		running = op(running, sums[c])
	}
	total := running
	For(d, ch.num, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := ch.bounds(c)
			acc := prefix[c]
			for i := lo; i < hi; i++ {
				v := in[i]
				out[i] = acc
				acc = op(acc, v)
			}
		}
	})
	return total
}

// ScanInclusive writes the inclusive prefix combination of in into out and
// returns the total. in and out may alias.
func ScanInclusive[T any](d *device.Device, in, out []T, id T, op func(a, b T) T) T {
	n := len(in)
	if n == 0 {
		return id
	}
	ch := chunksFor(d, n)
	sums := make([]T, ch.num)
	For(d, ch.num, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := ch.bounds(c)
			acc := id
			for i := lo; i < hi; i++ {
				acc = op(acc, in[i])
			}
			sums[c] = acc
		}
	})
	prefix := make([]T, ch.num)
	running := id
	for c := 0; c < ch.num; c++ {
		prefix[c] = running
		running = op(running, sums[c])
	}
	total := running
	For(d, ch.num, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := ch.bounds(c)
			acc := prefix[c]
			for i := lo; i < hi; i++ {
				acc = op(acc, in[i])
				out[i] = acc
			}
		}
	})
	return total
}

// CountTrue returns the number of set flags.
func CountTrue(d *device.Device, flags []bool) int {
	ch := chunksFor(d, len(flags))
	if ch.num == 0 {
		return 0
	}
	counts := make([]int, ch.num)
	For(d, ch.num, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := ch.bounds(c)
			k := 0
			for i := lo; i < hi; i++ {
				if flags[i] {
					k++
				}
			}
			counts[c] = k
		}
	})
	total := 0
	for _, k := range counts {
		total += k
	}
	return total
}

// CompactIndices returns the indices of the set flags, in ascending order.
// This is the reduce + exclusive scan + reverse-index sequence the paper's
// stream compaction uses, fused into a two-pass emit. The result is a
// fresh slice; steady-state callers should hold a Compactor instead.
func CompactIndices(d *device.Device, flags []bool) []int32 {
	var c Compactor
	c.Init(d)
	idx := c.CompactIndices(flags)
	if idx == nil {
		return nil
	}
	out := make([]int32, len(idx))
	copy(out, idx)
	return out
}

// Compact gathers the flagged elements of in into a new, smaller slice.
func Compact[T any](d *device.Device, in []T, flags []bool) []T {
	idx := CompactIndices(d, flags)
	out := make([]T, len(idx))
	Gather(d, idx, in, out)
	return out
}

// Compactor is the reusable, allocation-free form of CompactIndices: the
// per-chunk count scratch, the output index buffer, and the two kernel
// closures are built once and reused across calls, so stream compaction
// inside a steady-state frame loop costs no heap allocation. A Compactor
// is not safe for concurrent use.
type Compactor struct {
	d      *device.Device
	flags  []bool
	ch     chunking
	counts []int32
	out    []int32
	countF func(lo, hi int)
	emitF  func(lo, hi int)
}

// NewCompactor returns a Compactor bound to a device.
func NewCompactor(d *device.Device) *Compactor {
	c := &Compactor{}
	c.Init(d)
	return c
}

// Init (re)binds the Compactor to a device; useful for embedding a
// Compactor by value inside a larger arena.
func (c *Compactor) Init(d *device.Device) {
	c.d = d
	if c.countF == nil {
		c.countF = c.countRange
		c.emitF = c.emitRange
	}
}

func (c *Compactor) countRange(clo, chi int) {
	for k := clo; k < chi; k++ {
		lo, hi := c.ch.bounds(k)
		n := int32(0)
		for i := lo; i < hi; i++ {
			if c.flags[i] {
				n++
			}
		}
		c.counts[k] = n
	}
}

func (c *Compactor) emitRange(clo, chi int) {
	for k := clo; k < chi; k++ {
		lo, hi := c.ch.bounds(k)
		cur := c.counts[k]
		for i := lo; i < hi; i++ {
			if c.flags[i] {
				c.out[cur] = int32(i)
				cur++
			}
		}
	}
}

// CompactIndices returns the indices of the set flags in ascending order.
// The returned slice is owned by the Compactor and valid until the next
// call; callers that need to retain it must copy.
//
//insitu:arena
func (c *Compactor) CompactIndices(flags []bool) []int32 {
	c.ch = chunksFor(c.d, len(flags))
	if c.ch.num == 0 {
		return nil
	}
	c.flags = flags
	if cap(c.counts) < c.ch.num {
		c.counts = make([]int32, c.ch.num)
	}
	c.counts = c.counts[:c.ch.num]
	For(c.d, c.ch.num, c.countF)
	total := int32(0)
	for k := range c.counts {
		n := c.counts[k]
		c.counts[k] = total
		total += n
	}
	if cap(c.out) < int(total) {
		c.out = make([]int32, total)
	}
	c.out = c.out[:total]
	For(c.d, c.ch.num, c.emitF)
	c.flags = nil
	return c.out
}
