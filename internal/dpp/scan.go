package dpp

import "insitu/internal/device"

// ScanExclusive writes the exclusive prefix combination of in into out and
// returns the total. op must be associative and id its identity. in and out
// may alias. The parallel scheme is the standard two-pass chunked scan:
// per-chunk totals, a serial scan of the totals, then a per-chunk sweep.
func ScanExclusive[T any](d *device.Device, in, out []T, id T, op func(a, b T) T) T {
	n := len(in)
	if n == 0 {
		return id
	}
	bounds := chunkRanges(d, n)
	numChunks := len(bounds) - 1
	sums := make([]T, numChunks)
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			acc := id
			for i := bounds[c]; i < bounds[c+1]; i++ {
				acc = op(acc, in[i])
			}
			sums[c] = acc
		}
	})
	prefix := make([]T, numChunks)
	running := id
	for c := 0; c < numChunks; c++ {
		prefix[c] = running
		running = op(running, sums[c])
	}
	total := running
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			acc := prefix[c]
			for i := bounds[c]; i < bounds[c+1]; i++ {
				v := in[i]
				out[i] = acc
				acc = op(acc, v)
			}
		}
	})
	return total
}

// ScanInclusive writes the inclusive prefix combination of in into out and
// returns the total. in and out may alias.
func ScanInclusive[T any](d *device.Device, in, out []T, id T, op func(a, b T) T) T {
	n := len(in)
	if n == 0 {
		return id
	}
	bounds := chunkRanges(d, n)
	numChunks := len(bounds) - 1
	sums := make([]T, numChunks)
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			acc := id
			for i := bounds[c]; i < bounds[c+1]; i++ {
				acc = op(acc, in[i])
			}
			sums[c] = acc
		}
	})
	prefix := make([]T, numChunks)
	running := id
	for c := 0; c < numChunks; c++ {
		prefix[c] = running
		running = op(running, sums[c])
	}
	total := running
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			acc := prefix[c]
			for i := bounds[c]; i < bounds[c+1]; i++ {
				acc = op(acc, in[i])
				out[i] = acc
			}
		}
	})
	return total
}

// CountTrue returns the number of set flags.
func CountTrue(d *device.Device, flags []bool) int {
	bounds := chunkRanges(d, len(flags))
	if bounds == nil {
		return 0
	}
	numChunks := len(bounds) - 1
	counts := make([]int, numChunks)
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			k := 0
			for i := bounds[c]; i < bounds[c+1]; i++ {
				if flags[i] {
					k++
				}
			}
			counts[c] = k
		}
	})
	total := 0
	for _, k := range counts {
		total += k
	}
	return total
}

// CompactIndices returns the indices of the set flags, in ascending order.
// This is the reduce + exclusive scan + reverse-index sequence the paper's
// stream compaction uses, fused into a two-pass emit.
func CompactIndices(d *device.Device, flags []bool) []int32 {
	bounds := chunkRanges(d, len(flags))
	if bounds == nil {
		return nil
	}
	numChunks := len(bounds) - 1
	counts := make([]int, numChunks)
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			k := 0
			for i := bounds[c]; i < bounds[c+1]; i++ {
				if flags[i] {
					k++
				}
			}
			counts[c] = k
		}
	})
	offsets := make([]int, numChunks)
	total := 0
	for c := 0; c < numChunks; c++ {
		offsets[c] = total
		total += counts[c]
	}
	out := make([]int32, total)
	For(d, numChunks, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			cursor := offsets[c]
			for i := bounds[c]; i < bounds[c+1]; i++ {
				if flags[i] {
					out[cursor] = int32(i)
					cursor++
				}
			}
		}
	})
	return out
}

// Compact gathers the flagged elements of in into a new, smaller slice.
func Compact[T any](d *device.Device, in []T, flags []bool) []T {
	idx := CompactIndices(d, flags)
	out := make([]T, len(idx))
	Gather(d, idx, in, out)
	return out
}
