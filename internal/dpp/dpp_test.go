package dpp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"insitu/internal/device"
)

// testDevices returns the device shapes the primitives must agree across.
func testDevices() []*device.Device {
	return []*device.Device{
		device.Serial(),
		device.New("w2", 2),
		{Name: "fine", Workers: 4, Grain: 3, VectorWidth: 1},
		{Name: "many", Workers: 9, Grain: 1, VectorWidth: 4},
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, d := range testDevices() {
		for _, n := range []int{0, 1, 2, 7, 100, 1023} {
			seen := make([]int32, n)
			ForEach(d, n, func(i int) { seen[i]++ })
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("%s n=%d index %d visited %d times", d.Name, n, i, c)
				}
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	f := func(in []float64) bool {
		want := make([]float64, len(in))
		for i, v := range in {
			want[i] = v*2 + 1
		}
		for _, d := range testDevices() {
			got := make([]float64, len(in))
			Map(d, in, got, func(v float64) float64 { return v*2 + 1 })
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGatherScatterInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range testDevices() {
		n := 500
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.Float64()
		}
		perm := rng.Perm(n)
		idx := make([]int32, n)
		for i, p := range perm {
			idx[i] = int32(p)
		}
		gathered := make([]float64, n)
		Gather(d, idx, in, gathered)
		back := make([]float64, n)
		Scatter(d, idx, gathered, back)
		for i := range in {
			if back[i] != in[i] {
				t.Fatalf("%s: scatter(gather(x)) != x at %d", d.Name, i)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	f := func(raw []int16) bool {
		in := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			in[i] = int64(v)
			want += int64(v)
		}
		for _, d := range testDevices() {
			got := Reduce(d, in, 0, func(a, b int64) int64 { return a + b })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	in := []float64{3, -2, 7, 0, 4.5, -2.5, 9, 1}
	for _, d := range testDevices() {
		lo, hi := MinMax(d, in)
		if lo != -2.5 || hi != 9 {
			t.Fatalf("%s: MinMax = %v,%v", d.Name, lo, hi)
		}
	}
}

func TestScanExclusiveMatchesSerial(t *testing.T) {
	f := func(raw []int16) bool {
		in := make([]int64, len(raw))
		for i, v := range raw {
			in[i] = int64(v)
		}
		want := make([]int64, len(in))
		var acc, wantTotal int64
		for i, v := range in {
			want[i] = acc
			acc += v
		}
		wantTotal = acc
		for _, d := range testDevices() {
			got := make([]int64, len(in))
			total := ScanExclusive(d, in, got, 0, func(a, b int64) int64 { return a + b })
			if total != wantTotal {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanInclusiveAliasSafe(t *testing.T) {
	for _, d := range testDevices() {
		in := make([]int64, 777)
		for i := range in {
			in[i] = int64(i % 13)
		}
		want := make([]int64, len(in))
		var acc int64
		for i, v := range in {
			acc += v
			want[i] = acc
		}
		// Scan in place.
		ScanInclusive(d, in, in, 0, func(a, b int64) int64 { return a + b })
		for i := range want {
			if in[i] != want[i] {
				t.Fatalf("%s: in-place inclusive scan wrong at %d: %d != %d", d.Name, i, in[i], want[i])
			}
		}
	}
}

func TestScanEmpty(t *testing.T) {
	d := device.CPU()
	total := ScanExclusive(d, nil, nil, 42, func(a, b int) int { return a + b })
	if total != 42 {
		t.Errorf("empty scan total = %d", total)
	}
}

func TestCompactIndices(t *testing.T) {
	f := func(flags []bool) bool {
		var want []int32
		for i, fl := range flags {
			if fl {
				want = append(want, int32(i))
			}
		}
		for _, d := range testDevices() {
			got := CompactIndices(d, flags)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			if CountTrue(d, flags) != len(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompactValues(t *testing.T) {
	d := device.New("w3", 3)
	in := []string{"a", "b", "c", "d", "e"}
	flags := []bool{true, false, true, false, true}
	got := Compact(d, in, flags)
	if len(got) != 3 || got[0] != "a" || got[1] != "c" || got[2] != "e" {
		t.Errorf("Compact = %v", got)
	}
}

func TestSortPairs64Random(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range testDevices() {
		for _, n := range []int{0, 1, 2, 3, 100, 4096} {
			keys := make([]uint64, n)
			vals := make([]int32, n)
			orig := make([]uint64, n)
			for i := range keys {
				keys[i] = rng.Uint64()
				vals[i] = int32(i)
				orig[i] = keys[i]
			}
			SortPairs64(d, keys, vals)
			if !IsSorted(keys) {
				t.Fatalf("%s n=%d: keys not sorted", d.Name, n)
			}
			// The payload must still point at the original key.
			for i := range keys {
				if orig[vals[i]] != keys[i] {
					t.Fatalf("%s n=%d: payload broken at %d", d.Name, n, i)
				}
			}
		}
	}
}

func TestSortPairs64Stability(t *testing.T) {
	// Equal keys must preserve input order (LSD radix sorts are stable).
	d := device.New("w4", 4)
	d.Grain = 2
	n := 1000
	keys := make([]uint64, n)
	vals := make([]int32, n)
	rng := rand.New(rand.NewSource(5))
	for i := range keys {
		keys[i] = uint64(rng.Intn(7)) // many duplicates
		vals[i] = int32(i)
	}
	SortPairs64(d, keys, vals)
	for i := 1; i < n; i++ {
		if keys[i-1] == keys[i] && vals[i-1] >= vals[i] {
			t.Fatalf("stability violated at %d: key %d payloads %d,%d", i, keys[i], vals[i-1], vals[i])
		}
	}
}

func TestSortPairs32(t *testing.T) {
	d := device.CPU()
	keys := []uint32{5, 1, 4, 1, 3}
	vals := []int32{0, 1, 2, 3, 4}
	SortPairs32(d, keys, vals)
	wantK := []uint32{1, 1, 3, 4, 5}
	wantV := []int32{1, 3, 4, 2, 0}
	for i := range keys {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("got %v/%v want %v/%v", keys, vals, wantK, wantV)
		}
	}
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := device.New("w5", 5)
	d.Grain = 16
	n := 3000
	keys := make([]uint64, n)
	vals := make([]int32, n)
	ref := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1 << 30))
		vals[i] = int32(i)
		ref[i] = keys[i]
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	SortPairs64(d, keys, vals)
	for i := range keys {
		if keys[i] != ref[i] {
			t.Fatalf("radix disagrees with stdlib at %d: %d vs %d", i, keys[i], ref[i])
		}
	}
}

func TestDeviceStatsAccumulate(t *testing.T) {
	d := device.New("instrumented", 2)
	d.Stats = &device.Stats{}
	ForEach(d, 10000, func(i int) { _ = math.Sqrt(float64(i)) })
	if d.Stats.Items() != 10000 {
		t.Errorf("items = %d", d.Stats.Items())
	}
	if d.Stats.Launches() != 1 {
		t.Errorf("launches = %d", d.Stats.Launches())
	}
	if d.Stats.Busy() <= 0 {
		t.Errorf("busy = %v", d.Stats.Busy())
	}
}

func TestFill(t *testing.T) {
	d := device.New("w2", 2)
	out := make([]int, 100)
	Fill(d, out, 7)
	for i, v := range out {
		if v != 7 {
			t.Fatalf("Fill missed index %d", i)
		}
	}
}
