package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/comm"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/registry"
)

// Job is one sharded frame order: which backend renders which simulation
// block, how wide the domain decomposition is, and the view.
type Job struct {
	Backend    string // renderer name
	Sim        string
	Arch       string
	N          int // per-shard grid size (weak scaling, as in the study)
	Width      int
	Height     int
	Shards     int
	RTWorkload int
	Azimuth    float64
	Zoom       float64
}

// Result is one finished cluster frame with the measurements serving and
// calibration consume.
type Result struct {
	Image *framebuffer.Image
	// In carries the reduced model inputs of the frame (Tasks = shard
	// count), ready to pair with the measured times as a calibration
	// sample.
	In                core.Inputs
	BuildSeconds      float64
	RenderSeconds     float64 // slowest rank's local render, max(T_local)
	CompositeSeconds  float64 // measured sort-last composite, the paper's Tc
	RankRenderSeconds []float64
	// RankCompositeSeconds is each rank's measured share of the sort-last
	// exchange, in shard order — the per-rank span the frame trace blames
	// a slow composite on.
	RankCompositeSeconds []float64
	// Retries is how many failed attempts preceded this frame (0 on the
	// healthy path) — the serving layer surfaces it per response.
	Retries int
}

// Stats is a point-in-time view of cluster transport, replication, and
// health counters.
type Stats struct {
	Workers           int      `json:"workers"`
	AliveWorkers      int      `json:"alive_workers"`
	DeadRanks         []int    `json:"dead_ranks,omitempty"`
	FramesDispatched  int64    `json:"frames_dispatched"`
	BytesSent         int64    `json:"bytes_sent"`
	MessagesSent      int64    `json:"messages_sent"`
	StaleDrops        int64    `json:"stale_drops"`
	Evictions         int64    `json:"evictions"`
	Retries           int64    `json:"retries"`
	RankFailures      int64    `json:"rank_failures"`
	SnapshotsPushed   int64    `json:"snapshots_pushed"`
	SnapshotsAcked    int64    `json:"snapshots_acked"`
	SnapshotErrors    int64    `json:"snapshot_errors"`
	WorkerGenerations []uint64 `json:"worker_generations"`
	// Ranks is per-rank health: heartbeat age and blame are the gauges
	// the failure detector acts on, surfaced so an operator can watch a
	// rank drift toward eviction instead of learning after the fact.
	Ranks []RankHealth `json:"ranks,omitempty"`
	// Links is per-directed-link transport volume (world rank 0 is the
	// router), the topology behind the bytes_sent/messages_sent totals.
	Links []comm.LinkStat `json:"links,omitempty"`
}

// RankHealth is one worker rank's liveness view.
type RankHealth struct {
	Rank                int     `json:"rank"`
	Alive               bool    `json:"alive"`
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds"`
	Blame               int64   `json:"blame"`
	EvictReason         string  `json:"evict_reason,omitempty"`
}

// Cluster is the router side of a worker fleet: it owns rank 0 of an
// in-process comm world whose other ranks run worker loops, places and
// dispatches sharded frames, replicates registry snapshots, and routes
// finished frames back to concurrent callers.
type Cluster struct {
	world   *comm.World
	router  *comm.Comm
	reg     *registry.Registry
	workers int

	// replicas[w] is worker w's registry replica: written by the worker
	// loop, read by WorkerGenerations (the registry is internally
	// locked). Index 0 is unused.
	replicas []*registry.Registry
	// lastGen[w] is the router generation last pushed to worker w,
	// guarded by dispatchMu.
	lastGen []uint64

	// dispatchMu serializes job dispatch (and the snapshot pushes that
	// precede it), establishing the global job order the deadlock-freedom
	// argument in the package comment rests on.
	dispatchMu sync.Mutex

	pendMu  sync.Mutex
	pending map[uint64]chan *wireResultMsg

	// Fleet health (see health.go): per-rank eviction state, liveness
	// timestamps (UnixNanos, refreshed by any demuxed message), and
	// stuck-peer blame counters. Index 0 is unused.
	opts     Options
	dead     []atomic.Bool
	lastBeat []atomic.Int64
	blame    []atomic.Int64
	alive    atomic.Int64

	// attempts maps in-flight attempt ids to the context shared with
	// their workers (cancelled on eviction of a member); doneCh routes
	// members' completion notes to the attempt's drain barrier.
	attemptMu sync.Mutex
	attempts  map[uint64]*attemptCtl
	doneMu    sync.Mutex
	doneCh    map[uint64]chan wireDone

	reasonMu     sync.Mutex
	evictReasons map[int]string

	nextID atomic.Uint64
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	framesDispatched atomic.Int64
	snapshotsPushed  atomic.Int64
	snapshotsAcked   atomic.Int64
	snapshotErrors   atomic.Int64
	evictions        atomic.Int64
	retries          atomic.Int64
	rankFailures     atomic.Int64
}

// attemptCtl is the router-side handle of one in-flight attempt.
type attemptCtl struct {
	ctx     context.Context
	cancel  context.CancelFunc
	members []int
}

type wireResultMsg struct {
	res *wireResult
	img *framebuffer.Image
}

// New starts a fleet of workers wired to reg's models with default
// fault-tolerance options. The registry is the router's source of truth;
// each worker gets its own replica, synced on dispatch.
func New(reg *registry.Registry, workers int) (*Cluster, error) {
	return NewWithOptions(reg, workers, Options{})
}

// NewWithOptions is New with explicit failure-detection and recovery
// tuning (and, for chaos tests, an injected fault plan).
func NewWithOptions(reg *registry.Registry, workers int, opts Options) (*Cluster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 worker, got %d", workers)
	}
	if reg == nil {
		return nil, fmt.Errorf("cluster: nil registry")
	}
	ctx, cancel := context.WithCancel(context.Background())
	world := comm.NewWorld(workers + 1)
	opts = opts.withDefaults()
	if opts.Faults != nil {
		world.InjectFaults(opts.Faults)
	}
	cl := &Cluster{
		world:        world,
		router:       world.Endpoint(0),
		reg:          reg,
		workers:      workers,
		opts:         opts,
		replicas:     make([]*registry.Registry, workers+1),
		lastGen:      make([]uint64, workers+1),
		pending:      map[uint64]chan *wireResultMsg{},
		dead:         make([]atomic.Bool, workers+1),
		lastBeat:     make([]atomic.Int64, workers+1),
		blame:        make([]atomic.Int64, workers+1),
		attempts:     map[uint64]*attemptCtl{},
		doneCh:       map[uint64]chan wireDone{},
		evictReasons: map[int]string{},
		ctx:          ctx,
		cancel:       cancel,
	}
	cl.alive.Store(int64(workers))
	now := time.Now().UnixNano()
	for w := 1; w <= workers; w++ {
		cl.lastBeat[w].Store(now)
	}
	for w := 1; w <= workers; w++ {
		cl.replicas[w] = registry.New(0)
		cl.wg.Add(3)
		go cl.workerLoop(w)
		go cl.demuxLoop(w)
		go cl.heartbeatLoop(w)
	}
	cl.wg.Add(1)
	go cl.monitorLoop()
	return cl, nil
}

// Workers returns the fleet size.
func (cl *Cluster) Workers() int { return cl.workers }

// Close shuts the fleet down. Jobs already dispatched run to completion
// (their results are dropped); callers should stop submitting first.
func (cl *Cluster) Close() {
	cl.cancel()
	cl.wg.Wait()
}

// Stats snapshots the transport, replication, and health counters.
func (cl *Cluster) Stats() Stats {
	return Stats{
		Workers:           cl.workers,
		AliveWorkers:      cl.AliveWorkers(),
		DeadRanks:         cl.DeadRanks(),
		FramesDispatched:  cl.framesDispatched.Load(),
		BytesSent:         cl.world.BytesSent(),
		MessagesSent:      cl.world.MessagesSent(),
		StaleDrops:        cl.world.StaleDrops(),
		Evictions:         cl.evictions.Load(),
		Retries:           cl.retries.Load(),
		RankFailures:      cl.rankFailures.Load(),
		SnapshotsPushed:   cl.snapshotsPushed.Load(),
		SnapshotsAcked:    cl.snapshotsAcked.Load(),
		SnapshotErrors:    cl.snapshotErrors.Load(),
		WorkerGenerations: cl.WorkerGenerations(),
		Ranks:             cl.RankHealths(),
		Links:             cl.world.LinkStats(),
	}
}

// RankHealths snapshots every worker rank's liveness view.
func (cl *Cluster) RankHealths() []RankHealth {
	now := time.Now().UnixNano()
	out := make([]RankHealth, cl.workers)
	cl.reasonMu.Lock()
	for w := 1; w <= cl.workers; w++ {
		out[w-1] = RankHealth{
			Rank:                w,
			Alive:               !cl.dead[w].Load(),
			HeartbeatAgeSeconds: float64(now-cl.lastBeat[w].Load()) / 1e9,
			Blame:               cl.blame[w].Load(),
			EvictReason:         cl.evictReasons[w],
		}
	}
	cl.reasonMu.Unlock()
	return out
}

// WorkerGenerations returns each worker replica's registry generation, in
// worker order — the observable form of snapshot replication.
func (cl *Cluster) WorkerGenerations() []uint64 {
	out := make([]uint64, cl.workers)
	for w := 1; w <= cl.workers; w++ {
		out[w-1] = cl.replicas[w].Generation()
	}
	return out
}

// Render dispatches one sharded frame and blocks until the composited
// image arrives, the caller's ctx expires, or the retry budget runs out.
// Safe for concurrent use: dispatch is serialized, execution overlaps
// across disjoint worker sets.
//
// Rank failure is handled here: an attempt a dead or wedged rank drags
// past its deadline is abandoned by every survivor, drained, and — after
// the failing ranks are evicted — re-placed over survivors and retried
// with exponential backoff charged against ctx. HRW placement keeps
// unaffected shards on their original ranks, so a retry pays only the
// dead ranks' shards cold. When survivors cannot host the requested
// shard count, or the attempt budget is spent, Render returns a typed
// *RankFailure naming the dead ranks.
func (cl *Cluster) Render(ctx context.Context, job Job) (*Result, error) {
	backoff := cl.opts.RetryBackoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		members, err := placeShards(cl.workers, cl.isDead, &job)
		if err != nil {
			if dead := cl.DeadRanks(); len(dead) > 0 {
				cl.rankFailures.Add(1)
				if lastErr == nil {
					lastErr = err
				}
				return nil, &RankFailure{Ranks: dead, Attempts: attempt - 1, Last: lastErr}
			}
			return nil, err
		}
		res, rerr, retry := cl.renderAttempt(ctx, &job, members)
		if rerr == nil {
			res.Retries = attempt - 1
			return res, nil
		}
		if !retry {
			return nil, rerr
		}
		lastErr = rerr
		if attempt >= cl.opts.MaxAttempts {
			cl.rankFailures.Add(1)
			return nil, &RankFailure{Ranks: cl.DeadRanks(), Attempts: attempt, Last: rerr}
		}
		cl.retries.Add(1)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-cl.ctx.Done():
			return nil, fmt.Errorf("cluster: closed while rendering")
		}
		backoff *= 2
	}
}

// renderAttempt runs one placement's attempt end to end. The third
// return reports whether a failure is retryable (a transport-level
// abandonment) as opposed to an application error or caller timeout.
func (cl *Cluster) renderAttempt(ctx context.Context, job *Job, members []int) (*Result, error, bool) {
	id := cl.nextID.Add(1)
	deadline := time.Now().Add(cl.opts.AttemptTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	wj := wireJob{
		JobID:   id,
		Backend: job.Backend, Sim: job.Sim, Arch: job.Arch,
		N: job.N, Width: job.Width, Height: job.Height,
		Shards: job.Shards, RTWorkload: job.RTWorkload,
		Azimuth: job.Azimuth, Zoom: job.Zoom,
		Members:           members,
		DeadlineUnixNanos: deadline.UnixNano(),
	}
	msg, err := packJSON(&wj)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding job: %w", err), false
	}

	// The attempt context is shared with the job's workers via the
	// attempt registry: its deadline aborts wedged collectives, and
	// evicting a member cancels it so survivors abandon the attempt
	// immediately instead of waiting out the deadline.
	attemptCtx, cancel := context.WithDeadline(cl.ctx, deadline)
	defer cancel()

	ch := make(chan *wireResultMsg, 1)
	done := make(chan wireDone, len(members)+1)
	cl.pendMu.Lock()
	cl.pending[id] = ch
	cl.pendMu.Unlock()
	cl.doneMu.Lock()
	cl.doneCh[id] = done
	cl.doneMu.Unlock()
	cl.attemptMu.Lock()
	cl.attempts[id] = &attemptCtl{ctx: attemptCtx, cancel: cancel, members: members}
	cl.attemptMu.Unlock()
	cleanup := func() {
		cl.pendMu.Lock()
		delete(cl.pending, id)
		cl.pendMu.Unlock()
		cl.doneMu.Lock()
		delete(cl.doneCh, id)
		cl.doneMu.Unlock()
		cl.attemptMu.Lock()
		delete(cl.attempts, id)
		cl.attemptMu.Unlock()
	}

	// Dispatch atomically: snapshot sync first (FIFO links guarantee the
	// job renders under the models current at dispatch), then the job to
	// every member. All-or-nothing so a group can never form partially.
	cl.dispatchMu.Lock()
	cl.replicateLocked()
	for _, w := range members {
		if err := cl.router.SendCtx(cl.ctx, w, tagJob, msg); err != nil {
			cl.dispatchMu.Unlock()
			cleanup()
			return nil, fmt.Errorf("cluster: dispatch to worker %d: %w", w, err), false
		}
	}
	cl.framesDispatched.Add(1)
	cl.dispatchMu.Unlock()

	finish := func(m *wireResultMsg) (*Result, error, bool) {
		if m.res.Err != "" {
			if m.res.Retryable {
				cl.drainAttempt(members, done, deadline)
				cleanup()
				return nil, fmt.Errorf("cluster: %s", m.res.Err), true
			}
			cleanup()
			return nil, fmt.Errorf("cluster: %s", m.res.Err), false
		}
		cleanup()
		return &Result{
			Image:                m.img,
			In:                   m.res.In,
			BuildSeconds:         m.res.BuildSeconds,
			RenderSeconds:        m.res.RenderSeconds,
			CompositeSeconds:     m.res.CompositeSeconds,
			RankRenderSeconds:    m.res.RankRenderSeconds,
			RankCompositeSeconds: m.res.RankCompositeSeconds,
		}, nil, false
	}

	select {
	case m := <-ch:
		return finish(m)
	case <-attemptCtx.Done():
		// The deadline expired or a member was evicted mid-attempt; a
		// result may still have raced in.
		select {
		case m := <-ch:
			return finish(m)
		default:
		}
		cl.drainAttempt(members, done, deadline)
		cleanup()
		return nil, fmt.Errorf("cluster: attempt on ranks %v abandoned: %w", members, context.Cause(attemptCtx)), true
	case <-ctx.Done():
		cleanup()
		return nil, ctx.Err(), false
	case <-cl.ctx.Done():
		cleanup()
		return nil, fmt.Errorf("cluster: closed while rendering"), false
	}
}

// replicateLocked pushes the registry's current snapshot to every worker
// whose last pushed generation is stale — every worker, not just the next
// job's members, so the whole fleet answers model queries consistently.
// Caller holds dispatchMu.
func (cl *Cluster) replicateLocked() {
	gen := cl.reg.Generation()
	if gen == 0 {
		return
	}
	snap := cl.reg.Snapshot()
	if snap == nil {
		return
	}
	var msg []float32
	for w := 1; w <= cl.workers; w++ {
		if cl.lastGen[w] == gen {
			continue
		}
		if msg == nil {
			b, err := snap.EncodeBytes()
			if err != nil {
				cl.snapshotErrors.Add(1)
				return
			}
			if msg, err = packJSON(&wireSnapshot{Gen: gen, Snapshot: json.RawMessage(b)}); err != nil {
				cl.snapshotErrors.Add(1)
				return
			}
		}
		if err := cl.router.SendCtx(cl.ctx, w, tagSnapshot, msg); err != nil {
			return // shutting down
		}
		cl.lastGen[w] = gen
		cl.snapshotsPushed.Add(1)
	}
}

// workerLoop is worker w: it drains its router link serially, installing
// snapshots and rendering jobs in arrival order. Serial processing is
// load-bearing — see the deadlock-freedom argument in the package
// comment.
func (cl *Cluster) workerLoop(w int) {
	defer cl.wg.Done()
	e := cl.world.Endpoint(w)
	st := newShardState(8, 4)
	defer st.Close()
	for {
		tag, data, err := e.RecvAnyCtx(cl.ctx, 0)
		//insitu:collective-ok a recv failure means ctx shutdown, which cancels every worker's recv too
		if err != nil {
			return // shutdown
		}
		switch tag {
		case tagSnapshot:
			var ws wireSnapshot
			ack := wireAck{}
			if _, err := unpackJSON(data, &ws); err != nil {
				ack.Err = err.Error()
			} else if snap, err := registry.DecodeBytes(ws.Snapshot); err != nil {
				ack.Gen = ws.Gen
				ack.Err = err.Error()
			} else if err := cl.replicas[w].Load(snap); err != nil {
				ack.Gen = ws.Gen
				ack.Err = err.Error()
			} else {
				ack.Gen = ws.Gen
			}
			if msg, err := packJSON(&ack); err == nil {
				e.SendCtx(cl.ctx, 0, tagSnapshotAck, msg)
			}
		case tagJob:
			var job wireJob
			//insitu:collective-ok every member receives the same job bytes, so a decode failure is group-uniform
			if _, err := unpackJSON(data, &job); err != nil {
				continue // a malformed job cannot name a group to fail
			}
			gc, err := e.Group(job.Members)
			if err != nil {
				continue
			}
			// Bind the group communicator to the attempt: its collectives
			// carry the job's epoch (stale traffic from abandoned attempts
			// is discarded on receive) and abort past the shared attempt
			// context's deadline or on a member's eviction.
			actx := cl.attemptContext(job.JobID)
			res, img, stuckOn := st.renderJob(gc.WithEpoch(actx, job.JobID), &job)
			// The completion note must go out whether the attempt succeeded
			// or aborted: the router's drain barrier counts it as proof this
			// rank is out of the exchange before re-dispatching.
			if note, err := packJSON(&wireDone{JobID: job.JobID, Rank: w, StuckOn: stuckOn}); err == nil {
				e.SendCtx(cl.ctx, 0, tagFrameDone, note)
			}
			if res == nil {
				continue // not the group leader
			}
			if msg, err := encodeResult(res, img); err == nil {
				e.SendCtx(cl.ctx, 0, tagResult, msg)
			}
		case tagEvict:
			// Evicted (possibly wedged, not dead): drop shard caches so a
			// hypothetical re-admission would rebuild from the registry, and
			// free the device state the shards held.
			st.Close()
			st = newShardState(8, 4)
		}
	}
}

// demuxLoop drains worker w's link to the router, routing results to
// their waiting Render calls and counting snapshot acks. One goroutine
// per link keeps the single-reader discipline.
func (cl *Cluster) demuxLoop(w int) {
	defer cl.wg.Done()
	for {
		tag, data, err := cl.router.RecvAnyCtx(cl.ctx, w)
		if err != nil {
			return // shutdown
		}
		// Any traffic proves liveness, not just beacons: a worker too busy
		// streaming results to beacon on time is not dead.
		cl.lastBeat[w].Store(time.Now().UnixNano())
		switch tag {
		case tagHeartbeat:
			// Liveness refresh only, handled above.
		case tagFrameDone:
			var n wireDone
			if _, err := unpackJSON(data, &n); err != nil {
				continue
			}
			cl.doneMu.Lock()
			ch, ok := cl.doneCh[n.JobID]
			cl.doneMu.Unlock()
			if ok {
				// Buffered for every member; non-blocking in case the drain
				// already gave up and nobody is receiving.
				select {
				case ch <- n:
				default:
				}
			}
		case tagSnapshotAck:
			var ack wireAck
			if _, err := unpackJSON(data, &ack); err != nil || ack.Err != "" {
				cl.snapshotErrors.Add(1)
				continue
			}
			cl.snapshotsAcked.Add(1)
		case tagResult:
			res, img, err := decodeResult(data)
			if err != nil {
				continue
			}
			cl.pendMu.Lock()
			ch, ok := cl.pending[res.JobID]
			if ok {
				delete(cl.pending, res.JobID)
			}
			cl.pendMu.Unlock()
			if ok {
				ch <- &wireResultMsg{res: res, img: img}
			}
			// Results for unregistered jobs (caller timed out) are dropped.
		}
	}
}
