package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"insitu/internal/comm"
	"insitu/internal/core"
	"insitu/internal/framebuffer"
	"insitu/internal/registry"
)

// Job is one sharded frame order: which backend renders which simulation
// block, how wide the domain decomposition is, and the view.
type Job struct {
	Backend    string // renderer name
	Sim        string
	Arch       string
	N          int // per-shard grid size (weak scaling, as in the study)
	Width      int
	Height     int
	Shards     int
	RTWorkload int
	Azimuth    float64
	Zoom       float64
}

// Result is one finished cluster frame with the measurements serving and
// calibration consume.
type Result struct {
	Image *framebuffer.Image
	// In carries the reduced model inputs of the frame (Tasks = shard
	// count), ready to pair with the measured times as a calibration
	// sample.
	In                core.Inputs
	BuildSeconds      float64
	RenderSeconds     float64 // slowest rank's local render, max(T_local)
	CompositeSeconds  float64 // measured sort-last composite, the paper's Tc
	RankRenderSeconds []float64
}

// Stats is a point-in-time view of cluster transport and replication
// counters.
type Stats struct {
	Workers           int      `json:"workers"`
	FramesDispatched  int64    `json:"frames_dispatched"`
	BytesSent         int64    `json:"bytes_sent"`
	MessagesSent      int64    `json:"messages_sent"`
	SnapshotsPushed   int64    `json:"snapshots_pushed"`
	SnapshotsAcked    int64    `json:"snapshots_acked"`
	SnapshotErrors    int64    `json:"snapshot_errors"`
	WorkerGenerations []uint64 `json:"worker_generations"`
}

// Cluster is the router side of a worker fleet: it owns rank 0 of an
// in-process comm world whose other ranks run worker loops, places and
// dispatches sharded frames, replicates registry snapshots, and routes
// finished frames back to concurrent callers.
type Cluster struct {
	world   *comm.World
	router  *comm.Comm
	reg     *registry.Registry
	workers int

	// replicas[w] is worker w's registry replica: written by the worker
	// loop, read by WorkerGenerations (the registry is internally
	// locked). Index 0 is unused.
	replicas []*registry.Registry
	// lastGen[w] is the router generation last pushed to worker w,
	// guarded by dispatchMu.
	lastGen []uint64

	// dispatchMu serializes job dispatch (and the snapshot pushes that
	// precede it), establishing the global job order the deadlock-freedom
	// argument in the package comment rests on.
	dispatchMu sync.Mutex

	pendMu  sync.Mutex
	pending map[uint64]chan *wireResultMsg

	nextID atomic.Uint64
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	framesDispatched atomic.Int64
	snapshotsPushed  atomic.Int64
	snapshotsAcked   atomic.Int64
	snapshotErrors   atomic.Int64
}

type wireResultMsg struct {
	res *wireResult
	img *framebuffer.Image
}

// New starts a fleet of workers wired to reg's models. The registry is
// the router's source of truth; each worker gets its own replica, synced
// on dispatch.
func New(reg *registry.Registry, workers int) (*Cluster, error) {
	if workers < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 worker, got %d", workers)
	}
	if reg == nil {
		return nil, fmt.Errorf("cluster: nil registry")
	}
	ctx, cancel := context.WithCancel(context.Background())
	world := comm.NewWorld(workers + 1)
	cl := &Cluster{
		world:    world,
		router:   world.Endpoint(0),
		reg:      reg,
		workers:  workers,
		replicas: make([]*registry.Registry, workers+1),
		lastGen:  make([]uint64, workers+1),
		pending:  map[uint64]chan *wireResultMsg{},
		ctx:      ctx,
		cancel:   cancel,
	}
	for w := 1; w <= workers; w++ {
		cl.replicas[w] = registry.New(0)
		cl.wg.Add(2)
		go cl.workerLoop(w)
		go cl.demuxLoop(w)
	}
	return cl, nil
}

// Workers returns the fleet size.
func (cl *Cluster) Workers() int { return cl.workers }

// Close shuts the fleet down. Jobs already dispatched run to completion
// (their results are dropped); callers should stop submitting first.
func (cl *Cluster) Close() {
	cl.cancel()
	cl.wg.Wait()
}

// Stats snapshots the transport and replication counters.
func (cl *Cluster) Stats() Stats {
	return Stats{
		Workers:           cl.workers,
		FramesDispatched:  cl.framesDispatched.Load(),
		BytesSent:         cl.world.BytesSent(),
		MessagesSent:      cl.world.MessagesSent(),
		SnapshotsPushed:   cl.snapshotsPushed.Load(),
		SnapshotsAcked:    cl.snapshotsAcked.Load(),
		SnapshotErrors:    cl.snapshotErrors.Load(),
		WorkerGenerations: cl.WorkerGenerations(),
	}
}

// WorkerGenerations returns each worker replica's registry generation, in
// worker order — the observable form of snapshot replication.
func (cl *Cluster) WorkerGenerations() []uint64 {
	out := make([]uint64, cl.workers)
	for w := 1; w <= cl.workers; w++ {
		out[w-1] = cl.replicas[w].Generation()
	}
	return out
}

// Render dispatches one sharded frame and blocks until the composited
// image arrives or ctx expires. Safe for concurrent use: dispatch is
// serialized, execution overlaps across disjoint worker sets.
func (cl *Cluster) Render(ctx context.Context, job Job) (*Result, error) {
	members, err := placeShards(cl.workers, &job)
	if err != nil {
		return nil, err
	}
	id := cl.nextID.Add(1)
	wj := wireJob{
		JobID:   id,
		Backend: job.Backend, Sim: job.Sim, Arch: job.Arch,
		N: job.N, Width: job.Width, Height: job.Height,
		Shards: job.Shards, RTWorkload: job.RTWorkload,
		Azimuth: job.Azimuth, Zoom: job.Zoom,
		Members: members,
	}
	msg, err := packJSON(&wj)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding job: %w", err)
	}

	ch := make(chan *wireResultMsg, 1)
	cl.pendMu.Lock()
	cl.pending[id] = ch
	cl.pendMu.Unlock()
	unregister := func() {
		cl.pendMu.Lock()
		delete(cl.pending, id)
		cl.pendMu.Unlock()
	}

	// Dispatch atomically: snapshot sync first (FIFO links guarantee the
	// job renders under the models current at dispatch), then the job to
	// every member. All-or-nothing so a group can never form partially.
	cl.dispatchMu.Lock()
	cl.replicateLocked()
	for _, w := range members {
		if err := cl.router.SendCtx(cl.ctx, w, tagJob, msg); err != nil {
			cl.dispatchMu.Unlock()
			unregister()
			return nil, fmt.Errorf("cluster: dispatch to worker %d: %w", w, err)
		}
	}
	cl.framesDispatched.Add(1)
	cl.dispatchMu.Unlock()

	select {
	case m := <-ch:
		if m.res.Err != "" {
			return nil, fmt.Errorf("cluster: %s", m.res.Err)
		}
		return &Result{
			Image:             m.img,
			In:                m.res.In,
			BuildSeconds:      m.res.BuildSeconds,
			RenderSeconds:     m.res.RenderSeconds,
			CompositeSeconds:  m.res.CompositeSeconds,
			RankRenderSeconds: m.res.RankRenderSeconds,
		}, nil
	case <-ctx.Done():
		unregister()
		return nil, ctx.Err()
	case <-cl.ctx.Done():
		unregister()
		return nil, fmt.Errorf("cluster: closed while rendering")
	}
}

// replicateLocked pushes the registry's current snapshot to every worker
// whose last pushed generation is stale — every worker, not just the next
// job's members, so the whole fleet answers model queries consistently.
// Caller holds dispatchMu.
func (cl *Cluster) replicateLocked() {
	gen := cl.reg.Generation()
	if gen == 0 {
		return
	}
	snap := cl.reg.Snapshot()
	if snap == nil {
		return
	}
	var msg []float32
	for w := 1; w <= cl.workers; w++ {
		if cl.lastGen[w] == gen {
			continue
		}
		if msg == nil {
			b, err := snap.EncodeBytes()
			if err != nil {
				cl.snapshotErrors.Add(1)
				return
			}
			if msg, err = packJSON(&wireSnapshot{Gen: gen, Snapshot: json.RawMessage(b)}); err != nil {
				cl.snapshotErrors.Add(1)
				return
			}
		}
		if err := cl.router.SendCtx(cl.ctx, w, tagSnapshot, msg); err != nil {
			return // shutting down
		}
		cl.lastGen[w] = gen
		cl.snapshotsPushed.Add(1)
	}
}

// workerLoop is worker w: it drains its router link serially, installing
// snapshots and rendering jobs in arrival order. Serial processing is
// load-bearing — see the deadlock-freedom argument in the package
// comment.
func (cl *Cluster) workerLoop(w int) {
	defer cl.wg.Done()
	e := cl.world.Endpoint(w)
	st := newShardState(8, 4)
	defer st.Close()
	for {
		tag, data, err := e.RecvAnyCtx(cl.ctx, 0)
		//insitu:collective-ok a recv failure means ctx shutdown, which cancels every worker's recv too
		if err != nil {
			return // shutdown
		}
		switch tag {
		case tagSnapshot:
			var ws wireSnapshot
			ack := wireAck{}
			if _, err := unpackJSON(data, &ws); err != nil {
				ack.Err = err.Error()
			} else if snap, err := registry.DecodeBytes(ws.Snapshot); err != nil {
				ack.Gen = ws.Gen
				ack.Err = err.Error()
			} else if err := cl.replicas[w].Load(snap); err != nil {
				ack.Gen = ws.Gen
				ack.Err = err.Error()
			} else {
				ack.Gen = ws.Gen
			}
			if msg, err := packJSON(&ack); err == nil {
				e.SendCtx(cl.ctx, 0, tagSnapshotAck, msg)
			}
		case tagJob:
			var job wireJob
			//insitu:collective-ok every member receives the same job bytes, so a decode failure is group-uniform
			if _, err := unpackJSON(data, &job); err != nil {
				continue // a malformed job cannot name a group to fail
			}
			gc, err := e.Group(job.Members)
			if err != nil {
				continue
			}
			res, img := st.render(gc, &job)
			if res == nil {
				continue // not the group leader
			}
			if msg, err := encodeResult(res, img); err == nil {
				e.SendCtx(cl.ctx, 0, tagResult, msg)
			}
		}
	}
}

// demuxLoop drains worker w's link to the router, routing results to
// their waiting Render calls and counting snapshot acks. One goroutine
// per link keeps the single-reader discipline.
func (cl *Cluster) demuxLoop(w int) {
	defer cl.wg.Done()
	for {
		tag, data, err := cl.router.RecvAnyCtx(cl.ctx, w)
		if err != nil {
			return // shutdown
		}
		switch tag {
		case tagSnapshotAck:
			var ack wireAck
			if _, err := unpackJSON(data, &ack); err != nil || ack.Err != "" {
				cl.snapshotErrors.Add(1)
				continue
			}
			cl.snapshotsAcked.Add(1)
		case tagResult:
			res, img, err := decodeResult(data)
			if err != nil {
				continue
			}
			cl.pendMu.Lock()
			ch, ok := cl.pending[res.JobID]
			if ok {
				delete(cl.pending, res.JobID)
			}
			cl.pendMu.Unlock()
			if ok {
				ch <- &wireResultMsg{res: res, img: img}
			}
			// Results for unregistered jobs (caller timed out) are dropped.
		}
	}
}
