package cluster

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"insitu/internal/core"
	"insitu/internal/registry"
	"insitu/internal/scenario"
)

// testSnapshot covers all four backends on the serial profile plus the
// compositing model, with synthetic positive coefficients: the cluster
// path is gated on transport and rendering correctness, not fit quality.
func testSnapshot() *registry.Snapshot {
	fit := func(coef ...float64) registry.FitDoc {
		return registry.FitDoc{Coef: coef, R2: 0.99, N: 16, P: len(coef)}
	}
	build := fit(1e-8, 1e-5)
	return &registry.Snapshot{
		Version: registry.SnapshotVersion, Source: "cluster-test", CreatedUnix: 1,
		Mapping: registry.MappingDoc{FillFraction: 0.55, SPRBase: 373},
		Models: []registry.ModelDoc{
			{Arch: "serial", Renderer: string(core.RayTrace), Fit: fit(1e-7, 5e-8, 1e-4), BuildFit: &build},
			{Arch: "serial", Renderer: string(core.Raster), Fit: fit(1e-9, 1e-8, 1e-4)},
			{Arch: "serial", Renderer: string(core.Volume), Fit: fit(1e-8, 1e-9, 1e-4)},
			{Arch: "serial", Renderer: string(scenario.VolumeUnstructured), Fit: fit(1e-9, 1e-9, 1e-4)},
		},
		Compositing: &registry.ModelDoc{
			Arch: "all", Renderer: string(core.Compositing), Fit: fit(1e-9, 1e-9, 1e-4),
		},
	}
}

func testRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	reg := registry.New(64)
	if err := reg.Load(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	return reg
}

func testCluster(t testing.TB, workers int) *Cluster {
	t.Helper()
	cl, err := New(testRegistry(t), workers)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestClusterMatchesStandalone is the core correctness claim: for every
// backend, a frame sharded across the fleet is byte-identical to the
// same shard group rendered standalone in one collective run — the
// router, placement, caching, and wire transport add nothing and lose
// nothing.
func TestClusterMatchesStandalone(t *testing.T) {
	cl := testCluster(t, 4)
	cases := []struct {
		backend string
		sim     string
	}{
		{string(core.RayTrace), "kripke"},
		{string(core.Raster), "lulesh"},
		{string(core.Volume), "kripke"}, // structured-only
		{string(scenario.VolumeUnstructured), "lulesh"},
	}
	for _, tc := range cases {
		t.Run(tc.backend, func(t *testing.T) {
			job := Job{
				Backend: tc.backend, Sim: tc.sim, Arch: "serial",
				N: 8, Width: 48, Height: 48, Shards: 3, Azimuth: 30, Zoom: 1,
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			got, err := cl.Render(ctx, job)
			if err != nil {
				t.Fatal(err)
			}
			want, err := RenderStandalone(job)
			if err != nil {
				t.Fatal(err)
			}
			if got.Image.W != 48 || got.Image.H != 48 {
				t.Fatalf("cluster frame is %dx%d", got.Image.W, got.Image.H)
			}
			if len(got.Image.Color) != len(want.Image.Color) {
				t.Fatalf("color plane sizes differ: %d vs %d", len(got.Image.Color), len(want.Image.Color))
			}
			for i := range got.Image.Color {
				if got.Image.Color[i] != want.Image.Color[i] {
					t.Fatalf("color word %d differs: %v vs %v", i, got.Image.Color[i], want.Image.Color[i])
				}
			}
			if got.In.Tasks != 3 {
				t.Errorf("result inputs carry Tasks=%d, want 3", got.In.Tasks)
			}
			if len(got.RankRenderSeconds) != 3 {
				t.Errorf("per-rank render times: %v", got.RankRenderSeconds)
			}
			if got.RenderSeconds <= 0 || got.CompositeSeconds < 0 {
				t.Errorf("timings: render %v composite %v", got.RenderSeconds, got.CompositeSeconds)
			}
		})
	}
}

// TestClusterFrameIsCacheStable: repeated renders of the same job (now
// served from hot scene and runner caches) stay byte-identical, so the
// serving layer's frame cache can treat cluster frames as deterministic.
func TestClusterFrameIsCacheStable(t *testing.T) {
	cl := testCluster(t, 3)
	job := Job{
		Backend: string(core.Volume), Sim: "cloverleaf", Arch: "serial",
		N: 8, Width: 40, Height: 40, Shards: 2, Azimuth: 45, Zoom: 1,
	}
	ctx := context.Background()
	first, err := cl.Render(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Render(ctx, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.Image.Color {
		if first.Image.Color[i] != second.Image.Color[i] {
			t.Fatalf("warm-cache frame differs at color word %d", i)
		}
	}
}

// TestClusterReplicatesSnapshots: dispatch syncs every worker's registry
// replica (not just the job's members), and a router-side publish
// propagates on the next frame.
func TestClusterReplicatesSnapshots(t *testing.T) {
	reg := testRegistry(t)
	cl, err := New(reg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	job := Job{
		Backend: string(core.RayTrace), Sim: "kripke", Arch: "serial",
		N: 8, Width: 32, Height: 32, Shards: 1, Zoom: 1,
	}
	if _, err := cl.Render(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	waitGens := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			gens := cl.WorkerGenerations()
			ok := true
			for _, g := range gens {
				if g != want {
					ok = false
				}
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker generations %v never reached %d", gens, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitGens(1)

	// A model publish on the router replicates with the next dispatch.
	if err := reg.Load(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Render(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	waitGens(2)

	st := cl.Stats()
	if st.SnapshotsPushed != 6 { // 3 workers x 2 generations
		t.Errorf("snapshots pushed = %d, want 6", st.SnapshotsPushed)
	}
	if st.SnapshotErrors != 0 {
		t.Errorf("snapshot errors: %+v", st)
	}
}

// TestClusterErrorPropagates: a backend/data mismatch fails on every
// rank; the combined error reaches the caller and the fleet survives to
// serve the next frame.
func TestClusterErrorPropagates(t *testing.T) {
	cl := testCluster(t, 3)
	// The structured-only volume backend cannot eat lulesh's unstructured
	// mesh.
	bad := Job{
		Backend: string(core.Volume), Sim: "lulesh", Arch: "serial",
		N: 8, Width: 32, Height: 32, Shards: 2, Zoom: 1,
	}
	_, err := cl.Render(context.Background(), bad)
	if err == nil {
		t.Fatal("mismatched backend/sim served a frame")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("error does not identify the failing shards: %v", err)
	}
	good := bad
	good.Backend = string(scenario.VolumeUnstructured)
	if _, err := cl.Render(context.Background(), good); err != nil {
		t.Fatalf("fleet wedged after failed frame: %v", err)
	}
}

// TestConcurrentShardedRenders hammers one router from many goroutines
// with overlapping worker sets — the race test for dispatch
// serialization, demux routing, and per-worker cache confinement.
func TestConcurrentShardedRenders(t *testing.T) {
	cl := testCluster(t, 4)
	jobs := []Job{
		{Backend: string(core.RayTrace), Sim: "kripke", Arch: "serial", N: 8, Width: 40, Height: 40, Shards: 3, Zoom: 1},
		{Backend: string(core.Volume), Sim: "kripke", Arch: "serial", N: 8, Width: 40, Height: 40, Shards: 2, Zoom: 1},
		{Backend: string(core.Raster), Sim: "lulesh", Arch: "serial", N: 8, Width: 40, Height: 40, Shards: 4, Zoom: 1},
		{Backend: string(core.RayTrace), Sim: "cloverleaf", Arch: "serial", N: 8, Width: 40, Height: 40, Shards: 1, Zoom: 1},
	}
	reference := make([]*Result, len(jobs))
	for i, job := range jobs {
		ref, err := cl.Render(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		reference[i] = ref
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 4; round++ {
		for i, job := range jobs {
			wg.Add(1)
			go func(i int, job Job) {
				defer wg.Done()
				res, err := cl.Render(context.Background(), job)
				if err != nil {
					errs <- err
					return
				}
				for w := range res.Image.Color {
					if res.Image.Color[w] != reference[i].Image.Color[w] {
						errs <- &mismatchError{job: job, word: w}
						return
					}
				}
			}(i, job)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct {
	job  Job
	word int
}

func (e *mismatchError) Error() string {
	return "concurrent render of " + e.job.Backend + "/" + e.job.Sim + " diverged from reference"
}

// TestRenderTimeoutAndRecovery: a caller that gives up mid-frame gets the
// context error; the late result is dropped and the fleet serves the next
// request normally.
func TestRenderTimeoutAndRecovery(t *testing.T) {
	cl := testCluster(t, 2)
	job := Job{
		Backend: string(core.RayTrace), Sim: "kripke", Arch: "serial",
		N: 8, Width: 32, Height: 32, Shards: 2, Zoom: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Render(ctx, job); err == nil {
		t.Fatal("cancelled render returned a frame")
	}
	res, err := cl.Render(context.Background(), job)
	if err != nil {
		t.Fatalf("fleet wedged after abandoned render: %v", err)
	}
	if res.Image == nil {
		t.Fatal("no image")
	}
}
