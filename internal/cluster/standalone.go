package cluster

import (
	"errors"

	"insitu/internal/comm"
	"insitu/internal/framebuffer"
)

// RenderStandalone renders a job's full shard group in one collective
// run over a private world, with no router, placement, or caching — the
// single-node reference the cluster path is tested byte-for-byte against.
// It executes exactly the same per-shard routine as the worker loops
// (same reductions, same visibility ordering, same deterministic merge
// order), so any divergence in the served path is a transport or
// bookkeeping bug, never a rendering difference.
func RenderStandalone(job Job) (*Result, error) {
	k := job.Shards
	if k < 1 {
		return nil, errors.New("cluster: standalone render needs >= 1 shard")
	}
	members := make([]int, k)
	for i := range members {
		members[i] = i
	}
	wj := wireJob{
		Backend: job.Backend, Sim: job.Sim, Arch: job.Arch,
		N: job.N, Width: job.Width, Height: job.Height,
		Shards: k, RTWorkload: job.RTWorkload,
		Azimuth: job.Azimuth, Zoom: job.Zoom,
		Members: members,
	}
	type out struct {
		res *wireResult
		img *framebuffer.Image
	}
	world := comm.NewWorld(k)
	outs, err := comm.RunCollect(world, func(c *comm.Comm) (out, error) {
		st := newShardState(1, 1)
		defer st.Close()
		res, img := st.render(c, &wj)
		if res != nil && res.Err != "" {
			return out{}, errors.New(res.Err)
		}
		return out{res, img}, nil
	})
	if err != nil {
		return nil, err
	}
	lead := outs[0]
	if lead.res == nil || lead.img == nil {
		return nil, errors.New("cluster: standalone render produced no frame")
	}
	return &Result{
		Image:                lead.img,
		In:                   lead.res.In,
		BuildSeconds:         lead.res.BuildSeconds,
		RenderSeconds:        lead.res.RenderSeconds,
		CompositeSeconds:     lead.res.CompositeSeconds,
		RankRenderSeconds:    lead.res.RankRenderSeconds,
		RankCompositeSeconds: lead.res.RankCompositeSeconds,
	}, nil
}
