package cluster

import (
	"context"
	"fmt"
	"testing"

	"insitu/internal/core"
)

// BenchmarkClusterThroughput measures steady-state sharded frames/s
// through the full router path — placement, replication check, dispatch,
// collective render, binary-swap composite, result transfer — with hot
// scene and runner caches, plus the wire cost per composited frame.
func BenchmarkClusterThroughput(b *testing.B) {
	for _, shards := range []int{2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl := testCluster(b, 4)
			job := Job{
				Backend: string(core.Volume), Sim: "kripke", Arch: "serial",
				N: 12, Width: 128, Height: 128, Shards: shards, Azimuth: 30, Zoom: 1,
			}
			ctx := context.Background()
			if _, err := cl.Render(ctx, job); err != nil {
				b.Fatal(err)
			}
			startBytes := cl.Stats().BytesSent
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Render(ctx, job); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
			b.ReportMetric(float64(cl.Stats().BytesSent-startBytes)/float64(b.N), "wire-B/frame")
		})
	}
}
